// Command gpusimctl is the shell client for gpusimd: submit jobs, poll
// them, run sweeps, and inspect the daemon, over the /v1 HTTP API.
//
// Usage:
//
//	gpusimctl [-addr URL] <command> [flags]
//
//	gpusimctl submit -config baseline -bench mm -wait
//	gpusimctl submit -config-file cfg.json -bench mm -wait -metrics
//	gpusimctl submit -config baseline -set l1.mshr_entries=128 -bench mm -wait
//	gpusimctl submit -config baseline -spec custom.json -wait -metrics
//	gpusimctl submit -config baseline -bench mm -profile -wait
//	gpusimctl get <job-id>
//	gpusimctl wait <job-id>
//	gpusimctl profile <job-id>
//	gpusimctl trace <job-id>
//	gpusimctl cancel <job-id>
//	gpusimctl list [-state running] [-limit 100] [-page-token T]
//	gpusimctl sweep -configs baseline,L2-4x -benches mm,sc -wait
//	gpusimctl sweep -configs baseline -set l1.mshr_entries=128 -benches mm -wait
//	gpusimctl sweep -configs baseline -config-file patch.json -benches mm -wait
//	gpusimctl sweep -configs baseline -spec a.json -spec b.json -wait
//	gpusimctl sweep-status <sweep-id> [-wait] [-json]
//	gpusimctl explore -target-speedup 1.5 -minimize area -bench mm
//	gpusimctl explore -area-budget 20 -bench mm -knob l2.num_banks=12,24,48
//	gpusimctl explore-status <exploration-id> [-wait] [-json]
//	gpusimctl knobs [-json]
//	gpusimctl stats [-json]
//	gpusimctl cluster [-json]
//	gpusimctl cluster -drain http://10.0.0.2:8372
//	gpusimctl benchmarks
//	gpusimctl configs [-json]
//	gpusimctl health
//
// The daemon address comes from -addr, or the GPUSIMD_ADDR environment
// variable, or defaults to http://127.0.0.1:8372. The address may be a
// single daemon or a coordinator — the API is identical (cluster
// requires a coordinator). `submit -wait -metrics` prints the completed
// job's metrics as indented JSON, byte-identical to `gpusim -json` for
// the same cell. Waits ride server-side long-polling when the daemon
// supports it; -poll only matters against older daemons.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"gpumembw/client"
	"gpumembw/cmd/internal/cliutil"
	"gpumembw/internal/config"
	"gpumembw/internal/trace"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gpusimctl [-addr URL] <submit|get|wait|profile|trace|cancel|list|sweep|sweep-status|explore|explore-status|knobs|stats|cluster|benchmarks|configs|health> [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpusimctl:", err)
	os.Exit(1)
}

func main() {
	defaultAddr := os.Getenv("GPUSIMD_ADDR")
	if defaultAddr == "" {
		defaultAddr = "http://127.0.0.1:8372"
	}
	addr := flag.String("addr", defaultAddr, "gpusimd base URL (or $GPUSIMD_ADDR)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
	}
	c := client.New(*addr)
	ctx := context.Background()
	cmd, args := flag.Arg(0), flag.Args()[1:]

	switch cmd {
	case "submit":
		cmdSubmit(ctx, c, args)
	case "get":
		cmdGet(ctx, c, args, false)
	case "wait":
		cmdGet(ctx, c, args, true)
	case "profile":
		cmdProfile(ctx, c, args)
	case "trace":
		cmdTrace(ctx, c, args)
	case "cancel":
		cmdCancel(ctx, c, args)
	case "list":
		cmdList(ctx, c, args)
	case "sweep":
		cmdSweep(ctx, c, args)
	case "sweep-status":
		cmdSweepStatus(ctx, c, args)
	case "explore":
		cmdExplore(ctx, c, args)
	case "explore-status":
		cmdExploreStatus(ctx, c, args)
	case "knobs":
		cmdKnobs(ctx, c, args)
	case "stats":
		cmdStats(ctx, c, args)
	case "cluster":
		cmdCluster(ctx, c, args)
	case "benchmarks":
		names, err := c.Benchmarks(ctx)
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
	case "configs":
		cmdConfigs(ctx, c, args)
	case "health":
		if err := c.Health(ctx); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	default:
		usage()
	}
}

// printJSON emits v as indented JSON — for metrics, the exact encoding
// `gpusim -json` uses, so outputs diff cleanly.
func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func printJob(j *client.Job) {
	fmt.Printf("%s  %-8s  config=%s bench=%s", j.ID, j.State, specConfig(j.Spec), specWorkload(j.Spec))
	if j.Metrics != nil {
		fmt.Printf("  cycles=%d IPC=%.3f", j.Metrics.Cycles, j.Metrics.IPC)
	}
	if j.Error != "" {
		fmt.Printf("  error=%q", j.Error)
	}
	fmt.Println()
}

func specConfig(s client.JobSpec) string {
	if s.Config != "" {
		return s.Config
	}
	if s.InlineConfig != nil {
		if s.InlineConfig.Name != "" {
			return s.InlineConfig.Name
		}
		return "inline"
	}
	if s.ConfigPatch != nil {
		base := s.ConfigPatch.Base
		if base == "" {
			base = "baseline"
		}
		return base + "-patched"
	}
	return "?"
}

// specWorkload labels a job's workload the way the daemon does: the
// benchmark name, the inline spec's name, or the unnamed-inline default.
func specWorkload(s client.JobSpec) string {
	if s.Bench != "" {
		return s.Bench
	}
	if s.InlineSpec != nil {
		if s.InlineSpec.Name != "" {
			return s.InlineSpec.Name
		}
		return "custom"
	}
	return "?"
}

// finishJob handles the tail of submit/wait: optionally block, then print.
func finishJob(ctx context.Context, c *client.Client, j *client.Job, wait bool, poll time.Duration, metricsOnly, asJSON bool) {
	var err error
	if wait && !j.State.Terminal() {
		j, err = c.Wait(ctx, j.ID, poll)
		if err != nil {
			fatal(err)
		}
	}
	switch {
	case metricsOnly:
		if j.State != client.JobDone {
			fatal(fmt.Errorf("job %s is %s, no metrics (error: %s)", j.ID, j.State, j.Error))
		}
		printJSON(j.Metrics)
	case asJSON:
		printJSON(j)
	default:
		printJob(j)
	}
	if j.State == client.JobFailed {
		os.Exit(1)
	}
}

func cmdSubmit(ctx context.Context, c *client.Client, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	cfgName := fs.String("config", "", "configuration preset name (see `gpusimctl configs`)")
	cfgFile := fs.String("config-file", "", "path to a config or patch JSON (\"-\" for stdin)")
	var sets cliutil.StringList
	fs.Var(&sets, "set", "knob=value config override, e.g. l1.mshr_entries=128 (repeatable)")
	bench := fs.String("bench", "", "benchmark name (see `gpusimctl benchmarks`)")
	specJSON := fs.String("spec", "", "path to an inline workload spec JSON (\"-\" for stdin)")
	wait := fs.Bool("wait", false, "block until the job reaches a terminal state")
	poll := fs.Duration("poll", 200*time.Millisecond, "poll interval for -wait")
	metricsOnly := fs.Bool("metrics", false, "with -wait: print only the metrics JSON (matches `gpusim -json`)")
	asJSON := fs.Bool("json", false, "print the job as JSON")
	profile := fs.Bool("profile", false, "attach the hierarchy bottleneck profiler (read it back with `gpusimctl profile`)")
	fs.Parse(args)

	spec := client.JobSpec{Bench: *bench, Profile: *profile}
	if err := fillConfig(&spec, *cfgName, *cfgFile, sets); err != nil {
		fatal(err)
	}
	if *specJSON != "" {
		wl, err := readSpecFile(*specJSON)
		if err != nil {
			fatal(err)
		}
		spec.InlineSpec = wl
	}
	j, err := c.Submit(ctx, spec)
	if err != nil {
		fatal(err)
	}
	finishJob(ctx, c, j, *wait, *poll, *metricsOnly, *asJSON)
}

// fillConfig assembles the configuration half of a JobSpec from
// -config, -config-file and -set through the shared cliutil resolution,
// so gpusimctl ships exactly the form gpusim resolves locally and both
// tools land every spelling on the same cell.
func fillConfig(spec *client.JobSpec, name, file string, sets []string) error {
	if file != "" && name != "" {
		return fmt.Errorf("-config and -config-file are mutually exclusive")
	}
	preset, cfg, patch, err := cliutil.ResolveConfigFlags(name, file, sets)
	if err != nil {
		return err
	}
	spec.Config, spec.InlineConfig, spec.ConfigPatch = preset, cfg, patch
	return nil
}

// readSpecFile loads one inline workload spec from a JSON file or stdin
// via the shared trace loader, so gpusimctl and gpusim accept exactly
// the same spec files.
func readSpecFile(path string) (*client.WorkloadSpec, error) {
	wl, err := trace.ReadSpecFile(path)
	if err != nil {
		return nil, err
	}
	return &wl, nil
}

// cmdConfigs lists the daemon's presets: names by default, full
// canonical Config JSON with -json (the raw GET /v1/configs payload —
// the starting point for authoring -config-file documents).
func cmdConfigs(ctx context.Context, c *client.Client, args []string) {
	fs := flag.NewFlagSet("configs", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the full canonical config of every preset as JSON")
	fs.Parse(args)
	configs, err := c.Configs(ctx)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		printJSON(configs)
		return
	}
	for _, cfg := range configs {
		fmt.Println(cfg.Name)
	}
}

func cmdGet(ctx context.Context, c *client.Client, args []string, wait bool) {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	poll := fs.Duration("poll", 200*time.Millisecond, "poll interval (wait)")
	metricsOnly := fs.Bool("metrics", false, "print only the metrics JSON")
	asJSON := fs.Bool("json", false, "print the job as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("expected one job ID"))
	}
	j, err := c.Job(ctx, fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	finishJob(ctx, c, j, wait, *poll, *metricsOnly, *asJSON)
}

// sparkRunes render a [0,1] utilization as one terminal cell.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline compresses a mean series into width cells, averaging the
// samples that fall into each cell.
func sparkline(means []float64, width int) string {
	if len(means) == 0 {
		return ""
	}
	if len(means) < width {
		width = len(means)
	}
	out := make([]rune, width)
	for i := 0; i < width; i++ {
		lo, hi := i*len(means)/width, (i+1)*len(means)/width
		if hi == lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range means[lo:hi] {
			sum += v
		}
		v := sum / float64(hi-lo)
		idx := int(v * float64(len(sparkRunes)))
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		if idx < 0 {
			idx = 0
		}
		out[i] = sparkRunes[idx]
	}
	return string(out)
}

// cmdProfile renders a finished Profile=true job's hierarchy bottleneck
// profile: one sparkline per gauge over the run's windows, then the
// per-level verdict table.
func cmdProfile(ctx context.Context, c *client.Client, args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the raw profile payload as JSON")
	width := fs.Int("width", 64, "sparkline width in cells")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("expected one job ID"))
	}
	jp, err := c.Profile(ctx, fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		printJSON(jp)
		return
	}
	p := jp.Profile
	fmt.Printf("profile %s  (%s on %s)\n", jp.JobID, jp.Bench, jp.Config)
	fmt.Printf("%d cycles in %d windows of %d cycles\n\n", p.Cycles, p.Windows, p.WindowCycles)
	for _, s := range p.Series {
		fmt.Printf("%-10s %-12s %s\n", s.Level, s.Gauge, sparkline(s.Mean, *width))
	}
	fmt.Printf("\n%-10s  %6s  %6s  %12s  %6s\n", "level", "mean", "peak", "saturated", "first")
	for _, lv := range p.Verdict.Levels {
		first := "-"
		if lv.FirstSaturatedWindow >= 0 {
			first = fmt.Sprintf("w%d", lv.FirstSaturatedWindow)
		}
		marker := " "
		if lv.Level == p.Verdict.Bottleneck {
			marker = "*"
		}
		fmt.Printf("%s%-9s  %5.1f%%  %5.1f%%  %7d wins  %6s\n",
			marker, lv.Level, 100*lv.MeanUtilization, 100*lv.PeakUtilization, lv.SaturatedWindows, first)
	}
	fmt.Printf("\nbottleneck: %s — %s (threshold %.0f%%)\n",
		p.Verdict.Bottleneck, p.Verdict.Reason, 100*p.Verdict.Threshold)
}

// cmdTrace renders a job's lifecycle span timeline: one row per span
// with wall-clock durations and attributes (cache tier, errors).
func cmdTrace(ctx context.Context, c *client.Client, args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the raw trace payload as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("expected one job ID"))
	}
	tr, err := c.Trace(ctx, fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		printJSON(tr)
		return
	}
	fmt.Printf("trace %s", tr.JobID)
	if tr.TraceID != "" {
		fmt.Printf("  traceId=%s", tr.TraceID)
	}
	fmt.Println()
	for _, sp := range tr.Spans {
		dur := "open"
		if sp.End != nil {
			dur = sp.End.Sub(sp.Start).Round(time.Microsecond).String()
		}
		fmt.Printf("  %-10s  %s  %10s", sp.Name, sp.Start.Format("15:04:05.000"), dur)
		keys := make([]string, 0, len(sp.Attrs))
		for k := range sp.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s=%s", k, sp.Attrs[k])
		}
		fmt.Println()
	}
}

func cmdCancel(ctx context.Context, c *client.Client, args []string) {
	if len(args) != 1 {
		fatal(fmt.Errorf("expected one job ID"))
	}
	j, err := c.Cancel(ctx, args[0])
	if err != nil {
		fatal(err)
	}
	printJob(j)
}

func cmdList(ctx context.Context, c *client.Client, args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	state := fs.String("state", "", "only jobs in this state (queued|running|done|failed|canceled)")
	limit := fs.Int("limit", 0, "page size (0 = everything in one page)")
	pageToken := fs.String("page-token", "", "resume a paged listing after a previous page's token")
	asJSON := fs.Bool("json", false, "print the page as JSON (includes nextPageToken)")
	fs.Parse(args)
	list, err := c.ListJobs(ctx, client.ListOptions{
		State:     client.JobState(*state),
		Limit:     *limit,
		PageToken: *pageToken,
	})
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		printJSON(list)
		return
	}
	for i := range list.Jobs {
		printJob(&list.Jobs[i])
	}
	if list.NextPageToken != "" {
		fmt.Printf("next page: gpusimctl list -limit %d -page-token %s\n", *limit, list.NextPageToken)
	}
}

func cmdSweep(ctx context.Context, c *client.Client, args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	configs := fs.String("configs", "", "comma-separated preset names")
	var cfgFiles cliutil.StringList
	fs.Var(&cfgFiles, "config-file", "path to a config or patch JSON to add to the config axis (repeatable)")
	var sets cliutil.StringList
	fs.Var(&sets, "set", "knob=value: add a patched variant of every -configs preset to the axis (repeatable)")
	benches := fs.String("benches", "", "comma-separated benchmarks (default: all, unless -spec is given)")
	var specs cliutil.StringList
	fs.Var(&specs, "spec", "path to an inline workload spec JSON (repeatable)")
	wait := fs.Bool("wait", false, "block until every job reaches a terminal state")
	poll := fs.Duration("poll", 500*time.Millisecond, "poll interval for -wait")
	fs.Parse(args)
	if *configs == "" && len(cfgFiles) == 0 {
		fatal(fmt.Errorf("sweep: one of -configs or -config-file is required"))
	}
	req := client.SweepRequest{Configs: cliutil.SplitCSV(*configs)}
	for _, path := range cfgFiles {
		cfg, patch, err := config.ReadConfigFile(path)
		if err != nil {
			fatal(err)
		}
		if cfg != nil {
			req.InlineConfigs = append(req.InlineConfigs, *cfg)
		} else {
			req.ConfigPatches = append(req.ConfigPatches, *patch)
		}
	}
	if len(sets) > 0 {
		// -set sweeps a mitigation delta against its unpatched bases: each
		// -configs preset contributes a patched twin column.
		if len(req.Configs) == 0 {
			fatal(fmt.Errorf("sweep: -set needs -configs presets to patch"))
		}
		delta, err := config.DeltaFromSets(sets)
		if err != nil {
			fatal(err)
		}
		for _, base := range req.Configs {
			req.ConfigPatches = append(req.ConfigPatches, client.ConfigPatch{Base: base, Delta: delta})
		}
	}
	for _, path := range specs {
		wl, err := readSpecFile(path)
		if err != nil {
			fatal(err)
		}
		req.InlineSpecs = append(req.InlineSpecs, *wl)
	}
	switch {
	case *benches != "":
		req.Benches = cliutil.SplitCSV(*benches)
	case len(req.InlineSpecs) == 0:
		all, err := c.Benchmarks(ctx)
		if err != nil {
			fatal(err)
		}
		req.Benches = all
	}
	resp, err := c.Sweep(ctx, req)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sweep %s: %d cells requested, %d deduplicated, %d jobs\n",
		resp.ID, resp.Requested, resp.Deduped, len(resp.Jobs))
	jobs := resp.Jobs
	if *wait {
		// One wait on the sweep resource replaces per-job polling: the
		// daemon (or coordinator) long-polls the aggregate and returns
		// the merged speedup table with the final state.
		sw, err := c.WaitSweep(ctx, resp.ID, *poll)
		if err != nil {
			fatal(err)
		}
		jobs = sw.Jobs
		defer printSpeedups(sw)
	}
	failed := 0
	for i := range jobs {
		printJob(&jobs[i])
		if jobs[i].State == client.JobFailed {
			failed++
		}
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d job(s) failed", failed))
	}
}

// printSpeedups renders a completed sweep's merged speedup grid, one
// row per workload, relative to the first configuration column.
func printSpeedups(sw *client.Sweep) {
	if sw.Speedups == nil {
		return
	}
	sp := sw.Speedups
	fmt.Printf("speedups vs %s:\n", sp.Configs[0])
	fmt.Printf("%-12s", "")
	for _, cfg := range sp.Configs {
		fmt.Printf("  %12s", cfg)
	}
	fmt.Println()
	for w, name := range sp.Workloads {
		fmt.Printf("%-12s", name)
		for c := range sp.Configs {
			fmt.Printf("  %12.3f", sp.Cells[w][c])
		}
		fmt.Println()
	}
	// The cost of each configuration column, versus the base column, so
	// the table reads as speedup-per-mm² at a glance.
	if len(sp.AreaMM2) == len(sp.Configs) {
		fmt.Printf("%-12s", "area mm²")
		for c := range sp.Configs {
			fmt.Printf("  %12.2f", sp.AreaMM2[c])
		}
		fmt.Println()
	}
	if len(sp.OverheadFrac) == len(sp.Configs) {
		fmt.Printf("%-12s", "overhead")
		for c := range sp.Configs {
			fmt.Printf("  %11.2f%%", 100*sp.OverheadFrac[c])
		}
		fmt.Println()
	}
}

// cmdSweepStatus polls (or waits on) a sweep resource by ID.
func cmdSweepStatus(ctx context.Context, c *client.Client, args []string) {
	fs := flag.NewFlagSet("sweep-status", flag.ExitOnError)
	wait := fs.Bool("wait", false, "block until the sweep reaches a terminal state")
	poll := fs.Duration("poll", 500*time.Millisecond, "fallback poll interval for -wait against older daemons")
	asJSON := fs.Bool("json", false, "print the sweep resource as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("expected one sweep ID"))
	}
	var sw *client.Sweep
	var err error
	if *wait {
		sw, err = c.WaitSweep(ctx, fs.Arg(0), *poll)
	} else {
		sw, err = c.GetSweep(ctx, fs.Arg(0))
	}
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		printJSON(sw)
		return
	}
	fmt.Printf("sweep %s: %s (%d cells", sw.ID, sw.State, len(sw.Jobs))
	for _, state := range []client.JobState{client.JobQueued, client.JobRunning, client.JobDone, client.JobFailed, client.JobCanceled} {
		if n := sw.Counts[state]; n > 0 {
			fmt.Printf(", %d %s", n, state)
		}
	}
	fmt.Println(")")
	for i := range sw.Jobs {
		printJob(&sw.Jobs[i])
	}
	printSpeedups(sw)
	if sw.State == client.SweepFailed {
		os.Exit(1)
	}
}

// cmdCluster inspects a coordinator's worker fleet and drains or
// readmits workers.
func cmdCluster(ctx context.Context, c *client.Client, args []string) {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	drain := fs.String("drain", "", "drain this worker: move its cells and stop new placements")
	undrain := fs.String("undrain", "", "readmit a drained worker to placement")
	asJSON := fs.Bool("json", false, "print the worker table as JSON")
	fs.Parse(args)
	var cs *client.ClusterStatus
	var err error
	switch {
	case *drain != "" && *undrain != "":
		fatal(fmt.Errorf("-drain and -undrain are mutually exclusive"))
	case *drain != "":
		cs, err = c.Drain(ctx, *drain, true)
	case *undrain != "":
		cs, err = c.Drain(ctx, *undrain, false)
	default:
		cs, err = c.Cluster(ctx)
	}
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		printJSON(cs)
		return
	}
	for _, w := range cs.Workers {
		state := "healthy"
		if !w.Healthy {
			state = fmt.Sprintf("unhealthy (%d misses)", w.ConsecutiveFailures)
		}
		if w.Draining {
			state += ", draining"
		}
		fmt.Printf("%s  %-24s  jobs=%d\n", w.Addr, state, w.Jobs)
	}
}

func cmdStats(ctx context.Context, c *client.Client, args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the stats as JSON")
	fs.Parse(args)
	st, err := c.Stats(ctx)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		printJSON(st)
		return
	}
	fmt.Printf("workers      %d\n", st.Workers)
	fmt.Printf("queue        %d/%d\n", st.QueueDepth, st.QueueCap)
	fmt.Printf("simulated    %d\n", st.Scheduler.Simulated)
	fmt.Printf("sim cycles   %d\n", st.Scheduler.SimCycles)
	fmt.Printf("memo hits    %d\n", st.Scheduler.CacheHits)
	fmt.Printf("disk hits    %d\n", st.Scheduler.DiskHits)
	if st.CacheDir != "" {
		fmt.Printf("cache dir    %s (%d entries, %d bytes", st.CacheDir, st.DiskCacheEntries, st.DiskCacheBytes)
		if st.DiskCacheMaxBytes > 0 {
			fmt.Printf(" of %d", st.DiskCacheMaxBytes)
		}
		fmt.Println(")")
		if st.DiskCacheEvictions > 0 {
			fmt.Printf("evictions    %d\n", st.DiskCacheEvictions)
		}
	}
	if st.RateLimited > 0 {
		fmt.Printf("rate limited %d\n", st.RateLimited)
	}
	if st.QuotaDenied > 0 {
		fmt.Printf("quota denied %d\n", st.QuotaDenied)
	}
	for _, state := range []client.JobState{client.JobQueued, client.JobRunning, client.JobDone, client.JobFailed, client.JobCanceled} {
		if n := st.Jobs[state]; n > 0 {
			fmt.Printf("jobs %-8s %d\n", state, n)
		}
	}
}

// cmdExplore starts (or joins) a design-space exploration and renders
// its progress as a live round-by-round table until the search is done.
func cmdExplore(ctx context.Context, c *client.Client, args []string) {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	benches := fs.String("bench", "", "comma-separated benchmarks to score candidates on")
	var specs cliutil.StringList
	fs.Var(&specs, "spec", "path to an inline workload spec JSON (repeatable)")
	base := fs.String("base", "", "base configuration preset (default baseline)")
	strategy := fs.String("strategy", "", "search strategy: halving (default) or climb")
	target := fs.Float64("target-speedup", 0, "objective: reach this speedup, minimizing area")
	minimize := fs.String("minimize", "", "with -target-speedup: quantity to minimize (only \"area\")")
	budget := fs.Float64("area-budget", 0, "objective: stay under this area in mm², maximizing speedup")
	maximize := fs.String("maximize", "", "with -area-budget: quantity to maximize (only \"speedup\")")
	var knobs cliutil.StringList
	fs.Var(&knobs, "knob", "custom lattice axis path=v1,v2,... (repeatable; default: the Table III ladder)")
	maxRounds := fs.Int("max-rounds", 0, "refinement-round cap (default 8)")
	wait := fs.Bool("wait", true, "follow the search round by round until it is done")
	poll := fs.Duration("poll", 500*time.Millisecond, "progress poll interval for -wait")
	asJSON := fs.Bool("json", false, "print the final exploration resource as JSON")
	fs.Parse(args)

	req := client.ExploreRequest{
		Benchmarks: cliutil.SplitCSV(*benches),
		Base:       *base,
		Strategy:   *strategy,
		Objective: client.ExploreObjective{
			TargetSpeedup: *target,
			Minimize:      *minimize,
			AreaBudgetMM2: *budget,
			Maximize:      *maximize,
		},
		MaxRounds: *maxRounds,
	}
	for _, path := range specs {
		wl, err := readSpecFile(path)
		if err != nil {
			fatal(err)
		}
		req.InlineSpecs = append(req.InlineSpecs, *wl)
	}
	for _, k := range knobs {
		path, vals, ok := strings.Cut(k, "=")
		if !ok {
			fatal(fmt.Errorf("explore: -knob wants path=v1,v2,..., got %q", k))
		}
		req.Knobs = append(req.Knobs, client.ExploreKnob{Path: path, Values: cliutil.SplitCSV(vals)})
	}
	ex, err := c.Explore(ctx, req)
	if err != nil {
		fatal(err)
	}
	if !*wait {
		if *asJSON {
			printJSON(ex)
			return
		}
		fmt.Printf("exploration %s: %s\n", ex.ID, ex.State)
		return
	}
	finishExploration(ctx, c, ex, *poll, *asJSON)
}

// finishExploration follows an exploration to its terminal state,
// printing each completed round exactly once, then the frontier and the
// recommendation.
func finishExploration(ctx context.Context, c *client.Client, ex *client.Exploration, poll time.Duration, asJSON bool) {
	printed := 0
	header := false
	render := func(ex *client.Exploration) {
		if asJSON {
			return
		}
		if !header {
			fmt.Printf("exploration %s: strategy=%s base=%s grid=%d workloads=%v\n",
				ex.ID, ex.Strategy, ex.Base, ex.GridSize, ex.Workloads)
			fmt.Printf("%-10s  %7s  %13s  %10s  %9s\n", "round", "probes", "best speedup", "best area", "feasible")
			header = true
		}
		for ; printed < len(ex.Rounds); printed++ {
			r := ex.Rounds[printed]
			feas := "no"
			if r.Feasible {
				feas = "yes"
			}
			fmt.Printf("%-10s  %7d  %12.4f×  %8.2fmm²  %9s\n", r.Label, r.Probes, r.BestSpeedup, r.BestAreaMM2, feas)
		}
	}
	render(ex)
	var err error
	for !ex.State.Terminal() {
		select {
		case <-ctx.Done():
			fatal(ctx.Err())
		case <-time.After(poll):
		}
		if ex, err = c.GetExploration(ctx, ex.ID); err != nil {
			fatal(err)
		}
		render(ex)
	}
	render(ex)
	if asJSON {
		printJSON(ex)
		if ex.State == client.ExplorationFailed {
			os.Exit(1)
		}
		return
	}
	if ex.State == client.ExplorationFailed {
		fatal(fmt.Errorf("exploration %s failed: %s", ex.ID, ex.Error))
	}
	fmt.Printf("\n%d probes of a %d-point grid (%.4f%%); tiers: %d simulated, %d memo, %d disk\n",
		ex.Probes, ex.GridSize, 100*float64(ex.Probes)/float64(ex.GridSize),
		ex.Tiers.Simulated, ex.Tiers.Memo, ex.Tiers.Disk)
	fmt.Println("\npareto frontier:")
	fmt.Printf("  %9s  %9s  %8s  %s\n", "speedup", "area mm²", "overhead", "sets")
	for _, p := range ex.Frontier {
		fmt.Printf("  %8.4f×  %9.2f  %7.2f%%  %s\n", p.Speedup, p.AreaMM2, 100*p.OverheadFrac, setsLabel(p.Sets))
	}
	if ex.Recommended != nil {
		verdict := "meets the objective"
		if !ex.Feasible {
			verdict = "closest point — objective NOT met"
		}
		r := ex.Recommended
		fmt.Printf("\nrecommended (%s): %.4f× at %.2f mm² (%.2f%% overhead)\n",
			verdict, r.Speedup, r.AreaMM2, 100*r.OverheadFrac)
		for _, s := range r.Sets {
			fmt.Printf("  -set %s\n", s)
		}
	}
	if !ex.Feasible {
		os.Exit(1)
	}
}

func setsLabel(sets []string) string {
	if len(sets) == 0 {
		return "(base)"
	}
	return strings.Join(sets, " ")
}

// cmdExploreStatus polls (or follows) an exploration resource by ID.
func cmdExploreStatus(ctx context.Context, c *client.Client, args []string) {
	fs := flag.NewFlagSet("explore-status", flag.ExitOnError)
	wait := fs.Bool("wait", false, "follow the search until it reaches a terminal state")
	poll := fs.Duration("poll", 500*time.Millisecond, "progress poll interval for -wait")
	asJSON := fs.Bool("json", false, "print the exploration resource as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("expected one exploration ID"))
	}
	ex, err := c.GetExploration(ctx, fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	if !*wait {
		if *asJSON {
			printJSON(ex)
			return
		}
	}
	finishExploration(ctx, c, ex, *poll, *asJSON)
}

// cmdKnobs renders the knob-space model: every dotted Set path with its
// type, bounds and baseline value.
func cmdKnobs(ctx context.Context, c *client.Client, args []string) {
	fs := flag.NewFlagSet("knobs", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the knob list as JSON")
	fs.Parse(args)
	knobs, err := c.Knobs(ctx)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		printJSON(knobs)
		return
	}
	fmt.Printf("%-28s  %-6s  %12s  %12s  %s\n", "path", "type", "min", "max", "baseline")
	for _, k := range knobs {
		minS, maxS := "-", "-"
		if k.Type == "int" || k.Type == "float" {
			minS = strconv.FormatFloat(k.Min, 'g', -1, 64)
			maxS = "unbounded"
			if k.Max != 0 {
				maxS = strconv.FormatFloat(k.Max, 'g', -1, 64)
			}
		}
		fmt.Printf("%-28s  %-6s  %12s  %12s  %s\n", k.Path, k.Type, minS, maxS, k.Baseline)
	}
}
