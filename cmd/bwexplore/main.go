// Command bwexplore runs custom design-space explorations over BOTH axes
// of the simulator's design space: the architecture axis — whole memory
// levels scaled by a factor (-levels/-factor), or the paper's Table III
// mitigation knobs swept directly (-mshr, -missq, -l2banks, -dram-scale)
// — and optionally the workload axis — coalescing degree, thread-level
// parallelism, working-set size as spec variants derived from a named
// benchmark. Every (config, workload) cell runs once on the experiment
// engine's worker pool through the shared sweep API; the report shows
// per-workload speedups over the baseline for every configuration column
// plus the estimated area cost.
//
// Usage:
//
//	bwexplore -levels l2 -factor 4
//	bwexplore -levels l1,l2 -factor 2 -bench mm,sc,lbm -j 8
//	bwexplore -mshr 64,128 -missq 32 -bench mm,sc
//	bwexplore -l2banks 24,48 -dram-scale 2,4 -base mm -coalesce 1,8
//	bwexplore -levels l2 -factor 4 -base mm -coalesce 1,4,8 -tlp 6,24,48
//	bwexplore -levels dram -factor 4 -base nn -ws 64,512,4096
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gpumembw"
	"gpumembw/cmd/internal/cliutil"
	"gpumembw/internal/area"
	"gpumembw/internal/config"
	"gpumembw/internal/exp"
	"gpumembw/internal/prof"
)

func main() {
	levels := flag.String("levels", "l2", "comma-separated levels to scale: l1,l2,dram")
	factor := flag.Int("factor", 4, "scaling factor for the selected levels")
	mshr := flag.String("mshr", "", "comma-separated L1 MSHR entry counts to sweep (Table III mitigation)")
	missq := flag.String("missq", "", "comma-separated L1+L2 miss-queue depths to sweep (Table III mitigation)")
	l2banks := flag.String("l2banks", "", "comma-separated L2 bank counts to sweep (Table III mitigation)")
	dramScale := flag.String("dram-scale", "", "comma-separated DRAM bandwidth scale factors to sweep (Table III mitigation)")
	benches := flag.String("bench", "", "comma-separated benchmarks (default: all 19)")
	base := flag.String("base", "", "benchmark whose spec seeds workload-axis variants")
	coalesce := flag.String("coalesce", "", "comma-separated lines-per-access values to sweep (needs -base)")
	tlp := flag.String("tlp", "", "comma-separated warps-per-core values to sweep (needs -base)")
	ws := flag.String("ws", "", "comma-separated working-set sizes in KB to sweep (needs -base)")
	workers := flag.Int("j", 0, "simulation workers (default GOMAXPROCS)")
	profiles := prof.AddFlags()
	flag.Parse()

	if err := exp.ValidateWorkers(*workers); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := profiles.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer profiles.Stop()
	defer profiles.ExitOnSignal(nil)()

	hwAxes := *mshr != "" || *missq != "" || *l2banks != "" || *dramScale != ""
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if hwAxes && (explicit["levels"] || explicit["factor"]) {
		fmt.Fprintln(os.Stderr, "bwexplore: -levels/-factor and the mitigation axes (-mshr/-missq/-l2banks/-dram-scale) are mutually exclusive")
		os.Exit(2)
	}

	var cols []config.Config
	var err error
	if hwAxes {
		cols, err = mitigationAxis(*mshr, *missq, *l2banks, *dramScale)
	} else {
		cols = []config.Config{scaledConfig(*levels, *factor)}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cols = append([]config.Config{gpumembw.Baseline()}, cols...)

	refs, err := workloadAxis(*base, *benches, *coalesce, *tlp, *ws)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// One sweep call covers the whole grid: every configuration column ×
	// every workload, deduplicated and simulated concurrently on the pool.
	s := exp.NewScheduler(exp.WithWorkers(*workers), exp.WithProgress(os.Stderr))
	res, err := s.Sweep(exp.SweepConfigs(cols), refs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		profiles.Stop() // os.Exit skips the deferred call
		os.Exit(1)
	}

	speedups := res.Speedups(0)
	fmt.Printf("%-24s", "workload")
	for _, name := range res.Configs[1:] {
		fmt.Printf(" %14s", name)
	}
	fmt.Println()
	sums := make([]float64, len(res.Configs))
	for w, name := range res.Workloads {
		fmt.Printf("%-24s", name)
		for c := 1; c < len(res.Configs); c++ {
			fmt.Printf(" %13.2fx", speedups[w][c])
			sums[c] += speedups[w][c]
		}
		fmt.Println()
	}
	fmt.Printf("%-24s", "AVG")
	for c := 1; c < len(res.Configs); c++ {
		fmt.Printf(" %13.2fx", sums[c]/float64(len(res.Workloads)))
	}
	fmt.Println()

	// Cost rows, aligned under the speedup columns: estimated area and
	// die-overhead of each configuration relative to the baseline, so
	// every speedup reads next to what it costs.
	baseCfg := config.Baseline()
	ests := make([]area.Estimate, len(cols))
	for i, cfg := range cols[1:] {
		ests[i+1] = area.Compare(&baseCfg, &cfg)
	}
	fmt.Printf("%-24s", "area mm2")
	for c := 1; c < len(res.Configs); c++ {
		fmt.Printf(" %14.2f", ests[c].TotalMM2)
	}
	fmt.Println()
	fmt.Printf("%-24s", "overhead")
	for c := 1; c < len(res.Configs); c++ {
		fmt.Printf(" %13.2f%%", 100*ests[c].OverheadFrac)
	}
	fmt.Println()
	for _, cfg := range cols[1:] {
		est := area.Compare(&baseCfg, &cfg)
		fmt.Printf("\narea %s: +%.1f KB storage, +%.2f mm2 crossbar wires, %.2f mm2 total (%.2f%% of die)\n",
			cfg.Name, est.StorageKB, est.CrossbarMM2, est.TotalMM2, 100*est.OverheadFrac)
	}
}

// mitigationAxis expands the Table III mitigation knobs into config
// columns: the cross product of the provided axes applied to the
// baseline. -mshr scales L1 MSHR entries, -missq the L1 and L2 miss
// queues together (the paper scales both levels' queues in one step),
// -l2banks the L2 bank count (crossbar ports scale with it), and
// -dram-scale the DRAM scheduler queue, banks and bus width by a factor.
func mitigationAxis(mshr, missq, l2banks, dramScale string) ([]config.Config, error) {
	parse := func(s, name string) ([]int, error) {
		if s == "" {
			return []int{0}, nil // 0 = axis unset, keep baseline
		}
		var vals []int
		for _, p := range cliutil.SplitCSV(s) {
			v, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("bwexplore: -%s: %w", name, err)
			}
			if v <= 0 {
				return nil, fmt.Errorf("bwexplore: -%s values must be positive, got %d", name, v)
			}
			vals = append(vals, v)
		}
		return vals, nil
	}
	mshrVals, err := parse(mshr, "mshr")
	if err != nil {
		return nil, err
	}
	missqVals, err := parse(missq, "missq")
	if err != nil {
		return nil, err
	}
	bankVals, err := parse(l2banks, "l2banks")
	if err != nil {
		return nil, err
	}
	dramVals, err := parse(dramScale, "dram-scale")
	if err != nil {
		return nil, err
	}
	var cols []config.Config
	for _, m := range mshrVals {
		for _, q := range missqVals {
			for _, b := range bankVals {
				for _, d := range dramVals {
					cfg := gpumembw.Baseline()
					var segs []string
					if m > 0 {
						cfg.L1.MSHREntries = m
						segs = append(segs, fmt.Sprintf("mshr%d", m))
					}
					if q > 0 {
						cfg.L1.MissQueueEntries = q
						cfg.L2.MissQueueEntries = q
						segs = append(segs, fmt.Sprintf("missq%d", q))
					}
					if b > 0 {
						cfg.L2.NumBanks = b
						segs = append(segs, fmt.Sprintf("l2b%d", b))
					}
					if d > 0 {
						config.ScaleDRAM(&cfg, d)
						segs = append(segs, fmt.Sprintf("dram%dx", d))
					}
					if len(segs) == 0 {
						continue // all axes unset for this combination
					}
					cfg.Name = strings.Join(segs, "/")
					if err := cfg.Validate(); err != nil {
						return nil, err
					}
					cols = append(cols, cfg)
				}
			}
		}
	}
	return cols, nil
}

// scaledConfig derives the architecture-axis design point: the baseline
// with the selected memory levels scaled by factor, validated and named
// after the selection.
func scaledConfig(levels string, factor int) config.Config {
	cfg := gpumembw.Baseline()
	cfg.Name = fmt.Sprintf("%s-%dx", levels, factor)
	for _, level := range strings.Split(levels, ",") {
		switch strings.TrimSpace(level) {
		case "l1":
			config.ScaleL1(&cfg, factor)
		case "l2":
			config.ScaleL2(&cfg, factor)
		case "dram":
			config.ScaleDRAM(&cfg, factor)
		default:
			fmt.Fprintf(os.Stderr, "unknown level %q (want l1, l2 or dram)\n", level)
			os.Exit(2)
		}
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return cfg
}

// workloadAxis expands the workload side of the grid. With -base set, it
// derives inline spec variants from the named benchmark's registered
// spec, crossing every provided axis (coalescing × TLP × working set);
// otherwise it returns the selected (default: all 19) benchmarks.
func workloadAxis(base, benches, coalesce, tlp, ws string) ([]exp.WorkloadRef, error) {
	axesGiven := coalesce != "" || tlp != "" || ws != ""
	if base != "" && benches != "" {
		return nil, fmt.Errorf("bwexplore: -base and -bench are mutually exclusive")
	}
	if base == "" {
		if axesGiven {
			return nil, fmt.Errorf("bwexplore: -coalesce/-tlp/-ws need -base")
		}
		names := gpumembw.BenchmarkNames()
		if benches != "" {
			names = cliutil.SplitCSV(benches)
		}
		refs := make([]exp.WorkloadRef, len(names))
		for i, b := range names {
			refs[i] = exp.BenchRef(b)
		}
		return refs, nil
	}
	if !axesGiven {
		return nil, fmt.Errorf("bwexplore: -base needs at least one of -coalesce, -tlp, -ws")
	}
	spec, err := gpumembw.SpecByName(base)
	if err != nil {
		return nil, err
	}
	coalesceVals, err := axisValues(coalesce, "coalesce", spec.LinesPerAccess)
	if err != nil {
		return nil, err
	}
	tlpVals, err := axisValues(tlp, "tlp", spec.WarpsPerCore)
	if err != nil {
		return nil, err
	}
	wsVals, err := axisValues(ws, "ws", spec.WorkingSetKB)
	if err != nil {
		return nil, err
	}
	var refs []exp.WorkloadRef
	for _, c := range coalesceVals {
		for _, t := range tlpVals {
			for _, w := range wsVals {
				v := spec
				v.Name = variantName(base, coalesce != "", c, tlp != "", t, ws != "", w)
				v.LinesPerAccess = c
				v.WarpsPerCore = t
				v.WorkingSetKB = w
				if err := v.Validate(); err != nil {
					return nil, err
				}
				refs = append(refs, exp.SpecRef(v))
			}
		}
	}
	return refs, nil
}

// axisValues parses one comma-separated workload axis; an empty axis
// pins the base spec's own value.
func axisValues(s, name string, baseVal int) ([]int, error) {
	if s == "" {
		return []int{baseVal}, nil
	}
	var vals []int
	for _, p := range cliutil.SplitCSV(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bwexplore: -%s: %w", name, err)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// variantName labels a spec variant with only the axes actually swept,
// e.g. "mm/c4/t24".
func variantName(base string, hasC bool, c int, hasT bool, t int, hasW bool, w int) string {
	name := base
	if hasC {
		name += fmt.Sprintf("/c%d", c)
	}
	if hasT {
		name += fmt.Sprintf("/t%d", t)
	}
	if hasW {
		name += fmt.Sprintf("/ws%d", w)
	}
	return name
}
