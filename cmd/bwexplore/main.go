// Command bwexplore runs custom design-space explorations: pick the memory
// levels to scale and a scaling factor, and it reports per-benchmark
// speedups over the baseline plus the estimated area cost. The benchmark
// sweep runs on the experiment engine's worker pool.
//
// Usage:
//
//	bwexplore -levels l2 -factor 4
//	bwexplore -levels l1,l2 -factor 2 -bench mm,sc,lbm -j 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpumembw"
	"gpumembw/internal/area"
	"gpumembw/internal/config"
	"gpumembw/internal/exp"
	"gpumembw/internal/prof"
)

func main() {
	levels := flag.String("levels", "l2", "comma-separated levels to scale: l1,l2,dram")
	factor := flag.Int("factor", 4, "scaling factor for the selected levels")
	benches := flag.String("bench", "", "comma-separated benchmarks (default: all 19)")
	workers := flag.Int("j", 0, "simulation workers (default GOMAXPROCS)")
	profiles := prof.AddFlags()
	flag.Parse()

	if err := exp.ValidateWorkers(*workers); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := profiles.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer profiles.Stop()
	defer profiles.ExitOnSignal(nil)()

	cfg := gpumembw.Baseline()
	cfg.Name = fmt.Sprintf("%s-%dx", *levels, *factor)
	for _, level := range strings.Split(*levels, ",") {
		switch strings.TrimSpace(level) {
		case "l1":
			cfg.L1.MissQueueEntries *= *factor
			cfg.L1.MSHREntries *= *factor
			cfg.Core.MemPipelineWidth *= *factor
		case "l2":
			cfg.L2.MissQueueEntries *= *factor
			cfg.L2.ResponseQueueEntries *= *factor
			cfg.L2.MSHREntries *= *factor
			cfg.L2.AccessQueueEntries *= *factor
			cfg.L2.DataPortBytes *= *factor
			cfg.Icnt.ReqFlitBytes *= *factor
			cfg.Icnt.ReplyFlitBytes *= *factor
			cfg.L2.NumBanks *= *factor
		case "dram":
			cfg.DRAM.SchedQueueEntries *= *factor
			cfg.DRAM.BanksPerChip *= *factor
			cfg.DRAM.BusWidthBits *= *factor
		default:
			fmt.Fprintf(os.Stderr, "unknown level %q (want l1, l2 or dram)\n", level)
			os.Exit(2)
		}
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	names := gpumembw.BenchmarkNames()
	if *benches != "" {
		names = strings.Split(*benches, ",")
		for i, b := range names {
			names[i] = strings.TrimSpace(b)
		}
	}

	// Pre-run every (config, benchmark) cell in parallel; the serial
	// reporting loop below then assembles from the memo cache.
	s := exp.NewScheduler(exp.WithWorkers(*workers), exp.WithProgress(os.Stderr))
	var jobs []exp.Job
	for _, b := range names {
		jobs = append(jobs,
			exp.Job{Config: gpumembw.Baseline(), Bench: b},
			exp.Job{Config: cfg, Bench: b})
	}
	if err := s.RunJobs(jobs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		profiles.Stop() // os.Exit skips the deferred call
		os.Exit(1)
	}

	fmt.Printf("%-12s %10s\n", "bench", "speedup")
	sum := 0.0
	for _, b := range names {
		sp, err := s.Speedup(cfg, b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			profiles.Stop() // os.Exit skips the deferred call
			os.Exit(1)
		}
		fmt.Printf("%-12s %9.2fx\n", b, sp)
		sum += sp
	}
	fmt.Printf("%-12s %9.2fx\n", "AVG", sum/float64(len(names)))

	base := config.Baseline()
	est := area.Compare(&base, &cfg)
	fmt.Printf("\narea: +%.1f KB storage, +%.2f mm2 crossbar wires, %.2f mm2 total (%.2f%% of die)\n",
		est.StorageKB, est.CrossbarMM2, est.TotalMM2, 100*est.OverheadFrac)
}
