// Command bwexplore runs custom design-space explorations over BOTH axes
// of the simulator's design space: pick the memory levels to scale and a
// scaling factor (the architecture axis), and optionally sweep workload
// knobs — coalescing degree, thread-level parallelism, working-set size —
// as spec variants derived from a named benchmark (the workload axis).
// Every (config, workload) cell runs once on the experiment engine's
// worker pool through the shared sweep API; the report shows per-workload
// speedups over the baseline plus the estimated area cost.
//
// Usage:
//
//	bwexplore -levels l2 -factor 4
//	bwexplore -levels l1,l2 -factor 2 -bench mm,sc,lbm -j 8
//	bwexplore -levels l2 -factor 4 -base mm -coalesce 1,4,8 -tlp 6,24,48
//	bwexplore -levels dram -factor 4 -base nn -ws 64,512,4096
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gpumembw"
	"gpumembw/cmd/internal/cliutil"
	"gpumembw/internal/area"
	"gpumembw/internal/config"
	"gpumembw/internal/exp"
	"gpumembw/internal/prof"
)

func main() {
	levels := flag.String("levels", "l2", "comma-separated levels to scale: l1,l2,dram")
	factor := flag.Int("factor", 4, "scaling factor for the selected levels")
	benches := flag.String("bench", "", "comma-separated benchmarks (default: all 19)")
	base := flag.String("base", "", "benchmark whose spec seeds workload-axis variants")
	coalesce := flag.String("coalesce", "", "comma-separated lines-per-access values to sweep (needs -base)")
	tlp := flag.String("tlp", "", "comma-separated warps-per-core values to sweep (needs -base)")
	ws := flag.String("ws", "", "comma-separated working-set sizes in KB to sweep (needs -base)")
	workers := flag.Int("j", 0, "simulation workers (default GOMAXPROCS)")
	profiles := prof.AddFlags()
	flag.Parse()

	if err := exp.ValidateWorkers(*workers); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := profiles.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer profiles.Stop()
	defer profiles.ExitOnSignal(nil)()

	cfg := scaledConfig(*levels, *factor)

	refs, err := workloadAxis(*base, *benches, *coalesce, *tlp, *ws)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// One sweep call covers the whole grid: both configurations × every
	// workload, deduplicated and simulated concurrently on the pool.
	s := exp.NewScheduler(exp.WithWorkers(*workers), exp.WithProgress(os.Stderr))
	res, err := s.Sweep([]config.Config{gpumembw.Baseline(), cfg}, refs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		profiles.Stop() // os.Exit skips the deferred call
		os.Exit(1)
	}

	speedups := res.Speedups(0)
	fmt.Printf("%-24s %10s\n", "workload", "speedup")
	sum := 0.0
	for w, name := range res.Workloads {
		fmt.Printf("%-24s %9.2fx\n", name, speedups[w][1])
		sum += speedups[w][1]
	}
	fmt.Printf("%-24s %9.2fx\n", "AVG", sum/float64(len(res.Workloads)))

	baseCfg := config.Baseline()
	est := area.Compare(&baseCfg, &cfg)
	fmt.Printf("\narea: +%.1f KB storage, +%.2f mm2 crossbar wires, %.2f mm2 total (%.2f%% of die)\n",
		est.StorageKB, est.CrossbarMM2, est.TotalMM2, 100*est.OverheadFrac)
}

// scaledConfig derives the architecture-axis design point: the baseline
// with the selected memory levels scaled by factor, validated and named
// after the selection.
func scaledConfig(levels string, factor int) config.Config {
	cfg := gpumembw.Baseline()
	cfg.Name = fmt.Sprintf("%s-%dx", levels, factor)
	for _, level := range strings.Split(levels, ",") {
		switch strings.TrimSpace(level) {
		case "l1":
			cfg.L1.MissQueueEntries *= factor
			cfg.L1.MSHREntries *= factor
			cfg.Core.MemPipelineWidth *= factor
		case "l2":
			cfg.L2.MissQueueEntries *= factor
			cfg.L2.ResponseQueueEntries *= factor
			cfg.L2.MSHREntries *= factor
			cfg.L2.AccessQueueEntries *= factor
			cfg.L2.DataPortBytes *= factor
			cfg.Icnt.ReqFlitBytes *= factor
			cfg.Icnt.ReplyFlitBytes *= factor
			cfg.L2.NumBanks *= factor
		case "dram":
			cfg.DRAM.SchedQueueEntries *= factor
			cfg.DRAM.BanksPerChip *= factor
			cfg.DRAM.BusWidthBits *= factor
		default:
			fmt.Fprintf(os.Stderr, "unknown level %q (want l1, l2 or dram)\n", level)
			os.Exit(2)
		}
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return cfg
}

// workloadAxis expands the workload side of the grid. With -base set, it
// derives inline spec variants from the named benchmark's registered
// spec, crossing every provided axis (coalescing × TLP × working set);
// otherwise it returns the selected (default: all 19) benchmarks.
func workloadAxis(base, benches, coalesce, tlp, ws string) ([]exp.WorkloadRef, error) {
	axesGiven := coalesce != "" || tlp != "" || ws != ""
	if base != "" && benches != "" {
		return nil, fmt.Errorf("bwexplore: -base and -bench are mutually exclusive")
	}
	if base == "" {
		if axesGiven {
			return nil, fmt.Errorf("bwexplore: -coalesce/-tlp/-ws need -base")
		}
		names := gpumembw.BenchmarkNames()
		if benches != "" {
			names = cliutil.SplitCSV(benches)
		}
		refs := make([]exp.WorkloadRef, len(names))
		for i, b := range names {
			refs[i] = exp.BenchRef(b)
		}
		return refs, nil
	}
	if !axesGiven {
		return nil, fmt.Errorf("bwexplore: -base needs at least one of -coalesce, -tlp, -ws")
	}
	spec, err := gpumembw.SpecByName(base)
	if err != nil {
		return nil, err
	}
	coalesceVals, err := axisValues(coalesce, "coalesce", spec.LinesPerAccess)
	if err != nil {
		return nil, err
	}
	tlpVals, err := axisValues(tlp, "tlp", spec.WarpsPerCore)
	if err != nil {
		return nil, err
	}
	wsVals, err := axisValues(ws, "ws", spec.WorkingSetKB)
	if err != nil {
		return nil, err
	}
	var refs []exp.WorkloadRef
	for _, c := range coalesceVals {
		for _, t := range tlpVals {
			for _, w := range wsVals {
				v := spec
				v.Name = variantName(base, coalesce != "", c, tlp != "", t, ws != "", w)
				v.LinesPerAccess = c
				v.WarpsPerCore = t
				v.WorkingSetKB = w
				if err := v.Validate(); err != nil {
					return nil, err
				}
				refs = append(refs, exp.SpecRef(v))
			}
		}
	}
	return refs, nil
}

// axisValues parses one comma-separated workload axis; an empty axis
// pins the base spec's own value.
func axisValues(s, name string, baseVal int) ([]int, error) {
	if s == "" {
		return []int{baseVal}, nil
	}
	var vals []int
	for _, p := range cliutil.SplitCSV(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bwexplore: -%s: %w", name, err)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// variantName labels a spec variant with only the axes actually swept,
// e.g. "mm/c4/t24".
func variantName(base string, hasC bool, c int, hasT bool, t int, hasW bool, w int) string {
	name := base
	if hasC {
		name += fmt.Sprintf("/c%d", c)
	}
	if hasT {
		name += fmt.Sprintf("/t%d", t)
	}
	if hasW {
		name += fmt.Sprintf("/ws%d", w)
	}
	return name
}
