// Command paperfigs regenerates every table and figure of the paper's
// evaluation section and writes the rendered tables to stdout (or a file).
//
// Usage:
//
//	paperfigs                    # everything (several minutes)
//	paperfigs -only fig1,fig8    # selected sections
//	paperfigs -o EXPERIMENTS.out # write to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gpumembw/internal/exp"
)

func main() {
	only := flag.String("only", "", "comma-separated sections ("+strings.Join(exp.Sections, ",")+")")
	outPath := flag.String("o", "", "output file (default stdout)")
	quiet := flag.Bool("q", false, "suppress per-simulation progress on stderr")
	flag.Parse()

	var sections []string
	if *only != "" {
		sections = strings.Split(*only, ",")
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}

	start := time.Now()
	r := exp.NewRunner(progress)
	if err := r.Report(out, sections); err != nil {
		fmt.Fprintln(os.Stderr, "experiment failed:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Second))
}
