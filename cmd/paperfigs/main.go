// Command paperfigs regenerates every table and figure of the paper's
// evaluation section and writes the rendered tables to stdout (or a file).
// Simulations run on a worker pool and shared (config, benchmark) cells —
// Baseline appears in every speedup denominator — simulate exactly once,
// so the output is byte-identical for any -j.
//
// Usage:
//
//	paperfigs                    # everything (minutes; scales with -j)
//	paperfigs -only fig1,fig8    # selected sections
//	paperfigs -j 8               # worker-pool size (default GOMAXPROCS)
//	paperfigs -json              # machine-readable results
//	paperfigs -o EXPERIMENTS.out # write to a file
//	paperfigs -cpuprofile p.out  # profile the run for go tool pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gpumembw/internal/exp"
	"gpumembw/internal/prof"
)

func main() {
	only := flag.String("only", "", "comma-separated sections ("+strings.Join(exp.Sections, ",")+")")
	outPath := flag.String("o", "", "output file (default stdout)")
	workers := flag.Int("j", 0, "simulation workers (default GOMAXPROCS)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	quiet := flag.Bool("q", false, "suppress per-simulation progress on stderr")
	profiles := prof.AddFlags()
	flag.Parse()

	if err := exp.ValidateWorkers(*workers); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := profiles.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer profiles.Stop()
	defer profiles.ExitOnSignal(nil)()

	var sections []string
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			sections = append(sections, strings.TrimSpace(s))
		}
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	opts := []exp.Option{exp.WithWorkers(*workers)}
	if !*quiet {
		opts = append(opts, exp.WithProgress(os.Stderr))
	}

	start := time.Now()
	s := exp.NewScheduler(opts...)
	var err error
	if *asJSON {
		err = s.ReportJSON(out, sections)
	} else {
		err = s.Report(out, sections)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiment failed:", err)
		profiles.Stop() // os.Exit skips the deferred call
		os.Exit(1)
	}
	st := s.Stats()
	fmt.Fprintf(os.Stderr, "done in %v (%d simulated, %d cache hits, %d workers)\n",
		time.Since(start).Round(time.Second), st.Simulated, st.CacheHits, s.Workers())
}
