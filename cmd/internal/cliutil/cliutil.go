// Package cliutil holds tiny flag-parsing helpers shared by the
// command-line tools, so their flag semantics cannot drift apart.
package cliutil

import "strings"

// SplitCSV splits a comma-separated flag value, trimming whitespace and
// dropping empty items.
func SplitCSV(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
