// Package cliutil holds tiny flag-parsing helpers shared by the
// command-line tools, so their flag semantics cannot drift apart.
package cliutil

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"gpumembw/internal/config"
)

// SplitCSV splits a comma-separated flag value, trimming whitespace and
// dropping empty items.
func SplitCSV(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ParseBytes parses a byte-size flag value: a non-negative integer with
// an optional K/M/G suffix (binary, i.e. KiB/MiB/GiB; case-insensitive,
// optional trailing B or iB). "0" means unbounded wherever the value is
// a bound.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	upper := strings.ToUpper(t)
	for _, suffix := range []struct {
		tag string
		mul int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
	} {
		if strings.HasSuffix(upper, suffix.tag) {
			mult = suffix.mul
			t = t[:len(t)-len(suffix.tag)]
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte size %q: want a non-negative integer with optional K/M/G suffix", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("byte size %q overflows", s)
	}
	return n * mult, nil
}

// StringList collects a repeatable string flag (flag.Value), e.g. the
// -set and -spec flags of gpusim/gpusimctl.
type StringList []string

// String implements flag.Value.
func (l *StringList) String() string { return strings.Join(*l, ",") }

// Set implements flag.Value.
func (l *StringList) Set(v string) error { *l = append(*l, v); return nil }

// ResolveConfigFlags resolves the -config/-config-file/-set flag trio
// shared by gpusim and gpusimctl into exactly one configuration form —
// a preset name, a full inline config, or a patch — with ONE set of
// semantics, so the two tools provably land every spelling on the same
// simulation cell: a full config document takes the -set overrides
// applied locally; a patch document, or a bare preset name with -set
// knobs, stays a patch with the -set delta merged on top (base
// resolution stays wherever the value is consumed — locally in gpusim,
// daemon-side for gpusimctl). Callers reject -config/-config-file
// conflicts before calling; file takes precedence here.
func ResolveConfigFlags(name, file string, sets []string) (preset string, cfg *config.Config, patch *config.Patch, err error) {
	var setDelta json.RawMessage
	if len(sets) > 0 {
		if setDelta, err = config.DeltaFromSets(sets); err != nil {
			return "", nil, nil, err
		}
	}
	if file != "" {
		cfg, patch, err = config.ReadConfigFile(file)
		if err != nil {
			return "", nil, nil, err
		}
		if cfg != nil {
			if err = config.ApplyDelta(cfg, setDelta); err != nil {
				return "", nil, nil, err
			}
			return "", cfg, nil, nil
		}
		if setDelta != nil {
			if patch.Delta, err = config.MergeDeltas(patch.Delta, setDelta); err != nil {
				return "", nil, nil, err
			}
		}
		return "", nil, patch, nil
	}
	if setDelta != nil {
		return "", nil, &config.Patch{Base: name, Delta: setDelta}, nil
	}
	return name, nil, nil, nil
}
