// Command gpusim runs one workload on one memory-hierarchy configuration
// and prints the full metric set the paper measures, as text or JSON.
// The workload is a Table II benchmark name (-bench) or any custom
// workload spec as JSON (-spec); the configuration is a preset name
// (-config), a full config or patch document (-config-file), and/or
// knob=value overrides (-set) — see README.md "Custom workloads" and
// "Custom hardware configs".
//
// Usage:
//
//	gpusim -bench mm -config baseline
//	gpusim -bench mm -config L2-4x -json
//	gpusim -spec custom.json -config baseline -json
//	gpusim -bench mm -config-file mitigated.json
//	gpusim -bench mm -config baseline -set l1.mshr_entries=128 -set l1.miss_queue_entries=32
//	gpusim -bench mm -config baseline -profile prof.json
//	gpusim -bench mm -cpuprofile p.out
//	gpusim -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"gpumembw"
	"gpumembw/cmd/internal/cliutil"
	"gpumembw/internal/prof"
	"gpumembw/internal/trace"
)

func main() {
	bench := flag.String("bench", "mm", "benchmark name (see -list)")
	specPath := flag.String("spec", "", "path to a workload spec JSON (\"-\" for stdin); overrides -bench")
	cfgName := flag.String("config", "baseline", "configuration preset (see -list)")
	cfgFile := flag.String("config-file", "", "path to a config or patch JSON (\"-\" for stdin); overrides -config")
	var sets cliutil.StringList
	flag.Var(&sets, "set", "knob=value config override, e.g. l1.mshr_entries=128 (repeatable)")
	asJSON := flag.Bool("json", false, "emit the metrics as JSON")
	profileOut := flag.String("profile", "", "write the hierarchy bottleneck profile JSON to this file (\"-\" for stdout)")
	list := flag.Bool("list", false, "list benchmarks and configurations")
	engine := flag.String("engine", "event", "simulation engine: event (calendar-queue) or tick (reference loop); results are byte-identical")
	profiles := prof.AddFlags()
	flag.Parse()
	if err := gpumembw.SetEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "gpusim:", err)
		os.Exit(2)
	}
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *specPath != "" && explicit["bench"] {
		fmt.Fprintln(os.Stderr, "gpusim: -bench and -spec are mutually exclusive")
		os.Exit(2)
	}
	if *cfgFile != "" && explicit["config"] {
		fmt.Fprintln(os.Stderr, "gpusim: -config and -config-file are mutually exclusive")
		os.Exit(2)
	}

	if err := profiles.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer profiles.Stop()
	defer profiles.ExitOnSignal(nil)()

	if *list {
		fmt.Println("benchmarks (Table II order):")
		for _, n := range gpumembw.BenchmarkNames() {
			fmt.Printf("  %s\n", n)
		}
		fmt.Println("configs:")
		for _, n := range gpumembw.ConfigNames() {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	cref, err := configRef(*cfgName, *cfgFile, sets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpusim:", err)
		os.Exit(1)
	}

	// A single cell still goes through the engine so config/workload
	// validation, labels and metrics assembly happen in one place — the
	// same place the daemon and the sweep tools use, which is what keeps
	// `gpusim -json` byte-identical to their output for the same cell.
	s := gpumembw.NewScheduler()
	ref := gpumembw.BenchRef(*bench)
	if *specPath != "" {
		spec, err := trace.ReadSpecFile(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpusim:", err)
			os.Exit(1)
		}
		ref = gpumembw.SpecRef(spec)
	}
	start := time.Now()
	res, err := s.RunJobEx(context.Background(), gpumembw.Job{Config: cref, Workload: ref}, *profileOut != "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulation failed:", err)
		profiles.Stop() // os.Exit skips the deferred call
		os.Exit(1)
	}
	m := res.Metrics
	elapsed := time.Since(start)

	if *profileOut != "" {
		if err := writeProfile(*profileOut, res.Profile); err != nil {
			fmt.Fprintln(os.Stderr, "gpusim:", err)
			profiles.Stop()
			os.Exit(1)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("benchmark      %s on %s\n", m.Benchmark, m.Config)
	fmt.Printf("cycles         %d (%.1f ms wall, simulated in %v)\n", m.Cycles, m.WallSeconds*1e3, elapsed.Round(time.Millisecond))
	fmt.Printf("instructions   %d\n", m.Instructions)
	fmt.Printf("IPC            %.3f\n", m.IPC)
	fmt.Printf("issue stalls   %.1f%% of active cycles\n", 100*m.IssueStallFrac)
	for i, l := range m.IssueStalls.Labels {
		fmt.Printf("  %-9s    %5.1f%%\n", l, 100*m.IssueStalls.Fractions()[i])
	}
	fmt.Printf("AML            %.0f core cycles\n", m.AML)
	fmt.Printf("L2-AHL         %.0f core cycles\n", m.L2AHL)
	fmt.Printf("L1 miss rate   %.1f%%   L2 miss rate %.1f%%\n", 100*m.L1MissRate, 100*m.L2MissRate)
	fmt.Printf("L1 stalls      ")
	for i, l := range m.L1Stalls.Labels {
		fmt.Printf("%s %.1f%%  ", l, 100*m.L1Stalls.Fractions()[i])
	}
	fmt.Println()
	fmt.Printf("L2 stalls      ")
	for i, l := range m.L2Stalls.Labels {
		fmt.Printf("%s %.1f%%  ", l, 100*m.L2Stalls.Fractions()[i])
	}
	fmt.Println()
	fmt.Printf("L2 accessq     full %.0f%% of usage lifetime\n", 100*m.L2AccessOcc.FullFraction())
	fmt.Printf("DRAM schedq    full %.0f%% of usage lifetime\n", 100*m.DRAMSchedOcc.FullFraction())
	fmt.Printf("DRAM bw eff    %.1f%%   row hits %.1f%%\n", 100*m.DRAMBandwidthEff, 100*m.DRAMRowHitRate)
	fmt.Printf("icnt util      req %.1f%%  reply %.1f%%\n", 100*m.ReqNetUtil, 100*m.ReplyNetUtil)
	if m.Truncated {
		fmt.Println("WARNING: run truncated by MaxCycles")
	}
}

// writeProfile emits the bottleneck profile as indented JSON — the same
// encoding the daemon persists and serves, so offline and service runs
// produce byte-comparable artifacts.
func writeProfile(path string, p *gpumembw.Profile) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return err
	}
	if path != "-" {
		fmt.Fprintf(os.Stderr, "profile: bottleneck %s (%s); wrote %s\n",
			p.Verdict.Bottleneck, p.Verdict.Reason, path)
	}
	return nil
}

// configRef assembles the configuration reference from -config,
// -config-file and -set through the shared cliutil resolution, so
// gpusim and gpusimctl resolve every spelling to the same cell.
func configRef(name, file string, sets []string) (gpumembw.ConfigRef, error) {
	preset, cfg, patch, err := cliutil.ResolveConfigFlags(name, file, sets)
	switch {
	case err != nil:
		return gpumembw.ConfigRef{}, err
	case cfg != nil:
		return gpumembw.InlineConfig(*cfg), nil
	case patch != nil:
		return gpumembw.PatchRef(*patch), nil
	default:
		return gpumembw.PresetRef(preset), nil
	}
}
