// Command gpusimd runs the simulator as a long-lived HTTP service: jobs
// are submitted asynchronously, identical (config, benchmark) cells are
// simulated once and shared across requests, and an optional disk cache
// persists results across restarts. See internal/server for the routes
// and client (or cmd/gpusimctl) for a typed way to talk to it.
//
// Usage:
//
//	gpusimd                              # listen on :8372, GOMAXPROCS workers
//	gpusimd -addr 127.0.0.1:9000 -j 4    # explicit listen address and workers
//	gpusimd -cache-dir /var/cache/gpusim # persist results across restarts
//	gpusimd -max-queue 256               # bound the job queue (503 beyond it)
//
// SIGINT/SIGTERM trigger a graceful shutdown: new submissions get 503,
// queued jobs are canceled, in-flight cells drain (up to 30s), and any
// -cpuprofile/-memprofile output is flushed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"gpumembw/internal/prof"
	"gpumembw/internal/server"
)

func main() {
	addr := flag.String("addr", ":8372", "listen address")
	workers := flag.Int("j", 0, "simulation workers (default GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "persist simulation results under this directory")
	maxQueue := flag.Int("max-queue", server.DefaultMaxQueue, "bound on the job queue")
	quiet := flag.Bool("q", false, "suppress per-simulation progress on stderr")
	profiles := prof.AddFlags()
	flag.Parse()

	if err := profiles.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer profiles.Stop()

	opts := server.Options{
		Workers:  *workers,
		MaxQueue: *maxQueue,
		CacheDir: *cacheDir,
		ErrLog:   os.Stderr,
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	srv, err := server.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		profiles.Stop() // os.Exit skips the deferred call
		os.Exit(2)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	release := profiles.ExitOnSignal(func() {
		fmt.Fprintln(os.Stderr, "gpusimd: shutting down (draining in-flight cells)...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "gpusimd:", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "gpusimd:", err)
		}
		st := srv.Stats()
		fmt.Fprintf(os.Stderr, "gpusimd: drained (%d simulated, %d memo hits, %d disk hits)\n",
			st.Scheduler.Simulated, st.Scheduler.CacheHits, st.Scheduler.DiskHits)
	})
	defer release()

	fmt.Fprintf(os.Stderr, "gpusimd: listening on %s (%d workers, queue %d", *addr, srv.Stats().Workers, *maxQueue)
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, ", cache %s", *cacheDir)
	}
	fmt.Fprintln(os.Stderr, ")")
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "gpusimd:", err)
		profiles.Stop() // os.Exit skips the deferred call
		os.Exit(1)
	}
	// ErrServerClosed means the signal handler initiated the shutdown —
	// the only path that closes the listener. Block until it finishes
	// flushing profiles and exits the process with the 128+signal status;
	// returning here would race it with a spurious status 0.
	select {}
}
