// Command gpusimd runs the simulator as a long-lived HTTP service: jobs
// are submitted asynchronously, identical (config, benchmark) cells are
// simulated once and shared across requests, and an optional disk cache
// persists results across restarts. See internal/server for the routes
// and client (or cmd/gpusimctl) for a typed way to talk to it.
//
// Usage:
//
//	gpusimd                              # listen on :8372, GOMAXPROCS workers
//	gpusimd -addr 127.0.0.1:9000 -j 4    # explicit listen address and workers
//	gpusimd -cache-dir /var/cache/gpusim # persist results across restarts
//	gpusimd -cache-max-bytes 64M         # bound the disk cache (LRU eviction)
//	gpusimd -max-queue 256               # bound the job queue (503 beyond it)
//	gpusimd -rate-limit 50 -rate-burst 100        # per-client 429 throttle
//	gpusimd -max-inflight-per-client 64           # per-client job quota
//
// Coordinator mode shards the cell space across a fleet of workers
// instead of simulating locally — each -worker is a gpusimd base URL;
// cells are placed by rendezvous-hashing their content-addressed IDs,
// so the same cell lands on the same worker from any entry point:
//
//	gpusimd -worker http://10.0.0.1:8372 -worker http://10.0.0.2:8372
//	gpusimd -worker ... -probe-interval 500ms -probe-fails 3
//
// The coordinator serves the identical /v1 API plus GET /v1/cluster and
// POST /v1/cluster/drain; unhealthy workers' cells are re-submitted to
// the survivors (the simulator is deterministic, so placement never
// changes results).
//
// Operational state is scrapeable at GET /metrics (Prometheus text
// format) and GET /v1/stats (JSON); the two reconcile exactly when the
// daemon is quiescent. Structured logs (log/slog text format) stream to
// stderr: one event per job transition, tagged with the request's
// X-Trace-Id. -debug-addr exposes net/http/pprof on a SEPARATE listener
// — bind it to localhost; never the public service port:
//
//	gpusimd -debug-addr 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile
//
// SIGINT/SIGTERM trigger a graceful shutdown: new submissions get 503,
// queued jobs are canceled, in-flight cells drain (up to 30s), and any
// -cpuprofile/-memprofile output is flushed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // -debug-addr listener only; never on the API mux
	"os"
	"time"

	"gpumembw/cmd/internal/cliutil"
	"gpumembw/internal/prof"
	"gpumembw/internal/server"
)

func main() {
	addr := flag.String("addr", ":8372", "listen address")
	workers := flag.Int("j", 0, "simulation workers (default GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "persist simulation results under this directory")
	cacheMax := flag.String("cache-max-bytes", "0", "bound the disk cache (K/M/G suffixes; 0 = unbounded); LRU entries are evicted beyond it")
	maxQueue := flag.Int("max-queue", server.DefaultMaxQueue, "bound on the job queue")
	rateLimit := flag.Float64("rate-limit", 0, "per-client mutating requests per second (0 = unlimited); excess gets 429 + Retry-After")
	rateBurst := flag.Int("rate-burst", 0, "token-bucket burst for -rate-limit (0 = max(1, ceil(rate)))")
	maxInflight := flag.Int("max-inflight-per-client", 0, "bound on one client's queued+running jobs (0 = unlimited); excess gets 429")
	quiet := flag.Bool("q", false, "suppress per-simulation progress on stderr")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this SEPARATE listener (bind to localhost; empty = disabled)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	var workerAddrs cliutil.StringList
	flag.Var(&workerAddrs, "worker", "coordinator mode: shard cells across this gpusimd worker URL (repeatable)")
	probeInterval := flag.Duration("probe-interval", time.Second, "coordinator mode: worker /healthz probe period")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "coordinator mode: per-probe timeout")
	probeFails := flag.Int("probe-fails", 2, "coordinator mode: consecutive probe failures before a worker's cells move")
	profiles := prof.AddFlags()
	flag.Parse()

	cacheMaxBytes, err := cliutil.ParseBytes(*cacheMax)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpusimd: -cache-max-bytes:", err)
		os.Exit(2)
	}

	if err := profiles.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer profiles.Stop()

	logger, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpusimd:", err)
		profiles.Stop()
		os.Exit(2)
	}
	startDebugListener(*debugAddr)

	if len(workerAddrs) > 0 {
		runCoordinator(*addr, workerAddrs, *probeInterval, *probeTimeout, *probeFails, profiles, logger)
		return
	}

	opts := server.Options{
		Workers:              *workers,
		MaxQueue:             *maxQueue,
		CacheDir:             *cacheDir,
		CacheMaxBytes:        cacheMaxBytes,
		RateLimit:            *rateLimit,
		RateBurst:            *rateBurst,
		MaxInflightPerClient: *maxInflight,
		ErrLog:               os.Stderr,
		Logger:               logger,
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	srv, err := server.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		profiles.Stop() // os.Exit skips the deferred call
		os.Exit(2)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	release := profiles.ExitOnSignal(func() {
		fmt.Fprintln(os.Stderr, "gpusimd: shutting down (draining in-flight cells)...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "gpusimd:", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "gpusimd:", err)
		}
		st := srv.Stats()
		fmt.Fprintf(os.Stderr, "gpusimd: drained (%d simulated, %d memo hits, %d disk hits)\n",
			st.Scheduler.Simulated, st.Scheduler.CacheHits, st.Scheduler.DiskHits)
	})
	defer release()

	fmt.Fprintf(os.Stderr, "gpusimd: listening on %s (%d workers, queue %d", *addr, srv.Stats().Workers, *maxQueue)
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, ", cache %s", *cacheDir)
		if cacheMaxBytes > 0 {
			fmt.Fprintf(os.Stderr, " capped at %d bytes", cacheMaxBytes)
		}
	}
	if *rateLimit > 0 {
		fmt.Fprintf(os.Stderr, ", rate limit %g/s", *rateLimit)
	}
	if *maxInflight > 0 {
		fmt.Fprintf(os.Stderr, ", per-client inflight %d", *maxInflight)
	}
	fmt.Fprintln(os.Stderr, ")")
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "gpusimd:", err)
		profiles.Stop() // os.Exit skips the deferred call
		os.Exit(1)
	}
	// ErrServerClosed means the signal handler initiated the shutdown —
	// the only path that closes the listener. Block until it finishes
	// flushing profiles and exits the process with the 128+signal status;
	// returning here would race it with a spurious status 0.
	select {}
}

// newLogger builds the daemon's structured logger: slog text format on
// stderr at the requested level.
func newLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

// startDebugListener serves net/http/pprof (registered on the default
// mux by the blank import) on its own listener, so profiling endpoints
// never share a port with the public API. No-op when addr is empty.
func startDebugListener(addr string) {
	if addr == "" {
		return
	}
	go func() {
		fmt.Fprintf(os.Stderr, "gpusimd: pprof debug listener on http://%s/debug/pprof/\n", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "gpusimd: debug listener:", err)
		}
	}()
}

// runCoordinator serves the cluster entry point: no local simulation,
// every cell rendezvous-routed to a -worker daemon.
func runCoordinator(addr string, workers []string, probeInterval, probeTimeout time.Duration, probeFails int, profiles *prof.Flags, logger *slog.Logger) {
	co, err := server.NewCoordinator(server.CoordinatorOptions{
		Workers:       workers,
		ProbeInterval: probeInterval,
		ProbeTimeout:  probeTimeout,
		ProbeFails:    probeFails,
		ErrLog:        os.Stderr,
		Logger:        logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		profiles.Stop() // os.Exit skips the deferred call
		os.Exit(2)
	}

	hs := &http.Server{Addr: addr, Handler: co.Handler()}
	release := profiles.ExitOnSignal(func() {
		fmt.Fprintln(os.Stderr, "gpusimd: coordinator shutting down...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := co.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "gpusimd:", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "gpusimd:", err)
		}
	})
	defer release()

	fmt.Fprintf(os.Stderr, "gpusimd: coordinating %d workers on %s (probe every %s, unhealthy after %d misses)\n",
		len(workers), addr, probeInterval, probeFails)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "gpusimd:", err)
		profiles.Stop() // os.Exit skips the deferred call
		os.Exit(1)
	}
	select {}
}
