package gpumembw_test

import (
	"testing"

	"gpumembw"
)

func TestConfigsRegistry(t *testing.T) {
	cfgs := gpumembw.Configs()
	for _, name := range []string{
		"baseline", "L1-4x", "L2-4x", "DRAM-4x", "L1+L2-4x", "L2+DRAM-4x",
		"All-4x", "HBM", "cost-effective-16+48", "cost-effective-16+68",
		"cost-effective-32+52", "asymmetric-16+48-only", "P-inf", "P-dram",
	} {
		cfg, ok := cfgs[name]
		if !ok {
			t.Errorf("missing config %q", name)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
	if _, err := gpumembw.ConfigByName("baseline"); err != nil {
		t.Error(err)
	}
	if _, err := gpumembw.ConfigByName("bogus"); err == nil {
		t.Error("unknown config accepted")
	}
}

func TestBenchmarkRegistry(t *testing.T) {
	names := gpumembw.BenchmarkNames()
	if len(names) != 19 {
		t.Fatalf("benchmarks = %d, want 19", len(names))
	}
	if len(gpumembw.Benchmarks()) != 19 {
		t.Fatal("Benchmarks() incomplete")
	}
	for _, n := range names {
		if _, err := gpumembw.WorkloadByName(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestSchedulerFacade(t *testing.T) {
	s := gpumembw.NewScheduler(gpumembw.WithWorkers(2))
	jobs := []gpumembw.Job{
		gpumembw.BenchJob(gpumembw.Baseline(), "leukocyte"),
		gpumembw.BenchJob(gpumembw.InfiniteBW(), "leukocyte"),
		gpumembw.BenchJob(gpumembw.InfiniteBW(), "leukocyte"), // duplicate
	}
	if err := s.RunJobs(jobs); err != nil {
		t.Fatal(err)
	}
	sp, err := s.Speedup(gpumembw.InfiniteBW(), "leukocyte")
	if err != nil {
		t.Fatal(err)
	}
	if sp < 0.9 {
		t.Errorf("P∞ speedup %.2f implausibly low", sp)
	}
	if st := s.Stats(); st.Simulated != 2 {
		t.Errorf("simulated = %d, want 2 (duplicate cell must dedupe)", st.Simulated)
	}
	if n := len(gpumembw.Sections()); n != 14 {
		t.Errorf("sections = %d, want 14", n)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	// Small custom workload through the public API only.
	wl, err := gpumembw.WorkloadSpec{
		Name: "facade", Iters: 6,
		LoadsPerIter: 2, ALUPerIter: 4, DepDist: 1,
		Pattern: gpumembw.PatStream, WarpsPerCore: 4, Seed: 2,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpumembw.Baseline()
	cfg.Core.NumCores = 2
	m, err := gpumembw.Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if m.Instructions != 2*4*6*int64(2+4) {
		t.Fatalf("instructions = %d", m.Instructions)
	}
	pinf := gpumembw.InfiniteBW()
	pinf.Core.NumCores = 2
	mi, err := gpumembw.Run(pinf, wl)
	if err != nil {
		t.Fatal(err)
	}
	if mi.Speedup(m) < 0.9 {
		t.Errorf("P∞ speedup %.2f implausibly low", mi.Speedup(m))
	}
}

func TestRunSpecFacade(t *testing.T) {
	// A custom spec through the one-call path matches the engine path for
	// the same (config, spec) cell.
	spec := gpumembw.WorkloadSpec{
		Name: "facade-spec", Iters: 4,
		LoadsPerIter: 2, ALUPerIter: 4, DepDist: 1,
		Pattern: gpumembw.PatRandomWS, WorkingSetKB: 64, WarpsPerCore: 4, Seed: 5,
	}
	m, err := gpumembw.RunSpec(gpumembw.Baseline(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.Benchmark != "facade-spec" || m.Cycles <= 0 {
		t.Fatalf("metrics = %s/%d cycles", m.Benchmark, m.Cycles)
	}
	ref, err := gpumembw.NewScheduler().RunJob(gpumembw.SpecJob(gpumembw.Baseline(), spec))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Cycles != m.Cycles {
		t.Fatalf("RunSpec and SpecJob disagree (%d vs %d cycles)", m.Cycles, ref.Cycles)
	}
	if _, err := gpumembw.RunSpec(gpumembw.Baseline(), gpumembw.WorkloadSpec{Name: "bad"}); err == nil {
		t.Fatal("malformed spec accepted")
	}
}

func TestSpecByNameAndSweepFacade(t *testing.T) {
	sp, err := gpumembw.SpecByName("leukocyte")
	if err != nil {
		t.Fatal(err)
	}
	variant := sp
	variant.Name = "leukocyte-lowtlp"
	variant.WarpsPerCore = 8
	res, err := gpumembw.Sweep(
		gpumembw.SweepConfigs([]gpumembw.Config{gpumembw.Baseline()}),
		[]gpumembw.WorkloadRef{gpumembw.BenchRef("leukocyte"), gpumembw.SpecRef(variant)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 || len(res.Cells[0]) != 1 {
		t.Fatalf("grid shape = %dx%d", len(res.Cells), len(res.Cells[0]))
	}
	if res.Workloads[1] != "leukocyte-lowtlp" {
		t.Fatalf("workload labels = %v", res.Workloads)
	}
	if res.Cells[0][0].Cycles == res.Cells[1][0].Cycles {
		t.Fatal("TLP variant aliased the preset cell")
	}
}
