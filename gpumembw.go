// Package gpumembw reproduces "Evaluating and Mitigating Bandwidth
// Bottlenecks Across the Memory Hierarchy in GPUs" (Dublish, Nagarajan,
// Topham — ISPASS 2017) as a cycle-level GPU memory-hierarchy simulator.
//
// The library simulates a GTX 480-class GPU — SIMT cores with GTO warp
// scheduling behind write-evict L1s, flit-granularity request/reply
// crossbars, a banked write-back L2 organized into memory partitions, and
// FR-FCFS GDDR5 channels — and measures where bandwidth bottlenecks form:
// per-cause issue stalls, L1/L2 pipeline stalls, queue-occupancy histograms,
// memory latencies, and DRAM bandwidth efficiency.
//
// # Quick start
//
//	wl, _ := gpumembw.WorkloadByName("mm")
//	m, err := gpumembw.Run(gpumembw.Baseline(), wl)
//	if err != nil { ... }
//	fmt.Printf("IPC %.2f, stalled %.0f%%, AML %.0f cycles\n",
//	    m.IPC, 100*m.IssueStallFrac, m.AML)
//
// Configurations mirror the paper's design space: Baseline (Table I), the
// 4× scaled points of Fig. 10 (ScaledL1/L2/DRAM and combinations), the
// cost-effective asymmetric crossbars of Fig. 12 (16+48, 16+68, 32+52),
// the ideal memory systems of Table II (InfiniteBW, InfiniteDRAM), the
// fixed-latency sweep of Fig. 3, and an HBM-class DRAM.
//
// Nor are configurations limited to those presets: a Config is a
// first-class value accepted everywhere a preset name is — validated,
// canonicalized and content-addressed (ConfigID) — and the paper's
// Table III mitigations (more MSHRs, deeper miss queues, more L2 banks,
// scaled DRAM) are one ConfigPatch away:
//
//	cfg, _ := gpumembw.ConfigByName("baseline")
//	cfg.Name, cfg.L1.MSHREntries = "baseline-mshr128", 128
//	m, err := gpumembw.RunConfig(cfg, "mm")
//
// Workloads are not limited to the paper's 19 benchmarks: a WorkloadSpec
// is a first-class value accepted everywhere a benchmark name is, so any
// scenario between the canned points — a different coalescing degree,
// TLP, working set or sharing mix — is one RunSpec call away:
//
//	spec, _ := gpumembw.SpecByName("mm")
//	spec.Name, spec.LinesPerAccess = "mm-uncoalesced", 8
//	m, err := gpumembw.RunSpec(gpumembw.Baseline(), spec)
//
// Sweeps over many (configuration, workload) cells should go through the
// Scheduler — a concurrent, memoized experiment engine that deduplicates
// shared cells and runs the rest on a worker pool:
//
//	s := gpumembw.NewScheduler(gpumembw.WithWorkers(8))
//	speedup, err := s.Speedup(gpumembw.ScaledL2(), "mm")
//	grid, err := s.Sweep(configs, workloadRefs) // workload-axis cross products
//
// The commands (cmd/paperfigs, cmd/gpusim, cmd/bwexplore) regenerate
// every table and figure of the paper; see EXPERIMENTS.md for measured-vs-
// paper results and README.md for a tour. For batch campaigns, cmd/gpusimd
// serves the engine over HTTP as an async job API with a persistent result
// cache — drive it with NewClient or cmd/gpusimctl.
package gpumembw

import (
	"context"
	"io"

	"gpumembw/client"
	"gpumembw/internal/api"
	"gpumembw/internal/config"
	"gpumembw/internal/core"
	"gpumembw/internal/exp"
	"gpumembw/internal/explore"
	"gpumembw/internal/obsv"
	"gpumembw/internal/smcore"
	"gpumembw/internal/trace"
)

// Config is the full architectural description of a simulated GPU
// (Table I baseline plus every Table III knob).
type Config = config.Config

// Metrics holds everything the paper measures for one simulation.
type Metrics = core.Metrics

// Workload is a synthetic trace-driven kernel.
type Workload = smcore.Workload

// WorkloadSpec parameterizes a synthetic kernel (instruction mix, TLP,
// coalescing, working-set geometry, sharing, code footprint). Specs are
// first-class API values: they validate (Validate), canonicalize
// (Canonical), and carry a stable content address (SpecID) that every
// layer — engine memo cells, daemon job IDs, disk-cache entries — keys
// on, so semantically identical specs share one simulation everywhere.
type WorkloadSpec = trace.Spec

// Benchmark couples a workload spec with the paper's Table II reference
// speedups.
type Benchmark = trace.Benchmark

// Pattern selects the address stream of a WorkloadSpec's memory
// instructions; spell it with the constants below or ParsePattern.
type Pattern = trace.Pattern

// Workload access patterns for WorkloadSpec.Pattern.
const (
	PatStream    = trace.PatStream
	PatStrided   = trace.PatStrided
	PatRandomWS  = trace.PatRandomWS
	PatHotShared = trace.PatHotShared
	PatTiled     = trace.PatTiled
)

// ParsePattern converts a pattern name ("stream", "strided", "random-ws",
// "hot-shared", "tiled") into its Pattern value.
func ParsePattern(s string) (Pattern, error) { return trace.ParsePattern(s) }

// Configuration presets, re-exported from internal/config.
var (
	Baseline           = config.Baseline
	ScaledL1           = config.ScaledL1
	ScaledL2           = config.ScaledL2
	ScaledDRAM         = config.ScaledDRAM
	ScaledL1L2         = config.ScaledL1L2
	ScaledL2DRAM       = config.ScaledL2DRAM
	ScaledAll          = config.ScaledAll
	HBM                = config.HBM
	CostEffective16x48 = config.CostEffective16x48
	CostEffective16x68 = config.CostEffective16x68
	CostEffective32x52 = config.CostEffective32x52
	AsymmetricOnly     = config.AsymmetricOnly
	InfiniteBW         = config.InfiniteBW
	InfiniteDRAM       = config.InfiniteDRAM
	FixedL1MissLatency = config.FixedL1MissLatency
	WithCoreClock      = config.WithCoreClock
)

// Run simulates wl on cfg and returns the collected metrics.
func Run(cfg Config, wl *Workload) (Metrics, error) {
	return core.RunWorkload(cfg, wl)
}

// SetEngine selects the process-wide simulation engine by name: "event"
// (the calendar-queue engine, the default) or "tick" (the reference
// tick-everything loop). Both produce byte-identical metrics and
// profiles for every cell; the escape hatch exists for bisecting should
// an engine-parity diff ever appear. Call before building schedulers or
// running simulations; it is not synchronized.
func SetEngine(name string) error {
	e, err := core.ParseEngine(name)
	if err != nil {
		return err
	}
	core.SetDefaultEngine(e)
	return nil
}

// Profile is the hierarchy bottleneck profile of a profiled run: a
// windowed time series of per-level gauges (L1 miss queues and MSHRs,
// crossbar port contention, L2 bank occupancy, DRAM channel and
// row-buffer utilization) plus the derived per-level saturation verdict
// — which level bottlenecked first and longest, the time-resolved view
// behind the paper's Fig. 5 analysis.
type Profile = obsv.Profile

// RunProfiled is Run with the bottleneck profiler attached: it returns
// the identical Metrics (profiling never perturbs simulation state) plus
// the Profile. Sampling costs simulation throughput, so profile runs are
// opt-in everywhere: this entry point, `gpusim -profile`, and the
// daemon's JobSpec.Profile flag.
func RunProfiled(cfg Config, wl *Workload) (Metrics, *Profile, error) {
	return core.RunWorkloadProfiled(cfg, wl)
}

// Scheduler is the concurrent, memoized experiment engine: it expands
// figure/table requests into deduplicated (config, workload) jobs, runs
// them on a worker pool, and caches Metrics so cells shared between
// experiments simulate exactly once. See NewScheduler.
type Scheduler = exp.Scheduler

// Job is one (configuration, workload) simulation cell for
// Scheduler.RunJobs. Build one with BenchJob or SpecJob, or assemble
// refs directly for the preset-name and patch forms.
type Job = exp.Job

// WorkloadRef names a job's workload: a Table II benchmark by name, or
// any custom workload as an inline WorkloadSpec. A spec equal to a
// registered benchmark (labels aside) is the same workload — it shares
// the benchmark's simulation cell.
type WorkloadRef = exp.WorkloadRef

// ConfigRef names a job's hardware configuration: a preset by name, a
// full inline Config, or a mitigation-knob ConfigPatch on a preset. A
// config or patch that resolves to a preset's canonical identity is the
// same hardware — it shares the preset's simulation cell.
type ConfigRef = exp.ConfigRef

// ConfigPatch is a sparse overlay on a named preset — the paper's
// Table III mitigations (more MSHRs, deeper miss queues, more L2 banks,
// scaled DRAM) as small JSON diffs, e.g.
// {"base":"baseline","L1":{"MSHREntries":128}}.
type ConfigPatch = config.Patch

// SweepResult is the metrics grid returned by Sweep and
// Scheduler.Sweep.
type SweepResult = exp.SweepResult

// BenchRef names a Table II benchmark for a WorkloadRef.
func BenchRef(name string) WorkloadRef { return exp.BenchRef(name) }

// SpecRef wraps an inline workload spec for a WorkloadRef.
func SpecRef(sp WorkloadSpec) WorkloadRef { return exp.SpecRef(sp) }

// PresetRef names a configuration preset for a ConfigRef.
func PresetRef(name string) ConfigRef { return exp.PresetRef(name) }

// InlineConfig wraps a full inline configuration for a ConfigRef.
func InlineConfig(cfg Config) ConfigRef { return exp.InlineConfig(cfg) }

// PatchRef wraps a mitigation-knob patch for a ConfigRef.
func PatchRef(p ConfigPatch) ConfigRef { return exp.PatchRef(p) }

// SweepConfigs wraps plain config values as inline refs for Sweep's
// config axis.
func SweepConfigs(cfgs []Config) []ConfigRef { return exp.SweepConfigs(cfgs) }

// BenchJob builds a preset-benchmark job.
func BenchJob(cfg Config, bench string) Job { return exp.BenchJob(cfg, bench) }

// SpecJob builds an inline-spec job.
func SpecJob(cfg Config, sp WorkloadSpec) Job { return exp.SpecJob(cfg, sp) }

// SchedulerOption configures a Scheduler (WithWorkers, WithProgress).
type SchedulerOption = exp.Option

// SchedulerStats counts simulated cells and memo-cache hits.
type SchedulerStats = exp.Stats

// Results is the machine-readable form of the paper's evaluation,
// returned by Scheduler.Collect.
type Results = exp.Results

// NewScheduler builds an experiment engine. With no options it uses
// runtime.GOMAXPROCS(0) workers and stays silent.
func NewScheduler(opts ...SchedulerOption) *Scheduler { return exp.NewScheduler(opts...) }

// WithWorkers sets the engine's worker-pool size (n <= 0 keeps the
// GOMAXPROCS default).
func WithWorkers(n int) SchedulerOption { return exp.WithWorkers(n) }

// WithProgress directs one serialized line per completed simulation to w.
func WithProgress(w io.Writer) SchedulerOption { return exp.WithProgress(w) }

// Sections returns the report section names accepted by
// Scheduler.Report/Collect, in the paper's presentation order.
func Sections() []string { return append([]string(nil), exp.Sections...) }

// Benchmarks returns the 19 synthetic benchmarks in Table II order.
func Benchmarks() []Benchmark { return trace.Table() }

// BenchmarkNames returns the benchmark names in Table II order.
func BenchmarkNames() []string { return trace.Names() }

// WorkloadByName builds the named Table II benchmark.
func WorkloadByName(name string) (*Workload, error) { return trace.ByName(name) }

// SpecByName returns the named Table II benchmark as its workload spec —
// the natural starting point for custom workloads: copy it, change the
// axes under study (coalescing degree, TLP, working-set geometry,
// sharing, ...), and pass the result to RunSpec, SpecRef or the daemon.
func SpecByName(name string) (WorkloadSpec, error) { return trace.SpecByName(name) }

// RunSpec validates, builds and simulates an inline workload spec on cfg
// — the one-call path for workloads the paper never enumerated. The
// returned Metrics are identical to any other entry point's for the same
// (config, spec) cell: a scheduler memo hit, a daemon job and `gpusim
// -spec` all share content-addressed cell identity (trace.Spec.SpecID).
func RunSpec(cfg Config, sp WorkloadSpec) (Metrics, error) {
	return exp.NewScheduler().RunSpec(cfg, sp)
}

// Sweep runs the configurations × workloads cross product on a fresh
// engine with GOMAXPROCS workers and returns the metrics grid. Both
// axes take refs: mix preset names, inline values and config patches
// freely (wrap plain config values with SweepConfigs). For repeated
// sweeps that should share a memo cache, use NewScheduler().Sweep
// directly.
func Sweep(cfgs []ConfigRef, workloads []WorkloadRef) (*SweepResult, error) {
	return exp.NewScheduler().Sweep(cfgs, workloads)
}

// RunConfig validates and simulates a benchmark on an arbitrary inline
// configuration — the hardware twin of RunSpec, for design points the
// presets never enumerated. The returned Metrics are identical to any
// other entry point's for the same (config, workload) cell: a scheduler
// memo hit, a daemon job and `gpusim -config-file` all share
// content-addressed cell identity (Config.ConfigID).
func RunConfig(cfg Config, bench string) (Metrics, error) {
	return exp.NewScheduler().Run(cfg, bench)
}

// RunPatch applies a mitigation-knob patch to its base preset and
// simulates a benchmark on the result — the one-call path for the
// paper's Table III mitigation ladder.
func RunPatch(p ConfigPatch, bench string) (Metrics, error) {
	return exp.NewScheduler().RunJob(Job{Config: exp.PatchRef(p), Workload: exp.BenchRef(bench)})
}

// Configs returns every named configuration preset the paper evaluates.
func Configs() map[string]Config { return config.Presets() }

// ConfigNames returns the preset names accepted by ConfigByName, sorted.
func ConfigNames() []string { return config.Names() }

// ConfigByName returns the named preset. Unknown names are an error that
// lists the valid ones.
func ConfigByName(name string) (Config, error) { return config.ByName(name) }

// ExploreRequest describes a design-space exploration over the
// mitigation knob space: workloads to score candidates on, a base
// preset, an objective (target-speedup ≥ X minimizing area, or
// area-budget ≤ Y mm² maximizing speedup), and — optionally — a custom
// knob lattice (default: the paper's Table III mitigation ladder).
type ExploreRequest = api.ExploreRequest

// ExploreObjective is the search goal of an ExploreRequest.
type ExploreObjective = api.ExploreObjective

// Exploration is the finished (or in-flight) exploration resource:
// per-round progress, probe counts attributed by cache tier, the Pareto
// frontier over (speedup, area), and the recommended point.
type Exploration = api.Exploration

// ExplorePoint is one frontier point: its knob assignments as
// "path=value" sets, measured geomean speedup, and area cost.
type ExplorePoint = api.ExplorePoint

// Explore runs a design-space exploration in-process on a fresh
// memoized engine and returns the finished exploration resource —
// the library twin of `gpusimctl explore` / POST /v1/explore. The
// search is deterministic: the same request always probes the same
// cells in the same order and returns the same frontier; the resource
// ID is the request's content address, identical to the daemon's.
func Explore(ctx context.Context, req ExploreRequest) (*Exploration, error) {
	p, err := explore.Compile(req)
	if err != nil {
		return nil, err
	}
	res, err := explore.Run(ctx, p, explore.SchedulerEval(exp.NewScheduler()), nil)
	if err != nil {
		ex := p.Resource(p.ID(), api.ExplorationFailed, explore.Status{}, nil, err.Error())
		return &ex, err
	}
	ex := p.Resource(p.ID(), api.ExplorationDone, res.Status, res, "")
	return &ex, nil
}

// Knobs returns the mitigation knob-space model: every dotted Set path
// (the `-set`/ConfigPatch grammar) with its type, validation bounds and
// baseline value — the axes Explore searches over.
func Knobs() []config.Knob { return config.Knobs() }

// Client is the typed HTTP client for gpusimd, the simulation daemon
// (cmd/gpusimd): submit (config, benchmark) cells as async jobs, poll
// them, run deduplicated sweeps, and read scheduler stats. See the client
// package for the full API.
type Client = client.Client

// JobSpec names one daemon job: a configuration (preset name or full
// inline Config) plus a workload (benchmark name or full inline
// WorkloadSpec).
type JobSpec = client.JobSpec

// SweepRequest is a config×bench cross product for Client.Sweep.
type SweepRequest = client.SweepRequest

// ClientOption configures a Client (see client.WithHTTPClient).
type ClientOption = client.Option

// NewClient builds a daemon client for the given base URL, e.g.
// "http://127.0.0.1:8372".
func NewClient(baseURL string, opts ...ClientOption) *Client {
	return client.New(baseURL, opts...)
}
