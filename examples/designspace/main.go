// Designspace replays the paper's §VI story on one benchmark: scaling one
// level of the memory hierarchy in isolation can do little — or actively
// hurt — while scaling adjacent levels together is synergistic.
//
// It runs matrix multiply (the paper's most bandwidth-sensitive workload)
// against the six 4×-scaled design points of Fig. 10 on the experiment
// engine — the seven simulation cells run concurrently on a worker pool
// and the shared baseline cell simulates once — then prints the speedups,
// highlighting the two headline effects:
//
//  1. L1-alone can slow the workload down (more requests pour into an
//     already congested L2).
//  2. L1+L2 together beat both, and beat an HBM-class DRAM upgrade.
package main

import (
	"fmt"
	"log"

	"gpumembw"
)

func main() {
	const bench = "mm"
	configs := []gpumembw.Config{
		gpumembw.ScaledL1(),
		gpumembw.ScaledL2(),
		gpumembw.ScaledDRAM(),
		gpumembw.ScaledL1L2(),
		gpumembw.ScaledL2DRAM(),
		gpumembw.ScaledAll(),
	}

	s := gpumembw.NewScheduler()
	jobs := []gpumembw.Job{gpumembw.BenchJob(gpumembw.Baseline(), bench)}
	for _, cfg := range configs {
		jobs = append(jobs, gpumembw.BenchJob(cfg, bench))
	}
	if err := s.RunJobs(jobs); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("design-space exploration on %q (4x scaling per level)\n\n", bench)
	fmt.Printf("  %-12s %8s\n", "config", "speedup")
	fmt.Printf("  %-12s %8s\n", "------", "-------")
	results := map[string]float64{}
	for _, cfg := range configs {
		sp, err := s.Speedup(cfg, bench)
		if err != nil {
			log.Fatal(err)
		}
		results[cfg.Name] = sp
		fmt.Printf("  %-12s %7.2fx\n", cfg.Name, sp)
	}
	st := s.Stats()
	fmt.Printf("\n  (%d cells simulated, %d served from cache)\n", st.Simulated, st.CacheHits)

	fmt.Println()
	if results["L1-4x"] < 1.02 {
		fmt.Println("* scaling L1 alone does not help: the extra outstanding misses")
		fmt.Println("  only deepen the congestion between L1 and L2 (paper §VI-A1).")
	}
	if results["L1+L2-4x"] > results["L2-4x"] {
		fmt.Println("* L1+L2 beats L2 alone: once the L2 can absorb the demand, the")
		fmt.Println("  extra L1 bandwidth finally pays off (synergistic scaling).")
	}
	if results["L2-4x"] > results["DRAM-4x"] {
		fmt.Println("* scaling the cache hierarchy beats an HBM-class DRAM upgrade:")
		fmt.Println("  the bottleneck for this workload is on-chip, not off-chip.")
	}
}
