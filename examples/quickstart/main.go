// Quickstart: run one benchmark on the baseline GTX 480 memory hierarchy
// and print the headline numbers the paper characterizes — IPC, how much of
// the runtime the cores spend stalled, where memory time goes, and how
// congested the L2 and DRAM queues are.
package main

import (
	"fmt"
	"log"

	"gpumembw"
)

func main() {
	wl, err := gpumembw.WorkloadByName("mm")
	if err != nil {
		log.Fatal(err)
	}

	m, err := gpumembw.Run(gpumembw.Baseline(), wl)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("matrix multiply on the baseline memory hierarchy\n\n")
	fmt.Printf("  IPC                 %.2f\n", m.IPC)
	fmt.Printf("  issue stalls        %.0f%% of runtime\n", 100*m.IssueStallFrac)
	fmt.Printf("  avg memory latency  %.0f core cycles (uncongested L2: 120)\n", m.AML)
	fmt.Printf("  avg L2 hit latency  %.0f core cycles\n", m.L2AHL)
	fmt.Printf("  L2 access queues    full %.0f%% of their usage lifetime\n", 100*m.L2AccessOcc.FullFraction())
	fmt.Printf("  DRAM sched queues   full %.0f%% of their usage lifetime\n", 100*m.DRAMSchedOcc.FullFraction())

	// The paper's headline: scaling the cache hierarchy beats swapping in
	// HBM-class DRAM. Reproduce that comparison on this one benchmark.
	l2, err := gpumembw.Run(gpumembw.ScaledL2(), wl)
	if err != nil {
		log.Fatal(err)
	}
	hbm, err := gpumembw.Run(gpumembw.HBM(), wl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  4x L2 bandwidth     %.2fx speedup\n", l2.Speedup(m))
	fmt.Printf("  HBM-class DRAM      %.2fx speedup\n", hbm.Speedup(m))
	fmt.Printf("\nmitigating the cache-hierarchy bottleneck beats faster DRAM for this workload.\n")
}
