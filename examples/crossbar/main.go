// Crossbar evaluates the paper's §VII cost-effective asymmetric crossbars.
//
// The insight: reply packets (8 B header + 128 B line) are ~17× larger than
// the load requests that dominate the request network, so the baseline's
// symmetric 32+32 B flit split wastes request-side wires. Re-splitting the
// same total wire width as 16+48 — or spending 20 more bytes on 16+68 or
// 32+52 — buys large speedups for ~1.6% area.
//
// The example measures three benchmarks across the crossbar variants and
// prints speedups alongside the area estimates, including the paper's
// cautionary tale: store-heavy lavaMD *loses* performance on 16+48 because
// its big write packets live on the shrunken request network.
package main

import (
	"fmt"
	"log"

	"gpumembw"
)

func main() {
	benches := []string{"mm", "lavaMD", "ss"}
	configs := []gpumembw.Config{
		gpumembw.CostEffective16x48(),
		gpumembw.CostEffective16x68(),
		gpumembw.CostEffective32x52(),
		gpumembw.HBM(),
	}

	fmt.Println("asymmetric-crossbar study (speedup over baseline)")
	fmt.Println()
	fmt.Printf("  %-12s", "bench")
	for _, c := range configs {
		fmt.Printf(" %12s", shortName(c.Name))
	}
	fmt.Println()
	for _, b := range benches {
		wl, err := gpumembw.WorkloadByName(b)
		if err != nil {
			log.Fatal(err)
		}
		base, err := gpumembw.Run(gpumembw.Baseline(), wl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s", b)
		for _, cfg := range configs {
			m, err := gpumembw.Run(cfg, wl)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12.2fx", m.Speedup(base))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("the reply network carries 136 B packets; the request network mostly")
	fmt.Println("8 B loads — so trading request wires for reply wires is nearly free,")
	fmt.Println("except for store-heavy workloads (lavaMD) whose 136 B write packets")
	fmt.Println("suffer on a 16 B request network.")
}

func shortName(s string) string {
	switch s {
	case "cost-effective-16+48":
		return "16+48"
	case "cost-effective-16+68":
		return "16+68"
	case "cost-effective-32+52":
		return "32+52"
	}
	return s
}
