// Hazards reproduces the Fig. 6 illustration of the paper: how a small MSHR
// file turns independent instructions into serialized ones.
//
// A single warp executes the paper's instruction pattern — a run of
// independent loads to distinct lines followed by an independent multiply:
//
//	I1: LD r1   (miss)        I4: LD r4   (miss)
//	I2: LD r2   (miss)        I5: MULT    (independent)
//	I3: LD r3   (miss)
//
// With a 2-entry MSHR, I3 encounters a structural hazard: it blocks the
// load-store unit, so I4 and the independent multiply stall behind it and
// every miss round-trip serializes. With ample MSHRs all four loads
// overlap. The example runs both machines on the real memory hierarchy and
// prints the resulting timelines.
package main

import (
	"fmt"
	"log"
	"strings"

	"gpumembw"
)

func run(mshrs int) int64 {
	wl, err := gpumembw.WorkloadSpec{
		Name: "fig6", Iters: 4,
		LoadsPerIter: 4, ALUPerIter: 1,
		DepDist:      1, // the ALU op is independent of the loads
		WarpsPerCore: 1,
		Seed:         1,
	}.Build()
	if err != nil {
		log.Fatal(err)
	}
	cfg := gpumembw.Baseline()
	cfg.Name = fmt.Sprintf("fig6-mshr-%d", mshrs)
	cfg.Core.NumCores = 1
	cfg.Core.WarpsPerCore = 1
	cfg.L1.MSHREntries = mshrs

	m, err := gpumembw.Run(cfg, wl)
	if err != nil {
		log.Fatal(err)
	}
	return m.Cycles
}

func main() {
	fmt.Println("Fig. 6 — structural hazards from a small MSHR file")
	fmt.Println(strings.Repeat("-", 64))
	small := run(2)
	large := run(32)
	fmt.Printf("MSHR = 2:   %4d cycles — the third miss blocks the LSU, so\n", small)
	fmt.Println("            later loads and the independent MULT serialize")
	fmt.Println("            behind it, one miss round-trip at a time")
	fmt.Printf("MSHR = 32:  %4d cycles — all misses overlap; the independent\n", large)
	fmt.Println("            instructions issue back to back")
	if small <= large {
		fmt.Println("\nunexpected: the small MSHR did not hurt — check configuration")
		return
	}
	fmt.Printf("\nstructural-hazard penalty: %d cycles (%.1fx slowdown)\n",
		small-large, float64(small)/float64(large))
	fmt.Println("\nthis is the per-warp mechanism behind the str-MEM bars of Fig. 7:")
	fmt.Println("scarce L1 resources stop cores from hiding memory latency.")
}
