package dram

import (
	"testing"

	"gpumembw/internal/config"
	"gpumembw/internal/mem"
)

// BenchmarkChannelStreaming measures FR-FCFS throughput on a row-friendly
// stream (the workload shape of lbm/stencil).
func BenchmarkChannelStreaming(b *testing.B) {
	cfg := config.Baseline()
	c := NewChannel(0, &cfg)
	next := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Push(&mem.Fetch{ID: next, Type: mem.DataRead, Addr: next * 6 * 128, SizeBytes: 128}) {
			next++
		}
		c.Tick()
		for {
			if _, ok := c.PopResponse(); !ok {
				break
			}
		}
	}
	b.ReportMetric(float64(c.Stats.Reads)/float64(b.N), "reads/cycle")
}

// BenchmarkChannelRandom measures the row-thrashing worst case.
func BenchmarkChannelRandom(b *testing.B) {
	cfg := config.Baseline()
	c := NewChannel(0, &cfg)
	rowStride := uint64(cfg.DRAM.RowBytes) * uint64(cfg.DRAM.BanksPerChip) * 6
	next := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Push(&mem.Fetch{ID: next, Type: mem.DataRead, Addr: (next * 2654435761 % 4096) * rowStride, SizeBytes: 128}) {
			next++
		}
		c.Tick()
		for {
			if _, ok := c.PopResponse(); !ok {
				break
			}
		}
	}
	b.ReportMetric(c.Stats.RowHitRate()*100, "row-hit-%")
}
