package dram

import (
	"testing"

	"gpumembw/internal/config"
	"gpumembw/internal/mem"
)

func testConfig() config.Config {
	return config.Baseline()
}

func newRead(id uint64, addr uint64) *mem.Fetch {
	return &mem.Fetch{ID: id, Type: mem.DataRead, Addr: addr, SizeBytes: 128}
}

func newWrite(id uint64, addr uint64) *mem.Fetch {
	return &mem.Fetch{ID: id, Type: mem.WriteBack, Addr: addr, SizeBytes: 128}
}

// drain runs the channel until n responses arrive or the cycle budget runs
// out, returning the responses in arrival order.
func drain(t *testing.T, c *Channel, n, budget int) []*mem.Fetch {
	t.Helper()
	var out []*mem.Fetch
	for i := 0; i < budget && len(out) < n; i++ {
		c.Tick()
		for {
			f, ok := c.PopResponse()
			if !ok {
				break
			}
			out = append(out, f)
		}
	}
	if len(out) < n {
		t.Fatalf("only %d/%d responses after %d cycles", len(out), n, budget)
	}
	return out
}

func TestAddrMapPartitionInterleaving(t *testing.T) {
	cfg := testConfig()
	m := NewAddrMap(&cfg)
	// Consecutive lines must rotate across all 6 partitions.
	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		p := m.Partition(uint64(i) * 128)
		if p < 0 || p >= 6 {
			t.Fatalf("partition %d out of range", p)
		}
		seen[p] = true
	}
	if len(seen) != 6 {
		t.Fatalf("6 consecutive lines used %d partitions, want 6", len(seen))
	}
}

func TestAddrMapRowLocality(t *testing.T) {
	cfg := testConfig()
	m := NewAddrMap(&cfg)
	// A per-partition stream (every 6th line) must stay in one row for
	// linesPerRow lines: 4 KB row / 128 B = 32 lines.
	bank0, row0 := m.BankRow(0)
	for i := 1; i < 32; i++ {
		addr := uint64(i) * 6 * 128 // same partition as line 0
		b, r := m.BankRow(addr)
		if b != bank0 || r != row0 {
			t.Fatalf("line %d: bank/row = %d/%d, want %d/%d", i, b, r, bank0, row0)
		}
	}
	// The 33rd line must move on (next bank).
	b, _ := m.BankRow(32 * 6 * 128)
	if b == bank0 {
		t.Fatalf("line 32 stayed in bank %d", b)
	}
}

func TestReadLatencyUncongested(t *testing.T) {
	cfg := testConfig()
	c := NewChannel(0, &cfg)
	f := newRead(1, 0)
	if !c.Push(f) {
		t.Fatal("push failed")
	}
	resp := drain(t, c, 1, 1000)
	if resp[0] != f {
		t.Fatal("wrong fetch returned")
	}
	// Closed-bank read: ACT at ~1, CAS at 1+tRCD, data at +CL, done +burst,
	// plus the controller pipeline: ≈ 1 + 12 + 12 + 4 + CtrlLatency(20)
	// = 49 cycles. Allow slack for tick ordering.
	t.Logf("uncongested read took %d DRAM cycles", c.now)
	want := 29 + int64(cfg.DRAM.CtrlLatency)
	if c.now < want-4 || c.now > want+8 {
		t.Fatalf("uncongested read latency %d cycles, want ≈%d", c.now, want)
	}
}

func TestRowHitsForStream(t *testing.T) {
	cfg := testConfig()
	c := NewChannel(0, &cfg)
	// 16 lines of one partition-local stream → 1 activate, 15 row hits.
	id := uint64(0)
	pushed := 0
	for i := 0; pushed < 16; i++ {
		addr := uint64(i) * 6 * 128
		f := newRead(id, addr)
		id++
		if c.Push(f) {
			pushed++
		} else {
			c.Tick()
			for {
				if _, ok := c.PopResponse(); !ok {
					break
				}
			}
			i-- // retry
		}
	}
	drain(t, c, 16-len(collect(c)), 4000)
	if c.Stats.Activates != 1 {
		t.Fatalf("activates = %d, want 1 for a single-row stream", c.Stats.Activates)
	}
	if got := c.Stats.RowHitRate(); got < 0.9 {
		t.Fatalf("row hit rate = %g, want ≥ 0.9", got)
	}
}

func collect(c *Channel) []*mem.Fetch {
	var out []*mem.Fetch
	for {
		f, ok := c.PopResponse()
		if !ok {
			return out
		}
		out = append(out, f)
	}
}

func TestRandomTrafficActivatesManyBanks(t *testing.T) {
	cfg := testConfig()
	c := NewChannel(0, &cfg)
	// Requests that stride across rows force precharges/activates.
	rowStride := uint64(cfg.DRAM.RowBytes) * uint64(cfg.DRAM.BanksPerChip) * 6
	total := 12
	got := 0
	next := 0
	for cycles := 0; got < total && cycles < 20000; cycles++ {
		if next < total {
			if c.Push(newRead(uint64(next), uint64(next)*rowStride)) {
				next++
			}
		}
		c.Tick()
		got += len(collect(c))
	}
	if got != total {
		t.Fatalf("completed %d/%d", got, total)
	}
	if c.Stats.Activates < int64(total) {
		t.Fatalf("activates = %d, want ≥ %d for row-striding traffic", c.Stats.Activates, total)
	}
}

func TestSchedulerQueueBounded(t *testing.T) {
	cfg := testConfig()
	c := NewChannel(0, &cfg)
	accepted := 0
	for i := 0; i < 100; i++ {
		if c.Push(newRead(uint64(i), uint64(i)*6*128)) {
			accepted++
		}
	}
	if accepted != cfg.DRAM.SchedQueueEntries {
		t.Fatalf("accepted %d, want %d", accepted, cfg.DRAM.SchedQueueEntries)
	}
	if !c.Full() {
		t.Fatal("channel must report full")
	}
}

func TestWritesConsumeBusNoReply(t *testing.T) {
	cfg := testConfig()
	c := NewChannel(0, &cfg)
	for i := 0; i < 4; i++ {
		if !c.Push(newWrite(uint64(i), uint64(i)*6*128)) {
			t.Fatalf("push %d failed", i)
		}
	}
	for i := 0; i < 500; i++ {
		c.Tick()
	}
	if c.Stats.Writes != 4 {
		t.Fatalf("writes = %d, want 4", c.Stats.Writes)
	}
	if got := collect(c); len(got) != 0 {
		t.Fatalf("writes produced %d responses", len(got))
	}
	if c.Stats.BusBusyCycles == 0 {
		t.Fatal("writes must occupy the data bus")
	}
}

func TestBandwidthEfficiencyBounds(t *testing.T) {
	cfg := testConfig()
	c := NewChannel(0, &cfg)
	next := 0
	done := 0
	for cycles := 0; done < 64 && cycles < 50000; cycles++ {
		if c.Push(newRead(uint64(next), uint64(next)*6*128)) {
			next++
		}
		c.Tick()
		done += len(collect(c))
	}
	eff := c.Stats.BandwidthEfficiency()
	if eff <= 0 || eff > 1 {
		t.Fatalf("bandwidth efficiency = %g, want in (0, 1]", eff)
	}
}

func TestTimingConstraintsRespected(t *testing.T) {
	cfg := testConfig()
	c := NewChannel(0, &cfg)
	// Same-bank different-row requests must be spaced by ≥ tRC between
	// activates. Two rows in bank 0: row stride within a bank is
	// linesPerRow lines of this partition.
	rowStride := uint64(cfg.DRAM.RowBytes) * uint64(cfg.DRAM.BanksPerChip) * 6
	c.Push(newRead(1, 0))
	c.Push(newRead(2, rowStride))
	drain(t, c, 2, 5000)
	// ACT1 ≈ cycle 1; second activate needs PRE after tRAS(28) + tRP(12).
	// Total ≥ 1 + 28 + 12 + tRCD + CL + burst ≈ 69.
	if c.now < 60 {
		t.Fatalf("same-bank row conflict finished in %d cycles — timing violated", c.now)
	}
	if c.Stats.Activates != 2 || c.Stats.Precharges != 1 {
		t.Fatalf("activates=%d precharges=%d, want 2/1", c.Stats.Activates, c.Stats.Precharges)
	}
}

func TestInfiniteModeFixedLatency(t *testing.T) {
	cfg := config.InfiniteDRAM()
	c := NewChannel(0, &cfg)
	// Push far more than any bounded queue would hold.
	for i := 0; i < 200; i++ {
		if !c.Push(newRead(uint64(i), uint64(i)*128)) {
			t.Fatalf("infinite DRAM rejected request %d", i)
		}
	}
	if c.Full() {
		t.Fatal("infinite DRAM must never be full")
	}
	// All 200 must complete after ≈ the fixed latency (100 core cycles ≈
	// 66 DRAM cycles), not serialized.
	resp := drain(t, c, 200, 100)
	if len(resp) != 200 {
		t.Fatalf("completed %d", len(resp))
	}
	wantLat := int64(float64(cfg.DRAM.InfiniteLatency) * cfg.DRAM.ClockMHz / cfg.Core.ClockMHz)
	if c.now < wantLat || c.now > wantLat+5 {
		t.Fatalf("infinite mode latency = %d DRAM cycles, want ≈%d", c.now, wantLat)
	}
}

func TestHBMConfigQuadruplesBurstRate(t *testing.T) {
	base := config.Baseline()
	hbm := config.HBM()
	if base.DRAMBurstCycles() != 4 || hbm.DRAMBurstCycles() != 1 {
		t.Fatalf("burst cycles base=%d hbm=%d, want 4 and 1",
			base.DRAMBurstCycles(), hbm.DRAMBurstCycles())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		cfg := testConfig()
		c := NewChannel(0, &cfg)
		next := 0
		done := 0
		for cycles := 0; done < 32 && cycles < 20000; cycles++ {
			if next < 64 && c.Push(newRead(uint64(next), uint64(next*next%977)*128)) {
				next++
			}
			c.Tick()
			done += len(collect(c))
		}
		return c.now, c.Stats.Activates
	}
	n1, a1 := run()
	n2, a2 := run()
	if n1 != n2 || a1 != a2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", n1, a1, n2, a2)
	}
}
