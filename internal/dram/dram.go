// Package dram models one GDDR5 channel per memory partition: an FR-FCFS
// scheduler queue, per-bank row-buffer state machines governed by the Table I
// timing constraints, a shared command bus (one command per command-clock
// cycle) and a shared data bus whose occupancy yields the paper's
// "bandwidth efficiency" metric (§IV-B1).
//
// The package also implements the paper's idealized DRAM (P_DRAM): a fixed
// latency, infinite-bandwidth pipe with no scheduler-queue limit.
package dram

import (
	"math"

	"gpumembw/internal/config"
	"gpumembw/internal/mem"
	"gpumembw/internal/stats"
)

// AddrMap translates line addresses to DRAM coordinates. Lines interleave
// across partitions first (maximizing channel parallelism), then across
// columns within a row (so streams get row-buffer hits), then banks.
type AddrMap struct {
	lineBytes     uint64
	numPartitions uint64
	linesPerRow   uint64
	numBanks      uint64
}

// NewAddrMap builds the address map used by every channel of a configuration.
func NewAddrMap(cfg *config.Config) AddrMap {
	lpr := uint64(cfg.DRAM.RowBytes / cfg.L2.LineBytes)
	if lpr == 0 {
		lpr = 1
	}
	return AddrMap{
		lineBytes:     uint64(cfg.L2.LineBytes),
		numPartitions: uint64(cfg.DRAM.NumPartitions),
		linesPerRow:   lpr,
		numBanks:      uint64(cfg.DRAM.BanksPerChip),
	}
}

// Partition returns the memory partition owning addr.
func (m AddrMap) Partition(addr uint64) int {
	return int(addr / m.lineBytes % m.numPartitions)
}

// BankRow returns the bank and row of addr within its partition.
func (m AddrMap) BankRow(addr uint64) (bank int, row int64) {
	idx := addr / m.lineBytes / m.numPartitions
	bank = int(idx / m.linesPerRow % m.numBanks)
	row = int64(idx / (m.linesPerRow * m.numBanks))
	return bank, row
}

type bankState struct {
	openRow  int64 // -1 when precharged
	actReady int64 // earliest cycle an ACTIVATE may issue
	casReady int64 // earliest cycle a column command may issue
	preReady int64 // earliest cycle a PRECHARGE may issue
}

type inflight struct {
	fetch *mem.Fetch
	done  int64 // command-clock cycle when the data burst completes
}

// Stats aggregates per-channel DRAM statistics.
type Stats struct {
	Reads           int64
	Writes          int64
	Activates       int64
	Precharges      int64
	BusBusyCycles   int64 // command-clock cycles the data bus carried data
	PendingCycles   int64 // cycles with work queued or in flight
	SchedOccupancy  stats.OccupancyHist
	ReturnOccupancy stats.OccupancyHist
}

// BandwidthEfficiency is the ratio of data-transfer time to the time the
// channel had pending requests — 100% means the DRAM always ran at peak
// throughput (the paper measures 41% average, 65% max).
func (s *Stats) BandwidthEfficiency() float64 {
	return stats.Ratio(s.BusBusyCycles, s.PendingCycles)
}

// RowHitRate is the fraction of column accesses served without a row
// activation (an access needing an ACTIVATE is a row miss).
func (s *Stats) RowHitRate() float64 {
	total := s.Reads + s.Writes
	hits := total - s.Activates
	if hits < 0 {
		hits = 0
	}
	return stats.Ratio(hits, total)
}

// Channel is one memory partition's DRAM channel.
type Channel struct {
	id    int
	cfg   *config.Config
	amap  AddrMap
	sched *mem.Queue[*mem.Fetch]
	ret   *mem.Queue[*mem.Fetch]
	banks []bankState

	now          int64 // command-clock cycle count
	busBusyUntil int64 // data bus reserved through this cycle (exclusive)
	nextCAS      int64 // earliest next column command (tCCD)
	nextAct      int64 // earliest next ACTIVATE on any bank (tRRD)
	readAfter    int64 // earliest read CAS after a write burst (tCDLR)
	burst        int64 // data-bus cycles per line
	retReserved  int   // return-queue slots promised to in-flight reads

	inflight []inflight

	// scanIdleUntil memoizes a failed FR-FCFS scan: before this command
	// cycle no queued request can newly become issuable, because the only
	// things that change between cycles are the clock (scanWake collects
	// the earliest cycle a blocking time gate opens) and external events —
	// a Push or a response pop — which clear the memo. Issued commands
	// re-scan the very next cycle (the memo is only set when nothing
	// issues).
	scanIdleUntil int64
	scanWake      int64

	// Infinite mode (P_DRAM) state: responses release after a fixed delay.
	infinite    bool
	infiniteLat int64 // in command-clock cycles

	pool *mem.FetchPool // optional freelist for fetches that die here

	Stats Stats
}

// NewChannel builds the DRAM channel for partition id.
func NewChannel(id int, cfg *config.Config) *Channel {
	ch := &Channel{
		id:    id,
		cfg:   cfg,
		amap:  NewAddrMap(cfg),
		burst: int64(cfg.DRAMBurstCycles()),
	}
	if cfg.DRAM.Infinite {
		ch.infinite = true
		// InfiniteLatency is expressed in core cycles; convert.
		ch.infiniteLat = int64(float64(cfg.DRAM.InfiniteLatency) * cfg.DRAM.ClockMHz / cfg.Core.ClockMHz)
		ch.sched = mem.NewQueue[*mem.Fetch](0)
		ch.ret = mem.NewQueue[*mem.Fetch](0)
		return ch
	}
	ch.sched = mem.NewQueue[*mem.Fetch](cfg.DRAM.SchedQueueEntries)
	ch.ret = mem.NewQueue[*mem.Fetch](cfg.DRAM.ReturnQueueEntries)
	ch.banks = make([]bankState, cfg.DRAM.BanksPerChip)
	for i := range ch.banks {
		ch.banks[i].openRow = -1
	}
	return ch
}

// SetFetchPool wires the freelist that receives fetches completing their
// life at the DRAM (stores and write-backs). A nil pool is valid.
func (c *Channel) SetFetchPool(p *mem.FetchPool) { c.pool = p }

// Full reports whether the scheduler queue cannot accept another request.
// A full scheduler queue is what backs up the L2 miss queue (bp-DRAM).
func (c *Channel) Full() bool { return c.sched.Full() }

// QueueLen returns the current scheduler-queue occupancy.
func (c *Channel) QueueLen() int { return c.sched.Len() }

// Idle reports whether the channel holds no queued, in-flight or
// unconsumed work.
func (c *Channel) Idle() bool {
	return c.sched.Empty() && len(c.inflight) == 0 && c.ret.Empty()
}

// NextWake implements the event engine's sched.Wakeable contract, in
// command-clock cycles. A channel with pending work must tick every
// cycle — FR-FCFS scheduling decisions and the pending/bus-busy
// statistics are per-cycle — so it reports ok=false until it drains,
// then sleeps until a pushed request reschedules it.
func (c *Channel) NextWake() (int64, bool) {
	if !c.Idle() {
		return 0, false
	}
	return math.MaxInt64, true
}

// Push enqueues a request. It returns false when the scheduler queue is
// full. In infinite mode the request completes after the fixed latency.
func (c *Channel) Push(f *mem.Fetch) bool {
	if c.infinite {
		if f.Type == mem.DataRead || f.Type == mem.InstRead {
			c.inflight = append(c.inflight, inflight{fetch: f, done: c.now + c.infiniteLat})
			c.Stats.Reads++
		} else {
			c.Stats.Writes++
			c.pool.Put(f) // stores are fire-and-forget
		}
		return true
	}
	// Stamp the DRAM coordinates once: the FR-FCFS scans below re-read
	// them every command cycle the request sits in the queue.
	f.DRAMBank, f.DRAMRow = c.amap.BankRow(f.Addr)
	c.scanIdleUntil = 0 // a new request may be issuable immediately
	return c.sched.Push(f)
}

// PopResponse removes the oldest completed read, if any.
func (c *Channel) PopResponse() (*mem.Fetch, bool) {
	c.scanIdleUntil = 0 // a freed return slot may unblock a read CAS
	return c.ret.Pop()
}

// SkipTicks advances the command clock by n cycles without doing any work.
// Valid only while the channel is Idle(): the event engine's deferred
// idle ticks guarantee every skipped Tick would have been a no-op.
func (c *Channel) SkipTicks(n int64) {
	c.now += n
}

// PeekResponse returns the oldest completed read without removing it.
func (c *Channel) PeekResponse() (*mem.Fetch, bool) { return c.ret.Peek() }

// Tick advances the channel by one command-clock cycle.
func (c *Channel) Tick() {
	c.now++
	if c.infinite {
		if len(c.inflight) > 0 {
			c.completeInfinite()
		}
		return
	}
	if c.sched.Empty() && len(c.inflight) == 0 && c.ret.Empty() {
		// Fully idle: every statement below is a no-op (no bursts to
		// retire, no pending work to count, occupancy observations of
		// empty queues are outside their usage lifetime).
		return
	}

	// Retire finished bursts into the return queue (slots were reserved
	// at CAS issue, so the pushes cannot fail).
	c.completeBursts()

	busy := !c.sched.Empty() || len(c.inflight) > 0
	if busy {
		c.Stats.PendingCycles++
		if c.busBusyUntil > c.now {
			c.Stats.BusBusyCycles++
		}
	}
	c.Stats.SchedOccupancy.Observe(c.sched.Len(), c.sched.Cap())
	c.Stats.ReturnOccupancy.Observe(c.ret.Len(), c.ret.Cap())

	if c.sched.Empty() {
		return
	}
	if c.now < c.scanIdleUntil {
		// A previous scan proved nothing can issue before scanIdleUntil.
		return
	}
	// FR-FCFS: first ready column access (row hit), else oldest request
	// drives a row activation/precharge. One command per cycle.
	c.scanWake = math.MaxInt64
	if c.issueReadyCAS() {
		return
	}
	if c.issueRowCommand() {
		return
	}
	c.scanIdleUntil = c.scanWake
}

func (c *Channel) completeInfinite() {
	n := 0
	for _, fl := range c.inflight {
		if fl.done <= c.now {
			c.ret.Push(fl.fetch)
		} else {
			c.inflight[n] = fl
			n++
		}
	}
	c.inflight = c.inflight[:n]
}

func (c *Channel) completeBursts() {
	n := 0
	for _, fl := range c.inflight {
		if fl.done <= c.now {
			if !c.ret.Push(fl.fetch) {
				// Cannot happen: the slot was reserved at CAS issue.
				panic("dram: return queue overflow despite reservation")
			}
			c.retReserved-- // reservation converts into a real slot
		} else {
			c.inflight[n] = fl
			n++
		}
	}
	c.inflight = c.inflight[:n]
}

// issueReadyCAS scans the scheduler queue oldest-first for a request whose
// row is open and whose column command can issue now. Returns true if a
// command was issued.
func (c *Channel) issueReadyCAS() bool {
	if c.nextCAS > c.now {
		c.wakeAt(c.nextCAS)
		return false
	}
	for i := 0; i < c.sched.Len(); i++ {
		f := c.sched.At(i)
		b := &c.banks[f.DRAMBank]
		if b.openRow != f.DRAMRow {
			continue // only a row command (an issue) can change this
		}
		if b.casReady > c.now {
			c.wakeAt(b.casReady)
			continue
		}
		isRead := f.Type.NeedsReply()
		if isRead {
			if c.readAfter > c.now {
				c.wakeAt(c.readAfter)
				continue
			}
			// Reserve a return-queue slot so the completed burst can
			// always retire. A full queue only frees on a response pop,
			// which clears the scan memo.
			if c.ret.Cap() > 0 && c.ret.Len()+c.retReserved >= c.ret.Cap() {
				continue
			}
		}
		// Data bus must be free when this burst starts.
		t := c.cfg.DRAM.Timing
		var dataStart int64
		if isRead {
			dataStart = c.now + int64(t.CL)
		} else {
			dataStart = c.now + int64(t.WL)
		}
		if c.busBusyUntil > dataStart {
			c.wakeAt(c.busBusyUntil - (dataStart - c.now))
			continue
		}
		c.sched.RemoveAt(i)
		dataEnd := dataStart + c.burst
		c.busBusyUntil = dataEnd
		c.nextCAS = c.now + int64(t.CCD)
		if isRead {
			c.Stats.Reads++
			c.retReserved++
			// CtrlLatency models the controller/PHY pipeline between the
			// burst completing and the fill reaching the L2.
			c.inflight = append(c.inflight, inflight{fetch: f, done: dataEnd + int64(c.cfg.DRAM.CtrlLatency)})
		} else {
			c.Stats.Writes++
			c.readAfter = dataEnd + int64(t.CDLR)
			b.preReady = maxI64(b.preReady, dataEnd+int64(t.WR))
			c.pool.Put(f) // the write is absorbed; no response travels back
		}
		return true
	}
	return false
}

// issueRowCommand advances the oldest request that needs its row opened:
// precharge a conflicting open row, or activate the needed row. It reports
// whether a command was issued.
func (c *Channel) issueRowCommand() bool {
	t := c.cfg.DRAM.Timing
	for i := 0; i < c.sched.Len(); i++ {
		f := c.sched.At(i)
		b := &c.banks[f.DRAMBank]
		if b.openRow == f.DRAMRow {
			continue // waiting on CAS timing only
		}
		if b.openRow >= 0 {
			if b.preReady <= c.now {
				b.openRow = -1
				b.actReady = maxI64(b.actReady, c.now+int64(t.RP))
				c.Stats.Precharges++
				return true
			}
			c.wakeAt(b.preReady)
			continue
		}
		if b.actReady <= c.now && c.nextAct <= c.now {
			b.openRow = f.DRAMRow
			b.casReady = c.now + int64(t.RCD)
			b.preReady = c.now + int64(t.RAS)
			b.actReady = c.now + int64(t.RC)
			c.nextAct = c.now + int64(t.RRD)
			c.Stats.Activates++
			return true
		}
		c.wakeAt(maxI64(b.actReady, c.nextAct))
	}
	return false
}

// wakeAt lowers the pending scan's earliest time-gate opening.
func (c *Channel) wakeAt(cycle int64) {
	if cycle < c.scanWake {
		c.scanWake = cycle
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// BusBusy reports whether a data burst occupies the channel's bus this
// command cycle — the profiler's dram/bus-busy gauge.
func (c *Channel) BusBusy() bool { return c.busBusyUntil > c.now }

// OpenRows counts banks holding a row open — the numerator of the
// profiler's dram/row-buffer gauge (capacity is DRAM.BanksPerChip).
func (c *Channel) OpenRows() int {
	open := 0
	for i := range c.banks {
		if c.banks[i].openRow >= 0 {
			open++
		}
	}
	return open
}

// SchedOcc reports the FR-FCFS scheduler queue's occupancy and capacity
// — the profiler's dram/sched-queue gauge.
func (c *Channel) SchedOcc() (length, capacity int) {
	return c.sched.Len(), c.sched.Cap()
}
