package explore

import (
	"context"
	"encoding/json"
	"testing"

	"gpumembw/internal/api"
	"gpumembw/internal/exp"
	"gpumembw/internal/trace"
)

// floodSpec is a small memory-flooding workload whose bandwidth
// bottlenecks respond to the Table III mitigations (all-4x ≈ 1.14×), so
// searches over the real lattice have a real signal — while one probe
// simulates in tens of milliseconds.
func floodSpec() trace.Spec {
	return trace.Spec{
		Name: "miniflood", Iters: 5,
		LoadsPerIter: 8, ALUPerIter: 1,
		DepDist: 0, Pattern: trace.PatRandomWS, WorkingSetKB: 1024,
		WarpsPerCore: 10, Seed: 9,
	}
}

// tinyKnobs is a 12-point custom lattice for fast service-style tests.
func tinyKnobs() []api.ExploreKnob {
	return []api.ExploreKnob{
		{Path: "l2.miss_queue_entries", Values: []string{"8", "16", "32"}},
		{Path: "l1.mshr_entries", Values: []string{"32", "64"}},
		{Path: "dram.sched_queue_entries", Values: []string{"16", "64"}},
	}
}

func tinyRequest() api.ExploreRequest {
	return api.ExploreRequest{
		InlineSpecs: []trace.Spec{floodSpec()},
		Objective:   api.ExploreObjective{TargetSpeedup: 1.05},
		Knobs:       tinyKnobs(),
	}
}

func TestCompileCanonicalizesSpellings(t *testing.T) {
	a, err := Compile(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	// Same semantics, different spelling: defaults written out, knob
	// values unordered, fuzzy path case.
	req := tinyRequest()
	req.Base = "baseline"
	req.Strategy = "halving"
	req.MaxRounds = 8
	req.Objective.Minimize = "area"
	req.Knobs = []api.ExploreKnob{
		{Path: "L2.MissQueueEntries", Values: []string{"32", "8", "16"}},
		{Path: "l1.mshrentries", Values: []string{"64", "32"}},
		{Path: "dram.sched-queue-entries", Values: []string{"64", "16"}},
	}
	b, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() {
		t.Errorf("equivalent requests got different IDs: %s vs %s", a.ID(), b.ID())
	}
	// A different objective is a different exploration.
	req.Objective.TargetSpeedup = 1.2
	c, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() == a.ID() {
		t.Error("different targets share an ID")
	}
}

func TestCompileRejectsHostileRequests(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*api.ExploreRequest)
	}{
		{"no workloads", func(r *api.ExploreRequest) { r.InlineSpecs = nil; r.Benchmarks = nil }},
		{"unknown bench", func(r *api.ExploreRequest) { r.Benchmarks = []string{"nope"} }},
		{"both objectives", func(r *api.ExploreRequest) { r.Objective.AreaBudgetMM2 = 5 }},
		{"no objective", func(r *api.ExploreRequest) { r.Objective = api.ExploreObjective{} }},
		{"target below 1", func(r *api.ExploreRequest) { r.Objective.TargetSpeedup = 0.5 }},
		{"minimize speedup", func(r *api.ExploreRequest) { r.Objective.Minimize = "speedup" }},
		{"unknown strategy", func(r *api.ExploreRequest) { r.Strategy = "simulated-annealing" }},
		{"unknown knob", func(r *api.ExploreRequest) { r.Knobs[0].Path = "l2.warp_drive" }},
		{"non-numeric knob", func(r *api.ExploreRequest) { r.Knobs[0] = api.ExploreKnob{Path: "name", Values: []string{"x"}} }},
		{"non-integer value", func(r *api.ExploreRequest) { r.Knobs[0].Values = []string{"8.5"} }},
		{"out of bounds", func(r *api.ExploreRequest) { r.Knobs[0].Values = []string{"99999999"} }},
		{"duplicate knob", func(r *api.ExploreRequest) { r.Knobs = append(r.Knobs, r.Knobs[0]) }},
		{"unknown base", func(r *api.ExploreRequest) { r.Base = "gtx9000" }},
		{"maxRounds over cap", func(r *api.ExploreRequest) { r.MaxRounds = 1000 }},
	}
	for _, tc := range cases {
		req := tinyRequest()
		tc.mut(&req)
		if _, err := Compile(req); err == nil {
			t.Errorf("%s: compile accepted the request", tc.name)
		}
	}
}

func TestDefaultLatticeIsTableIII(t *testing.T) {
	p, err := Compile(api.ExploreRequest{
		InlineSpecs: []trace.Spec{floodSpec()},
		Objective:   api.ExploreObjective{TargetSpeedup: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Space.Knobs); got != len(defaultLadders) {
		t.Fatalf("default lattice has %d axes, want %d", got, len(defaultLadders))
	}
	// 11 axes of 3 rungs (×1, ×2, ×4) and 3 of 4 rungs (the
	// cost-effective intermediates): 3^11 × 4^3 lattice points.
	if got := p.Space.GridSize(); got != 11337408 {
		t.Errorf("GridSize = %d, want 11337408", got)
	}
	for i := 1; i < len(p.Space.Knobs); i++ {
		if p.Space.Knobs[i-1].Path >= p.Space.Knobs[i].Path {
			t.Errorf("axes not sorted: %s before %s", p.Space.Knobs[i-1].Path, p.Space.Knobs[i].Path)
		}
	}
}

func TestObjectiveOrderAndRecommend(t *testing.T) {
	mk := func(sp, area float64) Scored {
		return Scored{Cand: Candidate{levels: []int{int(area * 10)}}, Score: Score{Speedup: sp, AreaMM2: area}}
	}
	obj := Objective{TargetSpeedup: 1.2}
	feasCheap := mk(1.25, 2)
	feasDear := mk(1.4, 8)
	infeasFast := mk(1.1, 1)
	if !obj.Better(feasCheap, feasDear) {
		t.Error("minimize-area should prefer the cheaper feasible point")
	}
	if !obj.Better(feasDear, infeasFast) {
		t.Error("feasible should beat infeasible")
	}
	if !obj.Better(infeasFast, mk(1.05, 0.5)) {
		t.Error("among infeasible, higher speedup should win")
	}

	front := Frontier([]Scored{mk(1, 0), feasCheap, feasDear, infeasFast, mk(1.2, 9)})
	// mk(1.2, 9) is dominated by feasDear (faster, cheaper); infeasFast
	// dominates nothing but sits on the frontier (cheapest non-base).
	if len(front) != 4 {
		t.Fatalf("frontier size = %d, want 4", len(front))
	}
	rec, ok := obj.Recommend(front)
	if !ok || rec.Score.AreaMM2 != 2 {
		t.Errorf("recommend = %+v feasible=%v, want the 2 mm² point", rec.Score, ok)
	}

	budget := Objective{AreaBudgetMM2: 3}
	rec, ok = budget.Recommend(front)
	if !ok || rec.Score.Speedup != 1.25 {
		t.Errorf("budget recommend = %+v feasible=%v, want the 1.25× point", rec.Score, ok)
	}

	// Unreachable target: closest (fastest) point, flagged infeasible.
	impossible := Objective{TargetSpeedup: 9}
	rec, ok = impossible.Recommend(front)
	if ok || rec.Score.Speedup != 1.4 {
		t.Errorf("impossible target: rec=%+v feasible=%v", rec.Score, ok)
	}
}

// runPlan compiles and runs a request on a fresh scheduler.
func runPlan(t *testing.T, req api.ExploreRequest, workers int) (*Plan, *Result, *exp.Scheduler) {
	t.Helper()
	p, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	s := exp.NewScheduler(exp.WithWorkers(workers))
	res, err := Run(context.Background(), p, SchedulerEval(s), nil)
	if err != nil {
		t.Fatal(err)
	}
	return p, res, s
}

// stripTiers zeroes the run-attribution fields, leaving only the
// deterministic core of a result.
func stripTiers(res *Result) *Result {
	c := *res
	c.Tiers = api.ExploreTiers{}
	return &c
}

// The same request must explore identically — same probe set, rounds,
// frontier and recommendation — at any worker count, and a rerun over a
// warm scheduler must simulate nothing.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	req := tinyRequest()
	p1, res1, s1 := runPlan(t, req, 1)
	p8, res8, _ := runPlan(t, req, 8)
	if p1.ID() != p8.ID() {
		t.Fatalf("IDs differ: %s vs %s", p1.ID(), p8.ID())
	}
	j1, _ := json.Marshal(stripTiers(res1))
	j8, _ := json.Marshal(stripTiers(res8))
	if string(j1) != string(j8) {
		t.Errorf("results differ across worker counts:\n-j1: %s\n-j8: %s", j1, j8)
	}
	if res1.ProbesDigest != res8.ProbesDigest {
		t.Errorf("probe sets differ: %s vs %s", res1.ProbesDigest, res8.ProbesDigest)
	}
	if res1.Tiers.Simulated == 0 {
		t.Error("first run simulated nothing?")
	}

	// Rerun on the warm scheduler: everything replays from memo.
	rerun, err := Run(context.Background(), p1, SchedulerEval(s1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Tiers.Simulated != 0 {
		t.Errorf("rerun simulated %d cells, want 0", rerun.Tiers.Simulated)
	}
	jr, _ := json.Marshal(stripTiers(rerun))
	if string(jr) != string(j1) {
		t.Errorf("rerun result differs:\n%s\nvs\n%s", jr, j1)
	}
}

// Hill climbing must also be deterministic and must improve on the
// baseline for a memory-bound workload.
func TestClimbFindsImprovement(t *testing.T) {
	req := tinyRequest()
	req.Strategy = "climb"
	req.Objective = api.ExploreObjective{AreaBudgetMM2: 2}
	_, res, _ := runPlan(t, req, 4)
	if res.Recommended == nil {
		t.Fatal("no recommendation")
	}
	if !res.Feasible {
		t.Error("area budget with baseline probed can never be infeasible")
	}
	if res.Recommended.AreaMM2 > 2 {
		t.Errorf("recommended point busts the budget: %+v", res.Recommended)
	}
	if res.Recommended.Speedup <= 1 {
		t.Errorf("climb found nothing better than baseline: %+v", res.Recommended)
	}
}

// The efficiency criterion on the real Table III lattice: the search
// must reach the speedup target while probing a small fraction of the
// 11.3M-point exhaustive grid (the acceptance bound is 25%; the actual
// ratio is orders of magnitude smaller).
func TestHalvingReachesTargetEfficiently(t *testing.T) {
	if testing.Short() {
		t.Skip("full-lattice search in -short mode")
	}
	req := api.ExploreRequest{
		InlineSpecs: []trace.Spec{floodSpec()},
		Objective:   api.ExploreObjective{TargetSpeedup: 1.10},
	}
	p, res, _ := runPlan(t, req, 8)
	if !res.Feasible {
		t.Fatalf("search did not reach the 1.10× target: recommended %+v", res.Recommended)
	}
	if res.Recommended.Speedup < 1.10 {
		t.Errorf("recommended %.4f× < target", res.Recommended.Speedup)
	}
	grid := p.Space.GridSize()
	if int64(res.Probes)*4 > grid {
		t.Errorf("probed %d of %d grid cells — over the 25%% acceptance bound", res.Probes, grid)
	}
	// The real bar is far lower: well under 1% of the lattice.
	if int64(res.Probes)*100 > grid {
		t.Errorf("probed %d cells; expected well under 1%% of %d", res.Probes, grid)
	}
	t.Logf("probes=%d grid=%d recommended=%+v", res.Probes, grid, res.Recommended)
}
