// Package explore searches the mitigation knob space of the paper's
// design study (Table III) instead of enumerating it: every probe is a
// content-addressed simulation cell (so repeated searches replay from
// the memo and disk caches), scored by measured speedup against its
// area cost from internal/area, and a search strategy — successive
// halving over a coarse-to-fine lattice, or greedy hill climbing from
// the baseline — walks the lattice toward an objective ("reach 1.5×
// speedup, minimize area" or "spend at most 10 mm², maximize speedup").
// The result is the Pareto frontier over everything probed plus one
// recommended point, reproducing Fig. 12's cost-effective methodology
// as an optimization rather than a grid.
package explore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gpumembw/internal/config"
)

// Axis is one searchable knob: a canonical dotted path and the ascending
// ladder of values the lattice allows it, one of which is the base
// configuration's own value.
type Axis struct {
	// Path is the canonical dotted knob path ("l2.num_banks").
	Path string
	// Values is the ascending value ladder, in Set's textual form.
	Values []string
	// Base indexes the base configuration's value within Values.
	Base int
}

// Space is the search lattice: a base configuration and the knob axes.
// The exhaustive grid it replaces has GridSize cells; strategies visit a
// small, deterministic subset.
type Space struct {
	// BaseName is the preset the lattice is anchored on.
	BaseName string
	// BaseCfg is the resolved base configuration.
	BaseCfg config.Config
	// Knobs holds the axes in a fixed, deterministic order.
	Knobs []Axis

	valid map[string]bool // candidate-key → Validate verdict, memoized
}

// Candidate is one lattice point: a ladder level per axis, parallel to
// Space.Knobs. The zero deviation (every knob at its base level) is the
// base configuration itself.
type Candidate struct {
	levels []int
}

// Key returns the candidate's deterministic identity within its space.
func (c Candidate) Key() string {
	parts := make([]string, len(c.levels))
	for i, l := range c.levels {
		parts[i] = strconv.Itoa(l)
	}
	return strings.Join(parts, ",")
}

// level multipliers for the default Table III ladders, as exact
// rationals so every rung of an integer knob stays integral.
type ratio struct{ num, den int64 }

// defaultLadder names one Table III knob and its ladder of multipliers
// on the base value. {1,1} is the base rung; {2,1} and {4,1} are the
// paper's 2× and 4× scaling points; the off-by-half rungs come from the
// cost-effective configurations (48-entry L1 MSHRs, 16 B request flits,
// 48 B reply flits).
type defaultLadder struct {
	path  string
	rungs []ratio
}

var x124 = []ratio{{1, 1}, {2, 1}, {4, 1}}

// defaultLadders is the Table III mitigation lattice: every structure
// the paper scales, with the cost-effective intermediate values added
// where Fig. 12 uses them.
var defaultLadders = []defaultLadder{
	{"core.mem_pipeline_width", x124},
	{"l1.mshr_entries", []ratio{{1, 1}, {3, 2}, {2, 1}, {4, 1}}},
	{"l1.miss_queue_entries", x124},
	{"icnt.req_flit_bytes", []ratio{{1, 2}, {1, 1}, {2, 1}, {4, 1}}},
	{"icnt.reply_flit_bytes", []ratio{{1, 1}, {3, 2}, {2, 1}, {4, 1}}},
	{"l2.num_banks", x124},
	{"l2.mshr_entries", x124},
	{"l2.miss_queue_entries", x124},
	{"l2.access_queue_entries", x124},
	{"l2.response_queue_entries", x124},
	{"l2.data_port_bytes", x124},
	{"dram.sched_queue_entries", x124},
	{"dram.banks_per_chip", x124},
	{"dram.bus_width_bits", x124},
}

// NewSpace builds the lattice over base. With no explicit knobs the
// Table III default ladders apply; explicit knobs give each axis its own
// value list (the base configuration's value is inserted if absent).
// Axes are sorted by path, so the lattice — and everything derived from
// it — is independent of request spelling order.
func NewSpace(baseName string, baseCfg config.Config, knobs []AxisSpec) (*Space, error) {
	sp := &Space{BaseName: baseName, BaseCfg: baseCfg, valid: map[string]bool{}}
	if len(knobs) == 0 {
		for _, dl := range defaultLadders {
			ax, err := defaultAxis(baseCfg, dl)
			if err != nil {
				return nil, err
			}
			sp.Knobs = append(sp.Knobs, ax)
		}
	} else {
		seen := map[string]bool{}
		for _, ks := range knobs {
			ax, err := customAxis(baseCfg, ks)
			if err != nil {
				return nil, err
			}
			if seen[ax.Path] {
				return nil, fmt.Errorf("explore: knob %q listed twice", ax.Path)
			}
			seen[ax.Path] = true
			sp.Knobs = append(sp.Knobs, ax)
		}
	}
	sort.Slice(sp.Knobs, func(i, j int) bool { return sp.Knobs[i].Path < sp.Knobs[j].Path })
	if !sp.Valid(sp.Baseline()) {
		return nil, fmt.Errorf("explore: base configuration %q is itself invalid", baseName)
	}
	return sp, nil
}

// AxisSpec is the request form of a custom axis: a knob path (any Set
// spelling) and its explicit value ladder.
type AxisSpec struct {
	Path   string
	Values []string
}

// baseKnobValue reads the base configuration's textual value for a knob
// path, via the knob enumeration so spelling is fuzzy-matched.
func baseKnobValue(baseCfg config.Config, path string) (config.Knob, string, error) {
	k, err := config.KnobByPath(path)
	if err != nil {
		return config.Knob{}, "", fmt.Errorf("explore: %w", err)
	}
	// Read the value from baseCfg, not the baseline preset — the lattice
	// may be anchored on any preset (HBM, cost-effective, ...).
	v, err := config.KnobValue(&baseCfg, k.Path)
	if err != nil {
		return config.Knob{}, "", fmt.Errorf("explore: %w", err)
	}
	return k, v, nil
}

func defaultAxis(baseCfg config.Config, dl defaultLadder) (Axis, error) {
	k, baseVal, err := baseKnobValue(baseCfg, dl.path)
	if err != nil {
		return Axis{}, err
	}
	bv, err := strconv.ParseInt(baseVal, 10, 64)
	if err != nil {
		return Axis{}, fmt.Errorf("explore: knob %s: default ladder needs an integer base, got %q", k.Path, baseVal)
	}
	ax := Axis{Path: k.Path, Base: -1}
	for _, r := range dl.rungs {
		v := bv * r.num
		if v%r.den != 0 {
			continue // non-integral rung for this base; skip it
		}
		v /= r.den
		if v < 1 || (k.Max > 0 && float64(v) > k.Max) {
			continue
		}
		val := strconv.FormatInt(v, 10)
		if val == baseVal {
			ax.Base = len(ax.Values)
		}
		ax.Values = append(ax.Values, val)
	}
	if ax.Base < 0 {
		return Axis{}, fmt.Errorf("explore: knob %s: ladder lost the base value %s", k.Path, baseVal)
	}
	return ax, nil
}

func customAxis(baseCfg config.Config, ks AxisSpec) (Axis, error) {
	k, baseVal, err := baseKnobValue(baseCfg, ks.Path)
	if err != nil {
		return Axis{}, err
	}
	if len(ks.Values) == 0 {
		return Axis{}, fmt.Errorf("explore: knob %s: needs at least one value", k.Path)
	}
	if k.Type != "int" && k.Type != "float" {
		return Axis{}, fmt.Errorf("explore: knob %s has type %s; only numeric knobs are searchable", k.Path, k.Type)
	}
	// Parse, dedupe and sort ascending; insert the base value if absent.
	vals := append([]string{}, ks.Values...)
	vals = append(vals, baseVal)
	type pv struct {
		f float64
		s string
	}
	var parsed []pv
	seen := map[float64]bool{}
	for _, v := range vals {
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return Axis{}, fmt.Errorf("explore: knob %s: value %q is not numeric", k.Path, v)
		}
		if k.Min != 0 && f < k.Min || k.Max > 0 && f > k.Max {
			return Axis{}, fmt.Errorf("explore: knob %s: value %q outside [%g, %g]", k.Path, v, k.Min, k.Max)
		}
		if seen[f] {
			continue
		}
		seen[f] = true
		s := strings.TrimSpace(v)
		if k.Type == "int" {
			if f != float64(int64(f)) {
				return Axis{}, fmt.Errorf("explore: knob %s: value %q is not an integer", k.Path, v)
			}
			s = strconv.FormatInt(int64(f), 10)
		}
		parsed = append(parsed, pv{f, s})
	}
	sort.Slice(parsed, func(i, j int) bool { return parsed[i].f < parsed[j].f })
	ax := Axis{Path: k.Path, Base: -1}
	baseF, _ := strconv.ParseFloat(baseVal, 64)
	for i, p := range parsed {
		if p.f == baseF {
			ax.Base = i
		}
		ax.Values = append(ax.Values, p.s)
	}
	if ax.Base < 0 {
		return Axis{}, fmt.Errorf("explore: knob %s: ladder lost the base value %s", k.Path, baseVal)
	}
	return ax, nil
}

// Baseline returns the zero-deviation candidate.
func (sp *Space) Baseline() Candidate {
	levels := make([]int, len(sp.Knobs))
	for i, ax := range sp.Knobs {
		levels[i] = ax.Base
	}
	return Candidate{levels}
}

// AllMax returns the corner candidate with every knob at its top rung —
// the paper's "scale everything" design point.
func (sp *Space) AllMax() Candidate {
	levels := make([]int, len(sp.Knobs))
	for i, ax := range sp.Knobs {
		levels[i] = len(ax.Values) - 1
	}
	return Candidate{levels}
}

// WithLevel returns c with knob i moved to ladder level lvl.
func (sp *Space) WithLevel(c Candidate, i, lvl int) Candidate {
	levels := append([]int{}, c.levels...)
	levels[i] = lvl
	return Candidate{levels}
}

// Level returns c's ladder level on knob i.
func (sp *Space) Level(c Candidate, i int) int { return c.levels[i] }

// Merge returns the elementwise maximum of two candidates — the cheapest
// lattice point at least as scaled as both.
func (sp *Space) Merge(a, b Candidate) Candidate {
	levels := make([]int, len(sp.Knobs))
	for i := range levels {
		levels[i] = a.levels[i]
		if b.levels[i] > levels[i] {
			levels[i] = b.levels[i]
		}
	}
	return Candidate{levels}
}

// Sets returns the candidate's non-base knob assignments in axis order
// (which is path order) as Set-style strings. Empty for the baseline.
func (sp *Space) Sets(c Candidate) []string {
	var sets []string
	for i, ax := range sp.Knobs {
		if c.levels[i] != ax.Base {
			sets = append(sets, ax.Path+"="+ax.Values[c.levels[i]])
		}
	}
	return sets
}

// Patch returns the candidate as a sparse mitigation patch on the base
// preset — the exact wire form a hand-written configPatch would use, so
// the probe lands on the same content-addressed cell.
func (sp *Space) Patch(c Candidate) (config.Patch, error) {
	delta, err := config.DeltaFromSets(sp.Sets(c))
	if err != nil {
		return config.Patch{}, err
	}
	return config.Patch{Base: sp.BaseName, Delta: delta}, nil
}

// Config resolves the candidate to a concrete configuration.
func (sp *Space) Config(c Candidate) (config.Config, error) {
	cfg := sp.BaseCfg
	if err := cfg.Set(sp.Sets(c)...); err != nil {
		return config.Config{}, err
	}
	return cfg, nil
}

// Valid reports whether the candidate resolves to a configuration that
// passes Validate — cross-field constraints (bank divisibility, bus
// width alignment, ...) prune lattice points the per-knob bounds admit.
func (sp *Space) Valid(c Candidate) bool {
	key := c.Key()
	if v, ok := sp.valid[key]; ok {
		return v
	}
	cfg, err := sp.Config(c)
	ok := err == nil && cfg.Validate() == nil
	sp.valid[key] = ok
	return ok
}

// GridSize returns the exhaustive lattice size the explorer avoids
// enumerating: the product of every axis's ladder length.
func (sp *Space) GridSize() int64 {
	n := int64(1)
	for _, ax := range sp.Knobs {
		n *= int64(len(ax.Values))
		if n > 1<<40 { // plenty to report "huge"; avoid overflow
			return 1 << 40
		}
	}
	return n
}
