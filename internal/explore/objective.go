package explore

import (
	"fmt"
	"sort"
	"strings"
)

// Score is one probed candidate's measured outcome: geometric-mean
// speedup over the requested workloads relative to the base
// configuration, and the area cost of the deviation per
// internal/area.Compare.
type Score struct {
	Speedup      float64
	AreaMM2      float64
	OverheadFrac float64
}

// Scored pairs a candidate with its score.
type Scored struct {
	Cand  Candidate
	Score Score
}

// Objective is the search goal, one of two constraint forms:
//
//   - target-speedup ≥ X, minimize area (TargetSpeedup set)
//   - area-budget ≤ Y mm², maximize speedup (AreaBudgetMM2 set)
type Objective struct {
	// TargetSpeedup is the speedup constraint of the minimize-area form.
	TargetSpeedup float64
	// AreaBudgetMM2 is the cost constraint of the maximize-speedup form.
	AreaBudgetMM2 float64
}

// ParseObjective validates the wire form: exactly one constraint, and
// the optimized quantity — if spelled out — matching it.
func ParseObjective(targetSpeedup, areaBudget float64, minimize, maximize string) (Objective, error) {
	hasTarget := targetSpeedup != 0
	hasBudget := areaBudget != 0
	switch {
	case hasTarget && hasBudget:
		return Objective{}, fmt.Errorf("explore: objective must set targetSpeedup or areaBudgetMM2, not both")
	case !hasTarget && !hasBudget:
		return Objective{}, fmt.Errorf("explore: objective needs targetSpeedup or areaBudgetMM2")
	case hasTarget:
		if !(targetSpeedup >= 1) { // also rejects NaN
			return Objective{}, fmt.Errorf("explore: targetSpeedup must be ≥ 1, got %g", targetSpeedup)
		}
		if m := strings.TrimSpace(minimize); m != "" && m != "area" {
			return Objective{}, fmt.Errorf("explore: with targetSpeedup the only minimizable quantity is \"area\", got %q", minimize)
		}
		if strings.TrimSpace(maximize) != "" {
			return Objective{}, fmt.Errorf("explore: maximize conflicts with targetSpeedup (speedup is the constraint)")
		}
		return Objective{TargetSpeedup: targetSpeedup}, nil
	default:
		if !(areaBudget > 0) {
			return Objective{}, fmt.Errorf("explore: areaBudgetMM2 must be > 0, got %g", areaBudget)
		}
		if m := strings.TrimSpace(maximize); m != "" && m != "speedup" {
			return Objective{}, fmt.Errorf("explore: with areaBudgetMM2 the only maximizable quantity is \"speedup\", got %q", maximize)
		}
		if strings.TrimSpace(minimize) != "" {
			return Objective{}, fmt.Errorf("explore: minimize conflicts with areaBudgetMM2 (area is the constraint)")
		}
		return Objective{AreaBudgetMM2: areaBudget}, nil
	}
}

// Feasible reports whether a score satisfies the objective's constraint.
func (o Objective) Feasible(s Score) bool {
	if o.TargetSpeedup > 0 {
		return s.Speedup >= o.TargetSpeedup
	}
	return s.AreaMM2 <= o.AreaBudgetMM2
}

// Better is the objective's strict total order over scored candidates:
// feasible beats infeasible; among feasible points the optimized
// quantity wins (minimum area under a speedup target, maximum speedup
// under an area budget); among infeasible points, proximity to the
// constraint wins. Ties fall through to the secondary quantity and then
// the candidate key, so the order — and every strategy built on it — is
// deterministic.
func (o Objective) Better(a, b Scored) bool {
	fa, fb := o.Feasible(a.Score), o.Feasible(b.Score)
	if fa != fb {
		return fa
	}
	type cmp struct{ x, y float64 } // prefer smaller x, then larger y
	var ca, cb cmp
	switch {
	case o.TargetSpeedup > 0 && fa: // minimize area
		ca = cmp{a.Score.AreaMM2, a.Score.Speedup}
		cb = cmp{b.Score.AreaMM2, b.Score.Speedup}
	case o.TargetSpeedup > 0: // chase the target
		ca = cmp{-a.Score.Speedup, -a.Score.AreaMM2}
		cb = cmp{-b.Score.Speedup, -b.Score.AreaMM2}
	case fa: // maximize speedup
		ca = cmp{-a.Score.Speedup, -a.Score.AreaMM2}
		cb = cmp{-b.Score.Speedup, -b.Score.AreaMM2}
	default: // shrink back toward the budget
		ca = cmp{a.Score.AreaMM2, a.Score.Speedup}
		cb = cmp{b.Score.AreaMM2, b.Score.Speedup}
	}
	if ca.x != cb.x {
		return ca.x < cb.x
	}
	if ca.y != cb.y {
		return ca.y > cb.y
	}
	return a.Cand.Key() < b.Cand.Key()
}

// Best returns the objective-optimal element of scored (which must be
// non-empty).
func (o Objective) Best(scored []Scored) Scored {
	best := scored[0]
	for _, s := range scored[1:] {
		if o.Better(s, best) {
			best = s
		}
	}
	return best
}

// TopK returns the k objective-best elements of scored, best first,
// without mutating the input.
func (o Objective) TopK(scored []Scored, k int) []Scored {
	out := append([]Scored{}, scored...)
	sort.Slice(out, func(i, j int) bool { return o.Better(out[i], out[j]) })
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Frontier returns the Pareto-optimal subset of scored — no other probe
// has both higher speedup and lower (or equal) area — sorted by
// ascending area. The baseline probe (area 0, speedup 1) anchors the
// frontier whenever it was scored.
func Frontier(scored []Scored) []Scored {
	pts := append([]Scored{}, scored...)
	sort.Slice(pts, func(i, j int) bool {
		a, b := pts[i], pts[j]
		if a.Score.AreaMM2 != b.Score.AreaMM2 {
			return a.Score.AreaMM2 < b.Score.AreaMM2
		}
		if a.Score.Speedup != b.Score.Speedup {
			return a.Score.Speedup > b.Score.Speedup
		}
		return a.Cand.Key() < b.Cand.Key()
	})
	var out []Scored
	bestSpeedup := 0.0
	for _, p := range pts {
		if p.Score.Speedup > bestSpeedup {
			out = append(out, p)
			bestSpeedup = p.Score.Speedup
		}
	}
	return out
}

// Recommend picks the single answer from a frontier: the cheapest point
// meeting a speedup target, or the fastest point within an area budget.
// When nothing satisfies the constraint it returns the closest point and
// feasible=false.
func (o Objective) Recommend(frontier []Scored) (rec Scored, feasible bool) {
	if len(frontier) == 0 {
		return Scored{}, false
	}
	if o.TargetSpeedup > 0 {
		for _, p := range frontier { // ascending area: first hit is cheapest
			if p.Score.Speedup >= o.TargetSpeedup {
				return p, true
			}
		}
		return frontier[len(frontier)-1], false // fastest available
	}
	var best *Scored
	for i, p := range frontier {
		if p.Score.AreaMM2 <= o.AreaBudgetMM2 {
			best = &frontier[i] // ascending area ⇒ speedup also ascends on the frontier
		}
	}
	if best != nil {
		return *best, true
	}
	return frontier[0], false // cheapest available
}
