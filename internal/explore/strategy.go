package explore

import (
	"fmt"
)

// RoundFunc evaluates one round of candidates and returns their scores,
// in request order minus duplicates and lattice points that fail
// validation. Already-scored candidates come back from the driver's
// candidate memo without re-probing, so strategies can freely re-request
// points (the baseline, a survivor) for bookkeeping.
type RoundFunc func(label string, cands []Candidate) ([]Scored, error)

// Strategy is one search algorithm over a Space. Implementations must be
// deterministic: no randomness, no time, no map iteration — the same
// space and objective must request the identical probe sequence.
type Strategy interface {
	// Name is the wire name ("halving", "climb").
	Name() string
	// Search drives rounds until the strategy converges or maxRounds
	// refinement rounds have run.
	Search(sp *Space, obj Objective, maxRounds int, round RoundFunc) error
}

// StrategyByName resolves a wire name; "" selects successive halving.
func StrategyByName(name string) (Strategy, error) {
	switch name {
	case "", "halving":
		return halving{}, nil
	case "climb":
		return climb{}, nil
	default:
		return nil, fmt.Errorf("explore: unknown strategy %q (known: halving, climb)", name)
	}
}

// halving is successive halving over a coarse-to-fine lattice. The
// screen round scores the coarse skeleton — the baseline, every
// single-knob deviation, and the all-max corner. Then each refinement
// round keeps the objective-best half of the survivor beam and expands
// it on the finer lattice: survivors merged pairwise (combining the
// structures that helped), each survivor's deviated knobs stepped one
// rung back toward the base (shedding cost the objective doesn't need),
// and the incumbent's knobs stepped one rung up (buying speedup it still
// lacks). The beam halves every round, so the search sharpens from
// coarse coverage to local refinement in O(log n) rounds.
type halving struct{}

func (halving) Name() string { return "halving" }

func (halving) Search(sp *Space, obj Objective, maxRounds int, round RoundFunc) error {
	var screen []Candidate
	screen = append(screen, sp.Baseline())
	for i, ax := range sp.Knobs {
		for lvl := range ax.Values {
			if lvl == ax.Base {
				continue
			}
			if c := sp.WithLevel(sp.Baseline(), i, lvl); sp.Valid(c) {
				screen = append(screen, c)
			}
		}
	}
	if c := sp.AllMax(); sp.Valid(c) {
		screen = append(screen, c)
	}
	scored, err := round("screen", screen)
	if err != nil {
		return err
	}
	if len(scored) == 0 {
		return fmt.Errorf("explore: no valid lattice point to screen")
	}

	seen := map[string]bool{}
	for _, s := range scored {
		seen[s.Cand.Key()] = true
	}
	incumbent := obj.Best(scored)
	beam := (len(scored) + 1) / 2
	for r := 1; r <= maxRounds; r++ {
		surv := obj.TopK(scored, beam)
		children := expand(sp, obj, surv, incumbent, seen)
		if len(children) == 0 {
			break
		}
		fresh, err := round(fmt.Sprintf("halve-%d", r), children)
		if err != nil {
			return err
		}
		scored = append(scored, fresh...)
		newBest := obj.Best(scored)
		improved := obj.Better(newBest, incumbent)
		incumbent = newBest
		if beam == 1 && !improved {
			break
		}
		beam = (beam + 1) / 2
	}
	return nil
}

// expand generates one refinement round's children, deterministically
// ordered, deduplicated against everything already probed.
func expand(sp *Space, obj Objective, surv []Scored, incumbent Scored, seen map[string]bool) []Candidate {
	var out []Candidate
	add := func(c Candidate) {
		key := c.Key()
		if seen[key] || !sp.Valid(c) {
			return
		}
		seen[key] = true
		out = append(out, c)
	}
	// Pairwise merges of the leading survivors: combine structures that
	// each helped alone.
	lead := len(surv)
	if lead > 6 {
		lead = 6
	}
	for i := 0; i < lead; i++ {
		for j := i + 1; j < lead; j++ {
			add(sp.Merge(surv[i].Cand, surv[j].Cand))
		}
	}
	// One rung back toward the base on each survivor's deviated knobs:
	// the cost-shedding half of Fig. 12's methodology.
	for _, s := range surv {
		for i, ax := range sp.Knobs {
			lvl := sp.Level(s.Cand, i)
			switch {
			case lvl > ax.Base:
				add(sp.WithLevel(s.Cand, i, lvl-1))
			case lvl < ax.Base:
				add(sp.WithLevel(s.Cand, i, lvl+1))
			}
		}
	}
	// One rung up on the incumbent's knobs: keep buying speedup while
	// the constraint is unmet.
	if !obj.Feasible(incumbent.Score) || obj.TargetSpeedup == 0 {
		for i, ax := range sp.Knobs {
			if lvl := sp.Level(incumbent.Cand, i); lvl < len(ax.Values)-1 {
				add(sp.WithLevel(incumbent.Cand, i, lvl+1))
			}
		}
	}
	return out
}

// climb is greedy hill climbing from the baseline: each round scores
// every single-rung move from the current point and steps to the
// objective-best neighbor, stopping at a local optimum.
type climb struct{}

func (climb) Name() string { return "climb" }

func (climb) Search(sp *Space, obj Objective, maxRounds int, round RoundFunc) error {
	scored, err := round("start", []Candidate{sp.Baseline()})
	if err != nil {
		return err
	}
	if len(scored) == 0 {
		return fmt.Errorf("explore: baseline is not a valid lattice point")
	}
	cur := scored[0]
	for r := 1; r <= maxRounds; r++ {
		var neighbors []Candidate
		for i, ax := range sp.Knobs {
			lvl := sp.Level(cur.Cand, i)
			if lvl > 0 {
				if c := sp.WithLevel(cur.Cand, i, lvl-1); sp.Valid(c) {
					neighbors = append(neighbors, c)
				}
			}
			if lvl < len(ax.Values)-1 {
				if c := sp.WithLevel(cur.Cand, i, lvl+1); sp.Valid(c) {
					neighbors = append(neighbors, c)
				}
			}
		}
		if len(neighbors) == 0 {
			break
		}
		fresh, err := round(fmt.Sprintf("step-%d", r), neighbors)
		if err != nil {
			return err
		}
		best := obj.Best(append(fresh, cur))
		if best.Cand.Key() == cur.Cand.Key() {
			break
		}
		cur = best
	}
	return nil
}
