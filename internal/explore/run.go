package explore

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"gpumembw/internal/api"
	"gpumembw/internal/area"
	"gpumembw/internal/config"
	"gpumembw/internal/core"
	"gpumembw/internal/exp"
)

// Compile limits on hostile requests: the lattice and workload axes are
// bounded like every other untrusted input, so a single request can
// never explode the probe set.
const (
	maxWorkloads     = 64
	maxAxes          = 32
	maxValuesPerAxis = 16
	maxMaxRounds     = 64
	defaultRounds    = 8
)

// Plan is a compiled exploration: the canonicalized request plus the
// resolved lattice, objective, strategy and workload refs. Two requests
// that compile to the same canonical form share an ID — and therefore a
// resource, a probe set and every underlying simulation cell.
type Plan struct {
	Request   api.ExploreRequest
	Space     *Space
	Objective Objective
	Strategy  Strategy
	Workloads []exp.WorkloadRef
	MaxRounds int
}

// Compile validates and canonicalizes an exploration request. Errors
// name the offending field — servers surface them as 400s.
func Compile(req api.ExploreRequest) (*Plan, error) {
	base := req.Base
	if base == "" {
		base = "baseline"
	}
	baseCfg, err := config.ByName(base)
	if err != nil {
		return nil, fmt.Errorf("explore: base: %w", err)
	}
	if n := len(req.Benchmarks) + len(req.InlineSpecs); n == 0 {
		return nil, fmt.Errorf("explore: need at least one benchmark or inline spec")
	} else if n > maxWorkloads {
		return nil, fmt.Errorf("explore: at most %d workloads per exploration, got %d", maxWorkloads, n)
	}
	var workloads []exp.WorkloadRef
	for _, b := range req.Benchmarks {
		ref := exp.BenchRef(b)
		if err := ref.Validate(); err != nil {
			return nil, fmt.Errorf("explore: %w", err)
		}
		workloads = append(workloads, ref)
	}
	for i, sp := range req.InlineSpecs {
		ref := exp.SpecRef(sp)
		if err := ref.Validate(); err != nil {
			return nil, fmt.Errorf("explore: inline spec %d: %w", i, err)
		}
		workloads = append(workloads, ref)
	}
	obj, err := ParseObjective(req.Objective.TargetSpeedup, req.Objective.AreaBudgetMM2,
		req.Objective.Minimize, req.Objective.Maximize)
	if err != nil {
		return nil, err
	}
	strat, err := StrategyByName(req.Strategy)
	if err != nil {
		return nil, err
	}
	if len(req.Knobs) > maxAxes {
		return nil, fmt.Errorf("explore: at most %d knobs, got %d", maxAxes, len(req.Knobs))
	}
	var axes []AxisSpec
	for _, k := range req.Knobs {
		if len(k.Values) > maxValuesPerAxis {
			return nil, fmt.Errorf("explore: knob %s: at most %d values, got %d", k.Path, maxValuesPerAxis, len(k.Values))
		}
		axes = append(axes, AxisSpec{Path: k.Path, Values: k.Values})
	}
	space, err := NewSpace(base, baseCfg, axes)
	if err != nil {
		return nil, err
	}
	rounds := req.MaxRounds
	if rounds == 0 {
		rounds = defaultRounds
	}
	if rounds < 1 || rounds > maxMaxRounds {
		return nil, fmt.Errorf("explore: maxRounds must be in [1, %d], got %d", maxMaxRounds, req.MaxRounds)
	}

	// Canonical request: defaults resolved, knob axes in lattice form.
	canon := api.ExploreRequest{
		Benchmarks:  req.Benchmarks,
		InlineSpecs: req.InlineSpecs,
		Base:        base,
		Strategy:    strat.Name(),
		MaxRounds:   rounds,
	}
	if obj.TargetSpeedup > 0 {
		canon.Objective = api.ExploreObjective{TargetSpeedup: obj.TargetSpeedup, Minimize: "area"}
	} else {
		canon.Objective = api.ExploreObjective{AreaBudgetMM2: obj.AreaBudgetMM2, Maximize: "speedup"}
	}
	if len(req.Knobs) > 0 {
		for _, ax := range space.Knobs {
			canon.Knobs = append(canon.Knobs, api.ExploreKnob{Path: ax.Path, Values: ax.Values})
		}
	}
	return &Plan{
		Request:   canon,
		Space:     space,
		Objective: obj,
		Strategy:  strat,
		Workloads: workloads,
		MaxRounds: rounds,
	}, nil
}

// ID returns the exploration's content address: a hash of the canonical
// request, so the same search from any spelling of the same semantics is
// the same resource.
func (p *Plan) ID() string {
	b, err := json.Marshal(p.Request)
	if err != nil {
		panic("explore: canonical request not marshalable: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return "ex-" + hex.EncodeToString(sum[:8])
}

// EvalResult is one probe cell's outcome: its metrics and the cache tier
// that satisfied it.
type EvalResult struct {
	Metrics core.Metrics
	Tier    string
}

// EvalBatch evaluates a batch of probe cells (one round's fresh
// candidates × the plan's workloads) and returns results in job order.
// The daemon backs it with its scheduler; the coordinator fans the batch
// out across its workers.
type EvalBatch func(ctx context.Context, jobs []exp.Job) ([]EvalResult, error)

// SchedulerEval runs probe batches on an exp.Scheduler, one goroutine
// per cell bounded by the scheduler's worker count, so a round's probes
// exploit the same parallelism a sweep would.
func SchedulerEval(s *exp.Scheduler) EvalBatch {
	return func(ctx context.Context, jobs []exp.Job) ([]EvalResult, error) {
		outs := make([]EvalResult, len(jobs))
		sem := make(chan struct{}, s.Workers())
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for i, j := range jobs {
			wg.Add(1)
			go func(i int, j exp.Job) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				r, err := s.RunJobEx(ctx, j, false)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				outs[i] = EvalResult{Metrics: r.Metrics, Tier: r.Tier}
			}(i, j)
		}
		wg.Wait()
		return outs, firstErr
	}
}

// Status is the driver's published progress: completed rounds, distinct
// probes so far, and cache-tier attribution for this run.
type Status struct {
	Rounds []api.ExploreRound
	Probes int
	Tiers  api.ExploreTiers
}

// Result is a finished exploration's outcome.
type Result struct {
	Status
	ProbesDigest string
	Feasible     bool
	Frontier     []api.ExplorePoint
	Recommended  *api.ExplorePoint
}

// Run executes the plan: it scores the base point, lets the strategy
// drive rounds through eval, and assembles the Pareto frontier and
// recommendation. onRound (optional) observes progress after every
// round. Everything except tier attribution is deterministic in the
// plan; a rerun probes the identical candidate set in the identical
// order and lands on byte-identical rounds, frontier and
// recommendation.
func Run(ctx context.Context, p *Plan, eval EvalBatch, onRound func(Status)) (*Result, error) {
	sp := p.Space
	obj := p.Objective

	scored := map[string]Scored{}
	var order []string // candidate keys in probe order
	baseMetrics := make([]core.Metrics, len(p.Workloads))
	var status Status
	var incumbent Scored
	haveIncumbent := false

	roundFn := func(label string, cands []Candidate) ([]Scored, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Dedupe within the round, drop invalid lattice points, split
		// cached from fresh.
		var uniq, fresh []Candidate
		inRound := map[string]bool{}
		for _, c := range cands {
			key := c.Key()
			if inRound[key] || !sp.Valid(c) {
				continue
			}
			inRound[key] = true
			uniq = append(uniq, c)
			if _, ok := scored[key]; !ok {
				fresh = append(fresh, c)
			}
		}
		var jobs []exp.Job
		for _, c := range fresh {
			cref, err := configRef(sp, c)
			if err != nil {
				return nil, err
			}
			for _, w := range p.Workloads {
				jobs = append(jobs, exp.Job{Config: cref, Workload: w})
			}
		}
		outs, err := eval(ctx, jobs)
		if err != nil {
			return nil, err
		}
		if len(outs) != len(jobs) {
			return nil, fmt.Errorf("explore: evaluator returned %d results for %d cells", len(outs), len(jobs))
		}
		// The base candidate, when present, must be folded in first: it
		// is every other candidate's speedup denominator.
		baseKey := sp.Baseline().Key()
		idxOf := map[string]int{}
		for i, c := range fresh {
			idxOf[c.Key()] = i * len(p.Workloads)
		}
		foldOrder := append([]Candidate{}, fresh...)
		sort.SliceStable(foldOrder, func(i, j int) bool {
			return (foldOrder[i].Key() == baseKey) && (foldOrder[j].Key() != baseKey)
		})
		for _, c := range foldOrder {
			key := c.Key()
			at := idxOf[key]
			logSum := 0.0
			for wi := range p.Workloads {
				out := outs[at+wi]
				switch out.Tier {
				case exp.TierSimulated:
					status.Tiers.Simulated++
				case exp.TierMemo:
					status.Tiers.Memo++
				case exp.TierDisk:
					status.Tiers.Disk++
				}
				if key == baseKey {
					baseMetrics[wi] = out.Metrics
					continue
				}
				logSum += math.Log(out.Metrics.Speedup(baseMetrics[wi]))
			}
			score := Score{Speedup: 1}
			if key != baseKey {
				score.Speedup = math.Exp(logSum / float64(len(p.Workloads)))
				cfg, err := sp.Config(c)
				if err != nil {
					return nil, err
				}
				est := area.Compare(&sp.BaseCfg, &cfg)
				score.AreaMM2 = est.TotalMM2
				score.OverheadFrac = est.OverheadFrac
			}
			s := Scored{Cand: c, Score: score}
			scored[key] = s
			order = append(order, key)
			if !haveIncumbent || obj.Better(s, incumbent) {
				incumbent = s
				haveIncumbent = true
			}
		}
		status.Probes = len(order)
		status.Rounds = append(status.Rounds, api.ExploreRound{
			Label:       label,
			Probes:      len(fresh),
			BestSpeedup: incumbent.Score.Speedup,
			BestAreaMM2: incumbent.Score.AreaMM2,
			Feasible:    haveIncumbent && obj.Feasible(incumbent.Score),
		})
		if onRound != nil {
			onRound(snapshotStatus(status))
		}
		// Return scores for every distinct requested candidate, cached
		// or fresh, in request order.
		out := make([]Scored, 0, len(uniq))
		for _, c := range uniq {
			out = append(out, scored[c.Key()])
		}
		return out, nil
	}

	// The base point first: every speedup is measured against it.
	if _, err := roundFn("base", []Candidate{sp.Baseline()}); err != nil {
		return nil, err
	}
	if err := p.Strategy.Search(sp, obj, p.MaxRounds, roundFn); err != nil {
		return nil, err
	}

	all := make([]Scored, 0, len(order))
	for _, key := range order {
		all = append(all, scored[key])
	}
	frontier := Frontier(all)
	rec, feasible := obj.Recommend(frontier)
	res := &Result{
		Status:       snapshotStatus(status),
		ProbesDigest: probesDigest(sp, all),
		Feasible:     feasible,
	}
	for _, s := range frontier {
		res.Frontier = append(res.Frontier, point(sp, s))
	}
	if len(frontier) > 0 {
		pt := point(sp, rec)
		res.Recommended = &pt
	}
	return res, nil
}

func snapshotStatus(s Status) Status {
	out := s
	out.Rounds = append([]api.ExploreRound{}, s.Rounds...)
	return out
}

// configRef wires a candidate to its content-addressed cell: the base
// preset itself for the zero deviation, a sparse patch otherwise.
func configRef(sp *Space, c Candidate) (exp.ConfigRef, error) {
	sets := sp.Sets(c)
	if len(sets) == 0 {
		return exp.PresetRef(sp.BaseName), nil
	}
	patch, err := sp.Patch(c)
	if err != nil {
		return exp.ConfigRef{}, err
	}
	return exp.PatchRef(patch), nil
}

func point(sp *Space, s Scored) api.ExplorePoint {
	sets := sp.Sets(s.Cand)
	if sets == nil {
		sets = []string{}
	}
	return api.ExplorePoint{
		Sets:         sets,
		Speedup:      s.Score.Speedup,
		AreaMM2:      s.Score.AreaMM2,
		OverheadFrac: s.Score.OverheadFrac,
	}
}

// probesDigest hashes the sorted probe set: two runs explored the same
// lattice points iff the digests match.
func probesDigest(sp *Space, all []Scored) string {
	lines := make([]string, len(all))
	for i, s := range all {
		lines[i] = strings.Join(sp.Sets(s.Cand), " ")
	}
	sort.Strings(lines)
	sum := sha256.Sum256([]byte(strings.Join(lines, "\n")))
	return hex.EncodeToString(sum[:8])
}

// Resource assembles the wire resource for a plan in a given state.
func (p *Plan) Resource(id string, state api.ExplorationState, status Status, res *Result, errMsg string) api.Exploration {
	labels := make([]string, len(p.Workloads))
	for i, w := range p.Workloads {
		labels[i] = w.Label()
	}
	ex := api.Exploration{
		ID:        id,
		State:     state,
		Strategy:  p.Strategy.Name(),
		Base:      p.Space.BaseName,
		Workloads: labels,
		Objective: p.Request.Objective,
		GridSize:  p.Space.GridSize(),
		Probes:    status.Probes,
		Rounds:    status.Rounds,
		Tiers:     status.Tiers,
		Error:     errMsg,
	}
	if ex.Rounds == nil {
		ex.Rounds = []api.ExploreRound{}
	}
	if res != nil {
		ex.Probes = res.Probes
		ex.Rounds = res.Rounds
		ex.Tiers = res.Tiers
		ex.ProbesDigest = res.ProbesDigest
		ex.Feasible = res.Feasible
		ex.Frontier = res.Frontier
		ex.Recommended = res.Recommended
	}
	return ex
}
