// Package obsv is the in-simulation bottleneck profiler: a windowed,
// fixed-budget time series of per-level hierarchy gauges (L1 miss-queue
// and MSHR occupancy, crossbar port contention, L2 bank busy fraction,
// DRAM channel and row-buffer utilization) plus a derived per-level
// bottleneck verdict — which level saturated first and longest — the
// time-resolved view behind the paper's Fig. 5 analysis.
//
// The engine drives the profiler one gauge vector per core cycle
// (Record), or in bulk across idle spans the event engine jumps over,
// whose state is provably frozen (RecordN). Memory stays O(1) regardless of run length:
// the series holds at most MaxWindows windows, and when the budget fills,
// adjacent windows merge pairwise and the window size doubles — early
// cycles keep their resolution until late cycles need the space.
//
// Everything here is deterministic: no clocks, no randomness, and JSON
// encodings that are byte-identical across runs and worker counts for
// the same simulation.
package obsv

import "math"

// Schema versions the Profile JSON; bump on incompatible changes.
const Schema = 1

// MaxWindows is the fixed sample budget: the series never holds more
// windows than this, no matter how many cycles the run spans.
const MaxWindows = 512

// SaturationThreshold is the per-window utilization at which a level
// counts as saturated for the verdict.
const SaturationThreshold = 0.9

// GaugeDef names one sampled gauge: the hierarchy level it belongs to
// and what it measures. Values are normalized occupancies/fractions in
// [0, 1] so levels are comparable.
type GaugeDef struct {
	Level string // "l1", "xbar-req", "l2", "xbar-reply", "dram"
	Gauge string // e.g. "miss-queue", "mshr", "ports-busy"
}

// Profiler accumulates gauge vectors into the windowed series. Create
// one per simulation with NewProfiler and attach it to the engine; it is
// not safe for concurrent use (the engine is single-threaded per cell).
type Profiler struct {
	defs         []GaugeDef
	windowCycles int64       // cycles per completed window (doubles as the budget fills)
	cur          []float64   // per-gauge sum over the accumulating window
	curCycles    int64       // cycles accumulated into cur
	windows      [][]float64 // completed window sums, each len(defs)
	cycles       int64       // total cycles recorded
}

// NewProfiler builds a profiler for the given gauge set.
func NewProfiler(defs []GaugeDef) *Profiler {
	d := make([]GaugeDef, len(defs))
	copy(d, defs)
	return &Profiler{
		defs:         d,
		windowCycles: 1,
		cur:          make([]float64, len(d)),
	}
}

// NumGauges returns the width of the vectors Record expects.
func (p *Profiler) NumGauges() int { return len(p.defs) }

// Cycles returns the total number of cycles recorded so far.
func (p *Profiler) Cycles() int64 { return p.cycles }

// Record accumulates one cycle's gauge vector.
func (p *Profiler) Record(vals []float64) { p.RecordN(vals, 1) }

// RecordN accumulates the same gauge vector for n consecutive cycles —
// the bulk path for idle spans the event engine jumps, where no component state
// mutates and the frozen vector is exactly what per-cycle sampling would
// have observed.
func (p *Profiler) RecordN(vals []float64, n int64) {
	if n <= 0 {
		return
	}
	p.cycles += n
	for n > 0 {
		take := p.windowCycles - p.curCycles
		if take > n {
			take = n
		}
		f := float64(take)
		for i, v := range vals {
			p.cur[i] += v * f
		}
		p.curCycles += take
		n -= take
		if p.curCycles == p.windowCycles {
			p.flush()
		}
	}
}

// flush closes the accumulating window; at the budget, adjacent windows
// merge pairwise and the window size doubles.
func (p *Profiler) flush() {
	w := make([]float64, len(p.cur))
	copy(w, p.cur)
	p.windows = append(p.windows, w)
	for i := range p.cur {
		p.cur[i] = 0
	}
	p.curCycles = 0
	if len(p.windows) == MaxWindows {
		half := p.windows[:MaxWindows/2]
		for i := range half {
			a, b := p.windows[2*i], p.windows[2*i+1]
			for k := range a {
				a[k] += b[k]
			}
			half[i] = a
		}
		p.windows = half
		p.windowCycles *= 2
	}
}

// Series is one gauge's per-window means, in window order. The last
// window may cover fewer than WindowCycles cycles (a partial tail).
type Series struct {
	Level string    `json:"level"`
	Gauge string    `json:"gauge"`
	Mean  []float64 `json:"mean"`
}

// LevelVerdict summarizes one hierarchy level's saturation behavior.
type LevelVerdict struct {
	Level                string  `json:"level"`
	MeanUtilization      float64 `json:"meanUtilization"`
	PeakUtilization      float64 `json:"peakUtilization"`
	SaturatedWindows     int     `json:"saturatedWindows"`
	FirstSaturatedWindow int     `json:"firstSaturatedWindow"` // -1 when never saturated
}

// Verdict names the bottleneck level and shows the evidence per level.
type Verdict struct {
	Bottleneck string         `json:"bottleneck"`
	Reason     string         `json:"reason"`
	Threshold  float64        `json:"saturationThreshold"`
	Levels     []LevelVerdict `json:"levels"`
}

// Profile is the wire form of a completed profiling run: the windowed
// time series plus the derived verdict. It is what GET /v1/jobs/{id}/profile
// returns and what the disk cache stores alongside the metrics.
type Profile struct {
	Schema       int      `json:"schema"`
	Cycles       int64    `json:"cycles"`
	WindowCycles int64    `json:"windowCycles"`
	Windows      int      `json:"windows"`
	Series       []Series `json:"series"`
	Verdict      Verdict  `json:"verdict"`
}

// round6 trims float noise so profiles stay compact; the rounding is
// deterministic, so byte-identity across runs is preserved.
func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// Snapshot freezes the series into its wire form: per-window means per
// gauge, a partial tail window if one is accumulating, and the verdict.
func (p *Profiler) Snapshot() *Profile {
	nw := len(p.windows)
	partial := p.curCycles > 0
	if partial {
		nw++
	}
	// windowCount[i] = cycles covered by window i (the tail may be short).
	counts := make([]int64, nw)
	for i := range counts {
		counts[i] = p.windowCycles
	}
	if partial {
		counts[nw-1] = p.curCycles
	}
	prof := &Profile{
		Schema:       Schema,
		Cycles:       p.cycles,
		WindowCycles: p.windowCycles,
		Windows:      nw,
	}
	means := make([][]float64, len(p.defs)) // gauge → per-window means
	for gi, def := range p.defs {
		m := make([]float64, nw)
		for wi := 0; wi < nw; wi++ {
			var sum float64
			if partial && wi == nw-1 {
				sum = p.cur[gi]
			} else {
				sum = p.windows[wi][gi]
			}
			m[wi] = round6(sum / float64(counts[wi]))
		}
		means[gi] = m
		prof.Series = append(prof.Series, Series{Level: def.Level, Gauge: def.Gauge, Mean: m})
	}
	prof.Verdict = p.verdict(means, counts)
	return prof
}

// verdict derives the per-level saturation summary: a level's per-window
// utilization is the max over its gauges, and the bottleneck is the level
// saturated for the most cycles (earliest onset breaks ties, then higher
// mean); when nothing saturates, the highest sustained utilization wins.
func (p *Profiler) verdict(means [][]float64, counts []int64) Verdict {
	v := Verdict{Threshold: SaturationThreshold}
	// Preserve first-appearance level order from the gauge defs.
	var order []string
	gaugesOf := make(map[string][]int)
	for gi, def := range p.defs {
		if _, seen := gaugesOf[def.Level]; !seen {
			order = append(order, def.Level)
		}
		gaugesOf[def.Level] = append(gaugesOf[def.Level], gi)
	}
	nw := len(counts)
	var total int64
	for _, c := range counts {
		total += c
	}
	type scored struct {
		lv        LevelVerdict
		satCycles int64
	}
	var rows []scored
	for _, level := range order {
		lv := LevelVerdict{Level: level, FirstSaturatedWindow: -1}
		var meanSum float64
		var satCycles int64
		for wi := 0; wi < nw; wi++ {
			util := 0.0
			for _, gi := range gaugesOf[level] {
				if means[gi][wi] > util {
					util = means[gi][wi]
				}
			}
			meanSum += util * float64(counts[wi])
			if util > lv.PeakUtilization {
				lv.PeakUtilization = util
			}
			if util >= SaturationThreshold {
				lv.SaturatedWindows++
				satCycles += counts[wi]
				if lv.FirstSaturatedWindow < 0 {
					lv.FirstSaturatedWindow = wi
				}
			}
		}
		if total > 0 {
			lv.MeanUtilization = round6(meanSum / float64(total))
		}
		lv.PeakUtilization = round6(lv.PeakUtilization)
		rows = append(rows, scored{lv: lv, satCycles: satCycles})
		v.Levels = append(v.Levels, lv)
	}
	if len(rows) == 0 {
		return v
	}
	best, saturated := 0, false
	for i, r := range rows {
		if r.satCycles > 0 {
			saturated = true
		}
		b := rows[best]
		switch {
		case r.satCycles != b.satCycles:
			if r.satCycles > b.satCycles {
				best = i
			}
		case r.satCycles > 0 && r.lv.FirstSaturatedWindow != b.lv.FirstSaturatedWindow:
			if r.lv.FirstSaturatedWindow < b.lv.FirstSaturatedWindow {
				best = i
			}
		case r.lv.MeanUtilization > b.lv.MeanUtilization:
			best = i
		}
	}
	v.Bottleneck = rows[best].lv.Level
	if saturated {
		v.Reason = "saturated longest (and earliest among ties) above the threshold"
	} else {
		v.Reason = "no level saturated; highest sustained utilization"
	}
	return v
}
