package obsv

import (
	"bytes"
	"encoding/json"
	"testing"
)

var testDefs = []GaugeDef{
	{Level: "l1", Gauge: "mshr"},
	{Level: "l2", Gauge: "bank-busy"},
	{Level: "dram", Gauge: "bus-busy"},
}

// lcg is a tiny deterministic generator so tests never depend on seed
// plumbing; values land in [0, 1).
type lcg struct{ s uint64 }

func (r *lcg) next() float64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return float64(r.s>>11) / float64(1<<53)
}

func (r *lcg) vec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.next()
	}
	return v
}

func snapshotJSON(t *testing.T, p *Profiler) []byte {
	t.Helper()
	b, err := json.Marshal(p.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRecordNMatchesRepeatedRecord(t *testing.T) {
	// The bulk jump path must be indistinguishable from sampling
	// the same frozen vector cycle by cycle — including across window
	// boundaries and budget doublings.
	perCycle := NewProfiler(testDefs)
	bulk := NewProfiler(testDefs)
	r := lcg{s: 42}
	spans := []int64{1, 3, 700, 2, 511, 1024, 5, 97}
	for _, n := range spans {
		v := r.vec(len(testDefs))
		for i := int64(0); i < n; i++ {
			perCycle.Record(v)
		}
		bulk.RecordN(v, n)
	}
	a, b := snapshotJSON(t, perCycle), snapshotJSON(t, bulk)
	if !bytes.Equal(a, b) {
		t.Fatalf("RecordN diverged from repeated Record:\n%s\n%s", a, b)
	}
}

func TestWindowDoublingKeepsBudget(t *testing.T) {
	p := NewProfiler(testDefs[:1])
	// 600 one-cycle records: the 512th flush merges pairwise to 256
	// two-cycle windows, the remaining 88 cycles fill 44 more.
	v := []float64{0.5}
	for i := 0; i < 600; i++ {
		p.Record(v)
	}
	s := p.Snapshot()
	if s.Cycles != 600 || s.WindowCycles != 2 || s.Windows != 300 {
		t.Fatalf("cycles=%d windowCycles=%d windows=%d, want 600/2/300", s.Cycles, s.WindowCycles, s.Windows)
	}
	for wi, m := range s.Series[0].Mean {
		if m != 0.5 {
			t.Fatalf("window %d mean = %v, want 0.5 (merge must preserve means)", wi, m)
		}
	}
}

func TestPartialTailWindow(t *testing.T) {
	p := NewProfiler(testDefs[:1])
	for i := 0; i < 600; i++ {
		p.Record([]float64{0.25})
	}
	p.Record([]float64{1.0}) // 601st cycle opens a 1-cycle tail
	s := p.Snapshot()
	if s.Windows != 301 {
		t.Fatalf("windows = %d, want 301 (300 full + partial tail)", s.Windows)
	}
	means := s.Series[0].Mean
	if got := means[len(means)-1]; got != 1.0 {
		t.Fatalf("tail mean = %v, want 1.0 (tail must divide by its own cycle count)", got)
	}
}

func TestSnapshotIsRepeatable(t *testing.T) {
	p := NewProfiler(testDefs)
	r := lcg{s: 7}
	for i := 0; i < 1000; i++ {
		p.Record(r.vec(len(testDefs)))
	}
	a, b := snapshotJSON(t, p), snapshotJSON(t, p)
	if !bytes.Equal(a, b) {
		t.Fatal("two snapshots of the same profiler differ")
	}
}

func TestVerdictPicksLongestSaturated(t *testing.T) {
	p := NewProfiler(testDefs)
	// dram saturated for 30 cycles, l2 for 10, l1 never.
	for i := 0; i < 30; i++ {
		v := []float64{0.2, 0.3, 0.95}
		if i < 10 {
			v[1] = 0.99
		}
		p.Record(v)
	}
	s := p.Snapshot()
	if s.Verdict.Bottleneck != "dram" {
		t.Fatalf("bottleneck = %q, want dram: %+v", s.Verdict.Bottleneck, s.Verdict)
	}
	for _, lv := range s.Verdict.Levels {
		switch lv.Level {
		case "l1":
			if lv.SaturatedWindows != 0 || lv.FirstSaturatedWindow != -1 {
				t.Fatalf("l1 verdict %+v, want unsaturated", lv)
			}
		case "dram":
			if lv.FirstSaturatedWindow != 0 {
				t.Fatalf("dram first saturated window = %d, want 0", lv.FirstSaturatedWindow)
			}
		}
	}
}

func TestVerdictTieBreaksOnEarlierOnset(t *testing.T) {
	p := NewProfiler(testDefs)
	// l2 and dram each saturate for 20 cycles; l2 starts earlier.
	for i := 0; i < 40; i++ {
		v := []float64{0.1, 0.1, 0.1}
		if i < 20 {
			v[1] = 0.95 // l2 first
		} else {
			v[2] = 0.95 // dram later
		}
		p.Record(v)
	}
	if s := p.Snapshot(); s.Verdict.Bottleneck != "l2" {
		t.Fatalf("bottleneck = %q, want l2 (earlier onset wins the tie)", s.Verdict.Bottleneck)
	}
}

func TestVerdictNoSaturationFallsBackToHighestMean(t *testing.T) {
	p := NewProfiler(testDefs)
	for i := 0; i < 50; i++ {
		p.Record([]float64{0.2, 0.6, 0.4})
	}
	s := p.Snapshot()
	if s.Verdict.Bottleneck != "l2" {
		t.Fatalf("bottleneck = %q, want l2 (highest sustained utilization)", s.Verdict.Bottleneck)
	}
	if s.Verdict.Reason != "no level saturated; highest sustained utilization" {
		t.Fatalf("reason = %q", s.Verdict.Reason)
	}
}
