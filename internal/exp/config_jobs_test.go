package exp

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"gpumembw/internal/config"
)

// leukocyte is the cheapest Table II benchmark; every test here runs it
// so simulations stay fast.
const cheapBench = "leukocyte"

func TestInlineConfigSharesPresetCell(t *testing.T) {
	s := NewScheduler()
	base, err := s.RunJob(Job{Config: PresetRef("baseline"), Workload: BenchRef(cheapBench)})
	if err != nil {
		t.Fatal(err)
	}
	// A byte-wise twin of the preset under another name, with leftover
	// values in mode-dead fields for good measure.
	twin := config.Baseline()
	twin.Name = "my-silicon"
	twin.FixedL1MissLatency = 555 // dead under ModeNormal
	m, err := s.RunJob(Job{Config: InlineConfig(twin), Workload: BenchRef(cheapBench)})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Simulated != 1 {
		t.Fatalf("simulated = %d, want 1 (inline config must share the preset's cell)", st.Simulated)
	}
	if m.Cycles != base.Cycles {
		t.Fatalf("inline-config metrics differ from the preset's (%d vs %d cycles)", m.Cycles, base.Cycles)
	}
}

func TestPatchSharesTwinCells(t *testing.T) {
	s := NewScheduler()
	// An empty patch is the preset's twin...
	if _, err := s.RunJob(Job{Config: PresetRef("baseline"), Workload: BenchRef(cheapBench)}); err != nil {
		t.Fatal(err)
	}
	var empty config.Patch
	if err := json.Unmarshal([]byte(`{"base":"baseline"}`), &empty); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunJob(Job{Config: PatchRef(empty), Workload: BenchRef(cheapBench)}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Simulated != 1 {
		t.Fatalf("simulated = %d, want 1 (empty patch must share the preset's cell)", st.Simulated)
	}
	// ...and a real patch shares its handwritten inline twin's cell.
	var p config.Patch
	if err := json.Unmarshal([]byte(`{"base":"baseline","L1":{"MSHREntries":64}}`), &p); err != nil {
		t.Fatal(err)
	}
	hand := config.Baseline()
	hand.Name = "handwritten"
	hand.L1.MSHREntries = 64
	patchJob := Job{Config: PatchRef(p), Workload: BenchRef(cheapBench)}
	handJob := Job{Config: InlineConfig(hand), Workload: BenchRef(cheapBench)}
	if patchJob.CellID() != handJob.CellID() {
		t.Fatalf("patch cell %s != handwritten cell %s", patchJob.CellID(), handJob.CellID())
	}
}

func TestConfigCellIDStableAcrossRefForms(t *testing.T) {
	byName := Job{Config: PresetRef("baseline"), Workload: BenchRef(cheapBench)}
	inline := BenchJob(config.Baseline(), cheapBench)
	if byName.CellID() != inline.CellID() {
		t.Fatalf("CellID differs between preset and inline forms: %s vs %s", byName.CellID(), inline.CellID())
	}
	renamed := config.Baseline()
	renamed.Name = "other"
	if j := BenchJob(renamed, cheapBench); j.CellID() != byName.CellID() {
		t.Fatal("config name leaked into the cell identity")
	}
	tweaked := config.Baseline()
	tweaked.L1.MSHREntries++
	if j := BenchJob(tweaked, cheapBench); j.CellID() == byName.CellID() {
		t.Fatal("distinct configs share a cell identity")
	}
}

// TestConcurrentInlineConfigDedup submits differently-spelled copies of
// one hardware configuration from many goroutines; the engine must
// collapse them to a single simulation (run under -race in CI).
func TestConcurrentInlineConfigDedup(t *testing.T) {
	s := NewScheduler()
	var wg sync.WaitGroup
	cycles := make([]int64, 8)
	errs := make([]error, 8)
	for i := range cycles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var job Job
			switch i % 3 {
			case 0:
				job = Job{Config: PresetRef("baseline"), Workload: BenchRef(cheapBench)}
			case 1:
				cfg := config.Baseline()
				cfg.Name = strings.Repeat("x", i+1) // unique label per submitter
				cfg.IdealMemLatency = i             // dead under ModeNormal
				job = Job{Config: InlineConfig(cfg), Workload: BenchRef(cheapBench)}
			default:
				job = Job{Config: PatchRef(config.Patch{Base: "baseline"}), Workload: BenchRef(cheapBench)}
			}
			m, err := s.RunJob(job)
			cycles[i], errs[i] = m.Cycles, err
		}(i)
	}
	wg.Wait()
	for i := range cycles {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if cycles[i] != cycles[0] {
			t.Fatalf("concurrent results differ: %v", cycles)
		}
	}
	if st := s.Stats(); st.Simulated != 1 {
		t.Fatalf("simulated = %d, want 1 (identical configs must dedup)", st.Simulated)
	}
}

func TestMalformedConfigJobsFailWithoutPanic(t *testing.T) {
	s := NewScheduler()
	// An invalid inline config must surface as an error from the
	// fail-fast validation path, never a panic in core.New.
	bad := config.Baseline()
	bad.L2.NumBanks = 7
	if _, err := s.RunJob(BenchJob(bad, cheapBench)); err == nil || !strings.Contains(err.Error(), "banks") {
		t.Fatalf("err = %v, want banking validation detail", err)
	}
	// Unknown preset names list the valid ones.
	if _, err := s.RunJob(Job{Config: PresetRef("nope"), Workload: BenchRef(cheapBench)}); err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Fatalf("err = %v, want the known preset names", err)
	}
	// Patches with unknown bases or typo'd fields fail with detail.
	if _, err := s.RunJob(Job{Config: PatchRef(config.Patch{Base: "nope"}), Workload: BenchRef(cheapBench)}); err == nil {
		t.Fatal("unknown patch base accepted")
	}
	typo := config.Patch{Base: "baseline", Delta: json.RawMessage(`{"L1":{"MshrEntriez":1}}`)}
	if _, err := s.RunJob(Job{Config: PatchRef(typo), Workload: BenchRef(cheapBench)}); err == nil {
		t.Fatal("typo'd patch field accepted")
	}
	// A ref naming several kinds is rejected, and its identity must not
	// alias either individual form's cell.
	cfg := config.Baseline()
	both := Job{Config: ConfigRef{Preset: "baseline", Config: &cfg}, Workload: BenchRef(cheapBench)}
	if _, err := s.RunJob(both); err == nil {
		t.Fatal("ref with both preset and config accepted")
	}
	if both.CellID() == BenchJob(cfg, cheapBench).CellID() {
		t.Fatal("invalid both-set ref shares the valid config's cell identity")
	}
}

// TestInvalidConfigNeverPoisonsValidTwin mirrors PR 4's spec poisoning
// rule on the config axis: a config invalid only in a mode-dead field
// would canonicalize onto its valid twin's identity; it must key on its
// raw spelling instead, in either run order.
func TestInvalidConfigNeverPoisonsValidTwin(t *testing.T) {
	valid := config.FixedL1MissLatency(200)
	invalid := valid
	invalid.L2.SizeBytes = 768*1024 + 1 // dead under fixed-lat mode, but L2 geometry is junk under ModeNormal spellings
	invalid.Mode = config.ModeNormal    // ...which makes it invalid outright
	invalid.FixedL1MissLatency = 0

	// Order 1: invalid first must not block the valid config.
	s := NewScheduler()
	if _, err := s.RunJob(BenchJob(invalid, cheapBench)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := s.RunJob(BenchJob(valid, cheapBench)); err != nil {
		t.Fatalf("valid config poisoned by its invalid sibling: %v", err)
	}

	// Distinct identities even though only dead/invalid fields differ.
	deadInvalid := valid
	deadInvalid.Icnt.ClockMHz = -700 // dead under fixed-lat; Validate ignores it there
	if err := deadInvalid.Validate(); err != nil {
		// If validation ever starts covering dead fields, this test's
		// premise changes — surface that loudly.
		t.Fatalf("mode-dead field unexpectedly validated: %v", err)
	}
	if BenchJob(deadInvalid, cheapBench).CellID() != BenchJob(valid, cheapBench).CellID() {
		t.Fatal("mode-dead difference split the cell identity")
	}
}

func TestSweepOverConfigRefAxes(t *testing.T) {
	s := NewScheduler()
	var p config.Patch
	if err := json.Unmarshal([]byte(`{"base":"baseline","L1":{"MSHREntries":64}}`), &p); err != nil {
		t.Fatal(err)
	}
	inlineTwin := config.Baseline()
	inlineTwin.Name = "twin"
	res, err := s.Sweep(
		[]ConfigRef{PresetRef("baseline"), InlineConfig(inlineTwin), PatchRef(p)},
		[]WorkloadRef{BenchRef(cheapBench)},
	)
	if err != nil {
		t.Fatal(err)
	}
	// 3 columns requested, but the inline twin duplicates the preset.
	if st := s.Stats(); st.Simulated != 2 {
		t.Fatalf("simulated = %d, want 2 (inline twin column must dedup)", st.Simulated)
	}
	if res.Configs[0] != "baseline" || res.Configs[1] != "twin" || res.Configs[2] != "baseline-patched" {
		t.Fatalf("config labels = %v", res.Configs)
	}
	// Shared cells still answer under each column's own label.
	if m := res.Cells[0][1]; m.Config != "twin" {
		t.Fatalf("cell label = %q, want the column's own name", m.Config)
	}
	if res.Cells[0][0].Cycles != res.Cells[0][1].Cycles {
		t.Fatal("twin columns returned different metrics")
	}
	if res.Cells[0][2].Cycles == res.Cells[0][0].Cycles {
		t.Fatal("patched column aliased the baseline column")
	}
}
