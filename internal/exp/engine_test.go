package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"gpumembw/internal/config"
)

// engineReport renders a cheap Fig. 3 subset the way Report does it:
// every cell is pre-run on the worker pool via RunJobs, then assembly
// reads only the memo cache. Six cells, so a workers > 1 run genuinely
// exercises concurrent simulation.
func engineReport(t *testing.T, workers int) []byte {
	t.Helper()
	benches := []string{"dwt2d", "leukocyte"}
	lats := []int{0, 300}
	s := NewScheduler(WithWorkers(workers))
	var jobs []Job
	for _, b := range benches {
		jobs = append(jobs, BenchJob(config.Baseline(), b))
		for _, lat := range lats {
			jobs = append(jobs, BenchJob(config.FixedL1MissLatency(lat), b))
		}
	}
	if err := s.RunJobs(jobs); err != nil {
		t.Fatal(err)
	}
	pts, err := s.Fig3(benches, lats)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Simulated != int64(len(jobs)) {
		t.Fatalf("simulated = %d, want %d (assembly must hit only the cache)", st.Simulated, len(jobs))
	}
	var buf bytes.Buffer
	WriteFig3(&buf, pts, lats)
	return buf.Bytes()
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := engineReport(t, 1)
	parallel := engineReport(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("output differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial, parallel)
	}
}

func TestRunJobsDeduplicatesSharedCells(t *testing.T) {
	s := NewScheduler(WithWorkers(4))
	jobs := []Job{
		BenchJob(config.Baseline(), "leukocyte"),
		BenchJob(config.Baseline(), "leukocyte"), // duplicate in the slice
		BenchJob(config.InfiniteBW(), "leukocyte"),
	}
	if err := s.RunJobs(jobs); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Simulated != 2 {
		t.Fatalf("simulated = %d, want 2 (baseline cell shared)", st.Simulated)
	}
	// The speedup denominator must come from the cache, not a re-run.
	if _, err := s.Speedup(config.InfiniteBW(), "leukocyte"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Simulated != 2 {
		t.Fatalf("speedup re-simulated: %+v", st)
	}
	if st.CacheHits < 2 {
		t.Fatalf("cache hits = %d, want >= 2", st.CacheHits)
	}
}

func TestConcurrentRunSimulatesOnce(t *testing.T) {
	s := NewScheduler()
	var wg sync.WaitGroup
	cycles := make([]int64, 8)
	for i := range cycles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := s.Run(config.Baseline(), "leukocyte")
			if err != nil {
				t.Error(err)
				return
			}
			cycles[i] = m.Cycles
		}(i)
	}
	wg.Wait()
	for _, c := range cycles[1:] {
		if c != cycles[0] {
			t.Fatalf("concurrent results differ: %v", cycles)
		}
	}
	if st := s.Stats(); st.Simulated != 1 {
		t.Fatalf("simulated = %d, want 1 (in-flight callers must wait, not re-run)", st.Simulated)
	}
}

func TestRunJobsReportsFirstErrorInJobOrder(t *testing.T) {
	s := NewScheduler(WithWorkers(4))
	jobs := []Job{
		BenchJob(config.Baseline(), "bogus-a"),
		BenchJob(config.Baseline(), "bogus-b"),
	}
	err := s.RunJobs(jobs)
	if err == nil || !strings.Contains(err.Error(), "bogus-a") {
		t.Fatalf("err = %v, want first-in-order failure (bogus-a)", err)
	}
}

func TestJobsForDeduplicatesAndOrders(t *testing.T) {
	// fig1 and fig4 share the full baseline row; requesting both must not
	// double it.
	jobs := JobsFor([]string{"fig1", "fig4"})
	if len(jobs) != len(Benches()) {
		t.Fatalf("jobs = %d, want %d (one baseline cell per benchmark)", len(jobs), len(Benches()))
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if j.Config.Label() != "baseline" {
			t.Fatalf("unexpected config %q", j.Config.Label())
		}
		if seen[j.Workload.Bench] {
			t.Fatalf("duplicate cell for %q", j.Workload.Bench)
		}
		seen[j.Workload.Bench] = true
	}
	// Simulation-free sections expand to nothing.
	if jobs := JobsFor([]string{"tableI", "tableIII", "area"}); len(jobs) != 0 {
		t.Fatalf("static sections expanded to %d jobs", len(jobs))
	}
	// The full report is bounded and deduplicated.
	all := JobsFor(nil)
	keys := map[cellKey]bool{}
	for _, j := range all {
		if keys[j.key()] {
			t.Fatalf("duplicate job %s/%s in full expansion", j.Config.Label(), j.Workload.Label())
		}
		keys[j.key()] = true
	}
}

func TestJobsForMatchesFigureCacheKeys(t *testing.T) {
	// Every cell a figure method requests must be covered by JobsFor, or
	// assembly after RunJobs would silently re-simulate serially. Probe the
	// two sections that rename configs on the fly (fig3, fig11).
	for _, tc := range []struct {
		section string
		cfg     config.Config
		bench   string
	}{
		{"fig3", config.FixedL1MissLatency(Fig3Latencies[3]), Fig3Benches()[0]},
		{"fig11", config.WithCoreClock(config.Baseline(), Fig11Clocks[0]), Fig11Benches()[0]},
		{"fig12", config.AsymmetricOnly(), Benches()[0]},
	} {
		want := BenchJob(tc.cfg, tc.bench).key()
		found := false
		for _, j := range JobsFor([]string{tc.section}) {
			if j.key() == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: cell %s/%s not pre-scheduled by JobsFor", tc.section, tc.cfg.Name, tc.bench)
		}
	}
}

func TestMutatedConfigWithSameNameIsDistinctCell(t *testing.T) {
	// The memo key covers the whole config value, so mutating a preset
	// without renaming it must not alias the original's cached result.
	s := NewScheduler()
	base, err := s.Run(config.Baseline(), "leukocyte")
	if err != nil {
		t.Fatal(err)
	}
	tweaked := config.Baseline() // same Name, different silicon
	tweaked.L1.MSHREntries = 1
	tweaked.L1.MSHRMaxMerge = 1
	m, err := s.Run(tweaked, "leukocyte")
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Simulated != 2 {
		t.Fatalf("simulated = %d, want 2 (mutated config aliased the baseline cell)", st.Simulated)
	}
	if m.Cycles == base.Cycles {
		t.Fatal("1-entry-MSHR run returned the baseline metrics")
	}
}

func TestWriteTextZeroValueResults(t *testing.T) {
	// A zero Results (e.g. unmarshaled from JSON missing "sections")
	// must render nothing rather than panic on nil section pointers.
	var buf bytes.Buffer
	(&Results{}).WriteText(&buf)
	if buf.Len() != 0 {
		t.Fatalf("zero Results rendered %q", buf.String())
	}
	(&Results{Sections: []string{"fig10", "fig12"}}).WriteText(&buf) // nil tables
	if s := buf.String(); strings.Contains(s, "Fig. 10") {
		t.Fatalf("nil Fig10 table rendered: %q", s)
	}
}

func TestCollectUnknownSection(t *testing.T) {
	s := NewScheduler()
	if _, err := s.Collect([]string{"fig99"}); err == nil {
		t.Fatal("unknown section accepted")
	}
	if err := s.Report(&bytes.Buffer{}, []string{"fig99"}); err == nil {
		t.Fatal("unknown section accepted by Report")
	}
}

func TestReportJSONStaticSections(t *testing.T) {
	s := NewScheduler()
	var buf bytes.Buffer
	if err := s.ReportJSON(&buf, []string{"tableI", "area"}); err != nil {
		t.Fatal(err)
	}
	var res Results
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(res.Area) == 0 {
		t.Fatal("area section missing from JSON")
	}
	if len(res.Fig1) != 0 {
		t.Fatal("unselected section present in JSON")
	}
	if res.Engine.Simulated != 0 {
		t.Fatalf("static sections simulated %d cells", res.Engine.Simulated)
	}
}

func TestProgressSinkIsSerialized(t *testing.T) {
	var buf bytes.Buffer
	s := NewScheduler(WithWorkers(4), WithProgress(&buf))
	jobs := []Job{
		BenchJob(config.Baseline(), "leukocyte"),
		BenchJob(config.InfiniteBW(), "leukocyte"),
		BenchJob(config.InfiniteDRAM(), "leukocyte"),
	}
	if err := s.RunJobs(jobs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("progress lines = %d, want 3: %q", len(lines), buf.String())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "ran leukocyte on ") {
			t.Fatalf("malformed progress line %q", l)
		}
	}
}
