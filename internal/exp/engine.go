package exp

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"gpumembw/internal/config"
	"gpumembw/internal/core"
	"gpumembw/internal/smcore"
	"gpumembw/internal/trace"
)

// Job is one deduplicatable unit of simulation work: a (configuration,
// benchmark) cell of the paper's design space.
type Job struct {
	Config config.Config
	Bench  string
}

// cellKey identifies a cell for memoization. config.Config is a plain
// value type (comparable), so the key covers every architectural knob —
// two configs that differ anywhere memoize separately, and callers may
// mutate presets without renaming them. Name alone is excluded: configs
// with identical silicon under different labels (HBM is a renamed
// DRAM-4x; Fig. 11's 1400 MHz point is a renamed baseline) share one
// cell, so the cached Metrics.Config may carry the label of whichever
// job simulated first.
type cellKey struct {
	cfg   config.Config
	bench string
}

func (j Job) key() cellKey {
	cfg := j.Config
	cfg.Name = ""
	return cellKey{cfg: cfg, bench: j.Bench}
}

// CellID returns a stable, content-addressed identifier of the job's
// memo cell: a hash over the canonical JSON of exactly the identity
// key() memoizes on (the full configuration value with Name cleared,
// plus the benchmark). gpusimd uses it for job IDs and disk-cache
// filenames, so job identity and memo identity can never diverge.
func (j Job) CellID() string {
	k := j.key()
	b, err := json.Marshal(struct {
		Config config.Config `json:"config"`
		Bench  string        `json:"bench"`
	}{k.cfg, k.bench})
	if err != nil {
		// config.Config is a plain value type; Marshal cannot fail on it.
		panic(fmt.Sprintf("exp: marshal cell key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// dedupeJobs drops jobs whose cell already appeared earlier in the
// slice, preserving first-occurrence order.
func dedupeJobs(jobs []Job) []Job {
	seen := make(map[cellKey]bool, len(jobs))
	uniq := jobs[:0:0]
	for _, j := range jobs {
		if k := j.key(); !seen[k] {
			seen[k] = true
			uniq = append(uniq, j)
		}
	}
	return uniq
}

// Stats counts the scheduler's work: how many cells were actually
// simulated, how many requests were served from the in-memory memo cache
// (including requests that joined a simulation already in flight), and how
// many were served by the optional second-level ResultCache.
type Stats struct {
	Simulated int64 `json:"simulated"`
	CacheHits int64 `json:"cacheHits"`
	DiskHits  int64 `json:"diskHits"`
}

// ResultCache is an optional second-level store consulted before a cell is
// simulated and filled after a successful simulation — gpusimd plugs a
// disk-backed cache in here so daemon restarts do not re-simulate. Get and
// Put may be called concurrently; the scheduler guarantees at most one
// in-flight call per cell, and never caches failed runs.
type ResultCache interface {
	Get(j Job) (core.Metrics, bool)
	Put(j Job, m core.Metrics)
}

// cell is one memoized simulation result. done is closed once m and err
// are valid, so concurrent requesters of the same cell wait instead of
// re-simulating.
type cell struct {
	done chan struct{}
	m    core.Metrics
	err  error
}

// Scheduler is the experiment engine: it expands figure/table requests
// into deduplicated (config, benchmark) jobs, runs them on a worker pool,
// and memoizes core.Metrics so cells shared between figures — Baseline
// appears in every speedup denominator — simulate exactly once per
// invocation. All methods are safe for concurrent use.
type Scheduler struct {
	workers   int
	progress  io.Writer
	progMu    sync.Mutex
	mu        sync.Mutex
	cells     map[cellKey]*cell
	workloads map[string]*smcore.Workload
	results   ResultCache
	simulated atomic.Int64
	hits      atomic.Int64
	diskHits  atomic.Int64
}

// Option configures a Scheduler.
type Option func(*Scheduler)

// WithWorkers sets the worker-pool size used by RunJobs. n <= 0 selects
// runtime.GOMAXPROCS(0), the default. Callers surfacing a user-supplied
// count should reject negative values first via ValidateWorkers.
func WithWorkers(n int) Option {
	return func(s *Scheduler) {
		if n > 0 {
			s.workers = n
		}
	}
}

// ValidateWorkers rejects worker counts that a user-facing flag should not
// accept: negative values are an error; 0 means "use GOMAXPROCS".
func ValidateWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("exp: invalid worker count %d: must be >= 0 (0 selects GOMAXPROCS)", n)
	}
	return nil
}

// WithResultCache attaches a second-level result store (e.g. gpusimd's
// disk cache) consulted before simulating and filled after success.
func WithResultCache(c ResultCache) Option {
	return func(s *Scheduler) { s.results = c }
}

// WithProgress directs one line per completed simulation to w. Writes are
// serialized, so w need not be thread-safe itself.
func WithProgress(w io.Writer) Option {
	return func(s *Scheduler) { s.progress = w }
}

// NewScheduler builds an experiment engine.
func NewScheduler(opts ...Option) *Scheduler {
	s := &Scheduler{
		workers:   runtime.GOMAXPROCS(0),
		cells:     make(map[cellKey]*cell),
		workloads: trace.Workloads(),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Workers reports the configured worker-pool size.
func (s *Scheduler) Workers() int { return s.workers }

// Stats returns the cumulative simulate/hit counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Simulated: s.simulated.Load(),
		CacheHits: s.hits.Load(),
		DiskHits:  s.diskHits.Load(),
	}
}

// Run executes (or recalls) one simulation. If the cell is already being
// simulated by another goroutine, Run waits for that result rather than
// duplicating the work.
func (s *Scheduler) Run(cfg config.Config, bench string) (core.Metrics, error) {
	return s.RunContext(context.Background(), cfg, bench)
}

// RunContext is Run with cancellation: it returns ctx.Err() if ctx is done
// before the work starts, and stops waiting on another goroutine's
// in-flight cell when ctx is canceled. A simulation this call itself has
// begun is not aborted mid-flight — the cycle engine is not preemptible —
// so cancellation is effective for queued (not-yet-started) work, which is
// exactly what gpusimd's DELETE /v1/jobs/{id} needs.
func (s *Scheduler) RunContext(ctx context.Context, cfg config.Config, bench string) (core.Metrics, error) {
	if err := ctx.Err(); err != nil {
		return core.Metrics{}, err
	}
	j := Job{Config: cfg, Bench: bench}
	key := j.key()
	s.mu.Lock()
	c, ok := s.cells[key]
	if ok {
		s.mu.Unlock()
		select {
		case <-c.done:
			s.hits.Add(1)
			return c.m, c.err
		case <-ctx.Done():
			return core.Metrics{}, ctx.Err()
		}
	}
	c = &cell{done: make(chan struct{})}
	s.cells[key] = c
	s.mu.Unlock()

	if s.results != nil {
		if m, ok := s.results.Get(j); ok {
			s.diskHits.Add(1)
			c.m = m
			close(c.done)
			return c.m, nil
		}
	}
	c.m, c.err = s.simulate(j)
	if c.err == nil && s.results != nil {
		s.results.Put(j, c.m)
	}
	close(c.done)
	return c.m, c.err
}

func (s *Scheduler) simulate(j Job) (core.Metrics, error) {
	wl, ok := s.workloads[j.Bench]
	if !ok {
		return core.Metrics{}, fmt.Errorf("exp: unknown benchmark %q (known: %v)", j.Bench, trace.Names())
	}
	s.simulated.Add(1)
	m, err := core.RunWorkload(j.Config, wl)
	if err != nil {
		return m, fmt.Errorf("exp: %s on %s: %w", j.Bench, j.Config.Name, err)
	}
	if m.Truncated {
		return m, fmt.Errorf("exp: %s on %s truncated at %d cycles", j.Bench, j.Config.Name, m.Cycles)
	}
	s.logf("ran %s on %s (%d cycles)\n", j.Bench, j.Config.Name, m.Cycles)
	return m, nil
}

// logf writes one serialized progress line, if a progress sink is set.
func (s *Scheduler) logf(format string, args ...any) {
	if s.progress == nil {
		return
	}
	s.progMu.Lock()
	fmt.Fprintf(s.progress, format, args...)
	s.progMu.Unlock()
}

// Speedup runs bench on cfg and returns performance relative to baseline.
func (s *Scheduler) Speedup(cfg config.Config, bench string) (float64, error) {
	base, err := s.Run(config.Baseline(), bench)
	if err != nil {
		return 0, err
	}
	m, err := s.Run(cfg, bench)
	if err != nil {
		return 0, err
	}
	return m.Speedup(base), nil
}

// RunJobs executes jobs on the worker pool. Duplicate cells — within the
// slice or against the memo cache — simulate only once. The returned
// error is the first failure in job order, independent of scheduling.
func (s *Scheduler) RunJobs(jobs []Job) error {
	uniq := dedupeJobs(jobs)
	if len(uniq) == 0 {
		return nil
	}
	workers := s.workers
	if workers > len(uniq) {
		workers = len(uniq)
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, len(uniq))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				_, errs[i] = s.Run(uniq[i].Config, uniq[i].Bench)
			}
		}()
	}
	for i := range uniq {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fig3Config builds the Fig. 3 design point for one fixed L1-miss
// latency. Both JobsFor and Fig3 go through it so their cache keys agree.
func fig3Config(lat int) config.Config {
	cfg := config.FixedL1MissLatency(lat)
	cfg.Name = fmt.Sprintf("fixed-lat-%d", lat)
	return cfg
}

// fig11Config builds the Fig. 11 design point for one core clock. Both
// JobsFor and Fig11 go through it so their cache keys agree.
func fig11Config(mhz float64) config.Config {
	cfg := config.WithCoreClock(config.Baseline(), mhz)
	cfg.Name = fmt.Sprintf("core-%gMHz", mhz)
	return cfg
}

// JobsFor expands the requested report sections (nil or empty = all) into
// the deduplicated list of simulation cells they need, in deterministic
// paper order. Sections that need no simulation (tableI, tableIII, area)
// contribute nothing.
func JobsFor(sections []string) []Job {
	want := sectionSet(sections)
	var jobs []Job
	addAll := func(cfg config.Config, benches []string) {
		for _, b := range benches {
			jobs = append(jobs, Job{Config: cfg, Bench: b})
		}
	}

	// The baseline × all-benchmark row underlies Figs. 1, 4, 5, 7, 8, 9
	// and every speedup denominator of Figs. 10 and 12.
	if want["fig1"] || want["fig4"] || want["fig5"] || want["fig7"] ||
		want["fig8"] || want["fig9"] || want["fig10"] || want["fig12"] {
		addAll(config.Baseline(), Benches())
	}
	if want["tableII"] {
		addAll(config.Baseline(), trace.Names())
		addAll(config.InfiniteBW(), trace.Names())
		addAll(config.InfiniteDRAM(), trace.Names())
	}
	if want["fig3"] {
		addAll(config.Baseline(), Fig3Benches())
		for _, lat := range Fig3Latencies {
			addAll(fig3Config(lat), Fig3Benches())
		}
	}
	if want["fig10"] {
		for _, cfg := range Fig10Configs() {
			addAll(cfg, Benches())
		}
	}
	if want["fig11"] {
		addAll(config.Baseline(), Fig11Benches())
		for _, mhz := range Fig11Clocks {
			addAll(fig11Config(mhz), Fig11Benches())
		}
	}
	if want["fig12"] {
		for _, cfg := range Fig12Configs() {
			addAll(cfg, Benches())
		}
		addAll(config.AsymmetricOnly(), Benches())
	}
	// Deduplicate across sections (e.g. tableII and fig3 both want
	// baseline cells) so callers can size progress reporting off len().
	return dedupeJobs(jobs)
}

// sectionSet normalizes a section selection: nil or empty means all.
func sectionSet(sections []string) map[string]bool {
	want := make(map[string]bool, len(Sections))
	if len(sections) == 0 {
		sections = Sections
	}
	for _, s := range sections {
		want[s] = true
	}
	return want
}
