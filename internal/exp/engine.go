package exp

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"gpumembw/internal/config"
	"gpumembw/internal/core"
	"gpumembw/internal/metrics"
	"gpumembw/internal/obsv"
	"gpumembw/internal/smcore"
	"gpumembw/internal/trace"
)

// WorkloadRef names the workload of a Job: exactly one of Bench (a Table
// II benchmark name) or Spec (an inline workload spec) is set. Preset
// names resolve to their registered trace.Spec, so a benchmark named
// "mm" and an inline copy of mm's spec are the *same* workload — they
// share one memo cell, one CellID and one disk-cache entry.
type WorkloadRef struct {
	Bench string      `json:"bench,omitempty"`
	Spec  *trace.Spec `json:"spec,omitempty"`
}

// BenchRef names a Table II benchmark by its registered name.
func BenchRef(name string) WorkloadRef { return WorkloadRef{Bench: name} }

// SpecRef wraps an inline workload spec (the value is copied).
func SpecRef(sp trace.Spec) WorkloadRef { return WorkloadRef{Spec: &sp} }

// defaultSpecName labels inline specs submitted without a name, mirroring
// the "inline" default for unnamed inline configurations.
const defaultSpecName = "custom"

// defaultConfigName labels inline configurations submitted without a name.
const defaultConfigName = "inline"

// ConfigRef names the configuration of a Job — the exact twin of
// WorkloadRef on the hardware axis. Exactly one of Preset (a registered
// preset name), Config (a full inline config.Config) or Patch (a sparse
// overlay on a preset) is set. Preset names resolve to their registered
// config.Config and patches to their applied result, and cell identity
// hashes the resolved configuration's canonical form
// (config.Config.Identity), so a preset named "baseline", an inline copy
// of the baseline and a {"base":"baseline"} patch are the *same*
// hardware — they share one memo cell, one CellID and one disk-cache
// entry.
type ConfigRef struct {
	Preset string         `json:"preset,omitempty"`
	Config *config.Config `json:"config,omitempty"`
	Patch  *config.Patch  `json:"patch,omitempty"`
}

// PresetRef names a registered configuration preset by name.
func PresetRef(name string) ConfigRef { return ConfigRef{Preset: name} }

// InlineConfig wraps a full inline configuration (the value is copied).
func InlineConfig(cfg config.Config) ConfigRef { return ConfigRef{Config: &cfg} }

// PatchRef wraps a mitigation-knob overlay on a named preset.
func PatchRef(p config.Patch) ConfigRef { return ConfigRef{Patch: &p} }

// named returns the ref's inline config with the unnamed-inline default
// applied.
func (r ConfigRef) named() config.Config {
	cfg := *r.Config
	if cfg.Name == "" {
		cfg.Name = defaultConfigName
	}
	return cfg
}

// refCount counts how many of the ref's three forms are set.
func (r ConfigRef) refCount() int {
	n := 0
	if r.Preset != "" {
		n++
	}
	if r.Config != nil {
		n++
	}
	if r.Patch != nil {
		n++
	}
	return n
}

// Label returns the configuration's display name: the preset name, the
// inline config's name (or the unnamed-inline default), or the patch's
// applied name ("<base>-patched" unless the delta renames it).
func (r ConfigRef) Label() string {
	switch {
	case r.Preset != "":
		return r.Preset
	case r.Config != nil:
		return r.named().Name
	case r.Patch != nil:
		if cfg, err := r.Patch.Apply(); err == nil {
			return cfg.Name
		}
		base := r.Patch.Base
		if base == "" {
			base = "baseline"
		}
		return base + "-patched"
	}
	return ""
}

// Validate rejects refs that name no configuration, name more than one
// kind, name an unknown preset, carry a patch that does not apply, or
// resolve to a configuration config.Validate rejects. The error is
// user-facing (server handlers return it as 400 detail).
func (r ConfigRef) Validate() error {
	cfg, err := r.Resolve()
	if err != nil {
		return err
	}
	return cfg.Validate()
}

// resolveConfig returns the ref's concrete configuration. ok is false
// for the ref shapes that cannot name hardware at all — unknown preset
// names, patches that fail to apply, refs naming several kinds or none —
// so their memoized errors key on the raw ref spelling, never on a
// config identity a valid job could share.
func (r ConfigRef) resolveConfig() (config.Config, bool) {
	cfg, err := r.Resolve()
	return cfg, err == nil
}

// Resolve returns the concrete configuration through the error-returning
// path — malformed refs produce an error a daemon can report, never a
// panic.
func (r ConfigRef) Resolve() (config.Config, error) {
	if r.refCount() > 1 {
		return config.Config{}, fmt.Errorf("preset, config and patch are mutually exclusive")
	}
	switch {
	case r.Preset != "":
		return config.ByName(r.Preset)
	case r.Config != nil:
		return r.named(), nil
	case r.Patch != nil:
		return r.Patch.Apply()
	default:
		return config.Config{}, fmt.Errorf("one of preset, config or patch is required (known presets: %v)", config.Names())
	}
}

// rawKey returns the ref's unresolvable raw spelling for cell keying:
// the preset name and, for patches, their canonical JSON form. Only
// called for refs resolveConfig rejected.
func (r ConfigRef) rawKey() (preset, patchRaw string) {
	if r.Patch != nil {
		if b, err := json.Marshal(r.Patch); err == nil {
			patchRaw = string(b)
		} else {
			patchRaw = fmt.Sprintf("%#v", *r.Patch)
		}
	}
	return r.Preset, patchRaw
}

// named returns the ref's spec with the unnamed-inline default applied.
func (r WorkloadRef) named() trace.Spec {
	sp := *r.Spec
	if sp.Name == "" {
		sp.Name = defaultSpecName
	}
	return sp
}

// Label returns the workload's display name: the benchmark name, the
// inline spec's name, or the unnamed-inline default.
func (r WorkloadRef) Label() string {
	if r.Spec != nil {
		return r.named().Name
	}
	return r.Bench
}

// Validate rejects refs that name no workload, name both kinds, name an
// unknown benchmark, or carry a malformed inline spec. The error is
// user-facing (server handlers return it as 400 detail).
func (r WorkloadRef) Validate() error {
	switch {
	case r.Bench != "" && r.Spec != nil:
		return fmt.Errorf("bench and spec are mutually exclusive")
	case r.Spec != nil:
		return r.named().Validate()
	case r.Bench == "":
		return fmt.Errorf("one of bench or spec is required (known benchmarks: %v)", trace.Names())
	default:
		if !trace.Exists(r.Bench) {
			return fmt.Errorf("unknown benchmark %q (known: %v)", r.Bench, trace.Names())
		}
		return nil
	}
}

// resolve returns the ref's workload spec: the inline spec (with the
// unnamed-inline default applied) or the registered spec of the named
// benchmark. ok is false for the two ref shapes Build rejects — unknown
// benchmark names and refs naming both kinds — so their memoized errors
// key on the name, never on a spec identity a valid job could share.
func (r WorkloadRef) resolve() (trace.Spec, bool) {
	if r.Bench != "" && r.Spec != nil {
		return trace.Spec{}, false
	}
	if r.Spec != nil {
		return r.named(), true
	}
	sp, err := trace.SpecByName(r.Bench)
	return sp, err == nil
}

// Build compiles the referenced workload through the error-returning
// spec path — malformed refs produce an error a daemon can report, never
// a panic.
func (r WorkloadRef) Build() (*smcore.Workload, error) {
	if r.Bench != "" && r.Spec != nil {
		return nil, fmt.Errorf("bench and spec are mutually exclusive")
	}
	if r.Spec != nil {
		return r.named().Build()
	}
	return trace.ByName(r.Bench)
}

// Job is one deduplicatable unit of simulation work: a (configuration,
// workload) cell of the design space. Both halves are first-class refs:
// the configuration is a preset name, an inline config.Config or a
// mitigation-knob Patch, and the workload is a paper benchmark by name
// or any custom workload as an inline spec.
type Job struct {
	Config   ConfigRef
	Workload WorkloadRef
}

// BenchJob builds the common config-value × preset-benchmark job.
func BenchJob(cfg config.Config, bench string) Job {
	return Job{Config: InlineConfig(cfg), Workload: BenchRef(bench)}
}

// SpecJob builds a config-value × inline-spec job.
func SpecJob(cfg config.Config, sp trace.Spec) Job {
	return Job{Config: InlineConfig(cfg), Workload: SpecRef(sp)}
}

// cellKey identifies a cell for memoization. Every half is a plain value
// type (comparable) covering every knob that affects the simulation:
// two configs or specs that differ in any live field memoize separately,
// and callers may mutate presets without renaming them. Labels and
// mode-dead fields are excluded — config.Config via Identity, and
// trace.Spec's Name/Suite via Identity — so identical silicon or kernels
// under different labels share one cell, and the cached Metrics may
// carry the labels of whichever job simulated first. Preset config and
// benchmark names, and config patches, resolve to their concrete
// identities; preset/patchRaw/bench are set only for unresolvable refs
// (unknown names, patches that fail to apply), whose errors memoize
// under the raw spelling itself.
//
// Refs that cannot simulate are kept out of valid cells: an INVALID
// inline spec or config is keyed on its raw form (labels intact — raw
// values carry a name, canonical identities never do, so the key spaces
// are disjoint). Canonicalization zeroes pattern-/mode-dead fields, so
// without this split a value invalid only in a dead field would alias
// its valid twin's identity and poison that cell with a memoized error.
type cellKey struct {
	preset   string        // unknown preset names only
	patchRaw string        // unresolvable patches only (raw JSON spelling)
	cfg      config.Config // canonical config identity; raw for invalid configs
	bench    string        // unknown benchmark names only
	spec     trace.Spec    // canonical workload identity; raw for invalid specs
}

func (j Job) key() cellKey {
	var k cellKey
	cfg, ok := j.Config.resolveConfig()
	switch {
	case !ok:
		k.preset, k.patchRaw = j.Config.rawKey()
	case cfg.Validate() != nil:
		k.cfg = cfg
	default:
		k.cfg = cfg.Identity()
	}
	sp, ok := j.Workload.resolve()
	switch {
	case !ok:
		k.bench = j.Workload.Bench
	case sp.Validate() != nil:
		k.spec = sp
	default:
		k.spec = sp.Identity()
	}
	return k
}

// CellID returns a stable, content-addressed identifier of the job's
// memo cell: a hash over the canonical JSON of exactly the identity
// key() memoizes on — the configuration's canonical identity
// (config.Config.Identity) plus the workload's canonical spec identity
// (trace.Spec.Identity). gpusimd uses it for job IDs and disk-cache
// filenames, so job identity and memo identity can never diverge, and an
// inline config or spec equal to a preset lands on the preset's cell.
func (j Job) CellID() string {
	k := j.key()
	payload := struct {
		Config   config.Config `json:"config"`
		Preset   string        `json:"preset,omitempty"`
		PatchRaw string        `json:"patchRaw,omitempty"`
		Bench    string        `json:"bench,omitempty"`
		Spec     *trace.Spec   `json:"spec,omitempty"`
	}{Config: k.cfg, Preset: k.preset, PatchRaw: k.patchRaw, Bench: k.bench}
	if k.bench == "" {
		payload.Spec = &k.spec
	}
	b, err := json.Marshal(payload)
	if err != nil {
		// Only non-finite floats (which validation rejects) can defeat
		// Marshal; hash a deterministic textual form of the (all-value)
		// key instead so CellID is total and never panics on garbage.
		b = []byte(fmt.Sprintf("%#v", k))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// dedupeJobs drops jobs whose cell already appeared earlier in the
// slice, preserving first-occurrence order.
func dedupeJobs(jobs []Job) []Job {
	seen := make(map[cellKey]bool, len(jobs))
	uniq := jobs[:0:0]
	for _, j := range jobs {
		if k := j.key(); !seen[k] {
			seen[k] = true
			uniq = append(uniq, j)
		}
	}
	return uniq
}

// Stats counts the scheduler's work: how many cells were actually
// simulated, how many requests were served from the in-memory memo cache
// (including requests that joined a simulation already in flight), how
// many were served by the optional second-level ResultCache, and the
// cumulative simulated GPU cycles (the numerator of the service's
// sim-cycles/s throughput).
type Stats struct {
	Simulated int64 `json:"simulated"`
	CacheHits int64 `json:"cacheHits"`
	DiskHits  int64 `json:"diskHits"`
	SimCycles int64 `json:"simCycles"`
}

// ResultCache is an optional second-level store consulted before a cell is
// simulated and filled after a successful simulation — gpusimd plugs a
// disk-backed cache in here so daemon restarts do not re-simulate. Get and
// Put may be called concurrently; the scheduler guarantees at most one
// in-flight call per cell, and never caches failed runs.
type ResultCache interface {
	Get(j Job) (core.Metrics, bool)
	Put(j Job, m core.Metrics)
}

// ProfileCache is the optional extension a ResultCache may implement to
// store bottleneck profiles alongside metrics. Profiles never affect
// cell identity — they are a richer record of the same deterministic
// run — so a cache entry with a profile also serves unprofiled requests,
// while an entry without one is only a metrics hit.
type ProfileCache interface {
	GetProfile(j Job) (core.Metrics, *obsv.Profile, bool)
	PutProfile(j Job, m core.Metrics, p *obsv.Profile)
}

// Cache tiers reported by RunResult.Tier: which layer served the cell.
const (
	TierSimulated = "simulated"
	TierMemo      = "memo"
	TierDisk      = "disk"
)

// RunResult is the full outcome of one cell request: the metrics, the
// bottleneck profile when one was requested, and which cache tier served
// the request (the trace span's cache-tier attribution).
type RunResult struct {
	Metrics core.Metrics
	Profile *obsv.Profile
	Tier    string
}

// cell is one memoized simulation result. done is closed once m and err
// are valid, so concurrent requesters of the same cell wait instead of
// re-simulating. prof/profErr/profDone manage the profile upgrade of a
// cell first computed without one (all three guarded by Scheduler.mu):
// the first profiled requester re-runs the deterministic simulation with
// the profiler attached, later ones wait on profDone.
type cell struct {
	done chan struct{}
	m    core.Metrics
	err  error

	prof     *obsv.Profile
	profErr  error
	profDone chan struct{}
}

// Scheduler is the experiment engine: it expands figure/table requests
// into deduplicated (config, benchmark) jobs, runs them on a worker pool,
// and memoizes core.Metrics so cells shared between figures — Baseline
// appears in every speedup denominator — simulate exactly once per
// invocation. All methods are safe for concurrent use.
type Scheduler struct {
	workers   int
	progress  io.Writer
	progMu    sync.Mutex
	mu        sync.Mutex
	cells     map[cellKey]*cell
	results   ResultCache
	simulated atomic.Int64
	hits      atomic.Int64
	diskHits  atomic.Int64
	simCycles atomic.Int64
}

// Option configures a Scheduler.
type Option func(*Scheduler)

// WithWorkers sets the worker-pool size used by RunJobs. n <= 0 selects
// runtime.GOMAXPROCS(0), the default. Callers surfacing a user-supplied
// count should reject negative values first via ValidateWorkers.
func WithWorkers(n int) Option {
	return func(s *Scheduler) {
		if n > 0 {
			s.workers = n
		}
	}
}

// ValidateWorkers rejects worker counts that a user-facing flag should not
// accept: negative values are an error; 0 means "use GOMAXPROCS".
func ValidateWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("exp: invalid worker count %d: must be >= 0 (0 selects GOMAXPROCS)", n)
	}
	return nil
}

// WithResultCache attaches a second-level result store (e.g. gpusimd's
// disk cache) consulted before simulating and filled after success.
func WithResultCache(c ResultCache) Option {
	return func(s *Scheduler) { s.results = c }
}

// WithProgress directs one line per completed simulation to w. Writes are
// serialized, so w need not be thread-safe itself.
func WithProgress(w io.Writer) Option {
	return func(s *Scheduler) { s.progress = w }
}

// NewScheduler builds an experiment engine.
func NewScheduler(opts ...Option) *Scheduler {
	s := &Scheduler{
		workers: runtime.GOMAXPROCS(0),
		cells:   make(map[cellKey]*cell),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Workers reports the configured worker-pool size.
func (s *Scheduler) Workers() int { return s.workers }

// Stats returns the cumulative simulate/hit counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Simulated: s.simulated.Load(),
		CacheHits: s.hits.Load(),
		DiskHits:  s.diskHits.Load(),
		SimCycles: s.simCycles.Load(),
	}
}

// RegisterMetrics exports the scheduler's counters on r under the given
// family prefix (e.g. "gpusimd_scheduler_"). The counters are read at
// scrape time from the same atomics Stats reports, so /metrics and
// /v1/stats can never disagree about the scheduler.
func (s *Scheduler) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.CounterFunc(prefix+"simulated_total",
		"Simulation cells actually run (memo and result-cache misses).",
		func() float64 { return float64(s.simulated.Load()) })
	r.CounterFunc(prefix+"memo_hits_total",
		"Requests served by the in-memory memo cache, including joins of in-flight cells.",
		func() float64 { return float64(s.hits.Load()) })
	r.CounterFunc(prefix+"result_cache_hits_total",
		"Requests served by the second-level result cache (gpusimd's disk spill).",
		func() float64 { return float64(s.diskHits.Load()) })
	r.CounterFunc(prefix+"sim_cycles_total",
		"Cumulative simulated GPU cycles; rate() gives sim-cycles/s throughput.",
		func() float64 { return float64(s.simCycles.Load()) })
}

// Run executes (or recalls) one preset-benchmark simulation. If the cell
// is already being simulated by another goroutine, Run waits for that
// result rather than duplicating the work.
func (s *Scheduler) Run(cfg config.Config, bench string) (core.Metrics, error) {
	return s.RunJobContext(context.Background(), BenchJob(cfg, bench))
}

// RunSpec executes (or recalls) one inline-spec simulation. A spec equal
// to a registered benchmark (labels aside) shares that benchmark's cell.
func (s *Scheduler) RunSpec(cfg config.Config, sp trace.Spec) (core.Metrics, error) {
	return s.RunJobContext(context.Background(), SpecJob(cfg, sp))
}

// RunContext is Run with cancellation; see RunJobContext.
func (s *Scheduler) RunContext(ctx context.Context, cfg config.Config, bench string) (core.Metrics, error) {
	return s.RunJobContext(ctx, BenchJob(cfg, bench))
}

// RunJob executes (or recalls) one simulation cell.
func (s *Scheduler) RunJob(j Job) (core.Metrics, error) {
	return s.RunJobContext(context.Background(), j)
}

// RunJobContext is RunJob with cancellation: it returns ctx.Err() if ctx
// is done before the work starts, and stops waiting on another
// goroutine's in-flight cell when ctx is canceled. A simulation this call
// itself has begun is not aborted mid-flight — the cycle engine is not
// preemptible — so cancellation is effective for queued (not-yet-started)
// work, which is exactly what gpusimd's DELETE /v1/jobs/{id} needs.
func (s *Scheduler) RunJobContext(ctx context.Context, j Job) (core.Metrics, error) {
	r, err := s.RunJobEx(ctx, j, false)
	return r.Metrics, err
}

// RunJobEx is RunJobContext plus observability: when profile is true the
// cell runs (or re-runs) with the bottleneck profiler attached, and the
// result reports which cache tier served the request. Profiling never
// changes cell identity or metrics — a profiled and an unprofiled
// request share one cell, and a cell first computed without a profile is
// deterministically re-simulated once to backfill it (the metrics are
// provably identical, so only the profile is new information).
func (s *Scheduler) RunJobEx(ctx context.Context, j Job, profile bool) (RunResult, error) {
	if err := ctx.Err(); err != nil {
		return RunResult{}, err
	}
	// Fail fast on jobs that could never simulate, BEFORE touching the
	// memo: validation errors need no memoization (re-validating is
	// cheap), and keeping garbage out of s.cells means a key containing
	// a non-finite float — which no map lookup would ever match again —
	// cannot leak an unreachable cell per call.
	if err := j.Config.Validate(); err != nil {
		return RunResult{}, fmt.Errorf("exp: %w", err)
	}
	if err := j.Workload.Validate(); err != nil {
		return RunResult{}, fmt.Errorf("exp: %w", err)
	}
	key := j.key()
	s.mu.Lock()
	c, ok := s.cells[key]
	if ok {
		s.mu.Unlock()
		select {
		case <-c.done:
			s.hits.Add(1)
			if c.err != nil {
				return RunResult{Metrics: c.m, Tier: TierMemo}, c.err
			}
			s.mu.Lock()
			prof := c.prof
			s.mu.Unlock()
			if !profile || prof != nil {
				return RunResult{Metrics: c.m, Profile: prof, Tier: TierMemo}, nil
			}
			return s.upgradeProfile(ctx, j, c)
		case <-ctx.Done():
			return RunResult{}, ctx.Err()
		}
	}
	c = &cell{done: make(chan struct{})}
	s.cells[key] = c
	s.mu.Unlock()

	if s.results != nil {
		if pc, ok := s.results.(ProfileCache); ok && profile {
			// A profiled request only counts a disk hit when the entry
			// already carries a profile; metrics-only entries still need
			// the profiled re-simulation below.
			if m, p, ok := pc.GetProfile(j); ok && p != nil {
				s.diskHits.Add(1)
				c.m = m
				s.mu.Lock()
				c.prof = p
				s.mu.Unlock()
				close(c.done)
				return RunResult{Metrics: m, Profile: p, Tier: TierDisk}, nil
			}
		} else if !profile {
			if m, ok := s.results.Get(j); ok {
				s.diskHits.Add(1)
				c.m = m
				close(c.done)
				return RunResult{Metrics: m, Tier: TierDisk}, nil
			}
		}
	}
	var p *obsv.Profile
	c.m, p, c.err = s.simulate(j, profile)
	if c.err == nil && s.results != nil {
		if pc, ok := s.results.(ProfileCache); ok && p != nil {
			pc.PutProfile(j, c.m, p)
		} else {
			s.results.Put(j, c.m)
		}
	}
	s.mu.Lock()
	c.prof = p
	s.mu.Unlock()
	close(c.done)
	return RunResult{Metrics: c.m, Profile: p, Tier: TierSimulated}, c.err
}

// upgradeProfile backfills the profile of a memoized cell first computed
// without one: the first profiled requester consults the disk cache and
// otherwise re-runs the deterministic simulation with the profiler
// attached; concurrent profiled requesters wait on the same upgrade.
func (s *Scheduler) upgradeProfile(ctx context.Context, j Job, c *cell) (RunResult, error) {
	s.mu.Lock()
	if c.prof != nil {
		prof := c.prof
		s.mu.Unlock()
		return RunResult{Metrics: c.m, Profile: prof, Tier: TierMemo}, nil
	}
	owner := c.profDone == nil
	if owner {
		c.profDone = make(chan struct{})
	}
	ch := c.profDone
	s.mu.Unlock()

	if !owner {
		select {
		case <-ch:
			s.mu.Lock()
			prof, err := c.prof, c.profErr
			s.mu.Unlock()
			return RunResult{Metrics: c.m, Profile: prof, Tier: TierMemo}, err
		case <-ctx.Done():
			return RunResult{}, ctx.Err()
		}
	}

	var p *obsv.Profile
	var err error
	tier := TierSimulated
	if pc, ok := s.results.(ProfileCache); ok && s.results != nil {
		if _, dp, ok := pc.GetProfile(j); ok && dp != nil {
			s.diskHits.Add(1)
			p, tier = dp, TierDisk
		}
	}
	if p == nil {
		_, p, err = s.simulate(j, true)
		if err == nil {
			if pc, ok := s.results.(ProfileCache); ok && s.results != nil {
				pc.PutProfile(j, c.m, p)
			}
		}
	}
	s.mu.Lock()
	c.prof, c.profErr = p, err
	s.mu.Unlock()
	close(ch)
	return RunResult{Metrics: c.m, Profile: p, Tier: tier}, err
}

// simulate runs one cell for real. The configuration resolves through
// the error-returning ref path (preset lookup, patch application,
// config.Validate) and the workload through the error-returning spec
// path, so malformed user input — an inline spec, config or patch a
// daemon accepted over the wire — surfaces as a job error, never a panic.
func (s *Scheduler) simulate(j Job, profile bool) (core.Metrics, *obsv.Profile, error) {
	cfg, err := j.Config.Resolve()
	if err != nil {
		return core.Metrics{}, nil, fmt.Errorf("exp: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return core.Metrics{}, nil, fmt.Errorf("exp: %w", err)
	}
	wl, err := j.Workload.Build()
	if err != nil {
		return core.Metrics{}, nil, fmt.Errorf("exp: %w", err)
	}
	label := j.Workload.Label()
	s.simulated.Add(1)
	var m core.Metrics
	var p *obsv.Profile
	if profile {
		m, p, err = core.RunWorkloadProfiled(cfg, wl)
	} else {
		m, err = core.RunWorkload(cfg, wl)
	}
	s.simCycles.Add(m.Cycles)
	if err != nil {
		return m, nil, fmt.Errorf("exp: %s on %s: %w", label, cfg.Name, err)
	}
	if m.Truncated {
		return m, nil, fmt.Errorf("exp: %s on %s truncated at %d cycles", label, cfg.Name, m.Cycles)
	}
	s.logf("ran %s on %s (%d cycles)\n", label, cfg.Name, m.Cycles)
	return m, p, nil
}

// logf writes one serialized progress line, if a progress sink is set.
func (s *Scheduler) logf(format string, args ...any) {
	if s.progress == nil {
		return
	}
	s.progMu.Lock()
	fmt.Fprintf(s.progress, format, args...)
	s.progMu.Unlock()
}

// Speedup runs bench on cfg and returns performance relative to baseline.
func (s *Scheduler) Speedup(cfg config.Config, bench string) (float64, error) {
	base, err := s.Run(config.Baseline(), bench)
	if err != nil {
		return 0, err
	}
	m, err := s.Run(cfg, bench)
	if err != nil {
		return 0, err
	}
	return m.Speedup(base), nil
}

// RunJobs executes jobs on the worker pool. Duplicate cells — within the
// slice or against the memo cache — simulate only once. The returned
// error is the first failure in job order, independent of scheduling.
func (s *Scheduler) RunJobs(jobs []Job) error {
	uniq := dedupeJobs(jobs)
	if len(uniq) == 0 {
		return nil
	}
	workers := s.workers
	if workers > len(uniq) {
		workers = len(uniq)
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, len(uniq))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				_, errs[i] = s.RunJob(uniq[i])
			}
		}()
	}
	for i := range uniq {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// JobsFor expands the requested report sections (nil or empty = all) into
// the deduplicated list of simulation cells they need, in deterministic
// paper order. Sections that need no simulation (tableI, tableIII, area)
// contribute nothing. Derived design points (Fig. 3's fixed latencies,
// Fig. 11's core clocks) come from the shared config builders, so the
// cells scheduled here and the cells the figure assemblers request carry
// the same names and memo keys.
func JobsFor(sections []string) []Job {
	want := sectionSet(sections)
	var jobs []Job
	addAll := func(cfg config.Config, benches []string) {
		for _, b := range benches {
			jobs = append(jobs, BenchJob(cfg, b))
		}
	}

	// The baseline × all-benchmark row underlies Figs. 1, 4, 5, 7, 8, 9
	// and every speedup denominator of Figs. 10 and 12.
	if want["fig1"] || want["fig4"] || want["fig5"] || want["fig7"] ||
		want["fig8"] || want["fig9"] || want["fig10"] || want["fig12"] {
		addAll(config.Baseline(), Benches())
	}
	if want["tableII"] {
		addAll(config.Baseline(), trace.Names())
		addAll(config.InfiniteBW(), trace.Names())
		addAll(config.InfiniteDRAM(), trace.Names())
	}
	if want["fig3"] {
		addAll(config.Baseline(), Fig3Benches())
		for _, lat := range Fig3Latencies {
			addAll(config.FixedL1MissLatency(lat), Fig3Benches())
		}
	}
	if want["fig10"] {
		for _, cfg := range Fig10Configs() {
			addAll(cfg, Benches())
		}
	}
	if want["fig11"] {
		addAll(config.Baseline(), Fig11Benches())
		for _, mhz := range Fig11Clocks {
			addAll(config.WithCoreClock(config.Baseline(), mhz), Fig11Benches())
		}
	}
	if want["fig12"] {
		for _, cfg := range Fig12Configs() {
			addAll(cfg, Benches())
		}
		addAll(config.AsymmetricOnly(), Benches())
	}
	// Deduplicate across sections (e.g. tableII and fig3 both want
	// baseline cells) so callers can size progress reporting off len().
	return dedupeJobs(jobs)
}

// sectionSet normalizes a section selection: nil or empty means all.
func sectionSet(sections []string) map[string]bool {
	want := make(map[string]bool, len(Sections))
	if len(sections) == 0 {
		sections = Sections
	}
	for _, s := range sections {
		want[s] = true
	}
	return want
}
