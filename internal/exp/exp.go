// Package exp reproduces every table and figure of the paper's evaluation:
// Fig. 1 (stalls and latencies), Table II (P∞, P_DRAM), Fig. 3 (latency
// sweep), Figs. 4–5 (queue occupancy), Figs. 7–9 (stall taxonomies),
// Fig. 10 (4× design-space exploration), Fig. 11 (core-frequency scaling),
// Fig. 12 (cost-effective configurations) and the §VII-C area analysis.
//
// The Scheduler is the execution engine behind all of them: it expands
// figure/table requests into deduplicated (config, benchmark) jobs, runs
// them on a worker pool, and memoizes results so cells shared between
// figures — the 19 baseline runs underlie Figs. 1, 4, 5, 7–9 and every
// speedup denominator of Figs. 10–12 — simulate exactly once. Each
// experiment returns structured rows and can render itself as an aligned
// text table or as JSON; cmd/paperfigs composes them into EXPERIMENTS.md.
package exp

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"gpumembw/internal/trace"
)

// Benches returns the benchmark names in the Fig. 1 x-axis order.
func Benches() []string { return trace.Fig1Names() }

// Fig3Benches are the representative benchmarks of the latency sweep.
func Fig3Benches() []string {
	return []string{"cfd", "dwt2d", "leukocyte", "nn", "nw", "sc", "lbm", "ss"}
}

// Fig11Benches are the benchmarks of the frequency-scaling experiment.
func Fig11Benches() []string {
	return []string{"nn", "hybridsort", "sradv2", "bfs", "cfd", "leukocyte"}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// table writes an aligned text table.
func table(w io.Writer, header []string, rows [][]string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	sep := make([]string, len(header))
	for i, h := range header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, row := range rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
}

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f0(x float64) string  { return fmt.Sprintf("%.0f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
