// Package exp reproduces every table and figure of the paper's evaluation:
// Fig. 1 (stalls and latencies), Table II (P∞, P_DRAM), Fig. 3 (latency
// sweep), Figs. 4–5 (queue occupancy), Figs. 7–9 (stall taxonomies),
// Fig. 10 (4× design-space exploration), Fig. 11 (core-frequency scaling),
// Fig. 12 (cost-effective configurations) and the §VII-C area analysis.
//
// Each experiment returns structured rows and can render itself as an
// aligned text table; cmd/paperfigs composes them into EXPERIMENTS.md.
package exp

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"gpumembw/internal/config"
	"gpumembw/internal/core"
	"gpumembw/internal/smcore"
	"gpumembw/internal/trace"
)

// Runner executes simulations with memoization, so the 19 baseline runs
// shared by Figs. 1, 4, 5, 7, 8, 9 (and the denominators of Figs. 10–12)
// happen once.
type Runner struct {
	verbose   io.Writer // progress log, may be nil
	cache     map[string]core.Metrics
	workloads map[string]*smcore.Workload
}

// NewRunner builds a Runner. If progress is non-nil, one line is written
// per simulation.
func NewRunner(progress io.Writer) *Runner {
	return &Runner{
		verbose:   progress,
		cache:     make(map[string]core.Metrics),
		workloads: trace.Workloads(),
	}
}

// Run executes (or recalls) one simulation.
func (r *Runner) Run(cfg config.Config, bench string) (core.Metrics, error) {
	key := cfg.Name + "\x00" + bench + "\x00" + fmt.Sprint(cfg.Core.ClockMHz)
	if m, ok := r.cache[key]; ok {
		return m, nil
	}
	wl, ok := r.workloads[bench]
	if !ok {
		return core.Metrics{}, fmt.Errorf("exp: unknown benchmark %q", bench)
	}
	if r.verbose != nil {
		fmt.Fprintf(r.verbose, "running %s on %s...\n", bench, cfg.Name)
	}
	m, err := core.RunWorkload(cfg, wl)
	if err != nil {
		return m, fmt.Errorf("exp: %s on %s: %w", bench, cfg.Name, err)
	}
	if m.Truncated {
		return m, fmt.Errorf("exp: %s on %s truncated at %d cycles", bench, cfg.Name, m.Cycles)
	}
	r.cache[key] = m
	return m, nil
}

// Speedup runs bench on cfg and returns performance relative to baseline.
func (r *Runner) Speedup(cfg config.Config, bench string) (float64, error) {
	base, err := r.Run(config.Baseline(), bench)
	if err != nil {
		return 0, err
	}
	m, err := r.Run(cfg, bench)
	if err != nil {
		return 0, err
	}
	return m.Speedup(base), nil
}

// Benches returns the benchmark names in the Fig. 1 x-axis order.
func Benches() []string { return trace.Fig1Names() }

// Fig3Benches are the representative benchmarks of the latency sweep.
func Fig3Benches() []string {
	return []string{"cfd", "dwt2d", "leukocyte", "nn", "nw", "sc", "lbm", "ss"}
}

// Fig11Benches are the benchmarks of the frequency-scaling experiment.
func Fig11Benches() []string {
	return []string{"nn", "hybridsort", "sradv2", "bfs", "cfd", "leukocyte"}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// table writes an aligned text table.
func table(w io.Writer, header []string, rows [][]string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	sep := make([]string, len(header))
	for i, h := range header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, row := range rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
}

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f0(x float64) string  { return fmt.Sprintf("%.0f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
