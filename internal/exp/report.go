package exp

import (
	"encoding/json"
	"fmt"
	"io"
)

// Sections are the report section names accepted by Collect, Report and
// JobsFor, in the paper's presentation order.
var Sections = []string{
	"tableI", "fig1", "tableII", "fig3", "fig4", "fig5",
	"fig7", "fig8", "fig9", "tableIII", "fig10", "fig11", "fig12", "area",
}

// SpeedupTable couples a Fig. 10/12-style speedup matrix with its
// configuration (column) names.
type SpeedupTable struct {
	Configs []string     `json:"configs"`
	Rows    []SpeedupRow `json:"rows"`
}

// Results holds the structured data of every requested report section —
// the machine-readable form of the paper's evaluation. Sections that were
// not requested stay zero and are omitted from JSON.
type Results struct {
	Sections       []string       `json:"sections"`
	Fig1           []Fig1Row      `json:"fig1,omitempty"`
	TableII        []TableIIRow   `json:"tableII,omitempty"`
	Fig3           []Fig3Point    `json:"fig3,omitempty"`
	Fig4           []OccupancyRow `json:"fig4,omitempty"`
	Fig5           []OccupancyRow `json:"fig5,omitempty"`
	Fig7           []BreakdownRow `json:"fig7,omitempty"`
	Fig8           []BreakdownRow `json:"fig8,omitempty"`
	Fig9           []BreakdownRow `json:"fig9,omitempty"`
	Fig10          *SpeedupTable  `json:"fig10,omitempty"`
	Fig11          []Fig11Point   `json:"fig11,omitempty"`
	Fig12          *SpeedupTable  `json:"fig12,omitempty"`
	AsymmetricOnly *float64       `json:"asymmetricOnly,omitempty"`
	Area           []AreaRow      `json:"area,omitempty"`
	Engine         Stats          `json:"engine"`
}

// validateSections rejects unknown section names early, before any
// simulation runs.
func validateSections(sections []string) error {
	known := make(map[string]bool, len(Sections))
	for _, s := range Sections {
		known[s] = true
	}
	for _, s := range sections {
		if !known[s] {
			return fmt.Errorf("exp: unknown section %q (known: %v)", s, Sections)
		}
	}
	return nil
}

// Collect runs the requested experiment sections (nil = all) and returns
// their structured results. All simulation happens up front on the worker
// pool via RunJobs; assembly afterwards is serial and hits only the memo
// cache, so results are deterministic for any worker count.
func (s *Scheduler) Collect(sections []string) (*Results, error) {
	if err := validateSections(sections); err != nil {
		return nil, err
	}
	if err := s.RunJobs(JobsFor(sections)); err != nil {
		return nil, err
	}
	want := sectionSet(sections)
	res := &Results{}
	for _, sec := range Sections {
		if want[sec] {
			res.Sections = append(res.Sections, sec)
		}
	}
	var err error
	if want["fig1"] {
		if res.Fig1, err = s.Fig1(); err != nil {
			return nil, err
		}
	}
	if want["tableII"] {
		if res.TableII, err = s.TableII(); err != nil {
			return nil, err
		}
	}
	if want["fig3"] {
		if res.Fig3, err = s.Fig3(nil, nil); err != nil {
			return nil, err
		}
	}
	if want["fig4"] {
		if res.Fig4, err = s.Fig4(); err != nil {
			return nil, err
		}
	}
	if want["fig5"] {
		if res.Fig5, err = s.Fig5(); err != nil {
			return nil, err
		}
	}
	if want["fig7"] {
		if res.Fig7, err = s.Fig7(); err != nil {
			return nil, err
		}
	}
	if want["fig8"] {
		if res.Fig8, err = s.Fig8(); err != nil {
			return nil, err
		}
	}
	if want["fig9"] {
		if res.Fig9, err = s.Fig9(); err != nil {
			return nil, err
		}
	}
	if want["fig10"] {
		rows, names, err := s.Fig10()
		if err != nil {
			return nil, err
		}
		res.Fig10 = &SpeedupTable{Configs: names, Rows: rows}
	}
	if want["fig11"] {
		if res.Fig11, err = s.Fig11(); err != nil {
			return nil, err
		}
	}
	if want["fig12"] {
		rows, names, err := s.Fig12()
		if err != nil {
			return nil, err
		}
		res.Fig12 = &SpeedupTable{Configs: names, Rows: rows}
		asym, err := s.AsymmetricOnlySpeedup()
		if err != nil {
			return nil, err
		}
		res.AsymmetricOnly = &asym
	}
	if want["area"] {
		res.Area = AreaAnalysis()
	}
	res.Engine = s.Stats()
	return res, nil
}

// Report runs the requested experiment sections (nil = all) and writes the
// rendered text tables to w. It is the engine behind cmd/paperfigs and
// EXPERIMENTS.md.
func (s *Scheduler) Report(w io.Writer, sections []string) error {
	res, err := s.Collect(sections)
	if err != nil {
		return err
	}
	res.WriteText(w)
	return nil
}

// ReportJSON runs the requested experiment sections (nil = all) and writes
// them to w as indented JSON.
func (s *Scheduler) ReportJSON(w io.Writer, sections []string) error {
	res, err := s.Collect(sections)
	if err != nil {
		return err
	}
	return res.WriteJSON(w)
}

// WriteJSON marshals the results as indented JSON.
func (res *Results) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// WriteText renders every collected section as aligned text tables, in
// the paper's presentation order. Only sections listed in res.Sections
// render (an empty Results renders nothing — unlike Collect's request
// argument, an empty list here does not mean "all").
func (res *Results) WriteText(w io.Writer) {
	want := make(map[string]bool, len(res.Sections))
	for _, sec := range res.Sections {
		want[sec] = true
	}
	nl := func() { fmt.Fprintln(w) }

	if want["tableI"] {
		WriteTableI(w)
		nl()
	}
	if want["fig1"] {
		WriteFig1(w, res.Fig1)
		nl()
	}
	if want["tableII"] {
		WriteTableII(w, res.TableII)
		nl()
	}
	if want["fig3"] {
		WriteFig3(w, res.Fig3, nil)
		nl()
	}
	if want["fig4"] {
		WriteOccupancy(w, "Fig. 4 — L2 access-queue occupancy over usage lifetime",
			"paper AVG: queues completely full 46% of usage lifetime", res.Fig4)
		nl()
	}
	if want["fig5"] {
		WriteOccupancy(w, "Fig. 5 — DRAM scheduler-queue occupancy over usage lifetime",
			"paper AVG: queues completely full 39% of usage lifetime", res.Fig5)
		nl()
	}
	if want["fig7"] {
		WriteBreakdown(w, "Fig. 7 — issue-stall distribution",
			"paper AVG: data-MEM 15%, data-ALU 5.5%, str-MEM 71%, str-ALU 0.5%, fetch 8%", res.Fig7)
		nl()
	}
	if want["fig8"] {
		WriteBreakdown(w, "Fig. 8 — L2 stall distribution",
			"paper AVG: bp-ICNT 42%, port 12%, cache 8%, mshr 3%, bp-DRAM 35%", res.Fig8)
		nl()
	}
	if want["fig9"] {
		WriteBreakdown(w, "Fig. 9 — L1 stall distribution",
			"paper AVG: cache 11%, mshr 41%, bp-L2 48%", res.Fig9)
		nl()
	}
	if want["tableIII"] {
		WriteTableIII(w)
		nl()
	}
	if want["fig10"] && res.Fig10 != nil {
		WriteSpeedups(w, "Fig. 10 — IPC with 4× bandwidth scaling (normalized to baseline)",
			"paper AVG: L1 1.04, L2 1.59, DRAM 1.11, L1+L2 1.69, L2+DRAM 1.76, All 1.90",
			res.Fig10.Rows, res.Fig10.Configs)
		nl()
	}
	if want["fig11"] {
		WriteFig11(w, res.Fig11)
		nl()
	}
	if want["fig12"] && res.Fig12 != nil {
		WriteSpeedups(w, "Fig. 12 — IPC with cost-effective configurations (normalized to baseline)",
			"paper AVG: 16+48 1.234, 16+68 1.29, 32+52 1.257, HBM 1.11; lavaMD drops 37% on 16+48",
			res.Fig12.Rows, res.Fig12.Configs)
		if res.AsymmetricOnly != nil {
			fmt.Fprintf(w, "standalone 16+48 crossbar without queue scaling: %.3f (paper: 1.155)\n", *res.AsymmetricOnly)
		}
		nl()
	}
	if want["area"] {
		WriteArea(w, res.Area)
		nl()
	}
}

// WriteTableI renders the baseline architecture parameters.
func WriteTableI(w io.Writer) {
	fmt.Fprintln(w, "Table I — baseline architecture (GTX 480 / Fermi class)")
	rows := [][]string{
		{"Cores", "15 SMs, GTO scheduler, 48 warps/SM"},
		{"Clocks", "core 1.4 GHz; crossbar/L2 700 MHz; DRAM cmd 924 MHz"},
		{"L1D", "16 KB, 128 B lines, 4-way, LRU, write-evict, 32 MSHRs, 8-entry miss queue"},
		{"Interconnect", "crossbar, 32 B flits each direction"},
		{"L2", "768 KB, 128 B lines, 8-way, write-back, 12 banks, 32 MSHRs, 8-entry miss queue, 32 B port, 8-entry access queue"},
		{"DRAM", "GDDR5 924 MHz, FR-FCFS, 384-bit bus, 6 partitions, 16 banks/chip"},
		{"DRAM timing", "CCD=2 RRD=6 RCD=12 RAS=28 RP=12 RC=40 CL=12 WL=4 CDLR=5 WR=12"},
	}
	table(w, []string{"component", "configuration"}, rows)
}
