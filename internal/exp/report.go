package exp

import (
	"fmt"
	"io"
)

// Section names accepted by Report.
var Sections = []string{
	"tableI", "fig1", "tableII", "fig3", "fig4", "fig5",
	"fig7", "fig8", "fig9", "tableIII", "fig10", "fig11", "fig12", "area",
}

// Report runs the requested experiment sections (nil = all) and writes the
// rendered tables to w. It is the engine behind cmd/paperfigs and
// EXPERIMENTS.md.
func (r *Runner) Report(w io.Writer, sections []string) error {
	want := map[string]bool{}
	if len(sections) == 0 {
		for _, s := range Sections {
			want[s] = true
		}
	} else {
		for _, s := range sections {
			want[s] = true
		}
	}
	nl := func() { fmt.Fprintln(w) }

	if want["tableI"] {
		WriteTableI(w)
		nl()
	}
	if want["fig1"] {
		rows, err := r.Fig1()
		if err != nil {
			return err
		}
		WriteFig1(w, rows)
		nl()
	}
	if want["tableII"] {
		rows, err := r.TableII()
		if err != nil {
			return err
		}
		WriteTableII(w, rows)
		nl()
	}
	if want["fig3"] {
		pts, err := r.Fig3(nil, nil)
		if err != nil {
			return err
		}
		WriteFig3(w, pts, nil)
		nl()
	}
	if want["fig4"] {
		rows, err := r.Fig4()
		if err != nil {
			return err
		}
		WriteOccupancy(w, "Fig. 4 — L2 access-queue occupancy over usage lifetime",
			"paper AVG: queues completely full 46% of usage lifetime", rows)
		nl()
	}
	if want["fig5"] {
		rows, err := r.Fig5()
		if err != nil {
			return err
		}
		WriteOccupancy(w, "Fig. 5 — DRAM scheduler-queue occupancy over usage lifetime",
			"paper AVG: queues completely full 39% of usage lifetime", rows)
		nl()
	}
	if want["fig7"] {
		rows, err := r.Fig7()
		if err != nil {
			return err
		}
		WriteBreakdown(w, "Fig. 7 — issue-stall distribution",
			"paper AVG: data-MEM 15%, data-ALU 5.5%, str-MEM 71%, str-ALU 0.5%, fetch 8%", rows)
		nl()
	}
	if want["fig8"] {
		rows, err := r.Fig8()
		if err != nil {
			return err
		}
		WriteBreakdown(w, "Fig. 8 — L2 stall distribution",
			"paper AVG: bp-ICNT 42%, port 12%, cache 8%, mshr 3%, bp-DRAM 35%", rows)
		nl()
	}
	if want["fig9"] {
		rows, err := r.Fig9()
		if err != nil {
			return err
		}
		WriteBreakdown(w, "Fig. 9 — L1 stall distribution",
			"paper AVG: cache 11%, mshr 41%, bp-L2 48%", rows)
		nl()
	}
	if want["tableIII"] {
		WriteTableIII(w)
		nl()
	}
	if want["fig10"] {
		rows, names, err := r.Fig10()
		if err != nil {
			return err
		}
		WriteSpeedups(w, "Fig. 10 — IPC with 4× bandwidth scaling (normalized to baseline)",
			"paper AVG: L1 1.04, L2 1.59, DRAM 1.11, L1+L2 1.69, L2+DRAM 1.76, All 1.90", rows, names)
		nl()
	}
	if want["fig11"] {
		pts, err := r.Fig11()
		if err != nil {
			return err
		}
		WriteFig11(w, pts)
		nl()
	}
	if want["fig12"] {
		rows, names, err := r.Fig12()
		if err != nil {
			return err
		}
		WriteSpeedups(w, "Fig. 12 — IPC with cost-effective configurations (normalized to baseline)",
			"paper AVG: 16+48 1.234, 16+68 1.29, 32+52 1.257, HBM 1.11; lavaMD drops 37% on 16+48", rows, names)
		asym, err := r.AsymmetricOnlySpeedup()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "standalone 16+48 crossbar without queue scaling: %.3f (paper: 1.155)\n", asym)
		nl()
	}
	if want["area"] {
		WriteArea(w, AreaAnalysis())
		nl()
	}
	return nil
}

// WriteTableI renders the baseline architecture parameters.
func WriteTableI(w io.Writer) {
	fmt.Fprintln(w, "Table I — baseline architecture (GTX 480 / Fermi class)")
	rows := [][]string{
		{"Cores", "15 SMs, GTO scheduler, 48 warps/SM"},
		{"Clocks", "core 1.4 GHz; crossbar/L2 700 MHz; DRAM cmd 924 MHz"},
		{"L1D", "16 KB, 128 B lines, 4-way, LRU, write-evict, 32 MSHRs, 8-entry miss queue"},
		{"Interconnect", "crossbar, 32 B flits each direction"},
		{"L2", "768 KB, 128 B lines, 8-way, write-back, 12 banks, 32 MSHRs, 8-entry miss queue, 32 B port, 8-entry access queue"},
		{"DRAM", "GDDR5 924 MHz, FR-FCFS, 384-bit bus, 6 partitions, 16 banks/chip"},
		{"DRAM timing", "CCD=2 RRD=6 RCD=12 RAS=28 RP=12 RC=40 CL=12 WL=4 CDLR=5 WR=12"},
	}
	table(w, []string{"component", "configuration"}, rows)
}
