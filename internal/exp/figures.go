package exp

import (
	"fmt"
	"io"

	"gpumembw/internal/config"
	"gpumembw/internal/core"
	"gpumembw/internal/stats"
	"gpumembw/internal/trace"
)

// Fig1Row is one bar group of Fig. 1: issue-stall percentage, average L2
// hit latency and average memory latency on the baseline.
type Fig1Row struct {
	Bench     string  `json:"bench"`
	StallFrac float64 `json:"stallFrac"`
	L2AHL     float64 `json:"l2AHL"`
	AML       float64 `json:"aml"`
	DRAMEff   float64 `json:"dramEff"` // §IV-B1 companion series
}

// Fig1 measures stalls and latencies for every benchmark on the baseline.
// Paper averages: 62% stall, 303-cycle L2-AHL, 452-cycle AML; DRAM
// bandwidth efficiency 41% average, 65% max (stencil).
func (s *Scheduler) Fig1() ([]Fig1Row, error) {
	var rows []Fig1Row
	for _, b := range Benches() {
		m, err := s.Run(config.Baseline(), b)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig1Row{
			Bench: b, StallFrac: m.IssueStallFrac,
			L2AHL: m.L2AHL, AML: m.AML, DRAMEff: m.DRAMBandwidthEff,
		})
	}
	return rows, nil
}

// WriteFig1 renders Fig. 1 with an AVG row.
func WriteFig1(w io.Writer, rows []Fig1Row) {
	var out [][]string
	var st, ahl, aml, eff []float64
	for _, r := range rows {
		out = append(out, []string{r.Bench, pct(r.StallFrac), f0(r.L2AHL), f0(r.AML), pct(r.DRAMEff)})
		st = append(st, r.StallFrac)
		ahl = append(ahl, r.L2AHL)
		aml = append(aml, r.AML)
		eff = append(eff, r.DRAMEff)
	}
	out = append(out, []string{"AVG", pct(mean(st)), f0(mean(ahl)), f0(mean(aml)), pct(mean(eff))})
	fmt.Fprintln(w, "Fig. 1 — issue stalls, L2 average hit latency, average memory latency (baseline)")
	fmt.Fprintln(w, "paper AVG: stall 62%, L2-AHL 303, AML 452; DRAM bandwidth efficiency avg 41%, max 65%")
	table(w, []string{"bench", "stall", "L2-AHL", "AML", "dram-eff"}, out)
}

// TableIIRow compares measured P∞ / P_DRAM speedups with the paper's.
type TableIIRow struct {
	Bench      string  `json:"bench"`
	PInf       float64 `json:"pInf"`
	PDRAM      float64 `json:"pDRAM"`
	PaperPInf  float64 `json:"paperPInf"`
	PaperPDRAM float64 `json:"paperPDRAM"`
}

// TableII runs every benchmark under the two ideal memory systems.
// Paper averages: P∞ 2.37×, P_DRAM 1.15×.
func (s *Scheduler) TableII() ([]TableIIRow, error) {
	paperInf := map[string]float64{}
	paperDram := map[string]float64{}
	var order []string
	for _, b := range trace.Table() {
		paperInf[b.Spec.Name] = b.PaperPInf
		paperDram[b.Spec.Name] = b.PaperPDRAM
		order = append(order, b.Spec.Name)
	}
	var rows []TableIIRow
	for _, b := range order {
		pinf, err := s.Speedup(config.InfiniteBW(), b)
		if err != nil {
			return nil, err
		}
		pdram, err := s.Speedup(config.InfiniteDRAM(), b)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableIIRow{
			Bench: b, PInf: pinf, PDRAM: pdram,
			PaperPInf: paperInf[b], PaperPDRAM: paperDram[b],
		})
	}
	return rows, nil
}

// WriteTableII renders Table II with measured-vs-paper columns.
func WriteTableII(w io.Writer, rows []TableIIRow) {
	var out [][]string
	var pi, pd, ppi, ppd []float64
	for _, r := range rows {
		out = append(out, []string{r.Bench, f2(r.PInf), f2(r.PaperPInf), f2(r.PDRAM), f2(r.PaperPDRAM)})
		pi = append(pi, r.PInf)
		pd = append(pd, r.PDRAM)
		ppi = append(ppi, r.PaperPInf)
		ppd = append(ppd, r.PaperPDRAM)
	}
	out = append(out, []string{"AVG", f2(mean(pi)), f2(mean(ppi)), f2(mean(pd)), f2(mean(ppd))})
	fmt.Fprintln(w, "Table II — speedup with infinite-bandwidth memory (P∞) and infinite-bandwidth DRAM (P_DRAM)")
	table(w, []string{"bench", "P∞", "paper", "P_DRAM", "paper"}, out)
}

// Fig3Point is one (benchmark, latency) → normalized-IPC sample.
type Fig3Point struct {
	Bench   string  `json:"bench"`
	Latency int     `json:"latency"`
	NormIPC float64 `json:"normIPC"`
}

// Fig3Latencies is the default sweep of the fixed L1-miss-latency study.
var Fig3Latencies = []int{0, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500, 550, 600, 650, 700, 750, 800}

// Fig3 sweeps the fixed L1 miss latency for the representative benchmarks,
// reporting IPC normalized to each benchmark's baseline.
func (s *Scheduler) Fig3(benches []string, lats []int) ([]Fig3Point, error) {
	if benches == nil {
		benches = Fig3Benches()
	}
	if lats == nil {
		lats = Fig3Latencies
	}
	var pts []Fig3Point
	for _, b := range benches {
		base, err := s.Run(config.Baseline(), b)
		if err != nil {
			return nil, err
		}
		for _, lat := range lats {
			m, err := s.Run(config.FixedL1MissLatency(lat), b)
			if err != nil {
				return nil, err
			}
			pts = append(pts, Fig3Point{Bench: b, Latency: lat, NormIPC: m.Speedup(base)})
		}
	}
	return pts, nil
}

// WriteFig3 renders the sweep as one row per benchmark.
func WriteFig3(w io.Writer, pts []Fig3Point, lats []int) {
	if lats == nil {
		lats = Fig3Latencies
	}
	header := []string{"bench"}
	for _, l := range lats {
		header = append(header, fmt.Sprint(l))
	}
	byBench := map[string]map[int]float64{}
	var order []string
	for _, p := range pts {
		if byBench[p.Bench] == nil {
			byBench[p.Bench] = map[int]float64{}
			order = append(order, p.Bench)
		}
		byBench[p.Bench][p.Latency] = p.NormIPC
	}
	var out [][]string
	for _, b := range order {
		row := []string{b}
		for _, l := range lats {
			row = append(row, f2(byBench[b][l]))
		}
		out = append(out, row)
	}
	fmt.Fprintln(w, "Fig. 3 — IPC (normalized to baseline) vs fixed L1 miss latency")
	fmt.Fprintln(w, "paper: plateau at small latencies, steep decline beyond; baseline crosses 1.0 well past the plateau")
	table(w, header, out)
}

// OccupancyRow is one stacked bar of Fig. 4 or Fig. 5.
type OccupancyRow struct {
	Bench     string                          `json:"bench"`
	Fractions [stats.OccupancyBuckets]float64 `json:"fractions"`
}

// Fig4 returns the L2 access-queue occupancy histograms (paper: queues
// completely full for 46% of their usage lifetime on average).
func (s *Scheduler) Fig4() ([]OccupancyRow, error) {
	return s.occupancy(func(m core.Metrics) stats.OccupancyHist { return m.L2AccessOcc })
}

// Fig5 returns the DRAM scheduler-queue occupancy histograms (paper: full
// for 39% of usage lifetime on average).
func (s *Scheduler) Fig5() ([]OccupancyRow, error) {
	return s.occupancy(func(m core.Metrics) stats.OccupancyHist { return m.DRAMSchedOcc })
}

func (s *Scheduler) occupancy(pick func(core.Metrics) stats.OccupancyHist) ([]OccupancyRow, error) {
	var rows []OccupancyRow
	for _, b := range Benches() {
		m, err := s.Run(config.Baseline(), b)
		if err != nil {
			return nil, err
		}
		h := pick(m)
		rows = append(rows, OccupancyRow{Bench: b, Fractions: h.Fractions()})
	}
	return rows, nil
}

// WriteOccupancy renders Fig. 4 or Fig. 5.
func WriteOccupancy(w io.Writer, title, paperNote string, rows []OccupancyRow) {
	var out [][]string
	var full []float64
	for _, r := range rows {
		row := []string{r.Bench}
		for _, f := range r.Fractions {
			row = append(row, pct(f))
		}
		out = append(out, row)
		full = append(full, r.Fractions[stats.OccupancyBuckets-1])
	}
	avg := []string{"AVG", "", "", "", "", pct(mean(full))}
	out = append(out, avg)
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, paperNote)
	table(w, append([]string{"bench"}, stats.BucketLabels[:]...), out)
}

// BreakdownRow is one stacked bar of Figs. 7, 8 or 9.
type BreakdownRow struct {
	Bench     string    `json:"bench"`
	Labels    []string  `json:"labels"`
	Fractions []float64 `json:"fractions"`
}

// Fig7 returns the issue-stall distributions (paper AVG: str-MEM 71%,
// data-MEM 15%, fetch 8%, data-ALU 5.5%, str-ALU 0.5%).
func (s *Scheduler) Fig7() ([]BreakdownRow, error) {
	return s.breakdown(func(m core.Metrics) *stats.Breakdown { return m.IssueStalls })
}

// Fig8 returns the L2 stall distributions (paper AVG: bp-ICNT 42%,
// bp-DRAM 35%, port 12%, cache 8%, mshr 3%).
func (s *Scheduler) Fig8() ([]BreakdownRow, error) {
	return s.breakdown(func(m core.Metrics) *stats.Breakdown { return m.L2Stalls })
}

// Fig9 returns the L1 stall distributions (paper AVG: bp-L2 48%,
// mshr 41%, cache 11%).
func (s *Scheduler) Fig9() ([]BreakdownRow, error) {
	return s.breakdown(func(m core.Metrics) *stats.Breakdown { return m.L1Stalls })
}

func (s *Scheduler) breakdown(pick func(core.Metrics) *stats.Breakdown) ([]BreakdownRow, error) {
	var rows []BreakdownRow
	for _, b := range Benches() {
		m, err := s.Run(config.Baseline(), b)
		if err != nil {
			return nil, err
		}
		bd := pick(m)
		rows = append(rows, BreakdownRow{Bench: b, Labels: bd.Labels, Fractions: bd.Fractions()})
	}
	return rows, nil
}

// WriteBreakdown renders a stall-distribution figure with an AVG row.
func WriteBreakdown(w io.Writer, title, paperNote string, rows []BreakdownRow) {
	if len(rows) == 0 {
		return
	}
	header := append([]string{"bench"}, rows[0].Labels...)
	var out [][]string
	sums := make([]float64, len(rows[0].Fractions))
	for _, r := range rows {
		row := []string{r.Bench}
		for i, f := range r.Fractions {
			row = append(row, pct(f))
			sums[i] += f
		}
		out = append(out, row)
	}
	avg := []string{"AVG"}
	for _, s := range sums {
		avg = append(avg, pct(s/float64(len(rows))))
	}
	out = append(out, avg)
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, paperNote)
	table(w, header, out)
}
