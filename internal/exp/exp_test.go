package exp

import (
	"strings"
	"testing"

	"gpumembw/internal/config"
)

func TestSchedulerMemoizes(t *testing.T) {
	r := NewScheduler()
	m1, err := r.Run(config.InfiniteBW(), "leukocyte")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.Run(config.InfiniteBW(), "leukocyte")
	if err != nil {
		t.Fatal(err)
	}
	if m1.Cycles != m2.Cycles {
		t.Fatal("memoized run differs")
	}
	if st := r.Stats(); st.Simulated != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 1 simulated / 1 hit", st)
	}
}

func TestSchedulerUnknownBenchmark(t *testing.T) {
	r := NewScheduler()
	if _, err := r.Run(config.Baseline(), "nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSpeedupAgainstBaseline(t *testing.T) {
	r := NewScheduler()
	s, err := r.Speedup(config.InfiniteBW(), "sad")
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.5 || s > 5 {
		t.Fatalf("sad P∞ speedup = %g, implausible", s)
	}
}

func TestFig3SubsetShape(t *testing.T) {
	// The latency sweep must be monotonically non-increasing (within
	// noise) for a latency-sensitive benchmark.
	r := NewScheduler()
	pts, err := r.Fig3([]string{"dwt2d"}, []int{0, 400, 800})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].NormIPC < pts[2].NormIPC {
		t.Errorf("IPC at latency 0 (%.2f) below IPC at 800 (%.2f)", pts[0].NormIPC, pts[2].NormIPC)
	}
	if pts[0].NormIPC < 1 {
		t.Errorf("zero-latency IPC %.2f below baseline", pts[0].NormIPC)
	}
}

func TestBenchListsConsistent(t *testing.T) {
	all := map[string]bool{}
	for _, b := range Benches() {
		all[b] = true
	}
	for _, b := range Fig3Benches() {
		if !all[b] {
			t.Errorf("Fig3 bench %q unknown", b)
		}
	}
	for _, b := range Fig11Benches() {
		if !all[b] {
			t.Errorf("Fig11 bench %q unknown", b)
		}
	}
}

func TestTableRendering(t *testing.T) {
	var sb strings.Builder
	table(&sb, []string{"a", "bb"}, [][]string{{"1", "2"}, {"3", "4"}})
	out := sb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "4") {
		t.Fatalf("table output wrong: %q", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("want header+separator+2 rows, got %q", out)
	}
}

func TestWriteTableIIIAndArea(t *testing.T) {
	var sb strings.Builder
	WriteTableIII(&sb)
	if !strings.Contains(sb.String(), "16+48") {
		t.Error("Table III missing cost-effective crossbar")
	}
	sb.Reset()
	WriteArea(&sb, AreaAnalysis())
	out := sb.String()
	if !strings.Contains(out, "cost-effective-16+68") {
		t.Error("area analysis missing 16+68")
	}
}

func TestReportSectionsSelectable(t *testing.T) {
	r := NewScheduler()
	var sb strings.Builder
	// tableI, tableIII and area need no simulation.
	if err := r.Report(&sb, []string{"tableI", "tableIII", "area"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table I", "Table III", "area overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "Fig. 1") {
		t.Error("unselected section rendered")
	}
}

func TestMeanAndMax(t *testing.T) {
	if mean(nil) != 0 {
		t.Error("mean of empty must be 0")
	}
	if mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if maxOf([]float64{1, 5, 3}) != 5 {
		t.Error("max wrong")
	}
}
