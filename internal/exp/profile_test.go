package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"gpumembw/internal/config"
)

// profileBytes runs one profiled cell on a fresh scheduler and returns
// the profile's canonical JSON encoding.
func profileBytes(t *testing.T, workers int, bench string) []byte {
	t.Helper()
	s := NewScheduler(WithWorkers(workers))
	res, err := s.RunJobEx(context.Background(), BenchJob(config.Baseline(), bench), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("profiled run returned no profile")
	}
	if res.Tier != TierSimulated {
		t.Fatalf("tier = %q, want %q on a cold scheduler", res.Tier, TierSimulated)
	}
	b, err := json.Marshal(res.Profile)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestProfileDeterministicAcrossRunsAndWorkerCounts(t *testing.T) {
	first := profileBytes(t, 1, "leukocyte")
	again := profileBytes(t, 1, "leukocyte")
	if !bytes.Equal(first, again) {
		t.Fatal("same cell profiled twice produced different JSON")
	}
	parallel := profileBytes(t, 8, "leukocyte")
	if !bytes.Equal(first, parallel) {
		t.Fatal("profile differs between -j 1 and -j 8 schedulers")
	}
}

func TestProfilingDoesNotPerturbMetrics(t *testing.T) {
	// The observer-effect gate: attaching the profiler must not change a
	// single metric bit — profiled and unprofiled runs are the same cell.
	job := BenchJob(config.Baseline(), "leukocyte")
	plain, err := NewScheduler().RunJobEx(context.Background(), job, false)
	if err != nil {
		t.Fatal(err)
	}
	profiled, err := NewScheduler().RunJobEx(context.Background(), job, true)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(plain.Metrics)
	b, _ := json.Marshal(profiled.Metrics)
	if !bytes.Equal(a, b) {
		t.Fatalf("profiling changed the metrics:\n--- off ---\n%s\n--- on ---\n%s", a, b)
	}
}

func TestProfileUpgradeKeepsMemoizedMetrics(t *testing.T) {
	// A cell first run without profiling must serve later profiled
	// requests from the memo tier: metrics identical, profile computed by
	// re-running the deterministic simulation once.
	s := NewScheduler()
	job := BenchJob(config.Baseline(), "leukocyte")
	plain, err := s.RunJobEx(context.Background(), job, false)
	if err != nil {
		t.Fatal(err)
	}
	up, err := s.RunJobEx(context.Background(), job, true)
	if err != nil {
		t.Fatal(err)
	}
	if up.Tier != TierSimulated {
		// The upgrade owner really re-simulates (for the profile), so its
		// tier is "simulated"; concurrent waiters see "memo".
		t.Fatalf("tier = %q, want %q (the upgrade re-runs the cell)", up.Tier, TierSimulated)
	}
	if up.Profile == nil {
		t.Fatal("profile upgrade returned no profile")
	}
	a, _ := json.Marshal(plain.Metrics)
	b, _ := json.Marshal(up.Metrics)
	if !bytes.Equal(a, b) {
		t.Fatal("profile upgrade changed the memoized metrics")
	}
}

func TestConcurrentProfiledRequestsShareOneUpgrade(t *testing.T) {
	s := NewScheduler()
	job := BenchJob(config.Baseline(), "leukocyte")
	if _, err := s.RunJobEx(context.Background(), job, false); err != nil {
		t.Fatal(err)
	}
	base := s.Stats().Simulated
	var wg sync.WaitGroup
	profiles := make([][]byte, 8)
	for i := range profiles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.RunJobEx(context.Background(), job, true)
			if err != nil || res.Profile == nil {
				t.Errorf("profiled request %d: res=%+v err=%v", i, res, err)
				return
			}
			profiles[i], _ = json.Marshal(res.Profile)
		}(i)
	}
	wg.Wait()
	for _, p := range profiles[1:] {
		if !bytes.Equal(p, profiles[0]) {
			t.Fatal("concurrent profiled requests returned different profiles")
		}
	}
	if got := s.Stats().Simulated - base; got != 1 {
		t.Fatalf("profile upgrade simulated %d times, want 1 (waiters must share)", got)
	}
}
