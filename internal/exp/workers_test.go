package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"sync"
	"testing"
	"time"

	"gpumembw/internal/config"
	"gpumembw/internal/core"
)

func TestWithWorkersBoundaryValues(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{n: 0, want: runtime.GOMAXPROCS(0)},  // 0 selects the default
		{n: 1, want: 1},                      // smallest explicit pool
		{n: -3, want: runtime.GOMAXPROCS(0)}, // negative keeps the default
		{n: 7, want: 7},
	}
	for _, tc := range cases {
		if got := NewScheduler(WithWorkers(tc.n)).Workers(); got != tc.want {
			t.Errorf("WithWorkers(%d): workers = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestValidateWorkers(t *testing.T) {
	for _, n := range []int{0, 1, 64} {
		if err := ValidateWorkers(n); err != nil {
			t.Errorf("ValidateWorkers(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{-1, -100} {
		if err := ValidateWorkers(n); err == nil {
			t.Errorf("ValidateWorkers(%d) = nil, want error", n)
		}
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	s := NewScheduler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.RunContext(ctx, config.Baseline(), "dwt2d")
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A pre-canceled call must not have claimed the cell: a real run of
	// the same cell still simulates.
	if _, err := s.Run(config.Baseline(), "dwt2d"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Simulated != 1 {
		t.Fatalf("simulated = %d, want 1", st.Simulated)
	}
}

func TestRunContextStopsWaitingOnCancel(t *testing.T) {
	s := NewScheduler()
	// Plant an in-flight cell that never completes, as if another
	// goroutine were mid-simulation.
	j := BenchJob(config.Baseline(), "dwt2d")
	s.mu.Lock()
	s.cells[j.key()] = &cell{done: make(chan struct{})}
	s.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.RunJobContext(ctx, j)
		errc <- err
	}()
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext kept waiting on an in-flight cell after cancel")
	}
}

// memCache is an in-memory ResultCache double standing in for gpusimd's
// disk cache.
type memCache struct {
	mu   sync.Mutex
	m    map[cellKey]core.Metrics
	puts int
}

func newMemCache() *memCache { return &memCache{m: make(map[cellKey]core.Metrics)} }

func (c *memCache) Get(j Job) (core.Metrics, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.m[j.key()]
	return m, ok
}

func (c *memCache) Put(j Job, m core.Metrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[j.key()] = m
	c.puts++
}

func TestResultCacheRoundTrip(t *testing.T) {
	cache := newMemCache()
	s1 := NewScheduler(WithResultCache(cache))
	m1, err := s1.Run(config.Baseline(), "dwt2d")
	if err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.Simulated != 1 || st.DiskHits != 0 {
		t.Fatalf("cold stats = %+v, want 1 simulated, 0 disk hits", st)
	}
	if cache.puts != 1 {
		t.Fatalf("puts = %d, want 1", cache.puts)
	}

	// A fresh scheduler sharing the cache serves the cell without
	// simulating — the daemon-restart scenario.
	s2 := NewScheduler(WithResultCache(cache))
	m2, err := s2.Run(config.Baseline(), "dwt2d")
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Simulated != 0 || st.DiskHits != 1 {
		t.Fatalf("warm stats = %+v, want 0 simulated, 1 disk hit", st)
	}
	j1, _ := json.Marshal(m1)
	j2, _ := json.Marshal(m2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("warm metrics differ:\n%s\nvs\n%s", j1, j2)
	}
	// Repeats within the scheduler hit the memo cache, not the result
	// cache again.
	if _, err := s2.Run(config.Baseline(), "dwt2d"); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.CacheHits != 1 {
		t.Fatalf("repeat stats = %+v, want memo hit", st)
	}
}
