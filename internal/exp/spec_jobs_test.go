package exp

import (
	"strings"
	"sync"
	"testing"

	"gpumembw/internal/config"
	"gpumembw/internal/trace"
)

// leukSpec returns the registered spec of the cheapest Table II
// benchmark, optionally respelled (renamed, zero-value defaults made
// explicit) without changing its identity.
func leukSpec(t *testing.T) trace.Spec {
	t.Helper()
	sp, err := trace.SpecByName("leukocyte")
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestInlineSpecSharesPresetCell(t *testing.T) {
	s := NewScheduler()
	base, err := s.Run(config.Baseline(), "leukocyte")
	if err != nil {
		t.Fatal(err)
	}
	sp := leukSpec(t)
	sp.Name = "my-kernel" // labels are excluded from identity
	sp.LinesPerAccess = 1 // explicit build-time default
	m, err := s.RunSpec(config.Baseline(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Simulated != 1 {
		t.Fatalf("simulated = %d, want 1 (inline spec must share the preset's cell)", st.Simulated)
	}
	if m.Cycles != base.Cycles {
		t.Fatalf("inline-spec metrics differ from the preset's (%d vs %d cycles)", m.Cycles, base.Cycles)
	}
}

func TestCellIDStableAcrossRefForms(t *testing.T) {
	sp := leukSpec(t)
	byName := BenchJob(config.Baseline(), "leukocyte")
	inline := SpecJob(config.Baseline(), sp)
	if byName.CellID() != inline.CellID() {
		t.Fatalf("CellID differs between name and inline forms: %s vs %s", byName.CellID(), inline.CellID())
	}
	sp.Name, sp.Suite = "other", "Other"
	if renamed := SpecJob(config.Baseline(), sp); renamed.CellID() != byName.CellID() {
		t.Fatal("spec labels leaked into the cell identity")
	}
	sp.WarpsPerCore++
	if tweaked := SpecJob(config.Baseline(), sp); tweaked.CellID() == byName.CellID() {
		t.Fatal("distinct specs share a cell identity")
	}
	// The config half still distinguishes cells for the same workload.
	if other := BenchJob(config.InfiniteBW(), "leukocyte"); other.CellID() == byName.CellID() {
		t.Fatal("distinct configs share a cell identity")
	}
}

// TestConcurrentInlineSpecDedup submits differently-spelled copies of one
// inline workload from many goroutines; the engine must collapse them to
// a single simulation (run under -race in CI).
func TestConcurrentInlineSpecDedup(t *testing.T) {
	s := NewScheduler()
	base := leukSpec(t)
	var wg sync.WaitGroup
	cycles := make([]int64, 8)
	errs := make([]error, 8)
	for i := range cycles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := base
			sp.Name = strings.Repeat("x", i+1) // unique label per submitter
			if i%2 == 1 {
				sp.LinesPerAccess = 1 // equivalent explicit default
			}
			m, err := s.RunSpec(config.Baseline(), sp)
			cycles[i], errs[i] = m.Cycles, err
		}(i)
	}
	wg.Wait()
	for i := range cycles {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if cycles[i] != cycles[0] {
			t.Fatalf("concurrent results differ: %v", cycles)
		}
	}
	if st := s.Stats(); st.Simulated != 1 {
		t.Fatalf("simulated = %d, want 1 (identical inline specs must dedup)", st.Simulated)
	}
}

func TestMalformedJobsFailWithoutPanic(t *testing.T) {
	s := NewScheduler()
	// Inline spec that fails validation: must surface as an error from
	// the error-returning Build path (the gpusimd regression: a malformed
	// spec reaching a worker must never panic the daemon).
	bad := trace.Spec{Name: "bad", Iters: 0, LoadsPerIter: 1, Pattern: trace.PatStream}
	if _, err := s.RunSpec(config.Baseline(), bad); err == nil || !strings.Contains(err.Error(), "Iters") {
		t.Fatalf("err = %v, want Iters validation detail", err)
	}
	// Ref naming both kinds is rejected, not silently resolved — and its
	// memoized error must key on the name, never on the spec's identity,
	// or it would poison the valid spec's cell for later callers.
	sp := leukSpec(t)
	both := Job{Config: InlineConfig(config.Baseline()), Workload: WorkloadRef{Bench: "leukocyte", Spec: &sp}}
	if _, err := s.RunJob(both); err == nil {
		t.Fatal("ref with both bench and spec accepted")
	}
	if both.CellID() == SpecJob(config.Baseline(), sp).CellID() {
		t.Fatal("invalid both-set ref shares the valid spec's cell identity")
	}
	if _, err := s.RunSpec(config.Baseline(), sp); err != nil {
		t.Fatalf("valid spec run poisoned by earlier both-set ref: %v", err)
	}
	// Invalid configs fail validation instead of simulating garbage.
	cfg := config.Baseline()
	cfg.L2.NumBanks = 7 // not divisible across 6 partitions
	if _, err := s.Run(cfg, "leukocyte"); err == nil || !strings.Contains(err.Error(), "partitions") {
		t.Fatalf("err = %v, want config validation detail", err)
	}
}

// TestInvalidSpellingNeverAliasesValidCell: a spec invalid only in a
// pattern-dead field canonicalizes to its valid twin's identity, but it
// must key (and memoize its error) separately — in either run order.
func TestInvalidSpellingNeverAliasesValidCell(t *testing.T) {
	valid := leukSpec(t) // PatRandomWS: StridePages is pattern-dead
	invalid := valid
	invalid.StridePages = -5 // rejected by Validate, zeroed by Canonical
	if invalid.Identity() != valid.Identity() {
		t.Fatal("test premise broken: spellings no longer share an identity")
	}

	// Invalid first: its memoized error must not poison the valid cell.
	s := NewScheduler()
	if _, err := s.RunSpec(config.Baseline(), invalid); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := s.RunSpec(config.Baseline(), valid); err != nil {
		t.Fatalf("valid spec poisoned by invalid spelling: %v", err)
	}

	// Valid first: the invalid spelling must error, not be served the
	// valid cell's metrics.
	s2 := NewScheduler()
	if _, err := s2.RunSpec(config.Baseline(), valid); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.RunSpec(config.Baseline(), invalid); err == nil {
		t.Fatal("invalid spec served the valid cell's metrics")
	}
}

func TestUnnamedInlineSpecDefaultsLabel(t *testing.T) {
	sp := leukSpec(t)
	sp.Name = ""
	ref := SpecRef(sp)
	if ref.Label() != "custom" {
		t.Fatalf("label = %q, want custom", ref.Label())
	}
	if err := ref.Validate(); err != nil {
		t.Fatalf("unnamed inline spec rejected: %v", err)
	}
	if _, err := ref.Build(); err != nil {
		t.Fatalf("unnamed inline spec failed to build: %v", err)
	}
	// The default label does not perturb identity.
	named := leukSpec(t)
	a := SpecJob(config.Baseline(), sp)
	b := SpecJob(config.Baseline(), named)
	if a.CellID() != b.CellID() {
		t.Fatal("unnamed inline spec has a different identity")
	}
}

func TestSweepGridAndDedup(t *testing.T) {
	s := NewScheduler(WithWorkers(4))
	variant := leukSpec(t)
	variant.Name = "leukocyte-tlp12"
	variant.WarpsPerCore = 12
	cfgs := SweepConfigs([]config.Config{config.Baseline(), config.InfiniteBW()})
	workloads := []WorkloadRef{
		BenchRef("leukocyte"),
		SpecRef(leukSpec(t)), // same cell as the preset row
		SpecRef(variant),
	}
	res, err := s.Sweep(cfgs, workloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 || len(res.Cells[0]) != 2 {
		t.Fatalf("grid shape = %dx%d, want 3x2", len(res.Cells), len(res.Cells[0]))
	}
	// 3 workloads × 2 configs requested, but row 1 duplicates row 0.
	if st := s.Stats(); st.Simulated != 4 {
		t.Fatalf("simulated = %d, want 4 (duplicate inline row must dedup)", st.Simulated)
	}
	if res.Workloads[0] != "leukocyte" || res.Workloads[2] != "leukocyte-tlp12" {
		t.Fatalf("workload labels = %v", res.Workloads)
	}
	if res.Configs[1] != "P-inf" {
		t.Fatalf("config labels = %v", res.Configs)
	}
	// Shared cells still answer under each row/column's own labels.
	if m := res.Cells[1][0]; m.Benchmark != "leukocyte" || m.Config != "baseline" {
		t.Fatalf("cell labels = %s/%s", m.Benchmark, m.Config)
	}
	if res.Cells[0][0].Cycles != res.Cells[1][0].Cycles {
		t.Fatal("identical rows returned different metrics")
	}
	if res.Cells[2][0].Cycles == res.Cells[0][0].Cycles {
		t.Fatal("variant row aliased the preset row")
	}
	sp := res.Speedups(0)
	if sp[0][0] != 1 {
		t.Fatalf("baseline column speedup = %g, want 1", sp[0][0])
	}
	if sp[0][1] <= 0 {
		t.Fatalf("P-inf speedup = %g", sp[0][1])
	}
}

func TestSweepValidatesBeforeSimulating(t *testing.T) {
	s := NewScheduler()
	if _, err := s.Sweep(nil, []WorkloadRef{BenchRef("mm")}); err == nil {
		t.Fatal("empty config axis accepted")
	}
	if _, err := s.Sweep(SweepConfigs([]config.Config{config.Baseline()}), nil); err == nil {
		t.Fatal("empty workload axis accepted")
	}
	bad := trace.Spec{Name: "bad", Iters: 0}
	_, err := s.Sweep(SweepConfigs([]config.Config{config.Baseline()}), []WorkloadRef{BenchRef("mm"), SpecRef(bad)})
	if err == nil {
		t.Fatal("malformed spec accepted")
	}
	if st := s.Stats(); st.Simulated != 0 {
		t.Fatalf("simulated = %d before rejecting the sweep", st.Simulated)
	}
}
