package exp

import (
	"fmt"

	"gpumembw/internal/config"
	"gpumembw/internal/core"
)

// SweepResult is the metrics grid of Scheduler.Sweep: Cells[w][c] holds
// the metrics of Workloads[w] on Configs[c].
type SweepResult struct {
	Configs   []string         `json:"configs"`
	Workloads []string         `json:"workloads"`
	Cells     [][]core.Metrics `json:"cells"`
}

// Speedups returns, for each workload row, the wall-clock speedup of
// every configuration column relative to the baseline column (index
// baseCol).
func (r *SweepResult) Speedups(baseCol int) [][]float64 {
	out := make([][]float64, len(r.Cells))
	for w, row := range r.Cells {
		out[w] = make([]float64, len(row))
		for c := range row {
			out[w][c] = row[c].Speedup(row[baseCol])
		}
	}
	return out
}

// Sweep runs the configurations × workloads cross product on the worker
// pool and assembles the full metrics grid. Both axes mix preset names
// and inline values freely: configurations are ConfigRefs (preset names,
// inline configs or mitigation-knob patches) and workloads are
// WorkloadRefs (benchmark names or inline specs), so a sweep can cover
// hardware axes (MSHR entries, miss-queue depth, L2 banking, DRAM
// scaling, ...) exactly like workload axes. Cells that collapse to the
// same identity — within the sweep or against the memo cache — simulate
// once; every ref is validated before any simulation starts.
func (s *Scheduler) Sweep(cfgs []ConfigRef, workloads []WorkloadRef) (*SweepResult, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("exp: sweep needs at least one configuration")
	}
	if len(workloads) == 0 {
		return nil, fmt.Errorf("exp: sweep needs at least one workload")
	}
	for i, cref := range cfgs {
		if err := cref.Validate(); err != nil {
			return nil, fmt.Errorf("exp: sweep config %d: %w", i, err)
		}
	}
	for i, ref := range workloads {
		if err := ref.Validate(); err != nil {
			return nil, fmt.Errorf("exp: sweep workload %d: %w", i, err)
		}
	}

	res := &SweepResult{
		Configs:   make([]string, len(cfgs)),
		Workloads: make([]string, len(workloads)),
		Cells:     make([][]core.Metrics, len(workloads)),
	}
	var jobs []Job
	for w, ref := range workloads {
		res.Workloads[w] = ref.Label()
		for _, cref := range cfgs {
			jobs = append(jobs, Job{Config: cref, Workload: ref})
		}
	}
	for c, cref := range cfgs {
		res.Configs[c] = cref.Label()
	}
	if err := s.RunJobs(jobs); err != nil {
		return nil, err
	}
	// Assembly is serial and hits only the memo cache, so the grid is
	// deterministic for any worker count. Each job's labels are restamped
	// so a cell shared with a differently-named twin still reports this
	// sweep's names.
	for w, ref := range workloads {
		res.Cells[w] = make([]core.Metrics, len(cfgs))
		for c, cref := range cfgs {
			m, err := s.RunJob(Job{Config: cref, Workload: ref})
			if err != nil {
				return nil, err
			}
			m.Config = cref.Label()
			m.Benchmark = ref.Label()
			res.Cells[w][c] = m
		}
	}
	return res, nil
}

// SweepConfigs wraps plain config values as inline refs — the
// convenience for callers sweeping concrete config.Config values.
func SweepConfigs(cfgs []config.Config) []ConfigRef {
	refs := make([]ConfigRef, len(cfgs))
	for i, cfg := range cfgs {
		refs[i] = InlineConfig(cfg)
	}
	return refs
}
