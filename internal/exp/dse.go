package exp

import (
	"fmt"
	"io"

	"gpumembw/internal/area"
	"gpumembw/internal/config"
)

// SpeedupRow holds one benchmark's speedups across a set of configurations.
type SpeedupRow struct {
	Bench    string    `json:"bench"`
	Speedups []float64 `json:"speedups"` // one per configuration, same order as the header
}

// Fig10Configs are the 4×-scaled design points of the exploration, in the
// paper's bar order.
func Fig10Configs() []config.Config {
	return []config.Config{
		config.ScaledL1(), config.ScaledL2(), config.ScaledDRAM(),
		config.ScaledL1L2(), config.ScaledL2DRAM(), config.ScaledAll(),
	}
}

// Fig10 runs every benchmark against the six scaled memory systems.
// Paper averages: L1 +4%, L2 +59%, DRAM +11%, L1+L2 +69%, L2+DRAM +76%,
// All +90%; mm drops 33% with L1-alone but gains 266% with L2-alone.
func (s *Scheduler) Fig10() ([]SpeedupRow, []string, error) {
	return s.speedups(Fig10Configs())
}

// Fig12Configs are the cost-effective configurations plus the HBM
// comparison point, in the paper's bar order.
func Fig12Configs() []config.Config {
	return []config.Config{
		config.CostEffective16x48(), config.CostEffective16x68(),
		config.CostEffective32x52(), config.HBM(),
	}
}

// Fig12 runs the cost-effective design points. Paper averages: 16+48
// +23.4%, 16+68 +29%, 32+52 +25.7%, HBM +11%; lavaMD loses 37% on 16+48.
func (s *Scheduler) Fig12() ([]SpeedupRow, []string, error) {
	return s.speedups(Fig12Configs())
}

// AsymmetricOnlySpeedup measures the standalone 16+48 crossbar without the
// cost-effective queue scaling (paper: only +15.5%, demonstrating the need
// for synergistic scaling).
func (s *Scheduler) AsymmetricOnlySpeedup() (float64, error) {
	var sp []float64
	for _, b := range Benches() {
		v, err := s.Speedup(config.AsymmetricOnly(), b)
		if err != nil {
			return 0, err
		}
		sp = append(sp, v)
	}
	return mean(sp), nil
}

func (s *Scheduler) speedups(cfgs []config.Config) ([]SpeedupRow, []string, error) {
	names := make([]string, len(cfgs))
	for i, c := range cfgs {
		names[i] = c.Name
	}
	var rows []SpeedupRow
	for _, b := range Benches() {
		row := SpeedupRow{Bench: b}
		for _, cfg := range cfgs {
			v, err := s.Speedup(cfg, b)
			if err != nil {
				return nil, nil, err
			}
			row.Speedups = append(row.Speedups, v)
		}
		rows = append(rows, row)
	}
	return rows, names, nil
}

// WriteSpeedups renders a Fig. 10/12-style table with an AVG row.
func WriteSpeedups(w io.Writer, title, paperNote string, rows []SpeedupRow, configs []string) {
	header := append([]string{"bench"}, configs...)
	var out [][]string
	sums := make([]float64, len(configs))
	for _, r := range rows {
		row := []string{r.Bench}
		for i, s := range r.Speedups {
			row = append(row, f2(s))
			sums[i] += s
		}
		out = append(out, row)
	}
	avg := []string{"AVG"}
	for _, s := range sums {
		avg = append(avg, f2(s/float64(len(rows))))
	}
	out = append(out, avg)
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, paperNote)
	table(w, header, out)
}

// Fig11Point is one (benchmark, core clock) → normalized performance
// sample of the frequency-scaling experiment.
type Fig11Point struct {
	Bench    string  `json:"bench"`
	CoreMHz  float64 `json:"coreMHz"`
	NormPerf float64 `json:"normPerf"` // wall-clock performance relative to 1400 MHz
}

// Fig11Clocks is the sweep of the paper's real-GPU experiment, in MHz.
var Fig11Clocks = []float64{1200, 1300, 1400, 1500, 1600}

// Fig11 sweeps the core clock with memory clocks fixed. The paper's
// real-GTX 480 result: up to 10% slowdown at higher core frequency for
// bandwidth-bound benchmarks (the L1 request rate outruns the L2), and
// gains at lower frequency.
func (s *Scheduler) Fig11() ([]Fig11Point, error) {
	var pts []Fig11Point
	for _, b := range Fig11Benches() {
		base, err := s.Run(config.Baseline(), b)
		if err != nil {
			return nil, err
		}
		for _, mhz := range Fig11Clocks {
			m, err := s.Run(config.WithCoreClock(config.Baseline(), mhz), b)
			if err != nil {
				return nil, err
			}
			pts = append(pts, Fig11Point{Bench: b, CoreMHz: mhz, NormPerf: m.Speedup(base)})
		}
	}
	return pts, nil
}

// WriteFig11 renders the frequency sweep, one row per benchmark.
func WriteFig11(w io.Writer, pts []Fig11Point) {
	header := []string{"bench"}
	for _, c := range Fig11Clocks {
		header = append(header, fmt.Sprintf("%.1fGHz", c/1000))
	}
	byBench := map[string]map[float64]float64{}
	var order []string
	for _, p := range pts {
		if byBench[p.Bench] == nil {
			byBench[p.Bench] = map[float64]float64{}
			order = append(order, p.Bench)
		}
		byBench[p.Bench][p.CoreMHz] = p.NormPerf
	}
	var out [][]string
	for _, b := range order {
		row := []string{b}
		for _, c := range Fig11Clocks {
			row = append(row, f2(byBench[b][c]))
		}
		out = append(out, row)
	}
	fmt.Fprintln(w, "Fig. 11 — wall-clock performance vs core clock, memory clocks fixed (normalized to 1.4 GHz)")
	fmt.Fprintln(w, "paper (real GTX 480): bandwidth-bound benchmarks slow down up to 10% at higher core clocks")
	table(w, header, out)
}

// WriteTableIII renders the design space of Table III.
func WriteTableIII(w io.Writer) {
	base := config.Baseline()
	scaled := config.ScaledAll()
	ce := config.CostEffective16x48()
	rows := [][]string{
		{"DRAM scheduler queue", "=", fmt.Sprint(base.DRAM.SchedQueueEntries), fmt.Sprint(scaled.DRAM.SchedQueueEntries), fmt.Sprint(ce.DRAM.SchedQueueEntries)},
		{"DRAM banks/chip", "=", fmt.Sprint(base.DRAM.BanksPerChip), fmt.Sprint(scaled.DRAM.BanksPerChip), fmt.Sprint(ce.DRAM.BanksPerChip)},
		{"DRAM bus width (bits)", "+", fmt.Sprint(base.DRAM.BusWidthBits), fmt.Sprint(scaled.DRAM.BusWidthBits), fmt.Sprint(ce.DRAM.BusWidthBits)},
		{"L2 miss queue", "=", fmt.Sprint(base.L2.MissQueueEntries), fmt.Sprint(scaled.L2.MissQueueEntries), fmt.Sprint(ce.L2.MissQueueEntries)},
		{"L2 response queue", "=", fmt.Sprint(base.L2.ResponseQueueEntries), fmt.Sprint(scaled.L2.ResponseQueueEntries), fmt.Sprint(ce.L2.ResponseQueueEntries)},
		{"L2 MSHR", "=", fmt.Sprint(base.L2.MSHREntries), fmt.Sprint(scaled.L2.MSHREntries), fmt.Sprint(ce.L2.MSHREntries)},
		{"L2 access queue", "=", fmt.Sprint(base.L2.AccessQueueEntries), fmt.Sprint(scaled.L2.AccessQueueEntries), fmt.Sprint(ce.L2.AccessQueueEntries)},
		{"L2 data port (bytes)", "+", fmt.Sprint(base.L2.DataPortBytes), fmt.Sprint(scaled.L2.DataPortBytes), fmt.Sprint(ce.L2.DataPortBytes)},
		{"Crossbar flits (req+reply)", "+",
			fmt.Sprintf("%d+%d", base.Icnt.ReqFlitBytes, base.Icnt.ReplyFlitBytes),
			fmt.Sprintf("%d+%d", scaled.Icnt.ReqFlitBytes, scaled.Icnt.ReplyFlitBytes),
			fmt.Sprintf("%d+%d", ce.Icnt.ReqFlitBytes, ce.Icnt.ReplyFlitBytes)},
		{"L2 banks", "+", fmt.Sprint(base.L2.NumBanks), fmt.Sprint(scaled.L2.NumBanks), fmt.Sprint(ce.L2.NumBanks)},
		{"L1 miss queue", "=", fmt.Sprint(base.L1.MissQueueEntries), fmt.Sprint(scaled.L1.MissQueueEntries), fmt.Sprint(ce.L1.MissQueueEntries)},
		{"L1 MSHR", "=", fmt.Sprint(base.L1.MSHREntries), fmt.Sprint(scaled.L1.MSHREntries), fmt.Sprint(ce.L1.MSHREntries)},
		{"Memory pipeline width", "=", fmt.Sprint(base.Core.MemPipelineWidth), fmt.Sprint(scaled.Core.MemPipelineWidth), fmt.Sprint(ce.Core.MemPipelineWidth)},
	}
	fmt.Fprintln(w, "Table III — consolidated design space (Type '=' enables peak throughput; Type '+' raises it)")
	table(w, []string{"parameter", "type", "baseline", "scaled 4x", "cost-effective"}, rows)
}

// AreaRow is the §VII-C overhead estimate of one configuration.
type AreaRow struct {
	Config string `json:"config"`
	area.Estimate
}

// AreaAnalysis estimates the cost of the cost-effective configurations.
// Paper: storage ⇒ ≈1.1% die overhead; 16+68 and 32+52 add 3.62 mm² of
// wires for ≈1.6% total.
func AreaAnalysis() []AreaRow {
	base := config.Baseline()
	var rows []AreaRow
	for _, cfg := range []config.Config{
		config.CostEffective16x48(), config.CostEffective16x68(),
		config.CostEffective32x52(), config.ScaledAll(),
	} {
		rows = append(rows, AreaRow{Config: cfg.Name, Estimate: area.Compare(&base, &cfg)})
	}
	return rows
}

// WriteArea renders the area analysis.
func WriteArea(w io.Writer, rows []AreaRow) {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Config,
			fmt.Sprintf("%.1f", r.StorageKB),
			fmt.Sprintf("%.2f", r.StorageMM2),
			fmt.Sprintf("%.2f", r.CrossbarMM2),
			fmt.Sprintf("%.2f", r.TotalMM2),
			pct(r.OverheadFrac),
		})
	}
	fmt.Fprintln(w, "§VII-C — area overhead vs baseline (GPUWattch-calibrated; 700 mm² die)")
	fmt.Fprintln(w, "paper: 94 KB ⇒ 7.48 mm² (≈1.1%); +20 B flit wires ⇒ +3.62 mm² (≈1.6% total)")
	table(w, []string{"config", "storage KB", "storage mm2", "xbar mm2", "total mm2", "die overhead"}, out)
}
