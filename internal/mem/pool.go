package mem

// FetchPool is a freelist of Fetch objects. One simulated GPU owns one
// pool, so steady-state simulation recycles a bounded working set of
// fetches instead of allocating one per memory access (and leaving the
// garbage collector to reclaim hundreds of thousands per run).
//
// The pool is deliberately not thread-safe: a GPU's cycle loop is single-
// threaded, and giving every GPU its own pool keeps concurrent experiment
// cells (exp.Scheduler workers) from contending on a shared freelist.
//
// A nil *FetchPool is valid and simply allocates: components take the pool
// as optional wiring so unit tests and examples can ignore it.
type FetchPool struct {
	free []*Fetch
}

// Get returns a zeroed Fetch, recycling a released one when available.
func (p *FetchPool) Get() *Fetch {
	if p == nil {
		return &Fetch{}
	}
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		*f = Fetch{}
		return f
	}
	return &Fetch{}
}

// Put releases a dead fetch back to the pool. The caller must hold the
// only live reference: a fetch may be released exactly once, at the point
// it leaves the memory system (reply consumed, store absorbed, fill
// applied).
func (p *FetchPool) Put(f *Fetch) {
	if p == nil || f == nil {
		return
	}
	p.free = append(p.free, f)
}
