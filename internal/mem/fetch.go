// Package mem defines the memory-request currency exchanged between the
// levels of the simulated hierarchy (Fig. 2 of the paper): typed fetches,
// packet sizing for the flit-granularity crossbar, and the bounded FIFO
// queues whose occupancy and backpressure the paper characterizes.
package mem

import "fmt"

// AccessType classifies a memory fetch.
type AccessType uint8

const (
	// DataRead is a load miss travelling down the hierarchy.
	DataRead AccessType = iota
	// DataWrite is a store (write-evict at L1, write-back at L2).
	DataWrite
	// InstRead is an instruction-cache miss.
	InstRead
	// WriteBack is a dirty-line eviction from L2 to DRAM.
	WriteBack
)

// String implements fmt.Stringer.
func (t AccessType) String() string {
	switch t {
	case DataRead:
		return "data-read"
	case DataWrite:
		return "data-write"
	case InstRead:
		return "inst-read"
	case WriteBack:
		return "write-back"
	default:
		return fmt.Sprintf("AccessType(%d)", uint8(t))
	}
}

// NeedsReply reports whether the access produces a response packet on the
// reply network (reads do; stores and write-backs are fire-and-forget).
func (t AccessType) NeedsReply() bool {
	return t == DataRead || t == InstRead
}

// ControlBytes is the header size of every packet; a plain load request is
// just this header ("load requests ... amount to only 8 byte packets", §VII-B).
const ControlBytes = 8

// Fetch is one memory request (and, after service, its response) moving
// through the hierarchy. A Fetch is identified by ID and never copied:
// every level passes the same pointer along and stamps its timestamps.
type Fetch struct {
	ID   uint64
	Type AccessType

	Addr      uint64 // line-aligned address
	SizeBytes int    // payload size (0 for a plain read request)

	CoreID      int // requesting SM (-1 for L2-generated write-backs)
	WarpID      int
	PartitionID int // destination memory partition
	BankID      int // destination L2 bank (global index)

	IsReply bool // set once the fetch carries response data toward the core

	// Timestamps in core cycles, for the latency series of Fig. 1.
	IssueCycle    int64 // entered the memory system at L1
	L2ArriveCycle int64
	ReplyCycle    int64 // response reached the core

	// L2Hit records whether the fetch was served by the L2 (for the
	// L2-AHL average-hit-latency metric) or travelled to DRAM.
	L2Hit bool

	// DRAMBank and DRAMRow cache the fetch's DRAM coordinates, stamped
	// once when the request enters a channel's scheduler queue. The
	// FR-FCFS scheduler re-examines every queued request every command
	// cycle, and the address→(bank,row) division chain dominated its cost
	// before this cache.
	DRAMBank int
	DRAMRow  int64
}

// RequestBytes returns the size of the fetch as a request-network packet.
func (f *Fetch) RequestBytes() int {
	if f.Type == DataWrite || f.Type == WriteBack {
		return ControlBytes + f.SizeBytes
	}
	return ControlBytes
}

// ReplyBytes returns the size of the fetch as a reply-network packet
// (header plus the data it carries back).
func (f *Fetch) ReplyBytes() int {
	return ControlBytes + f.SizeBytes
}

// Flits returns the number of flits a packet of size bytes occupies on a
// network with the given flit size.
func Flits(bytes, flitBytes int) int {
	if flitBytes <= 0 {
		return 1
	}
	n := (bytes + flitBytes - 1) / flitBytes
	if n < 1 {
		n = 1
	}
	return n
}

// String implements fmt.Stringer for debugging and trace output.
func (f *Fetch) String() string {
	dir := "req"
	if f.IsReply {
		dir = "reply"
	}
	return fmt.Sprintf("fetch{id=%d %s %s addr=0x%x core=%d part=%d}",
		f.ID, f.Type, dir, f.Addr, f.CoreID, f.PartitionID)
}
