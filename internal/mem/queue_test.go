package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQueueFIFOOrder(t *testing.T) {
	q := NewQueue[int](4)
	for i := 0; i < 4; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if q.Push(99) {
		t.Fatal("push into full queue succeeded")
	}
	if !q.Full() || q.Len() != 4 || q.Free() != 0 {
		t.Fatalf("full queue state wrong: len=%d free=%d", q.Len(), q.Free())
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d,%v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestQueueWraparound(t *testing.T) {
	q := NewQueue[int](3)
	next := 0
	for round := 0; round < 10; round++ {
		for q.Push(next) {
			next++
		}
		v, ok := q.Pop()
		if !ok {
			t.Fatal("pop failed")
		}
		want := next - q.Len() - 1
		if v != want {
			t.Fatalf("round %d: pop = %d, want %d", round, v, want)
		}
	}
}

func TestQueueUnbounded(t *testing.T) {
	q := NewQueue[int](0)
	for i := 0; i < 1000; i++ {
		if !q.Push(i) {
			t.Fatalf("unbounded push %d rejected", i)
		}
	}
	if q.Full() {
		t.Fatal("unbounded queue reports full")
	}
	for i := 0; i < 1000; i++ {
		if v, _ := q.Pop(); v != i {
			t.Fatalf("pop = %d, want %d", v, i)
		}
	}
}

func TestQueuePeekAndAt(t *testing.T) {
	q := NewQueue[string](4)
	q.Push("a")
	q.Push("b")
	q.Push("c")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("peek = %q", v)
	}
	if q.At(0) != "a" || q.At(1) != "b" || q.At(2) != "c" {
		t.Fatal("At returned wrong elements")
	}
	if q.Len() != 3 {
		t.Fatal("peek/At must not consume")
	}
}

func TestQueueRemoveAt(t *testing.T) {
	q := NewQueue[int](8)
	// Force a wrapped layout.
	for i := 0; i < 6; i++ {
		q.Push(i)
	}
	q.Pop()
	q.Pop()
	q.Push(6)
	q.Push(7) // queue: 2 3 4 5 6 7
	if v := q.RemoveAt(2); v != 4 {
		t.Fatalf("RemoveAt(2) = %d, want 4", v)
	}
	want := []int{2, 3, 5, 6, 7}
	for i, w := range want {
		if got := q.At(i); got != w {
			t.Fatalf("after RemoveAt, At(%d) = %d, want %d", i, got, w)
		}
	}
	// Remove head and tail.
	if v := q.RemoveAt(0); v != 2 {
		t.Fatalf("RemoveAt(0) = %d", v)
	}
	if v := q.RemoveAt(q.Len() - 1); v != 7 {
		t.Fatalf("RemoveAt(last) = %d", v)
	}
}

func TestQueueRemoveAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q := NewQueue[int](2)
	q.Push(1)
	q.RemoveAt(1)
}

// TestQueueAgainstReference drives a bounded queue with a random operation
// sequence and checks it against a plain-slice reference model.
func TestQueueAgainstReference(t *testing.T) {
	f := func(capacity8 uint8, ops []uint8) bool {
		capacity := int(capacity8%15) + 1
		q := NewQueue[int](capacity)
		var ref []int
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				got := q.Push(next)
				want := len(ref) < capacity
				if got != want {
					return false
				}
				if want {
					ref = append(ref, next)
				}
				next++
			case 1: // pop
				v, ok := q.Pop()
				if ok != (len(ref) > 0) {
					return false
				}
				if ok {
					if v != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			case 2: // removeAt random
				if len(ref) == 0 {
					continue
				}
				i := int(op) % len(ref)
				if q.RemoveAt(i) != ref[i] {
					return false
				}
				ref = append(ref[:i], ref[i+1:]...)
			}
			if q.Len() != len(ref) {
				return false
			}
		}
		for i, w := range ref {
			if q.At(i) != w {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
