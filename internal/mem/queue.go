package mem

// Queue is a bounded FIFO. A capacity of 0 or less makes the queue
// unbounded, which the ideal memory systems (P∞, P_DRAM) use to remove
// structural limits. The zero value is an empty unbounded queue.
//
// The implementation avoids integer division on the hot paths: indices
// wrap with a compare-and-subtract instead of a modulo, since every
// simulated queue is peeked or scanned far more often than it is resized.
type Queue[T any] struct {
	buf      []T
	head     int
	size     int
	capacity int
}

// NewQueue returns a FIFO holding at most capacity entries
// (unbounded if capacity <= 0).
func NewQueue[T any](capacity int) *Queue[T] {
	q := &Queue[T]{capacity: capacity}
	if capacity > 0 {
		q.buf = make([]T, capacity)
	}
	return q
}

// wrap reduces an index in [0, 2*len(buf)) into the ring.
func (q *Queue[T]) wrap(i int) int {
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	return i
}

// Len returns the number of queued entries.
func (q *Queue[T]) Len() int { return q.size }

// Cap returns the configured capacity (0 when unbounded).
func (q *Queue[T]) Cap() int { return q.capacity }

// Empty reports whether the queue holds no entries.
func (q *Queue[T]) Empty() bool { return q.size == 0 }

// Full reports whether the queue cannot accept another entry.
// Unbounded queues are never full.
func (q *Queue[T]) Full() bool {
	return q.capacity > 0 && q.size >= q.capacity
}

// Free returns the number of entries that can still be pushed.
// Unbounded queues report a large positive number.
func (q *Queue[T]) Free() int {
	if q.capacity <= 0 {
		return int(^uint(0) >> 1)
	}
	return q.capacity - q.size
}

// Push appends v and reports whether it was accepted.
func (q *Queue[T]) Push(v T) bool {
	if q.Full() {
		return false
	}
	if len(q.buf) == q.size { // unbounded growth
		q.grow()
	}
	q.buf[q.wrap(q.head+q.size)] = v
	q.size++
	return true
}

// Pop removes and returns the oldest entry.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	if q.size == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // release references for the garbage collector
	q.head = q.wrap(q.head + 1)
	q.size--
	return v, true
}

// Peek returns the oldest entry without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if q.size == 0 {
		return zero, false
	}
	return q.buf[q.head], true
}

// At returns the i-th oldest entry (0 = head). It panics if i is out of
// range, mirroring slice indexing.
func (q *Queue[T]) At(i int) T {
	if i < 0 || i >= q.size {
		panic("mem: queue index out of range")
	}
	return q.buf[q.wrap(q.head+i)]
}

// RemoveAt deletes and returns the i-th oldest entry, preserving the order
// of the rest. The FR-FCFS DRAM scheduler uses it to pull row hits out of
// the middle of the scheduler queue.
func (q *Queue[T]) RemoveAt(i int) T {
	if i < 0 || i >= q.size {
		panic("mem: queue index out of range")
	}
	v := q.buf[q.wrap(q.head+i)]
	// Shift the younger entries toward the head.
	for j := i; j < q.size-1; j++ {
		q.buf[q.wrap(q.head+j)] = q.buf[q.wrap(q.head+j+1)]
	}
	var zero T
	q.buf[q.wrap(q.head+q.size-1)] = zero
	q.size--
	return v
}

func (q *Queue[T]) grow() {
	next := make([]T, max(4, 2*len(q.buf)))
	for i := 0; i < q.size; i++ {
		next[i] = q.buf[q.wrap(q.head+i)]
	}
	q.buf = next
	q.head = 0
}
