package mem

import (
	"strings"
	"testing"
)

func TestPacketSizing(t *testing.T) {
	load := &Fetch{Type: DataRead, SizeBytes: 128}
	if got := load.RequestBytes(); got != 8 {
		t.Errorf("load request = %d B, want 8 (header only)", got)
	}
	if got := load.ReplyBytes(); got != 136 {
		t.Errorf("load reply = %d B, want 136 (header + line)", got)
	}
	store := &Fetch{Type: DataWrite, SizeBytes: 128}
	if got := store.RequestBytes(); got != 136 {
		t.Errorf("store request = %d B, want 136", got)
	}
	wb := &Fetch{Type: WriteBack, SizeBytes: 128}
	if got := wb.RequestBytes(); got != 136 {
		t.Errorf("write-back request = %d B, want 136", got)
	}
	inst := &Fetch{Type: InstRead, SizeBytes: 128}
	if got := inst.RequestBytes(); got != 8 {
		t.Errorf("inst request = %d B, want 8", got)
	}
}

func TestFlits(t *testing.T) {
	cases := []struct{ bytes, flit, want int }{
		{8, 32, 1},    // load request on baseline request net
		{136, 32, 5},  // load reply on baseline reply net
		{136, 16, 9},  // store request on 16 B request net
		{136, 48, 3},  // load reply on 48 B reply net
		{136, 68, 2},  // load reply on 68 B reply net
		{136, 52, 3},  // load reply on 52 B reply net
		{136, 128, 2}, // scaled 128 B flits
		{32, 32, 1},
		{33, 32, 2},
		{0, 32, 1}, // packets occupy at least one flit
	}
	for _, c := range cases {
		if got := Flits(c.bytes, c.flit); got != c.want {
			t.Errorf("Flits(%d, %d) = %d, want %d", c.bytes, c.flit, got, c.want)
		}
	}
}

func TestNeedsReply(t *testing.T) {
	if !DataRead.NeedsReply() || !InstRead.NeedsReply() {
		t.Error("reads must need replies")
	}
	if DataWrite.NeedsReply() || WriteBack.NeedsReply() {
		t.Error("writes must not need replies")
	}
}

func TestAccessTypeString(t *testing.T) {
	for _, typ := range []AccessType{DataRead, DataWrite, InstRead, WriteBack} {
		if s := typ.String(); s == "" || strings.HasPrefix(s, "AccessType") {
			t.Errorf("missing string for %d", typ)
		}
	}
}

func TestFetchString(t *testing.T) {
	f := &Fetch{ID: 7, Type: DataRead, Addr: 0x1000, CoreID: 3, PartitionID: 2}
	s := f.String()
	if !strings.Contains(s, "id=7") || !strings.Contains(s, "req") {
		t.Errorf("String() = %q", s)
	}
	f.IsReply = true
	if !strings.Contains(f.String(), "reply") {
		t.Errorf("reply String() = %q", f.String())
	}
}
