// Package server implements gpusimd: an HTTP daemon that wraps the
// experiment engine (exp.Scheduler) behind an async job API.
//
// Jobs are (configuration, workload) cells — preset names or fully
// inline config/spec values — content-addressed so duplicate submissions
// — within a sweep, across clients, or across the daemon's lifetime —
// share one simulation. A bounded queue feeds a
// worker pool; the scheduler's memo cache serves repeats in-memory, and an
// optional disk cache (Options.CacheDir) persists results across
// restarts. Queued jobs can be canceled; Shutdown drains in-flight cells.
//
// Retention: finished jobs and memoized metrics are kept for the daemon's
// lifetime — cross-request reuse is the point of the service — so memory
// grows with the number of distinct cells submitted. Only the queue is
// bounded. Evicting cold cells (TTL, LRU, delete-finished) is the next
// scaling step and rides on the same content-addressed IDs.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gpumembw/internal/api"
	"gpumembw/internal/area"
	"gpumembw/internal/config"
	"gpumembw/internal/exp"
	"gpumembw/internal/explore"
	"gpumembw/internal/metrics"
	"gpumembw/internal/obsv"
	"gpumembw/internal/trace"
)

// DefaultMaxQueue is the bounded-queue capacity when Options.MaxQueue is 0.
const DefaultMaxQueue = 1024

// Options configures a Server.
type Options struct {
	// Workers is the simulation worker-pool size; 0 selects GOMAXPROCS,
	// negative is an error.
	Workers int
	// MaxQueue bounds the job queue; 0 selects DefaultMaxQueue, negative
	// is an error. Submissions beyond the bound get 503.
	MaxQueue int
	// CacheDir, when non-empty, persists simulation results as JSON files
	// so a restarted daemon serves previously simulated cells without
	// re-simulating. It is shorthand for Cache = the spill-directory
	// backend; a directory on a shared volume gives a whole cluster one
	// cache namespace.
	CacheDir string
	// Cache plugs in a pre-built CacheBackend directly — the seam for
	// result stores beyond the local spill directory (shared volumes,
	// object stores). Mutually exclusive with CacheDir and
	// CacheMaxBytes: an injected backend owns its own bounding policy.
	Cache CacheBackend
	// CacheMaxBytes bounds the disk cache's total payload size; 0 means
	// unbounded, negative is an error. When the bound is exceeded the
	// least-recently-used entries are evicted (down to a floor of one
	// entry). Eviction never changes results, only re-simulation cost.
	CacheMaxBytes int64
	// RateLimit, when > 0, grants each client (X-API-Key header, else
	// remote host) that many mutating requests per second; excess gets
	// 429 with a Retry-After header. 0 disables rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket burst for RateLimit; 0 selects
	// max(1, ceil(RateLimit)).
	RateBurst int
	// MaxInflightPerClient, when > 0, bounds how many queued+running
	// jobs one client may own at once; excess submissions get 429.
	// 0 disables the quota.
	MaxInflightPerClient int
	// Progress, when non-nil, receives one line per completed simulation.
	Progress io.Writer
	// ErrLog, when non-nil, receives disk-cache I/O warnings.
	ErrLog io.Writer
	// Logger, when non-nil, receives structured lifecycle events (job
	// transitions with trace IDs, cache-tier attribution). nil disables
	// structured logging (tests); cmd/gpusimd always wires one.
	Logger *slog.Logger
}

// job is the server-side job record. Mutable fields are guarded by
// Server.mu; cancel aborts a queued job's context.
//
// gen counts enqueues: a worker captures it at pop and applies its
// result only if the job has not since been canceled and re-enqueued
// (in which case a newer run owns the record). owner/charged track the
// per-client inflight quota — the client who enqueued pays until the
// job reaches a terminal state, exactly once.
type job struct {
	api.Job
	cref    exp.ConfigRef
	ref     exp.WorkloadRef
	ctx     context.Context
	cancel  context.CancelFunc
	gen     uint64
	owner   string
	charged bool

	// spans is the lifecycle timeline served by GET /v1/jobs/{id}/trace;
	// profile is the bottleneck profile of a Profile=true run, served by
	// GET /v1/jobs/{id}/profile once the job is done.
	spans   []api.Span
	profile *obsv.Profile
}

// Server owns the scheduler, the job table and the worker pool. Create
// one with New; serve its Handler; stop it with Shutdown.
type Server struct {
	opts     Options
	workers  int
	maxQueue int
	sched    *exp.Scheduler
	cache    CacheBackend
	limiter  *limiter
	explorer *exploreHub

	mu       sync.Mutex
	cond     *sync.Cond // signaled on enqueue and on drain
	jobs     map[string]*job
	order    []string             // submission order for GET /v1/jobs
	pending  []*job               // FIFO of queued jobs; state queued <=> in pending
	inflight map[string]int       // client key -> queued+running jobs it owns
	sweeps   map[string]*sweepRec // sweep resources by content-addressed ID
	waitCh   chan struct{}        // closed+replaced on every terminal transition and on drain
	draining bool

	running atomic.Int64 // workers currently inside a simulation

	registry     *metrics.Registry
	httpRequests *metrics.CounterVec
	httpLatency  *metrics.HistogramVec
	rateLimited  *metrics.Counter
	quotaDenied  *metrics.Counter
	traceSpans   *metrics.Counter
	stageLatency *metrics.HistogramVec

	log *slog.Logger

	wg sync.WaitGroup
}

// New builds a Server and starts its worker pool.
func New(opts Options) (*Server, error) {
	s, err := newServer(opts)
	if err != nil {
		return nil, err
	}
	s.startWorkers()
	return s, nil
}

// newServer builds the Server without starting workers (tests use this to
// exercise the queue deterministically).
func newServer(opts Options) (*Server, error) {
	if err := exp.ValidateWorkers(opts.Workers); err != nil {
		return nil, err
	}
	if opts.MaxQueue < 0 {
		return nil, fmt.Errorf("server: invalid queue bound %d: must be >= 0 (0 selects %d)", opts.MaxQueue, DefaultMaxQueue)
	}
	if opts.RateLimit < 0 {
		return nil, fmt.Errorf("server: invalid rate limit %v: must be >= 0 (0 disables)", opts.RateLimit)
	}
	if opts.RateBurst < 0 {
		return nil, fmt.Errorf("server: invalid rate burst %d: must be >= 0", opts.RateBurst)
	}
	if opts.MaxInflightPerClient < 0 {
		return nil, fmt.Errorf("server: invalid per-client inflight bound %d: must be >= 0 (0 disables)", opts.MaxInflightPerClient)
	}
	maxQueue := opts.MaxQueue
	if maxQueue == 0 {
		maxQueue = DefaultMaxQueue
	}
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	schedOpts := []exp.Option{exp.WithWorkers(opts.Workers)}
	if opts.Progress != nil {
		schedOpts = append(schedOpts, exp.WithProgress(opts.Progress))
	}
	var cache CacheBackend
	switch {
	case opts.Cache != nil && opts.CacheDir != "":
		return nil, errors.New("server: Cache and CacheDir are mutually exclusive")
	case opts.Cache != nil && opts.CacheMaxBytes != 0:
		return nil, errors.New("server: cache bound set with an injected cache backend (the backend owns its bound)")
	case opts.Cache != nil:
		cache = opts.Cache
	case opts.CacheDir != "":
		var err error
		cache, err = newDiskCache(opts.CacheDir, opts.CacheMaxBytes, opts.ErrLog)
		if err != nil {
			return nil, err
		}
	case opts.CacheMaxBytes != 0:
		return nil, errors.New("server: cache bound set without a cache dir")
	}
	if cache != nil {
		schedOpts = append(schedOpts, exp.WithResultCache(cache))
	}

	s := &Server{
		opts:     opts,
		workers:  workers,
		maxQueue: maxQueue,
		sched:    exp.NewScheduler(schedOpts...),
		cache:    cache,
		jobs:     make(map[string]*job),
		inflight: make(map[string]int),
		sweeps:   make(map[string]*sweepRec),
		waitCh:   make(chan struct{}),
	}
	if opts.RateLimit > 0 {
		s.limiter = newLimiter(opts.RateLimit, opts.RateBurst)
	}
	s.log = opts.Logger
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.cond = sync.NewCond(&s.mu)
	s.initMetrics()
	// Explorations score probe cells directly on the scheduler (sharing
	// its memo and disk caches with the job API) and journal their
	// requests under the cache dir, so a restarted daemon resumes every
	// search from cached cells.
	exploreDir := ""
	if opts.CacheDir != "" {
		exploreDir = filepath.Join(opts.CacheDir, "explore")
	}
	hub, err := newExploreHub(exploreDir, explore.SchedulerEval(s.sched), s.log)
	if err != nil {
		return nil, err
	}
	s.explorer = hub
	s.explorer.reload()
	return s, nil
}

func (s *Server) startWorkers() {
	s.wg.Add(s.workers)
	for i := 0; i < s.workers; i++ {
		go s.worker()
	}
}

// worker pops queued jobs in FIFO order until drained. Cancellation of a
// queued job removes it from pending directly, so every popped job is
// live; cancellation of a running job flips its state under s.mu, and
// the worker — which cannot preempt a simulation step — discards its
// result for the job record on return (the memo and disk caches still
// keep it, so a resubmission is nearly free).
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.draining {
			s.cond.Wait()
		}
		if len(s.pending) == 0 {
			s.mu.Unlock()
			return
		}
		j := s.pending[0]
		s.pending = s.pending[1:]
		j.State = api.JobRunning
		gen := j.gen
		now := time.Now()
		j.StartedAt = &now
		// The queued span is the open tail span; measure queue latency from
		// its start (not SubmittedAt, which a re-enqueue does not reset).
		if n := len(j.spans); n > 0 && j.spans[n-1].End == nil {
			s.stageLatency.With("queued").Observe(now.Sub(j.spans[n-1].Start).Seconds())
		}
		j.endSpan(now) // close the queued span
		j.beginSpan("running", now, nil)
		s.traceSpans.Add(1)
		profile := j.Spec.Profile
		ctx := j.ctx
		s.mu.Unlock()
		s.log.Info("job running", "job", j.ID, "trace", j.TraceID,
			"config", j.cref.Label(), "bench", j.ref.Label(), "profile", profile)

		s.running.Add(1)
		res, err := s.sched.RunJobEx(ctx, exp.Job{Config: j.cref, Workload: j.ref}, profile)
		s.running.Add(-1)

		s.mu.Lock()
		// Only the run that owns the record reports: if the job was
		// canceled (and possibly re-enqueued) while we simulated, the
		// canceled state the client observed must stand everywhere —
		// GET /v1/jobs/{id} and /v1/stats alike.
		if j.gen != gen || j.State != api.JobRunning {
			s.mu.Unlock()
			continue
		}
		done := time.Now()
		j.FinishedAt = &done
		j.Tier = res.Tier
		j.spanAttr("tier", res.Tier)
		s.stageLatency.With("running").Observe(done.Sub(now).Seconds())
		if err != nil {
			j.State = api.JobFailed
			j.Error = err.Error()
			j.spanAttr("error", err.Error())
		} else {
			// The memo and disk caches may have simulated this cell under
			// different config/workload labels; the job answers with its own.
			m := res.Metrics
			m.Config = j.cref.Label()
			m.Benchmark = j.ref.Label()
			j.State = api.JobDone
			j.Metrics = &m
			j.profile = res.Profile
		}
		j.markTerminal(j.State, done)
		s.traceSpans.Add(1)
		state, traceID := j.State, j.TraceID
		s.releaseQuotaLocked(j)
		s.broadcastLocked()
		s.mu.Unlock()
		if err != nil {
			s.log.Warn("job failed", "job", j.ID, "trace", traceID, "tier", res.Tier, "err", err)
		} else {
			s.log.Info("job "+string(state), "job", j.ID, "trace", traceID,
				"tier", res.Tier, "cycles", res.Metrics.Cycles,
				"wallMs", done.Sub(now).Milliseconds(), "profiled", res.Profile != nil)
		}
	}
}

// broadcastLocked wakes every long-poll waiter: the current wait channel
// is closed and replaced, so waiters re-check their condition. Called on
// every terminal job transition and on drain; callers hold s.mu.
func (s *Server) broadcastLocked() {
	close(s.waitCh)
	s.waitCh = make(chan struct{})
}

// cellID content-addresses one simulation cell, delegating to the
// scheduler's own memo-cell identity so the two can never diverge.
func cellID(cref exp.ConfigRef, ref exp.WorkloadRef) string {
	return exp.Job{Config: cref, Workload: ref}.CellID()
}

// httpError carries a status code out of the submit/resolve helpers;
// retryAfter, when set, becomes a Retry-After header on the response
// and the envelope's retryAfter field. code, when empty, defaults to
// api.CodeForStatus(status) at write time.
type httpError struct {
	status     int
	code       string
	retryAfter time.Duration
	msg        string
}

func (e *httpError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// resolveSpec validates a JobSpec and returns the configuration and
// workload references. Every rejection is a 400 carrying validation
// detail; nothing a client sends can reach a panicking build path (the
// wire-decoder fuzz target leans on exactly this property).
func resolveSpec(spec api.JobSpec) (exp.ConfigRef, exp.WorkloadRef, error) {
	var cref exp.ConfigRef
	var ref exp.WorkloadRef
	switch {
	case spec.Bench != "" && spec.InlineSpec != nil:
		return cref, ref, errBadRequest("spec: bench and inlineSpec are mutually exclusive")
	case spec.Bench == "" && spec.InlineSpec == nil:
		return cref, ref, errBadRequest("spec: one of bench or inlineSpec is required (known benchmarks: %v)", trace.Names())
	case spec.InlineSpec != nil:
		ref = exp.SpecRef(*spec.InlineSpec)
	default:
		ref = exp.BenchRef(spec.Bench)
	}
	if err := ref.Validate(); err != nil {
		return cref, ref, errBadRequest("spec: %v", err)
	}
	set := 0
	for _, has := range []bool{spec.Config != "", spec.InlineConfig != nil, spec.ConfigPatch != nil} {
		if has {
			set++
		}
	}
	switch {
	case set > 1:
		return cref, ref, errBadRequest("spec: config, inlineConfig and configPatch are mutually exclusive")
	case set == 0:
		return cref, ref, errBadRequest("spec: one of config, inlineConfig or configPatch is required (known configs: %v)", config.Names())
	case spec.Config != "":
		cref = exp.PresetRef(spec.Config)
	case spec.InlineConfig != nil:
		cref = exp.InlineConfig(*spec.InlineConfig)
	default:
		cref = exp.PatchRef(*spec.ConfigPatch)
	}
	if err := cref.Validate(); err != nil {
		return cref, ref, errBadRequest("spec: %v", err)
	}
	return cref, ref, nil
}

// quotaErrLocked reports whether owner may take on `extra` more inflight
// jobs; callers hold s.mu.
func (s *Server) quotaErrLocked(owner string, extra int) error {
	if s.opts.MaxInflightPerClient <= 0 || extra == 0 {
		return nil
	}
	if have := s.inflight[owner]; have+extra > s.opts.MaxInflightPerClient {
		s.quotaDenied.Add(int64(extra))
		return &httpError{
			status:     http.StatusTooManyRequests,
			retryAfter: time.Second,
			msg: fmt.Sprintf("server: client has %d jobs in flight and asked for %d more, over the per-client bound %d; wait for jobs to finish",
				have, extra, s.opts.MaxInflightPerClient),
		}
	}
	return nil
}

// chargeQuotaLocked makes owner pay for j until it reaches a terminal
// state. Callers hold s.mu and have already passed quotaErrLocked.
func (s *Server) chargeQuotaLocked(j *job, owner string) {
	if j.charged { // re-enqueue raced a stale charge; never double-bill
		s.releaseQuotaLocked(j)
	}
	j.owner = owner
	j.charged = true
	s.inflight[owner]++
}

// releaseQuotaLocked refunds j's owner exactly once, at the transition
// to a terminal state (done, failed, canceled). Callers hold s.mu.
func (s *Server) releaseQuotaLocked(j *job) {
	if !j.charged {
		return
	}
	j.charged = false
	if n := s.inflight[j.owner]; n <= 1 {
		delete(s.inflight, j.owner)
	} else {
		s.inflight[j.owner] = n - 1
	}
}

// submit enqueues one resolved cell, deduplicating against the job table.
// It returns the job and true if this call created or re-enqueued it.
// owner is the submitting client's quota identity; traceID is the
// request's trace ID, adopted by jobs this call creates or revives.
func (s *Server) submit(spec api.JobSpec, cref exp.ConfigRef, ref exp.WorkloadRef, owner, traceID string) (*job, bool, error) {
	id := cellID(cref, ref)
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		// Canceled jobs are re-enqueueable, and so is a done-but-unprofiled
		// job resubmitted with Profile=true: the metrics are memoized, so
		// the re-run only adds the profile. Everything else — including
		// failed jobs: the simulator is deterministic and the scheduler
		// memoizes errors, so a retry would reproduce the failure — is
		// shared as-is.
		revive := j.State == api.JobCanceled ||
			(spec.Profile && j.State == api.JobDone && j.profile == nil)
		if !revive {
			if spec.Profile && j.State == api.JobQueued {
				// Not yet popped: upgrade in place, the worker reads the
				// flag at pop. (A running unprofiled job can be
				// resubmitted once it's done.)
				j.Spec.Profile = true
			}
			return j, false, nil
		}
		if err := s.quotaErrLocked(owner, 1); err != nil {
			return nil, false, err
		}
		j.Spec.Profile = j.Spec.Profile || spec.Profile
		if j.TraceID == "" {
			j.TraceID = traceID
		}
		if err := s.enqueueLocked(j); err != nil {
			return nil, false, err
		}
		s.chargeQuotaLocked(j, owner)
		return j, true, nil
	}
	if err := s.quotaErrLocked(owner, 1); err != nil {
		return nil, false, err
	}
	j := &job{
		Job: api.Job{
			ID:          id,
			Spec:        spec,
			SubmittedAt: time.Now(),
			TraceID:     traceID,
		},
		cref: cref,
		ref:  ref,
	}
	if err := s.enqueueLocked(j); err != nil {
		return nil, false, err
	}
	s.chargeQuotaLocked(j, owner)
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j, true, nil
}

// enqueueLocked resets j to queued and appends it to the bounded pending
// FIFO. Callers hold s.mu.
func (s *Server) enqueueLocked(j *job) error {
	if s.draining {
		return &httpError{status: http.StatusServiceUnavailable, msg: "server: draining, not accepting jobs"}
	}
	if len(s.pending) >= s.maxQueue {
		return &httpError{status: http.StatusServiceUnavailable, msg: fmt.Sprintf("server: job queue full (%d entries)", s.maxQueue)}
	}
	j.State = api.JobQueued
	j.Error = ""
	j.Metrics = nil
	j.Tier = ""
	j.StartedAt, j.FinishedAt = nil, nil
	j.ctx, j.cancel = context.WithCancel(context.Background())
	j.gen++
	j.beginSpan("queued", time.Now(), nil)
	s.traceSpans.Add(1)
	s.pending = append(s.pending, j)
	s.cond.Signal()
	return nil
}

// resolvedCell is one validated sweep cell (unique by id).
type resolvedCell struct {
	id   string
	spec api.JobSpec
	cref exp.ConfigRef
	ref  exp.WorkloadRef
}

// sweepRec is the server-side sweep resource: the unique cells a POST
// /v1/sweeps request named (request order), plus — for axis-form sweeps
// — the label grid that lets GET /v1/sweeps/{id} assemble the merged
// speedup table once every cell is done. Like jobs, sweep records are
// retained for the daemon's lifetime.
type sweepRec struct {
	id          string
	submittedAt time.Time
	requested   int
	deduped     int
	jobIDs      []string // unique cells, request order
	configs     []string // axis labels; nil for cell-list sweeps
	workloads   []string
	grid        [][]string // [config][workload] cell IDs; nil when axes unknown
}

// sweepID content-addresses a sweep: the hash of its sorted unique cell
// IDs, so the same cell set — however spelled, resubmitted, or sharded —
// is the same resource.
func sweepID(cells []resolvedCell) string {
	ids := make([]string, len(cells))
	for i, c := range cells {
		ids[i] = c.id
	}
	sort.Strings(ids)
	sum := sha256.Sum256([]byte(strings.Join(ids, "\n")))
	return "sw-" + hex.EncodeToString(sum[:8])
}

// submitSweep enqueues a deduplicated sweep atomically: capacity — queue
// slots and the client's inflight quota — for every cell that needs
// enqueueing is checked under one lock acquisition, so the sweep either
// submits whole or rejects whole — never leaving the client owning half
// its job IDs. An admitted sweep is registered (or re-found) as a sweep
// resource addressable at GET /v1/sweeps/{id}. owner is the submitting
// client's quota identity.
func (s *Server) submitSweep(ex *sweepExpansion, owner, traceID string) (api.SweepResponse, error) {
	cells := ex.cells
	s.mu.Lock()
	defer s.mu.Unlock()
	needed := 0
	for _, c := range cells {
		if j, ok := s.jobs[c.id]; !ok || j.State == api.JobCanceled {
			needed++
		}
	}
	if free := s.maxQueue - len(s.pending); needed > free {
		return api.SweepResponse{}, &httpError{
			status: http.StatusServiceUnavailable,
			msg:    fmt.Sprintf("server: sweep needs %d queue slots, %d free (queue bound %d)", needed, free, s.maxQueue),
		}
	}
	if err := s.quotaErrLocked(owner, needed); err != nil {
		return api.SweepResponse{}, err
	}
	jobs := make([]api.Job, 0, len(cells))
	for _, c := range cells {
		j, ok := s.jobs[c.id]
		if !ok || j.State == api.JobCanceled {
			if !ok {
				j = &job{Job: api.Job{ID: c.id, Spec: c.spec, SubmittedAt: time.Now(), TraceID: traceID}, cref: c.cref, ref: c.ref}
			}
			if err := s.enqueueLocked(j); err != nil {
				return api.SweepResponse{}, err // draining flipped, or capacity bug
			}
			s.chargeQuotaLocked(j, owner)
			if _, known := s.jobs[c.id]; !known {
				s.jobs[c.id] = j
				s.order = append(s.order, c.id)
			}
		}
		jobs = append(jobs, j.Job)
	}

	id := sweepID(cells)
	rec, known := s.sweeps[id]
	if !known {
		rec = &sweepRec{
			id:          id,
			submittedAt: time.Now(),
			requested:   ex.requested,
			deduped:     ex.requested - len(cells),
			jobIDs:      make([]string, len(cells)),
			configs:     ex.configs,
			workloads:   ex.workloads,
			grid:        ex.grid,
		}
		for i, c := range cells {
			rec.jobIDs[i] = c.id
		}
		s.sweeps[id] = rec
	} else if rec.grid == nil && ex.grid != nil {
		// A shard-form twin registered first; adopt the axis labels so
		// the resource can still serve speedups.
		rec.configs, rec.workloads, rec.grid = ex.configs, ex.workloads, ex.grid
	}
	return api.SweepResponse{
		ID:        id,
		Requested: ex.requested,
		Deduped:   ex.requested - len(jobs),
		Jobs:      jobs,
	}, nil
}

// view assembles the sweep's resource representation from per-cell job
// snapshots, shared by the daemon (snapshots from its job table) and the
// coordinator (snapshots fetched from workers) so both entry points
// serve the same aggregate for the same cells.
func (rec *sweepRec) view(snap func(id string) api.Job) api.Sweep {
	sw := api.Sweep{
		ID:          rec.id,
		Requested:   rec.requested,
		Deduped:     rec.deduped,
		Counts:      make(map[api.JobState]int),
		Jobs:        make([]api.Job, 0, len(rec.jobIDs)),
		SubmittedAt: rec.submittedAt,
	}
	terminal := 0
	for _, jid := range rec.jobIDs {
		j := snap(jid)
		sw.Counts[j.State]++
		if j.State.Terminal() {
			terminal++
		}
		sw.Jobs = append(sw.Jobs, j)
	}
	switch {
	case terminal < len(rec.jobIDs):
		sw.State = api.SweepRunning
	case sw.Counts[api.JobFailed]+sw.Counts[api.JobCanceled] > 0:
		sw.State = api.SweepFailed
	default:
		sw.State = api.SweepDone
	}
	if sw.State == api.SweepDone && rec.grid != nil {
		sw.Speedups = rec.speedups(snap)
	}
	return sw
}

// speedups computes the merged grid of a completed axis-form sweep:
// Cells[w][c] relative to the first configuration column, exactly
// exp.SweepResult.Speedups(0)'s convention. Callers have verified every
// cell is done. Each configuration column also carries its area estimate
// versus the base column, so every speedup in the grid has a cost next
// to it.
func (rec *sweepRec) speedups(snap func(id string) api.Job) *api.SweepSpeedups {
	sp := &api.SweepSpeedups{
		Configs:   rec.configs,
		Workloads: rec.workloads,
		Cells:     make([][]float64, len(rec.workloads)),
	}
	for w := range rec.workloads {
		sp.Cells[w] = make([]float64, len(rec.configs))
		base := snap(rec.grid[0][w]).Metrics
		for c := range rec.configs {
			sp.Cells[w][c] = snap(rec.grid[c][w]).Metrics.Speedup(*base)
		}
	}
	if baseCfg, err := specConfig(snap(rec.grid[0][0]).Spec); err == nil {
		area2, overhead := make([]float64, len(rec.configs)), make([]float64, len(rec.configs))
		for c := range rec.configs {
			cfg, cerr := specConfig(snap(rec.grid[c][0]).Spec)
			if cerr != nil {
				return sp // a column without a resolvable config: omit the area row
			}
			est := area.Compare(&baseCfg, &cfg)
			area2[c], overhead[c] = est.TotalMM2, est.OverheadFrac
		}
		sp.AreaMM2, sp.OverheadFrac = area2, overhead
	}
	return sp
}

// specConfig resolves the configuration value a job spec names, for the
// sweep grid's per-column area estimates.
func specConfig(spec api.JobSpec) (config.Config, error) {
	cref, _, err := resolveSpec(spec)
	if err != nil {
		return config.Config{}, err
	}
	return cref.Resolve()
}

// sweepStatus assembles the GET /v1/sweeps/{id} resource view.
func (s *Server) sweepStatus(id string) (api.Sweep, *httpError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.sweeps[id]
	if !ok {
		return api.Sweep{}, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("server: unknown sweep %q", id)}
	}
	return rec.view(func(jid string) api.Job { return s.jobs[jid].Job }), nil
}

// cancelJob implements DELETE /v1/jobs/{id}. The state machine is pinned
// by TestCancelStateMachine:
//
//	queued   -> canceled, 200; the queue slot frees immediately and the
//	            cell never simulates.
//	running  -> canceled, 200; the simulation is not preemptible, so the
//	            worker finishes the cell (its result still lands in the
//	            memo/disk caches) but the job record stays canceled — the
//	            same state in GET /v1/jobs/{id} and in /v1/stats.
//	canceled -> 200, idempotent.
//	done     -> 409; completed work is immutable.
//	failed   -> 409.
//	unknown  -> 404.
func (s *Server) cancelJob(id string) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("server: unknown job %q", id)}
	}
	switch j.State {
	case api.JobQueued:
		s.cancelQueuedLocked(j)
		return j, nil
	case api.JobRunning:
		s.cancelLocked(j)
		return j, nil
	case api.JobCanceled:
		return j, nil
	default:
		return nil, &httpError{status: http.StatusConflict, msg: fmt.Sprintf("server: job %q is %s, only queued or running jobs can be canceled", id, j.State)}
	}
}

// cancelLocked marks j canceled, stamps its finish time, aborts its
// context and refunds its owner's quota. Callers hold s.mu.
func (s *Server) cancelLocked(j *job) {
	j.State = api.JobCanceled
	now := time.Now()
	j.FinishedAt = &now
	j.markTerminal(api.JobCanceled, now)
	s.traceSpans.Add(1)
	j.cancel()
	s.releaseQuotaLocked(j)
	s.broadcastLocked()
	s.log.Info("job canceled", "job", j.ID, "trace", j.TraceID)
}

// cancelQueuedLocked additionally removes j from the pending FIFO,
// freeing its queue slot immediately. Callers hold s.mu.
func (s *Server) cancelQueuedLocked(j *job) {
	s.cancelLocked(j)
	for i, p := range s.pending {
		if p == j {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
}

// snapshot copies a job's API view under the lock.
func (s *Server) snapshot(j *job) api.Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.Job
}

// Stats assembles the GET /v1/stats payload. Every counter here is also
// exported on /metrics from the same underlying source, so the two views
// reconcile exactly at quiescence (the torture test's closing assertion).
func (s *Server) Stats() api.Stats {
	s.mu.Lock()
	byState := make(map[api.JobState]int)
	for _, j := range s.jobs {
		byState[j.State]++
	}
	depth := len(s.pending)
	capacity := s.maxQueue
	s.mu.Unlock()

	st := api.Stats{
		Scheduler:   s.sched.Stats(),
		Workers:     s.workers,
		QueueDepth:  depth,
		QueueCap:    capacity,
		Jobs:        byState,
		RateLimited: s.rateLimited.Value(),
		QuotaDenied: s.quotaDenied.Value(),
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		st.CacheDir = s.cache.Location()
		st.DiskCacheEntries = cs.Entries
		st.DiskCacheBytes = cs.Bytes
		st.DiskCacheMaxBytes = cs.MaxBytes
		st.DiskCacheEvictions = cs.Evictions
	}
	return st
}

// waitJob blocks until job id is terminal, the daemon starts draining,
// ctx is done, or d elapses, then returns the job's current snapshot.
// ok is false only when the id is unknown. With d <= 0 it returns the
// snapshot immediately — GET without ?wait= is exactly waitJob(ctx, id, 0).
func (s *Server) waitJob(ctx context.Context, id string, d time.Duration) (api.Job, bool) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		s.mu.Lock()
		j, ok := s.jobs[id]
		if !ok {
			s.mu.Unlock()
			return api.Job{}, false
		}
		snap := j.Job
		ch := s.waitCh
		draining := s.draining
		s.mu.Unlock()
		if d <= 0 || snap.State.Terminal() || draining {
			return snap, true
		}
		select {
		case <-ch:
		case <-timer.C:
			return s.snapshot(j), true
		case <-ctx.Done():
			return snap, true
		}
	}
}

// waitSweep is waitJob's sweep twin: it blocks until the sweep is
// terminal, the daemon drains, ctx is done, or d elapses, then returns
// the current aggregate.
func (s *Server) waitSweep(ctx context.Context, id string, d time.Duration) (api.Sweep, *httpError) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		s.mu.Lock()
		ch := s.waitCh
		draining := s.draining
		s.mu.Unlock()
		sw, he := s.sweepStatus(id)
		if he != nil {
			return api.Sweep{}, he
		}
		if d <= 0 || sw.State.Terminal() || draining {
			return sw, nil
		}
		select {
		case <-ch:
		case <-timer.C:
			return s.sweepStatus(id)
		case <-ctx.Done():
			return sw, nil
		}
	}
}

// Shutdown stops accepting submissions, cancels still-queued jobs, and
// waits (bounded by ctx) for in-flight simulations to drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.draining = true
	for _, j := range s.jobs {
		if j.State == api.JobQueued {
			s.cancelQueuedLocked(j)
		}
	}
	s.cond.Broadcast()
	s.broadcastLocked() // long-poll waiters return promptly during drain
	s.mu.Unlock()
	s.explorer.cancel() // abort exploration drivers; journals survive for resume

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.explorer.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown deadline: %w", ctx.Err())
	}
}
