package server

import (
	"fmt"
	"io"
	"strings"

	"gpumembw/internal/exp"
)

// CacheStats is a cache backend's accounting snapshot, surfaced on
// GET /v1/stats and /metrics.
type CacheStats struct {
	// Entries is the number of persisted cells.
	Entries int
	// Bytes is the accounted payload size of all entries.
	Bytes int64
	// MaxBytes is the backend's size bound; 0 means unbounded.
	MaxBytes int64
	// Evictions counts entries the bound has evicted. Eviction never
	// changes results, only the cost of re-simulating an evicted cell.
	Evictions int64
}

// CacheBackend is the pluggable persistent result store behind the
// daemon's -cache-dir flag. The local JSON spill directory is the only
// built-in backend today; pointing several workers at one directory on a
// shared volume gives a whole cluster a single cache namespace (entry
// writes are atomic temp-file + rename, so concurrent writers are safe —
// the LRU recency journal is advisory and per-process). Backends for
// object stores register new schemes in OpenCache.
//
// Get and Put implement exp.ResultCache and may be called concurrently;
// a Get miss must degrade gracefully (the cell re-simulates), never
// error the request.
type CacheBackend interface {
	exp.ResultCache
	// Location describes where the backend persists, e.g. the spill
	// directory path; shown in stats as cacheDir.
	Location() string
	// Stats reports the backend's current accounting.
	Stats() CacheStats
	// Close releases backend resources (journals, connections).
	Close() error
}

// NewDirCache opens the spill-directory backend rooted at dir: one JSON
// file per cell named by its content hash, bounded (when maxBytes > 0)
// by LRU eviction with a persisted recency journal. errlog, when
// non-nil, receives I/O warnings.
func NewDirCache(dir string, maxBytes int64, errlog io.Writer) (CacheBackend, error) {
	return newDiskCache(dir, maxBytes, errlog)
}

// OpenCache opens the backend named by spec: "dir:<path>" — or a bare
// path, the -cache-dir shorthand — opens the local spill directory.
// Future backends (shared object stores) claim new schemes here, so
// every entry point that accepts a cache location gains them at once.
func OpenCache(spec string, maxBytes int64, errlog io.Writer) (CacheBackend, error) {
	scheme, rest, ok := strings.Cut(spec, ":")
	if !ok || strings.ContainsAny(scheme, "/.") {
		// No scheme (or a path like ./cache, /var/cache): a bare directory.
		return NewDirCache(spec, maxBytes, errlog)
	}
	switch scheme {
	case "dir":
		return NewDirCache(rest, maxBytes, errlog)
	default:
		return nil, fmt.Errorf("server: unknown cache backend scheme %q (known: dir)", scheme)
	}
}
