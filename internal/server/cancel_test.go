package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gpumembw/client"
	"gpumembw/internal/api"
)

// TestCancelStateMachine pins DELETE /v1/jobs/{id} for every lifecycle
// state, asserting the response code, the state GET reports afterwards,
// and that /v1/stats counts the job under the same state — the
// consistency this endpoint is specified by.
func TestCancelStateMachine(t *testing.T) {
	cases := []struct {
		from       api.JobState
		wantStatus int
		wantState  api.JobState
	}{
		{api.JobQueued, http.StatusOK, api.JobCanceled},
		{api.JobRunning, http.StatusOK, api.JobCanceled},
		{api.JobCanceled, http.StatusOK, api.JobCanceled},
		{api.JobDone, http.StatusConflict, api.JobDone},
		{api.JobFailed, http.StatusConflict, api.JobFailed},
	}
	for _, tc := range cases {
		t.Run(string(tc.from), func(t *testing.T) {
			// Workers are not started, so the submitted job stays queued
			// until the test forces the state under test.
			srv, err := newServer(Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			cref, ref, err := resolveSpec(api.JobSpec{Config: "baseline", Bench: testBench})
			if err != nil {
				t.Fatal(err)
			}
			j, _, err := srv.submit(api.JobSpec{Config: "baseline", Bench: testBench}, cref, ref, "test", "")
			if err != nil {
				t.Fatal(err)
			}
			srv.mu.Lock()
			j.State = tc.from
			if tc.from != api.JobQueued {
				srv.pending = nil // mimic the worker having popped it
			}
			srv.mu.Unlock()

			req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("DELETE from %s: status %d, want %d", tc.from, resp.StatusCode, tc.wantStatus)
			}
			if got := srv.snapshot(j).State; got != tc.wantState {
				t.Fatalf("GET after DELETE from %s: state %s, want %s", tc.from, got, tc.wantState)
			}
			st := srv.Stats()
			if st.Jobs[tc.wantState] != 1 {
				t.Fatalf("stats after DELETE from %s disagree with job state: %v, want {%s:1}", tc.from, st.Jobs, tc.wantState)
			}
			for state, n := range st.Jobs {
				if state != tc.wantState && n != 0 {
					t.Fatalf("stats count a phantom %s job: %v", state, st.Jobs)
				}
			}
		})
	}
}

func TestCancelUnknownJobIs404(t *testing.T) {
	srv, err := newServer(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown: status %d, want 404", resp.StatusCode)
	}
}

// TestCancelRunningJobStaysCanceled is the end-to-end regression test
// for the mid-simulation DELETE inconsistency: the worker that finishes
// the non-preemptible simulation must not overwrite the canceled state,
// so GET /v1/jobs/{id} and /v1/stats keep agreeing; the result still
// lands in the caches, making a resubmission nearly free.
func TestCancelRunningJobStaysCanceled(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()
	spec := client.JobSpec{Config: "baseline", Bench: testBench}

	job, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick the job up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		job, err = c.Job(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if job.State == client.JobRunning {
			break
		}
		if job.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job never observed running: %s", job.State)
		}
		time.Sleep(time.Millisecond)
	}

	canceled, err := c.Cancel(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if canceled.State != client.JobCanceled {
		t.Fatalf("DELETE running job: state %s, want canceled", canceled.State)
	}

	// Let the worker finish the in-flight simulation, then check it did
	// not resurrect the job.
	waitForQuiescence(t, srv, deadline)
	if got := srv.snapshot(jobRecord(t, srv, job.ID)).State; got != api.JobCanceled {
		t.Fatalf("worker overwrote canceled state with %s", got)
	}
	st := srv.Stats()
	if st.Jobs[api.JobCanceled] != 1 || st.Jobs[api.JobDone] != 0 {
		t.Fatalf("stats disagree with canceled job: %v", st.Jobs)
	}
	if st.Scheduler.Simulated != 1 {
		t.Fatalf("simulated = %d, want 1 (the in-flight cell completes)", st.Scheduler.Simulated)
	}

	// Resubmitting re-enqueues the cell; the memoized result makes it a
	// cache hit, not a second simulation.
	re, err := c.Run(ctx, spec, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if re.State != client.JobDone || re.Metrics == nil {
		t.Fatalf("resubmitted job: %s (%s)", re.State, re.Error)
	}
	if st := srv.Stats(); st.Scheduler.Simulated != 1 || st.Scheduler.CacheHits != 1 {
		t.Fatalf("resubmission re-simulated: %+v", st.Scheduler)
	}
}

// jobRecord fetches the server-side record for id.
func jobRecord(t *testing.T, srv *Server, id string) *job {
	t.Helper()
	srv.mu.Lock()
	defer srv.mu.Unlock()
	j, ok := srv.jobs[id]
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	return j
}

// waitForQuiescence polls until no job is queued or running and no
// worker is inside a simulation.
func waitForQuiescence(t *testing.T, srv *Server, deadline time.Time) {
	t.Helper()
	for {
		st := srv.Stats()
		if st.QueueDepth == 0 && st.Jobs[api.JobQueued] == 0 && st.Jobs[api.JobRunning] == 0 && srv.running.Load() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never went quiescent: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}
