package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gpumembw/client"
	"gpumembw/internal/api"
)

// testCluster is an in-process coordinator plus its worker fleet; every
// worker runs the real Server handler behind httptest, so the cluster
// tests exercise the identical wire path production uses.
type testCluster struct {
	co       *Coordinator
	client   *client.Client
	workers  []*Server
	workerTS []*httptest.Server
}

// newTestCluster wires the given worker Servers (built with New for
// live simulation or newServer for deterministically-idle queues) into
// a coordinator with fast probes. Callers may kill individual worker
// servers mid-test; cleanup tolerates it.
func newTestCluster(t *testing.T, workers []*Server) *testCluster {
	t.Helper()
	tc := &testCluster{workers: workers}
	var addrs []string
	for _, srv := range workers {
		ts := httptest.NewServer(srv.Handler())
		tc.workerTS = append(tc.workerTS, ts)
		addrs = append(addrs, ts.URL)
	}
	co, err := NewCoordinator(CoordinatorOptions{
		Workers:       addrs,
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
		ProbeFails:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.co = co
	ts := httptest.NewServer(co.Handler())
	tc.client = client.New(ts.URL)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		co.Shutdown(ctx) //nolint:errcheck // test teardown
		for i, wts := range tc.workerTS {
			wts.Close()
			tc.workers[i].Shutdown(ctx) //nolint:errcheck // test teardown
		}
	})
	return tc
}

func newWorker(t *testing.T) *Server {
	t.Helper()
	srv, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func newIdleWorker(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 1
	}
	srv, err := newServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestClusterByteParity pins the redesign's equivalence claim: the same
// cell and the same sweep, submitted to a single daemon and to a
// 2-worker cluster, produce the same job ID, byte-identical metrics,
// the same sweep ID, and the same speedup grid. Sharding is placement,
// never results.
func TestClusterByteParity(t *testing.T) {
	_, single := newTestServer(t, Options{Workers: 2})
	tc := newTestCluster(t, []*Server{newWorker(t), newWorker(t)})
	ctx := context.Background()
	spec := client.JobSpec{Config: "L2-4x", Bench: testBench}

	sj, err := single.Run(ctx, spec, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cj, err := tc.client.Run(ctx, spec, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if sj.ID != cj.ID {
		t.Fatalf("cell IDs diverge: single %s vs cluster %s", sj.ID, cj.ID)
	}
	if !bytes.Equal(canonicalJSON(t, sj.Metrics), canonicalJSON(t, cj.Metrics)) {
		t.Fatalf("metrics diverge:\nsingle:  %s\ncluster: %s", canonicalJSON(t, sj.Metrics), canonicalJSON(t, cj.Metrics))
	}

	req := client.SweepRequest{Configs: []string{"baseline", "L2-4x"}, Benches: []string{testBench}}
	ss, err := single.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := tc.client.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if ss.ID != cs.ID {
		t.Fatalf("sweep IDs diverge: single %s vs cluster %s", ss.ID, cs.ID)
	}
	if len(cs.Jobs) != len(ss.Jobs) {
		t.Fatalf("sweep job counts diverge: %d vs %d", len(ss.Jobs), len(cs.Jobs))
	}
	for i := range ss.Jobs {
		if ss.Jobs[i].ID != cs.Jobs[i].ID {
			t.Fatalf("sweep job order diverges at %d: %s vs %s", i, ss.Jobs[i].ID, cs.Jobs[i].ID)
		}
	}

	ssw, err := single.WaitSweep(ctx, ss.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	csw, err := tc.client.WaitSweep(ctx, cs.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ssw.State != client.SweepDone || csw.State != client.SweepDone {
		t.Fatalf("states: single %s, cluster %s, want done", ssw.State, csw.State)
	}
	if !bytes.Equal(canonicalJSON(t, ssw.Speedups), canonicalJSON(t, csw.Speedups)) {
		t.Fatalf("speedups diverge:\nsingle:  %s\ncluster: %s", canonicalJSON(t, ssw.Speedups), canonicalJSON(t, csw.Speedups))
	}
}

// TestClusterCrossEntryDedup pins the rendezvous property the design
// leans on: two coordinators with the same membership route the same
// cell to the same worker, so twin submissions through different entry
// points memoize — the fleet simulates the cell exactly once.
func TestClusterCrossEntryDedup(t *testing.T) {
	workers := []*Server{newWorker(t), newWorker(t)}
	a := newTestCluster(t, workers)
	// Second coordinator over the SAME worker servers. Reuse the first
	// cluster's worker listeners so membership views match exactly.
	b := &testCluster{workers: workers, workerTS: a.workerTS}
	var addrs []string
	for _, ts := range a.workerTS {
		addrs = append(addrs, ts.URL)
	}
	co, err := NewCoordinator(CoordinatorOptions{Workers: addrs, ProbeInterval: 50 * time.Millisecond, ProbeFails: 1})
	if err != nil {
		t.Fatal(err)
	}
	bts := httptest.NewServer(co.Handler())
	b.client = client.New(bts.URL)
	t.Cleanup(func() {
		bts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		co.Shutdown(ctx) //nolint:errcheck // test teardown
	})

	ctx := context.Background()
	spec := client.JobSpec{Config: "baseline", Bench: testBench}
	ja, err := a.client.Run(ctx, spec, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.client.Run(ctx, spec, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ja.ID != jb.ID {
		t.Fatalf("entry points named different cells: %s vs %s", ja.ID, jb.ID)
	}

	st, err := a.client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scheduler.Simulated != 1 {
		t.Fatalf("fleet simulated the twin cell %d times, want 1 (cross-entry dedup broken)", st.Scheduler.Simulated)
	}
	if st.Cluster == nil || st.Cluster.Healthy != 2 {
		t.Fatalf("merged stats cluster view: %+v, want 2 healthy workers", st.Cluster)
	}
}

// TestClusterKillWorkerMidSweep pins failure healing: a sweep sharded
// over a live worker and a wedged one still completes after the wedged
// worker is killed — its cells are re-routed to the survivor, and the
// reassignment is visible in the cluster stats.
func TestClusterKillWorkerMidSweep(t *testing.T) {
	live := newWorker(t)
	// The doomed worker accepts cells but never simulates them, so the
	// sweep cannot finish unless reassignment actually happens.
	wedged := newIdleWorker(t, Options{})
	tc := newTestCluster(t, []*Server{live, wedged})
	ctx := context.Background()

	var cells []client.JobSpec
	for i := 0; i < 8; i++ {
		cells = append(cells, mshrPatch(8*(i+1)))
	}
	resp, err := tc.client.Sweep(ctx, client.SweepRequest{Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	status, err := tc.client.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wedgedJobs := 0
	for _, w := range status.Workers {
		if w.Addr == tc.workerTS[1].URL {
			wedgedJobs = w.Jobs
		}
	}

	tc.workerTS[1].Close() // kill the wedged worker mid-sweep

	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	sw, err := tc.client.WaitSweep(wctx, resp.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if sw.State != client.SweepDone {
		t.Fatalf("sweep state = %s (counts %v), want done after reassignment", sw.State, sw.Counts)
	}
	if sw.Counts[client.JobDone] != len(cells) {
		t.Fatalf("counts = %v, want %d done", sw.Counts, len(cells))
	}
	if wedgedJobs > 0 {
		st, err := tc.client.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Cluster == nil || st.Cluster.ReassignedJobs == 0 {
			t.Fatalf("killed worker owned %d cells but ReassignedJobs = %+v", wedgedJobs, st.Cluster)
		}
	}
}

// TestClusterDrain pins the administrative handover: draining a worker
// moves its cells to peers immediately and excludes it from placement;
// undraining readmits it without moving anything back.
func TestClusterDrain(t *testing.T) {
	// Idle workers keep every cell queued, so drained cells are
	// observably moved rather than racing to completion.
	tc := newTestCluster(t, []*Server{newIdleWorker(t, Options{}), newIdleWorker(t, Options{})})
	ctx := context.Background()
	const n = 6
	for i := 0; i < n; i++ {
		if _, err := tc.client.Submit(ctx, mshrPatch(8*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	status, err := tc.client.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	target := ""
	targetJobs := 0
	for _, w := range status.Workers {
		if w.Jobs > 0 {
			target, targetJobs = w.Addr, w.Jobs
			break
		}
	}
	if target == "" {
		t.Fatalf("no worker owns any of the %d cells: %+v", n, status.Workers)
	}

	after, err := tc.client.Drain(ctx, target, true)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, w := range after.Workers {
		total += w.Jobs
		if w.Addr == target {
			if !w.Draining {
				t.Fatalf("worker %s not marked draining: %+v", target, w)
			}
			if w.Jobs != 0 {
				t.Fatalf("drained worker still owns %d cells", w.Jobs)
			}
		}
	}
	if total != n {
		t.Fatalf("cells lost in drain: %d tracked, want %d", total, n)
	}
	st, err := tc.client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster.ReassignedJobs < int64(targetJobs) {
		t.Fatalf("ReassignedJobs = %d, want >= %d", st.Cluster.ReassignedJobs, targetJobs)
	}

	undrained, err := tc.client.Drain(ctx, target, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range undrained.Workers {
		if w.Addr == target && (w.Draining || w.Jobs != 0) {
			t.Fatalf("undrain: %+v, want not draining and no cells moved back", w)
		}
	}
}

// TestClusterListMerge pins fleet-wide listing: a coordinator page walk
// unions every worker's jobs with the same cursor contract a single
// daemon honors — complete, deduplicated, stably ordered.
func TestClusterListMerge(t *testing.T) {
	tc := newTestCluster(t, []*Server{newIdleWorker(t, Options{}), newIdleWorker(t, Options{})})
	ctx := context.Background()
	const n = 7
	want := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		j, err := tc.client.Submit(ctx, mshrPatch(8*(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		want[j.ID] = true
	}

	// limit=1 pins the horizon case: once the listing's tail lives on a
	// single worker, every page's visible union fits the limit and only
	// the forced continuation token keeps the walk alive.
	for _, limit := range []int{1, 2, 3, n + 1} {
		var walked []api.Job
		token := ""
		for pages := 0; ; pages++ {
			if pages > n+1 {
				t.Fatalf("limit %d: fleet walk did not terminate", limit)
			}
			page, err := tc.client.ListJobs(ctx, client.ListOptions{Limit: limit, PageToken: token})
			if err != nil {
				t.Fatal(err)
			}
			walked = append(walked, page.Jobs...)
			if page.NextPageToken == "" {
				break
			}
			token = page.NextPageToken
		}
		if len(walked) != n {
			t.Fatalf("limit %d: walked %d jobs across the fleet, want %d", limit, len(walked), n)
		}
		seen := make(map[string]bool)
		for i, j := range walked {
			if seen[j.ID] || !want[j.ID] {
				t.Fatalf("limit %d: job %s duplicated or unexpected in merged listing", limit, j.ID)
			}
			seen[j.ID] = true
			if i > 0 {
				a, b := walked[i-1], walked[i]
				if a.SubmittedAt.After(b.SubmittedAt) || (a.SubmittedAt.Equal(b.SubmittedAt) && a.ID >= b.ID) {
					t.Fatalf("limit %d: merged listing out of order at %d", limit, i)
				}
			}
		}
	}
}

// TestClusterErrorPassthrough pins envelope fidelity through the proxy
// layer: a worker's quota rejection crosses the coordinator with its
// status, code and retry hint intact, so clients cannot tell the two
// apart.
func TestClusterErrorPassthrough(t *testing.T) {
	tc := newTestCluster(t, []*Server{newIdleWorker(t, Options{MaxInflightPerClient: 1})})
	ctx := context.Background()
	if _, err := tc.client.Submit(ctx, mshrPatch(8)); err != nil {
		t.Fatal(err)
	}
	_, err := tc.client.Submit(ctx, mshrPatch(16))
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) {
		t.Fatalf("quota rejection through coordinator: err = %v, want APIError", err)
	}
	if apiErr.StatusCode != http.StatusTooManyRequests || apiErr.Code != api.CodeResourceExhausted {
		t.Fatalf("got %d %s, want 429 %s", apiErr.StatusCode, apiErr.Code, api.CodeResourceExhausted)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0 (worker's hint lost in relay)", apiErr.RetryAfter)
	}
}
