package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpumembw/client"
	"gpumembw/internal/config"
	"gpumembw/internal/exp"
)

// mustServer builds a bare Server for tests that need the raw HTTP
// surface (hostile payloads no typed client can produce).
func mustServer(t *testing.T) *Server {
	t.Helper()
	srv, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	})
	return srv
}

// mitigationPatch returns the Table III "more MSHRs" patch used across
// these tests.
func mitigationPatch(t *testing.T) client.ConfigPatch {
	t.Helper()
	var p client.ConfigPatch
	if err := json.Unmarshal([]byte(`{"base":"baseline","L1":{"MSHREntries":128}}`), &p); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestInlineConfigEqualToPresetSharesJob submits a configuration by
// preset name, as a byte-wise inline twin, and as an empty patch: one
// job, one simulation.
func TestInlineConfigEqualToPresetSharesJob(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()

	byName, err := c.Run(ctx, client.JobSpec{Config: "baseline", Bench: testBench}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	twin := config.Baseline()
	twin.Name = "my-silicon"
	inline, err := c.Run(ctx, client.JobSpec{InlineConfig: &twin, Bench: testBench}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if inline.ID != byName.ID {
		t.Fatalf("inline twin of baseline got its own job (%s vs %s)", inline.ID, byName.ID)
	}
	emptyPatch := client.ConfigPatch{Base: "baseline"}
	patched, err := c.Run(ctx, client.JobSpec{ConfigPatch: &emptyPatch, Bench: testBench}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if patched.ID != byName.ID {
		t.Fatalf("empty patch on baseline got its own job (%s vs %s)", patched.ID, byName.ID)
	}
	if st := srv.Stats(); st.Scheduler.Simulated != 1 {
		t.Fatalf("simulated = %d, want 1", st.Scheduler.Simulated)
	}
}

// TestConfigPatchJobParity holds the daemon to the acceptance promise
// for patched hardware: a configPatch job's metrics are byte-identical
// to the library's for the handwritten equivalent config, and both
// spellings share one cell.
func TestConfigPatchJobParity(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	p := mitigationPatch(t)
	job, err := c.Run(ctx, client.JobSpec{ConfigPatch: &p, Bench: testBench}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != client.JobDone {
		t.Fatalf("job = %+v", job)
	}
	if job.Metrics.Config != "baseline-patched" {
		t.Fatalf("metrics config label = %q, want baseline-patched", job.Metrics.Config)
	}

	hand := config.Baseline()
	hand.Name = "baseline-patched" // same label so the payloads can be byte-compared
	hand.L1.MSHREntries = 128
	ref, err := exp.NewScheduler().Run(hand, testBench)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalJSON(t, job.Metrics), canonicalJSON(t, &ref); !bytes.Equal(got, want) {
		t.Fatalf("daemon metrics differ from library run:\n%s\nvs\n%s", got, want)
	}

	// The handwritten inline twin shares the patch's job.
	inline, err := c.Run(ctx, client.JobSpec{InlineConfig: &hand, Bench: testBench}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if inline.ID != job.ID {
		t.Fatalf("handwritten twin got its own job (%s vs %s)", inline.ID, job.ID)
	}
	if st := srv.Stats(); st.Scheduler.Simulated != 1 {
		t.Fatalf("simulated = %d, want 1", st.Scheduler.Simulated)
	}
}

// TestMalformedConfigNeverCrashesDaemon: malformed inline configs and
// patches are 400s with validation detail, and the daemon keeps serving.
func TestMalformedConfigNeverCrashesDaemon(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()

	submit := func(spec client.JobSpec) *client.APIError {
		t.Helper()
		_, err := c.Submit(ctx, spec)
		var apiErr *client.APIError
		if err == nil || !errorsAs(err, &apiErr) {
			t.Fatalf("err = %v, want APIError", err)
		}
		return apiErr
	}

	// Hostile inline configs: every corner is a 400 with detail.
	for _, tc := range []struct {
		name    string
		mut     func(*config.Config)
		wantMsg string
	}{
		{"zero line size", func(c *config.Config) { c.L1.LineBytes, c.L2.LineBytes = 0, 0 }, "line size"},
		{"non-divisible banking", func(c *config.Config) { c.L2.NumBanks = 7 }, "banks"},
		{"negative queue", func(c *config.Config) { c.L1.MissQueueEntries = -8 }, "miss queue"},
		{"huge cache", func(c *config.Config) { c.L2.SizeBytes = 1 << 40 }, "L2 size"},
		{"unknown mode", func(c *config.Config) { c.Mode = 77 }, "mode"},
	} {
		bad := config.Baseline()
		tc.mut(&bad)
		apiErr := submit(client.JobSpec{InlineConfig: &bad, Bench: testBench})
		if apiErr.StatusCode != http.StatusBadRequest || !strings.Contains(apiErr.Message, tc.wantMsg) {
			t.Fatalf("%s: got %d %q, want 400 containing %q", tc.name, apiErr.StatusCode, apiErr.Message, tc.wantMsg)
		}
	}

	// NaN-bearing floats arrive as raw JSON (Go clients can't even
	// marshal them): a bare NaN literal dies in the decoder, and a NaN
	// smuggled as a huge exponent dies in Validate — both as 400s.
	ts := httptest.NewServer(mustServer(t).Handler())
	defer ts.Close()
	for _, body := range []string{
		`{"bench":"` + testBench + `","inlineConfig":{"Core":{"ClockMHz":NaN}}}`,
		`{"bench":"` + testBench + `","inlineConfig":{"Core":{"ClockMHz":1e400}}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("hostile float config: status %d, want 400", resp.StatusCode)
		}
	}

	// Patch corners.
	badBase := client.ConfigPatch{Base: "nope"}
	if apiErr := submit(client.JobSpec{ConfigPatch: &badBase, Bench: testBench}); !strings.Contains(apiErr.Message, "nope") {
		t.Fatalf("unknown base: %q", apiErr.Message)
	}
	typo := client.ConfigPatch{Base: "baseline", Delta: json.RawMessage(`{"L1":{"MshrEntriez":1}}`)}
	if apiErr := submit(client.JobSpec{ConfigPatch: &typo, Bench: testBench}); apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("typo'd patch: %d", apiErr.StatusCode)
	}
	invalid := client.ConfigPatch{Base: "baseline", Delta: json.RawMessage(`{"L2":{"NumBanks":7}}`)}
	if apiErr := submit(client.JobSpec{ConfigPatch: &invalid, Bench: testBench}); !strings.Contains(apiErr.Message, "banks") {
		t.Fatalf("invalid patched config: %q", apiErr.Message)
	}

	// Config-side shape errors.
	cfg := config.Baseline()
	p := mitigationPatch(t)
	if apiErr := submit(client.JobSpec{Config: "baseline", InlineConfig: &cfg, Bench: testBench}); !strings.Contains(apiErr.Message, "mutually exclusive") {
		t.Fatalf("config+inlineConfig: %q", apiErr.Message)
	}
	if apiErr := submit(client.JobSpec{InlineConfig: &cfg, ConfigPatch: &p, Bench: testBench}); !strings.Contains(apiErr.Message, "mutually exclusive") {
		t.Fatalf("inlineConfig+configPatch: %q", apiErr.Message)
	}
	if apiErr := submit(client.JobSpec{Bench: testBench}); !strings.Contains(apiErr.Message, "configPatch") {
		t.Fatalf("configless spec: %q", apiErr.Message)
	}

	// The daemon is still fully alive.
	job, err := c.Run(ctx, client.JobSpec{Config: "baseline", Bench: testBench}, 10*time.Millisecond)
	if err != nil || job.State != client.JobDone {
		t.Fatalf("daemon unhealthy after rejections: %+v, %v", job, err)
	}
}

// TestConfigsEndpointServesFullPresets: GET /v1/configs returns every
// preset as its full canonical Config, usable directly as an inline
// config that lands on the preset's own cell.
func TestConfigsEndpointServesFullPresets(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()

	configs, err := c.Configs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	names := config.Names()
	if len(configs) != len(names) {
		t.Fatalf("got %d configs, want %d", len(configs), len(names))
	}
	for i, cfg := range configs {
		if cfg.Name != names[i] {
			t.Fatalf("config %d = %q, want %q (sorted)", i, cfg.Name, names[i])
		}
		preset, err := config.ByName(cfg.Name)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.ConfigID() != preset.ConfigID() {
			t.Fatalf("%s: served config's identity differs from the preset's", cfg.Name)
		}
		if cfg.Core.NumCores == 0 {
			t.Fatalf("%s: served config is not the full value: %+v", cfg.Name, cfg)
		}
	}

	// Round-trip: submit a served config as an inline config; it must
	// land on the preset's cell.
	var served *client.HardwareConfig
	for i := range configs {
		if configs[i].Name == "baseline" {
			served = &configs[i]
			break
		}
	}
	byName, err := c.Run(ctx, client.JobSpec{Config: "baseline", Bench: testBench}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip, err := c.Run(ctx, client.JobSpec{InlineConfig: served, Bench: testBench}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if roundTrip.ID != byName.ID {
		t.Fatalf("served canonical config got its own job (%s vs %s)", roundTrip.ID, byName.ID)
	}
	if st := srv.Stats(); st.Scheduler.Simulated != 1 {
		t.Fatalf("simulated = %d, want 1", st.Scheduler.Simulated)
	}
}

// TestSweepConfigPatchAxis sweeps a mitigation-patch axis: patch columns
// dedup against their preset twins within one request.
func TestSweepConfigPatchAxis(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	real := mitigationPatch(t)
	twin := client.ConfigPatch{Base: "baseline"} // empty delta = preset twin
	resp, err := c.Sweep(ctx, client.SweepRequest{
		Configs:       []string{"baseline"},
		ConfigPatches: []client.ConfigPatch{real, twin},
		Benches:       []string{testBench},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 config columns × 1 bench, minus the twin collapsing onto baseline.
	if resp.Requested != 3 || resp.Deduped != 1 || len(resp.Jobs) != 2 {
		t.Fatalf("sweep expansion = %d requested, %d deduped, %d jobs", resp.Requested, resp.Deduped, len(resp.Jobs))
	}
	for _, j := range resp.Jobs {
		if _, err := c.Wait(ctx, j.ID, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if st := srv.Stats(); st.Scheduler.Simulated != 2 {
		t.Fatalf("simulated = %d, want 2", st.Scheduler.Simulated)
	}

	// A malformed patch corner rejects the whole sweep.
	bad := client.ConfigPatch{Base: "baseline", Delta: json.RawMessage(`{"L2":{"NumBanks":7}}`)}
	_, err = c.Sweep(ctx, client.SweepRequest{
		ConfigPatches: []client.ConfigPatch{real, bad},
		Benches:       []string{testBench},
	})
	var apiErr *client.APIError
	if err == nil || !errorsAs(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("sweep with malformed patch: err = %v, want 400", err)
	}

	// A sweep with no config axis at all is a 400 naming every option.
	_, err = c.Sweep(ctx, client.SweepRequest{Benches: []string{testBench}})
	if err == nil || !errorsAs(err, &apiErr) || !strings.Contains(apiErr.Message, "configPatches") {
		t.Fatalf("configless sweep: err = %v, want configs/inlineConfigs/configPatches 400", err)
	}
}

// TestDiskCacheServesInlineConfigAcrossRestart: an inline-config cell
// persisted by one daemon is served without re-simulation by a fresh
// daemon on the same -cache-dir.
func TestDiskCacheServesInlineConfigAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	p := mitigationPatch(t)

	_, c1 := newTestServer(t, Options{Workers: 1, CacheDir: dir})
	cold, err := c1.Run(ctx, client.JobSpec{ConfigPatch: &p, Bench: testBench}, 10*time.Millisecond)
	if err != nil || cold.State != client.JobDone {
		t.Fatalf("cold run: %+v, %v", cold, err)
	}

	srv2, c2 := newTestServer(t, Options{Workers: 1, CacheDir: dir})
	warm, err := c2.Run(ctx, client.JobSpec{ConfigPatch: &p, Bench: testBench}, 10*time.Millisecond)
	if err != nil || warm.State != client.JobDone {
		t.Fatalf("warm run: %+v, %v", warm, err)
	}
	if warm.ID != cold.ID {
		t.Fatalf("cell ID changed across restart: %s vs %s", warm.ID, cold.ID)
	}
	if !bytes.Equal(canonicalJSON(t, warm.Metrics), canonicalJSON(t, cold.Metrics)) {
		t.Fatal("warm metrics differ from cold metrics")
	}
	st := srv2.Stats()
	if st.Scheduler.Simulated != 0 || st.Scheduler.DiskHits != 1 {
		t.Fatalf("warm stats = %+v, want 0 simulated / 1 disk hit", st.Scheduler)
	}
}
