package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"gpumembw/internal/api"
	"gpumembw/internal/metrics"
)

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// Workers are the gpusimd worker base URLs the coordinator shards
	// cells across, e.g. "http://127.0.0.1:8373". At least one is
	// required; a bare host:port gets the http scheme prefixed.
	Workers []string
	// ProbeInterval is the /healthz probe period; 0 selects 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request; 0 selects 2s.
	ProbeTimeout time.Duration
	// ProbeFails is how many consecutive probe failures mark a worker
	// unhealthy (its cells move to healthy peers); 0 selects 2.
	ProbeFails int
	// ErrLog, when non-nil, receives reassignment and probe warnings.
	ErrLog io.Writer
	// Logger, when non-nil, receives structured lifecycle events (worker
	// health transitions, reassignments). nil disables structured logging
	// (tests); cmd/gpusimd always wires one.
	Logger *slog.Logger
}

// coordWorker is one worker's membership record.
type coordWorker struct {
	addr      string
	healthy   bool
	draining  bool
	fails     int
	lastProbe time.Time
}

// coordJob is the coordinator's placement record for one cell: enough
// to re-route the cell to a new worker (the spec and the submitting
// client's identity) and to answer reads for finished cells without a
// round trip (the worker's terminal response bytes, verbatim).
type coordJob struct {
	id       string
	spec     api.JobSpec
	worker   string
	owner    string    // forwarded client identity, for re-submission
	placedAt time.Time // taken just before the placement forward, so it precedes the worker's own spans
	snap     api.Job
	terminal []byte // raw worker bytes of the terminal snapshot
}

// Coordinator shards gpusimd's cell space across a fleet of workers by
// rendezvous-hashing each content-addressed cell ID, and serves the
// identical /v1 API: submissions and cancels are forwarded to the
// owning worker (responses proxied byte-for-byte), sweeps fan out as
// per-worker cell-list shards, listings and stats merge every worker's
// view, and job/sweep GETs long-poll against the owning workers.
// Placement is an operational concern only — the simulator is
// deterministic and cells are content-addressed, so which worker runs a
// cell (or re-runs it after a reassignment) can never change results.
//
// Workers are probed periodically; after ProbeFails consecutive
// failures a worker's cells are re-submitted to the remaining workers
// and it stops receiving placements until it answers probes again.
// POST /v1/cluster/drain does the same handover administratively.
type Coordinator struct {
	opts       CoordinatorOptions
	probeFails int
	proxy      *http.Client // no timeout: carries ?wait= long-polls
	probe      *http.Client // ProbeTimeout per probe
	errlog     io.Writer
	log        *slog.Logger

	mu         sync.Mutex
	workers    []*coordWorker
	jobs       map[string]*coordJob
	sweeps     map[string]*sweepRec
	reassigned int64

	explorer *exploreHub

	registry     *metrics.Registry
	httpRequests *metrics.CounterVec
	httpLatency  *metrics.HistogramVec

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator builds a Coordinator and starts its health prober.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, errors.New("server: coordinator needs at least one -worker address")
	}
	interval := opts.ProbeInterval
	if interval == 0 {
		interval = time.Second
	}
	timeout := opts.ProbeTimeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	fails := opts.ProbeFails
	if fails == 0 {
		fails = 2
	}
	co := &Coordinator{
		opts:       opts,
		probeFails: fails,
		proxy:      &http.Client{},
		probe:      &http.Client{Timeout: timeout},
		errlog:     opts.ErrLog,
		jobs:       make(map[string]*coordJob),
		sweeps:     make(map[string]*sweepRec),
		stop:       make(chan struct{}),
	}
	co.log = opts.Logger
	if co.log == nil {
		co.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	seen := make(map[string]bool)
	for _, addr := range opts.Workers {
		addr = strings.TrimRight(addr, "/")
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		if seen[addr] {
			return nil, fmt.Errorf("server: duplicate worker address %q", addr)
		}
		seen[addr] = true
		// Workers start healthy — optimistically routable — and the first
		// probes correct the record within ProbeFails*ProbeInterval.
		co.workers = append(co.workers, &coordWorker{addr: addr, healthy: true})
	}
	co.initMetrics()
	// Coordinator explorations fan probe cells out across the fleet; the
	// workers' shared disk cache (not a coordinator journal) is what makes
	// re-running a search free, so the hub runs unjournaled here.
	co.explorer, _ = newExploreHub("", co.exploreEval, co.log) // dir "" never errors
	co.wg.Add(1)
	go co.prober(interval)
	return co, nil
}

func (co *Coordinator) initMetrics() {
	r := metrics.NewRegistry()
	co.registry = r
	co.httpRequests = r.CounterVec("gpusimd_http_requests_total",
		"HTTP requests served, by route pattern and status code.", "endpoint", "code")
	co.httpLatency = r.HistogramVec("gpusimd_http_request_seconds",
		"HTTP request latency in seconds, by route pattern.", []string{"endpoint"}, metrics.DefBuckets)
	r.GaugeFunc("gpusimd_cluster_workers", "Workers configured on the coordinator.",
		func() float64 { co.mu.Lock(); defer co.mu.Unlock(); return float64(len(co.workers)) })
	r.GaugeFunc("gpusimd_cluster_workers_healthy", "Workers currently healthy and not draining.",
		func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			n := 0
			for _, w := range co.workers {
				if w.healthy && !w.draining {
					n++
				}
			}
			return float64(n)
		})
	r.GaugeFunc("gpusimd_cluster_tracked_jobs", "Cells the coordinator has placed.",
		func() float64 { co.mu.Lock(); defer co.mu.Unlock(); return float64(len(co.jobs)) })
	r.CounterFunc("gpusimd_cluster_reassigned_jobs_total",
		"Cells re-routed after their worker became unhealthy or was drained.",
		func() float64 { co.mu.Lock(); defer co.mu.Unlock(); return float64(co.reassigned) })
}

func (co *Coordinator) warnf(format string, args ...any) {
	if co.errlog != nil {
		fmt.Fprintf(co.errlog, format+"\n", args...)
	}
}

// Handler returns the coordinator's route table — the daemon's API plus
// the /v1/cluster membership routes.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, api.Health{Status: "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		co.registry.WritePrometheus(w) //nolint:errcheck // response committed
	})
	mux.HandleFunc("GET /v1/stats", co.handleStats)
	mux.HandleFunc("POST /v1/jobs", co.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", co.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", co.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/profile", co.handleJobProfile)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", co.handleJobTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", co.handleCancel)
	mux.HandleFunc("POST /v1/sweeps", co.handleSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}", co.handleSweepGet)
	mux.HandleFunc("POST /v1/explore", handleExploreSubmit(co.explorer))
	mux.HandleFunc("GET /v1/explorations/{id}", handleExploreGet(co.explorer))
	mux.HandleFunc("GET /v1/benchmarks", handleBenchmarks)
	mux.HandleFunc("GET /v1/configs", handleConfigs)
	mux.HandleFunc("GET /v1/knobs", handleKnobs)
	mux.HandleFunc("GET /v1/cluster", co.handleCluster)
	mux.HandleFunc("POST /v1/cluster/drain", co.handleDrain)
	return withTrace(instrument(mux, co.httpRequests, co.httpLatency))
}

// Shutdown stops the health prober. In-flight proxied requests finish
// on their own; workers own all simulation state.
func (co *Coordinator) Shutdown(context.Context) error {
	select {
	case <-co.stop:
		return errors.New("server: coordinator already shut down")
	default:
	}
	close(co.stop)
	co.explorer.shutdown()
	co.wg.Wait()
	return nil
}

// ---- placement ----

// pickLocked rendezvous-hashes cellID over the routable workers
// (healthy, not draining, not excluded): every entry point ranks
// workers by sha256(addr|cellID) and the highest score wins, so the
// same cell lands on the same worker from any coordinator with the same
// membership view — twin submissions shard identically and memoize.
func (co *Coordinator) pickLocked(cellID string, exclude map[string]bool) *coordWorker {
	var best *coordWorker
	var bestScore [sha256.Size]byte
	for _, w := range co.workers {
		if !w.healthy || w.draining || exclude[w.addr] {
			continue
		}
		score := sha256.Sum256([]byte(w.addr + "|" + cellID))
		if best == nil || bytes.Compare(score[:], bestScore[:]) > 0 {
			best, bestScore = w, score
		}
	}
	return best
}

// errNoWorkers is the 503 returned when no worker can take a placement.
func errNoWorkers() *httpError {
	return &httpError{
		status:     http.StatusServiceUnavailable,
		retryAfter: time.Second,
		msg:        "server: no healthy workers available",
	}
}

// forwardIdentity is the client identity the coordinator forwards to
// workers as the X-API-Key header, so per-client rate limits and
// inflight quotas keep binding to the original client — not to the
// coordinator's own address — across the fleet. Clients that present
// an API key keep it; others are identified by their host.
func forwardIdentity(r *http.Request) string {
	if key := r.Header.Get("X-API-Key"); key != "" {
		return key
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return host
}

// forward issues one request to a worker. pathAndQuery carries the
// original query string (wait, state, ...); identity rides X-API-Key.
// A non-nil error is a transport failure — the worker never answered —
// as opposed to a worker-sent HTTP error, which comes back as a
// response to be proxied verbatim.
func (co *Coordinator) forward(ctx context.Context, workerAddr, method, pathAndQuery, identity string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, workerAddr+pathAndQuery, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if identity != "" {
		req.Header.Set("X-API-Key", identity)
	}
	// Propagate the request's trace ID to the worker, so one X-Trace-Id
	// follows a submission from the fleet entry point to the simulating
	// daemon (the cluster smoke test pins this survival).
	if id := traceIDFrom(ctx); id != "" {
		req.Header.Set(api.TraceHeader, id)
	}
	return co.proxy.Do(req)
}

// relay copies a worker response to the client byte-for-byte — status,
// error envelope and Retry-After included — so a client cannot tell a
// coordinator's answer from the worker's own. It returns the decoded
// body for the coordinator's own bookkeeping when out is non-nil.
func relay(w http.ResponseWriter, resp *http.Response, out any) []byte {
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		writeError(w, fmt.Errorf("server: reading worker response: %w", err))
		return nil
	}
	for _, h := range []string{"Content-Type", "Retry-After", longPollHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(data) //nolint:errcheck // response committed
	if out != nil && resp.StatusCode >= 200 && resp.StatusCode <= 299 {
		json.Unmarshal(data, out) //nolint:errcheck // bookkeeping only
	}
	return data
}

// markWorkerFailed records a transport failure on addr: the worker is
// immediately unhealthy (probes will readmit it) and its cells are
// handed to the remaining workers in the background.
func (co *Coordinator) markWorkerFailed(addr string, cause error) {
	co.mu.Lock()
	var failed *coordWorker
	fails := 0
	for _, w := range co.workers {
		if w.addr == addr && w.healthy {
			w.healthy = false
			w.fails = max(w.fails, co.probeFails)
			failed = w
			fails = w.fails
		}
	}
	pending := co.pendingCellsLocked(addr)
	co.mu.Unlock()
	if failed != nil {
		co.warnf("worker %s unreachable (%v); reassigning its cells", addr, cause)
		co.log.Warn("worker health transition", "worker", addr,
			"oldState", "healthy", "newState", "unhealthy",
			"consecutiveFailures", fails, "reassignedCells", pending,
			"cause", cause.Error())
		go co.reassignWorker(addr)
	}
}

// pendingCellsLocked counts the non-terminal cells placed on addr — the
// reassignment workload a health transition implies. Callers hold co.mu.
func (co *Coordinator) pendingCellsLocked(addr string) int {
	n := 0
	for _, j := range co.jobs {
		if j.worker == addr && !j.snap.State.Terminal() {
			n++
		}
	}
	return n
}

// reassignWorker re-submits every non-terminal cell placed on addr to a
// new rendezvous pick. Determinism makes the handover invisible in the
// results: the new worker either re-simulates to byte-identical metrics
// or serves them from a shared cache.
func (co *Coordinator) reassignWorker(addr string) {
	co.mu.Lock()
	var moving []*coordJob
	for _, j := range co.jobs {
		if j.worker == addr && !j.snap.State.Terminal() {
			moving = append(moving, j)
		}
	}
	co.mu.Unlock()
	moved, failed := 0, 0
	for _, j := range moving {
		if _, err := co.placeJob(context.Background(), j.id, j.spec, j.owner, map[string]bool{addr: true}); err != nil {
			co.warnf("reassign %s off %s: %v", j.id, addr, err)
			failed++
			continue
		}
		co.mu.Lock()
		co.reassigned++
		co.mu.Unlock()
		moved++
	}
	if moved > 0 || failed > 0 {
		co.log.Info("cells reassigned", "worker", addr, "moved", moved, "failed", failed)
	}
}

// placeJob submits one cell to its rendezvous worker (excluding any in
// exclude), walking down the preference order as transport failures
// knock workers out. On success the placement is tracked and the
// worker's raw response returned.
func (co *Coordinator) placeJob(ctx context.Context, id string, spec api.JobSpec, identity string, exclude map[string]bool) (*http.Response, error) {
	if exclude == nil {
		exclude = make(map[string]bool)
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	for {
		co.mu.Lock()
		w := co.pickLocked(id, exclude)
		co.mu.Unlock()
		if w == nil {
			return nil, errNoWorkers()
		}
		placed := time.Now()
		resp, err := co.forward(ctx, w.addr, http.MethodPost, "/v1/jobs", identity, body)
		if err != nil {
			exclude[w.addr] = true
			co.markWorkerFailed(w.addr, err)
			continue
		}
		co.trackJob(id, spec, w.addr, identity, placed)
		return resp, nil
	}
}

// trackJob records (or moves) a cell's placement. placed is taken before
// the placement forward so the coordinator's span precedes the worker's.
func (co *Coordinator) trackJob(id string, spec api.JobSpec, workerAddr, identity string, placed time.Time) *coordJob {
	co.mu.Lock()
	defer co.mu.Unlock()
	j, ok := co.jobs[id]
	if !ok {
		j = &coordJob{id: id, spec: spec, owner: identity}
		j.snap = api.Job{ID: id, State: api.JobQueued, Spec: spec}
		co.jobs[id] = j
	}
	j.worker = workerAddr
	j.placedAt = placed
	return j
}

// observe folds a fresh worker snapshot into the placement record,
// caching the raw bytes of terminal states so future reads skip the
// round trip (and survive the worker retiring).
func (co *Coordinator) observe(snap api.Job, raw []byte) {
	if snap.ID == "" {
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	j, ok := co.jobs[snap.ID]
	if !ok {
		return
	}
	j.snap = snap
	if snap.State.Terminal() && j.terminal == nil && raw != nil {
		j.terminal = raw
	}
	if !snap.State.Terminal() {
		j.terminal = nil // canceled jobs can be re-enqueued
	}
}

// ---- handlers ----

func (co *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec api.JobSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&spec); err != nil {
		writeError(w, errBadRequest("decode job spec: %v", err))
		return
	}
	cref, ref, err := resolveSpec(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	id := cellID(cref, ref)
	resp, err := co.placeJob(r.Context(), id, spec, forwardIdentity(r), nil)
	if err != nil {
		writeError(w, err)
		return
	}
	var snap api.Job
	raw := relay(w, resp, &snap)
	co.observe(snap, raw)
}

func (co *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(longPollHeader, "supported")
	if _, he := parseWait(r); he != nil {
		writeError(w, he)
		return
	}
	id := r.PathValue("id")
	co.mu.Lock()
	j, tracked := co.jobs[id]
	var cached []byte
	var worker string
	if tracked {
		cached, worker = j.terminal, j.worker
	}
	co.mu.Unlock()

	if cached != nil {
		w.Header().Set("Content-Type", "application/json")
		w.Write(cached) //nolint:errcheck // response committed
		return
	}
	if !tracked {
		// Not placed through this coordinator: ask every worker (a peer
		// entry point or a direct client may have placed it).
		co.fanoutGet(w, r, "/v1/jobs/"+id)
		return
	}
	pq := "/v1/jobs/" + id
	if r.URL.RawQuery != "" {
		pq += "?" + r.URL.RawQuery
	}
	identity := forwardIdentity(r)
	for attempt := 0; ; attempt++ {
		resp, err := co.forward(r.Context(), worker, http.MethodGet, pq, identity, nil)
		if err != nil {
			if r.Context().Err() != nil {
				writeError(w, &httpError{status: http.StatusServiceUnavailable, msg: "server: client canceled"})
				return
			}
			co.markWorkerFailed(worker, err)
			// Replace the placement synchronously so this read (and the
			// retried forward) lands on the live worker.
			resp2, perr := co.placeJob(r.Context(), id, j.spec, j.owner, map[string]bool{worker: true})
			if perr != nil {
				writeError(w, perr)
				return
			}
			resp2.Body.Close()
			co.mu.Lock()
			co.reassigned++
			worker = co.jobs[id].worker
			co.mu.Unlock()
			if attempt >= len(co.opts.Workers) {
				writeError(w, errNoWorkers())
				return
			}
			continue
		}
		var snap api.Job
		raw := relay(w, resp, &snap)
		co.observe(snap, raw)
		return
	}
}

// handleJobProfile relays GET /v1/jobs/{id}/profile from the owning
// worker (or by fanout for cells placed elsewhere). The worker's payload
// — profile or 404 envelope — is proxied verbatim: profiles are
// deterministic artifacts, identical whichever worker produced them.
func (co *Coordinator) handleJobProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	co.mu.Lock()
	j, tracked := co.jobs[id]
	var worker string
	if tracked {
		worker = j.worker
	}
	co.mu.Unlock()
	path := "/v1/jobs/" + id + "/profile"
	if !tracked {
		co.fanoutGet(w, r, path)
		return
	}
	resp, err := co.forward(r.Context(), worker, http.MethodGet, path, forwardIdentity(r), nil)
	if err != nil {
		co.markWorkerFailed(worker, err)
		writeError(w, &httpError{status: http.StatusServiceUnavailable,
			msg: fmt.Sprintf("server: worker %s unreachable: %v", worker, err)})
		return
	}
	relay(w, resp, nil)
}

// handleJobTrace relays GET /v1/jobs/{id}/trace from the owning worker,
// prepending the coordinator's own placement marker so the timeline
// shows the fleet hop in front of the worker's lifecycle spans.
func (co *Coordinator) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	co.mu.Lock()
	j, tracked := co.jobs[id]
	var worker string
	var placedAt time.Time
	if tracked {
		worker, placedAt = j.worker, j.placedAt
	}
	co.mu.Unlock()
	path := "/v1/jobs/" + id + "/trace"
	if !tracked {
		co.fanoutGet(w, r, path)
		return
	}
	resp, err := co.forward(r.Context(), worker, http.MethodGet, path, forwardIdentity(r), nil)
	if err != nil {
		co.markWorkerFailed(worker, err)
		writeError(w, &httpError{status: http.StatusServiceUnavailable,
			msg: fmt.Sprintf("server: worker %s unreachable: %v", worker, err)})
		return
	}
	defer resp.Body.Close()
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if rerr != nil {
		writeError(w, fmt.Errorf("server: reading worker response: %w", rerr))
		return
	}
	var tr api.Trace
	if resp.StatusCode != http.StatusOK || json.Unmarshal(data, &tr) != nil {
		// Not a trace payload (error envelope, decode failure): proxy it
		// byte-for-byte like any other worker response.
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(data) //nolint:errcheck // response committed
		return
	}
	end := placedAt
	placed := api.Span{Name: "placed", Start: placedAt, End: &end,
		Attrs: map[string]string{"worker": worker}}
	tr.Spans = append([]api.Span{placed}, tr.Spans...)
	writeJSON(w, http.StatusOK, tr)
}

// fanoutGet proxies a GET to every worker until one answers non-404;
// otherwise the last (or a synthesized) 404 is relayed.
func (co *Coordinator) fanoutGet(w http.ResponseWriter, r *http.Request, path string) {
	co.mu.Lock()
	workers := make([]string, 0, len(co.workers))
	for _, wk := range co.workers {
		workers = append(workers, wk.addr)
	}
	co.mu.Unlock()
	identity := forwardIdentity(r)
	for _, addr := range workers {
		resp, err := co.forward(r.Context(), addr, http.MethodGet, path, identity, nil)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			continue
		}
		relay(w, resp, nil)
		return
	}
	writeError(w, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("server: unknown resource %q on any worker", path)})
}

func (co *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	co.mu.Lock()
	j, tracked := co.jobs[id]
	co.mu.Unlock()
	if !tracked {
		writeError(w, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("server: unknown job %q", id)})
		return
	}
	resp, err := co.forward(r.Context(), j.worker, http.MethodDelete, "/v1/jobs/"+id, forwardIdentity(r), nil)
	if err != nil {
		co.markWorkerFailed(j.worker, err)
		writeError(w, &httpError{status: http.StatusServiceUnavailable, msg: fmt.Sprintf("server: worker %s unreachable: %v", j.worker, err)})
		return
	}
	var snap api.Job
	raw := relay(w, resp, &snap)
	co.observe(snap, raw)
}

func (co *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
		writeError(w, errBadRequest("decode sweep request: %v", err))
		return
	}
	ex, err := expandSweep(req)
	if err != nil {
		writeError(w, err)
		return
	}
	id := sweepID(ex.cells)
	identity := forwardIdentity(r)

	// Shard the cells by rendezvous placement, then admit shard by
	// shard. Admission is all-or-nothing per worker already (the
	// daemon's atomic sweep admission); across workers the coordinator
	// compensates — if a later shard is rejected, the queued jobs of
	// admitted shards are canceled best-effort and the worker's own
	// error envelope is relayed, so the client retries one all-or-
	// nothing operation, never reasons about half a sweep.
	type shard struct {
		addr  string
		cells []resolvedCell
	}
	byID := make(map[string]api.Job, len(ex.cells))
	var admitted []shard
	rollback := func() {
		for _, sh := range admitted {
			for _, c := range sh.cells {
				if j, ok := byID[c.id]; ok && j.State == api.JobQueued {
					if resp, derr := co.forward(context.Background(), sh.addr, http.MethodDelete, "/v1/jobs/"+c.id, identity, nil); derr == nil {
						resp.Body.Close()
					}
				}
			}
		}
	}

	pending := ex.cells
	excluded := make(map[string]bool)
	for len(pending) > 0 {
		// Partition what's left over the currently routable workers.
		co.mu.Lock()
		parts := make(map[string][]resolvedCell)
		routable := false
		for _, c := range pending {
			if wk := co.pickLocked(c.id, excluded); wk != nil {
				parts[wk.addr] = append(parts[wk.addr], c)
				routable = true
			}
		}
		co.mu.Unlock()
		if !routable {
			rollback()
			writeError(w, errNoWorkers())
			return
		}
		addrs := make([]string, 0, len(parts))
		for addr := range parts {
			addrs = append(addrs, addr)
		}
		sort.Strings(addrs)
		var retry []resolvedCell
		for _, addr := range addrs {
			cells := parts[addr]
			specs := make([]api.JobSpec, len(cells))
			for i, c := range cells {
				specs[i] = c.spec
			}
			body, merr := json.Marshal(api.SweepRequest{Cells: specs})
			if merr != nil {
				rollback()
				writeError(w, merr)
				return
			}
			placed := time.Now()
			resp, ferr := co.forward(r.Context(), addr, http.MethodPost, "/v1/sweeps", identity, body)
			if ferr != nil {
				// Transport failure: the shard moves to the next pick.
				excluded[addr] = true
				co.markWorkerFailed(addr, ferr)
				retry = append(retry, cells...)
				continue
			}
			if resp.StatusCode < 200 || resp.StatusCode > 299 {
				// The worker rejected the shard (queue full, quota, drain):
				// undo the admitted shards and relay its envelope verbatim.
				rollback()
				relay(w, resp, nil)
				return
			}
			var sr api.SweepResponse
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
			resp.Body.Close()
			if rerr != nil || json.Unmarshal(data, &sr) != nil {
				rollback()
				writeError(w, fmt.Errorf("server: worker %s sweep response unreadable: %v", addr, rerr))
				return
			}
			for i, job := range sr.Jobs {
				byID[job.ID] = job
				co.trackJob(job.ID, cells[i].spec, addr, identity, placed)
				co.observe(job, nil)
			}
			admitted = append(admitted, shard{addr: addr, cells: cells})
		}
		pending = retry
	}

	// Merge the shard responses in the request's cell order — the same
	// order a single daemon returns — and register the sweep resource.
	out := api.SweepResponse{ID: id, Requested: ex.requested, Deduped: ex.requested - len(ex.cells)}
	for _, c := range ex.cells {
		out.Jobs = append(out.Jobs, byID[c.id])
	}
	co.mu.Lock()
	if rec, known := co.sweeps[id]; !known {
		rec = &sweepRec{
			id:          id,
			submittedAt: time.Now(),
			requested:   ex.requested,
			deduped:     ex.requested - len(ex.cells),
			jobIDs:      make([]string, len(ex.cells)),
			configs:     ex.configs,
			workloads:   ex.workloads,
			grid:        ex.grid,
		}
		for i, c := range ex.cells {
			rec.jobIDs[i] = c.id
		}
		co.sweeps[id] = rec
	} else if rec.grid == nil && ex.grid != nil {
		rec.configs, rec.workloads, rec.grid = ex.configs, ex.workloads, ex.grid
	}
	co.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// refreshJob fetches one cell's current snapshot from its worker,
// long-polling up to wait. Transport failures trigger an inline
// reassignment so a mid-sweep worker loss heals on the read path too,
// not only via the prober.
func (co *Coordinator) refreshJob(ctx context.Context, id string, wait time.Duration) (api.Job, error) {
	for attempt := 0; ; attempt++ {
		co.mu.Lock()
		j, ok := co.jobs[id]
		if !ok {
			co.mu.Unlock()
			return api.Job{}, fmt.Errorf("server: untracked job %q", id)
		}
		snap, worker := j.snap, j.worker
		spec, owner := j.spec, j.owner
		co.mu.Unlock()
		if snap.State.Terminal() {
			return snap, nil
		}
		pq := "/v1/jobs/" + id
		if wait > 0 {
			pq += "?wait=" + wait.String()
		}
		resp, err := co.forward(ctx, worker, http.MethodGet, pq, owner, nil)
		if err != nil {
			if ctx.Err() != nil {
				return snap, nil
			}
			co.markWorkerFailed(worker, err)
			resp2, perr := co.placeJob(ctx, id, spec, owner, map[string]bool{worker: true})
			if perr != nil {
				return snap, perr
			}
			resp2.Body.Close()
			co.mu.Lock()
			co.reassigned++
			co.mu.Unlock()
			if attempt >= len(co.opts.Workers) {
				return snap, errNoWorkers()
			}
			continue
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		var fresh api.Job
		if rerr != nil || resp.StatusCode != http.StatusOK || json.Unmarshal(data, &fresh) != nil {
			return snap, nil // stale snapshot beats a failed read
		}
		co.observe(fresh, data)
		return fresh, nil
	}
}

func (co *Coordinator) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(longPollHeader, "supported")
	d, he := parseWait(r)
	if he != nil {
		writeError(w, he)
		return
	}
	id := r.PathValue("id")
	co.mu.Lock()
	rec, ok := co.sweeps[id]
	co.mu.Unlock()
	if !ok {
		writeError(w, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("server: unknown sweep %q", id)})
		return
	}
	deadline := time.Now().Add(d)
	for {
		snaps := make(map[string]api.Job, len(rec.jobIDs))
		pendingID := ""
		for _, jid := range rec.jobIDs {
			snap, err := co.refreshJob(r.Context(), jid, 0)
			if err != nil {
				writeError(w, err)
				return
			}
			snaps[jid] = snap
			if !snap.State.Terminal() && pendingID == "" {
				pendingID = jid
			}
		}
		remaining := time.Until(deadline)
		if pendingID == "" || remaining <= 0 || r.Context().Err() != nil {
			co.mu.Lock()
			sw := rec.view(func(jid string) api.Job { return snaps[jid] })
			co.mu.Unlock()
			writeJSON(w, http.StatusOK, sw)
			return
		}
		// Park the remaining wait on one pending cell's worker: a true
		// long-poll round, so the coordinator adds no interval polling
		// of its own. Graceful drains make workers answer early; the
		// loop then re-assembles and parks again within the deadline.
		if remaining > waitRound {
			remaining = waitRound
		}
		if _, err := co.refreshJob(r.Context(), pendingID, remaining); err != nil {
			writeError(w, err)
			return
		}
	}
}

// waitRound caps one upstream long-poll leg of a coordinator sweep wait.
const waitRound = 30 * time.Second

func (co *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	lq, he := parseListQuery(r.URL.Query())
	if he != nil {
		writeError(w, he)
		return
	}
	co.mu.Lock()
	workers := make([]string, 0, len(co.workers))
	for _, wk := range co.workers {
		workers = append(workers, wk.addr)
	}
	co.mu.Unlock()

	// Fan the identical query out to every worker (the shared token
	// format makes a client cursor valid fleet-wide), then k-way merge:
	// union, dedup by ID — a reassigned cell exists on two workers;
	// the currently tracked placement wins — re-sort, re-cut. A worker
	// that truncated its page has revealed its jobs only up to its last
	// returned key, so the merged page must not emit past the minimum
	// such horizon (items beyond it could interleave with the hidden
	// remainder) and must carry a token even when the visible union
	// fits the limit — otherwise a walk stops early whenever the tail
	// of the listing lives on a single worker.
	identity := forwardIdentity(r)
	pq := "/v1/jobs"
	if r.URL.RawQuery != "" {
		pq += "?" + r.URL.RawQuery
	}
	merged := make(map[string]api.Job)
	var horizon *listKey
	for _, addr := range workers {
		resp, err := co.forward(r.Context(), addr, http.MethodGet, pq, identity, nil)
		if err != nil {
			co.markWorkerFailed(addr, err)
			continue
		}
		var page api.JobList
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		if json.Unmarshal(data, &page) != nil {
			continue
		}
		if page.NextPageToken != "" && len(page.Jobs) > 0 {
			k := jobListKey(page.Jobs[len(page.Jobs)-1])
			if horizon == nil || k.less(*horizon) {
				horizon = &k
			}
		}
		for _, j := range page.Jobs {
			co.mu.Lock()
			tracked, ok := co.jobs[j.ID]
			preferred := !ok || tracked.worker == addr
			co.mu.Unlock()
			if _, have := merged[j.ID]; !have || preferred {
				merged[j.ID] = j
			}
		}
	}
	jobs := make([]api.Job, 0, len(merged))
	for _, j := range merged {
		if horizon != nil && horizon.less(jobListKey(j)) {
			continue // beyond a truncated worker's view; next round re-fetches it
		}
		jobs = append(jobs, j)
	}
	list := paginate(jobs, lq)
	if horizon != nil && list.NextPageToken == "" {
		// Some worker has more past the horizon: keep the walk going from
		// the last emitted key (or the horizon itself if the state filter
		// emptied this page).
		k := *horizon
		if n := len(list.Jobs); n > 0 {
			k = jobListKey(list.Jobs[n-1])
		}
		list.NextPageToken = encodePageToken(k)
	}
	writeJSON(w, http.StatusOK, list)
}

func (co *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	co.mu.Lock()
	workers := make([]string, 0, len(co.workers))
	for _, wk := range co.workers {
		workers = append(workers, wk.addr)
	}
	co.mu.Unlock()
	var merged api.Stats
	merged.Jobs = make(map[api.JobState]int)
	identity := forwardIdentity(r)
	for _, addr := range workers {
		resp, err := co.forward(r.Context(), addr, http.MethodGet, "/v1/stats", identity, nil)
		if err != nil {
			co.markWorkerFailed(addr, err)
			continue
		}
		var st api.Stats
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK || json.Unmarshal(data, &st) != nil {
			continue
		}
		merged.Scheduler.Simulated += st.Scheduler.Simulated
		merged.Scheduler.CacheHits += st.Scheduler.CacheHits
		merged.Scheduler.DiskHits += st.Scheduler.DiskHits
		merged.Scheduler.SimCycles += st.Scheduler.SimCycles
		merged.Workers += st.Workers
		merged.QueueDepth += st.QueueDepth
		merged.QueueCap += st.QueueCap
		for state, n := range st.Jobs {
			merged.Jobs[state] += n
		}
		merged.RateLimited += st.RateLimited
		merged.QuotaDenied += st.QuotaDenied
		merged.DiskCacheEntries += st.DiskCacheEntries
		merged.DiskCacheBytes += st.DiskCacheBytes
		merged.DiskCacheEvictions += st.DiskCacheEvictions
	}
	merged.Cluster = co.clusterStats()
	writeJSON(w, http.StatusOK, merged)
}

func (co *Coordinator) clusterStats() *api.ClusterStats {
	co.mu.Lock()
	defer co.mu.Unlock()
	cs := &api.ClusterStats{
		TrackedJobs:    len(co.jobs),
		Sweeps:         len(co.sweeps),
		ReassignedJobs: co.reassigned,
	}
	perWorker := make(map[string]int)
	for _, j := range co.jobs {
		perWorker[j.worker]++
	}
	for _, wk := range co.workers {
		cs.Workers = append(cs.Workers, api.WorkerStatus{
			Addr:                wk.addr,
			Healthy:             wk.healthy,
			Draining:            wk.draining,
			ConsecutiveFailures: wk.fails,
			Jobs:                perWorker[wk.addr],
			LastProbe:           wk.lastProbe,
		})
		if wk.healthy && !wk.draining {
			cs.Healthy++
		}
	}
	return cs
}

func (co *Coordinator) handleCluster(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.ClusterStatus{Workers: co.clusterStats().Workers})
}

func (co *Coordinator) handleDrain(w http.ResponseWriter, r *http.Request) {
	var req api.DrainRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, errBadRequest("decode drain request: %v", err))
		return
	}
	addr := strings.TrimRight(req.Addr, "/")
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	co.mu.Lock()
	var target *coordWorker
	for _, wk := range co.workers {
		if wk.addr == addr {
			target = wk
		}
	}
	if target == nil {
		co.mu.Unlock()
		writeError(w, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("server: unknown worker %q", req.Addr)})
		return
	}
	changed := target.draining != req.Drain
	target.draining = req.Drain
	co.mu.Unlock()
	if changed && req.Drain {
		co.reassignWorker(addr)
	}
	writeJSON(w, http.StatusOK, api.ClusterStatus{Workers: co.clusterStats().Workers})
}

// ---- health probing ----

func (co *Coordinator) prober(interval time.Duration) {
	defer co.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
			co.probeAll()
		}
	}
}

func (co *Coordinator) probeAll() {
	co.mu.Lock()
	workers := make([]*coordWorker, len(co.workers))
	copy(workers, co.workers)
	co.mu.Unlock()
	for _, wk := range workers {
		ok := co.probeOne(wk.addr)
		var lost, recovered string
		var lostPending, fails int
		co.mu.Lock()
		wk.lastProbe = time.Now()
		if ok {
			if !wk.healthy {
				recovered = wk.addr
				fails = wk.fails
			}
			wk.fails = 0
			wk.healthy = true
		} else {
			wk.fails++
			fails = wk.fails
			if wk.healthy && wk.fails >= co.probeFails {
				wk.healthy = false
				lost = wk.addr
				lostPending = co.pendingCellsLocked(wk.addr)
			}
		}
		co.mu.Unlock()
		if recovered != "" {
			// The recovery transition is logged symmetrically with the loss:
			// operators watching the stream see both edges, not just one.
			co.log.Info("worker health transition", "worker", recovered,
				"oldState", "unhealthy", "newState", "healthy",
				"consecutiveFailures", fails, "reassignedCells", 0)
		}
		if lost != "" {
			co.warnf("worker %s failed %d consecutive probes; reassigning its cells", lost, co.probeFails)
			co.log.Warn("worker health transition", "worker", lost,
				"oldState", "healthy", "newState", "unhealthy",
				"consecutiveFailures", fails, "reassignedCells", lostPending)
			co.reassignWorker(lost)
		}
	}
}

func (co *Coordinator) probeOne(addr string) bool {
	resp, err := co.probe.Get(addr + "/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10)) //nolint:errcheck // drain for keep-alive
	return resp.StatusCode == http.StatusOK
}
