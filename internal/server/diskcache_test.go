package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gpumembw/client"
	"gpumembw/internal/config"
	"gpumembw/internal/core"
	"gpumembw/internal/exp"
)

// TestWarmRestartServesFromDiskCache is the acceptance scenario for
// -cache-dir: a restarted daemon pointed at the same directory serves
// previously simulated cells without re-simulating, byte-identically.
func TestWarmRestartServesFromDiskCache(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := client.JobSpec{Config: "baseline", Bench: testBench}

	boot := func() (*Server, *client.Client, func()) {
		srv, err := New(Options{Workers: 2, CacheDir: dir, ErrLog: os.Stderr})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		return srv, client.New(ts.URL), func() {
			ts.Close()
			ctxTO, cancel := context.WithTimeout(ctx, 30*time.Second)
			defer cancel()
			srv.Shutdown(ctxTO) //nolint:errcheck
		}
	}

	srv1, c1, stop1 := boot()
	cold, err := c1.Run(ctx, spec, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if cold.State != client.JobDone {
		t.Fatalf("cold run: %s (%s)", cold.State, cold.Error)
	}
	if st := srv1.Stats(); st.Scheduler.Simulated != 1 || st.DiskCacheEntries != 1 {
		t.Fatalf("cold stats = %+v, want 1 simulated, 1 cache entry", st)
	}
	stop1()

	// Restart against the same directory: the cell must come off disk.
	srv2, c2, stop2 := boot()
	defer stop2()
	warm, err := c2.Run(ctx, spec, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if warm.State != client.JobDone {
		t.Fatalf("warm run: %s (%s)", warm.State, warm.Error)
	}
	st := srv2.Stats()
	if st.Scheduler.Simulated != 0 {
		t.Fatalf("warm restart re-simulated: %+v", st.Scheduler)
	}
	if st.Scheduler.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", st.Scheduler.DiskHits)
	}
	got, want := canonicalJSON(t, warm.Metrics), canonicalJSON(t, cold.Metrics)
	if !bytes.Equal(got, want) {
		t.Fatalf("warm metrics differ from cold:\n%s\nvs\n%s", got, want)
	}
}

func TestDiskCacheIgnoresCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	cache, err := newDiskCache(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Plant garbage under the exact cell path and make sure Get treats it
	// as a miss instead of failing or returning junk.
	j := exp.BenchJob(config.Baseline(), testBench)
	path := filepath.Join(dir, cellID(j.Config, j.Workload)+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(j); ok {
		t.Fatal("corrupt entry served as a hit")
	}
}

func TestDiskCacheRejectsOtherSimVersions(t *testing.T) {
	dir := t.TempDir()
	cache, err := newDiskCache(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	j := exp.BenchJob(config.Baseline(), testBench)
	cache.Put(j, core.Metrics{Benchmark: testBench, Cycles: 42})
	if _, ok := cache.Get(j); !ok {
		t.Fatal("fresh entry missed")
	}
	// Rewrite the entry as if an older simulator had produced it: it must
	// be treated as a miss, never served.
	data, err := json.Marshal(cacheEntry{
		Schema:     cacheSchema,
		SimVersion: "ispass17-sim-0",
		Bench:      testBench,
		Metrics:    core.Metrics{Benchmark: testBench, Cycles: 41},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cache.path(j), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(j); ok {
		t.Fatal("entry from a different simulator version served as a hit")
	}
}
