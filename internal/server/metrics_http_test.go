package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpumembw/client"
	"gpumembw/internal/api"
	"gpumembw/internal/metrics"
)

// scrape fetches /metrics and parses it with the package's own strict
// exposition validator — the "scrapes cleanly" gate.
func scrape(t *testing.T, base string) *metrics.Scrape {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := metrics.Parse(body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	return sc
}

// mustValue asserts a series exists and returns it.
func mustValue(t *testing.T, sc *metrics.Scrape, name string, labels ...string) float64 {
	t.Helper()
	v, ok := sc.Value(name, labels...)
	if !ok {
		t.Fatalf("metric %s%v missing from exposition", name, labels)
	}
	return v
}

// reconcile asserts that every counter and gauge /metrics shares with
// /v1/stats carries exactly the same value.
func reconcile(t *testing.T, sc *metrics.Scrape, st api.Stats) {
	t.Helper()
	checks := []struct {
		name   string
		labels []string
		want   float64
	}{
		{"gpusimd_scheduler_simulated_total", nil, float64(st.Scheduler.Simulated)},
		{"gpusimd_scheduler_memo_hits_total", nil, float64(st.Scheduler.CacheHits)},
		{"gpusimd_scheduler_result_cache_hits_total", nil, float64(st.Scheduler.DiskHits)},
		{"gpusimd_scheduler_sim_cycles_total", nil, float64(st.Scheduler.SimCycles)},
		{"gpusimd_workers", nil, float64(st.Workers)},
		{"gpusimd_queue_depth", nil, float64(st.QueueDepth)},
		{"gpusimd_queue_capacity", nil, float64(st.QueueCap)},
		{"gpusimd_rate_limited_total", nil, float64(st.RateLimited)},
		{"gpusimd_quota_denied_total", nil, float64(st.QuotaDenied)},
	}
	for _, state := range jobStates {
		checks = append(checks, struct {
			name   string
			labels []string
			want   float64
		}{"gpusimd_jobs", []string{"state=" + string(state)}, float64(st.Jobs[state])})
	}
	if st.CacheDir != "" {
		checks = append(checks,
			struct {
				name   string
				labels []string
				want   float64
			}{"gpusimd_disk_cache_entries", nil, float64(st.DiskCacheEntries)},
			struct {
				name   string
				labels []string
				want   float64
			}{"gpusimd_disk_cache_bytes", nil, float64(st.DiskCacheBytes)},
			struct {
				name   string
				labels []string
				want   float64
			}{"gpusimd_disk_cache_max_bytes", nil, float64(st.DiskCacheMaxBytes)},
			struct {
				name   string
				labels []string
				want   float64
			}{"gpusimd_disk_cache_evictions_total", nil, float64(st.DiskCacheEvictions)})
	}
	for _, c := range checks {
		if got := mustValue(t, sc, c.name, c.labels...); got != c.want {
			t.Errorf("metric %s%v = %v, stats say %v", c.name, c.labels, got, c.want)
		}
	}
}

func TestMetricsEndpointReconcilesWithStats(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 2, CacheDir: t.TempDir(), CacheMaxBytes: 1 << 20})
	ctx := context.Background()
	base := c.BaseURL()

	sp := tinySpec(0)
	if _, err := c.Run(ctx, client.JobSpec{Config: "baseline", InlineSpec: &sp}, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Duplicate submission: a memo hit, visible in both views.
	if _, err := c.Run(ctx, client.JobSpec{Config: "baseline", InlineSpec: &sp}, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	sc := scrape(t, base)
	st := srv.Stats()
	reconcile(t, sc, st)
	if st.Scheduler.Simulated != 1 || st.Scheduler.SimCycles == 0 {
		t.Fatalf("scheduler stats = %+v, want 1 simulation with nonzero cycles", st.Scheduler)
	}

	// The scrape itself and the submissions must appear in the request
	// counters, labeled by route pattern, with latency histograms that
	// carry the same observation counts.
	if v := mustValue(t, sc, "gpusimd_http_requests_total", "endpoint=POST /v1/jobs", "code=201"); v != 1 {
		t.Fatalf("POST 201 count = %v, want 1", v)
	}
	if v := mustValue(t, sc, "gpusimd_http_requests_total", "endpoint=POST /v1/jobs", "code=200"); v != 1 {
		t.Fatalf("POST 200 (dedup) count = %v, want 1", v)
	}
	reqs := sc.Sum("gpusimd_http_requests_total")
	if obs, ok := sc.Value("gpusimd_http_request_seconds_count", "endpoint=POST /v1/jobs"); !ok || obs != 2 {
		t.Fatalf("latency observations for POST /v1/jobs = %v,%v want 2", obs, ok)
	}
	if reqs < 3 { // 2 submits + at least one poll
		t.Fatalf("total requests = %v, want >= 3", reqs)
	}
}

func TestRateLimitReturns429WithRetryAfter(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 1, RateLimit: 0.01, RateBurst: 2})
	ctx := context.Background()

	// Burst of 2: two mutating requests pass, the third is throttled.
	for i := 0; i < 2; i++ {
		sp := tinySpec(i)
		if _, err := c.Submit(ctx, client.JobSpec{Config: "baseline", InlineSpec: &sp}); err != nil {
			t.Fatalf("submit %d within burst: %v", i, err)
		}
	}
	sp := tinySpec(2)
	_, err := c.Submit(ctx, client.JobSpec{Config: "baseline", InlineSpec: &sp})
	var apiErr *client.APIError
	if !errorsAs(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit = %v, want 429", err)
	}
	if apiErr.RetryAfter < time.Second {
		t.Fatalf("Retry-After = %v, want >= 1s", apiErr.RetryAfter)
	}

	// Read-side endpoints stay unthrottled.
	if _, err := c.Stats(ctx); err != nil {
		t.Fatalf("stats while throttled: %v", err)
	}
	if st := srv.Stats(); st.RateLimited != 1 {
		t.Fatalf("rateLimited = %d, want 1", st.RateLimited)
	}
}

func TestPerClientInflightQuota(t *testing.T) {
	srv, err := newServer(Options{Workers: 1, MaxInflightPerClient: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	submit := func(key string, i int) (*http.Response, error) {
		sp := tinySpec(i)
		body, err := json.Marshal(api.JobSpec{Config: "baseline", InlineSpec: &sp})
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(string(body)))
		if err != nil {
			return nil, err
		}
		req.Header.Set(apiKeyHeader, key)
		return http.DefaultClient.Do(req)
	}
	status := func(key string, i int) int {
		resp, err := submit(key, i)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Workers are not started, so every accepted job stays in flight.
	if s := status("alice", 0); s != http.StatusCreated {
		t.Fatalf("alice job 0: %d", s)
	}
	if s := status("alice", 1); s != http.StatusCreated {
		t.Fatalf("alice job 1: %d", s)
	}
	resp, err := submit("alice", 2)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice over quota: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota 429 without Retry-After")
	}

	// Another client has its own budget.
	if s := status("bob", 3); s != http.StatusCreated {
		t.Fatalf("bob job: %d", s)
	}

	// Canceling one of alice's jobs refunds her quota.
	srv.mu.Lock()
	var aliceJob *job
	for _, j := range srv.jobs {
		if j.owner == "key:alice" {
			aliceJob = j
			break
		}
	}
	srv.mu.Unlock()
	if aliceJob == nil {
		t.Fatal("no job charged to alice")
	}
	if _, err := srv.cancelJob(aliceJob.ID); err != nil {
		t.Fatal(err)
	}
	if s := status("alice", 4); s != http.StatusCreated {
		t.Fatalf("alice after refund: %d, want 201", s)
	}
	if st := srv.Stats(); st.QuotaDenied != 1 {
		t.Fatalf("quotaDenied = %d, want 1", st.QuotaDenied)
	}
}

// TestSweepQuotaIsAtomic: a sweep that would exceed the client's quota
// rejects whole — no cells are enqueued.
func TestSweepQuotaIsAtomic(t *testing.T) {
	srv, err := newServer(Options{Workers: 1, MaxInflightPerClient: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var inline []string
	for i := 0; i < 3; i++ {
		b, err := json.Marshal(tinySpec(i))
		if err != nil {
			t.Fatal(err)
		}
		inline = append(inline, string(b))
	}
	body := `{"configs":["baseline"],"inlineSpecs":[` + strings.Join(inline, ",") + `]}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweeps", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(apiKeyHeader, "carol")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("3-cell sweep under quota 2: %d, want 429", resp.StatusCode)
	}
	if st := srv.Stats(); len(st.Jobs) != 0 {
		t.Fatalf("rejected sweep leaked jobs: %v", st.Jobs)
	}
}
