package server

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"gpumembw/internal/core"
	"gpumembw/internal/exp"
)

// cacheSchema versions the on-disk entry layout; entries written by an
// incompatible daemon are ignored (and overwritten on the next Put).
const cacheSchema = 1

// cacheEntry is one persisted simulation result. Like the scheduler's
// memo cache, the stored metrics carry the config label of whichever job
// simulated the cell first. SimVersion pins the cycle engine's behavior:
// entries written by a simulator whose output differs (core.SimVersion
// bumped) are treated as misses, so a reused -cache-dir can never serve
// metrics that a freshly built `gpusim -json` would not reproduce.
type cacheEntry struct {
	Schema     int          `json:"schema"`
	SimVersion string       `json:"simVersion"`
	Bench      string       `json:"bench"`
	Config     string       `json:"config"`
	Metrics    core.Metrics `json:"metrics"`
}

// diskCache persists one JSON file per simulation cell, named by the
// cell's content hash, so a restarted daemon (same -cache-dir) serves
// previously simulated cells without re-simulating. It implements
// exp.ResultCache; I/O failures degrade to cache misses, reported once
// per operation on errlog.
type diskCache struct {
	dir     string
	errlog  io.Writer
	entries atomic.Int64 // counted once at startup, bumped on new Puts
}

func newDiskCache(dir string, errlog io.Writer) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: create cache dir: %w", err)
	}
	c := &diskCache{dir: dir, errlog: errlog}
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: read cache dir: %w", err)
	}
	for _, e := range dirents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			c.entries.Add(1)
		}
	}
	return c, nil
}

func (c *diskCache) path(j exp.Job) string {
	return filepath.Join(c.dir, j.CellID()+".json")
}

func (c *diskCache) warnf(format string, args ...any) {
	if c.errlog != nil {
		fmt.Fprintf(c.errlog, format+"\n", args...)
	}
}

// Get implements exp.ResultCache.
func (c *diskCache) Get(j exp.Job) (core.Metrics, bool) {
	data, err := os.ReadFile(c.path(j))
	if err != nil {
		if !os.IsNotExist(err) {
			c.warnf("cache read %s: %v", c.path(j), err)
		}
		return core.Metrics{}, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Schema != cacheSchema {
		c.warnf("cache entry %s ignored (schema %d, err %v)", c.path(j), e.Schema, err)
		return core.Metrics{}, false
	}
	if e.SimVersion != core.SimVersion {
		c.warnf("cache entry %s ignored (simulator %q, running %q)", c.path(j), e.SimVersion, core.SimVersion)
		return core.Metrics{}, false
	}
	return e.Metrics, true
}

// Put implements exp.ResultCache. The write is atomic (temp file +
// rename) so a crashed daemon never leaves a truncated entry behind.
func (c *diskCache) Put(j exp.Job, m core.Metrics) {
	data, err := json.Marshal(cacheEntry{
		Schema:     cacheSchema,
		SimVersion: core.SimVersion,
		Bench:      j.Workload.Label(),
		Config:     j.Config.Label(),
		Metrics:    m,
	})
	if err != nil {
		c.warnf("cache marshal %s: %v", c.path(j), err)
		return
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		c.warnf("cache write: %v", err)
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		c.warnf("cache write %s: %v %v", c.path(j), werr, cerr)
		return
	}
	path := c.path(j)
	_, statErr := os.Stat(path)
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		c.warnf("cache rename %s: %v", path, err)
		return
	}
	if os.IsNotExist(statErr) {
		c.entries.Add(1)
	}
}

// Len reports the number of persisted entries without touching the disk.
func (c *diskCache) Len() int {
	return int(c.entries.Load())
}
