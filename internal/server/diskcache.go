package server

import (
	"bufio"
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"gpumembw/internal/core"
	"gpumembw/internal/exp"
	"gpumembw/internal/obsv"
)

// cacheSchema versions the on-disk entry layout; entries written by an
// incompatible daemon are ignored (and overwritten on the next Put).
const cacheSchema = 1

// journalName is the access-order journal kept next to the spill files:
// one cell ID per line, most recent last. Replayed at startup so LRU
// recency survives restarts; compacted when it grows past
// journalCompactFactor times the entry count.
const journalName = "lru.journal"

const journalCompactFactor = 8

// cacheEntry is one persisted simulation result. Like the scheduler's
// memo cache, the stored metrics carry the config label of whichever job
// simulated the cell first. SimVersion pins the cycle engine's behavior:
// entries written by a simulator whose output differs (core.SimVersion
// bumped) are treated as misses, so a reused -cache-dir can never serve
// metrics that a freshly built `gpusim -json` would not reproduce.
type cacheEntry struct {
	Schema     int           `json:"schema"`
	SimVersion string        `json:"simVersion"`
	Bench      string        `json:"bench"`
	Config     string        `json:"config"`
	Metrics    core.Metrics  `json:"metrics"`
	Profile    *obsv.Profile `json:"profile,omitempty"` // present only for profiled runs
}

// cacheRecord is the in-memory accounting for one spill file.
type cacheRecord struct {
	id   string
	size int64
}

// diskCache persists one JSON file per simulation cell, named by the
// cell's content hash, so a restarted daemon (same -cache-dir) serves
// previously simulated cells without re-simulating. It implements
// exp.ResultCache; I/O failures degrade to cache misses, reported once
// per operation on errlog.
//
// When maxBytes > 0 the cache is bounded: entry sizes are accounted on
// write and the least-recently-used entries are evicted until the total
// fits. Recency is persisted in an append-only journal so a restart
// evicts the same cold entries a long-lived daemon would. Eviction never
// changes results — an evicted cell re-simulates to the byte-identical
// payload (the determinism gate's promise) — it only costs time. The
// bound is honored down to a floor of one entry: a single entry larger
// than maxBytes is kept, because serving one cell beats serving none.
type diskCache struct {
	dir      string
	errlog   io.Writer
	maxBytes int64

	mu           sync.Mutex
	entries      map[string]*list.Element // cell ID -> *cacheRecord element
	lru          *list.List               // front = most recently used
	bytes        int64
	evictions    int64
	journal      *os.File
	journalLines int
}

func newDiskCache(dir string, maxBytes int64, errlog io.Writer) (*diskCache, error) {
	if maxBytes < 0 {
		return nil, fmt.Errorf("server: invalid cache bound %d bytes: must be >= 0 (0 means unbounded)", maxBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: create cache dir: %w", err)
	}
	c := &diskCache{
		dir:      dir,
		errlog:   errlog,
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
	if err := c.load(); err != nil {
		return nil, err
	}
	return c, nil
}

// load scans the spill directory, orders entries oldest-first by mtime,
// then replays the access journal to recover true recency, evicts down
// to the bound, and compacts the journal.
func (c *diskCache) load() error {
	dirents, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("server: read cache dir: %w", err)
	}
	type stat struct {
		rec cacheRecord
		mod int64
	}
	var stats []stat
	for _, e := range dirents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			c.warnf("cache stat %s: %v", e.Name(), err)
			continue
		}
		stats = append(stats, stat{
			rec: cacheRecord{id: strings.TrimSuffix(e.Name(), ".json"), size: info.Size()},
			mod: info.ModTime().UnixNano(),
		})
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].mod < stats[j].mod })
	for _, st := range stats {
		rec := st.rec
		c.entries[rec.id] = c.lru.PushFront(&rec)
		c.bytes += rec.size
	}

	// Replay the journal: each line promotes its cell to most-recent.
	// Unknown IDs (entries later evicted or removed) are skipped.
	jpath := filepath.Join(c.dir, journalName)
	if f, err := os.Open(jpath); err == nil {
		scanner := bufio.NewScanner(f)
		for scanner.Scan() {
			if el, ok := c.entries[strings.TrimSpace(scanner.Text())]; ok {
				c.lru.MoveToFront(el)
			}
		}
		if err := scanner.Err(); err != nil {
			c.warnf("cache journal read: %v", err)
		}
		f.Close()
	} else if !os.IsNotExist(err) {
		c.warnf("cache journal open: %v", err)
	}

	c.evictLocked()
	if err := c.compactJournalLocked(); err != nil {
		return err
	}
	return nil
}

// compactJournalLocked rewrites the journal as the current LRU order
// (oldest first) and reopens it for appending. Callers hold c.mu (or own
// the cache exclusively during load).
func (c *diskCache) compactJournalLocked() error {
	if c.journal != nil {
		c.journal.Close()
		c.journal = nil
	}
	jpath := filepath.Join(c.dir, journalName)
	tmp, err := os.CreateTemp(c.dir, "journal-*.tmp")
	if err != nil {
		return fmt.Errorf("server: cache journal: %w", err)
	}
	w := bufio.NewWriter(tmp)
	lines := 0
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		fmt.Fprintln(w, el.Value.(*cacheRecord).id)
		lines++
	}
	if err := w.Flush(); err == nil {
		err = tmp.Close()
		if err == nil {
			err = os.Rename(tmp.Name(), jpath)
		}
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: cache journal: %w", err)
	}
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("server: cache journal: %w", err)
	}
	c.journal = f
	c.journalLines = lines
	return nil
}

// touchLocked promotes id to most-recent and records the access in the
// journal, compacting when the journal outgrows the entry count.
func (c *diskCache) touchLocked(id string, el *list.Element) {
	c.lru.MoveToFront(el)
	if c.journal != nil {
		if _, err := fmt.Fprintln(c.journal, id); err != nil {
			c.warnf("cache journal append: %v", err)
		}
		c.journalLines++
		if c.journalLines > journalCompactFactor*max(c.lru.Len(), 128) {
			if err := c.compactJournalLocked(); err != nil {
				c.warnf("%v", err)
			}
		}
	}
}

// evictLocked removes least-recently-used entries until the cache fits
// its bound, keeping at least one entry. Callers hold c.mu.
func (c *diskCache) evictLocked() {
	if c.maxBytes == 0 {
		return
	}
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		el := c.lru.Back()
		rec := el.Value.(*cacheRecord)
		if err := os.Remove(filepath.Join(c.dir, rec.id+".json")); err != nil && !os.IsNotExist(err) {
			c.warnf("cache evict %s: %v", rec.id, err)
		}
		c.lru.Remove(el)
		delete(c.entries, rec.id)
		c.bytes -= rec.size
		c.evictions++
	}
}

func (c *diskCache) path(j exp.Job) string {
	return filepath.Join(c.dir, j.CellID()+".json")
}

func (c *diskCache) warnf(format string, args ...any) {
	if c.errlog != nil {
		fmt.Fprintf(c.errlog, format+"\n", args...)
	}
}

// Get implements exp.ResultCache. Corrupt, truncated, zero-byte or
// stale-versioned spill files are misses — the cell re-simulates and the
// next Put overwrites the damage — never errors or poisoned results.
func (c *diskCache) Get(j exp.Job) (core.Metrics, bool) {
	e, ok := c.read(j)
	return e.Metrics, ok
}

// GetProfile implements exp.ProfileCache: a hit whose entry was written
// by an unprofiled run returns a nil profile — the scheduler treats that
// as "metrics only" and re-simulates with the profiler attached.
func (c *diskCache) GetProfile(j exp.Job) (core.Metrics, *obsv.Profile, bool) {
	e, ok := c.read(j)
	return e.Metrics, e.Profile, ok
}

// read loads and validates one spill entry, touching its LRU recency.
func (c *diskCache) read(j exp.Job) (cacheEntry, bool) {
	id := j.CellID()
	data, err := os.ReadFile(filepath.Join(c.dir, id+".json"))
	if err != nil {
		if !os.IsNotExist(err) {
			c.warnf("cache read %s: %v", id, err)
		}
		return cacheEntry{}, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Schema != cacheSchema {
		c.warnf("cache entry %s ignored (schema %d, err %v)", id, e.Schema, err)
		return cacheEntry{}, false
	}
	if e.SimVersion != core.SimVersion {
		c.warnf("cache entry %s ignored (simulator %q, running %q)", id, e.SimVersion, core.SimVersion)
		return cacheEntry{}, false
	}
	c.mu.Lock()
	if el, ok := c.entries[id]; ok {
		c.touchLocked(id, el)
	}
	c.mu.Unlock()
	return e, true
}

// Put implements exp.ResultCache. The write is atomic (temp file +
// rename) so a crashed daemon never leaves a truncated entry behind;
// size accounting and LRU eviction run under the cache lock after the
// rename lands.
func (c *diskCache) Put(j exp.Job, m core.Metrics) {
	c.write(j, m, nil)
}

// PutProfile implements exp.ProfileCache: the entry carries the profile
// alongside the metrics, so a later disk hit returns both. Profiles are
// cache-tier artifacts — a disk-hit job returns the cached profile.
func (c *diskCache) PutProfile(j exp.Job, m core.Metrics, p *obsv.Profile) {
	c.write(j, m, p)
}

func (c *diskCache) write(j exp.Job, m core.Metrics, p *obsv.Profile) {
	id := j.CellID()
	data, err := json.Marshal(cacheEntry{
		Schema:     cacheSchema,
		SimVersion: core.SimVersion,
		Bench:      j.Workload.Label(),
		Config:     j.Config.Label(),
		Metrics:    m,
		Profile:    p,
	})
	if err != nil {
		c.warnf("cache marshal %s: %v", id, err)
		return
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		c.warnf("cache write: %v", err)
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		c.warnf("cache write %s: %v %v", id, werr, cerr)
		return
	}
	path := filepath.Join(c.dir, id+".json")
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		c.warnf("cache rename %s: %v", path, err)
		return
	}
	size := int64(len(data))
	c.mu.Lock()
	if el, ok := c.entries[id]; ok {
		rec := el.Value.(*cacheRecord)
		c.bytes += size - rec.size
		rec.size = size
		c.touchLocked(id, el)
	} else {
		rec := &cacheRecord{id: id, size: size}
		c.entries[id] = c.lru.PushFront(rec)
		c.bytes += size
		if c.journal != nil {
			fmt.Fprintln(c.journal, id) //nolint:errcheck // advisory recency hint
			c.journalLines++
		}
	}
	c.evictLocked()
	c.mu.Unlock()
}

// Location implements CacheBackend: the spill directory path.
func (c *diskCache) Location() string { return c.dir }

// Stats implements CacheBackend.
func (c *diskCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.lru.Len(),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
		Evictions: c.evictions,
	}
}

// Len reports the number of persisted entries without touching the disk.
func (c *diskCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes reports the accounted size of all persisted entries.
func (c *diskCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Evictions reports how many entries the size bound has evicted.
func (c *diskCache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Close releases the journal handle (tests; the daemon holds it for life).
func (c *diskCache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return nil
	}
	err := c.journal.Close()
	c.journal = nil
	return err
}
