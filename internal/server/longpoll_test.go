package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gpumembw/client"
	"gpumembw/internal/api"
)

// newIdleServer boots a Server whose worker pool is never started, so
// submitted jobs stay queued forever — the deterministic substrate for
// timeout, drain and capacity tests.
func newIdleServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// TestLongPollReturnsOnTerminal pins the headline property: a ?wait=
// GET parked on a running job returns the moment the job finishes, not
// at the wait deadline.
func TestLongPollReturnsOnTerminal(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()
	j, err := c.Submit(ctx, client.JobSpec{Config: "baseline", Bench: testBench})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	var got api.Job
	resp := getJSON(t, c.BaseURL()+"/v1/jobs/"+j.ID+"?wait=30s", &got)
	elapsed := time.Since(start)
	if resp.Header.Get(longPollHeader) == "" {
		t.Fatalf("missing %s capability header", longPollHeader)
	}
	if !got.State.Terminal() {
		t.Fatalf("state = %s after wait, want terminal", got.State)
	}
	if elapsed > 20*time.Second {
		t.Fatalf("long-poll took %s — parked to the deadline instead of waking on completion", elapsed)
	}
	_ = srv
}

// TestLongPollTimeoutReturnsCurrentState pins the other edge: when the
// job stays non-terminal past the deadline, the GET returns its live
// (non-terminal) snapshot instead of erroring or hanging.
func TestLongPollTimeoutReturnsCurrentState(t *testing.T) {
	_, ts := newIdleServer(t, Options{Workers: 1})
	c := client.New(ts.URL)
	j, err := c.Submit(context.Background(), client.JobSpec{Config: "baseline", Bench: testBench})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var got api.Job
	getJSON(t, ts.URL+"/v1/jobs/"+j.ID+"?wait=200ms", &got)
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("wait=200ms returned after %s", elapsed)
	}
	if got.State != api.JobQueued {
		t.Fatalf("state = %s, want queued (workers never started)", got.State)
	}
}

// TestLongPollWakesOnDrain pins graceful shutdown behavior: waiters
// parked on ?wait= return promptly when the daemon starts draining
// instead of holding connections open through the shutdown window.
func TestLongPollWakesOnDrain(t *testing.T) {
	srv, ts := newIdleServer(t, Options{Workers: 1})
	c := client.New(ts.URL)
	j, err := c.Submit(context.Background(), client.JobSpec{Config: "baseline", Bench: testBench})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		job     api.Job
		elapsed time.Duration
	}
	done := make(chan result, 1)
	start := time.Now()
	go func() {
		var got api.Job
		getJSON(t, ts.URL+"/v1/jobs/"+j.ID+"?wait=30s", &got)
		done <- result{got, time.Since(start)}
	}()

	time.Sleep(100 * time.Millisecond) // let the waiter park
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.elapsed > 10*time.Second {
			t.Fatalf("waiter returned after %s — drain did not wake it", r.elapsed)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("waiter still parked after drain")
	}
}

// TestLongPollRejectsBadWait pins the validation envelope on the wait
// parameter itself.
func TestLongPollRejectsBadWait(t *testing.T) {
	_, ts := newIdleServer(t, Options{Workers: 1})
	for _, wait := range []string{"bogus", "-5s"} {
		var e api.Error
		resp := getJSON(t, ts.URL+"/v1/jobs/nope?wait="+wait, &e)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("wait=%s: status %d, want 400", wait, resp.StatusCode)
		}
		if e.Code != api.CodeInvalidArgument {
			t.Fatalf("wait=%s: code %q, want %q", wait, e.Code, api.CodeInvalidArgument)
		}
	}
}

// countingTransport counts job-poll GETs issued by the client under
// test, the request-count assertion the long-poll redesign is gated on.
type countingTransport struct {
	base  http.RoundTripper
	polls atomic.Int64
}

func (ct *countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if r.Method == http.MethodGet && len(r.URL.Path) > len("/v1/jobs/") && r.URL.Path[:len("/v1/jobs/")] == "/v1/jobs/" {
		ct.polls.Add(1)
	}
	return ct.base.RoundTrip(r)
}

// TestWaitIssuesNoIntervalPolls pins the contract from the API
// redesign: against a long-poll-capable daemon, client.Wait parks on
// ?wait= rounds instead of re-polling on a fixed interval. With a
// ~150ms simulation and a 10ms poll interval, a ticker-based Wait would
// issue a dozen GETs; the long-poll Wait issues at most two (the
// terminal state can land one round boundary late).
func TestWaitIssuesNoIntervalPolls(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()
	j, err := c.Submit(ctx, client.JobSpec{Config: "baseline", Bench: testBench})
	if err != nil {
		t.Fatal(err)
	}

	ct := &countingTransport{base: http.DefaultTransport}
	counted := client.New(c.BaseURL(), client.WithHTTPClient(&http.Client{Transport: ct}))
	got, err := counted.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != client.JobDone {
		t.Fatalf("state = %s, want done", got.State)
	}
	if n := ct.polls.Load(); n > 2 {
		t.Fatalf("Wait issued %d job GETs against a long-poll daemon, want <= 2 (interval polling leaked back in)", n)
	}
}

// legacyProxy emulates a pre-long-poll daemon: it strips the ?wait=
// parameter before the daemon sees it and removes the capability header
// from the response, so the client must detect the downgrade and fall
// back to interval polling.
func legacyProxy(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		q.Del("wait")
		r.URL.RawQuery = q.Encode()
		next.ServeHTTP(&headerDroppingWriter{ResponseWriter: w, drop: longPollHeader}, r)
	})
}

type headerDroppingWriter struct {
	http.ResponseWriter
	drop string
}

func (hw *headerDroppingWriter) WriteHeader(code int) {
	hw.ResponseWriter.Header().Del(hw.drop)
	hw.ResponseWriter.WriteHeader(code)
}

// TestWaitFallsBackWithoutCapabilityHeader pins the downgrade path:
// against a daemon (or intermediary) that does not advertise long-poll,
// Wait still completes, via interval polling.
func TestWaitFallsBackWithoutCapabilityHeader(t *testing.T) {
	srv, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(legacyProxy(srv.Handler()))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // test teardown
	})

	c := client.New(ts.URL)
	got, err := c.Run(context.Background(), client.JobSpec{Config: "baseline", Bench: testBench}, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != client.JobDone {
		t.Fatalf("state = %s, want done", got.State)
	}
}
