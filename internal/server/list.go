package server

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"gpumembw/internal/api"
)

// Job listings are sorted by (SubmittedAt, ID) — both fixed at
// submission, so the order is a stable total order and a cursor into it
// never skips or repeats a job as new submissions arrive (they sort
// after the cursor). The page token encodes the last returned sort key;
// the format is shared by single daemons and coordinators, which lets a
// coordinator forward a client's token to every worker verbatim and
// k-way-merge the pages.

// listKey is the sort key of one job in a listing.
type listKey struct {
	nano int64
	id   string
}

func (k listKey) less(o listKey) bool {
	if k.nano != o.nano {
		return k.nano < o.nano
	}
	return k.id < o.id
}

func jobListKey(j api.Job) listKey {
	return listKey{nano: j.SubmittedAt.UnixNano(), id: j.ID}
}

// encodePageToken serializes the cursor after key k.
func encodePageToken(k listKey) string {
	return base64.RawURLEncoding.EncodeToString(fmt.Appendf(nil, "v1/%d/%s", k.nano, k.id))
}

// decodePageToken parses a client-supplied cursor; malformed tokens are
// a 400, never a panic or a silently empty listing.
func decodePageToken(tok string) (listKey, *httpError) {
	raw, err := base64.RawURLEncoding.DecodeString(tok)
	if err == nil {
		parts := strings.SplitN(string(raw), "/", 3)
		if len(parts) == 3 && parts[0] == "v1" {
			if nano, perr := strconv.ParseInt(parts[1], 10, 64); perr == nil {
				return listKey{nano: nano, id: parts[2]}, nil
			}
		}
	}
	return listKey{}, errBadRequest("list: malformed page_token %q", tok)
}

// listQuery is the parsed ?state=&limit=&page_token= triple of a job
// listing request.
type listQuery struct {
	state    api.JobState // "" = all states
	limit    int          // 0 = unbounded
	cursor   *listKey
	rawToken string
}

// parseListQuery validates the listing parameters; every rejection is a
// 400 with detail.
func parseListQuery(q url.Values) (listQuery, *httpError) {
	var lq listQuery
	if st := q.Get("state"); st != "" {
		switch api.JobState(st) {
		case api.JobQueued, api.JobRunning, api.JobDone, api.JobFailed, api.JobCanceled:
			lq.state = api.JobState(st)
		default:
			return lq, errBadRequest("list: unknown state %q (known: queued, running, done, failed, canceled)", st)
		}
	}
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			return lq, errBadRequest("list: invalid limit %q: must be a non-negative integer (0 = unbounded)", ls)
		}
		lq.limit = n
	}
	if tok := q.Get("page_token"); tok != "" {
		k, he := decodePageToken(tok)
		if he != nil {
			return lq, he
		}
		lq.cursor = &k
		lq.rawToken = tok
	}
	return lq, nil
}

// paginate filters, orders and cuts a job snapshot into one page:
// the shared tail of both the daemon's and the coordinator's listing.
// jobs may arrive in any order and are sorted here.
func paginate(jobs []api.Job, lq listQuery) api.JobList {
	page := jobs[:0:0]
	for _, j := range jobs {
		if lq.state != "" && j.State != lq.state {
			continue
		}
		if lq.cursor != nil && !lq.cursor.less(jobListKey(j)) {
			continue
		}
		page = append(page, j)
	}
	sort.Slice(page, func(i, k int) bool { return jobListKey(page[i]).less(jobListKey(page[k])) })
	list := api.JobList{Jobs: page}
	if lq.limit > 0 && len(page) > lq.limit {
		list.Jobs = page[:lq.limit]
		list.NextPageToken = encodePageToken(jobListKey(page[lq.limit-1]))
	}
	if list.Jobs == nil {
		list.Jobs = []api.Job{}
	}
	return list
}

// listJobs assembles one page of GET /v1/jobs.
func (s *Server) listJobs(lq listQuery) api.JobList {
	s.mu.Lock()
	jobs := make([]api.Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id].Job)
	}
	s.mu.Unlock()
	return paginate(jobs, lq)
}

// parseWait reads the ?wait= long-poll deadline of a GET. Absent means
// no wait; durations beyond maxWait are clamped, negatives rejected.
func parseWait(r *http.Request) (time.Duration, *httpError) {
	q := r.URL.Query().Get("wait")
	if q == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(q)
	if err != nil {
		return 0, errBadRequest("wait: invalid duration %q (e.g. 30s)", q)
	}
	if d < 0 {
		return 0, errBadRequest("wait: negative duration %q", q)
	}
	if d > maxWait {
		d = maxWait
	}
	return d, nil
}

// maxWait caps one long-poll round; clients wanting longer simply
// re-issue the request (the client package does this transparently).
const maxWait = 5 * time.Minute

// longPollHeader advertises long-poll support on job and sweep GETs.
// Clients that see it switch from interval polling to ?wait= requests;
// its absence (an older daemon, a foreign proxy) selects the jittered
// polling fallback.
const longPollHeader = "Gpusimd-Long-Poll"
