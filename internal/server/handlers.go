package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gpumembw/internal/api"
	"gpumembw/internal/config"
	"gpumembw/internal/trace"
)

// Handler returns the daemon's route table:
//
//	GET    /healthz           liveness
//	GET    /metrics           Prometheus text exposition
//	GET    /v1/stats          scheduler counters + queue gauges
//	POST   /v1/jobs           submit one cell (api.JobSpec)
//	GET    /v1/jobs           list jobs (?state=&limit=&page_token=)
//	GET    /v1/jobs/{id}      poll one job (?wait= long-polls)
//	GET    /v1/jobs/{id}/profile  bottleneck profile of a Profile=true run
//	GET    /v1/jobs/{id}/trace    lifecycle span timeline
//	DELETE /v1/jobs/{id}      cancel a queued or running job
//	POST   /v1/sweeps         submit a config×workload cross product
//	GET    /v1/sweeps/{id}    poll one sweep (?wait= long-polls)
//	POST   /v1/explore        start (or join) a design-space exploration
//	GET    /v1/explorations/{id}  poll one exploration (?wait= long-polls)
//	GET    /v1/benchmarks     benchmark names (Table II order)
//	GET    /v1/configs        full canonical preset configs (sorted by name)
//	GET    /v1/knobs          the mitigation knob-space model (paths, bounds)
//
// Every route is instrumented with per-endpoint request counters and
// latency histograms; the mutating routes (submit, sweep, cancel) sit
// behind the per-client rate limiter when one is configured, so polling
// a throttled client's jobs stays cheap.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/jobs", s.limited(s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/profile", s.handleProfile)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.limited(s.handleCancel))
	mux.HandleFunc("POST /v1/sweeps", s.limited(s.handleSweep))
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	mux.HandleFunc("POST /v1/explore", s.limited(handleExploreSubmit(s.explorer)))
	mux.HandleFunc("GET /v1/explorations/{id}", handleExploreGet(s.explorer))
	mux.HandleFunc("GET /v1/benchmarks", handleBenchmarks)
	mux.HandleFunc("GET /v1/configs", handleConfigs)
	mux.HandleFunc("GET /v1/knobs", handleKnobs)
	return withTrace(instrument(mux, s.httpRequests, s.httpLatency))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// writeError maps an error to its HTTP status (500 unless it is an
// *httpError) and emits the uniform api.Error envelope: a
// machine-readable code, human-readable detail, and — on 429/503 — a
// retry hint that rides both the envelope's retryAfter field and the
// standard Retry-After header, rounded up to whole seconds.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var retrySecs int64
	code := ""
	var he *httpError
	if errors.As(err, &he) {
		status = he.status
		code = he.code
		if he.retryAfter > 0 {
			retrySecs = int64((he.retryAfter + time.Second - 1) / time.Second)
			if retrySecs < 1 {
				retrySecs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(retrySecs, 10))
		}
	}
	if code == "" {
		code = api.CodeForStatus(status)
	}
	writeJSON(w, status, api.Error{Code: code, Detail: err.Error(), RetryAfter: retrySecs})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.Health{Status: "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec api.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, errBadRequest("decode job spec: %v", err))
		return
	}
	cref, ref, err := resolveSpec(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	j, created, err := s.submit(spec, cref, ref, clientKey(r), traceIDFrom(r.Context()))
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, s.snapshot(j))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(longPollHeader, "supported")
	d, he := parseWait(r)
	if he != nil {
		writeError(w, he)
		return
	}
	id := r.PathValue("id")
	j, ok := s.waitJob(r.Context(), id, d)
	if !ok {
		writeError(w, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("server: unknown job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// handleProfile serves a finished Profile=true job's bottleneck profile.
// Until the job is done (or when it ran unprofiled) the resource does not
// exist yet: 404 with a detail explaining which case applies.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("server: unknown job %q", id)})
		return
	}
	state := j.State
	prof := j.profile
	payload := api.JobProfile{JobID: j.ID, Config: j.cref.Label(), Bench: j.ref.Label(), Profile: prof}
	s.mu.Unlock()
	switch {
	case prof != nil:
		writeJSON(w, http.StatusOK, payload)
	case state == api.JobDone:
		writeError(w, &httpError{status: http.StatusNotFound,
			msg: fmt.Sprintf("server: job %q ran without profiling; resubmit it with profile=true", id)})
	default:
		writeError(w, &httpError{status: http.StatusNotFound,
			msg: fmt.Sprintf("server: job %q is %s; its profile appears when a profile=true run completes", id, state)})
	}
}

// handleTrace serves the job's lifecycle span timeline. Unlike the
// profile, the trace exists from the moment the job is submitted.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("server: unknown job %q", id)})
		return
	}
	tr := j.traceView()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, tr)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	lq, he := parseListQuery(r.URL.Query())
	if he != nil {
		writeError(w, he)
		return
	}
	writeJSON(w, http.StatusOK, s.listJobs(lq))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.cancelJob(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.snapshot(j))
}

// sweepExpansion is a POST /v1/sweeps request resolved into its unique
// cells. Axis-form requests additionally carry the config/workload
// labels and the [config][workload] cell-ID grid that let the sweep
// resource assemble its merged speedup table; cell-list requests (the
// coordinator's shard form) leave them nil.
type sweepExpansion struct {
	cells     []resolvedCell
	requested int
	configs   []string
	workloads []string
	grid      [][]string
}

// expandSweep validates and resolves a sweep request. Every cell is
// resolved up front so a malformed corner of the cross product rejects
// the whole sweep instead of half-submitting it.
func expandSweep(req api.SweepRequest) (*sweepExpansion, error) {
	ex := &sweepExpansion{}
	axes := len(req.Benches)+len(req.InlineSpecs)+len(req.Configs)+len(req.InlineConfigs)+len(req.ConfigPatches) > 0
	if len(req.Cells) > 0 {
		if axes {
			return nil, errBadRequest("sweep: cells and the config/workload axes are mutually exclusive")
		}
		seen := make(map[string]bool)
		for _, sp := range req.Cells {
			cref, ref, err := resolveSpec(sp)
			if err != nil {
				return nil, err
			}
			ex.requested++
			if id := cellID(cref, ref); !seen[id] {
				seen[id] = true
				ex.cells = append(ex.cells, resolvedCell{id: id, spec: sp, cref: cref, ref: ref})
			}
		}
		return ex, nil
	}
	if len(req.Benches)+len(req.InlineSpecs) == 0 {
		return nil, errBadRequest("sweep: one of benches, inlineSpecs or cells is required")
	}
	if len(req.Configs)+len(req.InlineConfigs)+len(req.ConfigPatches) == 0 {
		return nil, errBadRequest("sweep: one of configs, inlineConfigs or configPatches is required")
	}

	// The workload axis of the cross product: preset benchmark names
	// followed by inline specs.
	workloads := make([]api.JobSpec, 0, len(req.Benches)+len(req.InlineSpecs))
	for _, b := range req.Benches {
		workloads = append(workloads, api.JobSpec{Bench: b})
	}
	for i := range req.InlineSpecs {
		workloads = append(workloads, api.JobSpec{InlineSpec: &req.InlineSpecs[i]})
	}

	seen := make(map[string]bool)
	addConfig := func(spec api.JobSpec) error {
		var row []string
		for _, wl := range workloads {
			sp := spec
			sp.Bench, sp.InlineSpec = wl.Bench, wl.InlineSpec
			cref, ref, err := resolveSpec(sp)
			if err != nil {
				return err
			}
			ex.requested++
			id := cellID(cref, ref)
			row = append(row, id)
			if !seen[id] {
				seen[id] = true
				ex.cells = append(ex.cells, resolvedCell{id: id, spec: sp, cref: cref, ref: ref})
			}
			if len(ex.grid) == 0 { // first config row names the workload axis
				ex.workloads = append(ex.workloads, ref.Label())
			}
			if len(row) == 1 {
				ex.configs = append(ex.configs, cref.Label())
			}
		}
		ex.grid = append(ex.grid, row)
		return nil
	}
	for _, name := range req.Configs {
		if err := addConfig(api.JobSpec{Config: name}); err != nil {
			return nil, err
		}
	}
	for i := range req.InlineConfigs {
		if err := addConfig(api.JobSpec{InlineConfig: &req.InlineConfigs[i]}); err != nil {
			return nil, err
		}
	}
	for i := range req.ConfigPatches {
		if err := addConfig(api.JobSpec{ConfigPatch: &req.ConfigPatches[i]}); err != nil {
			return nil, err
		}
	}
	return ex, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, errBadRequest("decode sweep request: %v", err))
		return
	}
	ex, err := expandSweep(req)
	if err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.submitSweep(ex, clientKey(r), traceIDFrom(r.Context()))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSweepGet serves the sweep resource: per-cell job snapshots,
// state counts, and — once an axis-form sweep completes — the merged
// speedup table. ?wait= long-polls for the terminal transition.
func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(longPollHeader, "supported")
	d, he := parseWait(r)
	if he != nil {
		writeError(w, he)
		return
	}
	sw, he := s.waitSweep(r.Context(), r.PathValue("id"), d)
	if he != nil {
		writeError(w, he)
		return
	}
	writeJSON(w, http.StatusOK, sw)
}

// handleBenchmarks and handleConfigs serve static catalog data; they
// are free functions so the coordinator mounts the identical handlers —
// byte-identical catalogs whichever entry point a client asks.
func handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.BenchmarkList{Benchmarks: trace.Names()})
}

// handleConfigs serves every preset as its full canonical Config value
// (sorted by name) so clients can author inline configs and patches
// without guessing field names.
func handleConfigs(w http.ResponseWriter, _ *http.Request) {
	presets := config.Presets()
	list := api.ConfigList{Configs: make([]config.Config, 0, len(presets))}
	for _, name := range config.Names() {
		list.Configs = append(list.Configs, presets[name].Canonical())
	}
	writeJSON(w, http.StatusOK, list)
}
