package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gpumembw/internal/api"
	"gpumembw/internal/config"
	"gpumembw/internal/trace"
)

// Handler returns the daemon's route table:
//
//	GET    /healthz           liveness
//	GET    /metrics           Prometheus text exposition
//	GET    /v1/stats          scheduler counters + queue gauges
//	POST   /v1/jobs           submit one cell (api.JobSpec)
//	GET    /v1/jobs           list jobs in submission order
//	GET    /v1/jobs/{id}      poll one job
//	DELETE /v1/jobs/{id}      cancel a queued or running job
//	POST   /v1/sweeps         submit a config×workload cross product
//	GET    /v1/benchmarks     benchmark names (Table II order)
//	GET    /v1/configs        full canonical preset configs (sorted by name)
//
// Every route is instrumented with per-endpoint request counters and
// latency histograms; the mutating routes (submit, sweep, cancel) sit
// behind the per-client rate limiter when one is configured, so polling
// a throttled client's jobs stays cheap.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/jobs", s.limited(s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.limited(s.handleCancel))
	mux.HandleFunc("POST /v1/sweeps", s.limited(s.handleSweep))
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("GET /v1/configs", s.handleConfigs)
	return s.instrument(mux)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// writeError maps an error to its HTTP status (500 unless it is an
// *httpError) and emits the api.Error payload. A 429's retry hint rides
// the standard Retry-After header, rounded up to whole seconds.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		status = he.status
		if he.retryAfter > 0 {
			secs := int64((he.retryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		}
	}
	writeJSON(w, status, api.Error{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.Health{Status: "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec api.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, errBadRequest("decode job spec: %v", err))
		return
	}
	cref, ref, err := resolveSpec(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	j, created, err := s.submit(spec, cref, ref, clientKey(r))
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, s.snapshot(j))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("server: unknown job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, s.snapshot(j))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := api.JobList{Jobs: make([]api.Job, 0, len(s.order))}
	for _, id := range s.order {
		list.Jobs = append(list.Jobs, s.jobs[id].Job)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.cancelJob(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.snapshot(j))
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, errBadRequest("decode sweep request: %v", err))
		return
	}
	if len(req.Benches)+len(req.InlineSpecs) == 0 {
		writeError(w, errBadRequest("sweep: one of benches or inlineSpecs is required"))
		return
	}
	if len(req.Configs)+len(req.InlineConfigs)+len(req.ConfigPatches) == 0 {
		writeError(w, errBadRequest("sweep: one of configs, inlineConfigs or configPatches is required"))
		return
	}

	// The workload axis of the cross product: preset benchmark names
	// followed by inline specs.
	workloads := make([]api.JobSpec, 0, len(req.Benches)+len(req.InlineSpecs))
	for _, b := range req.Benches {
		workloads = append(workloads, api.JobSpec{Bench: b})
	}
	for i := range req.InlineSpecs {
		workloads = append(workloads, api.JobSpec{InlineSpec: &req.InlineSpecs[i]})
	}

	// Resolve every cell up front so a malformed corner of the cross
	// product rejects the whole sweep instead of half-submitting it.
	var requested int
	var cells []resolvedCell
	seen := make(map[string]bool)
	addConfig := func(spec api.JobSpec) error {
		for _, wl := range workloads {
			sp := spec
			sp.Bench, sp.InlineSpec = wl.Bench, wl.InlineSpec
			cref, ref, err := resolveSpec(sp)
			if err != nil {
				return err
			}
			requested++
			if id := cellID(cref, ref); !seen[id] {
				seen[id] = true
				cells = append(cells, resolvedCell{id: id, spec: sp, cref: cref, ref: ref})
			}
		}
		return nil
	}
	for _, name := range req.Configs {
		if err := addConfig(api.JobSpec{Config: name}); err != nil {
			writeError(w, err)
			return
		}
	}
	for i := range req.InlineConfigs {
		if err := addConfig(api.JobSpec{InlineConfig: &req.InlineConfigs[i]}); err != nil {
			writeError(w, err)
			return
		}
	}
	for i := range req.ConfigPatches {
		if err := addConfig(api.JobSpec{ConfigPatch: &req.ConfigPatches[i]}); err != nil {
			writeError(w, err)
			return
		}
	}

	jobs, err := s.submitSweep(cells, clientKey(r))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.SweepResponse{
		Requested: requested,
		Deduped:   requested - len(jobs),
		Jobs:      jobs,
	})
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.BenchmarkList{Benchmarks: trace.Names()})
}

// handleConfigs serves every preset as its full canonical Config value
// (sorted by name) so clients can author inline configs and patches
// without guessing field names.
func (s *Server) handleConfigs(w http.ResponseWriter, _ *http.Request) {
	presets := config.Presets()
	list := api.ConfigList{Configs: make([]config.Config, 0, len(presets))}
	for _, name := range config.Names() {
		list.Configs = append(list.Configs, presets[name].Canonical())
	}
	writeJSON(w, http.StatusOK, list)
}
