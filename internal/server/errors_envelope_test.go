package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"gpumembw/client"
	"gpumembw/internal/api"
)

// doJSON issues method+body against url and decodes the response body
// into out, returning the raw response for status/header assertions.
func doJSON(t *testing.T, method, url string, body []byte, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp
}

// TestErrorEnvelopeUniform pins the API-wide error contract: every
// non-2xx response is an api.Error with a machine-readable code matched
// to its status, a human-readable detail, and — for backpressure
// statuses — a retry hint mirrored in the Retry-After header.
func TestErrorEnvelopeUniform(t *testing.T) {
	// One completed job for the 409 case.
	_, done := newTestServer(t, Options{Workers: 1})
	finished, err := done.Run(context.Background(), client.JobSpec{Config: "baseline", Bench: testBench}, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	// An idle, tightly-quota'd daemon for the 429 and 503 cases: the
	// first job occupies both the single-entry queue and the single
	// per-client inflight slot forever.
	_, tight := newIdleServer(t, Options{Workers: 1, MaxQueue: 1, MaxInflightPerClient: 1})
	tc := client.New(tight.URL)
	if _, err := tc.Submit(context.Background(), mshrPatch(8)); err != nil {
		t.Fatal(err)
	}

	spec2, err := json.Marshal(mshrPatch(16))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name      string
		method    string
		url       string
		body      []byte
		status    int
		code      string
		wantRetry bool
	}{
		{"malformed body", http.MethodPost, done.BaseURL() + "/v1/jobs", []byte("{not json"), 400, api.CodeInvalidArgument, false},
		{"unknown job", http.MethodGet, done.BaseURL() + "/v1/jobs/no-such-cell", nil, 404, api.CodeNotFound, false},
		{"unknown sweep", http.MethodGet, done.BaseURL() + "/v1/sweeps/sw-missing", nil, 404, api.CodeNotFound, false},
		{"cancel finished job", http.MethodDelete, done.BaseURL() + "/v1/jobs/" + finished.ID, nil, 409, api.CodeConflict, false},
		{"inflight quota", http.MethodPost, tight.URL + "/v1/jobs", spec2, 429, api.CodeResourceExhausted, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e api.Error
			resp := doJSON(t, tc.method, tc.url, tc.body, &e)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (body %+v)", resp.StatusCode, tc.status, e)
			}
			if e.Code != tc.code {
				t.Fatalf("code %q, want %q", e.Code, tc.code)
			}
			if e.Detail == "" {
				t.Fatal("empty detail")
			}
			if tc.wantRetry {
				if e.RetryAfter <= 0 {
					t.Fatalf("retryAfter = %d, want > 0", e.RetryAfter)
				}
				if resp.Header.Get("Retry-After") == "" {
					t.Fatal("Retry-After header missing while body carries a retry hint")
				}
			}
		})
	}
}

// TestErrorEnvelopeQueueFull pins the 503 branch separately: a full
// queue rejects with the unavailable code. The quota'd client above
// would mask it with a 429, so this daemon has no quota.
func TestErrorEnvelopeQueueFull(t *testing.T) {
	_, ts := newIdleServer(t, Options{Workers: 1, MaxQueue: 1})
	c := client.New(ts.URL)
	ctx := context.Background()
	if _, err := c.Submit(ctx, mshrPatch(8)); err != nil {
		t.Fatal(err)
	}
	_, err := c.Submit(ctx, mshrPatch(16))
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable || apiErr.Code != api.CodeUnavailable {
		t.Fatalf("queue-full submit: err = %v, want 503 %s", err, api.CodeUnavailable)
	}
	if apiErr.Message == "" {
		t.Fatal("decoded APIError lost the detail text")
	}
}
