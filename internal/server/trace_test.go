package server

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"gpumembw/client"
	"gpumembw/internal/api"
)

// waitTraced submits spec with a caller-chosen trace ID and polls to a
// terminal state.
func waitTraced(t *testing.T, c *client.Client, spec client.JobSpec, traceID string) *client.Job {
	t.Helper()
	ctx := context.Background()
	j, err := c.SubmitTraced(ctx, spec, traceID)
	if err != nil {
		t.Fatal(err)
	}
	j, err = c.Wait(ctx, j.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != client.JobDone {
		t.Fatalf("state = %s (error %q), want done", j.State, j.Error)
	}
	return j
}

func TestProfileEndpointServesVerdict(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()
	j := waitTraced(t, c, client.JobSpec{Config: "baseline", Bench: testBench, Profile: true}, "")

	p, err := c.Profile(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.JobID != j.ID || p.Profile == nil {
		t.Fatalf("profile payload %+v", p)
	}
	if p.Profile.Verdict.Bottleneck == "" {
		t.Fatal("profile has no bottleneck verdict")
	}
	if p.Profile.Windows == 0 || len(p.Profile.Series) == 0 {
		t.Fatalf("empty series: windows=%d series=%d", p.Profile.Windows, len(p.Profile.Series))
	}
	for _, s := range p.Profile.Series {
		if len(s.Mean) != p.Profile.Windows {
			t.Fatalf("series %s/%s has %d means for %d windows", s.Level, s.Gauge, len(s.Mean), p.Profile.Windows)
		}
	}
}

func TestProfileAbsentUntilProfiledRerun(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()
	spec := client.JobSpec{Config: "baseline", Bench: testBench}
	j := waitTraced(t, c, spec, "")

	if _, err := c.Profile(ctx, j.ID); err == nil || !strings.Contains(err.Error(), "profile") {
		t.Fatalf("unprofiled done job served a profile (err = %v)", err)
	}

	// Resubmitting the same cell with profile=true revives it: metrics
	// stay memoized, only the profile is computed.
	spec.Profile = true
	up := waitTraced(t, c, spec, "")
	if up.ID != j.ID {
		t.Fatalf("profiled resubmit changed the job ID: %s vs %s", up.ID, j.ID)
	}
	if !bytes.Equal(canonicalJSON(t, up.Metrics), canonicalJSON(t, j.Metrics)) {
		t.Fatal("profiled rerun changed the metrics")
	}
	if _, err := c.Profile(ctx, j.ID); err != nil {
		t.Fatalf("profile still missing after profiled rerun: %v", err)
	}
}

func TestTraceTimelineAndPropagatedID(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()
	const id = "trace-test-0001"
	j := waitTraced(t, c, client.JobSpec{Config: "baseline", Bench: testBench, Profile: true}, id)
	if j.TraceID != id {
		t.Fatalf("job traceId = %q, want %q", j.TraceID, id)
	}

	tr, err := c.Trace(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != id {
		t.Fatalf("trace traceId = %q, want %q", tr.TraceID, id)
	}
	assertSpanChain(t, tr.Spans, []string{"queued", "running", "done"})
	for _, s := range tr.Spans {
		if s.Name == "running" && s.Attrs["tier"] == "" {
			t.Fatalf("running span has no cache-tier attribution: %+v", s)
		}
	}
}

// assertSpanChain checks the span names appear in order, every span is
// closed, and the timeline is monotonic (each span starts no earlier
// than the previous one).
func assertSpanChain(t *testing.T, spans []client.Span, want []string) {
	t.Helper()
	var names []string
	for _, s := range spans {
		names = append(names, s.Name)
	}
	if len(spans) != len(want) {
		t.Fatalf("span chain %v, want %v", names, want)
	}
	for i, s := range spans {
		if s.Name != want[i] {
			t.Fatalf("span chain %v, want %v", names, want)
		}
		if s.End == nil {
			t.Fatalf("span %q still open on a terminal job", s.Name)
		}
		if s.End.Before(s.Start) {
			t.Fatalf("span %q ends before it starts", s.Name)
		}
		if i > 0 && s.Start.Before(spans[i-1].Start) {
			t.Fatalf("span %q starts before its predecessor %q", s.Name, spans[i-1].Name)
		}
	}
}

func TestTraceIDMintedAndEchoed(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	req, err := http.NewRequest("GET", c.BaseURL()+"/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	minted := resp.Header.Get(api.TraceHeader)
	if minted == "" {
		t.Fatal("server did not mint an X-Trace-Id")
	}

	req.Header.Set(api.TraceHeader, "caller-chosen")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(api.TraceHeader); got != "caller-chosen" {
		t.Fatalf("echoed trace ID = %q, want caller-chosen", got)
	}
}

func TestClusterTraceSurvivesForwarding(t *testing.T) {
	tc := newTestCluster(t, []*Server{newWorker(t), newWorker(t)})
	ctx := context.Background()
	const id = "cluster-trace-0001"
	j := waitTraced(t, tc.client, client.JobSpec{Config: "baseline", Bench: testBench, Profile: true}, id)
	if j.TraceID != id {
		t.Fatalf("job traceId through coordinator = %q, want %q", j.TraceID, id)
	}

	// The coordinator relays the owning worker's timeline with its own
	// placement span prepended; the whole chain stays monotonic.
	tr, err := tc.client.Trace(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != id {
		t.Fatalf("relayed trace traceId = %q, want %q", tr.TraceID, id)
	}
	assertSpanChain(t, tr.Spans, []string{"placed", "queued", "running", "done"})
	if tr.Spans[0].Attrs["worker"] == "" {
		t.Fatalf("placed span has no worker attribution: %+v", tr.Spans[0])
	}

	// The profile relays verbatim through the coordinator.
	p, err := tc.client.Profile(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Profile == nil || p.Profile.Verdict.Bottleneck == "" {
		t.Fatalf("relayed profile payload %+v", p)
	}
}
