package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"gpumembw/internal/api"
	"gpumembw/internal/config"
	"gpumembw/internal/exp"
	"gpumembw/internal/explore"
)

// exploreRec is the server-side exploration resource: the compiled plan
// plus the driver's published progress. Mutable fields are guarded by
// exploreHub.mu.
type exploreRec struct {
	plan   *explore.Plan
	state  api.ExplorationState
	status explore.Status
	result *explore.Result
	errMsg string
}

// exploreHub owns one entry point's exploration resources. The daemon
// and the coordinator each embed one; they differ only in the EvalBatch
// that scores probe cells (the daemon's scheduler vs a fan-out across
// the fleet's workers).
//
// Explorations are content-addressed by their canonical request, so a
// re-POST of the same search — however spelled — is the same resource:
// while it runs the POST joins it, and once it is done the POST returns
// the finished result without simulating anything.
//
// When dir is non-empty every accepted request is journaled there as
// <id>.json and reloaded on startup, so a daemon restart resumes every
// exploration: the driver re-runs the deterministic search and the disk
// cache answers every already-probed cell, which makes resumption cheap
// and the final resource byte-identical to the uninterrupted run.
type exploreHub struct {
	eval explore.EvalBatch
	dir  string
	log  *slog.Logger

	mu     sync.Mutex
	recs   map[string]*exploreRec
	waitCh chan struct{} // closed+replaced on every progress or terminal transition

	ctx    context.Context // canceled on shutdown; aborts running drivers
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// newExploreHub builds a hub. dir == "" disables journaling (the
// coordinator, and daemons without a cache dir).
func newExploreHub(dir string, eval explore.EvalBatch, log *slog.Logger) (*exploreHub, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("server: explore journal dir: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &exploreHub{
		eval:   eval,
		dir:    dir,
		log:    log,
		recs:   make(map[string]*exploreRec),
		waitCh: make(chan struct{}),
		ctx:    ctx,
		cancel: cancel,
	}, nil
}

// submit compiles a request and starts (or joins) its exploration.
// created reports whether this call started the driver.
func (h *exploreHub) submit(req api.ExploreRequest) (api.Exploration, bool, error) {
	plan, err := explore.Compile(req)
	if err != nil {
		return api.Exploration{}, false, errBadRequest("%v", err)
	}
	id := plan.ID()
	h.mu.Lock()
	if rec, ok := h.recs[id]; ok {
		v := rec.view(id)
		h.mu.Unlock()
		return v, false, nil
	}
	rec := &exploreRec{plan: plan, state: api.ExplorationRunning}
	h.recs[id] = rec
	v := rec.view(id)
	h.mu.Unlock()

	h.journal(id, plan.Request)
	h.wg.Add(1)
	go h.run(id, rec)
	h.log.Info("exploration started", "exploration", id,
		"strategy", plan.Strategy.Name(), "base", plan.Space.BaseName,
		"gridSize", plan.Space.GridSize(), "workloads", len(plan.Workloads))
	return v, true, nil
}

// run drives one exploration to a terminal state, publishing per-round
// progress to long-poll waiters along the way.
func (h *exploreHub) run(id string, rec *exploreRec) {
	defer h.wg.Done()
	res, err := explore.Run(h.ctx, rec.plan, h.eval, func(st explore.Status) {
		h.mu.Lock()
		rec.status = st
		h.broadcastLocked()
		h.mu.Unlock()
	})
	h.mu.Lock()
	if err != nil {
		rec.state = api.ExplorationFailed
		rec.errMsg = err.Error()
	} else {
		rec.state = api.ExplorationDone
		rec.result = res
	}
	h.broadcastLocked()
	h.mu.Unlock()
	if err != nil {
		h.log.Warn("exploration failed", "exploration", id, "err", err)
		return
	}
	h.log.Info("exploration done", "exploration", id,
		"probes", res.Probes, "rounds", len(res.Rounds), "feasible", res.Feasible,
		"simulated", res.Tiers.Simulated, "memo", res.Tiers.Memo, "disk", res.Tiers.Disk)
}

func (h *exploreHub) broadcastLocked() {
	close(h.waitCh)
	h.waitCh = make(chan struct{})
}

// view assembles the wire resource; callers hold exploreHub.mu.
func (rec *exploreRec) view(id string) api.Exploration {
	return rec.plan.Resource(id, rec.state, rec.status, rec.result, rec.errMsg)
}

// get returns the current resource snapshot.
func (h *exploreHub) get(id string) (api.Exploration, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	rec, ok := h.recs[id]
	if !ok {
		return api.Exploration{}, false
	}
	return rec.view(id), true
}

// wait blocks until the exploration is terminal, ctx is done, the hub
// shuts down, or d elapses, then returns the current snapshot. ok is
// false only when the id is unknown.
func (h *exploreHub) wait(ctx context.Context, id string, d time.Duration) (api.Exploration, bool) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		h.mu.Lock()
		rec, ok := h.recs[id]
		if !ok {
			h.mu.Unlock()
			return api.Exploration{}, false
		}
		v := rec.view(id)
		ch := h.waitCh
		h.mu.Unlock()
		if d <= 0 || v.State.Terminal() {
			return v, true
		}
		select {
		case <-ch:
		case <-timer.C:
			return h.get(id)
		case <-ctx.Done():
			return v, true
		case <-h.ctx.Done():
			return v, true
		}
	}
}

// shutdown aborts running drivers and waits for them to exit.
func (h *exploreHub) shutdown() {
	h.cancel()
	h.wg.Wait()
}

// journal persists one accepted request so a restarted daemon resumes
// the exploration. Failures are logged, not fatal: the exploration still
// runs, it just will not survive a restart.
func (h *exploreHub) journal(id string, req api.ExploreRequest) {
	if h.dir == "" {
		return
	}
	data, err := json.MarshalIndent(req, "", "  ")
	if err != nil {
		h.log.Warn("exploration journal marshal", "exploration", id, "err", err)
		return
	}
	path := filepath.Join(h.dir, id+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		h.log.Warn("exploration journal write", "exploration", id, "err", err)
	}
}

// reload re-submits every journaled request. Completed explorations
// replay from the disk cache (simulating nothing) and land on the
// byte-identical resource; interrupted ones resume from where the cache
// runs dry.
func (h *exploreHub) reload() {
	if h.dir == "" {
		return
	}
	entries, err := os.ReadDir(h.dir)
	if err != nil {
		h.log.Warn("exploration journal scan", "dir", h.dir, "err", err)
		return
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(h.dir, e.Name()))
		if err != nil {
			h.log.Warn("exploration journal read", "file", e.Name(), "err", err)
			continue
		}
		var req api.ExploreRequest
		if err := json.Unmarshal(data, &req); err != nil {
			h.log.Warn("exploration journal decode", "file", e.Name(), "err", err)
			continue
		}
		if _, _, err := h.submit(req); err != nil {
			h.log.Warn("exploration journal resume", "file", e.Name(), "err", err)
		}
	}
}

// ---- HTTP handlers (mounted by both the daemon and the coordinator) ----

// handleExploreSubmit serves POST /v1/explore: 201 when this request
// started the search, 200 when it joined (or re-found) an existing one.
func handleExploreSubmit(h *exploreHub) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req api.ExploreRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
			writeError(w, errBadRequest("decode explore request: %v", err))
			return
		}
		ex, created, err := h.submit(req)
		if err != nil {
			writeError(w, err)
			return
		}
		status := http.StatusOK
		if created {
			status = http.StatusCreated
		}
		writeJSON(w, status, ex)
	}
}

// handleExploreGet serves GET /v1/explorations/{id}; ?wait= long-polls
// for the terminal transition (progress updates wake waiters early only
// to re-check, matching the job and sweep wait semantics).
func handleExploreGet(h *exploreHub) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(longPollHeader, "supported")
		d, he := parseWait(r)
		if he != nil {
			writeError(w, he)
			return
		}
		id := r.PathValue("id")
		ex, ok := h.wait(r.Context(), id, d)
		if !ok {
			writeError(w, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("server: unknown exploration %q", id)})
			return
		}
		writeJSON(w, http.StatusOK, ex)
	}
}

// handleKnobs serves GET /v1/knobs: the full dotted-path knob-space
// model with types, bounds and baseline values — the catalog explore
// requests draw their custom axes from.
func handleKnobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.KnobList{Knobs: config.Knobs()})
}

// ---- coordinator probe evaluation ----

// exploreIdentity is the client identity the coordinator presents to
// workers for exploration probe cells, so worker-side rate limits and
// quotas see the fleet's search traffic under one name.
const exploreIdentity = "gpusimd-explore"

// exploreEvalConcurrency bounds how many probe cells the coordinator
// keeps in flight across the fleet at once.
const exploreEvalConcurrency = 16

// exploreEval is the coordinator's EvalBatch: each probe cell is placed
// on its rendezvous worker — the identical per-cell placement sweeps use,
// so probe cells shard and memoize fleet-wide — and polled to a terminal
// state. The worker's cache-tier attribution rides back on api.Job.Tier.
func (co *Coordinator) exploreEval(ctx context.Context, jobs []exp.Job) ([]explore.EvalResult, error) {
	outs := make([]explore.EvalResult, len(jobs))
	sem := make(chan struct{}, exploreEvalConcurrency)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j exp.Job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := co.exploreCell(ctx, j)
			if err != nil {
				fail(err)
				return
			}
			outs[i] = res
		}(i, j)
	}
	wg.Wait()
	return outs, firstErr
}

// exploreCell submits one probe cell to its rendezvous worker and waits
// for a terminal state.
func (co *Coordinator) exploreCell(ctx context.Context, job exp.Job) (explore.EvalResult, error) {
	id := job.CellID()
	spec := api.JobSpec{Bench: job.Workload.Bench, InlineSpec: job.Workload.Spec}
	switch {
	case job.Config.Preset != "":
		spec.Config = job.Config.Preset
	case job.Config.Patch != nil:
		spec.ConfigPatch = job.Config.Patch
	case job.Config.Config != nil:
		spec.InlineConfig = job.Config.Config
	}
	resp, err := co.placeJob(ctx, id, spec, exploreIdentity, nil)
	if err != nil {
		return explore.EvalResult{}, err
	}
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	resp.Body.Close()
	if rerr != nil {
		return explore.EvalResult{}, fmt.Errorf("server: explore probe %s: reading worker response: %w", id, rerr)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return explore.EvalResult{}, fmt.Errorf("server: explore probe %s rejected: %s", id, strings.TrimSpace(string(data)))
	}
	var snap api.Job
	if json.Unmarshal(data, &snap) == nil {
		co.observe(snap, nil)
	}
	for !snap.State.Terminal() {
		if err := ctx.Err(); err != nil {
			return explore.EvalResult{}, err
		}
		snap, err = co.refreshJob(ctx, id, waitRound)
		if err != nil {
			return explore.EvalResult{}, err
		}
	}
	switch {
	case snap.State == api.JobDone && snap.Metrics != nil:
		return explore.EvalResult{Metrics: *snap.Metrics, Tier: snap.Tier}, nil
	case snap.State == api.JobFailed:
		return explore.EvalResult{}, fmt.Errorf("server: explore probe %s failed: %s", id, snap.Error)
	default:
		return explore.EvalResult{}, fmt.Errorf("server: explore probe %s ended %s without metrics", id, snap.State)
	}
}
