package server

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"gpumembw/client"
	"gpumembw/internal/api"
)

// TestSweepResourceLifecycle pins the sweep-as-resource redesign: POST
// /v1/sweeps returns a content-addressed ID, GET /v1/sweeps/{id} tracks
// per-cell state, and the completed resource carries the merged speedup
// grid relative to the first configuration column.
func TestSweepResourceLifecycle(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	resp, err := c.Sweep(ctx, client.SweepRequest{
		Configs: []string{"baseline", "L2-4x"},
		Benches: []string{testBench},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp.ID, "sw-") {
		t.Fatalf("sweep ID = %q, want sw- prefix", resp.ID)
	}
	if resp.Requested != 2 || len(resp.Jobs) != 2 {
		t.Fatalf("requested %d, %d jobs, want 2 and 2", resp.Requested, len(resp.Jobs))
	}

	sw, err := c.WaitSweep(ctx, resp.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if sw.State != client.SweepDone {
		t.Fatalf("sweep state = %s (counts %v), want done", sw.State, sw.Counts)
	}
	if sw.Counts[client.JobDone] != 2 {
		t.Fatalf("counts = %v, want 2 done", sw.Counts)
	}
	if len(sw.Jobs) != 2 || sw.Jobs[0].ID != resp.Jobs[0].ID || sw.Jobs[1].ID != resp.Jobs[1].ID {
		t.Fatalf("resource jobs diverge from submission order: %v vs %v", sw.Jobs, resp.Jobs)
	}
	sp := sw.Speedups
	if sp == nil {
		t.Fatal("completed axis-form sweep has no speedups")
	}
	if len(sp.Configs) != 2 || len(sp.Workloads) != 1 || len(sp.Cells) != 1 || len(sp.Cells[0]) != 2 {
		t.Fatalf("speedup grid shape: configs %v workloads %v cells %v", sp.Configs, sp.Workloads, sp.Cells)
	}
	if sp.Cells[0][0] != 1.0 {
		t.Fatalf("baseline column speedup = %v, want exactly 1.0", sp.Cells[0][0])
	}
	if sp.Cells[0][1] <= 0 {
		t.Fatalf("speedup vs baseline = %v, want > 0", sp.Cells[0][1])
	}
}

// TestSweepIDContentAddressed pins sweep identity: the same cell set —
// spelled as axes, spelled as an explicit cell list, or resubmitted —
// is the same resource, so retries and cross-entry-point submissions
// converge instead of multiplying.
func TestSweepIDContentAddressed(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	axes, err := c.Sweep(ctx, client.SweepRequest{
		Configs: []string{"baseline", "L2-4x"},
		Benches: []string{testBench},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The same cells as an explicit list, in a different order.
	cells, err := c.Sweep(ctx, client.SweepRequest{Cells: []client.JobSpec{
		{Config: "L2-4x", Bench: testBench},
		{Config: "baseline", Bench: testBench},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if axes.ID != cells.ID {
		t.Fatalf("axis form %s and cell-list form %s name different resources", axes.ID, cells.ID)
	}

	// The axis-form registration owns the grid, so the shared resource
	// still serves speedups.
	sw, err := c.WaitSweep(ctx, axes.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Speedups == nil {
		t.Fatal("merged resource lost its speedup grid")
	}
}

// TestSweepCellListAdoptsAxesGrid pins the twin-registration order the
// coordinator relies on: when the cell-list spelling registers first,
// a later axis-form submission upgrades the record with its grid.
func TestSweepCellListAdoptsAxesGrid(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	cells, err := c.Sweep(ctx, client.SweepRequest{Cells: []client.JobSpec{
		{Config: "baseline", Bench: testBench},
		{Config: "L2-4x", Bench: testBench},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := c.WaitSweep(ctx, cells.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Speedups != nil {
		t.Fatal("cell-list sweep has no axes; speedups should be absent")
	}

	axes, err := c.Sweep(ctx, client.SweepRequest{
		Configs: []string{"baseline", "L2-4x"},
		Benches: []string{testBench},
	})
	if err != nil {
		t.Fatal(err)
	}
	if axes.ID != cells.ID {
		t.Fatalf("twins diverged: %s vs %s", axes.ID, cells.ID)
	}
	sw, err = c.GetSweep(ctx, cells.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Speedups == nil {
		t.Fatal("axis-form twin did not upgrade the resource with its grid")
	}
}

// TestSweepUnknownID pins the 404 envelope on the sweep route.
func TestSweepUnknownID(t *testing.T) {
	_, ts := newIdleServer(t, Options{Workers: 1})
	var e api.Error
	resp := getJSON(t, ts.URL+"/v1/sweeps/sw-doesnotexist", &e)
	if resp.StatusCode != http.StatusNotFound || e.Code != api.CodeNotFound {
		t.Fatalf("status %d code %q, want 404 %q", resp.StatusCode, e.Code, api.CodeNotFound)
	}
}

// TestSweepMutuallyExclusiveForms pins the request validation boundary
// between the axis and cell-list spellings.
func TestSweepMutuallyExclusiveForms(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	_, err := c.Sweep(context.Background(), client.SweepRequest{
		Configs: []string{"baseline"},
		Benches: []string{testBench},
		Cells:   []client.JobSpec{{Config: "baseline", Bench: testBench}},
	})
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest || apiErr.Code != api.CodeInvalidArgument {
		t.Fatalf("mixed sweep forms: err = %v, want 400 invalid_argument", err)
	}
}
