package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"

	"gpumembw/internal/api"
)

// traceCtxKey carries the request's trace ID through handler contexts.
type traceCtxKey struct{}

// maxTraceIDLen bounds client-supplied trace IDs so hostile headers
// cannot bloat job records or log lines.
const maxTraceIDLen = 64

// genTraceID mints a fresh 16-hex-char trace identifier. Trace IDs are
// operational metadata — never part of cell identity or simulation
// results — so randomness here does not touch determinism guarantees.
func genTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a fixed
		// fallback keeps tracing degraded-but-alive.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeTraceID accepts a client-supplied trace ID if it is non-empty,
// bounded, and printable ASCII without spaces; anything else is
// discarded (the caller mints a fresh one).
func sanitizeTraceID(id string) string {
	if id == "" || len(id) > maxTraceIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' {
			return ""
		}
	}
	return id
}

// ensureTraceID returns the request's trace ID, minting one when the
// client sent none (or sent garbage).
func ensureTraceID(r *http.Request) string {
	if id := sanitizeTraceID(r.Header.Get(api.TraceHeader)); id != "" {
		return id
	}
	return genTraceID()
}

// withTrace is the tracing middleware: every request gets a trace ID —
// the client's X-Trace-Id or a freshly minted one — stored in the
// request context and echoed on the response, so a client (or the
// coordinator relaying to a worker) can correlate any response with the
// server's structured logs.
func withTrace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := ensureTraceID(r)
		w.Header().Set(api.TraceHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, id)))
	})
}

// traceIDFrom reads the middleware-assigned trace ID off the context.
func traceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceCtxKey{}).(string)
	return id
}

// beginSpan opens a lifecycle span on the job record. Callers hold
// Server.mu.
func (j *job) beginSpan(name string, t time.Time, attrs map[string]string) {
	j.spans = append(j.spans, api.Span{Name: name, Start: t, Attrs: attrs})
}

// endSpan closes the most recent still-open span, if any. Callers hold
// Server.mu.
func (j *job) endSpan(t time.Time) {
	for i := len(j.spans) - 1; i >= 0; i-- {
		if j.spans[i].End == nil {
			end := t
			j.spans[i].End = &end
			return
		}
	}
}

// spanAttr annotates the most recent span. Callers hold Server.mu.
func (j *job) spanAttr(key, val string) {
	if len(j.spans) == 0 {
		return
	}
	sp := &j.spans[len(j.spans)-1]
	if sp.Attrs == nil {
		sp.Attrs = make(map[string]string)
	}
	sp.Attrs[key] = val
}

// markTerminal closes any open span and appends the zero-length terminal
// marker (done/failed/canceled), completing the queued → running →
// terminal timeline. Callers hold Server.mu.
func (j *job) markTerminal(state api.JobState, t time.Time) {
	j.endSpan(t)
	end := t
	j.spans = append(j.spans, api.Span{Name: string(state), Start: t, End: &end})
}

// traceView assembles the wire Trace for GET /v1/jobs/{id}/trace. Attrs
// maps are deep-copied: the encoder runs outside the lock, and an open
// span's attrs may still be annotated. Callers hold Server.mu.
func (j *job) traceView() api.Trace {
	spans := make([]api.Span, len(j.spans))
	copy(spans, j.spans)
	for i := range spans {
		if spans[i].Attrs != nil {
			attrs := make(map[string]string, len(spans[i].Attrs))
			for k, v := range spans[i].Attrs {
				attrs[k] = v
			}
			spans[i].Attrs = attrs
		}
	}
	return api.Trace{JobID: j.ID, TraceID: j.TraceID, Spans: spans}
}
