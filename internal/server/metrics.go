package server

import (
	"net/http"
	"strconv"
	"time"

	"gpumembw/internal/api"
	"gpumembw/internal/metrics"
)

// jobStates is the fixed exposition order for the per-state job gauge;
// all states are always exported (zero-valued when empty) so dashboards
// never see series appear and disappear.
var jobStates = []api.JobState{api.JobQueued, api.JobRunning, api.JobDone, api.JobFailed, api.JobCanceled}

// initMetrics builds the /metrics registry. Gauges read live server
// state through closures at scrape time; counters are the same values
// /v1/stats reports, so the two endpoints reconcile exactly whenever the
// server is quiescent.
func (s *Server) initMetrics() {
	r := metrics.NewRegistry()
	s.registry = r

	s.httpRequests = r.CounterVec("gpusimd_http_requests_total",
		"HTTP requests served, by route pattern and status code.", "endpoint", "code")
	s.httpLatency = r.HistogramVec("gpusimd_http_request_seconds",
		"HTTP request latency in seconds, by route pattern.", []string{"endpoint"}, metrics.DefBuckets)
	s.rateLimited = r.Counter("gpusimd_rate_limited_total",
		"Requests rejected with 429 by the per-client rate limit.")
	s.quotaDenied = r.Counter("gpusimd_quota_denied_total",
		"Job enqueues rejected with 429 by the per-client inflight quota.")
	s.traceSpans = r.Counter("gpusimd_trace_spans_total",
		"Job lifecycle spans recorded (queued, running, terminal markers).")
	s.stageLatency = r.HistogramVec("gpusimd_job_stage_seconds",
		"Job stage wall-clock duration in seconds, by lifecycle stage.", []string{"stage"}, metrics.DefBuckets)

	r.GaugeFunc("gpusimd_workers", "Simulation worker-pool size.",
		func() float64 { return float64(s.workers) })
	r.GaugeFunc("gpusimd_inflight_sims", "Workers currently inside a simulation.",
		func() float64 { return float64(s.running.Load()) })
	r.GaugeFunc("gpusimd_queue_depth", "Jobs waiting in the bounded queue.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.pending))
		})
	r.GaugeFunc("gpusimd_queue_capacity", "Bounded queue capacity.",
		func() float64 { return float64(s.maxQueue) })
	r.GaugeVecFunc("gpusimd_jobs", "Job table size by state.", []string{"state"},
		func() []metrics.Sample {
			s.mu.Lock()
			byState := make(map[api.JobState]int, len(jobStates))
			for _, j := range s.jobs {
				byState[j.State]++
			}
			s.mu.Unlock()
			samples := make([]metrics.Sample, 0, len(jobStates))
			for _, st := range jobStates {
				samples = append(samples, metrics.Sample{Labels: []string{string(st)}, Value: float64(byState[st])})
			}
			return samples
		})

	s.sched.RegisterMetrics(r, "gpusimd_scheduler_")

	if s.cache != nil {
		r.GaugeFunc("gpusimd_disk_cache_entries", "Entries persisted in the disk cache.",
			func() float64 { return float64(s.cache.Stats().Entries) })
		r.GaugeFunc("gpusimd_disk_cache_bytes", "Accounted payload bytes in the disk cache.",
			func() float64 { return float64(s.cache.Stats().Bytes) })
		r.GaugeFunc("gpusimd_disk_cache_max_bytes", "Disk cache size bound; 0 means unbounded.",
			func() float64 { return float64(s.cache.Stats().MaxBytes) })
		r.CounterFunc("gpusimd_disk_cache_evictions_total", "Disk cache entries evicted by the size bound.",
			func() float64 { return float64(s.cache.Stats().Evictions) })
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.registry.WritePrometheus(w) //nolint:errcheck // the response is already committed
}

// statusRecorder captures the status code a handler committed so the
// instrumentation middleware can label its request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a route table with per-endpoint request counting
// and latency observation (shared by the daemon and the coordinator).
// The endpoint label is the ServeMux pattern that matched (r.Pattern is
// populated during routing), so /v1/jobs/{id} stays one series no
// matter how many job IDs exist.
func instrument(next http.Handler, requests *metrics.CounterVec, latency *metrics.HistogramVec) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		endpoint := r.Pattern
		if endpoint == "" {
			endpoint = "unmatched"
		}
		requests.With(endpoint, strconv.Itoa(rec.code)).Inc()
		latency.With(endpoint).Observe(time.Since(start).Seconds())
	})
}

// limited gates a mutating handler behind the per-client rate limiter
// (no-op when rate limiting is disabled). Read-side polling endpoints
// stay unlimited so a throttled client can still watch its jobs finish.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	if s.limiter == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if ok, retry := s.limiter.allow(clientKey(r), time.Now()); !ok {
			s.rateLimited.Inc()
			writeError(w, &httpError{
				status:     http.StatusTooManyRequests,
				retryAfter: retry,
				msg:        "server: rate limit exceeded, retry later",
			})
			return
		}
		h(w, r)
	}
}
