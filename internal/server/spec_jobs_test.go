package server

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"gpumembw/client"
	"gpumembw/internal/config"
	"gpumembw/internal/exp"
	"gpumembw/internal/trace"
)

// testSpec returns an inline workload spec that is NOT one of the 19
// Table II benchmarks — a deliberately tiny custom kernel.
func testSpec() client.WorkloadSpec {
	return client.WorkloadSpec{
		Name:         "tiny-custom",
		WarpsPerCore: 4, Iters: 4,
		LoadsPerIter: 2, ALUPerIter: 4,
		DepDist: 1, Pattern: trace.PatRandomWS,
		WorkingSetKB: 64,
		Seed:         99,
	}
}

// TestInlineSpecJobParity holds the daemon to the acceptance promise for
// custom workloads: an inline-spec job's metrics are byte-identical (as
// canonical JSON) to what the library produces for the same (config,
// spec) cell, and the daemon's cell simulates exactly once no matter how
// the workload is spelled.
func TestInlineSpecJobParity(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	spec := testSpec()
	job, err := c.Run(ctx, client.JobSpec{Config: "baseline", InlineSpec: &spec}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != client.JobDone {
		t.Fatalf("job = %+v", job)
	}

	ref, err := exp.NewScheduler().RunSpec(config.Baseline(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalJSON(t, job.Metrics), canonicalJSON(t, &ref); !bytes.Equal(got, want) {
		t.Fatalf("daemon metrics differ from library RunSpec:\n%s\nvs\n%s", got, want)
	}

	// Resubmitting the spec under a different label is the same cell.
	renamed := spec
	renamed.Name = "same-kernel-other-name"
	again, err := c.Run(ctx, client.JobSpec{Config: "baseline", InlineSpec: &renamed}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != job.ID {
		t.Fatalf("renamed spec got a new job (%s vs %s)", again.ID, job.ID)
	}
	if st := srv.Stats(); st.Scheduler.Simulated != 1 {
		t.Fatalf("simulated = %d, want 1", st.Scheduler.Simulated)
	}
}

// TestInlineSpecEqualToPresetSharesJob submits a benchmark by name and as
// an identical inline spec: one job, one simulation.
func TestInlineSpecEqualToPresetSharesJob(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()

	byName, err := c.Run(ctx, client.JobSpec{Config: "baseline", Bench: testBench}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := trace.SpecByName(testBench)
	if err != nil {
		t.Fatal(err)
	}
	inline, err := c.Run(ctx, client.JobSpec{Config: "baseline", InlineSpec: &sp}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if inline.ID != byName.ID {
		t.Fatalf("inline twin of %s got its own job (%s vs %s)", testBench, inline.ID, byName.ID)
	}
	if st := srv.Stats(); st.Scheduler.Simulated != 1 {
		t.Fatalf("simulated = %d, want 1", st.Scheduler.Simulated)
	}
}

// TestMalformedInlineSpecNeverCrashesDaemon is the MustBuild-panic
// regression test: malformed inline specs are 400s with validation
// detail, and the daemon keeps serving afterwards.
func TestMalformedInlineSpecNeverCrashesDaemon(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()

	sp := testSpec()
	cases := []struct {
		name    string
		mut     func(*client.WorkloadSpec)
		wantMsg string
	}{
		{"zero iters", func(s *client.WorkloadSpec) { s.Iters = 0 }, "Iters"},
		{"empty body", func(s *client.WorkloadSpec) { s.LoadsPerIter, s.ALUPerIter = 0, 0 }, "empty body"},
		{"missing working set", func(s *client.WorkloadSpec) { s.WorkingSetKB = 0 }, "WorkingSetKB"},
		{"negative geometry", func(s *client.WorkloadSpec) { s.SharedKB = -1 }, "negative"},
		{"unknown pattern", func(s *client.WorkloadSpec) { s.Pattern = 42 }, "pattern"},
	}
	for _, tc := range cases {
		bad := sp
		tc.mut(&bad)
		_, err := c.Submit(ctx, client.JobSpec{Config: "baseline", InlineSpec: &bad})
		var apiErr *client.APIError
		if err == nil || !errorsAs(err, &apiErr) {
			t.Fatalf("%s: err = %v, want APIError", tc.name, err)
		}
		if apiErr.StatusCode != http.StatusBadRequest || !strings.Contains(apiErr.Message, tc.wantMsg) {
			t.Fatalf("%s: got %d %q, want 400 containing %q", tc.name, apiErr.StatusCode, apiErr.Message, tc.wantMsg)
		}
	}

	// Workload-side shape errors.
	both := sp
	_, err := c.Submit(ctx, client.JobSpec{Config: "baseline", Bench: testBench, InlineSpec: &both})
	var apiErr *client.APIError
	if err == nil || !errorsAs(err, &apiErr) || !strings.Contains(apiErr.Message, "mutually exclusive") {
		t.Fatalf("bench+inlineSpec: err = %v, want mutual-exclusion 400", err)
	}
	if _, err := c.Submit(ctx, client.JobSpec{Config: "baseline"}); err == nil {
		t.Fatal("spec with no workload accepted")
	}

	// The daemon is still fully alive: a valid custom job completes.
	good := testSpec()
	job, err := c.Run(ctx, client.JobSpec{Config: "baseline", InlineSpec: &good}, 10*time.Millisecond)
	if err != nil || job.State != client.JobDone {
		t.Fatalf("daemon unhealthy after rejections: %+v, %v", job, err)
	}
}

// TestSweepWorkloadAxis crosses preset and inline workloads against
// preset and inline configs in one request, with full dedup.
func TestSweepWorkloadAxis(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	variant := testSpec()
	variant.Name = "tiny-tlp8"
	variant.WarpsPerCore = 8
	twin, err := trace.SpecByName(testBench) // inline twin of the preset bench
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Sweep(ctx, client.SweepRequest{
		Configs:     []string{"baseline"},
		Benches:     []string{testBench},
		InlineSpecs: []client.WorkloadSpec{testSpec(), variant, twin},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 workloads × 1 config, minus the twin collapsing onto the bench.
	if resp.Requested != 4 || resp.Deduped != 1 || len(resp.Jobs) != 3 {
		t.Fatalf("sweep expansion = %d requested, %d deduped, %d jobs", resp.Requested, resp.Deduped, len(resp.Jobs))
	}
	for _, j := range resp.Jobs {
		if _, err := c.Wait(ctx, j.ID, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if st := srv.Stats(); st.Scheduler.Simulated != 3 {
		t.Fatalf("simulated = %d, want 3", st.Scheduler.Simulated)
	}

	// A malformed corner rejects the whole sweep.
	bad := testSpec()
	bad.Iters = 0
	_, err = c.Sweep(ctx, client.SweepRequest{
		Configs:     []string{"baseline"},
		InlineSpecs: []client.WorkloadSpec{testSpec(), bad},
	})
	var apiErr *client.APIError
	if err == nil || !errorsAs(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("sweep with malformed spec: err = %v, want 400", err)
	}

	// A sweep with no workload axis at all is a 400 naming both options.
	_, err = c.Sweep(ctx, client.SweepRequest{Configs: []string{"baseline"}})
	if err == nil || !errorsAs(err, &apiErr) || !strings.Contains(apiErr.Message, "inlineSpecs") {
		t.Fatalf("workloadless sweep: err = %v, want benches/inlineSpecs 400", err)
	}
}

// TestDiskCacheServesInlineSpecAcrossRestart: a custom cell persisted by
// one daemon is served without re-simulation by a fresh daemon on the
// same -cache-dir — the same warm-restart promise preset cells have.
func TestDiskCacheServesInlineSpecAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := testSpec()

	_, c1 := newTestServer(t, Options{Workers: 1, CacheDir: dir})
	cold, err := c1.Run(ctx, client.JobSpec{Config: "baseline", InlineSpec: &spec}, 10*time.Millisecond)
	if err != nil || cold.State != client.JobDone {
		t.Fatalf("cold run: %+v, %v", cold, err)
	}

	srv2, c2 := newTestServer(t, Options{Workers: 1, CacheDir: dir})
	warm, err := c2.Run(ctx, client.JobSpec{Config: "baseline", InlineSpec: &spec}, 10*time.Millisecond)
	if err != nil || warm.State != client.JobDone {
		t.Fatalf("warm run: %+v, %v", warm, err)
	}
	if warm.ID != cold.ID {
		t.Fatalf("cell ID changed across restart: %s vs %s", warm.ID, cold.ID)
	}
	if !bytes.Equal(canonicalJSON(t, warm.Metrics), canonicalJSON(t, cold.Metrics)) {
		t.Fatal("warm metrics differ from cold metrics")
	}
	st := srv2.Stats()
	if st.Scheduler.Simulated != 0 || st.Scheduler.DiskHits != 1 {
		t.Fatalf("warm stats = %+v, want 0 simulated / 1 disk hit", st.Scheduler)
	}
}
