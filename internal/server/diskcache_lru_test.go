package server

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gpumembw/client"
	"gpumembw/internal/config"
	"gpumembw/internal/core"
	"gpumembw/internal/exp"
	"gpumembw/internal/trace"
)

// tinySpec is a minimal valid inline workload; distinct i values produce
// distinct content-addressed cells (Iters is part of spec identity).
func tinySpec(i int) trace.Spec {
	return trace.Spec{Name: fmt.Sprintf("tiny-%d", i), WarpsPerCore: 1, Iters: 1 + i, ALUPerIter: 1}
}

// tinyJob is the exp.Job form of tinySpec(i) against the baseline preset.
func tinyJob(i int) exp.Job {
	return exp.Job{Config: exp.PresetRef("baseline"), Workload: exp.SpecRef(tinySpec(i))}
}

// entrySize measures one persisted entry's on-disk size so LRU tests can
// pick bounds in units of entries instead of guessing byte counts.
func entrySize(t *testing.T) int64 {
	t.Helper()
	probe, err := newDiskCache(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	probe.Put(tinyJob(0), core.Metrics{Benchmark: "probe", Cycles: 1})
	return probe.Bytes()
}

func TestDiskCacheEvictsLRU(t *testing.T) {
	size := entrySize(t)
	dir := t.TempDir()
	// Room for two entries plus slack for per-entry size jitter, but
	// never a third.
	cache, err := newDiskCache(dir, 2*size+size/2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()

	cache.Put(tinyJob(0), core.Metrics{Cycles: 10})
	cache.Put(tinyJob(1), core.Metrics{Cycles: 11})
	// Touch 0 so 1 becomes the least recently used...
	if _, ok := cache.Get(tinyJob(0)); !ok {
		t.Fatal("entry 0 missed before eviction")
	}
	// ...then push the cache over its bound.
	cache.Put(tinyJob(2), core.Metrics{Cycles: 12})

	if _, ok := cache.Get(tinyJob(1)); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	if _, ok := cache.Get(tinyJob(0)); !ok {
		t.Fatal("recently used entry 0 was evicted")
	}
	if _, ok := cache.Get(tinyJob(2)); !ok {
		t.Fatal("fresh entry 2 missing")
	}
	if n := cache.Evictions(); n != 1 {
		t.Fatalf("evictions = %d, want 1", n)
	}
	if cache.Bytes() > 2*size+size/2 {
		t.Fatalf("cache over bound: %d bytes", cache.Bytes())
	}
	if cache.Len() != 2 {
		t.Fatalf("entries = %d, want 2", cache.Len())
	}
}

// TestDiskCacheKeepsOneOversizedEntry pins the bound's floor: a single
// entry larger than maxBytes is kept, never evicted into an empty cache.
func TestDiskCacheKeepsOneOversizedEntry(t *testing.T) {
	cache, err := newDiskCache(t.TempDir(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	cache.Put(tinyJob(0), core.Metrics{Cycles: 10})
	if _, ok := cache.Get(tinyJob(0)); !ok {
		t.Fatal("sole oversized entry was evicted")
	}
	if cache.Len() != 1 {
		t.Fatalf("entries = %d, want 1", cache.Len())
	}
}

// TestDiskCacheJournalPersistsRecency proves LRU order survives a
// restart: recency comes from the replayed journal, not file mtimes.
func TestDiskCacheJournalPersistsRecency(t *testing.T) {
	size := entrySize(t)
	dir := t.TempDir()
	cache, err := newDiskCache(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(tinyJob(0), core.Metrics{Cycles: 10})
	cache.Put(tinyJob(1), core.Metrics{Cycles: 11})
	cache.Put(tinyJob(2), core.Metrics{Cycles: 12})
	// Promote 0 past 1 and 2. By mtime alone, 0 would be the oldest.
	if _, ok := cache.Get(tinyJob(0)); !ok {
		t.Fatal("entry 0 missed")
	}
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with room for only two entries: the bound must evict entry
	// 1 — the least recently used per the journal — not entry 0.
	reopened, err := newDiskCache(dir, 2*size+size/2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if n := reopened.Evictions(); n != 1 {
		t.Fatalf("evictions at load = %d, want 1", n)
	}
	if _, ok := reopened.Get(tinyJob(1)); ok {
		t.Fatal("journal ignored: LRU entry 1 survived the bound")
	}
	for _, i := range []int{0, 2} {
		if _, ok := reopened.Get(tinyJob(i)); !ok {
			t.Fatalf("entry %d lost across restart", i)
		}
	}
}

// TestDiskCacheFaultInjection plants damaged spill files — zero-byte,
// truncated JSON, garbage, wrong schema — and asserts each is a miss
// that the next Put repairs, never an error or a poisoned result.
func TestDiskCacheFaultInjection(t *testing.T) {
	want := core.Metrics{Benchmark: "tiny-0", Cycles: 77}
	cases := map[string]func(valid []byte) []byte{
		"zero byte":    func([]byte) []byte { return nil },
		"truncated":    func(valid []byte) []byte { return valid[:len(valid)/2] },
		"garbage":      func([]byte) []byte { return []byte("{not json") },
		"wrong schema": func([]byte) []byte { return []byte(`{"schema":99}`) },
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cache, err := newDiskCache(dir, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer cache.Close()
			j := tinyJob(0)
			cache.Put(j, want)
			valid, err := os.ReadFile(cache.path(j))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(cache.path(j), corrupt(valid), 0o644); err != nil {
				t.Fatal(err)
			}
			if m, ok := cache.Get(j); ok {
				t.Fatalf("damaged entry served as a hit: %+v", m)
			}
			// The contract after a miss: re-simulate and overwrite. Here the
			// re-simulation result is simulated by calling Put again.
			cache.Put(j, want)
			m, ok := cache.Get(j)
			if !ok || m.Cycles != want.Cycles {
				t.Fatalf("repaired entry = %+v, %v; want %+v", m, ok, want)
			}
		})
	}
}

// TestDamagedEntryResimulates is the end-to-end form: a daemon whose
// spill file for a cell is corrupt re-simulates the cell and overwrites
// the damage, returning a 2xx result identical to a clean run.
func TestDamagedEntryResimulates(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	j := exp.BenchJob(config.Baseline(), testBench)
	path := filepath.Join(dir, cellID(j.Config, j.Workload)+".json")
	if err := os.WriteFile(path, []byte(`{"schema":1,"simVersion":`), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, c := newTestServer(t, Options{Workers: 2, CacheDir: dir})
	job, err := c.Run(ctx, client.JobSpec{Config: "baseline", Bench: testBench}, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != client.JobDone {
		t.Fatalf("run over corrupt cache entry: %s (%s)", job.State, job.Error)
	}
	st := srv.Stats()
	if st.Scheduler.Simulated != 1 || st.Scheduler.DiskHits != 0 {
		t.Fatalf("stats = %+v, want 1 simulated and 0 disk hits", st.Scheduler)
	}
	// The damage must have been overwritten with a servable entry.
	cache, err := newDiskCache(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	if _, ok := cache.Get(j); !ok {
		t.Fatal("corrupt entry was not repaired by the re-simulation")
	}
}

// TestEvictionPreservesByteCorrectness is the capped-cache acceptance
// check: force an eviction, restart with an empty memo, and assert the
// re-simulated cell is byte-identical to the pre-eviction result.
func TestEvictionPreservesByteCorrectness(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	size := entrySize(t)
	boot := func() (*Server, *client.Client) {
		return newTestServer(t, Options{Workers: 2, CacheDir: dir, CacheMaxBytes: size + size/2})
	}
	specA := tinySpec(0)
	submit := func(c *client.Client, sp trace.Spec) *client.Job {
		job, err := c.Run(ctx, client.JobSpec{Config: "baseline", InlineSpec: &sp}, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if job.State != client.JobDone {
			t.Fatalf("job %s: %s (%s)", sp.Name, job.State, job.Error)
		}
		return job
	}

	srv1, c1 := boot()
	before := submit(c1, specA)
	// Fill past the bound with other cells so cell A is evicted.
	for i := 1; i <= 3; i++ {
		submit(c1, tinySpec(i))
	}
	if st := srv1.Stats(); st.DiskCacheEvictions == 0 {
		t.Fatalf("no evictions with cache bound %d and %d cells: %+v", size+size/2, 4, st)
	}

	// A fresh daemon has no memo; with the spill evicted, cell A must
	// re-simulate — to the byte-identical payload.
	_, c2 := boot()
	after := submit(c2, specA)
	got, want := canonicalJSON(t, after.Metrics), canonicalJSON(t, before.Metrics)
	if !bytes.Equal(got, want) {
		t.Fatalf("re-simulated metrics differ after eviction:\n%s\nvs\n%s", got, want)
	}
}
