package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gpumembw"
	"gpumembw/client"
	"gpumembw/internal/api"
)

// testBench is the fastest cell in the suite (~150ms); server tests lean
// on it so the full package stays quick even under -race.
const testBench = "dwt2d"

// newTestServer boots a Server behind httptest and returns a client for
// it. Cleanup shuts both down.
func newTestServer(t *testing.T, opts Options) (*Server, *client.Client) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // double-shutdown in some tests
	})
	return srv, client.New(ts.URL)
}

func canonicalJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSubmitPollResultParity(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	job, err := c.Run(ctx, client.JobSpec{Config: "baseline", Bench: testBench}, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != client.JobDone {
		t.Fatalf("state = %s (error %q), want done", job.State, job.Error)
	}
	if job.Metrics == nil {
		t.Fatal("done job has no metrics")
	}

	// The HTTP result must match a direct library run of the same cell
	// byte-for-byte as canonical JSON.
	wl, err := gpumembw.WorkloadByName(testBench)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := gpumembw.Run(gpumembw.Baseline(), wl)
	if err != nil {
		t.Fatal(err)
	}
	got, want := canonicalJSON(t, job.Metrics), canonicalJSON(t, direct)
	if !bytes.Equal(got, want) {
		t.Fatalf("HTTP metrics differ from direct gpumembw.Run:\n--- http ---\n%s\n--- direct ---\n%s", got, want)
	}

	// Resubmitting the cell shares the existing job without another
	// simulation.
	again, err := c.Submit(ctx, client.JobSpec{Config: "baseline", Bench: testBench})
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != job.ID || again.State != client.JobDone {
		t.Fatalf("resubmit: got job %s (%s), want %s (done)", again.ID, again.State, job.ID)
	}
	if st := srv.Stats(); st.Scheduler.Simulated != 1 {
		t.Fatalf("simulated = %d, want 1", st.Scheduler.Simulated)
	}
}

func TestEnumerationEndpoints(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	benches, err := c.Benchmarks(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := gpumembw.BenchmarkNames(); strings.Join(benches, ",") != strings.Join(want, ",") {
		t.Fatalf("benchmarks = %v, want %v", benches, want)
	}
	configs, err := c.ConfigNames(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := gpumembw.ConfigNames(); strings.Join(configs, ",") != strings.Join(want, ",") {
		t.Fatalf("configs = %v, want %v", configs, want)
	}
}

func TestSweepDeduplicatesCells(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 4})
	ctx := context.Background()

	// "baseline" listed twice: the duplicate column must collapse.
	req := client.SweepRequest{Configs: []string{"baseline", "baseline", "P-inf"}, Benches: []string{testBench, "leukocyte"}}
	resp, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Requested != 6 || resp.Deduped != 2 || len(resp.Jobs) != 4 {
		t.Fatalf("sweep = %d requested, %d deduped, %d jobs; want 6/2/4", resp.Requested, resp.Deduped, len(resp.Jobs))
	}
	for _, j := range resp.Jobs {
		if _, err := c.Wait(ctx, j.ID, 20*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if st := srv.Stats(); st.Scheduler.Simulated != 4 {
		t.Fatalf("simulated = %d, want 4", st.Scheduler.Simulated)
	}

	// The same sweep submitted twice simulates each unique cell exactly
	// once: the second pass returns the same, already-done jobs.
	resp2, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range resp2.Jobs {
		if j.ID != resp.Jobs[i].ID {
			t.Fatalf("job %d: id %s != first sweep's %s", i, j.ID, resp.Jobs[i].ID)
		}
		if j.State != client.JobDone {
			t.Fatalf("job %s: state %s, want done", j.ID, j.State)
		}
	}
	if st := srv.Stats(); st.Scheduler.Simulated != 4 {
		t.Fatalf("after resubmit: simulated = %d, want still 4", st.Scheduler.Simulated)
	}
}

func TestCancelRemovesQueuedJob(t *testing.T) {
	// Workers not started yet, so submissions stay deterministically
	// queued until we say go.
	srv, err := newServer(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	keep, err := c.Submit(ctx, client.JobSpec{Config: "baseline", Bench: testBench})
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := c.Submit(ctx, client.JobSpec{Config: "P-inf", Bench: testBench})
	if err != nil {
		t.Fatal(err)
	}
	if keep.State != client.JobQueued || doomed.State != client.JobQueued {
		t.Fatalf("states = %s/%s, want queued/queued", keep.State, doomed.State)
	}

	got, err := c.Cancel(ctx, doomed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != client.JobCanceled {
		t.Fatalf("state after cancel = %s, want canceled", got.State)
	}
	// Canceling again is idempotent.
	if got, err = c.Cancel(ctx, doomed.ID); err != nil || got.State != client.JobCanceled {
		t.Fatalf("second cancel: %v, state %v", err, got)
	}

	srv.startWorkers()
	if _, err := c.Wait(ctx, keep.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The canceled job must never have run.
	if j, err := c.Job(ctx, doomed.ID); err != nil || j.State != client.JobCanceled {
		t.Fatalf("canceled job: %v, state %v", err, j.State)
	}
	if st := srv.Stats(); st.Scheduler.Simulated != 1 {
		t.Fatalf("simulated = %d, want 1 (canceled cell must not simulate)", st.Scheduler.Simulated)
	}

	// A completed job cannot be canceled.
	var apiErr *client.APIError
	if _, err := c.Cancel(ctx, keep.ID); err == nil {
		t.Fatal("canceling a done job succeeded")
	} else if !errorsAs(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("cancel done job: err = %v, want 409", err)
	}

	// A canceled job is resubmittable.
	re, err := c.Run(ctx, client.JobSpec{Config: "P-inf", Bench: testBench}, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if re.ID != doomed.ID || re.State != client.JobDone {
		t.Fatalf("resubmit after cancel: job %s state %s, want %s done", re.ID, re.State, doomed.ID)
	}

	ctxTO, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctxTO); err != nil {
		t.Fatal(err)
	}
}

// errorsAs avoids importing errors just for one assertion.
func errorsAs(err error, target **client.APIError) bool {
	e, ok := err.(*client.APIError)
	if ok {
		*target = e
	}
	return ok
}

func TestMalformedSpecsRejected(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()

	bad := gpumembw.Baseline()
	bad.Core.NumCores = 0

	cases := []struct {
		name    string
		spec    client.JobSpec
		status  int
		wantMsg string
	}{
		{"invalid inline config carries Validate detail",
			client.JobSpec{InlineConfig: &bad, Bench: testBench}, http.StatusBadRequest, "NumCores"},
		{"unknown preset lists valid names",
			client.JobSpec{Config: "nope", Bench: testBench}, http.StatusBadRequest, "baseline"},
		{"unknown bench lists valid names",
			client.JobSpec{Config: "baseline", Bench: "nope"}, http.StatusBadRequest, testBench},
		{"missing config",
			client.JobSpec{Bench: testBench}, http.StatusBadRequest, "config"},
		{"config and inline are exclusive",
			client.JobSpec{Config: "baseline", InlineConfig: &bad, Bench: testBench}, http.StatusBadRequest, "mutually exclusive"},
	}
	for _, tc := range cases {
		_, err := c.Submit(ctx, tc.spec)
		var apiErr *client.APIError
		if err == nil || !errorsAs(err, &apiErr) {
			t.Fatalf("%s: err = %v, want APIError", tc.name, err)
		}
		if apiErr.StatusCode != tc.status || !strings.Contains(apiErr.Message, tc.wantMsg) {
			t.Fatalf("%s: got %d %q, want %d containing %q", tc.name, apiErr.StatusCode, apiErr.Message, tc.status, tc.wantMsg)
		}
	}

	// Unknown job IDs are 404.
	var apiErr *client.APIError
	if _, err := c.Job(ctx, "deadbeef"); err == nil || !errorsAs(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: err = %v, want 404", err)
	}
}

func TestQueueBoundReturns503(t *testing.T) {
	srv, err := newServer(Options{Workers: 1, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	if _, err := c.Submit(ctx, client.JobSpec{Config: "baseline", Bench: testBench}); err != nil {
		t.Fatal(err)
	}
	var apiErr *client.APIError
	_, err = c.Submit(ctx, client.JobSpec{Config: "P-inf", Bench: testBench})
	if err == nil || !errorsAs(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: err = %v, want 503", err)
	}

	// Canceling the queued job frees its slot immediately.
	jobs, err := c.Jobs(ctx)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("jobs = %v, %v", jobs, err)
	}
	if _, err := c.Cancel(ctx, jobs[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, client.JobSpec{Config: "P-inf", Bench: testBench}); err != nil {
		t.Fatalf("submit after cancel should reuse the freed slot: %v", err)
	}
	srv.startWorkers()
	ctxTO, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctxTO); err != nil {
		t.Fatal(err)
	}
}

func TestSweepRejectsWholeWhenQueueTooSmall(t *testing.T) {
	srv, err := newServer(Options{Workers: 1, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	// Two cells, one slot: the sweep must reject atomically, leaving the
	// client owning no half-submitted jobs.
	var apiErr *client.APIError
	_, err = c.Sweep(ctx, client.SweepRequest{Configs: []string{"baseline", "P-inf"}, Benches: []string{testBench}})
	if err == nil || !errorsAs(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("oversized sweep: err = %v, want 503", err)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("oversized sweep half-submitted %d job(s)", len(jobs))
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 4})
	ctx := context.Background()

	specs := []client.JobSpec{
		{Config: "baseline", Bench: testBench},
		{Config: "P-inf", Bench: testBench},
	}
	const clientsPerSpec = 8
	var wg sync.WaitGroup
	jobs := make([]*client.Job, len(specs)*clientsPerSpec)
	errs := make([]error, len(jobs))
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jobs[i], errs[i] = c.Run(ctx, specs[i%len(specs)], 10*time.Millisecond)
			// Interleave reads to shake races out of the job table.
			c.Jobs(ctx)  //nolint:errcheck
			c.Stats(ctx) //nolint:errcheck
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if jobs[i].State != client.JobDone {
			t.Fatalf("client %d: state %s (error %q)", i, jobs[i].State, jobs[i].Error)
		}
	}
	// Every client that asked for the same cell saw the same job and the
	// same result; only the unique cells simulated.
	for i, j := range jobs {
		ref := jobs[i%len(specs)]
		if j.ID != ref.ID {
			t.Fatalf("client %d: id %s, want %s", i, j.ID, ref.ID)
		}
		if !bytes.Equal(canonicalJSON(t, j.Metrics), canonicalJSON(t, ref.Metrics)) {
			t.Fatalf("client %d: metrics diverge", i)
		}
	}
	if st := srv.Stats(); st.Scheduler.Simulated != int64(len(specs)) {
		t.Fatalf("simulated = %d, want %d", st.Scheduler.Simulated, len(specs))
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	srv, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	j, err := c.Submit(ctx, client.JobSpec{Config: "baseline", Bench: testBench})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker actually picked it up so shutdown exercises
	// the drain path, not queued-job cancellation.
	for {
		cur, err := c.Job(ctx, j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State != client.JobQueued {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctxTO, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctxTO); err != nil {
		t.Fatal(err)
	}
	done, err := c.Job(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != client.JobDone {
		t.Fatalf("in-flight job after drain: %s, want done", done.State)
	}

	// The drained daemon refuses new work.
	var apiErr *client.APIError
	if _, err := c.Submit(ctx, client.JobSpec{Config: "P-inf", Bench: testBench}); err == nil || !errorsAs(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: err = %v, want 503", err)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, c := newTestServer(t, Options{Workers: 3, MaxQueue: 17})
	ctx := context.Background()
	if _, err := c.Run(ctx, client.JobSpec{Config: "baseline", Bench: testBench}, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 3 || st.QueueCap != 17 {
		t.Fatalf("stats = %+v, want 3 workers, queue cap 17", st)
	}
	if st.Scheduler.Simulated != 1 || st.Jobs[api.JobDone] != 1 {
		t.Fatalf("stats = %+v, want 1 simulated, 1 done job", st)
	}
	_ = srv
}
