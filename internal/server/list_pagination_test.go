package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"gpumembw/client"
	"gpumembw/internal/api"
)

// asAPIError unwraps a client error into its *APIError, shared by the
// listing, envelope and sweep tests.
func asAPIError(err error, out **client.APIError) bool {
	return errors.As(err, out)
}

// mshrPatch builds a distinct cheap cell: the fast test benchmark under
// a baseline patch with n L1 MSHR entries.
func mshrPatch(n int) client.JobSpec {
	return client.JobSpec{
		ConfigPatch: &client.ConfigPatch{
			Base:  "baseline",
			Delta: json.RawMessage(fmt.Sprintf(`{"L1":{"MSHREntries":%d}}`, n)),
		},
		Bench: testBench,
	}
}

// TestListPaginationInvariants pins the cursor contract: walking pages
// with any limit yields every job exactly once, in the stable
// (SubmittedAt, ID) order, and the final page carries no token.
func TestListPaginationInvariants(t *testing.T) {
	_, ts := newIdleServer(t, Options{Workers: 1})
	c := client.New(ts.URL)
	ctx := context.Background()

	const n = 7
	submitted := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		j, err := c.Submit(ctx, mshrPatch(8<<i))
		if err != nil {
			t.Fatal(err)
		}
		submitted[j.ID] = true
	}

	full, err := c.ListJobs(ctx, client.ListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Jobs) != n || full.NextPageToken != "" {
		t.Fatalf("unbounded list: %d jobs, token %q; want %d jobs, no token", len(full.Jobs), full.NextPageToken, n)
	}
	for i := 1; i < len(full.Jobs); i++ {
		a, b := full.Jobs[i-1], full.Jobs[i]
		if a.SubmittedAt.After(b.SubmittedAt) || (a.SubmittedAt.Equal(b.SubmittedAt) && a.ID >= b.ID) {
			t.Fatalf("listing out of order at %d: %s then %s", i, a.ID, b.ID)
		}
	}

	for limit := 1; limit <= n+1; limit++ {
		var walked []api.Job
		token := ""
		for pages := 0; ; pages++ {
			if pages > n+1 {
				t.Fatalf("limit %d: pagination did not terminate", limit)
			}
			page, err := c.ListJobs(ctx, client.ListOptions{Limit: limit, PageToken: token})
			if err != nil {
				t.Fatal(err)
			}
			if len(page.Jobs) > limit {
				t.Fatalf("limit %d: page of %d jobs", limit, len(page.Jobs))
			}
			walked = append(walked, page.Jobs...)
			if page.NextPageToken == "" {
				break
			}
			token = page.NextPageToken
		}
		if len(walked) != n {
			t.Fatalf("limit %d: walked %d jobs, want %d", limit, len(walked), n)
		}
		seen := make(map[string]bool)
		for i, j := range walked {
			if seen[j.ID] {
				t.Fatalf("limit %d: job %s appeared twice", limit, j.ID)
			}
			seen[j.ID] = true
			if j.ID != full.Jobs[i].ID {
				t.Fatalf("limit %d: page walk order diverges from unbounded order at %d", limit, i)
			}
		}
	}
}

// TestListStateFilter pins ?state= filtering alongside pagination.
func TestListStateFilter(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()
	if _, err := c.Run(ctx, client.JobSpec{Config: "baseline", Bench: testBench}, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	done, err := c.ListJobs(ctx, client.ListOptions{State: client.JobDone})
	if err != nil {
		t.Fatal(err)
	}
	if len(done.Jobs) != 1 || done.Jobs[0].State != client.JobDone {
		t.Fatalf("state=done listing: %+v", done.Jobs)
	}
	queued, err := c.ListJobs(ctx, client.ListOptions{State: client.JobQueued})
	if err != nil {
		t.Fatal(err)
	}
	if len(queued.Jobs) != 0 {
		t.Fatalf("state=queued listing has %d jobs, want 0", len(queued.Jobs))
	}
}

// TestListRejectsMalformedQueries pins the envelope on listing
// validation: unknown states, bad limits, and garbage tokens are 400s
// with invalid_argument — never a silent empty page.
func TestListRejectsMalformedQueries(t *testing.T) {
	_, ts := newIdleServer(t, Options{Workers: 1})
	for _, q := range []string{"state=bogus", "limit=-1", "limit=x", "page_token=%21%21not-base64"} {
		var e api.Error
		resp := getJSON(t, ts.URL+"/v1/jobs?"+q, &e)
		if resp.StatusCode != http.StatusBadRequest || e.Code != api.CodeInvalidArgument {
			t.Fatalf("%s: status %d code %q, want 400 %q", q, resp.StatusCode, e.Code, api.CodeInvalidArgument)
		}
		if e.Detail == "" {
			t.Fatalf("%s: empty detail", q)
		}
	}
}
