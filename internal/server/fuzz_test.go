package server

import (
	"encoding/json"
	"errors"
	"testing"

	"gpumembw/internal/api"
	"gpumembw/internal/explore"
)

// FuzzJobSpecDecode runs arbitrary request bodies through the exact
// pipeline POST /v1/jobs uses: JSON decode into api.JobSpec, then
// resolveSpec validation. The daemon's contract is reject-don't-panic —
// any outcome but a clean 400-shaped error or a deterministic cell ID is
// a bug a client could trigger remotely.
func FuzzJobSpecDecode(f *testing.F) {
	seeds := []string{
		`{"config":"baseline","bench":"dwt2d"}`,
		`{"config":"P-inf","bench":"leukocyte"}`,
		`{"configPatch":{"base":"baseline","L1":{"MSHREntries":128}},"bench":"dwt2d"}`,
		`{"config":"baseline","inlineSpec":{"Name":"t","Iters":1,"ALUPerIter":1}}`,
		`{"inlineConfig":{"NumCores":16},"inlineSpec":{"Name":"t","Iters":1,"LoadsPerIter":1,"Pattern":"stream"}}`,
		`{"config":"baseline"}`,
		`{"bench":"dwt2d"}`,
		`{"config":"baseline","inlineConfig":{},"bench":"dwt2d"}`,
		`{"config":"nope","bench":"nope"}`,
		`{"inlineSpec":{"Pattern":"tiled"},"configPatch":{"base":""}}`,
		`{}`,
		`null`,
		`{"inlineSpec":{"SharedFrac":"NaN"}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec api.JobSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		cref, ref, err := resolveSpec(spec)
		if err != nil {
			var he *httpError
			if !errors.As(err, &he) || he.status < 400 || he.status > 499 {
				t.Errorf("resolveSpec rejection is not a 4xx httpError: %v", err)
			}
			return
		}
		id := cellID(cref, ref)
		if id == "" {
			t.Errorf("accepted spec produced an empty cell ID: %+v", spec)
		}
		// Resolution must be deterministic: the same wire bytes always
		// land on the same content-addressed cell.
		cref2, ref2, err := resolveSpec(spec)
		if err != nil {
			t.Errorf("second resolve of an accepted spec failed: %v", err)
		} else if id2 := cellID(cref2, ref2); id2 != id {
			t.Errorf("non-deterministic cell ID: %s vs %s for %s", id, id2, data)
		}
	})
}

// FuzzExploreRequestDecode runs arbitrary request bodies through the
// exact pipeline POST /v1/explore uses: JSON decode into
// api.ExploreRequest, then explore.Compile canonicalization. The same
// reject-don't-panic contract applies — any decodable body must either
// compile into a plan or fail with an error the handler maps to a 400;
// and compilation must be deterministic, since the plan ID is the
// exploration resource's content address.
func FuzzExploreRequestDecode(f *testing.F) {
	seeds := []string{
		`{"benchmarks":["dwt2d"],"objective":{"targetSpeedup":1.5}}`,
		`{"benchmarks":["mm","sc"],"objective":{"targetSpeedup":1.2,"minimize":"area"},"strategy":"halving"}`,
		`{"benchmarks":["mm"],"objective":{"areaBudgetMM2":20,"maximize":"speedup"},"strategy":"climb"}`,
		`{"benchmarks":["mm"],"base":"P-inf","objective":{"targetSpeedup":2}}`,
		`{"benchmarks":["mm"],"objective":{"targetSpeedup":1.5},"knobs":[{"path":"l2.num_banks","values":["12","24","48"]}]}`,
		`{"inlineSpecs":[{"Name":"t","Iters":1,"LoadsPerIter":1,"Pattern":"stream"}],"objective":{"targetSpeedup":1.1}}`,
		`{"benchmarks":["mm"],"objective":{"targetSpeedup":1.5,"areaBudgetMM2":20}}`,
		`{"benchmarks":["mm"],"objective":{}}`,
		`{"objective":{"targetSpeedup":1.5}}`,
		`{"benchmarks":["nope"],"objective":{"targetSpeedup":1.5}}`,
		`{"benchmarks":["mm"],"objective":{"targetSpeedup":0.5}}`,
		`{"benchmarks":["mm"],"objective":{"targetSpeedup":1.5,"minimize":"latency"}}`,
		`{"benchmarks":["mm"],"objective":{"targetSpeedup":1.5},"knobs":[{"path":"nope","values":["1"]}]}`,
		`{"benchmarks":["mm"],"objective":{"targetSpeedup":1.5},"maxRounds":-3}`,
		`{"benchmarks":["mm"],"objective":{"targetSpeedup":1.5},"strategy":"annealing"}`,
		`{}`,
		`null`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req api.ExploreRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		p, err := explore.Compile(req)
		if err != nil {
			return // handler maps any compile failure to a 400
		}
		id := p.ID()
		if id == "" {
			t.Errorf("accepted request produced an empty exploration ID: %s", data)
		}
		// Compilation must be deterministic: the same wire bytes always
		// land on the same content-addressed exploration resource.
		p2, err := explore.Compile(req)
		if err != nil {
			t.Errorf("second compile of an accepted request failed: %v", err)
		} else if id2 := p2.ID(); id2 != id {
			t.Errorf("non-deterministic exploration ID: %s vs %s for %s", id, id2, data)
		}
		if p.Space.GridSize() <= 0 {
			t.Errorf("accepted request produced a non-positive grid: %s", data)
		}
	})
}
