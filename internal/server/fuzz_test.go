package server

import (
	"encoding/json"
	"errors"
	"testing"

	"gpumembw/internal/api"
)

// FuzzJobSpecDecode runs arbitrary request bodies through the exact
// pipeline POST /v1/jobs uses: JSON decode into api.JobSpec, then
// resolveSpec validation. The daemon's contract is reject-don't-panic —
// any outcome but a clean 400-shaped error or a deterministic cell ID is
// a bug a client could trigger remotely.
func FuzzJobSpecDecode(f *testing.F) {
	seeds := []string{
		`{"config":"baseline","bench":"dwt2d"}`,
		`{"config":"P-inf","bench":"leukocyte"}`,
		`{"configPatch":{"base":"baseline","L1":{"MSHREntries":128}},"bench":"dwt2d"}`,
		`{"config":"baseline","inlineSpec":{"Name":"t","Iters":1,"ALUPerIter":1}}`,
		`{"inlineConfig":{"NumCores":16},"inlineSpec":{"Name":"t","Iters":1,"LoadsPerIter":1,"Pattern":"stream"}}`,
		`{"config":"baseline"}`,
		`{"bench":"dwt2d"}`,
		`{"config":"baseline","inlineConfig":{},"bench":"dwt2d"}`,
		`{"config":"nope","bench":"nope"}`,
		`{"inlineSpec":{"Pattern":"tiled"},"configPatch":{"base":""}}`,
		`{}`,
		`null`,
		`{"inlineSpec":{"SharedFrac":"NaN"}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec api.JobSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		cref, ref, err := resolveSpec(spec)
		if err != nil {
			var he *httpError
			if !errors.As(err, &he) || he.status < 400 || he.status > 499 {
				t.Errorf("resolveSpec rejection is not a 4xx httpError: %v", err)
			}
			return
		}
		id := cellID(cref, ref)
		if id == "" {
			t.Errorf("accepted spec produced an empty cell ID: %+v", spec)
		}
		// Resolution must be deterministic: the same wire bytes always
		// land on the same content-addressed cell.
		cref2, ref2, err := resolveSpec(spec)
		if err != nil {
			t.Errorf("second resolve of an accepted spec failed: %v", err)
		} else if id2 := cellID(cref2, ref2); id2 != id {
			t.Errorf("non-deterministic cell ID: %s vs %s for %s", id, id2, data)
		}
	})
}
