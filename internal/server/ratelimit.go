package server

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// apiKeyHeader identifies a client independently of its network address.
// When absent, the remote host (sans port) is the client key, so NATed
// CLI users and sidecar proxies still get per-source fairness.
const apiKeyHeader = "X-API-Key"

// clientKey returns the quota/rate-limit identity of a request.
func clientKey(r *http.Request) string {
	if key := r.Header.Get(apiKeyHeader); key != "" {
		return "key:" + key
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}

// maxBuckets caps the limiter's per-client state so hostile clients
// cycling API keys cannot grow it without bound; full (idle) buckets are
// reclaimed first.
const maxBuckets = 4096

// bucket is one client's token-bucket state.
type bucket struct {
	tokens float64
	last   time.Time
}

// limiter is a token-bucket rate limiter keyed by client: each client
// accrues `rate` tokens per second up to `burst`, and each request
// spends one. It is deliberately small — no goroutines, prune-on-use —
// so the daemon carries no background work for idle clients.
type limiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

// newLimiter builds a limiter granting rate requests/second with the
// given burst (minimum 1).
func newLimiter(rate float64, burst int) *limiter {
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, math.Ceil(rate))
	}
	return &limiter{rate: rate, burst: b, buckets: make(map[string]*bucket)}
}

// allow spends one token for key if available. When denied, retryAfter
// is the wait until the next token accrues — the Retry-After header the
// 429 response carries.
func (l *limiter) allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.buckets[key]
	if !exists {
		if len(l.buckets) >= maxBuckets {
			l.pruneLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}

// pruneLocked drops clients whose buckets have refilled completely —
// they have been idle at least burst/rate seconds and lose nothing by
// starting fresh. Callers hold l.mu.
func (l *limiter) pruneLocked(now time.Time) {
	for key, b := range l.buckets {
		if math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate) >= l.burst {
			delete(l.buckets, key)
		}
	}
}
