package server

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"gpumembw/client"
	"gpumembw/internal/trace"
)

// exploreSpec is a fast inline workload for exploration tests: small
// enough that a whole search stays in the hundreds of milliseconds,
// memory-bound enough that mitigation knobs move the needle.
func exploreSpec() trace.Spec {
	return trace.Spec{
		Name: "探-t", Iters: 2, LoadsPerIter: 6, ALUPerIter: 1,
		Pattern: trace.PatRandomWS, WorkingSetKB: 512, WarpsPerCore: 8, Seed: 7,
	}
}

// exploreReq is the canonical small search the explore tests share: a
// 2-axis custom lattice so the probe count stays tiny.
func exploreReq() client.ExploreRequest {
	return client.ExploreRequest{
		InlineSpecs: []trace.Spec{exploreSpec()},
		Objective:   client.ExploreObjective{TargetSpeedup: 1.01, Minimize: "area"},
		Knobs: []client.ExploreKnob{
			{Path: "l1.mshr_entries", Values: []string{"32", "64", "128"}},
			{Path: "l2.num_banks", Values: []string{"12", "24"}},
		},
	}
}

// TestExploreLifecycle drives POST /v1/explore end to end on one
// daemon: the search finishes, the resource carries rounds, a frontier
// and a recommendation, re-posting the identical request joins the same
// content-addressed resource without simulating anything new, and the
// knob-space model is served at GET /v1/knobs.
func TestExploreLifecycle(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 4, CacheDir: t.TempDir()})
	ctx := context.Background()

	ex, err := c.Explore(ctx, exploreReq())
	if err != nil {
		t.Fatal(err)
	}
	if ex.ID == "" || ex.GridSize != 6 {
		t.Fatalf("exploration = %+v, want an ID and grid 3×2=6", ex)
	}
	done, err := c.WaitExploration(ctx, ex.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != client.ExplorationDone {
		t.Fatalf("state = %s (error %q), want done", done.State, done.Error)
	}
	if len(done.Rounds) == 0 || len(done.Frontier) == 0 || done.Recommended == nil {
		t.Fatalf("finished exploration is missing rounds/frontier/recommendation: %+v", done)
	}
	if done.Probes <= 0 || int64(done.Probes) > done.GridSize {
		t.Fatalf("probes = %d of grid %d", done.Probes, done.GridSize)
	}
	if done.Tiers.Simulated == 0 {
		t.Fatal("a first-run exploration must simulate at least one cell")
	}
	if done.ProbesDigest == "" {
		t.Fatal("finished exploration has no probes digest")
	}

	// Idempotent rejoin: the same request is the same resource, already
	// finished, with nothing new simulated.
	again, err := c.Explore(ctx, exploreReq())
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != done.ID {
		t.Fatalf("re-posted exploration got ID %s, want %s", again.ID, done.ID)
	}
	if again.State != client.ExplorationDone || again.Tiers != done.Tiers {
		t.Fatalf("rejoined exploration = state %s tiers %+v, want the finished original %+v",
			again.State, again.Tiers, done.Tiers)
	}

	// The knob-space model backs the lattice.
	knobs, err := c.Knobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range knobs {
		if k.Path == "l1.mshr_entries" {
			found = true
			if k.Type != "int" || k.Baseline == "" {
				t.Fatalf("l1.mshr_entries knob = %+v", k)
			}
		}
	}
	if !found {
		t.Fatalf("GET /v1/knobs (%d entries) is missing l1.mshr_entries", len(knobs))
	}
}

// TestExploreRejectsHostileRequests pins the 400 surface of POST
// /v1/explore: every malformed request is refused with a client-error
// envelope, never accepted or crashed on.
func TestExploreRejectsHostileRequests(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()
	hostile := map[string]client.ExploreRequest{
		"no workloads": {Objective: client.ExploreObjective{TargetSpeedup: 1.5}},
		"no objective": {Benchmarks: []string{testBench}},
		"both objectives": {Benchmarks: []string{testBench},
			Objective: client.ExploreObjective{TargetSpeedup: 1.5, AreaBudgetMM2: 20}},
		"target below 1": {Benchmarks: []string{testBench},
			Objective: client.ExploreObjective{TargetSpeedup: 0.5}},
		"unknown bench": {Benchmarks: []string{"nope"},
			Objective: client.ExploreObjective{TargetSpeedup: 1.5}},
		"unknown base": {Benchmarks: []string{testBench}, Base: "nope",
			Objective: client.ExploreObjective{TargetSpeedup: 1.5}},
		"unknown strategy": {Benchmarks: []string{testBench}, Strategy: "annealing",
			Objective: client.ExploreObjective{TargetSpeedup: 1.5}},
		"unknown knob": {Benchmarks: []string{testBench},
			Objective: client.ExploreObjective{TargetSpeedup: 1.5},
			Knobs:     []client.ExploreKnob{{Path: "nope", Values: []string{"1"}}}},
		"unparsable knob value": {Benchmarks: []string{testBench},
			Objective: client.ExploreObjective{TargetSpeedup: 1.5},
			Knobs:     []client.ExploreKnob{{Path: "l1.mshr_entries", Values: []string{"many"}}}},
		"wrong minimize": {Benchmarks: []string{testBench},
			Objective: client.ExploreObjective{TargetSpeedup: 1.5, Minimize: "latency"}},
	}
	for name, req := range hostile {
		_, err := c.Explore(ctx, req)
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode < 400 || apiErr.StatusCode > 499 {
			t.Errorf("%s: err = %v, want a 4xx APIError", name, err)
		}
	}
	if _, err := c.GetExploration(ctx, "ex-nope"); err == nil {
		t.Error("GET of an unknown exploration did not fail")
	}
}

// TestExploreRestartResume pins the journal/resume contract: a daemon
// restarted on the same cache directory replays its journaled
// explorations entirely from the disk cache — the rebuilt resource is
// identical (same ID, digest, frontier and recommendation) and zero
// cells are re-simulated.
func TestExploreRestartResume(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	boot := func() (*Server, *httptest.Server, *client.Client) {
		srv, err := New(Options{Workers: 4, CacheDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		return srv, ts, client.New(ts.URL)
	}

	srv, ts, c := boot()
	first, err := c.Explore(ctx, exploreReq())
	if err != nil {
		t.Fatal(err)
	}
	first, err = c.WaitExploration(ctx, first.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != client.ExplorationDone || first.Tiers.Simulated == 0 {
		t.Fatalf("first run = state %s tiers %+v", first.State, first.Tiers)
	}
	ts.Close()
	shctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shctx); err != nil {
		t.Fatal(err)
	}

	// A fresh daemon on the same cache dir re-runs the journaled search
	// on boot — from cache, simulating nothing.
	srv2, ts2, c2 := boot()
	defer func() {
		ts2.Close()
		shctx2, cancel2 := context.WithTimeout(ctx, 30*time.Second)
		defer cancel2()
		srv2.Shutdown(shctx2) //nolint:errcheck // test teardown
	}()
	second, err := c2.WaitExploration(ctx, first.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if second.State != client.ExplorationDone {
		t.Fatalf("replayed exploration = state %s (error %q)", second.State, second.Error)
	}
	if second.Tiers.Simulated != 0 {
		t.Fatalf("replayed exploration simulated %d cells, want 0 (all from disk cache)",
			second.Tiers.Simulated)
	}
	if second.ProbesDigest != first.ProbesDigest || second.Probes != first.Probes {
		t.Fatalf("replay diverged: probes %d digest %s, want %d %s",
			second.Probes, second.ProbesDigest, first.Probes, first.ProbesDigest)
	}
	if string(canonicalJSON(t, second.Recommended)) != string(canonicalJSON(t, first.Recommended)) ||
		string(canonicalJSON(t, second.Frontier)) != string(canonicalJSON(t, first.Frontier)) {
		t.Fatal("replayed exploration's frontier or recommendation differs from the original")
	}
}

// TestExploreClusterParity pins placement-neutrality for explorations:
// the same request on a single daemon and on a 2-worker coordinator
// lands on the same exploration ID, probe digest, frontier and
// recommendation. Sharding is placement, never results.
func TestExploreClusterParity(t *testing.T) {
	ctx := context.Background()
	_, single := newTestServer(t, Options{Workers: 4})
	tc := newTestCluster(t, []*Server{newWorker(t), newWorker(t)})

	req := exploreReq()
	a, err := single.Explore(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tc.client.Explore(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("daemon and coordinator disagree on the exploration ID: %s vs %s", a.ID, b.ID)
	}
	if a, err = single.WaitExploration(ctx, a.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if b, err = tc.client.WaitExploration(ctx, b.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if a.State != client.ExplorationDone || b.State != client.ExplorationDone {
		t.Fatalf("states: daemon %s (%q), coordinator %s (%q)", a.State, a.Error, b.State, b.Error)
	}
	if a.ProbesDigest != b.ProbesDigest || a.Probes != b.Probes {
		t.Fatalf("probe sets diverge: daemon %d/%s, coordinator %d/%s",
			a.Probes, a.ProbesDigest, b.Probes, b.ProbesDigest)
	}
	if string(canonicalJSON(t, a.Recommended)) != string(canonicalJSON(t, b.Recommended)) ||
		string(canonicalJSON(t, a.Frontier)) != string(canonicalJSON(t, b.Frontier)) {
		t.Fatal("daemon and coordinator disagree on the frontier or recommendation")
	}
	for i := range a.Rounds {
		if a.Rounds[i].Probes != b.Rounds[i].Probes || a.Rounds[i].Label != b.Rounds[i].Label {
			t.Fatalf("round %d diverges: %+v vs %+v", i, a.Rounds[i], b.Rounds[i])
		}
	}
}

// TestExploreWorkerCountParity pins scheduler-concurrency neutrality:
// one worker and eight workers walk the identical probe sequence and
// land on the identical result.
func TestExploreWorkerCountParity(t *testing.T) {
	ctx := context.Background()
	_, j1 := newTestServer(t, Options{Workers: 1})
	_, j8 := newTestServer(t, Options{Workers: 8})
	a, err := j1.Explore(ctx, exploreReq())
	if err != nil {
		t.Fatal(err)
	}
	b, err := j8.Explore(ctx, exploreReq())
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("worker counts disagree on the exploration ID: %s vs %s", a.ID, b.ID)
	}
	if a, err = j1.WaitExploration(ctx, a.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if b, err = j8.WaitExploration(ctx, b.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if a.ProbesDigest != b.ProbesDigest || a.Probes != b.Probes ||
		string(canonicalJSON(t, a.Recommended)) != string(canonicalJSON(t, b.Recommended)) {
		t.Fatalf("-j1 and -j8 diverge: %d/%s vs %d/%s",
			a.Probes, a.ProbesDigest, b.Probes, b.ProbesDigest)
	}
}
