package server

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpumembw/client"
	"gpumembw/internal/api"
)

// TestConcurrencyTorture hammers one daemon from many goroutines with
// overlapping submit/cancel/sweep traffic over a small cell pool while a
// tightly bounded disk cache evicts underneath, scraping /metrics
// mid-flight. It is the -race exercise for the whole serving path; at
// quiescence it asserts the stats invariants and that /metrics and
// /v1/stats reconcile exactly.
func TestConcurrencyTorture(t *testing.T) {
	size := entrySize(t)
	srv, c := newTestServer(t, Options{
		Workers:       4,
		MaxQueue:      4096,
		CacheDir:      t.TempDir(),
		CacheMaxBytes: 3*size + size/2, // well under the 8-cell working set
	})
	ctx := context.Background()
	base := c.BaseURL()

	const (
		goroutines = 8
		iterations = 25
		cells      = 8
	)
	var server5xx atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				cell := (g*iterations + i*3) % cells
				sp := tinySpec(cell)
				spec := client.JobSpec{Config: "baseline", InlineSpec: &sp}
				checkErr := func(err error) {
					var apiErr *client.APIError
					if errorsAs(err, &apiErr) && apiErr.StatusCode >= 500 {
						server5xx.Add(1)
						t.Errorf("goroutine %d iter %d: server error %v", g, i, err)
					}
				}
				switch i % 5 {
				case 0, 1:
					_, err := c.Submit(ctx, spec)
					checkErr(err)
				case 2:
					job, err := c.Submit(ctx, spec)
					checkErr(err)
					if err == nil {
						// Cancel whatever state the job is in; 409 on a
						// finished job is the documented answer, not a bug.
						_, err = c.Cancel(ctx, job.ID)
						checkErr(err)
					}
				case 3:
					a, b := tinySpec(cell), tinySpec((cell+1)%cells)
					_, err := c.Sweep(ctx, client.SweepRequest{
						Configs:     []string{"baseline"},
						InlineSpecs: []client.WorkloadSpec{a, b},
					})
					checkErr(err)
				case 4:
					if _, err := c.Stats(ctx); err != nil {
						checkErr(err)
					}
					if g == 0 {
						scrape(t, base) // exposition must stay valid mid-load
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Canceled cells may sit idle; resubmit every cell so the final
	// state of the whole pool is done, then drain.
	for i := 0; i < cells; i++ {
		sp := tinySpec(i)
		if _, err := c.Submit(ctx, client.JobSpec{Config: "baseline", InlineSpec: &sp}); err != nil {
			t.Fatalf("final resubmit %d: %v", i, err)
		}
	}
	waitForQuiescence(t, srv, time.Now().Add(30*time.Second))

	if n := server5xx.Load(); n != 0 {
		t.Fatalf("%d server-side 5xx responses under load", n)
	}

	st := srv.Stats()
	// Invariants: every job terminal, the table is exactly the cell
	// pool, every cell ends done, and the scheduler never simulated one
	// cell twice (content addressing + memoization under concurrency).
	total := 0
	for state, n := range st.Jobs {
		if !state.Terminal() && n > 0 {
			t.Errorf("non-terminal jobs at quiescence: %s=%d", state, n)
		}
		total += n
	}
	if total != cells || st.Jobs[api.JobDone] != cells {
		t.Errorf("job table = %v, want exactly %d done", st.Jobs, cells)
	}
	if st.Scheduler.Simulated > cells {
		t.Errorf("simulated %d distinct runs for %d cells", st.Scheduler.Simulated, cells)
	}
	if st.QueueDepth != 0 {
		t.Errorf("queue depth %d at quiescence", st.QueueDepth)
	}
	if st.DiskCacheEvictions == 0 {
		t.Errorf("no evictions despite cache bound %d < working set %d", st.DiskCacheMaxBytes, int64(cells)*size)
	}
	if st.DiskCacheBytes > st.DiskCacheMaxBytes {
		t.Errorf("disk cache over bound: %d > %d", st.DiskCacheBytes, st.DiskCacheMaxBytes)
	}

	// The exposition must parse cleanly and agree exactly with the
	// quiescent stats — counter for counter, gauge for gauge.
	sc := scrape(t, base)
	reconcile(t, sc, srv.Stats())
	for _, ser := range sc.Series {
		if ser.Name == "gpusimd_http_requests_total" && strings.HasPrefix(ser.Labels["code"], "5") {
			t.Errorf("5xx recorded in request metrics: %v = %v", ser.Labels, ser.Value)
		}
	}
}
