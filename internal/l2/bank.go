// Package l2 models the shared, banked L2 cache and the memory partitions
// that tie L2 banks to their DRAM channel (Fig. 2 of the paper).
//
// Each bank owns the five structures whose contention the paper measures in
// Fig. 8: the access queue fed by the request crossbar, the tag array with
// allocate-on-miss reservations, the MSHR file, the miss queue draining into
// the DRAM scheduler, the data port that serializes line transfers, and the
// response queue feeding the reply crossbar. Every cycle the head of the
// access queue cannot make progress is attributed to exactly one cause:
// bp-ICNT (response queue full), port, mshr, cache (no replaceable line) or
// bp-DRAM (miss queue backed up by the DRAM scheduler queue).
package l2

import (
	"math"

	"gpumembw/internal/cache"
	"gpumembw/internal/config"
	"gpumembw/internal/mem"
	"gpumembw/internal/stats"
)

// StallCause labels why the L2 bank pipeline is blocked this cycle
// (the categories of Fig. 8).
type StallCause int

const (
	// StallNone means the bank made progress.
	StallNone StallCause = iota
	// StallBpICNT: the response queue is full because the reply crossbar
	// cannot drain it fast enough.
	StallBpICNT
	// StallPort: the data port is busy with a line read or fill.
	StallPort
	// StallCache: no replaceable line — every way in the set is reserved
	// by outstanding misses.
	StallCache
	// StallMSHR: no free MSHR entry (or merge capacity).
	StallMSHR
	// StallBpDRAM: the miss queue is full because the DRAM scheduler
	// queue is full.
	StallBpDRAM

	numStallCauses
)

// StallLabels are the Fig. 8 legend names, indexed by StallCause-1.
var StallLabels = []string{"bp-ICNT", "port", "cache", "mshr", "bp-DRAM"}

// timedFetch pairs a fetch with the L2 cycle it becomes visible at the exit
// of the bank pipeline (modelling tag/pipeline latency).
type timedFetch struct {
	fetch *mem.Fetch
	ready int64
}

// BankStats aggregates per-bank statistics.
type BankStats struct {
	Accesses  int64
	Hits      int64
	Misses    int64 // true misses sent toward DRAM
	Merged    int64 // secondary misses merged into an MSHR entry
	Writes    int64
	Fills     int64
	WriteBack int64

	StallCycles     [numStallCauses]int64 // indexed by StallCause
	AccessOccupancy stats.OccupancyHist   // the Fig. 4 histogram
}

// MissRate returns misses (including merges) over accesses.
func (s *BankStats) MissRate() float64 {
	return stats.Ratio(s.Misses+s.Merged, s.Accesses)
}

// Bank is one L2 cache bank.
type Bank struct {
	ID  int // global bank index
	cfg *config.Config

	tags *cache.TagArray
	mshr *cache.MSHR[*mem.Fetch]

	accessQ *mem.Queue[*mem.Fetch] // from the request crossbar
	missQ   *mem.Queue[timedFetch] // toward the DRAM scheduler
	respQ   *mem.Queue[timedFetch] // toward the reply crossbar

	// fillPending holds the replies of the fill in flight: a fill with
	// many merged requesters drains into the response queue one entry
	// per cycle as slots free up, rather than demanding them all at once
	// (which could never be satisfied on small response queues).
	fillPending []*mem.Fetch
	fillReady   int64

	portBusyUntil int64
	now           int64

	// parked memoizes a blocked access-queue head: its stall cause cannot
	// change until the port frees (parkedUntil, for StallPort), a fill
	// arrives, or a response/miss slot drains — each of which clears the
	// memo. The head itself is frozen while parked (pops happen only on a
	// successful process), so replaying the attribution is exact.
	parked      bool
	parkedCause StallCause
	parkedUntil int64

	portCycles int64 // port occupancy per line transfer
	tagLat     int64

	pool *mem.FetchPool // optional freelist for fetch creation/retirement

	Stats BankStats
}

// NewBank builds L2 bank id for the given configuration.
func NewBank(id int, cfg *config.Config) *Bank {
	return &Bank{
		ID:         id,
		cfg:        cfg,
		tags:       cache.NewTagArray(cfg.SetsPerL2Bank(), cfg.L2.Ways, cfg.L2.LineBytes, cfg.L2.NumBanks),
		mshr:       cache.NewMSHR[*mem.Fetch](cfg.L2.MSHREntries, cfg.L2.MSHRMaxMerge),
		accessQ:    mem.NewQueue[*mem.Fetch](cfg.L2.AccessQueueEntries),
		missQ:      mem.NewQueue[timedFetch](cfg.L2.MissQueueEntries),
		respQ:      mem.NewQueue[timedFetch](cfg.L2.ResponseQueueEntries),
		portCycles: int64((cfg.L2.LineBytes + cfg.L2.DataPortBytes - 1) / cfg.L2.DataPortBytes),
		tagLat:     int64(cfg.L2.TagLatency),
	}
}

// SetFetchPool wires the freelist the bank draws miss and write-back
// fetches from and releases dead fetches to. A nil pool is valid.
func (b *Bank) SetFetchPool(p *mem.FetchPool) { b.pool = p }

// CanAccept reports whether the access queue has room for a new request.
func (b *Bank) CanAccept() bool { return !b.accessQ.Full() }

// Accept enqueues a request arriving from the request crossbar.
func (b *Bank) Accept(f *mem.Fetch) bool {
	f.L2ArriveCycle = b.now
	return b.accessQ.Push(f)
}

// AccessQueueLen returns the current access-queue occupancy (Fig. 4 data).
func (b *Bank) AccessQueueLen() int { return b.accessQ.Len() }

// CanFill reports whether a DRAM fill for f can be applied this cycle:
// the data port must be free and the previous fill's replies fully drained.
func (b *Bank) CanFill(f *mem.Fetch) bool {
	return b.portBusyUntil <= b.now && len(b.fillPending) == 0
}

// Fill applies a DRAM fill: install the reserved line, release the MSHR
// entry, and queue one reply per merged requester. The replies drain into
// the response queue one per cycle as space allows. The fill fetch itself
// (the bank-generated DRAM request) dies here and returns to the pool.
func (b *Bank) Fill(f *mem.Fetch) {
	b.parked = false // tags, MSHR and port state all change here
	b.Stats.Fills++
	b.tags.Fill(f.Addr)
	b.portBusyUntil = b.now + b.portCycles
	b.fillReady = b.now + b.portCycles
	for _, w := range b.mshr.Release(f.Addr) {
		if !w.Type.NeedsReply() {
			b.pool.Put(w)
			continue
		}
		w.IsReply = true
		w.L2Hit = false
		w.SizeBytes = b.cfg.L2.LineBytes
		b.fillPending = append(b.fillPending, w)
	}
	b.pool.Put(f)
}

// drainFill moves one pending fill reply into the response queue.
func (b *Bank) drainFill() {
	if len(b.fillPending) == 0 || b.respQ.Full() {
		return
	}
	if !b.respQ.Push(timedFetch{fetch: b.fillPending[0], ready: b.fillReady}) {
		return
	}
	copy(b.fillPending, b.fillPending[1:])
	b.fillPending = b.fillPending[:len(b.fillPending)-1]
}

// PopResponse returns the next reply packet ready for the reply crossbar.
func (b *Bank) PopResponse() (*mem.Fetch, bool) {
	tf, ok := b.respQ.Peek()
	if !ok || tf.ready > b.now {
		return nil, false
	}
	b.respQ.Pop()
	b.parked = false // a drained slot may unblock a bp-ICNT stall
	return tf.fetch, true
}

// PeekResponse reports whether a reply packet is ready.
func (b *Bank) PeekResponse() (*mem.Fetch, bool) {
	tf, ok := b.respQ.Peek()
	if !ok || tf.ready > b.now {
		return nil, false
	}
	return tf.fetch, true
}

// PopMiss returns the next request ready for the DRAM scheduler queue.
func (b *Bank) PopMiss() (*mem.Fetch, bool) {
	tf, ok := b.missQ.Peek()
	if !ok || tf.ready > b.now {
		return nil, false
	}
	b.missQ.Pop()
	b.parked = false // a drained slot may unblock a bp-DRAM stall
	return tf.fetch, true
}

// PeekMiss reports whether a miss request is ready for DRAM.
func (b *Bank) PeekMiss() (*mem.Fetch, bool) {
	tf, ok := b.missQ.Peek()
	if !ok || tf.ready > b.now {
		return nil, false
	}
	return tf.fetch, true
}

// Tick advances the bank one L2 cycle, processing at most the head of the
// access queue and recording stall attribution when it is blocked.
func (b *Bank) Tick() {
	b.now++
	if len(b.fillPending) > 0 {
		b.drainFill()
	}
	occ := b.accessQ.Len()
	if occ == 0 {
		return
	}
	b.Stats.AccessOccupancy.Observe(occ, b.accessQ.Cap())
	if b.parked {
		if b.parkedUntil > b.now {
			// The head re-attempt would fail exactly as it did last cycle:
			// replay its attribution without the tag and queue lookups.
			b.Stats.StallCycles[b.parkedCause]++
			return
		}
		b.parked = false
	}
	f, _ := b.accessQ.Peek()
	cause := b.process(f)
	if cause == StallNone {
		b.accessQ.Pop()
		if !f.Type.NeedsReply() {
			// Stores and write-backs are absorbed here: the fetch has no
			// further life (any DRAM traffic uses a fresh fetch).
			b.pool.Put(f)
		}
		return
	}
	b.Stats.StallCycles[cause]++
	b.parked = true
	b.parkedCause = cause
	if cause == StallPort {
		b.parkedUntil = b.portBusyUntil
	} else {
		b.parkedUntil = math.MaxInt64
	}
}

// process attempts to service f, returning StallNone on success or the
// blocking cause. It must only mutate state when it succeeds.
func (b *Bank) process(f *mem.Fetch) StallCause {
	switch f.Type {
	case mem.DataRead, mem.InstRead:
		return b.processRead(f)
	case mem.DataWrite:
		return b.processWrite(f)
	default:
		// Write-backs never travel core→L2.
		return b.processWrite(f)
	}
}

func (b *Bank) processRead(f *mem.Fetch) StallCause {
	addr := b.tags.LineAddr(f.Addr)
	switch b.tags.Probe(addr) {
	case cache.Valid:
		// Hit: occupy the port for one line time and emit the reply.
		if b.portBusyUntil > b.now {
			return StallPort
		}
		if b.respQ.Full() {
			return StallBpICNT
		}
		b.tags.Access(addr)
		b.portBusyUntil = b.now + b.portCycles
		f.IsReply = true
		f.L2Hit = true
		f.SizeBytes = b.cfg.L2.LineBytes
		b.respQ.Push(timedFetch{fetch: f, ready: b.now + b.tagLat + b.portCycles})
		b.Stats.Accesses++
		b.Stats.Hits++
		return StallNone

	case cache.Reserved:
		// Secondary miss: merge with the outstanding fill.
		if !b.mshr.CanAccept(addr) {
			return StallMSHR
		}
		b.mshr.Allocate(addr, f)
		b.Stats.Accesses++
		b.Stats.Merged++
		return StallNone

	default: // miss
		if !b.mshr.CanAccept(addr) {
			return StallMSHR
		}
		if !b.tags.HasReplaceable(addr) {
			return StallCache
		}
		// A dirty victim needs a second miss-queue slot for its
		// write-back.
		if b.missQ.Free() < 2 {
			if b.missQ.Free() < 1 {
				return StallBpDRAM
			}
			// Exactly one slot: only safe if the victim is clean; be
			// conservative and wait (counts as DRAM backpressure).
			return StallBpDRAM
		}
		res := b.mshr.Allocate(addr, f)
		if res != cache.AllocNew {
			panic("l2: unexpected MSHR state on primary miss: " + res.String())
		}
		victim, ok := b.tags.ReserveVictim(addr)
		if !ok {
			panic("l2: no victim despite HasReplaceable")
		}
		miss := b.pool.Get()
		*miss = mem.Fetch{
			ID:          f.ID,
			Type:        mem.DataRead,
			Addr:        addr,
			CoreID:      f.CoreID,
			PartitionID: f.PartitionID,
			BankID:      b.ID,
		}
		b.missQ.Push(timedFetch{fetch: miss, ready: b.now + b.tagLat})
		if victim.Valid && victim.Dirty {
			b.pushWriteBack(victim.Addr)
		}
		b.Stats.Accesses++
		b.Stats.Misses++
		return StallNone
	}
}

// processWrite implements the L2's write-back, write-allocate policy for
// the (coalesced, full-line) stores the cores emit. Stores produce no
// reply packets.
func (b *Bank) processWrite(f *mem.Fetch) StallCause {
	addr := b.tags.LineAddr(f.Addr)
	switch b.tags.Probe(addr) {
	case cache.Valid:
		if b.portBusyUntil > b.now {
			return StallPort
		}
		b.tags.MarkDirty(addr)
		b.portBusyUntil = b.now + b.portCycles
		b.Stats.Accesses++
		b.Stats.Writes++
		return StallNone

	case cache.Reserved:
		// The line is being filled for someone else; write through to
		// DRAM to avoid ordering complexity (a rare case with the
		// full-line stores the workloads generate).
		if b.missQ.Full() {
			return StallBpDRAM
		}
		b.missQ.Push(timedFetch{fetch: b.dramWrite(addr, f), ready: b.now + b.tagLat})
		b.Stats.Accesses++
		b.Stats.Writes++
		return StallNone

	default: // write miss: allocate without fetch (full-line store)
		if b.portBusyUntil > b.now {
			return StallPort
		}
		if !b.tags.HasReplaceable(addr) {
			return StallCache
		}
		if b.missQ.Full() {
			// The victim may be dirty and need a write-back slot.
			return StallBpDRAM
		}
		victim, _ := b.tags.ReserveVictim(addr)
		b.tags.Fill(addr)
		b.tags.MarkDirty(addr)
		b.portBusyUntil = b.now + b.portCycles
		if victim.Valid && victim.Dirty {
			b.pushWriteBack(victim.Addr)
		}
		b.Stats.Accesses++
		b.Stats.Writes++
		return StallNone
	}
}

func (b *Bank) pushWriteBack(addr uint64) {
	wb := b.pool.Get()
	*wb = mem.Fetch{
		Type:      mem.WriteBack,
		Addr:      addr,
		SizeBytes: b.cfg.L2.LineBytes,
		CoreID:    -1,
		BankID:    b.ID,
	}
	if !b.missQ.Push(timedFetch{fetch: wb, ready: b.now + b.tagLat}) {
		panic("l2: miss queue overflow pushing write-back")
	}
	b.Stats.WriteBack++
}

func (b *Bank) dramWrite(addr uint64, orig *mem.Fetch) *mem.Fetch {
	f := b.pool.Get()
	*f = mem.Fetch{
		ID:          orig.ID,
		Type:        mem.WriteBack,
		Addr:        addr,
		SizeBytes:   b.cfg.L2.LineBytes,
		CoreID:      orig.CoreID,
		PartitionID: orig.PartitionID,
		BankID:      b.ID,
	}
	return f
}

// MSHROcc reports the bank's MSHR live-entry count — the profiler's
// l2/mshr gauge (capacity is the config's L2.MSHREntries).
func (b *Bank) MSHROcc() int { return b.mshr.Len() }

// MissQueueOcc reports the miss queue's occupancy and capacity — the
// profiler's l2/miss-queue gauge.
func (b *Bank) MissQueueOcc() (length, capacity int) {
	return b.missQ.Len(), b.missQ.Cap()
}

// Busy reports whether the bank is doing or holding work this cycle:
// its data port is mid-transfer, requests wait in the access queue, or a
// fill is still draining merged replies. The profiler's l2/bank-busy
// series is the fraction of banks for which this holds.
func (b *Bank) Busy() bool {
	return b.portBusyUntil > b.now || !b.accessQ.Empty() || len(b.fillPending) > 0
}
