package l2

import (
	"testing"

	"gpumembw/internal/config"
	"gpumembw/internal/mem"
)

// bankAddr returns the i-th line address owned by the given global bank.
func bankAddr(cfg *config.Config, globalBank, i int) uint64 {
	lineIdx := uint64(i)*uint64(cfg.L2.NumBanks) + uint64(globalBank)
	return lineIdx * uint64(cfg.L2.LineBytes)
}

func read(id uint64, addr uint64, cfg *config.Config) *mem.Fetch {
	lineIdx := addr / uint64(cfg.L2.LineBytes)
	bank := int(lineIdx % uint64(cfg.L2.NumBanks))
	return &mem.Fetch{
		ID: id, Type: mem.DataRead, Addr: addr,
		PartitionID: bank % cfg.DRAM.NumPartitions, BankID: bank,
	}
}

func write(id uint64, addr uint64, cfg *config.Config) *mem.Fetch {
	f := read(id, addr, cfg)
	f.Type = mem.DataWrite
	f.SizeBytes = cfg.L2.LineBytes
	return f
}

func newTestPartition(t *testing.T) (*config.Config, *Partition) {
	t.Helper()
	cfg := config.Baseline()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return &cfg, NewPartition(0, &cfg)
}

// runPartition ticks both the L2 and DRAM domains at their real ratio
// (700 MHz vs 924 MHz) and collects replies.
func runPartition(p *Partition, cfg *config.Config, cycles int) []*mem.Fetch {
	var out []*mem.Fetch
	dramPerL2 := cfg.DRAM.ClockMHz / cfg.L2.ClockMHz
	acc := 0.0
	for i := 0; i < cycles; i++ {
		acc += dramPerL2
		for acc >= 1 {
			p.DRAM.Tick()
			acc--
		}
		p.TickL2()
		if f, b, ok := p.NextResponse(); ok {
			p.ConsumeResponse(b)
			out = append(out, f)
		}
	}
	return out
}

func TestMissGoesToDRAMAndFills(t *testing.T) {
	cfg, p := newTestPartition(t)
	b := p.Banks[0]
	addr := bankAddr(cfg, b.ID, 0)
	if !b.Accept(read(1, addr, cfg)) {
		t.Fatal("accept failed")
	}
	replies := runPartition(p, cfg, 500)
	if len(replies) != 1 {
		t.Fatalf("replies = %d, want 1", len(replies))
	}
	if replies[0].L2Hit {
		t.Error("first access must be an L2 miss")
	}
	if !replies[0].IsReply || replies[0].SizeBytes != 128 {
		t.Errorf("bad reply: %+v", replies[0])
	}
	if b.Stats.Misses != 1 || b.Stats.Fills != 1 {
		t.Errorf("misses=%d fills=%d", b.Stats.Misses, b.Stats.Fills)
	}
	if !p.Idle() {
		t.Error("partition not idle after drain")
	}
}

func TestSecondAccessHits(t *testing.T) {
	cfg, p := newTestPartition(t)
	b := p.Banks[0]
	addr := bankAddr(cfg, b.ID, 0)
	b.Accept(read(1, addr, cfg))
	runPartition(p, cfg, 500)
	b.Accept(read(2, addr, cfg))
	replies := runPartition(p, cfg, 200)
	if len(replies) != 1 {
		t.Fatalf("replies = %d, want 1", len(replies))
	}
	if !replies[0].L2Hit {
		t.Error("second access must hit")
	}
	if b.Stats.Hits != 1 {
		t.Errorf("hits = %d", b.Stats.Hits)
	}
}

func TestMSHRMergingAvoidsDuplicateDRAMTraffic(t *testing.T) {
	cfg, p := newTestPartition(t)
	b := p.Banks[0]
	addr := bankAddr(cfg, b.ID, 0)
	// Two cores miss on the same line back to back.
	f1 := read(1, addr, cfg)
	f1.CoreID = 0
	f2 := read(2, addr, cfg)
	f2.CoreID = 5
	b.Accept(f1)
	b.Accept(f2)
	replies := runPartition(p, cfg, 600)
	if len(replies) != 2 {
		t.Fatalf("replies = %d, want 2 (one per requester)", len(replies))
	}
	if b.Stats.Merged != 1 || b.Stats.Misses != 1 {
		t.Errorf("merged=%d misses=%d, want 1/1", b.Stats.Merged, b.Stats.Misses)
	}
	if got := p.DRAM.Stats.Reads; got != 1 {
		t.Errorf("DRAM reads = %d, want 1 (merged)", got)
	}
}

func TestWriteMissAllocatesWithoutFetch(t *testing.T) {
	cfg, p := newTestPartition(t)
	b := p.Banks[0]
	addr := bankAddr(cfg, b.ID, 0)
	b.Accept(write(1, addr, cfg))
	runPartition(p, cfg, 100)
	if p.DRAM.Stats.Reads != 0 {
		t.Error("full-line store must not fetch from DRAM")
	}
	// The line must now be resident and dirty: a read hits...
	b.Accept(read(2, addr, cfg))
	replies := runPartition(p, cfg, 200)
	if len(replies) != 1 || !replies[0].L2Hit {
		t.Fatal("read after store must hit in L2")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg, p := newTestPartition(t)
	b := p.Banks[0]
	// Dirty one set completely, then stream reads through the same set to
	// force dirty evictions. Set stride within a bank: sets × banks lines.
	setStride := cfg.SetsPerL2Bank() * cfg.L2.NumBanks * cfg.L2.LineBytes
	base := bankAddr(cfg, b.ID, 0)
	for w := 0; w < cfg.L2.Ways; w++ {
		b.Accept(write(uint64(w), base+uint64(w*setStride), cfg))
		runPartition(p, cfg, 50)
	}
	// Now read enough new lines in the same set to evict every dirty way.
	for r := 0; r < cfg.L2.Ways; r++ {
		b.Accept(read(100+uint64(r), base+uint64((cfg.L2.Ways+r)*setStride), cfg))
		runPartition(p, cfg, 400)
	}
	if b.Stats.WriteBack == 0 {
		t.Error("dirty evictions must produce write-backs")
	}
	if p.DRAM.Stats.Writes == 0 {
		t.Error("write-backs must reach DRAM")
	}
}

func TestAccessQueueBackpressure(t *testing.T) {
	cfg, p := newTestPartition(t)
	b := p.Banks[0]
	accepted := 0
	for i := 0; i < 100; i++ {
		if b.CanAccept() && b.Accept(read(uint64(i), bankAddr(cfg, b.ID, i), cfg)) {
			accepted++
		}
	}
	if accepted != cfg.L2.AccessQueueEntries {
		t.Fatalf("accepted %d, want %d", accepted, cfg.L2.AccessQueueEntries)
	}
}

func TestBpICNTStallWhenResponseQueueFull(t *testing.T) {
	cfg, p := newTestPartition(t)
	b := p.Banks[0]
	// Prime a line so reads hit.
	addr := bankAddr(cfg, b.ID, 0)
	b.Accept(read(1, addr, cfg))
	runPartition(p, cfg, 500)
	// Now send hits but never drain the response queue.
	for i := 0; i < 200; i++ {
		if b.CanAccept() {
			b.Accept(read(uint64(10+i), addr, cfg))
		}
		b.Tick() // no NextResponse consumption, no DRAM needed for hits
	}
	if b.Stats.StallCycles[StallBpICNT] == 0 {
		t.Error("full response queue must register bp-ICNT stalls")
	}
}

func TestBpDRAMStallWhenSchedulerQueueFull(t *testing.T) {
	cfg, p := newTestPartition(t)
	b := p.Banks[0]
	// Flood with misses but never tick DRAM, so the scheduler queue
	// fills and the miss queue backs up.
	for i := 0; i < 400; i++ {
		if b.CanAccept() {
			b.Accept(read(uint64(i), bankAddr(cfg, b.ID, i), cfg))
		}
		p.TickL2()
	}
	if b.Stats.StallCycles[StallBpDRAM] == 0 {
		t.Error("full DRAM scheduler queue must register bp-DRAM stalls")
	}
}

func TestMSHRStallWhenOutOfEntries(t *testing.T) {
	cfg := config.Baseline()
	cfg.L2.MSHREntries = 2
	p := NewPartition(0, &cfg)
	b := p.Banks[0]
	for i := 0; i < 50; i++ {
		if b.CanAccept() {
			b.Accept(read(uint64(i), bankAddr(&cfg, b.ID, i), cfg2(&cfg)))
		}
		p.TickL2() // DRAM never ticks: fills never arrive, MSHRs stay held
	}
	if b.Stats.StallCycles[StallMSHR] == 0 {
		t.Error("exhausted MSHRs must register mshr stalls")
	}
}

func cfg2(c *config.Config) *config.Config { return c }

func TestCacheStallWhenAllWaysReserved(t *testing.T) {
	cfg := config.Baseline()
	cfg.L2.MSHREntries = 64
	cfg.L2.MissQueueEntries = 64
	p := NewPartition(0, &cfg)
	b := p.Banks[0]
	// All misses in one set: stride = sets × banks lines.
	setStride := cfg.SetsPerL2Bank() * cfg.L2.NumBanks * cfg.L2.LineBytes
	base := bankAddr(&cfg, b.ID, 0)
	for i := 0; i < 60; i++ {
		if b.CanAccept() {
			b.Accept(read(uint64(i), base+uint64(i*setStride), &cfg))
		}
		p.TickL2() // DRAM never ticks → reservations never release
	}
	if b.Stats.StallCycles[StallCache] == 0 {
		t.Error("set with all ways reserved must register cache stalls")
	}
}

func TestScaledL2PortIsFaster(t *testing.T) {
	run := func(cfg config.Config) int64 {
		p := NewPartition(0, &cfg)
		b := p.Banks[0]
		addr := bankAddr(&cfg, b.ID, 0)
		b.Accept(read(1, addr, &cfg))
		runPartition(p, &cfg, 500)
		// Stream hits through the port.
		sent := 0
		var cycles int64
		for i := 0; sent < 32 || !p.Idle(); i++ {
			if sent < 32 && b.CanAccept() {
				b.Accept(read(uint64(10+sent), addr, &cfg))
				sent++
			}
			p.TickL2()
			if f, bk, ok := p.NextResponse(); ok {
				p.ConsumeResponse(bk)
				_ = f
			}
			cycles++
			if i > 10000 {
				break
			}
		}
		return cycles
	}
	base := run(config.Baseline())
	scaled := run(config.ScaledL2())
	if scaled >= base {
		t.Errorf("scaled L2 (%d cycles) not faster than baseline (%d) on a hit stream", scaled, base)
	}
}

func TestPartitionBankRouting(t *testing.T) {
	cfg, p := newTestPartition(t)
	if len(p.Banks) != 2 {
		t.Fatalf("banks = %d, want 2", len(p.Banks))
	}
	if p.Banks[0].ID != 0 || p.Banks[1].ID != 6 {
		t.Fatalf("bank IDs = %d,%d; want 0,6", p.Banks[0].ID, p.Banks[1].ID)
	}
	if p.BankFor(0) != p.Banks[0] || p.BankFor(6) != p.Banks[1] {
		t.Fatal("BankFor routing wrong")
	}
	_ = cfg
}

func TestOccupancyHistogramRecorded(t *testing.T) {
	cfg, p := newTestPartition(t)
	b := p.Banks[0]
	for i := 0; i < 300; i++ {
		if b.CanAccept() {
			b.Accept(read(uint64(i), bankAddr(cfg, b.ID, i%64), cfg))
		}
		p.TickL2()
	}
	if b.Stats.AccessOccupancy.Lifetime == 0 {
		t.Error("access-queue occupancy histogram empty")
	}
	if b.Stats.AccessOccupancy.FullFraction() == 0 {
		t.Error("flooded access queue never observed full")
	}
}
