package l2

import (
	"math"

	"gpumembw/internal/config"
	"gpumembw/internal/dram"
	"gpumembw/internal/mem"
)

// Partition is one memory partition: the L2 banks sharing a crossbar node
// plus their GDDR5 channel. The GTX 480 has 6 partitions of 2 banks each.
type Partition struct {
	ID    int
	Banks []*Bank
	DRAM  *dram.Channel

	cfg    *config.Config
	respRR int // round-robin pointer for reply-network injection
	missRR int // round-robin pointer for DRAM injection
}

// NewPartition builds partition id with its banks and DRAM channel.
func NewPartition(id int, cfg *config.Config) *Partition {
	p := &Partition{
		ID:   id,
		DRAM: dram.NewChannel(id, cfg),
		cfg:  cfg,
	}
	perPart := cfg.BanksPerPartition()
	for local := 0; local < perPart; local++ {
		globalID := local*cfg.DRAM.NumPartitions + id
		p.Banks = append(p.Banks, NewBank(globalID, cfg))
	}
	return p
}

// BankFor returns the bank owning the given global bank index.
func (p *Partition) BankFor(globalBank int) *Bank {
	return p.Banks[globalBank/p.cfg.DRAM.NumPartitions]
}

// SetFetchPool wires the GPU's fetch freelist into every bank and the DRAM
// channel of this partition. A nil pool is valid.
func (p *Partition) SetFetchPool(pool *mem.FetchPool) {
	for _, b := range p.Banks {
		b.SetFetchPool(pool)
	}
	p.DRAM.SetFetchPool(pool)
}

// tickIdle reports whether this TickL2 call has no work at all: no DRAM
// fill ready, and every bank with an empty access queue, no fill replies
// draining and no misses to forward. Response queues are irrelevant here —
// the reply-network hand-off happens outside TickL2 and only reads clocks.
func (p *Partition) tickIdle() bool {
	if _, ok := p.DRAM.PeekResponse(); ok {
		return false
	}
	for _, b := range p.Banks {
		if b.accessQ.Len() != 0 || len(b.fillPending) != 0 || b.missQ.Len() != 0 {
			return false
		}
	}
	return true
}

// TickL2 advances the partition one L2/interconnect cycle: deliver one DRAM
// fill, tick every bank, and drain the bank miss queues into the DRAM
// scheduler queue.
func (p *Partition) TickL2() {
	if p.tickIdle() {
		// Keep the bank clocks in lockstep; everything else below would
		// be a no-op this cycle.
		for _, b := range p.Banks {
			b.now++
		}
		return
	}

	// DRAM fill delivery: one line per cycle, head-of-line.
	if f, ok := p.DRAM.PeekResponse(); ok {
		bank := p.BankFor(f.BankID)
		if bank.CanFill(f) {
			p.DRAM.PopResponse()
			bank.Fill(f)
		}
	}

	for _, b := range p.Banks {
		b.Tick()
	}

	// Miss-queue → DRAM scheduler queue, one request per cycle,
	// round-robin across banks. A full scheduler queue leaves the miss
	// queues backed up (bp-DRAM seen by the banks).
	n := len(p.Banks)
	for i := 0; i < n; i++ {
		b := p.Banks[(p.missRR+i)%n]
		if f, ok := b.PeekMiss(); ok {
			if p.DRAM.Full() {
				break
			}
			b.PopMiss()
			p.DRAM.Push(f)
			p.missRR = (p.missRR + i + 1) % n
			break
		}
	}
}

// NextResponse returns (without consuming) the next reply packet to inject
// into the reply crossbar, round-robin across banks.
func (p *Partition) NextResponse() (*mem.Fetch, *Bank, bool) {
	n := len(p.Banks)
	for i := 0; i < n; i++ {
		b := p.Banks[(p.respRR+i)%n]
		if f, ok := b.PeekResponse(); ok {
			return f, b, true
		}
	}
	return nil, nil, false
}

// ConsumeResponse removes the reply previously returned by NextResponse
// and advances the round-robin pointer past its bank.
func (p *Partition) ConsumeResponse(b *Bank) {
	if _, ok := b.PopResponse(); !ok {
		panic("l2: ConsumeResponse with no ready response")
	}
	n := len(p.Banks)
	for i := 0; i < n; i++ {
		if p.Banks[(p.respRR+i)%n] == b {
			p.respRR = (p.respRR + i + 1) % n
			return
		}
	}
}

// SkipTicks advances every bank clock by n L2 cycles without doing any
// work. Valid only while the partition is Idle(): the event engine's
// deferred idle ticks guarantee every skipped TickL2 would have been a
// no-op.
// The DRAM channel runs in its own clock domain and is skipped separately.
func (p *Partition) SkipTicks(n int64) {
	for _, b := range p.Banks {
		b.now += n
	}
}

// NextWake implements the event engine's sched.Wakeable contract for the
// partition's 700 MHz half: the L2 banks and their network hand-offs. It
// reports ok=false while any bank queue holds work or a DRAM fill waits
// for delivery — every such cycle does real work or records stall
// attribution — and sleeps otherwise (a request ejection or a completed
// DRAM burst wakes it). The DRAM channel is its own Wakeable: it ticks
// on a different clock.
func (p *Partition) NextWake() (int64, bool) {
	if _, ok := p.DRAM.PeekResponse(); ok {
		return 0, false
	}
	for _, b := range p.Banks {
		if b.accessQ.Len() != 0 || len(b.fillPending) != 0 ||
			b.missQ.Len() != 0 || b.respQ.Len() != 0 {
			return 0, false
		}
	}
	return math.MaxInt64, true
}

// Idle reports whether the partition holds no work in any queue, MSHR or
// DRAM structure — used by drain checks.
func (p *Partition) Idle() bool {
	for _, b := range p.Banks {
		if b.accessQ.Len() > 0 || b.missQ.Len() > 0 || b.respQ.Len() > 0 ||
			b.mshr.Len() > 0 || len(b.fillPending) > 0 {
			return false
		}
	}
	return p.DRAM.Idle()
}
