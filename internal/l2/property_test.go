package l2

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpumembw/internal/config"
	"gpumembw/internal/mem"
)

// TestBankConservation drives random read/write traffic through a
// partition and checks the structural invariants the stall attribution
// relies on: every read eventually produces exactly one reply per
// requester, replies carry full lines, write traffic produces none, and
// the partition drains to idle.
func TestBankConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := config.Baseline()
		// Randomize the structure sizes within small bounds to stress
		// backpressure paths.
		cfg.L2.AccessQueueEntries = 1 + rng.Intn(8)
		cfg.L2.MissQueueEntries = 2 + rng.Intn(7)
		cfg.L2.ResponseQueueEntries = 1 + rng.Intn(8)
		cfg.L2.MSHREntries = 2 + rng.Intn(31)
		cfg.DRAM.SchedQueueEntries = 1 + rng.Intn(16)
		cfg.DRAM.ReturnQueueEntries = 1 + rng.Intn(8)
		p := NewPartition(0, &cfg)
		b := p.Banks[0]

		dramPerL2 := cfg.DRAM.ClockMHz / cfg.L2.ClockMHz
		acc := 0.0
		sent := 0
		reads := 0
		var replies []*mem.Fetch
		const total = 80
		for cycle := 0; cycle < 60000 && (sent < total || !p.Idle()); cycle++ {
			if sent < total && b.CanAccept() {
				addr := bankAddr(&cfg, b.ID, rng.Intn(24))
				var f *mem.Fetch
				if rng.Intn(3) == 0 {
					f = write(uint64(sent), addr, &cfg)
				} else {
					f = read(uint64(sent), addr, &cfg)
					reads++
				}
				f.CoreID = rng.Intn(15)
				b.Accept(f)
				sent++
			}
			acc += dramPerL2
			for acc >= 1 {
				p.DRAM.Tick()
				acc--
			}
			p.TickL2()
			if f, bk, ok := p.NextResponse(); ok {
				p.ConsumeResponse(bk)
				replies = append(replies, f)
			}
		}
		if sent < total || !p.Idle() {
			t.Logf("seed %d: stuck (sent=%d idle=%v)", seed, sent, p.Idle())
			return false
		}
		if len(replies) != reads {
			t.Logf("seed %d: %d replies for %d reads", seed, len(replies), reads)
			return false
		}
		seen := map[uint64]bool{}
		for _, f := range replies {
			if !f.IsReply || f.SizeBytes != cfg.L2.LineBytes {
				return false
			}
			if seen[f.ID] {
				return false // duplicate reply
			}
			seen[f.ID] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// TestMergedFillDrainsOnTinyResponseQueue reproduces the regression where
// a fill with more merged requesters than response-queue capacity
// deadlocked the bank.
func TestMergedFillDrainsOnTinyResponseQueue(t *testing.T) {
	cfg := config.Baseline()
	cfg.L2.ResponseQueueEntries = 1
	p := NewPartition(0, &cfg)
	b := p.Banks[0]
	addr := bankAddr(&cfg, b.ID, 0)
	// Four requesters merge on one line; the single-entry response queue
	// must be refilled one reply at a time.
	for i := 0; i < 4; i++ {
		f := read(uint64(i), addr, &cfg)
		f.CoreID = i
		if !b.Accept(f) {
			t.Fatalf("accept %d failed", i)
		}
	}
	replies := runPartition(p, &cfg, 3000)
	if len(replies) != 4 {
		t.Fatalf("replies = %d, want 4", len(replies))
	}
	if !p.Idle() {
		t.Fatal("partition did not drain")
	}
	if p.DRAM.Stats.Reads != 1 {
		t.Fatalf("DRAM reads = %d, want 1 (merged)", p.DRAM.Stats.Reads)
	}
}
