package trace

import (
	"testing"

	"gpumembw/internal/smcore"
)

func TestAllBenchmarksBuild(t *testing.T) {
	table := Table()
	if len(table) != 19 {
		t.Fatalf("benchmarks = %d, want 19 (Table II)", len(table))
	}
	seen := map[string]bool{}
	for _, b := range table {
		wl, err := b.Spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", b.Spec.Name, err)
		}
		if seen[wl.Name] {
			t.Fatalf("duplicate benchmark %s", wl.Name)
		}
		seen[wl.Name] = true
		if wl.Program.TotalInsts() <= 0 {
			t.Errorf("%s: empty program", wl.Name)
		}
		if b.PaperPInf < 1 || b.PaperPDRAM < 1 {
			t.Errorf("%s: implausible paper reference values %g/%g", wl.Name, b.PaperPInf, b.PaperPDRAM)
		}
		if b.PaperPDRAM > b.PaperPInf {
			t.Errorf("%s: P_DRAM %g exceeds P∞ %g", wl.Name, b.PaperPDRAM, b.PaperPInf)
		}
	}
}

func TestTableIIOrderingByPInf(t *testing.T) {
	table := Table()
	for i := 1; i < len(table); i++ {
		if table[i].PaperPInf > table[i-1].PaperPInf {
			t.Errorf("Table II order violated at %s (%g > %g)",
				table[i].Spec.Name, table[i].PaperPInf, table[i-1].PaperPInf)
		}
	}
}

func TestFig1NamesCoverAllBenchmarks(t *testing.T) {
	names := map[string]bool{}
	for _, n := range Names() {
		names[n] = true
	}
	fig1 := Fig1Names()
	if len(fig1) != len(names) {
		t.Fatalf("Fig. 1 ordering has %d names, want %d", len(fig1), len(names))
	}
	for _, n := range fig1 {
		if !names[n] {
			t.Errorf("Fig. 1 name %q not in Table II", n)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("mm"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestAddressDeterminism(t *testing.T) {
	for _, b := range Table() {
		wl := b.Spec.MustBuild()
		var a1, a2 []uint64
		for inst := range wl.Program.Body {
			if wl.Program.Body[inst].Kind != smcore.OpLoad && wl.Program.Body[inst].Kind != smcore.OpStore {
				continue
			}
			a1 = wl.Addr(a1, 3, 7, 2, inst)
			a2 = wl.Addr(a2, 3, 7, 2, inst)
		}
		if len(a1) != len(a2) {
			t.Fatalf("%s: nondeterministic lengths", wl.Name)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("%s: nondeterministic address at %d", wl.Name, i)
			}
		}
	}
}

func TestAddressesAreLineAligned(t *testing.T) {
	for _, b := range Table() {
		wl := b.Spec.MustBuild()
		var buf []uint64
		for inst, in := range wl.Program.Body {
			if in.Kind != smcore.OpLoad && in.Kind != smcore.OpStore {
				continue
			}
			for core := 0; core < 3; core++ {
				for iter := 0; iter < 3; iter++ {
					buf = wl.Addr(buf[:0], core, core*5, iter, inst)
					if len(buf) == 0 {
						t.Fatalf("%s: inst %d generated no addresses", wl.Name, inst)
					}
					for _, a := range buf {
						if a%lineBytes != 0 {
							t.Fatalf("%s: unaligned address 0x%x", wl.Name, a)
						}
					}
				}
			}
		}
	}
}

func TestCoalescingDegree(t *testing.T) {
	// sc is specified with 8 lines per access; stream benchmarks with 1.
	sc, _ := ByName("sc")
	var buf []uint64
	buf = sc.Addr(buf, 0, 0, 0, 0)
	if len(buf) < 6 { // duplicates may collapse a couple
		t.Fatalf("sc coalescing = %d lines, want ≈8", len(buf))
	}
	nn, _ := ByName("nn")
	buf = nn.Addr(buf[:0], 0, 0, 0, 0)
	if len(buf) != 1 {
		t.Fatalf("nn coalescing = %d lines, want 1", len(buf))
	}
}

func TestStreamPatternIsFresh(t *testing.T) {
	// Streaming loads must never revisit a *stream-region* line across
	// iterations (accesses diverted to the hot shared region may repeat).
	nn, _ := ByName("nn")
	var spec Spec
	for _, b := range Table() {
		if b.Spec.Name == "nn" {
			spec = b.Spec
		}
	}
	seen := map[uint64]bool{}
	var buf []uint64
	for iter := 0; iter < 10; iter++ {
		for inst := 0; inst < spec.LoadsPerIter; inst++ {
			buf = nn.Addr(buf[:0], 0, 0, iter, inst)
			for _, a := range buf {
				if a/lineBytes < streamRegionBase {
					continue // hot shared region access
				}
				if seen[a] {
					t.Fatalf("stream revisited line 0x%x at iter %d", a, iter)
				}
				seen[a] = true
			}
		}
	}
}

func TestHotSharedHitsSharedRegion(t *testing.T) {
	ss, _ := ByName("ss")
	spec := Table()[2].Spec // ss
	if spec.Name != "ss" {
		t.Fatal("table order changed")
	}
	sharedLines := uint64(spec.SharedKB) * 1024 / lineBytes
	inShared := 0
	total := 0
	var buf []uint64
	for core := 0; core < 15; core++ {
		for iter := 0; iter < 20; iter++ {
			for inst := 0; inst < spec.LoadsPerIter; inst++ {
				buf = ss.Addr(buf[:0], core, 3, iter, inst)
				for _, a := range buf {
					total++
					if a/lineBytes < sharedLines {
						inShared++
					}
				}
			}
		}
	}
	frac := float64(inShared) / float64(total)
	if frac < spec.SharedFrac-0.15 || frac > spec.SharedFrac+0.15 {
		t.Fatalf("shared fraction = %.2f, want ≈%.2f", frac, spec.SharedFrac)
	}
}

func TestTiledPatternStaysInCoreTile(t *testing.T) {
	mm, _ := ByName("mm")
	spec := Table()[0].Spec
	tileLines := uint64(spec.WorkingSetKB) * 1024 / lineBytes
	var buf []uint64
	for iter := 0; iter < 20; iter++ {
		buf = mm.Addr(buf[:0], 2, 1, iter, 0)
		for _, a := range buf {
			idx := a / lineBytes
			if idx < tileRegionBase {
				continue // hot shared region access
			}
			tile := (idx - tileRegionBase) / tileLines
			if tile != 2 {
				t.Fatalf("core 2 accessed tile %d", tile)
			}
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := Spec{Name: "x", Iters: 1, LoadsPerIter: 1, Pattern: PatRandomWS} // no WS
	if _, err := bad.Build(); err == nil {
		t.Error("missing working set must fail")
	}
	bad2 := Spec{Name: "y", Iters: 0, LoadsPerIter: 1}
	if _, err := bad2.Build(); err == nil {
		t.Error("zero iterations must fail")
	}
	bad3 := Spec{Iters: 1, LoadsPerIter: 1}
	if _, err := bad3.Build(); err == nil {
		t.Error("missing name must fail")
	}
}

func TestBodyLayoutConsumesLoads(t *testing.T) {
	spec := Spec{
		Name: "layout", Iters: 1,
		LoadsPerIter: 3, StoresPerIter: 1, ALUPerIter: 6, DepDist: 2,
		Pattern: PatStream, Seed: 1,
	}
	wl := spec.MustBuild()
	consumed := map[int8]bool{}
	for _, in := range wl.Program.Body {
		if in.Kind == smcore.OpALU {
			if in.Src1 >= 1 && in.Src1 <= 3 {
				consumed[in.Src1] = true
			}
		}
	}
	for r := int8(1); r <= 3; r++ {
		if !consumed[r] {
			t.Errorf("load register r%d never consumed — no data hazards possible", r)
		}
	}
}

func TestPadCodeGrowsBody(t *testing.T) {
	spec := Spec{
		Name: "padded", Iters: 1, LoadsPerIter: 1, ALUPerIter: 1,
		Pattern: PatStream, PadCodeInsts: 100,
	}
	wl := spec.MustBuild()
	if len(wl.Program.Body) < 102 {
		t.Fatalf("body = %d insts, want ≥ 102", len(wl.Program.Body))
	}
}
