package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// defaultStridePages is the co-prime line stride Build substitutes when a
// PatStrided spec leaves StridePages zero.
const defaultStridePages = 97

// Canonical returns the spec in canonical form: Build's implicit defaults
// are made explicit and fields the address generator never reads under
// this spec's pattern and instruction mix are zeroed. Two specs with
// equal canonical forms produce identical request streams instruction for
// instruction, so different spellings of the same workload — zero vs.
// explicit defaults, leftover geometry from an edited pattern — collapse
// to one value. SpecID (and therefore every memo cell, job ID and
// disk-cache entry keyed on it) hashes exactly this form.
func (s Spec) Canonical() Spec {
	c := s
	if c.LinesPerAccess < 1 {
		c.LinesPerAccess = 1
	}
	// The independent-filler count is clamped to the light-ALU budget at
	// build time; out-of-range DepDist spellings are the same program.
	if c.DepDist < 0 {
		c.DepDist = 0
	}
	if c.DepDist > c.ALUPerIter {
		c.DepDist = c.ALUPerIter
	}
	if c.PadCodeInsts < 0 {
		c.PadCodeInsts = 0
	}
	// Store windowing only applies while stores exist and the window is
	// positive.
	if c.StoresPerIter <= 0 || c.StoreWindowLines < 0 {
		c.StoreWindowLines = 0
	}
	// The hot shared region is only reachable through SharedFrac. With no
	// diversion, PatHotShared's remaining case indexes the working set
	// exactly like PatRandomWS, so the two spellings are one workload.
	if c.SharedFrac == 0 {
		c.SharedKB = 0
		if c.Pattern == PatHotShared {
			c.Pattern = PatRandomWS
		}
	}
	switch c.Pattern {
	case PatStrided:
		if c.StridePages == 0 {
			c.StridePages = defaultStridePages
		}
	default:
		c.StridePages = 0
	}
	if c.Pattern == PatStream {
		c.WorkingSetKB = 0 // streams allocate fresh lines, no working set
		if c.SharedFrac == 0 {
			// Pure streams index by (iteration, slot, warp) alone; the
			// hash seed is only consulted for hot-region diversion and
			// the randomized patterns.
			c.Seed = 0
		}
	}
	if c.LoadsPerIter == 0 {
		// With no loads the address generator only ever runs its store
		// path, which consults none of the load-pattern geometry or the
		// hash seed.
		c.Pattern = PatStream
		c.LinesPerAccess = 1
		c.StridePages = 0
		c.WorkingSetKB = 0
		c.SharedKB = 0
		c.SharedFrac = 0
		c.Seed = 0
	}
	return c
}

// Identity returns the canonical spec with its provenance labels (Name,
// Suite) cleared — the exact value SpecID hashes. Labels are excluded
// from workload identity for the same reason config.Config.Name is
// excluded from cell identity: a renamed copy of the same kernel must
// share its simulation results. Experiment engines use Identity as a
// comparable memo key so job identity and SpecID can never diverge.
func (s Spec) Identity() Spec {
	id := s.Canonical()
	id.Name, id.Suite = "", ""
	return id
}

// SpecID returns a stable, content-addressed identifier of the workload:
// a hash over the canonical JSON of Identity. Semantically identical
// specs — field order, zero-value defaults and labels aside — share an
// ID; any change that alters the generated request stream changes it.
func (s Spec) SpecID() string {
	id := s.Identity()
	b, err := json.Marshal(id)
	if err != nil {
		// Only non-finite SharedFrac values (which Validate rejects) can
		// defeat Marshal; hash a deterministic textual form instead so
		// SpecID is total and never panics on garbage input.
		b = []byte(fmt.Sprintf("%#v", id))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}
