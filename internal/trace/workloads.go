package trace

import (
	"fmt"

	"gpumembw/internal/smcore"
)

// Benchmark couples a synthetic kernel spec with the reference numbers the
// paper reports for its namesake in Table II.
type Benchmark struct {
	Spec       Spec
	PaperPInf  float64 // speedup with an infinite-bandwidth memory system
	PaperPDRAM float64 // speedup with baseline caches + infinite-BW DRAM
}

// Table returns the 19 benchmarks in Table II order (sorted by P∞).
//
// Each spec is tuned so its request stream matches the qualitative
// behaviour the paper attributes to the benchmark: working sets position
// reuse at the L1, L2 or nowhere; coalescing degree sets transactions per
// instruction; store fraction loads the request network; TLP and
// dependency distance set latency tolerance; code footprint drives L1I
// pressure. The comment on each spec explains the substitution.
func Table() []Benchmark {
	return []Benchmark{
		{
			// Tiled matrix multiply: per-core tiles thrash the 16 KB L1 but
			// all tiles fit in the L2 together, so the benchmark lives or
			// dies on L2 bandwidth (paper: most bandwidth-sensitive, P_DRAM
			// ≈ 1 because DRAM is barely touched after warm-up).
			Spec: Spec{
				Name: "mm", Suite: "MapReduce",
				WarpsPerCore: 48, Iters: 28,
				LoadsPerIter: 8, StoresPerIter: 1, ALUPerIter: 18,
				DepDist: 5, Pattern: PatTiled,
				WorkingSetKB: 48, SharedKB: 128, SharedFrac: 0.3,
				StoreWindowLines: 16,
				Seed:             11,
			},
			PaperPInf: 4.90, PaperPDRAM: 1.01,
		},
		{
			// Lattice-Boltzmann: long coalesced streams with a heavy store
			// component; halo reuse keeps a slice in the L2 but the bulk
			// streams from DRAM — the strongest P_DRAM in the suite.
			Spec: Spec{
				Name: "lbm", Suite: "Parboil",
				WarpsPerCore: 48, Iters: 16,
				LoadsPerIter: 5, StoresPerIter: 4, ALUPerIter: 38,
				DepDist: 6, Pattern: PatStream,
				SharedKB: 256, SharedFrac: 0.05,
				Seed: 12,
			},
			PaperPInf: 3.40, PaperPDRAM: 1.87,
		},
		{
			// Similarity Score: MapReduce join against a hot shared table
			// that lives in the L2 — cache-hierarchy-bound (P_DRAM = 1.00).
			Spec: Spec{
				Name: "ss", Suite: "MapReduce",
				WarpsPerCore: 48, Iters: 28,
				LoadsPerIter: 6, StoresPerIter: 1, ALUPerIter: 26,
				DepDist: 3, Pattern: PatHotShared,
				WorkingSetKB: 512, SharedKB: 96, SharedFrac: 0.7,
				StoreWindowLines: 16,
				Seed:             13,
			},
			PaperPInf: 3.23, PaperPDRAM: 1.00,
		},
		{
			// Nearest Neighbour: streams the record array once — memory-
			// intensive with a strong DRAM component (P_DRAM = 1.84).
			Spec: Spec{
				Name: "nn", Suite: "Rodinia",
				WarpsPerCore: 48, Iters: 24,
				LoadsPerIter: 5, StoresPerIter: 1, ALUPerIter: 30,
				DepDist: 5, Pattern: PatStream,
				SharedKB: 192, SharedFrac: 0.02,
				Seed: 14,
			},
			PaperPInf: 3.11, PaperPDRAM: 1.84,
		},
		{
			// Hybrid Sort: bucket phase with a working set twice the L2 —
			// partial reuse, a real DRAM component, store traffic.
			Spec: Spec{
				Name: "hybridsort", Suite: "Rodinia",
				WarpsPerCore: 48, Iters: 16,
				LoadsPerIter: 5, StoresPerIter: 3, ALUPerIter: 32,
				DepDist: 4, Pattern: PatRandomWS,
				WorkingSetKB: 1152, SharedKB: 128, SharedFrac: 0.25,
				Seed: 15,
			},
			PaperPInf: 3.10, PaperPDRAM: 1.24,
		},
		{
			// CFD solver: irregular gather over a mesh that fits the L2 —
			// high L1 miss rate, L2-bandwidth-bound (P_DRAM = 1.06).
			Spec: Spec{
				Name: "cfd", Suite: "Rodinia",
				WarpsPerCore: 48, Iters: 18,
				LoadsPerIter: 8, StoresPerIter: 2, ALUPerIter: 36,
				DepDist: 5, Pattern: PatRandomWS,
				WorkingSetKB: 640,
				Seed:         16,
			},
			PaperPInf: 3.08, PaperPDRAM: 1.06,
		},
		{
			// Page View Rank: reduction against hot shared rank tables.
			Spec: Spec{
				Name: "pvr", Suite: "MapReduce",
				WarpsPerCore: 48, Iters: 24,
				LoadsPerIter: 6, StoresPerIter: 2, ALUPerIter: 26,
				DepDist: 3, Pattern: PatHotShared,
				WorkingSetKB: 384, SharedKB: 64, SharedFrac: 0.6,
				StoreWindowLines: 16,
				Seed:             17,
			},
			PaperPInf: 2.89, PaperPDRAM: 1.01,
		},
		{
			// Breadth-First Search (Rodinia): data-dependent, uncoalesced
			// frontier expansion over a graph that mostly fits the L2.
			Spec: Spec{
				Name: "bfs", Suite: "Rodinia",
				WarpsPerCore: 48, Iters: 20,
				LoadsPerIter: 3, StoresPerIter: 1, ALUPerIter: 40,
				DepDist: 1, Pattern: PatStrided,
				LinesPerAccess: 3, StridePages: 131, WorkingSetKB: 384,
				StoreWindowLines: 16,
				Seed:             18,
			},
			PaperPInf: 2.84, PaperPDRAM: 1.00,
		},
		{
			// lavaMD: particle interactions against shared neighbour boxes;
			// unusually store-heavy, which loads the *request* network —
			// the benchmark the paper singles out as hurt by the 16 B
			// request flits of the 16+48 crossbar (−37%).
			Spec: Spec{
				Name: "lavaMD", Suite: "Rodinia",
				WarpsPerCore: 48, Iters: 16,
				LoadsPerIter: 6, StoresPerIter: 6, ALUPerIter: 32, HeavyPerIter: 2,
				DepDist: 4, Pattern: PatHotShared,
				WorkingSetKB: 256, SharedKB: 64, SharedFrac: 0.8,
				StoreWindowLines: 32,
				Seed:             19,
			},
			PaperPInf: 2.70, PaperPDRAM: 1.00,
		},
		{
			// Stream Cluster: distance computations with badly coalesced
			// point accesses — each load bursts 8 transactions, saturating
			// the L1 MSHRs and memory pipeline (the paper's standout L1-
			// scaling winner at +240%).
			Spec: Spec{
				Name: "sc", Suite: "Rodinia",
				WarpsPerCore: 6, Iters: 70,
				LoadsPerIter: 2, StoresPerIter: 1, ALUPerIter: 10,
				DepDist: 2, Pattern: PatStrided,
				LinesPerAccess: 9, StridePages: 173, WorkingSetKB: 384,
				SharedKB: 8, SharedFrac: 0.72,
				StoreWindowLines: 32,
				Seed:             20,
			},
			PaperPInf: 2.70, PaperPDRAM: 1.13,
		},
		{
			// Breadth-First Search (Parboil): as bfs but a larger, less
			// L2-friendly graph and lower occupancy.
			Spec: Spec{
				Name: "bfs'", Suite: "Parboil",
				WarpsPerCore: 36, Iters: 24,
				LoadsPerIter: 2, StoresPerIter: 1, ALUPerIter: 30,
				DepDist: 1, Pattern: PatStrided,
				LinesPerAccess: 2, StridePages: 211, WorkingSetKB: 640,
				StoreWindowLines: 16,
				Seed:             21,
			},
			PaperPInf: 2.10, PaperPDRAM: 1.00,
		},
		{
			// Inverted Index: hash-bucket lookups in a shared index.
			Spec: Spec{
				Name: "ii", Suite: "MapReduce",
				WarpsPerCore: 32, Iters: 28,
				LoadsPerIter: 4, StoresPerIter: 1, ALUPerIter: 30,
				DepDist: 3, Pattern: PatHotShared,
				WorkingSetKB: 512, SharedKB: 32, SharedFrac: 0.5,
				StoreWindowLines: 16,
				Seed:             22,
			},
			PaperPInf: 1.98, PaperPDRAM: 1.00,
		},
		{
			// Speckle-reducing anisotropic diffusion, kernel 1: stencil
			// streams with enough arithmetic to hide modest latencies.
			Spec: Spec{
				Name: "sradv1", Suite: "Rodinia",
				WarpsPerCore: 48, Iters: 22,
				LoadsPerIter: 2, StoresPerIter: 2, ALUPerIter: 52,
				DepDist: 8, Pattern: PatStream,
				SharedKB: 192, SharedFrac: 0.3,
				StoreWindowLines: 64,
				Seed:             23,
			},
			PaperPInf: 1.51, PaperPDRAM: 1.19,
		},
		{
			// srad kernel 2: same arithmetic on a reused image that
			// mostly fits the L2.
			Spec: Spec{
				Name: "sradv2", Suite: "Rodinia",
				WarpsPerCore: 48, Iters: 20,
				LoadsPerIter: 2, StoresPerIter: 2, ALUPerIter: 46,
				DepDist: 6, Pattern: PatRandomWS,
				WorkingSetKB: 640,
				Seed:         24,
			},
			PaperPInf: 1.49, PaperPDRAM: 1.08,
		},
		{
			// Needleman-Wunsch: wavefront dependences cap parallelism
			// (12 warps) and every load feeds the next cell.
			Spec: Spec{
				Name: "nw", Suite: "Rodinia",
				WarpsPerCore: 12, Iters: 70,
				LoadsPerIter: 3, StoresPerIter: 2, ALUPerIter: 48,
				DepDist: 0, Pattern: PatStrided,
				LinesPerAccess: 2, StridePages: 61, WorkingSetKB: 256,
				StoreWindowLines: 32,
				Seed:             25,
			},
			PaperPInf: 1.43, PaperPDRAM: 1.09,
		},
		{
			// PDE stencil: the most regular streamer in the suite with
			// plenty of arithmetic — the paper's bandwidth-efficiency
			// champion (65% DRAM efficiency) but a modest P∞.
			Spec: Spec{
				Name: "stencil", Suite: "Parboil",
				WarpsPerCore: 48, Iters: 18,
				LoadsPerIter: 2, StoresPerIter: 2, ALUPerIter: 52, HeavyPerIter: 2,
				DepDist: 10, Pattern: PatStream,
				SharedKB: 256, SharedFrac: 0.45,
				StoreWindowLines: 64,
				Seed:             26,
			},
			PaperPInf: 1.23, PaperPDRAM: 1.20,
		},
		{
			// 2-D wavelet transform: short kernels, little TLP (8 warps),
			// sensitive to even small latency increases (Fig. 3).
			Spec: Spec{
				Name: "dwt2d", Suite: "Rodinia",
				WarpsPerCore: 8, Iters: 70,
				LoadsPerIter: 2, StoresPerIter: 2, ALUPerIter: 36,
				DepDist: 3, Pattern: PatStream,
				SharedKB: 96, SharedFrac: 0.4,
				StoreWindowLines: 32,
				Seed:             27,
			},
			PaperPInf: 1.20, PaperPDRAM: 1.14,
		},
		{
			// Sum of absolute differences: arithmetic-dominated video
			// kernel whose macroblocks stay L1-resident.
			Spec: Spec{
				Name: "sad", Suite: "Parboil",
				WarpsPerCore: 48, Iters: 20,
				LoadsPerIter: 4, StoresPerIter: 1, ALUPerIter: 22, HeavyPerIter: 2,
				DepDist: 8, Pattern: PatTiled,
				WorkingSetKB:     24,
				StoreWindowLines: 32,
				Seed:             28,
			},
			PaperPInf: 1.16, PaperPDRAM: 1.09,
		},
		{
			// Leukocyte tracking: compute-bound with a kernel body larger
			// than the L1I, so the memory system mostly sees instruction
			// misses (P∞ = 1.08 — barely memory-sensitive).
			Spec: Spec{
				Name: "leukocyte", Suite: "Rodinia",
				WarpsPerCore: 24, Iters: 5,
				LoadsPerIter: 3, StoresPerIter: 1, ALUPerIter: 20, HeavyPerIter: 4,
				DepDist: 8, Pattern: PatRandomWS,
				WorkingSetKB: 640, PadCodeInsts: 600,
				Seed: 29,
			},
			PaperPInf: 1.08, PaperPDRAM: 1.00,
		},
	}
}

// Names returns the benchmark names in Table II order.
func Names() []string {
	t := Table()
	names := make([]string, len(t))
	for i, b := range t {
		names[i] = b.Spec.Name
	}
	return names
}

// Fig1Names returns the x-axis ordering used by Figs. 1 and 4–9
// (Rodinia alphabetical, then sc, then Parboil, then MapReduce).
func Fig1Names() []string {
	return []string{
		"bfs", "cfd", "dwt2d", "hybridsort", "lavaMD", "leukocyte",
		"nn", "nw", "sradv1", "sradv2", "sc",
		"bfs'", "lbm", "sad", "stencil",
		"ii", "mm", "pvr", "ss",
	}
}

// Workloads builds every benchmark, keyed by name.
func Workloads() map[string]*smcore.Workload {
	out := make(map[string]*smcore.Workload)
	for _, b := range Table() {
		out[b.Spec.Name] = b.Spec.MustBuild()
	}
	return out
}

// Exists reports whether name is a Table II benchmark, without building
// its workload.
func Exists(name string) bool {
	for _, b := range Table() {
		if b.Spec.Name == name {
			return true
		}
	}
	return false
}

// SpecByName returns the named Table II benchmark as its workload spec —
// the registry behind every place a benchmark name is accepted. Callers
// can use the returned Spec as a starting point for custom workloads:
// copy it, change the axes under study (coalescing, TLP, working set,
// sharing, ...), and run it anywhere an inline spec is accepted.
func SpecByName(name string) (Spec, error) {
	for _, b := range Table() {
		if b.Spec.Name == name {
			return b.Spec, nil
		}
	}
	return Spec{}, fmt.Errorf("trace: unknown benchmark %q (known: %v)", name, Names())
}

// ByName builds the named benchmark.
func ByName(name string) (*smcore.Workload, error) {
	spec, err := SpecByName(name)
	if err != nil {
		return nil, err
	}
	return spec.Build()
}
