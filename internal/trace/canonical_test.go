package trace

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"gpumembw/internal/smcore"
)

// liveSpec returns a spec in which every identity-bearing field affects
// the generated request stream, so perturbing any of them must change
// the SpecID.
func liveSpec() Spec {
	return Spec{
		Name: "live", Suite: "Test",
		WarpsPerCore: 24, Iters: 10,
		LoadsPerIter: 4, StoresPerIter: 2, ALUPerIter: 20, HeavyPerIter: 1,
		DepDist: 5, Pattern: PatStrided,
		LinesPerAccess: 2, StridePages: 101, WorkingSetKB: 256,
		SharedKB: 32, SharedFrac: 0.5,
		StoreWindowLines: 16, PadCodeInsts: 8,
		Seed: 7,
	}
}

// TestSpecIDGolden pins the content-address schema: these hashes may only
// change together with a core.SimVersion bump, because disk caches and
// job IDs are keyed on them.
func TestSpecIDGolden(t *testing.T) {
	mm, err := SpecByName("mm")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		spec Spec
		want string
	}{
		{"mm", mm, "ed064fff0ce8bb07"},
		{"live", liveSpec(), "025fc4c8d6200cd7"},
	} {
		if got := tc.spec.SpecID(); got != tc.want {
			t.Errorf("%s: SpecID = %q, want %q (cell-identity schema changed — bump core.SimVersion)", tc.name, got, tc.want)
		}
	}
}

func TestSpecIDExcludesLabels(t *testing.T) {
	a := liveSpec()
	b := a
	b.Name, b.Suite = "renamed", "Rodinia"
	if a.SpecID() != b.SpecID() {
		t.Fatal("renaming a spec changed its identity")
	}
}

// equivalentPairs enumerates different spellings of the same workload:
// zero values vs. explicit build-time defaults, and leftover fields the
// pattern or instruction mix never reads.
func equivalentPairs() []struct {
	name string
	a, b Spec
} {
	stream := Spec{Name: "s", Iters: 4, LoadsPerIter: 2, ALUPerIter: 4, Pattern: PatStream, Seed: 3}
	strided := Spec{Name: "s", Iters: 4, LoadsPerIter: 2, ALUPerIter: 4, Pattern: PatStrided, WorkingSetKB: 64, Seed: 3}
	pairs := []struct {
		name string
		a, b Spec
	}{}
	add := func(name string, a, b Spec) {
		pairs = append(pairs, struct {
			name string
			a, b Spec
		}{name, a, b})
	}

	a, b := stream, stream
	b.LinesPerAccess = 1
	add("lines-per-access 0 vs 1", a, b)

	a, b = strided, strided
	b.StridePages = defaultStridePages
	add("stride 0 vs default 97", a, b)

	a, b = stream, stream
	a.WorkingSetKB = 640
	add("stream ignores WorkingSetKB", a, b)

	a, b = stream, stream
	a.SharedKB = 64 // SharedFrac stays 0: hot region unreachable
	add("SharedKB without SharedFrac", a, b)

	a, b = stream, stream
	a.StoreWindowLines = 32 // no stores: window never applies
	add("StoreWindowLines without stores", a, b)

	a, b = stream, stream
	a.DepDist = 100 // clamped to the light-ALU budget at build time
	b.DepDist = 4
	add("DepDist clamped to ALUPerIter", a, b)

	a, b = stream, stream
	a.DepDist = -7 // clamped to zero at build time
	add("negative DepDist is zero", a, b)

	a, b = stream, stream
	a.Seed = 99 // pure streams never consult the hash seed
	add("stream ignores Seed", a, b)

	a = Spec{Name: "st", Iters: 4, StoresPerIter: 2, ALUPerIter: 2, Pattern: PatTiled, WorkingSetKB: 64, LinesPerAccess: 4, Seed: 9}
	b = Spec{Name: "st", Iters: 4, StoresPerIter: 2, ALUPerIter: 2}
	add("store-only body ignores load geometry", a, b)

	return pairs
}

func TestSpecIDZeroValueInvariance(t *testing.T) {
	for _, tc := range equivalentPairs() {
		if tc.a.SpecID() != tc.b.SpecID() {
			t.Errorf("%s: IDs differ (%s vs %s)", tc.name, tc.a.SpecID(), tc.b.SpecID())
		}
	}
}

// TestEquivalentSpecsBuildIdenticalWorkloads backs the canonicalization
// claim with behavior: specs that share an ID must generate the same
// program and the same address stream.
func TestEquivalentSpecsBuildIdenticalWorkloads(t *testing.T) {
	for _, tc := range equivalentPairs() {
		wa, err := tc.a.Build()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		wb, err := tc.b.Build()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(wa.Program.Body) != len(wb.Program.Body) {
			t.Errorf("%s: body lengths differ (%d vs %d)", tc.name, len(wa.Program.Body), len(wb.Program.Body))
			continue
		}
		var ba, bb []uint64
		for inst, in := range wa.Program.Body {
			if in.Kind != smcore.OpLoad && in.Kind != smcore.OpStore {
				continue
			}
			for coreID := 0; coreID < 2; coreID++ {
				for iter := 0; iter < 3; iter++ {
					ba = wa.Addr(ba, coreID, 5, iter, inst)
					bb = wb.Addr(bb, coreID, 5, iter, inst)
				}
			}
		}
		if !reflect.DeepEqual(ba, bb) {
			t.Errorf("%s: address streams differ", tc.name)
		}
	}
}

// TestSpecIDDistinguishesEveryField perturbs each Spec field of a fully
// live spec and checks the identity moves — no knob that can change the
// request stream may be silently excluded from the content address.
func TestSpecIDDistinguishesEveryField(t *testing.T) {
	base := liveSpec()
	baseID := base.SpecID()
	v := reflect.ValueOf(base)
	for i := 0; i < v.NumField(); i++ {
		f := v.Type().Field(i)
		if f.Name == "Name" || f.Name == "Suite" {
			continue // provenance labels, excluded by design
		}
		mut := base
		mv := reflect.ValueOf(&mut).Elem().Field(i)
		switch mv.Kind() {
		case reflect.Int:
			mv.SetInt(mv.Int() + 1)
		case reflect.Uint8, reflect.Uint64:
			mv.SetUint(mv.Uint() + 1)
		case reflect.Float64:
			mv.SetFloat(mv.Float() + 0.1)
		default:
			t.Fatalf("unhandled field kind %v for %s — extend this test", mv.Kind(), f.Name)
		}
		if mut.SpecID() == baseID {
			t.Errorf("perturbing %s did not change the SpecID", f.Name)
		}
	}
}

// TestSpecIDJSONKeyOrderInvariance covers the wire path: the same inline
// spec serialized with different key orders must land on one identity.
func TestSpecIDJSONKeyOrderInvariance(t *testing.T) {
	docA := `{"Name":"w","Iters":4,"LoadsPerIter":2,"ALUPerIter":4,"Pattern":"strided","WorkingSetKB":64,"Seed":3}`
	docB := `{"Seed":3,"WorkingSetKB":64,"Pattern":"strided","ALUPerIter":4,"LoadsPerIter":2,"Iters":4,"Name":"w"}`
	var a, b Spec
	if err := json.Unmarshal([]byte(docA), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(docB), &b); err != nil {
		t.Fatal(err)
	}
	if a.SpecID() != b.SpecID() {
		t.Fatal("JSON key order changed the SpecID")
	}
}

func TestPatternJSONRoundTrip(t *testing.T) {
	for p := PatStream; p <= PatTiled; p++ {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var got Pattern
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if got != p {
			t.Fatalf("round trip %v -> %s -> %v", p, data, got)
		}
	}
	var byNumber Pattern
	if err := json.Unmarshal([]byte("2"), &byNumber); err != nil || byNumber != PatRandomWS {
		t.Fatalf("numeric pattern = %v, %v", byNumber, err)
	}
	var bad Pattern
	if err := json.Unmarshal([]byte(`"zigzag"`), &bad); err == nil {
		t.Fatal("unknown pattern name accepted")
	}
}

func TestSpecByName(t *testing.T) {
	sp, err := SpecByName("mm")
	if err != nil || sp.Name != "mm" {
		t.Fatalf("SpecByName(mm) = %+v, %v", sp, err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestNegativeDepDistBuildsBoundedBody guards the build-time clamp: an
// arbitrarily negative DepDist must not inflate the remaining-ALU budget
// (alusLeft -= indep) into a huge program — the OOM a hostile inline
// spec could otherwise trigger in the daemon past the body-size cap.
func TestNegativeDepDistBuildsBoundedBody(t *testing.T) {
	spec := Spec{
		Name: "hostile", Iters: 1,
		LoadsPerIter: 1, ALUPerIter: 1, DepDist: -1_000_000,
		Pattern: PatStream,
	}
	wl, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(wl.Program.Body); n > 2 {
		t.Fatalf("body = %d insts, want 2 (negative DepDist inflated the ALU budget)", n)
	}
}

func TestValidateRejectsHostileSpecs(t *testing.T) {
	ok := Spec{Name: "ok", Iters: 1, LoadsPerIter: 1, ALUPerIter: 1, Pattern: PatStream}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mut  func(*Spec)
	}{
		{"unknown pattern", func(s *Spec) { s.Pattern = 99; s.WorkingSetKB = 64 }},
		{"negative working set", func(s *Spec) { s.WorkingSetKB = -1 }},
		{"negative stride", func(s *Spec) { s.StridePages = -5 }},
		{"negative warps", func(s *Spec) { s.WarpsPerCore = -1 }},
		{"oversized body", func(s *Spec) { s.PadCodeInsts = maxBodyInsts + 1 }},
		{"over-coalesced", func(s *Spec) { s.LinesPerAccess = 33 }},
		{"NaN shared fraction", func(s *Spec) { s.SharedKB, s.SharedFrac = 16, math.NaN() }},
		{"shared fraction above 1", func(s *Spec) { s.SharedKB, s.SharedFrac = 16, 1.5 }},
		{"negative lines per access", func(s *Spec) { s.LinesPerAccess = -3 }},
		{"overflowing body sum", func(s *Spec) { s.ALUPerIter = math.MaxInt64 / 2; s.PadCodeInsts = math.MaxInt64 / 2 }},
	} {
		s := ok
		tc.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
