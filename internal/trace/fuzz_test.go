package trace

import (
	"encoding/json"
	"testing"
)

// FuzzParsePattern pins the pattern name round trip: any string either
// rejects with an error or parses to a pattern whose String form is the
// input. Run as a unit test it covers the committed seed corpus; run
// with -fuzz it searches for panics.
func FuzzParsePattern(f *testing.F) {
	for p := PatStream; p <= PatTiled; p++ {
		f.Add(p.String())
	}
	f.Add("")
	f.Add("STREAM")
	f.Add("stream ")
	f.Add("random-ws\x00")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePattern(s)
		if err != nil {
			return
		}
		if p.String() != s {
			t.Errorf("ParsePattern(%q) = %v, whose name is %q", s, p, p.String())
		}
	})
}

// FuzzSpecJSON feeds arbitrary documents through the Spec JSON decoder
// and the validation/canonicalization pipeline every inline-spec request
// traverses. The contract is reject-don't-panic: malformed input errors;
// anything Validate accepts must canonicalize, keep validating, and
// produce a stable SpecID.
func FuzzSpecJSON(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"Name":"t","Iters":1,"ALUPerIter":1}`,
		`{"Name":"t","Iters":2,"WarpsPerCore":4,"LoadsPerIter":2,"ALUPerIter":3,"Pattern":"strided","WorkingSetKB":64,"StridePages":7}`,
		`{"Name":"t","Iters":1,"LoadsPerIter":1,"Pattern":"hot-shared","WorkingSetKB":32,"SharedKB":8,"SharedFrac":0.5}`,
		`{"Name":"t","Iters":1,"LoadsPerIter":1,"Pattern":99}`,
		`{"Name":"t","Iters":1,"LoadsPerIter":1,"SharedFrac":1e309}`,
		`{"Name":"t","Iters":-1}`,
		`{"Pattern":"nope"}`,
		`[1,2,3]`,
		`{"Name":"t","Iters":9223372036854775807,"LoadsPerIter":9223372036854775807}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Spec
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		// SpecID must be total — even on invalid specs it may not panic.
		_ = s.SpecID()
		if err := s.Validate(); err != nil {
			return
		}
		c := s.Canonical()
		if err := c.Validate(); err != nil {
			t.Errorf("canonical form of a valid spec fails validation: %v\nspec: %+v", err, s)
		}
		if a, b := s.SpecID(), c.SpecID(); a != b {
			t.Errorf("SpecID not canonicalization-invariant: %s vs %s\nspec: %+v", a, b, s)
		}
	})
}
