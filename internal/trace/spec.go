// Package trace synthesizes the paper's 19 memory-intensive benchmarks
// (Table II: Rodinia, Mars/MapReduce, Parboil) as trace-driven kernels.
//
// The real CUDA binaries are unavailable in this reproduction, and the
// memory system only observes the request stream anyway, so each benchmark
// is modelled by a kernel whose instruction mix, thread-level parallelism,
// coalescing degree, working-set geometry, inter-core sharing, store
// fraction and code footprint are tuned to produce the stream properties
// the paper reports for its namesake (each spec in workloads.go carries a
// comment explaining the substitution).
//
// Address generation is a pure function of (core, warp, iteration,
// instruction), so re-evaluating it on a stalled issue attempt is free of
// side effects and the whole simulation stays deterministic.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"gpumembw/internal/smcore"
)

// Pattern selects the address stream of a memory instruction.
type Pattern uint8

const (
	// PatStream walks fresh, unit-stride lines private to each warp —
	// fully coalesced streaming with no reuse (lbm, nn, stencil...).
	PatStream Pattern = iota
	// PatStrided emits LinesPerAccess lines spread across memory per
	// instruction — uncoalesced access (graph traversals, sc).
	PatStrided
	// PatRandomWS draws lines uniformly from a device-wide working set
	// shared by all cores; reuse is set by the working-set size.
	PatRandomWS
	// PatHotShared draws a SharedFrac fraction of lines from a small,
	// heavily shared region and the rest from the working set.
	PatHotShared
	// PatTiled draws lines from a per-core tile (blocked reuse, mm-like):
	// bigger than the L1, small enough that all tiles fit in the L2.
	PatTiled
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case PatStream:
		return "stream"
	case PatStrided:
		return "strided"
	case PatRandomWS:
		return "random-ws"
	case PatHotShared:
		return "hot-shared"
	case PatTiled:
		return "tiled"
	default:
		return "unknown"
	}
}

// ParsePattern is the inverse of Pattern.String.
func ParsePattern(s string) (Pattern, error) {
	for p := PatStream; p <= PatTiled; p++ {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown pattern %q (known: stream, strided, random-ws, hot-shared, tiled)", s)
}

// MarshalJSON encodes known patterns by name ("stream", "strided", ...)
// so spec files stay readable; out-of-range values fall back to their
// numeric form rather than failing, keeping Spec always marshalable.
func (p Pattern) MarshalJSON() ([]byte, error) {
	if p > PatTiled {
		return json.Marshal(uint8(p))
	}
	return json.Marshal(p.String())
}

// UnmarshalJSON accepts either a pattern name or its numeric value.
func (p *Pattern) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err == nil {
		v, err := ParsePattern(name)
		if err != nil {
			return err
		}
		*p = v
		return nil
	}
	var n uint8
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("trace: pattern must be a name or a number, got %s", data)
	}
	*p = Pattern(n)
	return nil
}

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	Name  string
	Suite string // Rodinia, MapReduce, Parboil (provenance only)

	WarpsPerCore int // thread-level parallelism
	Iters        int // loop iterations per warp

	LoadsPerIter  int
	StoresPerIter int
	ALUPerIter    int // light arithmetic per iteration
	HeavyPerIter  int // long-latency arithmetic per iteration

	// DepDist is the number of independent instructions between a load
	// and its first consumer (instruction-level latency tolerance).
	DepDist int

	Pattern        Pattern
	LinesPerAccess int     // coalescing degree (1 = fully coalesced)
	StridePages    int     // line stride between transactions (PatStrided)
	WorkingSetKB   int     // PatRandomWS / PatHotShared / PatTiled footprint
	SharedKB       int     // hot-region size (PatHotShared)
	SharedFrac     float64 // fraction of loads hitting the hot region

	// StoreWindowLines, when positive, wraps each warp's store stream
	// within a window of that many lines, so output buffers are updated
	// in place and stay L2-resident instead of streaming write-backs to
	// DRAM (reductions, histogram updates, in-place sweeps).
	StoreWindowLines int

	// PadCodeInsts appends this many filler ALU instructions to the body,
	// growing the code footprint past the L1I for fetch-hazard studies.
	PadCodeInsts int

	Seed uint64
}

const lineBytes = 128

// Region bases in line-index space (multiplied by lineBytes at the end).
// Keeping regions disjoint makes every pattern's reuse behaviour explicit.
const (
	hotRegionBase    = uint64(0)
	wsRegionBase     = uint64(1) << 21
	tileRegionBase   = uint64(1) << 23
	streamRegionBase = uint64(1) << 25
	storeRegionBase  = uint64(1) << 29
)

// memSlot describes a memory instruction's position within the body.
type memSlot struct {
	isStore bool
	slot    int // 0-based among its kind
}

// Build compiles the spec into a runnable workload.
func (s Spec) Build() (*smcore.Workload, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	body, slots := s.buildBody()
	loads := s.LoadsPerIter
	prog := smcore.Program{Body: body, Iters: s.Iters, CodeBase: 1 << 40}

	wsLines := uint64(s.WorkingSetKB) * 1024 / lineBytes
	sharedLines := uint64(s.SharedKB) * 1024 / lineBytes
	tileLines := wsLines // per-core tile size for PatTiled
	lines := s.LinesPerAccess
	if lines < 1 {
		lines = 1
	}
	stride := uint64(s.StridePages)
	if stride == 0 {
		stride = defaultStridePages // Canonical mirrors this default
	}
	seed := s.Seed ^ 0x9e3779b97f4a7c15

	// Streams interleave warps at line granularity (warp w touches line
	// seq*W + w), the layout a coalesced row-major kernel produces: warps
	// executing the same instruction hit neighbouring lines, which is what
	// gives streaming workloads their DRAM row-buffer locality.
	warpStride := uint64(s.WarpsPerCore)
	if warpStride == 0 {
		warpStride = 64
	}

	addr := func(buf []uint64, coreID, warpID, iter, instIdx int) []uint64 {
		ms := slots[instIdx]
		if ms.isStore {
			// Stores stream through a warp-interleaved output region,
			// coalesced (one full line per store), optionally wrapping
			// within a small in-place window.
			base := storeRegionBase + uint64(coreID)<<22
			off := uint64(iter)*uint64(s.StoresPerIter) + uint64(ms.slot)
			if s.StoreWindowLines > 0 {
				off %= uint64(s.StoreWindowLines)
			}
			return append(buf, (base+off*warpStride+uint64(warpID))*lineBytes)
		}
		for k := 0; k < lines; k++ {
			h := mix(seed, uint64(coreID), uint64(warpID), uint64(iter), uint64(instIdx)+uint64(k)<<32)
			var lineIdx uint64
			// Every pattern may divert a SharedFrac fraction of its
			// accesses to the hot shared region (halo cells, lookup
			// tables, frontier bitmaps, ...), which is where inter-core
			// L2 locality comes from.
			if s.SharedFrac > 0 && float64(h>>40)/float64(1<<24) < s.SharedFrac {
				buf = appendUnique(buf, (hotRegionBase+h%maxU64(sharedLines, 1))*lineBytes)
				continue
			}
			switch s.Pattern {
			case PatStream:
				seq := (uint64(iter)*uint64(loads)+uint64(ms.slot))*uint64(lines) + uint64(k)
				coreBase := streamRegionBase + uint64(coreID)<<22
				lineIdx = coreBase + seq*warpStride + uint64(warpID)
			case PatStrided:
				hh := mix(seed, uint64(coreID), uint64(warpID), uint64(iter), uint64(instIdx))
				lineIdx = wsRegionBase + (hh+uint64(k)*stride)%maxU64(wsLines, 1)
			case PatRandomWS:
				lineIdx = wsRegionBase + h%maxU64(wsLines, 1)
			case PatHotShared:
				lineIdx = wsRegionBase + h%maxU64(wsLines, 1)
			case PatTiled:
				tileBase := tileRegionBase + uint64(coreID)*maxU64(tileLines, 1)
				lineIdx = tileBase + h%maxU64(tileLines, 1)
			}
			buf = appendUnique(buf, lineIdx*lineBytes)
		}
		return buf
	}

	return &smcore.Workload{
		Name:         s.Name,
		Program:      prog,
		Addr:         addr,
		WarpsPerCore: s.WarpsPerCore,
	}, nil
}

// MustBuild is Build for registry initialization; specs are static, so a
// failure is a programming error.
func (s Spec) MustBuild() *smcore.Workload {
	w, err := s.Build()
	if err != nil {
		panic(fmt.Sprintf("trace: bad spec %s: %v", s.Name, err))
	}
	return w
}

// ReadSpecFile loads one workload spec from a JSON file, or from stdin
// when path is "-" — the shared loader behind every CLI's -spec flag, so
// the tools can never drift in what spec files they accept. The spec is
// parsed, not validated; validation happens where the spec is used.
func ReadSpecFile(path string) (Spec, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	var spec Spec
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(data, &spec); err != nil {
		return spec, fmt.Errorf("parse %s: %w", path, err)
	}
	return spec, nil
}

// maxBodyInsts bounds one loop iteration's instruction count (body plus
// code padding). The largest paper benchmark needs ~700 instructions for
// its L1I-thrashing study; the bound leaves two orders of magnitude of
// headroom while keeping a hostile inline spec from allocating an
// arbitrarily large program in the daemon.
const maxBodyInsts = 1 << 16

// Validate reports an error if the spec cannot produce a well-formed
// workload. Every Build goes through it, so servers accepting inline
// specs get the same detailed rejection a library caller sees.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("spec has no name")
	case s.Iters <= 0:
		return fmt.Errorf("%s: Iters must be positive", s.Name)
	case s.WarpsPerCore < 0:
		return fmt.Errorf("%s: WarpsPerCore must be non-negative (0 means the configuration's maximum)", s.Name)
	case s.LoadsPerIter < 0 || s.StoresPerIter < 0 || s.ALUPerIter < 0 || s.HeavyPerIter < 0:
		return fmt.Errorf("%s: negative instruction counts", s.Name)
	case s.LoadsPerIter+s.StoresPerIter+s.ALUPerIter+s.HeavyPerIter == 0:
		return fmt.Errorf("%s: empty body", s.Name)
	case s.LoadsPerIter > 24:
		return fmt.Errorf("%s: at most 24 loads per iteration (register budget)", s.Name)
	// Cap each count individually BEFORE summing: two near-MaxInt counts
	// would wrap the sum negative and sail under the aggregate cap.
	case s.StoresPerIter > maxBodyInsts || s.ALUPerIter > maxBodyInsts ||
		s.HeavyPerIter > maxBodyInsts || s.PadCodeInsts > maxBodyInsts:
		return fmt.Errorf("%s: body exceeds %d instructions per iteration", s.Name, maxBodyInsts)
	case s.LoadsPerIter+s.StoresPerIter+s.ALUPerIter+s.HeavyPerIter+max(s.PadCodeInsts, 0) > maxBodyInsts:
		return fmt.Errorf("%s: body exceeds %d instructions per iteration", s.Name, maxBodyInsts)
	case s.Pattern > PatTiled:
		return fmt.Errorf("%s: unknown pattern %d (known: stream, strided, random-ws, hot-shared, tiled)", s.Name, uint8(s.Pattern))
	case s.LinesPerAccess > 32:
		return fmt.Errorf("%s: at most 32 lines per access (one per thread of a warp)", s.Name)
	case s.LinesPerAccess < 0 || s.WorkingSetKB < 0 || s.SharedKB < 0 || s.StridePages < 0:
		return fmt.Errorf("%s: negative access geometry", s.Name)
	case (s.Pattern == PatRandomWS || s.Pattern == PatHotShared || s.Pattern == PatTiled || s.Pattern == PatStrided) && s.WorkingSetKB <= 0:
		return fmt.Errorf("%s: pattern %v needs WorkingSetKB", s.Name, s.Pattern)
	case s.Pattern == PatHotShared && s.SharedKB <= 0:
		return fmt.Errorf("%s: PatHotShared needs SharedKB", s.Name)
	case s.SharedFrac > 0 && s.SharedKB <= 0:
		return fmt.Errorf("%s: SharedFrac needs SharedKB", s.Name)
	case !(s.SharedFrac >= 0 && s.SharedFrac <= 1): // rejects NaN too
		return fmt.Errorf("%s: SharedFrac out of range", s.Name)
	}
	return nil
}

// buildBody lays out one loop iteration:
//
//	loads → independent ALU filler (DepDist) → consumers → heavy ops → stores
//
// Load destinations are r1..rL; consumers read them, so every load is
// eventually waited on (data-MEM hazards); DepDist controls how much
// independent work hides the latency.
func (s Spec) buildBody() ([]smcore.Inst, map[int]memSlot) {
	var body []smcore.Inst
	slots := make(map[int]memSlot)
	none := int8(-1)

	for l := 0; l < s.LoadsPerIter; l++ {
		slots[len(body)] = memSlot{isStore: false, slot: l}
		body = append(body, smcore.Inst{Kind: smcore.OpLoad, Dest: int8(1 + l), Src1: none, Src2: none})
	}
	alusLeft := s.ALUPerIter
	// Independent filler between loads and consumers, clamped to
	// [0, ALUPerIter]: out-of-range DepDist spellings build the same
	// program as their clamped value (Canonical relies on this, and an
	// unclamped negative value would inflate alusLeft below).
	indep := s.DepDist
	if indep < 0 {
		indep = 0
	}
	if indep > alusLeft {
		indep = alusLeft
	}
	scratch := int8(40)
	for a := 0; a < indep; a++ {
		body = append(body, smcore.Inst{Kind: smcore.OpALU, Dest: scratch + int8(a%8), Src1: none, Src2: none})
	}
	alusLeft -= indep
	// Consumers: one per load while ALUs remain.
	consumed := 0
	for l := 0; l < s.LoadsPerIter && alusLeft > 0; l++ {
		body = append(body, smcore.Inst{Kind: smcore.OpALU, Dest: 30 + int8(l%8), Src1: int8(1 + l), Src2: none})
		alusLeft--
		consumed++
	}
	// Remaining light ALUs chain on each other.
	for a := 0; a < alusLeft; a++ {
		src := none
		if a > 0 {
			src = 50 + int8((a-1)%8)
		}
		body = append(body, smcore.Inst{Kind: smcore.OpALU, Dest: 50 + int8(a%8), Src1: src, Src2: none})
	}
	for h := 0; h < s.HeavyPerIter; h++ {
		src := none
		if consumed > 0 {
			src = 30 + int8(h%min(consumed, 8))
		}
		body = append(body, smcore.Inst{Kind: smcore.OpHeavyALU, Dest: 58 + int8(h%4), Src1: src, Src2: none})
	}
	for st := 0; st < s.StoresPerIter; st++ {
		src := int8(30)
		if consumed == 0 {
			src = none
		}
		slots[len(body)] = memSlot{isStore: true, slot: st}
		body = append(body, smcore.Inst{Kind: smcore.OpStore, Dest: none, Src1: src, Src2: none})
	}
	for p := 0; p < s.PadCodeInsts; p++ {
		body = append(body, smcore.Inst{Kind: smcore.OpALU, Dest: 62, Src1: none, Src2: none})
	}
	return body, slots
}

// mix is a splitmix64-style stateless hash of the access coordinates.
func mix(vs ...uint64) uint64 {
	h := uint64(0x243f6a8885a308d3)
	for _, v := range vs {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return h
}

// appendUnique drops duplicate lines within one instruction (the hardware
// coalescer merges them).
func appendUnique(buf []uint64, addr uint64) []uint64 {
	for _, a := range buf {
		if a == addr {
			return buf
		}
	}
	return append(buf, addr)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// SortedNames returns the names of byName in alphabetical order — a
// stable iteration order for callers that hold only the workload map.
func SortedNames(byName map[string]*smcore.Workload) []string {
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
