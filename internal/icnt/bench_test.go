package icnt

import (
	"testing"

	"gpumembw/internal/mem"
)

// BenchmarkCrossbarSaturated measures flit throughput with all 15 cores
// sending to 12 banks (the baseline request network under full load).
func BenchmarkCrossbarSaturated(b *testing.B) {
	n := NewNetwork("bench", 15, 12, 32, 8, 8, 8)
	var id uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 15; s++ {
			id++
			n.Inject(&mem.Fetch{ID: id}, s, int(id)%12, 8)
		}
		n.Tick()
		for d := 0; d < 12; d++ {
			n.Pop(d)
		}
	}
	b.ReportMetric(float64(n.Stats.FlitsTransferred)/float64(b.N), "flits/cycle")
}

// BenchmarkCrossbarReply measures the reply direction with 5-flit packets
// (the 136 B load responses that congest the baseline).
func BenchmarkCrossbarReply(b *testing.B) {
	n := NewNetwork("bench-reply", 12, 15, 32, 16, 8, 8)
	var id uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 12; s++ {
			id++
			n.Inject(&mem.Fetch{ID: id, SizeBytes: 128}, s, int(id)%15, 136)
		}
		n.Tick()
		for d := 0; d < 15; d++ {
			n.Pop(d)
		}
	}
	b.ReportMetric(float64(n.Stats.PacketsDelivered)/float64(b.N), "packets/cycle")
}
