package icnt

import (
	"testing"

	"gpumembw/internal/mem"
)

// BenchmarkCrossbarSaturated measures flit throughput with all 15 cores
// sending to 12 banks (the baseline request network under full load).
// Fetches and packets are recycled through the freelists, as a simulated
// GPU would, so the loop measures switching cost rather than allocation.
func BenchmarkCrossbarSaturated(b *testing.B) {
	n := NewNetwork("bench", 15, 12, 32, 8, 8, 8)
	pool := &mem.FetchPool{}
	var id uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 15; s++ {
			id++
			f := pool.Get()
			f.ID = id
			if !n.Inject(f, s, int(id)%12, 8) {
				pool.Put(f)
			}
		}
		n.Tick()
		for d := 0; d < 12; d++ {
			if p, ok := n.Pop(d); ok {
				pool.Put(p.Fetch)
				n.Release(p)
			}
		}
	}
	b.ReportMetric(float64(n.Stats.FlitsTransferred)/float64(b.N), "flits/cycle")
}

// BenchmarkCrossbarReply measures the reply direction with 5-flit packets
// (the 136 B load responses that congest the baseline).
func BenchmarkCrossbarReply(b *testing.B) {
	n := NewNetwork("bench-reply", 12, 15, 32, 16, 8, 8)
	pool := &mem.FetchPool{}
	var id uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 12; s++ {
			id++
			f := pool.Get()
			f.ID = id
			f.SizeBytes = 128
			if !n.Inject(f, s, int(id)%15, 136) {
				pool.Put(f)
			}
		}
		n.Tick()
		for d := 0; d < 15; d++ {
			if p, ok := n.Pop(d); ok {
				pool.Put(p.Fetch)
				n.Release(p)
			}
		}
	}
	b.ReportMetric(float64(n.Stats.PacketsDelivered)/float64(b.N), "packets/cycle")
}
