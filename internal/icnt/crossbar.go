// Package icnt models the two crossbar networks of Fig. 2: a request
// network carrying core→L2 packets and a reply network carrying L2→core
// packets, both switching at flit granularity. The flit sizes are
// independent, which is what enables the paper's asymmetric crossbars
// (16+48, 16+68, 32+52 in §VII-B).
//
// The model is an input-queued wormhole crossbar: each source owns a bounded
// injection FIFO; each destination owns a bounded ejection FIFO; every cycle
// each output port accepts one flit, locking onto a packet until its tail
// flit has crossed, with round-robin arbitration among competing sources.
// Ejection-FIFO slots are reserved when a packet wins arbitration, so a full
// sink propagates backpressure into the network and from there into the
// senders' queues — the bp-ICNT and bp-L2 effects of Figs. 8 and 9.
//
// The switch tracks activity per output: headDst records which destination
// each source's head packet targets, and dstWork counts the sources
// currently targeting each output, so Tick touches only outputs with work
// and arbitration reads an int array instead of peeking every injection
// FIFO. An idle crossbar cycle costs one compare per output.
package icnt

import (
	"fmt"
	"math"
	"math/bits"

	"gpumembw/internal/mem"
)

// Packet is one network packet wrapping a memory fetch.
type Packet struct {
	Fetch *mem.Fetch
	Src   int
	Dst   int
	Flits int   // total flits at this network's flit size
	sent  int   // flits already transferred
	ready int64 // earliest cycle the sink may consume it (pipeline latency)
}

// Stats aggregates per-network statistics.
type Stats struct {
	PacketsInjected  int64
	PacketsDelivered int64
	FlitsTransferred int64
	BusyOutputCycles int64 // output-port cycles spent moving flits
	Cycles           int64
}

// Utilization is the fraction of output-port bandwidth carrying flits.
func (s *Stats) Utilization(outputs int) float64 {
	if s.Cycles == 0 || outputs == 0 {
		return 0
	}
	return float64(s.BusyOutputCycles) / float64(s.Cycles*int64(outputs))
}

// Network is one direction of the crossbar.
type Network struct {
	name      string
	flitBytes int
	latency   int64 // fixed traversal pipeline, in interconnect cycles

	in  []*mem.Queue[*Packet] // per-source injection FIFOs
	out []*mem.Queue[*Packet] // per-destination ejection FIFOs

	inFlits    []int    // flits resident in each injection FIFO
	drainStamp []uint64 // per-source count of drained flits (backpressure memo)
	outResvd   []int    // ejection slots reserved by in-transfer packets
	outOcc     []uint64 // bitset of destinations with a non-empty ejection FIFO
	lockSrc    []int    // output → source it is locked to (-1 if free)
	rr         []int    // output → round-robin arbitration pointer
	headDst    []int32  // source → destination of its head packet (-1 if empty)
	dstWork    []int32  // output → number of sources whose head targets it
	srcBusy    int      // number of sources with a head packet (headDst != -1)

	pool []*Packet // freelist of released packets

	inCap     int // injection capacity in flits
	flitShift int // log2(flitBytes) when a power of two, else -1
	now       int64
	unbounded bool

	Stats Stats
}

// NewNetwork builds a crossbar direction with the given port counts,
// flit size, per-source injection capacity (in flits), per-destination
// ejection capacity (in packets) and fixed traversal latency (in
// interconnect cycles). outCap ≤ 0 makes the ejection FIFOs unbounded.
func NewNetwork(name string, sources, dests, flitBytes, inCapFlits, outCapPackets int, latency int) *Network {
	n := &Network{
		name:       name,
		flitBytes:  flitBytes,
		latency:    int64(latency),
		in:         make([]*mem.Queue[*Packet], sources),
		out:        make([]*mem.Queue[*Packet], dests),
		inFlits:    make([]int, sources),
		drainStamp: make([]uint64, sources),
		outResvd:   make([]int, dests),
		outOcc:     make([]uint64, (dests+63)/64),
		lockSrc:    make([]int, dests),
		rr:         make([]int, dests),
		headDst:    make([]int32, sources),
		dstWork:    make([]int32, dests),
		inCap:      inCapFlits,
		flitShift:  -1,
		unbounded:  outCapPackets <= 0,
	}
	if flitBytes > 0 && flitBytes&(flitBytes-1) == 0 {
		n.flitShift = bits.TrailingZeros(uint(flitBytes))
	}
	for i := range n.in {
		n.in[i] = mem.NewQueue[*Packet](0) // flit budget enforced separately
		n.headDst[i] = -1
	}
	for i := range n.out {
		n.out[i] = mem.NewQueue[*Packet](outCapPackets)
		n.lockSrc[i] = -1
	}
	return n
}

// FlitBytes returns the network's flit size.
func (n *Network) FlitBytes() int { return n.flitBytes }

// DrainStamp returns a counter that advances whenever a flit leaves source
// src's injection FIFO. A caller whose Inject failed on backpressure can
// skip retrying until the stamp moves: with no drain the same attempt must
// fail again (only the failing source itself can add flits).
func (n *Network) DrainStamp(src int) uint64 { return n.drainStamp[src] }

// CanInject reports whether a packet of the given byte size fits in
// source src's injection FIFO. An empty FIFO always accepts one packet,
// so oversized packets cannot deadlock narrow-flit networks.
func (n *Network) CanInject(src, bytes int) bool {
	if n.inCap <= 0 || n.in[src].Empty() {
		return true
	}
	return n.inFlits[src]+n.flits(bytes) <= n.inCap
}

// flits sizes a packet in flits, shifting instead of dividing when the
// flit size is a power of two (it always is in practice, and the division
// sat on the per-attempt injection path).
func (n *Network) flits(bytes int) int {
	if n.flitShift >= 0 {
		if f := (bytes + n.flitBytes - 1) >> uint(n.flitShift); f > 1 {
			return f
		}
		return 1
	}
	return mem.Flits(bytes, n.flitBytes)
}

// Inject queues fetch for transfer from src to dst and reports whether it
// was accepted. Callers should check CanInject first; Inject returns false
// under the same conditions.
func (n *Network) Inject(f *mem.Fetch, src, dst, bytes int) bool {
	if !n.CanInject(src, bytes) {
		return false
	}
	p := n.getPacket()
	*p = Packet{Fetch: f, Src: src, Dst: dst, Flits: n.flits(bytes)}
	if n.in[src].Empty() {
		n.headDst[src] = int32(dst)
		n.dstWork[dst]++
		n.srcBusy++
	}
	n.in[src].Push(p)
	n.inFlits[src] += p.Flits
	n.Stats.PacketsInjected++
	return true
}

// Peek returns the packet waiting at destination dst, if consumable this
// cycle (its pipeline latency has elapsed).
func (n *Network) Peek(dst int) (*Packet, bool) {
	p, ok := n.out[dst].Peek()
	if !ok || p.ready > n.now {
		return nil, false
	}
	return p, true
}

// Pop consumes the packet waiting at destination dst. The returned packet
// belongs to the caller; Release recycles it once its fetch has been
// handed on.
func (n *Network) Pop(dst int) (*Packet, bool) {
	p, ok := n.Peek(dst)
	if !ok {
		return nil, false
	}
	n.out[dst].Pop()
	if n.out[dst].Empty() {
		n.outOcc[dst>>6] &^= 1 << uint(dst&63)
	}
	n.Stats.PacketsDelivered++
	return p, true
}

// OccupiedDsts returns a bitset (64 destinations per word) of the
// destinations whose ejection FIFO holds at least one packet — possibly
// not yet consumable, if its pipeline latency has not elapsed. Scanning it
// beats peeking every destination when deliveries are sparse.
func (n *Network) OccupiedDsts() []uint64 { return n.outOcc }

// Release returns a packet obtained from Pop to the network's freelist.
// Optional: unreleased packets are simply garbage collected.
func (n *Network) Release(p *Packet) {
	if p != nil {
		n.pool = append(n.pool, p)
	}
}

func (n *Network) getPacket() *Packet {
	if l := len(n.pool); l > 0 {
		p := n.pool[l-1]
		n.pool = n.pool[:l-1]
		return p
	}
	return &Packet{}
}

// Tick advances the crossbar one interconnect cycle: every output port
// with pending work moves at most one flit from its locked (or newly
// arbitrated) source.
func (n *Network) Tick() {
	n.now++
	n.Stats.Cycles++
	if n.srcBusy == 0 {
		// No source holds a head packet, so no output can have work this
		// cycle; packets parked in ejection FIFOs need no switching.
		return
	}
	for d, w := range n.dstWork {
		if w != 0 {
			n.tickOutput(d)
		}
	}
}

// SkipTicks advances the network clock by n cycles without doing any work.
// Valid only while the network is completely empty (InFlight() == 0): the
// event engine's bulk idle replay guarantees every skipped Tick would have
// been a no-op beyond the cycle counters.
func (n *Network) SkipTicks(ticks int64) {
	n.now += ticks
	n.Stats.Cycles += ticks
}

func (n *Network) tickOutput(d int) {
	src := n.lockSrc[d]
	if src == -1 {
		src = n.arbitrate(d)
		if src == -1 {
			return
		}
		// Reserve the ejection slot for the whole packet up front so the
		// tail flit can always land.
		n.lockSrc[d] = src
		n.outResvd[d]++
	}
	p, ok := n.in[src].Peek()
	if !ok || p.Dst != d {
		// Cannot happen: a locked source keeps its head packet until the
		// tail flit crosses.
		panic(fmt.Sprintf("icnt %s: output %d locked to source %d with no matching head packet", n.name, d, src))
	}
	p.sent++
	n.inFlits[src]--
	n.drainStamp[src]++
	n.Stats.FlitsTransferred++
	n.Stats.BusyOutputCycles++
	if p.sent >= p.Flits {
		n.in[src].Pop()
		n.dstWork[d]--
		if next, ok := n.in[src].Peek(); ok {
			n.headDst[src] = int32(next.Dst)
			n.dstWork[next.Dst]++
		} else {
			n.headDst[src] = -1
			n.srcBusy--
		}
		n.lockSrc[d] = -1
		n.outResvd[d]--
		p.ready = n.now + n.latency
		if !n.out[d].Push(p) {
			panic(fmt.Sprintf("icnt %s: ejection overflow at output %d despite reservation", n.name, d))
		}
		n.outOcc[d>>6] |= 1 << uint(d&63)
	}
}

// arbitrate picks the next source whose head packet targets output d,
// round-robin from the last winner. It returns -1 when none is eligible or
// the ejection FIFO has no unreserved slot.
func (n *Network) arbitrate(d int) int {
	if !n.unbounded && n.out[d].Len()+n.outResvd[d] >= n.out[d].Cap() {
		return -1
	}
	numSrc := len(n.in)
	d32 := int32(d)
	s := n.rr[d] + 1
	if s >= numSrc {
		s = 0
	}
	for i := 0; i < numSrc; i++ {
		if n.headDst[s] == d32 {
			n.rr[d] = s
			return s
		}
		if s++; s >= numSrc {
			s = 0
		}
	}
	return -1
}

// InFlight returns the number of packets currently inside the network
// (injected but not yet consumed), used by drain checks in tests.
func (n *Network) InFlight() int64 {
	return n.Stats.PacketsInjected - n.Stats.PacketsDelivered
}

// NextWake implements the event engine's sched.Wakeable contract, in the
// network's own clock domain. A crossbar holding packets may move flits
// (and records busy-output statistics) every cycle, so it reports
// ok=false while any packet is in flight; drained, it sleeps until an
// injection reschedules it.
func (n *Network) NextWake() (int64, bool) {
	if n.InFlight() != 0 {
		return 0, false
	}
	return math.MaxInt64, true
}

// PortOcc reports output-port activity for the profiler: busy counts
// outputs at least one source is targeting, contended counts outputs
// more than one source is competing for (the crossbar's port-contention
// gauge), and total is the number of output ports.
func (n *Network) PortOcc() (busy, contended, total int) {
	for _, w := range n.dstWork {
		if w > 0 {
			busy++
		}
		if w > 1 {
			contended++
		}
	}
	return busy, contended, len(n.dstWork)
}
