package icnt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpumembw/internal/mem"
)

func newNet(srcs, dsts, flit int) *Network {
	return NewNetwork("test", srcs, dsts, flit, 8, 8, 0)
}

func TestSinglePacketDelivery(t *testing.T) {
	n := newNet(2, 2, 32)
	f := &mem.Fetch{ID: 1, Type: mem.DataRead}
	if !n.Inject(f, 0, 1, 8) {
		t.Fatal("inject failed")
	}
	n.Tick() // 1 flit transfers
	p, ok := n.Pop(1)
	if !ok || p.Fetch != f {
		t.Fatalf("pop = %v, %v", p, ok)
	}
	if _, ok := n.Pop(0); ok {
		t.Fatal("packet delivered to wrong destination")
	}
}

func TestMultiFlitSerialization(t *testing.T) {
	n := newNet(1, 1, 32)
	f := &mem.Fetch{ID: 1, Type: mem.DataRead, SizeBytes: 128}
	n.Inject(f, 0, 0, 136) // 5 flits
	for i := 0; i < 4; i++ {
		n.Tick()
		if _, ok := n.Peek(0); ok {
			t.Fatalf("packet visible after %d/5 flits", i+1)
		}
	}
	n.Tick()
	if _, ok := n.Pop(0); !ok {
		t.Fatal("packet not delivered after 5 flits")
	}
	if n.Stats.FlitsTransferred != 5 {
		t.Fatalf("flits = %d, want 5", n.Stats.FlitsTransferred)
	}
}

func TestPipelineLatency(t *testing.T) {
	n := NewNetwork("lat", 1, 1, 32, 8, 8, 3)
	f := &mem.Fetch{ID: 1}
	n.Inject(f, 0, 0, 8)
	n.Tick() // flit crosses at cycle 1, ready at 4
	for i := 0; i < 2; i++ {
		if _, ok := n.Peek(0); ok {
			t.Fatal("packet visible before pipeline latency elapsed")
		}
		n.Tick()
	}
	n.Tick() // cycle 4
	if _, ok := n.Pop(0); !ok {
		t.Fatal("packet not visible after latency")
	}
}

func TestWormholeNoInterleaving(t *testing.T) {
	// Two sources send multi-flit packets to one destination; the packets
	// must arrive one after the other, taking 5+5 cycles, not interleave.
	n := newNet(2, 1, 32)
	a := &mem.Fetch{ID: 1, SizeBytes: 128}
	b := &mem.Fetch{ID: 2, SizeBytes: 128}
	n.Inject(a, 0, 0, 136)
	n.Inject(b, 1, 0, 136)
	var arrivals []uint64
	for i := 0; i < 12; i++ {
		n.Tick()
		if p, ok := n.Pop(0); ok {
			arrivals = append(arrivals, p.Fetch.ID)
		}
	}
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d packets", len(arrivals))
	}
	if n.Stats.FlitsTransferred != 10 {
		t.Fatalf("flits = %d, want 10", n.Stats.FlitsTransferred)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// Three sources continuously send 1-flit packets to one destination;
	// deliveries must rotate.
	n := NewNetwork("rr", 3, 1, 32, 8, 1, 0)
	counts := map[int]int{}
	for i := 0; i < 90; i++ {
		for s := 0; s < 3; s++ {
			n.Inject(&mem.Fetch{ID: uint64(s)}, s, 0, 8)
		}
		n.Tick()
		if p, ok := n.Pop(0); ok {
			counts[int(p.Fetch.ID)]++
		}
	}
	for s := 0; s < 3; s++ {
		if counts[s] < 20 {
			t.Fatalf("source %d starved: %v", s, counts)
		}
	}
}

func TestEjectionBackpressure(t *testing.T) {
	// Destination FIFO of 2 packets; sink never pops. After 2 deliveries
	// plus a possible reserved in-transfer slot, the network must stall
	// and injection queues fill.
	n := NewNetwork("bp", 1, 1, 32, 4, 2, 0)
	injected := 0
	for i := 0; i < 50; i++ {
		if n.Inject(&mem.Fetch{ID: uint64(i)}, 0, 0, 8) {
			injected++
		}
		n.Tick()
	}
	if injected >= 50 {
		t.Fatal("injection never backpressured")
	}
	if n.Stats.FlitsTransferred > 2 {
		t.Fatalf("flits = %d, want ≤ 2 with full ejection FIFO", n.Stats.FlitsTransferred)
	}
	// Draining the sink must restart the flow.
	n.Pop(0)
	n.Pop(0)
	moved := n.Stats.FlitsTransferred
	n.Tick()
	n.Tick()
	if n.Stats.FlitsTransferred <= moved {
		t.Fatal("network did not resume after sink drained")
	}
}

func TestOversizedPacketAcceptedWhenEmpty(t *testing.T) {
	// 16 B flits, 8-flit injection buffer: a 136 B packet is 9 flits.
	n := NewNetwork("tiny", 1, 1, 16, 8, 8, 0)
	f := &mem.Fetch{ID: 1, SizeBytes: 128}
	if !n.Inject(f, 0, 0, 136) {
		t.Fatal("oversized packet rejected by empty FIFO")
	}
	// A second packet must wait.
	if n.Inject(&mem.Fetch{ID: 2}, 0, 0, 8) {
		t.Fatal("second packet accepted over budget")
	}
	for i := 0; i < 9; i++ {
		n.Tick()
	}
	if _, ok := n.Pop(0); !ok {
		t.Fatal("oversized packet not delivered after 9 flit cycles")
	}
}

func TestAsymmetricFlitSizesChangeCycleCount(t *testing.T) {
	cyclesToDeliver := func(flit int) int {
		n := NewNetwork("x", 1, 1, flit, 64, 8, 0)
		n.Inject(&mem.Fetch{ID: 1, SizeBytes: 128}, 0, 0, 136)
		for i := 1; ; i++ {
			n.Tick()
			if _, ok := n.Pop(0); ok {
				return i
			}
			if i > 100 {
				t.Fatal("never delivered")
			}
		}
	}
	if got := cyclesToDeliver(32); got != 5 {
		t.Fatalf("32 B flits: %d cycles, want 5", got)
	}
	if got := cyclesToDeliver(48); got != 3 {
		t.Fatalf("48 B flits: %d cycles, want 3", got)
	}
	if got := cyclesToDeliver(68); got != 2 {
		t.Fatalf("68 B flits: %d cycles, want 2", got)
	}
}

// TestConservation drives random traffic through a 15×6 crossbar and checks
// that every packet is delivered exactly once, to the right destination, in
// per-source-destination order.
func TestConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := NewNetwork("cons", 15, 6, 32, 8, 8, 2)
		type key struct{ src, dst int }
		sent := map[key][]uint64{}
		recv := map[key][]uint64{}
		var id uint64
		for cycle := 0; cycle < 400; cycle++ {
			for s := 0; s < 15; s++ {
				if rng.Intn(3) == 0 {
					d := rng.Intn(6)
					bytes := 8
					if rng.Intn(4) == 0 {
						bytes = 136
					}
					ftch := &mem.Fetch{ID: id, CoreID: s, PartitionID: d}
					if n.Inject(ftch, s, d, bytes) {
						sent[key{s, d}] = append(sent[key{s, d}], id)
					}
					id++
				}
			}
			n.Tick()
			for d := 0; d < 6; d++ {
				if p, ok := n.Pop(d); ok {
					if p.Dst != d {
						return false
					}
					k := key{p.Src, d}
					recv[k] = append(recv[k], p.Fetch.ID)
				}
			}
		}
		// Drain.
		for cycle := 0; cycle < 2000 && n.InFlight() > 0; cycle++ {
			n.Tick()
			for d := 0; d < 6; d++ {
				if p, ok := n.Pop(d); ok {
					recv[key{p.Src, d}] = append(recv[key{p.Src, d}], p.Fetch.ID)
				}
			}
		}
		if n.InFlight() != 0 {
			return false
		}
		for k, ids := range sent {
			got := recv[k]
			if len(got) != len(ids) {
				return false
			}
			for i := range ids {
				if got[i] != ids[i] {
					return false // order violated
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationStat(t *testing.T) {
	n := newNet(1, 1, 32)
	n.Inject(&mem.Fetch{ID: 1, SizeBytes: 128}, 0, 0, 136)
	for i := 0; i < 10; i++ {
		n.Tick()
	}
	u := n.Stats.Utilization(1)
	if u != 0.5 { // 5 busy cycles out of 10
		t.Fatalf("utilization = %g, want 0.5", u)
	}
}
