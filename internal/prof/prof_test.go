package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStopIsIdempotent(t *testing.T) {
	memPath := filepath.Join(t.TempDir(), "mem.out")
	f := &Flags{memPath: memPath}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	f.Stop()
	if _, err := os.Stat(memPath); err != nil {
		t.Fatalf("first Stop did not write the heap profile: %v", err)
	}
	// A second Stop — the signal handler racing the deferred call — must
	// not rewrite the profile.
	if err := os.Remove(memPath); err != nil {
		t.Fatal(err)
	}
	f.Stop()
	if _, err := os.Stat(memPath); !os.IsNotExist(err) {
		t.Fatal("second Stop rewrote the heap profile")
	}
}

func TestStartWithoutPathsIsNoop(t *testing.T) {
	var f Flags
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	f.Stop()
}
