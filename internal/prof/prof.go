// Package prof is the profiling harness shared by the command-line tools:
// every binary accepts -cpuprofile and -memprofile flags, so a performance
// regression anywhere in the cycle engine can be diagnosed with `go tool
// pprof` against the exact workload that exposed it.
//
// These flags cover one-shot runs that exit. For the long-lived daemon,
// prefer gpusimd's -debug-addr, which serves live net/http/pprof
// endpoints (CPU, heap, goroutine, block) on a separate localhost
// listener — no restart needed and nothing written to disk.
package prof

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
)

// Flags holds the destinations selected on the command line.
type Flags struct {
	cpuPath string
	memPath string

	mu      sync.Mutex // a signal-handler Stop can race the deferred one
	stopped bool
	cpuFile *os.File
}

// AddFlags registers -cpuprofile and -memprofile on the default flag set.
func AddFlags() *Flags {
	var f Flags
	flag.StringVar(&f.cpuPath, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.memPath, "memprofile", "", "write an allocation profile to this file on exit")
	return &f
}

// Start begins CPU profiling if requested. Call after flag.Parse.
func (f *Flags) Start() error {
	if f.cpuPath == "" {
		return nil
	}
	file, err := os.Create(f.cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return err
	}
	f.cpuFile = file
	return nil
}

// ExitOnSignal installs a SIGINT/SIGTERM handler that runs cleanup (if
// non-nil), stops the profiles, and exits with the conventional 128+signal
// status. Without it, an interrupted run silently loses its -cpuprofile/
// -memprofile output: deferred Stop calls never run when the process dies
// on a signal. Long-lived commands pass a cleanup that drains in-flight
// work (gpusimd's graceful shutdown); one-shot commands pass nil.
// The returned function uninstalls the handler.
func (f *Flags) ExitOnSignal(cleanup func()) (release func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		signal.Stop(ch)
		if cleanup != nil {
			cleanup()
		}
		f.Stop()
		code := 130 // 128 + SIGINT
		if sig == syscall.SIGTERM {
			code = 143
		}
		os.Exit(code)
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
	}
}

// Stop finishes the CPU profile and writes the heap profile. Call once the
// workload is done (defer-friendly: errors are reported on stderr because
// deferred calls run after the exit status is decided). Stop is idempotent
// and safe to call from a signal handler racing a deferred call.
func (f *Flags) Stop() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stopped {
		return
	}
	f.stopped = true
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		f.cpuFile.Close()
		f.cpuFile = nil
	}
	if f.memPath == "" {
		return
	}
	file, err := os.Create(f.memPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
		return
	}
	defer file.Close()
	runtime.GC() // materialize the final live set
	if err := pprof.WriteHeapProfile(file); err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
	}
}
