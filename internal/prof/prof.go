// Package prof is the profiling harness shared by the command-line tools:
// every binary accepts -cpuprofile and -memprofile flags, so a performance
// regression anywhere in the cycle engine can be diagnosed with `go tool
// pprof` against the exact workload that exposed it.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the destinations selected on the command line.
type Flags struct {
	cpuPath string
	memPath string
	cpuFile *os.File
}

// AddFlags registers -cpuprofile and -memprofile on the default flag set.
func AddFlags() *Flags {
	var f Flags
	flag.StringVar(&f.cpuPath, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.memPath, "memprofile", "", "write an allocation profile to this file on exit")
	return &f
}

// Start begins CPU profiling if requested. Call after flag.Parse.
func (f *Flags) Start() error {
	if f.cpuPath == "" {
		return nil
	}
	file, err := os.Create(f.cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return err
	}
	f.cpuFile = file
	return nil
}

// Stop finishes the CPU profile and writes the heap profile. Call once the
// workload is done (defer-friendly: errors are reported on stderr because
// deferred calls run after the exit status is decided).
func (f *Flags) Stop() {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		f.cpuFile.Close()
		f.cpuFile = nil
	}
	if f.memPath == "" {
		return
	}
	file, err := os.Create(f.memPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
		return
	}
	defer file.Close()
	runtime.GC() // materialize the final live set
	if err := pprof.WriteHeapProfile(file); err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
	}
}
