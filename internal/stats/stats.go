// Package stats provides the measurement primitives behind every figure of
// the paper: bucketed queue-occupancy histograms (Figs. 4–5), latency
// samplers (the AML and L2-AHL series of Fig. 1), and stall-cycle breakdown
// vectors (Figs. 7–9).
package stats

import "fmt"

// OccupancyBuckets is the number of occupancy bands in the paper's queue
// histograms: (0–25%), [25–50%), [50–75%), [75–100%), and exactly 100%.
const OccupancyBuckets = 5

// BucketLabels are the band labels used by Figs. 4 and 5.
var BucketLabels = [OccupancyBuckets]string{"(0-25%)", "[25-50%)", "[50-75%)", "[75-100%)", "100%"}

// OccupancyHist accumulates a queue-occupancy histogram over the queue's
// "usage lifetime" — the cycles during which it holds at least one entry,
// exactly as defined in §IV of the paper.
type OccupancyHist struct {
	Buckets  [OccupancyBuckets]int64
	Lifetime int64 // cycles with occupancy ≥ 1

	// lut maps occupancy → bucket for the capacity this histogram observes
	// (constant per call site), replacing the per-cycle division on the
	// hot path with a table load.
	lut []uint8
}

// Observe records one cycle with the given occupancy out of capacity.
// Cycles with zero occupancy are outside the usage lifetime and ignored,
// as are unbounded queues (capacity ≤ 0).
func (h *OccupancyHist) Observe(occupancy, capacity int) {
	if occupancy <= 0 || capacity <= 0 {
		return
	}
	h.Lifetime++
	if occupancy >= capacity {
		h.Buckets[4]++
		return
	}
	if len(h.lut) != capacity {
		h.lut = make([]uint8, capacity)
		for o := 1; o < capacity; o++ {
			b := 4 * o / capacity
			if b > 3 {
				b = 3
			}
			h.lut[o] = uint8(b)
		}
	}
	h.Buckets[h.lut[occupancy]]++
}

// Fractions returns each bucket as a fraction of the usage lifetime.
func (h *OccupancyHist) Fractions() [OccupancyBuckets]float64 {
	var out [OccupancyBuckets]float64
	if h.Lifetime == 0 {
		return out
	}
	for i, b := range h.Buckets {
		out[i] = float64(b) / float64(h.Lifetime)
	}
	return out
}

// FullFraction returns the fraction of the usage lifetime the queue was
// completely full (the black bars of Figs. 4–5).
func (h *OccupancyHist) FullFraction() float64 {
	if h.Lifetime == 0 {
		return 0
	}
	return float64(h.Buckets[4]) / float64(h.Lifetime)
}

// Merge adds other into h.
func (h *OccupancyHist) Merge(other *OccupancyHist) {
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.Lifetime += other.Lifetime
}

// LatencySampler accumulates a latency distribution summary.
type LatencySampler struct {
	Count int64
	Sum   int64
	Max   int64
}

// Add records one latency sample.
func (s *LatencySampler) Add(lat int64) {
	if lat < 0 {
		return
	}
	s.Count++
	s.Sum += lat
	if lat > s.Max {
		s.Max = lat
	}
}

// Mean returns the average sample, or 0 if none were recorded.
func (s *LatencySampler) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Merge adds other into s.
func (s *LatencySampler) Merge(other *LatencySampler) {
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
}

// Ratio returns num/den, or 0 when den is 0. It keeps metric code free of
// divide-by-zero guards.
func Ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Breakdown is a labeled stall-cycle distribution (Figs. 7, 8 and 9).
type Breakdown struct {
	Labels []string
	Counts []int64
}

// NewBreakdown creates a Breakdown with the given category labels.
func NewBreakdown(labels ...string) *Breakdown {
	return &Breakdown{Labels: labels, Counts: make([]int64, len(labels))}
}

// Add increments category i by n.
func (b *Breakdown) Add(i int, n int64) {
	b.Counts[i] += n
}

// Total returns the sum over all categories.
func (b *Breakdown) Total() int64 {
	var t int64
	for _, c := range b.Counts {
		t += c
	}
	return t
}

// Fractions returns each category as a fraction of the total.
func (b *Breakdown) Fractions() []float64 {
	out := make([]float64, len(b.Counts))
	t := b.Total()
	if t == 0 {
		return out
	}
	for i, c := range b.Counts {
		out[i] = float64(c) / float64(t)
	}
	return out
}

// Merge adds other into b. The breakdowns must share the same labels.
func (b *Breakdown) Merge(other *Breakdown) error {
	if len(b.Counts) != len(other.Counts) {
		return fmt.Errorf("stats: merging breakdowns of different arity (%d vs %d)", len(b.Counts), len(other.Counts))
	}
	for i := range b.Counts {
		b.Counts[i] += other.Counts[i]
	}
	return nil
}
