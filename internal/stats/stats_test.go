package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOccupancyBuckets(t *testing.T) {
	var h OccupancyHist
	// Capacity 8: occupancy 1 → (0-25%); 2,3 → [25-50%) (25% inclusive per
	// the paper's bracket notation); 4,5 → [50-75%); 6,7 → [75-100%);
	// 8 → 100%.
	for occ, want := range map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3, 7: 3, 8: 4} {
		before := h.Buckets[want]
		h.Observe(occ, 8)
		if h.Buckets[want] != before+1 {
			t.Errorf("occupancy %d/8 landed in wrong bucket (want bucket %d): %v", occ, want, h.Buckets)
		}
	}
	if h.Lifetime != 8 {
		t.Errorf("lifetime = %d, want 8", h.Lifetime)
	}
}

func TestOccupancyIgnoresEmptyAndUnbounded(t *testing.T) {
	var h OccupancyHist
	h.Observe(0, 8)  // empty: outside usage lifetime
	h.Observe(5, 0)  // unbounded queue
	h.Observe(-1, 8) // defensive
	if h.Lifetime != 0 {
		t.Errorf("lifetime = %d, want 0", h.Lifetime)
	}
}

func TestOccupancyFullFraction(t *testing.T) {
	var h OccupancyHist
	for i := 0; i < 46; i++ {
		h.Observe(8, 8)
	}
	for i := 0; i < 54; i++ {
		h.Observe(4, 8)
	}
	if got := h.FullFraction(); got != 0.46 {
		t.Errorf("full fraction = %g, want 0.46", got)
	}
	fr := h.Fractions()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum = %g, want 1", sum)
	}
}

func TestOccupancyInvariants(t *testing.T) {
	f := func(samples []uint16, cap8 uint8) bool {
		capacity := int(cap8%31) + 1
		var h OccupancyHist
		var expectLifetime int64
		for _, s := range samples {
			occ := int(s % uint16(capacity+2)) // sometimes over capacity
			h.Observe(occ, capacity)
			if occ > 0 {
				expectLifetime++
			}
		}
		var total int64
		for _, b := range h.Buckets {
			if b < 0 {
				return false
			}
			total += b
		}
		return total == h.Lifetime && h.Lifetime == expectLifetime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestOccupancyMerge(t *testing.T) {
	var a, b OccupancyHist
	a.Observe(8, 8)
	b.Observe(1, 8)
	b.Observe(8, 8)
	a.Merge(&b)
	if a.Lifetime != 3 || a.Buckets[4] != 2 || a.Buckets[0] != 1 {
		t.Errorf("merge wrong: %+v", a)
	}
}

func TestLatencySampler(t *testing.T) {
	var s LatencySampler
	s.Add(100)
	s.Add(200)
	s.Add(300)
	if s.Mean() != 200 {
		t.Errorf("mean = %g, want 200", s.Mean())
	}
	if s.Max != 300 {
		t.Errorf("max = %d, want 300", s.Max)
	}
	s.Add(-5) // ignored
	if s.Count != 3 {
		t.Errorf("negative sample must be ignored, count = %d", s.Count)
	}
	var empty LatencySampler
	if empty.Mean() != 0 {
		t.Error("empty sampler mean must be 0")
	}
	var other LatencySampler
	other.Add(1000)
	s.Merge(&other)
	if s.Count != 4 || s.Max != 1000 {
		t.Errorf("merge wrong: %+v", s)
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown("data-MEM", "data-ALU", "str-MEM", "str-ALU", "fetch")
	b.Add(2, 71)
	b.Add(0, 15)
	b.Add(4, 8)
	b.Add(1, 5)
	b.Add(3, 1)
	if b.Total() != 100 {
		t.Errorf("total = %d", b.Total())
	}
	fr := b.Fractions()
	if fr[2] != 0.71 {
		t.Errorf("str-MEM fraction = %g", fr[2])
	}
	other := NewBreakdown("a", "b", "c", "d", "e")
	other.Add(2, 29)
	if err := b.Merge(other); err != nil {
		t.Fatal(err)
	}
	if b.Counts[2] != 100 {
		t.Errorf("merged str-MEM = %d", b.Counts[2])
	}
	if err := b.Merge(NewBreakdown("x")); err == nil {
		t.Error("arity mismatch must error")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("ratio with zero denominator must be 0")
	}
	if Ratio(1, 2) != 0.5 {
		t.Error("ratio wrong")
	}
}
