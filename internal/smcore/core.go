package smcore

import (
	"fmt"
	"math"
	"math/bits"

	"gpumembw/internal/cache"
	"gpumembw/internal/config"
	"gpumembw/internal/mem"
	"gpumembw/internal/stats"
)

// Issue-stall categories, in the order of Fig. 7's legend.
const (
	StallDataMem = iota // data hazard on a pending load
	StallDataALU        // data hazard on a pending arithmetic op
	StallStrMem         // structural hazard in the memory pipeline
	StallStrALU         // structural hazard in the arithmetic pipeline
	StallFetch          // instruction buffers empty behind L1I misses
	NumIssueStalls
)

// IssueStallLabels are the Fig. 7 legend names.
var IssueStallLabels = []string{"data-MEM", "data-ALU", "str-MEM", "str-ALU", "fetch"}

// L1 stall categories, in the order of Fig. 9's legend.
const (
	L1StallCache = iota // no replaceable line (all ways reserved)
	L1StallMSHR         // MSHR entries or merge capacity exhausted
	L1StallBpL2         // miss queue full: back pressure from L2
	NumL1Stalls
)

// L1StallLabels are the Fig. 9 legend names.
var L1StallLabels = []string{"cache", "mshr", "bp-L2"}

// heavyALUInterval and latencies of the two arithmetic classes.
const (
	heavyALUInterval = 8
	heavyALULatency  = 16
)

// ringSize bounds the completion ring; it must exceed every schedulable
// in-core latency, including the largest Fig. 3 fixed miss latency (800),
// and stay a power of two so the slot index is a mask, not a modulo.
const ringSize = 2048

// Compile-time check that ringSize is a power of two.
var _ = [1]struct{}{}[ringSize&(ringSize-1)]

const ibufCap = 2

type warp struct {
	id      int
	fetched int64 // instructions brought into the i-buffer so far
	issued  int64 // instructions issued so far
	total   int64

	// bodyIdx and iter track the issue position incrementally
	// (bodyIdx == issued % len(body), iter == issued / len(body)).
	bodyIdx  int
	iter     int
	fetchIdx int // fetch position: fetched % len(body)

	ibuf    [ibufCap]Inst
	ibufLen int

	pendingLoad uint64 // scoreboard: registers awaiting a load
	pendingALU  uint64 // scoreboard: registers awaiting an ALU op
	loadCount   [NumRegs]uint8

	// addrCache memoizes the coalesced addresses of the instruction at
	// issue position addrCacheFor, so a memory instruction blocked for
	// hundreds of cycles does not regenerate them every scheduler scan.
	addrCache    []uint64
	addrCacheFor int64
}

func (w *warp) aliveForIssue() bool { return w.issued < w.total }

// tx is one coalesced memory transaction in the LSU pipeline.
type tx struct {
	warpID int32
	reg    int8 // destination register; -1 for stores
	store  bool
	line   uint64
}

const (
	evtRegClear = iota
	evtICacheFill
)

// ringSlotCap is the preallocated per-slot event capacity: one slab backs
// every slot of the completion ring, so steady-state scheduling allocates
// only when a single cycle completes more than ringSlotCap events (the
// slot then grows individually and stays grown).
const ringSlotCap = 4

type ringEvt struct {
	kind   uint8
	isLoad bool
	reg    int8
	warpID int32
	line   uint64
}

// NewFetchFn mints a routed memory fetch; the GPU provides it so the core
// stays decoupled from the interconnect and address mapping.
type NewFetchFn func(addr uint64, typ mem.AccessType, sizeBytes, coreID, warpID int, issueCycle int64) *mem.Fetch

// InjectStampFn reports the request crossbar's drain stamp for this core's
// injection port (icnt.Network.DrainStamp): it moves only when a flit
// leaves the port's FIFO, so an unchanged stamp proves a failed injection
// would fail again.
type InjectStampFn func() uint64

// InjectFn pushes a request packet into the request crossbar, returning
// false when the injection port is full.
type InjectFn func(f *mem.Fetch) bool

// IdealLatencyFn returns the P∞ latency of a miss on addr (120 core cycles
// for a functional-L2 hit, 220 for a miss).
type IdealLatencyFn func(addr uint64) int64

// CoreStats aggregates everything the paper measures at the core.
type CoreStats struct {
	Cycles int64 // active cycles, until the core drained
	Issued int64

	IssueStalls [NumIssueStalls]int64
	L1Stalls    [NumL1Stalls]int64

	L1Accesses int64
	L1Hits     int64
	L1Misses   int64
	L1Merged   int64

	IFetches   int64
	IMisses    int64
	StoresSent int64

	AML   stats.LatencySampler // round-trip latency of every L1 miss
	L2AHL stats.LatencySampler // round trip of misses served by the L2

	MemQOcc stats.OccupancyHist
}

// IssueStallCycles returns the total stalled issue cycles.
func (s *CoreStats) IssueStallCycles() int64 {
	var t int64
	for _, v := range s.IssueStalls {
		t += v
	}
	return t
}

// L1MissRate returns misses (including merged) over L1 accesses.
func (s *CoreStats) L1MissRate() float64 {
	return stats.Ratio(s.L1Misses+s.L1Merged, s.L1Accesses)
}

// Core is one simulated SM.
type Core struct {
	ID  int
	cfg *config.Config
	wl  *Workload

	warps   []warp
	greedy  int32
	fetchRR int

	icache *cache.TagArray
	// iPending tracks instruction-cache lines with a fill in flight as a
	// bitset over the program's code lines (the code segment is a small
	// contiguous range, so index-based bits replace the former
	// map[uint64]bool and its per-access hashing).
	iPending      []uint64
	iPendingCount int
	codeLineBase  uint64 // line address of the first code line
	iLineShift    uint   // log2 of the L1I line size
	iMissQ        *mem.Queue[*mem.Fetch]

	l1    *cache.TagArray
	mshr  *cache.MSHR[tx]
	missQ *mem.Queue[*mem.Fetch]
	memQ  *mem.Queue[tx]

	respFIFO *mem.Queue[*mem.Fetch]

	ring           [ringSize][]ringEvt
	now            int64
	heavyBusyUntil int64
	injectToggle   bool // alternate data/instruction miss injection

	addrBuf []uint64

	// regMasks[i] is the scoreboard mask of body instruction i,
	// precomputed so the scheduler scan does no per-cycle bit assembly.
	regMasks []uint64
	// fetchable counts warps with i-buffer space and instructions left,
	// and fetchMask holds the same predicate as a bitset, so fetchTick
	// jumps straight to the next eligible warp instead of scanning.
	fetchable int
	fetchMask []uint64
	// fetchParked memoizes "every eligible warp's next code line has a
	// fill in flight": in that state fetchTick only rotates the round-
	// robin pointer, which SkipTo can replay in bulk. The memo is
	// invalidated whenever the eligibility mask, a fetch position, or the
	// pending-fill set changes.
	fetchParked      bool
	fetchParkedValid bool
	// issueDirty marks that core state changed since the last scheduler
	// scan; while clear, a stalled scan would classify identically, so
	// issueTick replays lastStall instead of rescanning every warp.
	issueDirty bool
	lastStall  int // cached classification; -1 when no stall was recorded

	// aliveMask tracks warps with instructions left to issue; blockedMem
	// and blockedALU mark warps whose head instruction hit a data hazard.
	// A blocked warp's scoreboard and head instruction cannot change until
	// a completion for that warp lands (applyCompletions clears its bits),
	// so the scheduler scan skips it outright — with 48 warps mostly
	// waiting on loads, the scan touches a handful of warps instead of all
	// of them. The counts feed the stall classification for the skipped
	// warps.
	//
	// blockedStr and blockedHeavy park structural hazards the same way:
	// a warp that found too little memory-pipeline space stays parked until
	// a slot frees (the memQ pop in Tick unparks them all), and a warp that
	// found the heavy pipe reserved stays parked until the reservation
	// expires (checked at the top of each scan). Both conditions are frozen
	// in between, so re-scanning those warps would fail identically.
	aliveMask     []uint64
	aliveCount    int
	blockedMem    []uint64
	blockedALU    []uint64
	blockedStr    []uint64
	blockedHeavy  []uint64
	nBlockedMem   int
	nBlockedALU   int
	nBlockedStr   int
	nBlockedHeavy int

	// lsuParked memoizes a blocked memory-pipeline head: the head's L1
	// lookup, MSHR probe and miss-queue check depend only on L1/MSHR/miss-
	// queue state, none of which can change while the head stays blocked
	// except through a reply (consumeResponse) or a miss-queue drain — both
	// of which clear the memo. While parked, lsuTick replays the recorded
	// stall class without redoing the lookups.
	lsuParked      bool
	lsuParkedStall int

	// evtCount and nextEvtHint summarize the completion ring for NextWake:
	// how many events are scheduled and a lower bound on the next one's
	// cycle (exact while it lies in the future).
	evtCount    int
	nextEvtHint int64

	newFetch NewFetchFn
	inject   InjectFn
	idealLat IdealLatencyFn

	// injectFailF memoizes a head packet whose injection bounced off
	// crossbar backpressure, with the port's drain stamp at the time; the
	// retry is skipped until the stamp moves. The pointer cannot go stale:
	// the packet stays at its queue's head until the injection succeeds,
	// which clears the memo. The queue lengths at the bounce let the next
	// attempt skip even the head peeks: equal lengths (pops happen only on
	// success, which clears the memo) mean the same queue choice and the
	// same head.
	injectStamp        InjectStampFn
	injectFailF        *mem.Fetch
	injectFailStamp    uint64
	injectFailMissLen  int
	injectFailIMissLen int
	pool               *mem.FetchPool

	done bool

	Stats CoreStats
}

// NewCore builds SM id running the given workload. For ModeNormal the GPU
// must wire Inject; for ModeInfiniteBW it must wire IdealLatency.
func NewCore(id int, cfg *config.Config, wl *Workload, newFetch NewFetchFn) *Core {
	nWarps := cfg.Core.WarpsPerCore
	if wl.WarpsPerCore > 0 && wl.WarpsPerCore < nWarps {
		nWarps = wl.WarpsPerCore
	}
	c := &Core{
		ID:       id,
		cfg:      cfg,
		wl:       wl,
		warps:    make([]warp, nWarps),
		icache:   cache.NewTagArray(cfg.L1.ICacheSizeBytes/cfg.L1.LineBytes/cfg.L1.ICacheWays, cfg.L1.ICacheWays, cfg.L1.LineBytes, 1),
		iMissQ:   mem.NewQueue[*mem.Fetch](cfg.L1.MissQueueEntries),
		l1:       cache.NewTagArray(cfg.L1Sets(), cfg.L1.Ways, cfg.L1.LineBytes, 1),
		mshr:     cache.NewMSHR[tx](cfg.L1.MSHREntries, cfg.L1.MSHRMaxMerge),
		missQ:    mem.NewQueue[*mem.Fetch](cfg.L1.MissQueueEntries),
		memQ:     mem.NewQueue[tx](cfg.Core.MemPipelineWidth),
		respFIFO: mem.NewQueue[*mem.Fetch](cfg.L1.ResponseFIFO),
		newFetch: newFetch,
	}
	slab := make([]ringEvt, ringSize*ringSlotCap)
	for i := range c.ring {
		c.ring[i] = slab[i*ringSlotCap : i*ringSlotCap : (i+1)*ringSlotCap]
	}
	c.iLineShift = uint(bits.TrailingZeros64(uint64(cfg.L1.LineBytes)))
	c.codeLineBase = c.icache.LineAddr(wl.Program.PCAddr(0)) >> c.iLineShift
	lastLine := c.icache.LineAddr(wl.Program.PCAddr(len(wl.Program.Body)-1)) >> c.iLineShift
	c.iPending = make([]uint64, (lastLine-c.codeLineBase)/64+1)
	total := wl.Program.TotalInsts()
	for i := range c.warps {
		c.warps[i] = warp{id: i, total: total, addrCacheFor: -1}
	}
	c.fetchable = len(c.warps)
	c.fetchMask = make([]uint64, (nWarps+63)/64)
	for i := 0; i < nWarps; i++ {
		c.fetchMask[i>>6] |= 1 << uint(i&63)
	}
	c.aliveMask = make([]uint64, (nWarps+63)/64)
	if total > 0 {
		copy(c.aliveMask, c.fetchMask)
		c.aliveCount = nWarps
	}
	c.blockedMem = make([]uint64, (nWarps+63)/64)
	c.blockedALU = make([]uint64, (nWarps+63)/64)
	c.blockedStr = make([]uint64, (nWarps+63)/64)
	c.blockedHeavy = make([]uint64, (nWarps+63)/64)
	c.issueDirty = true
	c.lastStall = -1
	c.regMasks = make([]uint64, len(wl.Program.Body))
	for i, in := range wl.Program.Body {
		var mask uint64
		for _, r := range [3]int8{in.Dest, in.Src1, in.Src2} {
			if r >= 0 {
				mask |= uint64(1) << uint(r)
			}
		}
		c.regMasks[i] = mask
	}
	if cfg.Mode != config.ModeNormal {
		// Ideal modes remove all structural limits in the memory system.
		c.mshr = cache.NewMSHR[tx](0, 0)
		c.missQ = mem.NewQueue[*mem.Fetch](0)
		c.iMissQ = mem.NewQueue[*mem.Fetch](0)
	}
	return c
}

// SetInject wires the request-network injection callback (ModeNormal).
func (c *Core) SetInject(fn InjectFn) { c.inject = fn }

// SetInjectStamp wires the request-network drain-stamp callback that lets
// the core skip provably futile re-injections under backpressure.
func (c *Core) SetInjectStamp(fn InjectStampFn) { c.injectStamp = fn }

// SetIdealLatency wires the P∞ latency oracle (ModeInfiniteBW).
func (c *Core) SetIdealLatency(fn IdealLatencyFn) { c.idealLat = fn }

// SetFetchPool wires the freelist that receives consumed reply fetches.
// A nil pool is valid.
func (c *Core) SetFetchPool(p *mem.FetchPool) { c.pool = p }

// iPendingIdx maps a code-line address to its bit index.
func (c *Core) iPendingIdx(line uint64) uint64 {
	return (line >> c.iLineShift) - c.codeLineBase
}

func (c *Core) iPendingTest(line uint64) bool {
	i := c.iPendingIdx(line)
	return c.iPending[i>>6]&(1<<(i&63)) != 0
}

func (c *Core) iPendingSet(line uint64) {
	i := c.iPendingIdx(line)
	c.iPending[i>>6] |= 1 << (i & 63)
	c.iPendingCount++
	c.fetchParkedValid = false
}

func (c *Core) iPendingClear(line uint64) {
	i := c.iPendingIdx(line)
	if c.iPending[i>>6]&(1<<(i&63)) != 0 {
		c.iPending[i>>6] &^= 1 << (i & 63)
		c.iPendingCount--
	}
	c.fetchParkedValid = false // a landed fill may unblock the fetch stage
}

// Done reports whether every warp has retired all instructions and every
// outstanding memory operation has drained.
func (c *Core) Done() bool { return c.done }

// Now returns the core-local cycle counter (in lockstep with the GPU's).
func (c *Core) Now() int64 { return c.now }

// CanAcceptResponse reports whether the reply-ejection FIFO has room.
func (c *Core) CanAcceptResponse() bool { return !c.respFIFO.Full() }

// AcceptResponse hands the core a reply packet from the reply crossbar.
func (c *Core) AcceptResponse(f *mem.Fetch) bool {
	return c.respFIFO.Push(f)
}

// Tick advances the core one cycle.
func (c *Core) Tick() {
	if c.done {
		return
	}
	c.now++
	c.Stats.Cycles++
	c.applyCompletions()
	c.consumeResponse()
	memQBefore := c.memQ.Len()
	c.lsuTick()
	if c.memQ.Len() != memQBefore {
		c.issueDirty = true // LSU freed memory-pipeline slots
		if c.nBlockedStr > 0 {
			for wi := range c.blockedStr {
				c.blockedStr[wi] = 0
			}
			c.nBlockedStr = 0
		}
	}
	c.issueTick()
	c.fetchTick()
	c.drainMissQueues()
	c.checkDone()
}

func (c *Core) schedule(delta int64, e ringEvt) {
	if delta < 1 {
		delta = 1
	}
	if delta >= ringSize {
		panic(fmt.Sprintf("smcore: completion delta %d exceeds ring size", delta))
	}
	slot := (c.now + delta) & (ringSize - 1)
	c.ring[slot] = append(c.ring[slot], e)
	if abs := c.now + delta; c.evtCount == 0 || abs < c.nextEvtHint {
		c.nextEvtHint = abs
	}
	c.evtCount++
}

func (c *Core) applyCompletions() {
	if c.evtCount == 0 || c.nextEvtHint > c.now {
		// The hint tracks the exact earliest pending event (schedule
		// min-updates it, the post-drain rescan below restores it), so
		// cycles before it cannot fire anything.
		return
	}
	slot := c.now & (ringSize - 1)
	evts := c.ring[slot]
	if len(evts) == 0 {
		return
	}
	c.issueDirty = true
	c.evtCount -= len(evts)
	for _, e := range evts {
		switch e.kind {
		case evtRegClear:
			w := &c.warps[e.warpID]
			bit := uint64(1) << uint(e.reg)
			if e.isLoad {
				if w.loadCount[e.reg] > 0 {
					w.loadCount[e.reg]--
				}
				if w.loadCount[e.reg] == 0 {
					w.pendingLoad &^= bit
				}
			} else {
				w.pendingALU &^= bit
			}
			// The warp's scoreboard changed: put it back in the scan. The
			// next scan re-blocks it if a hazard remains.
			word, wbit := e.warpID>>6, uint64(1)<<uint(e.warpID&63)
			if c.blockedMem[word]&wbit != 0 {
				c.blockedMem[word] &^= wbit
				c.nBlockedMem--
			}
			if c.blockedALU[word]&wbit != 0 {
				c.blockedALU[word] &^= wbit
				c.nBlockedALU--
			}
		case evtICacheFill:
			c.icache.Fill(e.line)
			c.iPendingClear(e.line)
		}
	}
	c.ring[slot] = evts[:0]
	if c.evtCount > 0 {
		// Restore the exact hint: the rescan steps to the next non-empty
		// slot, so the cycles in between return on the hint compare alone.
		// The total rescan work over a run is bounded by the cycles spent
		// with events pending — no worse than checking the slot each cycle.
		for d := int64(1); d < ringSize; d++ {
			if len(c.ring[(c.now+d)&(ringSize-1)]) > 0 {
				c.nextEvtHint = c.now + d
				break
			}
		}
	}
}

// consumeResponse retires one reply packet per cycle: L1I fills and L1D
// fills with MSHR release and scoreboard wake-up. The reply fetch dies
// here and returns to the pool.
func (c *Core) consumeResponse() {
	if c.respFIFO.Empty() {
		return
	}
	f, _ := c.respFIFO.Pop()
	c.lsuParked = false // a fill or MSHR release may unblock the LSU head
	f.ReplyCycle = c.now
	lat := c.now - f.IssueCycle
	switch f.Type {
	case mem.InstRead:
		c.icache.Fill(f.Addr)
		c.iPendingClear(f.Addr)
	case mem.DataRead:
		c.Stats.AML.Add(lat)
		if f.L2Hit {
			c.Stats.L2AHL.Add(lat)
		}
		c.l1.Fill(f.Addr)
		for _, t := range c.mshr.Release(f.Addr) {
			c.schedule(int64(c.cfg.L1.HitLatency), ringEvt{
				kind: evtRegClear, isLoad: true, reg: t.reg, warpID: t.warpID,
			})
		}
	default:
		panic("smcore: unexpected reply type " + f.Type.String())
	}
	c.pool.Put(f)
}

// lsuTick processes the head of the memory pipeline against the L1D,
// attributing blocked cycles per Fig. 9.
func (c *Core) lsuTick() {
	occ := c.memQ.Len()
	if occ == 0 {
		return // occupancy 0 is outside the histogram's usage lifetime
	}
	c.Stats.MemQOcc.Observe(occ, c.memQ.Cap())
	if c.lsuParked {
		// The head re-attempt would fail exactly as it did last cycle:
		// replay its stall attribution without the lookups.
		c.Stats.L1Stalls[c.lsuParkedStall]++
		return
	}
	head, _ := c.memQ.Peek()
	if c.cfg.Mode != config.ModeNormal {
		c.lsuIdeal(head)
		return
	}
	if head.store {
		if c.missQ.Full() {
			c.lsuParked, c.lsuParkedStall = true, L1StallBpL2
			c.Stats.L1Stalls[L1StallBpL2]++
			return
		}
		// Write-evict: drop the line if present and forward the store.
		if c.l1.Probe(head.line) == cache.Valid {
			c.l1.Invalidate(head.line)
		}
		f := c.newFetch(head.line, mem.DataWrite, c.cfg.L1.LineBytes, c.ID, int(head.warpID), c.now)
		c.missQ.Push(f)
		c.memQ.Pop()
		c.Stats.L1Accesses++
		c.Stats.StoresSent++
		return
	}
	// Load.
	if c.l1.Access(head.line) {
		c.schedule(int64(c.cfg.L1.HitLatency), ringEvt{kind: evtRegClear, isLoad: true, reg: head.reg, warpID: head.warpID})
		c.memQ.Pop()
		c.Stats.L1Accesses++
		c.Stats.L1Hits++
		return
	}
	if c.mshr.Pending(head.line) {
		// Secondary miss: merge.
		if c.mshr.Allocate(head.line, head) != cache.AllocMerged {
			c.lsuParked, c.lsuParkedStall = true, L1StallMSHR
			c.Stats.L1Stalls[L1StallMSHR]++
			return
		}
		c.memQ.Pop()
		c.Stats.L1Accesses++
		c.Stats.L1Merged++
		return
	}
	// Primary miss: needs an MSHR entry, a replaceable line and a miss-
	// queue slot; the first missing resource names the stall (Fig. 9).
	if c.mshr.Full() {
		c.lsuParked, c.lsuParkedStall = true, L1StallMSHR
		c.Stats.L1Stalls[L1StallMSHR]++
		return
	}
	if !c.l1.HasReplaceable(head.line) {
		c.lsuParked, c.lsuParkedStall = true, L1StallCache
		c.Stats.L1Stalls[L1StallCache]++
		return
	}
	if c.missQ.Full() {
		c.lsuParked, c.lsuParkedStall = true, L1StallBpL2
		c.Stats.L1Stalls[L1StallBpL2]++
		return
	}
	if r := c.mshr.Allocate(head.line, head); r != cache.AllocNew {
		panic("smcore: unexpected MSHR result on primary miss: " + r.String())
	}
	// L1 victims are never dirty under write-evict, so eviction is silent.
	c.l1.ReserveVictim(head.line)
	f := c.newFetch(head.line, mem.DataRead, 0, c.ID, int(head.warpID), c.now)
	c.missQ.Push(f)
	c.memQ.Pop()
	c.Stats.L1Accesses++
	c.Stats.L1Misses++
}

// lsuIdeal services the LSU head under the P∞ / fixed-latency memory
// systems: no queues, no MSHR limits, minimum latencies only.
func (c *Core) lsuIdeal(head tx) {
	c.memQ.Pop()
	c.Stats.L1Accesses++
	if head.store {
		if c.l1.Probe(head.line) == cache.Valid {
			c.l1.Invalidate(head.line)
		}
		c.Stats.StoresSent++
		return
	}
	if c.l1.Access(head.line) {
		c.schedule(int64(c.cfg.L1.HitLatency), ringEvt{kind: evtRegClear, isLoad: true, reg: head.reg, warpID: head.warpID})
		c.Stats.L1Hits++
		return
	}
	var lat int64
	if c.cfg.Mode == config.ModeFixedL1MissLat {
		lat = int64(c.cfg.FixedL1MissLatency)
	} else {
		lat = c.idealLat(head.line)
		if lat == int64(c.cfg.IdealL2HitLatency) {
			c.Stats.L2AHL.Add(lat)
		}
	}
	c.Stats.AML.Add(lat)
	c.l1.Fill(head.line) // functional install
	c.schedule(lat+int64(c.cfg.L1.HitLatency), ringEvt{kind: evtRegClear, isLoad: true, reg: head.reg, warpID: head.warpID})
	c.Stats.L1Misses++
}

// issueScan carries the per-scan hazard observations of one issueTick.
// Data hazards are not here: a data-blocked warp is parked in the
// blockedMem/blockedALU bitsets and skipped until a completion frees it.
type issueScan struct {
	sawStrMem bool
	sawStrALU bool
	anyInst   bool
}

// issueTick implements the greedy-then-oldest scheduler and the Fig. 7
// stall taxonomy. The scan iterates only live warps not parked on a data
// hazard; the parked warps' stall contribution comes from the blocked
// counts, which classify exactly as scanning them would have.
func (c *Core) issueTick() {
	if !c.issueDirty {
		// Nothing changed since the last failed scan — unless a str-ALU
		// block just expired with time, the outcome is identical.
		if c.lastStall == StallStrALU && c.heavyBusyUntil <= c.now {
			c.issueDirty = true
		} else {
			if c.lastStall >= 0 {
				c.Stats.IssueStalls[c.lastStall]++
			}
			return
		}
	}
	c.issueDirty = false
	if c.nBlockedHeavy > 0 && c.heavyBusyUntil <= c.now {
		// The heavy-pipe reservation expired: its parked warps can issue
		// again.
		for wi := range c.blockedHeavy {
			c.blockedHeavy[wi] = 0
		}
		c.nBlockedHeavy = 0
	}
	var s issueScan

	gWord, gBit := c.greedy>>6, uint64(1)<<uint(c.greedy&63)
	if (c.blockedMem[gWord]|c.blockedALU[gWord]|c.blockedStr[gWord]|c.blockedHeavy[gWord])&gBit == 0 &&
		c.tryIssue(&c.warps[c.greedy], &s) {
		c.issueDirty = true
		c.lastStall = -1
		return
	}
	for wi, word := range c.aliveMask {
		cand := word &^ (c.blockedMem[wi] | c.blockedALU[wi] | c.blockedStr[wi] | c.blockedHeavy[wi])
		for cand != 0 {
			i := wi<<6 + bits.TrailingZeros64(cand)
			cand &= cand - 1
			if int32(i) == c.greedy {
				continue
			}
			if c.tryIssue(&c.warps[i], &s) {
				c.greedy = int32(i)
				c.issueDirty = true
				c.lastStall = -1
				return
			}
		}
	}
	c.lastStall = -1
	if c.aliveCount == 0 {
		return
	}
	// Nothing issued: classify per §IV-A5 — structural beats data beats
	// fetch. Parked warps classify exactly as scanning them would have:
	// their hazard condition is frozen while they sit parked.
	switch {
	case s.sawStrMem || c.nBlockedStr > 0:
		c.lastStall = StallStrMem
	case s.sawStrALU || c.nBlockedHeavy > 0:
		c.lastStall = StallStrALU
	case c.nBlockedMem > 0:
		c.lastStall = StallDataMem
	case c.nBlockedALU > 0:
		c.lastStall = StallDataALU
	case !s.anyInst:
		c.lastStall = StallFetch
	}
	if c.lastStall >= 0 {
		c.Stats.IssueStalls[c.lastStall]++
	}
}

// tryIssue attempts to issue warp w's oldest buffered instruction,
// recording any hazard it runs into in s.
func (c *Core) tryIssue(w *warp, s *issueScan) bool {
	if !w.aliveForIssue() {
		return false
	}
	if w.ibufLen == 0 {
		return false
	}
	s.anyInst = true
	in := w.ibuf[0]
	mask := c.regMasks[w.bodyIdx]
	if w.pendingLoad&mask != 0 {
		// Park the warp until a completion touches its scoreboard; the
		// hazard cannot clear any other way.
		word, bit := w.id>>6, uint64(1)<<uint(w.id&63)
		if c.blockedMem[word]&bit == 0 {
			c.blockedMem[word] |= bit
			c.nBlockedMem++
		}
		return false
	}
	if w.pendingALU&mask != 0 {
		word, bit := w.id>>6, uint64(1)<<uint(w.id&63)
		if c.blockedALU[word]&bit == 0 {
			c.blockedALU[word] |= bit
			c.nBlockedALU++
		}
		return false
	}
	switch in.Kind {
	case OpLoad, OpStore:
		if w.addrCacheFor != w.issued {
			w.addrCache = c.wl.Addr(w.addrCache[:0], c.ID, w.id, w.iter, w.bodyIdx)
			w.addrCacheFor = w.issued
		}
		if len(w.addrCache) == 0 {
			panic("smcore: memory instruction generated no addresses")
		}
		if c.memQ.Free() < len(w.addrCache) {
			// Park until a memory-pipeline slot frees: the warp's head and
			// address list are frozen, and memQ space only grows on a pop.
			word, bit := w.id>>6, uint64(1)<<uint(w.id&63)
			if c.blockedStr[word]&bit == 0 {
				c.blockedStr[word] |= bit
				c.nBlockedStr++
			}
			s.sawStrMem = true
			return false
		}
		isStore := in.Kind == OpStore
		for _, line := range w.addrCache {
			c.memQ.Push(tx{warpID: int32(w.id), reg: in.Dest, store: isStore, line: c.l1.LineAddr(line)})
		}
		if !isStore && in.Dest >= 0 {
			w.pendingLoad |= uint64(1) << uint(in.Dest)
			w.loadCount[in.Dest] = uint8(len(w.addrCache))
		}
	case OpHeavyALU:
		if c.heavyBusyUntil > c.now {
			// Park until the reservation expires; the scan's entry check
			// unparks every heavy-blocked warp once it does.
			word, bit := w.id>>6, uint64(1)<<uint(w.id&63)
			if c.blockedHeavy[word]&bit == 0 {
				c.blockedHeavy[word] |= bit
				c.nBlockedHeavy++
			}
			s.sawStrALU = true
			return false
		}
		c.heavyBusyUntil = c.now + heavyALUInterval
		if in.Dest >= 0 {
			w.pendingALU |= uint64(1) << uint(in.Dest)
			c.schedule(heavyALULatency, ringEvt{kind: evtRegClear, reg: in.Dest, warpID: int32(w.id)})
		}
	case OpALU:
		if in.Dest >= 0 {
			w.pendingALU |= uint64(1) << uint(in.Dest)
			c.schedule(int64(c.cfg.Core.ALULatency), ringEvt{kind: evtRegClear, reg: in.Dest, warpID: int32(w.id)})
		}
	}
	// Retire from the i-buffer.
	copy(w.ibuf[:], w.ibuf[1:w.ibufLen])
	if w.ibufLen == ibufCap && w.fetched < w.total {
		c.fetchable++
		c.fetchMask[w.id>>6] |= 1 << uint(w.id&63)
		c.fetchParkedValid = false // the eligible-warp set changed
	}
	w.ibufLen--
	w.issued++
	w.bodyIdx++
	if w.bodyIdx == len(c.wl.Program.Body) {
		w.bodyIdx = 0
		w.iter++
	}
	if w.issued == w.total {
		c.aliveMask[w.id>>6] &^= 1 << uint(w.id&63)
		c.aliveCount--
	}
	c.Stats.Issued++
	return true
}

// nextFetchWarp returns the first warp index with a set fetchMask bit at
// or cyclically after start, or -1 when the mask is empty.
func (c *Core) nextFetchWarp(start int) int {
	words := c.fetchMask
	w := start >> 6
	if rest := words[w] >> uint(start&63); rest != 0 {
		return start + bits.TrailingZeros64(rest)
	}
	// The rest of word w held no bit at or after start; continue with the
	// following words and wrap around to w, whose low bits (below start)
	// are the cyclically last candidates.
	for i := 1; i <= len(words); i++ {
		j := w + i
		if j >= len(words) {
			j -= len(words)
		}
		if words[j] != 0 {
			return j<<6 + bits.TrailingZeros64(words[j])
		}
	}
	return -1
}

// fetchTick decodes one instruction per cycle into a warp's i-buffer,
// going through the L1I; misses travel the shared memory path. The
// eligible-warp bitset finds the round-robin successor directly instead of
// scanning every warp.
func (c *Core) fetchTick() {
	if c.fetchable == 0 {
		return
	}
	start := c.fetchRR + 1
	if start >= len(c.warps) {
		start = 0
	}
	idx := c.nextFetchWarp(start)
	if idx < 0 {
		return
	}
	w := &c.warps[idx]
	c.fetchRR = idx
	pcIdx := w.fetchIdx
	addr := c.wl.Program.PCAddr(pcIdx)
	line := c.icache.LineAddr(addr)
	if c.icache.Access(addr) {
		w.ibuf[w.ibufLen] = c.wl.Program.Body[pcIdx]
		w.ibufLen++
		w.fetched++
		w.fetchIdx++
		if w.fetchIdx == len(c.wl.Program.Body) {
			w.fetchIdx = 0
		}
		if w.ibufLen == ibufCap || w.fetched >= w.total {
			c.fetchable--
			c.fetchMask[idx>>6] &^= 1 << uint(idx&63)
		}
		c.fetchParkedValid = false // the warp's fetch position moved
		c.Stats.IFetches++
		c.issueDirty = true // a fresh instruction may be issuable
		return
	}
	if c.iPendingTest(line) {
		return // fill in flight; the round-robin pointer moves on
	}
	c.Stats.IMisses++
	if c.cfg.Mode != config.ModeNormal {
		lat := int64(c.cfg.FixedL1MissLatency)
		if c.cfg.Mode == config.ModeInfiniteBW {
			lat = c.idealLat(line)
		}
		c.iPendingSet(line)
		c.schedule(lat, ringEvt{kind: evtICacheFill, line: line})
		return
	}
	if c.iMissQ.Full() {
		return
	}
	c.iPendingSet(line)
	c.iMissQ.Push(c.newFetch(line, mem.InstRead, 0, c.ID, w.id, c.now))
}

// drainMissQueues injects one request packet per cycle into the request
// crossbar, alternating between data and instruction misses.
func (c *Core) drainMissQueues() {
	if c.inject == nil || (c.missQ.Empty() && c.iMissQ.Empty()) {
		return
	}
	if c.injectFailF != nil &&
		c.missQ.Len() == c.injectFailMissLen && c.iMissQ.Len() == c.injectFailIMissLen &&
		c.injectStamp != nil && c.injectStamp() == c.injectFailStamp {
		// Unchanged queues (pops happen only on a success, which clears the
		// memo) pick the same head, and with no flit drained the same head
		// must bounce again.
		return
	}
	first, second := c.missQ, c.iMissQ
	if c.injectToggle {
		first, second = second, first
	}
	q := first
	f, ok := q.Peek()
	if !ok {
		q = second
		if f, ok = q.Peek(); !ok {
			return
		}
	}
	if f == c.injectFailF && c.injectStamp != nil && c.injectStamp() == c.injectFailStamp {
		return // no flit drained since the last bounce: it must bounce again
	}
	if c.inject(f) {
		q.Pop()
		c.lsuParked = false // a drained slot may unblock a bp-L2 stall
		c.injectToggle = !c.injectToggle
		c.injectFailF = nil
	} else if c.injectStamp != nil {
		c.injectFailF = f
		c.injectFailStamp = c.injectStamp()
		c.injectFailMissLen = c.missQ.Len()
		c.injectFailIMissLen = c.iMissQ.Len()
	}
}

func (c *Core) checkDone() {
	// Cheap rejection: completion is impossible before the last issue.
	if c.Stats.Issued < int64(len(c.warps))*c.wl.Program.TotalInsts() {
		return
	}
	for i := range c.warps {
		w := &c.warps[i]
		if w.pendingLoad != 0 || w.pendingALU != 0 {
			return
		}
	}
	if !c.memQ.Empty() || !c.missQ.Empty() || !c.iMissQ.Empty() || !c.respFIFO.Empty() {
		return
	}
	if c.mshr.Len() != 0 || c.iPendingCount != 0 {
		return
	}
	c.done = true
}

// NextWake reports whether the core's state provably cannot change before
// some future cycle, and that cycle. It returns ok=false when the core may
// make progress (or record different statistics) on the very next tick.
// The event engine uses it to park the core on its calendar wheel and jump
// over runs of no-op cycles while every warp waits on completions.
func (c *Core) NextWake() (int64, bool) {
	if c.done {
		// A drained core ticks as a no-op and keeps no statistics.
		return math.MaxInt64, true
	}
	// Any queued work can progress (or must keep recording occupancy and
	// stall attribution that depends on downstream state) every cycle.
	if c.issueDirty || !c.respFIFO.Empty() || !c.memQ.Empty() ||
		!c.missQ.Empty() || !c.iMissQ.Empty() {
		return 0, false
	}
	// The fetch stage must be parked: either no warp has i-buffer space,
	// or every eligible warp is blocked on an in-flight L1I fill (in
	// which case fetchTick only rotates its round-robin pointer, a
	// rotation SkipTo replays in bulk).
	if c.fetchable != 0 && !c.fetchParkedNow() {
		return 0, false
	}
	wake := c.nextEventCycle()
	if c.lastStall == StallStrALU {
		if c.heavyBusyUntil <= c.now {
			return 0, false // the replay path re-scans on the next tick
		}
		// The replayed str-ALU stall re-scans once the heavy pipe frees.
		if wake < 0 || c.heavyBusyUntil < wake {
			wake = c.heavyBusyUntil
		}
	}
	if wake < 0 {
		if c.mshr.Len() != 0 || c.iPendingCount != 0 {
			// No scheduled completion, queues drained, fetch parked: the
			// only thing the core is waiting on is a reply in flight. The
			// engine parks the core off the wheel and re-schedules it the
			// exact cycle a reply reaches its ejection port.
			return math.MaxInt64, true
		}
		return 0, false
	}
	return wake, true
}

// nextEventCycle returns the cycle of the earliest scheduled completion,
// or -1 when the ring is empty.
func (c *Core) nextEventCycle() int64 {
	if c.evtCount == 0 {
		return -1
	}
	if c.nextEvtHint > c.now {
		return c.nextEvtHint
	}
	// The hint went stale when its slot fired; rescan from the next slot.
	for d := int64(1); d < ringSize; d++ {
		if len(c.ring[(c.now+d)&(ringSize-1)]) > 0 {
			c.nextEvtHint = c.now + d
			return c.nextEvtHint
		}
	}
	return -1
}

// fetchParkedNow reports (memoized) whether every eligible warp's next
// code line has a fill in flight, so a fetchTick can neither fetch nor
// schedule a new miss.
func (c *Core) fetchParkedNow() bool {
	if !c.fetchParkedValid {
		c.fetchParked = c.computeFetchParked()
		c.fetchParkedValid = true
	}
	return c.fetchParked
}

func (c *Core) computeFetchParked() bool {
	for wi, word := range c.fetchMask {
		for word != 0 {
			idx := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			w := &c.warps[idx]
			line := c.icache.LineAddr(c.wl.Program.PCAddr(w.fetchIdx))
			// A valid line would fetch; an absent, non-pending line
			// would schedule a new miss. Either is forward progress.
			if c.icache.Probe(line) == cache.Valid || !c.iPendingTest(line) {
				return false
			}
		}
	}
	return true
}

// SkipTo advances the core clock to target, bulk-accounting the skipped
// cycles exactly as the equivalent run of no-op Ticks would have: active
// cycles accrue, a replayed issue-stall classification accrues once per
// cycle, and a parked fetch stage's round-robin pointer rotates once per
// cycle through the eligible warps. The caller must have validated the
// skip with NextWake.
func (c *Core) SkipTo(target int64) {
	if c.done || target <= c.now {
		return
	}
	n := target - c.now
	c.now = target
	c.Stats.Cycles += n
	if c.lastStall >= 0 {
		c.Stats.IssueStalls[c.lastStall] += n
	}
	if c.fetchable > 0 {
		// Each skipped fetchTick advanced fetchRR to the next eligible
		// warp before blocking on its pending fill; replay n steps.
		for steps := n % int64(c.fetchable); steps > 0; steps-- {
			start := c.fetchRR + 1
			if start >= len(c.warps) {
				start = 0
			}
			c.fetchRR = c.nextFetchWarp(start)
		}
	}
}

// OutstandingWork reports queue/MSHR occupancy for deadlock diagnostics.
func (c *Core) OutstandingWork() string {
	return fmt.Sprintf("core %d: memQ=%d missQ=%d iMissQ=%d mshr=%d resp=%d",
		c.ID, c.memQ.Len(), c.missQ.Len(), c.iMissQ.Len(), c.mshr.Len(), c.respFIFO.Len())
}

// MissQueueOcc reports the L1 data miss queue's occupancy and capacity —
// the per-core gauge behind the profiler's l1/miss-queue series.
func (c *Core) MissQueueOcc() (length, capacity int) {
	return c.missQ.Len(), c.missQ.Cap()
}

// MSHROcc reports the L1 MSHR file's live-entry count — the per-core
// gauge behind the profiler's l1/mshr series (capacity is the config's
// L1.MSHREntries).
func (c *Core) MSHROcc() int { return c.mshr.Len() }
