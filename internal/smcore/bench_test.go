package smcore

import (
	"testing"

	"gpumembw/internal/config"
)

// BenchmarkCoreTick measures per-cycle core cost with 48 warps under a
// fixed-latency memory (the scheduler/LSU fast paths).
func BenchmarkCoreTick(b *testing.B) {
	cfg := config.Baseline()
	cfg.Mode = config.ModeFixedL1MissLat
	cfg.FixedL1MissLatency = 200
	wl := streamWorkload(4, 8, 1<<30) // effectively endless
	c := NewCore(0, &cfg, wl, testFetchFn())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick()
	}
	b.ReportMetric(float64(c.Stats.Issued)/float64(b.N), "insts/cycle")
}

// BenchmarkIssueScanStalled measures the worst-case scheduler scan: every
// warp blocked on a data hazard (the dirty-flag fast path).
func BenchmarkIssueScanStalled(b *testing.B) {
	cfg := config.Baseline()
	cfg.Mode = config.ModeFixedL1MissLat
	cfg.FixedL1MissLatency = 1500 // park all warps for the whole benchmark
	wl := &Workload{
		Name: "stall",
		Program: Program{Body: []Inst{
			{Kind: OpLoad, Dest: 1, Src1: -1, Src2: -1},
			{Kind: OpALU, Dest: 2, Src1: 1, Src2: -1},
		}, Iters: 1 << 30, CodeBase: 1 << 40},
		Addr: func(buf []uint64, coreID, warpID, iter, instIdx int) []uint64 {
			return append(buf, uint64(warpID)<<20|uint64(iter)<<7)
		},
	}
	c := NewCore(0, &cfg, wl, testFetchFn())
	for i := 0; i < 500; i++ {
		c.Tick() // park the warps
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick()
	}
}
