// Package smcore models one SIMT core (SM) of Fig. 2: warps with a
// greedy-then-oldest scheduler, a scoreboard, instruction buffers fed by an
// L1 instruction cache, an ALU pipeline, and a load-store unit in front of a
// write-evict L1 data cache with MSHRs and a miss queue.
//
// The core is trace-driven: warps execute a static kernel program whose
// memory instructions draw line addresses from a per-workload address
// generator. The core classifies every cycle in which it fails to issue an
// instruction into the taxonomy of Fig. 7 (data-MEM, data-ALU, str-MEM,
// str-ALU, fetch) and every cycle its L1 pipeline is blocked into the
// taxonomy of Fig. 9 (cache, mshr, bp-L2).
package smcore

// OpKind is the instruction class of the synthetic ISA. Four classes
// suffice to reproduce the paper's hazard taxonomy: light and heavy
// arithmetic (data-ALU/str-ALU hazards), loads (data-MEM) and stores.
type OpKind uint8

const (
	// OpALU is a fully pipelined arithmetic instruction.
	OpALU OpKind = iota
	// OpHeavyALU is a long-latency arithmetic instruction (transcendental
	// / double-precision class) with a multi-cycle initiation interval,
	// the source of str-ALU hazards.
	OpHeavyALU
	// OpLoad is a global-memory load.
	OpLoad
	// OpStore is a global-memory store.
	OpStore
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpALU:
		return "alu"
	case OpHeavyALU:
		return "heavy-alu"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	default:
		return "unknown"
	}
}

// NumRegs is the architectural register count per warp. 64 registers let
// the scoreboard live in two bitmasks.
const NumRegs = 64

// Inst is one static instruction. Register fields use -1 for "none".
type Inst struct {
	Kind OpKind
	Dest int8
	Src1 int8
	Src2 int8
	// Pat selects the workload's address pattern for loads and stores.
	Pat int8
}

// InstBytes is the encoded size of one instruction, which sets the
// instruction-cache footprint of a kernel body.
const InstBytes = 8

// Program is a static kernel: every warp executes Body Iters times.
type Program struct {
	Body     []Inst
	Iters    int
	CodeBase uint64 // base address of the code segment for L1I accesses
}

// TotalInsts returns the dynamic instruction count per warp.
func (p *Program) TotalInsts() int64 {
	return int64(len(p.Body)) * int64(p.Iters)
}

// PCAddr returns the instruction-fetch address of body position idx.
func (p *Program) PCAddr(idx int) uint64 {
	return p.CodeBase + uint64(idx)*InstBytes
}

// AddressFn yields the coalesced line addresses touched by the memory
// instruction at body position instIdx, executed by warp (coreID, warpID)
// in iteration iter. Implementations append to buf and return it; they must
// be deterministic in their arguments.
//
// The number of addresses one instruction generates must not exceed the
// configuration's memory pipeline width: the LSU issues an instruction only
// when all of its transactions fit, so an oversized burst would stall
// forever (the simulator reports it as a livelock).
type AddressFn func(buf []uint64, coreID, warpID, iter, instIdx int) []uint64

// Workload couples a kernel program with its address generator and the
// number of warps launched per core.
type Workload struct {
	Name         string
	Program      Program
	Addr         AddressFn
	WarpsPerCore int // 0 means use the configuration's maximum
}
