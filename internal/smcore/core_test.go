package smcore

import (
	"testing"

	"gpumembw/internal/config"
	"gpumembw/internal/mem"
)

// testFetchFn mints fetches without routing (single-core tests).
func testFetchFn() NewFetchFn {
	var id uint64
	return func(addr uint64, typ mem.AccessType, size, coreID, warpID int, issueCycle int64) *mem.Fetch {
		id++
		return &mem.Fetch{ID: id, Addr: addr, Type: typ, SizeBytes: size,
			CoreID: coreID, WarpID: warpID, IssueCycle: issueCycle}
	}
}

// streamWorkload: each warp loads a fresh line then does ALU work.
func streamWorkload(loadsPerIter, alusPerIter, iters int) *Workload {
	var body []Inst
	for l := 0; l < loadsPerIter; l++ {
		body = append(body, Inst{Kind: OpLoad, Dest: int8(l + 1), Src1: -1, Src2: -1})
	}
	for a := 0; a < alusPerIter; a++ {
		src := int8(-1)
		if a < loadsPerIter {
			src = int8(a + 1) // consume the loads
		}
		body = append(body, Inst{Kind: OpALU, Dest: int8(32 + a%16), Src1: src, Src2: -1})
	}
	return &Workload{
		Name:    "stream-test",
		Program: Program{Body: body, Iters: iters, CodeBase: 1 << 40},
		Addr: func(buf []uint64, coreID, warpID, iter, instIdx int) []uint64 {
			n := uint64(coreID)<<32 | uint64(warpID)<<20 | uint64(iter)<<8 | uint64(instIdx)
			return append(buf, n*128)
		},
	}
}

func smallConfig() config.Config {
	cfg := config.Baseline()
	cfg.Core.NumCores = 1
	cfg.Core.WarpsPerCore = 4
	return cfg
}

// runIdeal runs a core in an ideal mode to completion.
func runIdeal(t *testing.T, cfg config.Config, wl *Workload, maxCycles int) *Core {
	t.Helper()
	c := NewCore(0, &cfg, wl, testFetchFn())
	if cfg.Mode == config.ModeInfiniteBW {
		c.SetIdealLatency(func(addr uint64) int64 { return int64(cfg.IdealL2HitLatency) })
	}
	for i := 0; i < maxCycles && !c.Done(); i++ {
		c.Tick()
	}
	if !c.Done() {
		t.Fatalf("core did not finish in %d cycles: %s", maxCycles, c.OutstandingWork())
	}
	return c
}

func TestCoreCompletesFixedLatency(t *testing.T) {
	cfg := smallConfig()
	cfg.Mode = config.ModeFixedL1MissLat
	cfg.FixedL1MissLatency = 50
	wl := streamWorkload(2, 4, 3)
	c := runIdeal(t, cfg, wl, 100000)
	wantInsts := int64(4) * wl.Program.TotalInsts()
	if c.Stats.Issued != wantInsts {
		t.Fatalf("issued %d, want %d", c.Stats.Issued, wantInsts)
	}
	if c.Stats.L1Misses == 0 {
		t.Fatal("fresh lines must miss")
	}
	if got := c.Stats.AML.Mean(); got != 50 {
		t.Fatalf("AML = %g, want exactly 50 in fixed-latency mode", got)
	}
}

func TestHigherFixedLatencyIsSlower(t *testing.T) {
	run := func(lat int) int64 {
		cfg := smallConfig()
		cfg.Mode = config.ModeFixedL1MissLat
		cfg.FixedL1MissLatency = lat
		c := runIdeal(t, cfg, streamWorkload(2, 2, 5), 1000000)
		return c.Stats.Cycles
	}
	fast, slow := run(10), run(600)
	if slow <= fast {
		t.Fatalf("latency 600 (%d cycles) not slower than latency 10 (%d)", slow, fast)
	}
}

func TestDataHazardStallsRecorded(t *testing.T) {
	// One warp, a load immediately consumed: the dependent ALU op must
	// wait out the miss latency as a data-MEM stall.
	cfg := smallConfig()
	cfg.Core.WarpsPerCore = 1
	cfg.Mode = config.ModeFixedL1MissLat
	cfg.FixedL1MissLatency = 200
	wl := &Workload{
		Name: "dep",
		Program: Program{Body: []Inst{
			{Kind: OpLoad, Dest: 1, Src1: -1, Src2: -1},
			{Kind: OpALU, Dest: 2, Src1: 1, Src2: -1},
		}, Iters: 4, CodeBase: 1 << 40},
		Addr: func(buf []uint64, coreID, warpID, iter, instIdx int) []uint64 {
			return append(buf, uint64(iter)*128)
		},
	}
	c := runIdeal(t, cfg, wl, 100000)
	if c.Stats.IssueStalls[StallDataMem] == 0 {
		t.Fatal("dependent load must record data-MEM stalls")
	}
	if c.Stats.IssueStalls[StallDataMem] < 100 {
		t.Fatalf("data-MEM stalls = %d, want ≈ latency per iteration", c.Stats.IssueStalls[StallDataMem])
	}
}

func TestStructuralMemStallWhenPipeFull(t *testing.T) {
	// Memory pipeline width 2 with 4-address strided loads: issue must
	// block with str-MEM when the LSU cannot hold a whole instruction.
	cfg := smallConfig()
	cfg.Core.WarpsPerCore = 2
	cfg.Core.MemPipelineWidth = 4
	cfg.Mode = config.ModeFixedL1MissLat
	cfg.FixedL1MissLatency = 100
	wl := &Workload{
		Name: "strided",
		Program: Program{Body: []Inst{
			{Kind: OpLoad, Dest: 1, Src1: -1, Src2: -1},
			{Kind: OpLoad, Dest: 2, Src1: -1, Src2: -1},
			{Kind: OpALU, Dest: 3, Src1: 1, Src2: 2},
		}, Iters: 6, CodeBase: 1 << 40},
		Addr: func(buf []uint64, coreID, warpID, iter, instIdx int) []uint64 {
			base := uint64(warpID)<<24 | uint64(iter)<<12 | uint64(instIdx)<<8
			for k := 0; k < 4; k++ { // 4 uncoalesced transactions
				buf = append(buf, (base+uint64(k))*128)
			}
			return buf
		},
	}
	c := runIdeal(t, cfg, wl, 100000)
	if c.Stats.IssueStalls[StallStrMem] == 0 {
		t.Fatal("full memory pipeline must record str-MEM stalls")
	}
}

func TestStrALUFromHeavyOps(t *testing.T) {
	cfg := smallConfig()
	cfg.Core.WarpsPerCore = 4
	cfg.Mode = config.ModeFixedL1MissLat
	cfg.FixedL1MissLatency = 0
	body := []Inst{
		{Kind: OpHeavyALU, Dest: 1, Src1: -1, Src2: -1},
		{Kind: OpHeavyALU, Dest: 2, Src1: -1, Src2: -1},
	}
	wl := &Workload{
		Name:    "heavy",
		Program: Program{Body: body, Iters: 10, CodeBase: 1 << 40},
		Addr:    func(buf []uint64, _, _, _, _ int) []uint64 { return buf },
	}
	c := runIdeal(t, cfg, wl, 100000)
	if c.Stats.IssueStalls[StallStrALU] == 0 {
		t.Fatal("back-to-back heavy ALU ops must record str-ALU stalls")
	}
}

func TestL1HitsAfterFill(t *testing.T) {
	// Loads that revisit the same line must hit after the first fill.
	cfg := smallConfig()
	cfg.Core.WarpsPerCore = 1
	cfg.Mode = config.ModeFixedL1MissLat
	cfg.FixedL1MissLatency = 20
	wl := &Workload{
		Name: "revisit",
		Program: Program{Body: []Inst{
			{Kind: OpLoad, Dest: 1, Src1: -1, Src2: -1},
			{Kind: OpALU, Dest: 2, Src1: 1, Src2: -1},
		}, Iters: 10, CodeBase: 1 << 40},
		Addr: func(buf []uint64, _, _, _, _ int) []uint64 {
			return append(buf, 0x4000) // always the same line
		},
	}
	c := runIdeal(t, cfg, wl, 100000)
	if c.Stats.L1Misses != 1 {
		t.Fatalf("L1 misses = %d, want 1", c.Stats.L1Misses)
	}
	if c.Stats.L1Hits != 9 {
		t.Fatalf("L1 hits = %d, want 9", c.Stats.L1Hits)
	}
}

func TestWriteEvictInvalidatesL1(t *testing.T) {
	cfg := smallConfig()
	cfg.Core.WarpsPerCore = 1
	cfg.Mode = config.ModeFixedL1MissLat
	cfg.FixedL1MissLatency = 10
	wl := &Workload{
		Name: "write-evict",
		Program: Program{Body: []Inst{
			{Kind: OpLoad, Dest: 1, Src1: -1, Src2: -1},  // fill the line
			{Kind: OpALU, Dest: 2, Src1: 1, Src2: -1},    // wait for it
			{Kind: OpStore, Dest: -1, Src1: 2, Src2: -1}, // write-evict it
			{Kind: OpLoad, Dest: 3, Src1: -1, Src2: -1},  // must miss again
			{Kind: OpALU, Dest: 4, Src1: 3, Src2: -1},
		}, Iters: 1, CodeBase: 1 << 40},
		Addr: func(buf []uint64, _, _, _, _ int) []uint64 {
			return append(buf, 0x8000)
		},
	}
	c := runIdeal(t, cfg, wl, 100000)
	if c.Stats.L1Misses != 2 {
		t.Fatalf("L1 misses = %d, want 2 (store must evict)", c.Stats.L1Misses)
	}
	if c.Stats.StoresSent != 1 {
		t.Fatalf("stores = %d, want 1", c.Stats.StoresSent)
	}
}

func TestIdealModeL2AHLUses120(t *testing.T) {
	cfg := smallConfig()
	cfg.Mode = config.ModeInfiniteBW
	c := runIdeal(t, cfg, streamWorkload(1, 2, 4), 100000)
	if got := c.Stats.AML.Mean(); got != float64(cfg.IdealL2HitLatency) {
		t.Fatalf("P∞ AML = %g, want %d", got, cfg.IdealL2HitLatency)
	}
}

func TestFetchHazardWithTinyICache(t *testing.T) {
	// A kernel body far larger than the I-cache forces capacity misses;
	// with latency on every miss, fetch stalls must appear.
	cfg := smallConfig()
	cfg.Core.WarpsPerCore = 2
	cfg.L1.ICacheSizeBytes = 512 // 4 lines
	cfg.Mode = config.ModeFixedL1MissLat
	cfg.FixedL1MissLatency = 150
	var body []Inst
	for i := 0; i < 256; i++ { // 2 KB of code
		body = append(body, Inst{Kind: OpALU, Dest: int8(i % 32), Src1: -1, Src2: -1})
	}
	wl := &Workload{
		Name:    "bigcode",
		Program: Program{Body: body, Iters: 3, CodeBase: 1 << 40},
		Addr:    func(buf []uint64, _, _, _, _ int) []uint64 { return buf },
	}
	c := runIdeal(t, cfg, wl, 1000000)
	if c.Stats.IMisses == 0 {
		t.Fatal("tiny I-cache must miss")
	}
	if c.Stats.IssueStalls[StallFetch] == 0 {
		t.Fatal("I-cache misses must cause fetch stalls")
	}
}

func TestGTOPrefersGreedyWarp(t *testing.T) {
	// Pre-fill two warps' i-buffers by hand: the scheduler must keep
	// issuing from the greedy warp while it has ready instructions, and
	// only then fall back to the oldest ready warp.
	cfg := smallConfig()
	cfg.Core.WarpsPerCore = 2
	cfg.Mode = config.ModeFixedL1MissLat
	wl := streamWorkload(0, 4, 1)
	c := NewCore(0, &cfg, wl, testFetchFn())
	alu := Inst{Kind: OpALU, Dest: -1, Src1: -1, Src2: -1}
	for i := range c.warps {
		c.warps[i].ibuf[0] = alu
		c.warps[i].ibuf[1] = alu
		c.warps[i].ibufLen = 2
	}
	c.greedy = 1
	before0, before1 := c.warps[0].issued, c.warps[1].issued
	c.issueTick()
	c.issueTick()
	if c.warps[1].issued != before1+2 || c.warps[0].issued != before0 {
		t.Fatalf("GTO not greedy: warp0 +%d, warp1 +%d; want +0/+2",
			c.warps[0].issued-before0, c.warps[1].issued-before1)
	}
	// Greedy warp drained: the oldest warp (0) takes over.
	c.issueTick()
	if c.warps[0].issued != before0+1 {
		t.Fatal("scheduler did not fall back to the oldest warp")
	}
	if c.greedy != 0 {
		t.Fatalf("greedy pointer = %d, want 0", c.greedy)
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() (int64, int64) {
		cfg := smallConfig()
		cfg.Mode = config.ModeFixedL1MissLat
		cfg.FixedL1MissLatency = 75
		c := runIdeal(t, cfg, streamWorkload(2, 3, 4), 1000000)
		return c.Stats.Cycles, c.Stats.IssueStallCycles()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", c1, s1, c2, s2)
	}
}

func TestNormalModeRequiresDrainThroughMissQueue(t *testing.T) {
	// In normal mode with no injection wired, misses must pile up and the
	// core must NOT complete (validating checkDone covers in-flight work).
	// 12 independent loads per iteration per warp overwhelm the 8-entry
	// miss queue once data injection is blocked. Instruction misses are
	// served instantly so the warps can make it to their loads.
	cfg := smallConfig()
	c := NewCore(0, &cfg, streamWorkload(12, 0, 2), testFetchFn())
	c.SetInject(func(f *mem.Fetch) bool {
		if f.Type == mem.InstRead {
			f.IsReply = true
			return c.AcceptResponse(f)
		}
		return false // data path blocked
	})
	for i := 0; i < 5000; i++ {
		c.Tick()
	}
	if c.Done() {
		t.Fatal("core completed with misses stuck in the miss queue")
	}
	if c.Stats.L1Stalls[L1StallBpL2] == 0 {
		t.Fatal("blocked injection must back-pressure as bp-L2 stalls")
	}
}

func TestNormalModeRoundTrip(t *testing.T) {
	// Wire a fake L2 that answers every read after 40 cycles.
	cfg := smallConfig()
	cfg.Core.WarpsPerCore = 2
	c := NewCore(0, &cfg, streamWorkload(2, 2, 3), testFetchFn())
	type pending struct {
		f    *mem.Fetch
		when int64
	}
	var inFlight []pending
	var cycle int64
	c.SetInject(func(f *mem.Fetch) bool {
		if f.Type.NeedsReply() {
			inFlight = append(inFlight, pending{f, cycle + 40})
		}
		return true
	})
	for cycle = 0; cycle < 100000 && !c.Done(); cycle++ {
		n := 0
		for _, p := range inFlight {
			if p.when <= cycle && c.CanAcceptResponse() {
				p.f.IsReply = true
				p.f.L2Hit = true
				c.AcceptResponse(p.f)
			} else {
				inFlight[n] = p
				n++
			}
		}
		inFlight = inFlight[:n]
		c.Tick()
	}
	if !c.Done() {
		t.Fatalf("core did not drain: %s", c.OutstandingWork())
	}
	if c.Stats.AML.Count == 0 {
		t.Fatal("AML never sampled")
	}
	if c.Stats.AML.Mean() < 40 {
		t.Fatalf("AML = %g, want ≥ 40", c.Stats.AML.Mean())
	}
	if c.Stats.L2AHL.Count == 0 {
		t.Fatal("L2-AHL never sampled for L2 hits")
	}
}

func TestMSHRMergingInNormalMode(t *testing.T) {
	// Two warps load the same line: one miss goes out, the second merges.
	cfg := smallConfig()
	cfg.Core.WarpsPerCore = 2
	wl := &Workload{
		Name: "merge",
		Program: Program{Body: []Inst{
			{Kind: OpLoad, Dest: 1, Src1: -1, Src2: -1},
			{Kind: OpALU, Dest: 2, Src1: 1, Src2: -1},
		}, Iters: 1, CodeBase: 1 << 40},
		Addr: func(buf []uint64, _, _, _, _ int) []uint64 {
			return append(buf, 0xABC00) // same line for both warps
		},
	}
	c := NewCore(0, &cfg, wl, testFetchFn())
	// Replies arrive 60 cycles after injection, leaving a wide window for
	// the second warp's load to merge.
	type flight struct {
		f    *mem.Fetch
		when int
	}
	var outstanding []flight
	cycle := 0
	c.SetInject(func(f *mem.Fetch) bool {
		if f.Type.NeedsReply() {
			outstanding = append(outstanding, flight{f, cycle + 60})
		}
		return true
	})
	for cycle = 0; cycle < 2000 && !c.Done(); cycle++ {
		if len(outstanding) > 0 && outstanding[0].when <= cycle && c.CanAcceptResponse() {
			f := outstanding[0].f
			outstanding = outstanding[1:]
			f.IsReply = true
			c.AcceptResponse(f)
		}
		c.Tick()
	}
	if !c.Done() {
		t.Fatalf("not drained: %s", c.OutstandingWork())
	}
	if c.Stats.L1Misses != 1 || c.Stats.L1Merged != 1 {
		t.Fatalf("misses=%d merged=%d, want 1/1", c.Stats.L1Misses, c.Stats.L1Merged)
	}
}
