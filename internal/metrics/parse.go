package metrics

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Series is one parsed sample line of an exposition, with its labels in
// source order.
type Series struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is a parsed and validated exposition page.
type Scrape struct {
	Types  map[string]Kind
	Series []Series
}

// Value returns the value of the series with the given name and exact
// label set ("k=v" pairs, order-insensitive). ok is false if absent.
func (s *Scrape) Value(name string, labels ...string) (float64, bool) {
	want := map[string]string{}
	for _, kv := range labels {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return 0, false
		}
		want[k] = v
	}
	for _, ser := range s.Series {
		if ser.Name != name || len(ser.Labels) != len(want) {
			continue
		}
		match := true
		for k, v := range want {
			if ser.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return ser.Value, true
		}
	}
	return 0, false
}

// Sum adds every sample of the family (across all label tuples).
func (s *Scrape) Sum(name string) float64 {
	var total float64
	for _, ser := range s.Series {
		if ser.Name == name {
			total += ser.Value
		}
	}
	return total
}

// Parse validates a Prometheus text exposition page and returns its
// series. It enforces the invariants a scraper relies on: every sample
// belongs to a family announced by a # TYPE line, HELP/TYPE come before
// the family's samples, sample lines are syntactically well formed,
// values parse as floats, histograms carry cumulative buckets ending in
// le="+Inf" with consistent _count, and no duplicate series appear.
// Tests and the loadgen harness use it as the "scrapes cleanly" gate.
func Parse(data []byte) (*Scrape, error) {
	sc := &Scrape{Types: map[string]Kind{}}
	seen := map[string]bool{}
	sawSamples := map[string]bool{}
	scanner := bufio.NewScanner(strings.NewReader(string(data)))
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("metrics: line %d: malformed TYPE line %q", lineNo, line)
			}
			name, kind := fields[2], Kind(fields[3])
			switch kind {
			case KindCounter, KindGauge, KindHistogram:
			default:
				return nil, fmt.Errorf("metrics: line %d: unknown type %q", lineNo, fields[3])
			}
			if _, dup := sc.Types[name]; dup {
				return nil, fmt.Errorf("metrics: line %d: duplicate TYPE for %q", lineNo, name)
			}
			if sawSamples[name] {
				return nil, fmt.Errorf("metrics: line %d: TYPE for %q after its samples", lineNo, name)
			}
			sc.Types[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP and comments
		}
		ser, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		fam := familyOf(ser.Name, sc.Types)
		if fam == "" {
			return nil, fmt.Errorf("metrics: line %d: sample %q has no TYPE header", lineNo, ser.Name)
		}
		sawSamples[fam] = true
		key := ser.Name + "\x00" + labelKey(ser.Labels)
		if seen[key] {
			return nil, fmt.Errorf("metrics: line %d: duplicate series %q{%s}", lineNo, ser.Name, labelKey(ser.Labels))
		}
		seen[key] = true
		sc.Series = append(sc.Series, ser)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if err := sc.checkHistograms(); err != nil {
		return nil, err
	}
	return sc, nil
}

// familyOf maps a sample name to its announced family: exact match, or
// the histogram's _bucket/_sum/_count suffixes.
func familyOf(name string, types map[string]Kind) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == KindHistogram {
			return base
		}
	}
	return ""
}

// parseSample parses one `name{l="v",...} value` line.
func parseSample(line string) (Series, error) {
	ser := Series{Labels: map[string]string{}}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return ser, fmt.Errorf("malformed sample %q", line)
	}
	ser.Name = rest[:i]
	if !validName(ser.Name) {
		return ser, fmt.Errorf("invalid metric name %q", ser.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++ // skip escaped char
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return ser, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], ser.Labels); err != nil {
			return ser, err
		}
		rest = rest[end+1:]
	}
	val := strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return ser, fmt.Errorf("bad sample value %q", val)
	}
	ser.Value = v
	return ser, nil
}

// parseLabels parses `k="v",k2="v2"` into m.
func parseLabels(s string, m map[string]string) error {
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return fmt.Errorf("malformed label pair in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !validName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %q value not quoted", name)
		}
		var sb strings.Builder
		j := 1
		closed := false
		for ; j < len(s); j++ {
			if s[j] == '\\' && j+1 < len(s) {
				switch s[j+1] {
				case 'n':
					sb.WriteByte('\n')
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				default:
					return fmt.Errorf("bad escape in label %q", name)
				}
				j++
				continue
			}
			if s[j] == '"' {
				closed = true
				break
			}
			sb.WriteByte(s[j])
		}
		if !closed {
			return fmt.Errorf("unterminated label value for %q", name)
		}
		if _, dup := m[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		m[name] = sb.String()
		s = s[j+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func labelKey(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%s,", k, m[k])
	}
	return sb.String()
}

// checkHistograms verifies every histogram family's bucket series are
// cumulative, terminate in le="+Inf", and agree with _count.
func (sc *Scrape) checkHistograms() error {
	type hist struct {
		buckets []Series
		count   map[string]float64
	}
	hists := map[string]*hist{}
	get := func(fam, labels string) *hist {
		h, ok := hists[fam]
		if !ok {
			h = &hist{count: map[string]float64{}}
			hists[fam] = h
		}
		_ = labels
		return h
	}
	for _, ser := range sc.Series {
		base := strings.TrimSuffix(ser.Name, "_bucket")
		if base != ser.Name && sc.Types[base] == KindHistogram {
			get(base, "").buckets = append(get(base, "").buckets, ser)
			continue
		}
		base = strings.TrimSuffix(ser.Name, "_count")
		if base != ser.Name && sc.Types[base] == KindHistogram {
			get(base, "").count[childKey(ser.Labels, "")] = ser.Value
		}
	}
	for fam, h := range hists {
		// Group buckets per child (label set minus "le").
		perChild := map[string][]Series{}
		for _, b := range h.buckets {
			perChild[childKey(b.Labels, "le")] = append(perChild[childKey(b.Labels, "le")], b)
		}
		for child, buckets := range perChild {
			prev := -1.0
			infSeen := false
			var infVal float64
			for _, b := range buckets {
				if b.Value < prev {
					return fmt.Errorf("metrics: histogram %s buckets not cumulative", fam)
				}
				prev = b.Value
				if b.Labels["le"] == "+Inf" {
					infSeen, infVal = true, b.Value
				}
			}
			if !infSeen {
				return fmt.Errorf("metrics: histogram %s missing le=\"+Inf\" bucket", fam)
			}
			if count, ok := h.count[child]; ok && count != infVal {
				return fmt.Errorf("metrics: histogram %s: +Inf bucket %v != _count %v", fam, infVal, count)
			}
		}
	}
	return nil
}

// childKey renders a label set (minus one excluded label) as a stable key.
func childKey(labels map[string]string, exclude string) string {
	m := map[string]string{}
	for k, v := range labels {
		if k != exclude {
			m[k] = v
		}
	}
	return labelKey(m)
}
