// Package metrics is a dependency-free Prometheus-style instrumentation
// registry: counters, gauges and histograms — optionally labelled, or
// computed at scrape time from a callback — rendered in the Prometheus
// text exposition format (version 0.0.4).
//
// It exists so gpusimd can serve GET /metrics (and exp.Scheduler can
// export its counters) without pulling client_golang into a module that
// otherwise has zero external dependencies. Only the small subset the
// daemon needs is implemented, but that subset is implemented to the
// format's letter: one HELP/TYPE header per family, cumulative
// histogram buckets with a +Inf terminal, _sum/_count series, escaped
// label values, and deterministic (sorted) output so scrapes diff
// cleanly in tests.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's TYPE as exposed to scrapers.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Sample is one exposed series: a label-value tuple (parallel to the
// family's label names) and its current value.
type Sample struct {
	Labels []string
	Value  float64
}

// family is one named metric with its collection function. collect
// returns the samples to expose at scrape time.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	collect func() []Sample
	// histograms render themselves (buckets/_sum/_count).
	writeTo func(w io.Writer) error
}

// Registry holds metric families and renders them for scraping.
// All methods are safe for concurrent use; registration is expected at
// construction time, scraping and updates at runtime.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds a family, panicking on duplicate names — duplicate
// registration is a programming error, caught at daemon construction.
func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", f.name))
	}
	r.families[f.name] = f
}

// Counter is a monotonically increasing int64 value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the exposition to stay a
// well-formed counter; callers own that invariant).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers and returns an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{
		name: name, help: help, kind: KindCounter,
		collect: func() []Sample { return []Sample{{Value: float64(c.Value())}} },
	})
	return c
}

// CounterFunc registers a counter whose value is computed at scrape time
// — the bridge for components (like exp.Scheduler) that already keep
// their own atomic counters.
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	r.register(&family{
		name: name, help: help, kind: KindCounter,
		collect: func() []Sample { return []Sample{{Value: f()}} },
	})
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(&family{
		name: name, help: help, kind: KindGauge,
		collect: func() []Sample { return []Sample{{Value: f()}} },
	})
}

// GaugeVecFunc registers a labelled gauge family computed at scrape
// time: f returns one sample per live label tuple (gpusimd's
// jobs-by-state gauge).
func (r *Registry) GaugeVecFunc(name, help string, labels []string, f func() []Sample) {
	r.register(&family{name: name, help: help, kind: KindGauge, labels: labels, collect: f})
}

// CounterVec is a family of counters keyed by a label tuple.
type CounterVec struct {
	labels []string
	mu     sync.Mutex
	kids   map[string]*Counter
}

// CounterVec registers and returns a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, kids: make(map[string]*Counter)}
	r.register(&family{
		name: name, help: help, kind: KindCounter, labels: labels,
		collect: v.samples,
	})
	return v
}

// With returns (creating if needed) the child counter for the label
// values, which must match the registered label names positionally.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.kids[key]
	if !ok {
		c = &Counter{}
		v.kids[key] = c
	}
	return c
}

func (v *CounterVec) samples() []Sample {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]Sample, 0, len(v.kids))
	for key, c := range v.kids {
		out = append(out, Sample{Labels: strings.Split(key, "\x00"), Value: float64(c.Value())})
	}
	return out
}

// Histogram accumulates observations into fixed cumulative buckets. A
// mutex (not per-bucket atomics) keeps every scrape's bucket/_sum/_count
// view consistent — the exposition's own invariant (+Inf == _count) must
// hold mid-load, and observations are per-HTTP-request, so contention is
// negligible next to handler work.
type Histogram struct {
	buckets []float64 // upper bounds, ascending; +Inf is implicit
	mu      sync.Mutex
	counts  []int64
	inf     int64
	sum     float64
	count   int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.buckets, v)
	h.mu.Lock()
	if idx < len(h.counts) {
		h.counts[idx]++
	} else {
		h.inf++
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// snapshot returns (cumulative bucket counts, sum, count) atomically.
func (h *Histogram) snapshot() ([]int64, float64, int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]int64, len(h.buckets)+1)
	var acc int64
	for i := range h.counts {
		acc += h.counts[i]
		cum[i] = acc
	}
	cum[len(h.buckets)] = acc + h.inf
	return cum, h.sum, h.count
}

// HistogramVec is a family of histograms keyed by a label tuple, all
// sharing one bucket layout.
type HistogramVec struct {
	name    string
	labels  []string
	buckets []float64
	mu      sync.Mutex
	kids    map[string]*Histogram
}

// DefBuckets is a latency layout in seconds spanning sub-millisecond
// handler times out to multi-second simulation waits.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// HistogramVec registers and returns a labelled histogram family.
// buckets must be ascending; nil selects DefBuckets.
func (r *Registry) HistogramVec(name, help string, labels []string, buckets []float64) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: %s buckets not ascending", name))
		}
	}
	v := &HistogramVec{name: name, labels: labels, buckets: buckets, kids: make(map[string]*Histogram)}
	r.register(&family{
		name: name, help: help, kind: KindHistogram, labels: labels,
		writeTo: v.write,
	})
	return v
}

// With returns (creating if needed) the child histogram for the label
// values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.kids[key]
	if !ok {
		h = &Histogram{buckets: v.buckets, counts: make([]int64, len(v.buckets))}
		v.kids[key] = h
	}
	return h
}

// write renders the family body: per-child cumulative buckets with a
// le="+Inf" terminal, then _sum and _count.
func (v *HistogramVec) write(w io.Writer) error {
	v.mu.Lock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*Histogram, len(keys))
	for i, k := range keys {
		kids[i] = v.kids[k]
	}
	v.mu.Unlock()

	for i, key := range keys {
		var values []string
		if key != "" || len(v.labels) > 0 {
			values = strings.Split(key, "\x00")
		}
		cum, sum, count := kids[i].snapshot()
		for b, ub := range v.buckets {
			if err := writeSample(w, v.name+"_bucket", append(append([]string{}, v.labels...), "le"), append(append([]string{}, values...), formatFloat(ub)), float64(cum[b])); err != nil {
				return err
			}
		}
		if err := writeSample(w, v.name+"_bucket", append(append([]string{}, v.labels...), "le"), append(append([]string{}, values...), "+Inf"), float64(cum[len(v.buckets)])); err != nil {
			return err
		}
		if err := writeSample(w, v.name+"_sum", v.labels, values, sum); err != nil {
			return err
		}
		if err := writeSample(w, v.name+"_count", v.labels, values, float64(count)); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders every family in the text exposition format,
// sorted by family name, samples sorted by label values, so output is
// deterministic for a given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		if f.writeTo != nil {
			if err := f.writeTo(w); err != nil {
				return err
			}
			continue
		}
		samples := f.collect()
		sort.Slice(samples, func(i, j int) bool {
			return strings.Join(samples[i].Labels, "\x00") < strings.Join(samples[j].Labels, "\x00")
		})
		for _, s := range samples {
			if err := writeSample(w, f.name, f.labels, s.Labels, s.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample emits one series line: name{label="value",...} value
func writeSample(w io.Writer, name string, labels, values []string, v float64) error {
	var sb strings.Builder
	sb.WriteString(name)
	if len(values) > 0 {
		sb.WriteByte('{')
		for i, lv := range values {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(labels[i])
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(lv))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	_, err := fmt.Fprintf(w, "%s %s\n", sb.String(), formatFloat(v))
	return err
}

// formatFloat renders a sample value: integers without an exponent or
// trailing zeros, everything else in Go's shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel applies the exposition format's label-value escaping.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp applies the exposition format's HELP escaping.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
