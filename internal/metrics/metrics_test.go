package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCounterAndGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Total jobs.")
	c.Add(3)
	r.GaugeFunc("queue_depth", "Queued jobs.", func() float64 { return 7 })
	r.GaugeVecFunc("jobs", "Jobs by state.", []string{"state"}, func() []Sample {
		return []Sample{{Labels: []string{"done"}, Value: 2}, {Labels: []string{"queued"}, Value: 1}}
	})

	out := string(render(t, r))
	for _, want := range []string{
		"# TYPE jobs_total counter",
		"jobs_total 3",
		"# TYPE queue_depth gauge",
		"queue_depth 7",
		`jobs{state="done"} 2`,
		`jobs{state="queued"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionIsDeterministicAndParses(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "Requests.", "endpoint", "code")
	v.With("/v1/jobs", "200").Add(5)
	v.With("/v1/jobs", "400").Inc()
	v.With("/v1/stats", "200").Add(2)
	h := r.HistogramVec("request_seconds", "Latency.", []string{"endpoint"}, []float64{0.01, 0.1, 1})
	h.With("/v1/jobs").Observe(0.005)
	h.With("/v1/jobs").Observe(0.5)
	h.With("/v1/jobs").Observe(99)

	a, b := render(t, r), render(t, r)
	if !bytes.Equal(a, b) {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", a, b)
	}

	sc, err := Parse(a)
	if err != nil {
		t.Fatalf("self-render failed to parse: %v\n%s", err, a)
	}
	if got, ok := sc.Value("http_requests_total", "endpoint=/v1/jobs", "code=200"); !ok || got != 5 {
		t.Fatalf("requests{jobs,200} = %v,%v want 5", got, ok)
	}
	if got := sc.Sum("http_requests_total"); got != 8 {
		t.Fatalf("sum requests = %v, want 8", got)
	}
	// Histogram invariants: cumulative buckets, +Inf == count.
	if got, ok := sc.Value("request_seconds_bucket", "endpoint=/v1/jobs", "le=+Inf"); !ok || got != 3 {
		t.Fatalf("+Inf bucket = %v,%v want 3", got, ok)
	}
	if got, ok := sc.Value("request_seconds_count", "endpoint=/v1/jobs"); !ok || got != 3 {
		t.Fatalf("count = %v,%v want 3", got, ok)
	}
	if got, ok := sc.Value("request_seconds_bucket", "endpoint=/v1/jobs", "le=0.01"); !ok || got != 1 {
		t.Fatalf("0.01 bucket = %v,%v want 1", got, ok)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("weird_total", "Weird.", "path")
	v.With(`a"b\c` + "\n").Inc()
	out := render(t, r)
	sc, err := Parse(out)
	if err != nil {
		t.Fatalf("escaped exposition failed to parse: %v\n%s", err, out)
	}
	want := `a"b\c` + "\n"
	if got, ok := sc.Value("weird_total", "path="+want); !ok || got != 1 {
		t.Fatalf("escaped label round trip: got %v,%v", got, ok)
	}
}

func TestParseRejectsMalformedPages(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":   "orphan_total 3\n",
		"bad value":             "# TYPE x counter\nx notafloat\n",
		"unterminated labels":   "# TYPE x counter\nx{a=\"b\" 3\n",
		"duplicate series":      "# TYPE x counter\nx 1\nx 2\n",
		"unknown type":          "# TYPE x summary\nx 1\n",
		"type after samples":    "# TYPE x counter\nx 1\n# TYPE x counter\n",
		"histogram without inf": "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_count 2\nh_sum 3\n",
	}
	for name, page := range cases {
		if _, err := Parse([]byte(page)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, page)
		}
	}
}

func TestConcurrentObservationsRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	h := r.HistogramVec("h", "h", nil, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				h.With().Observe(float64(i) / 100)
				if i%100 == 0 {
					render(t, r)
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
	sc, err := Parse(render(t, r))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := sc.Value("h_count"); !ok || got != 4000 {
		t.Fatalf("histogram count = %v,%v want 4000", got, ok)
	}
}
