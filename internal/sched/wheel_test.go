package sched

import (
	"reflect"
	"testing"
)

func due(w *Wheel, cycle int64) []int32 {
	return w.Due(cycle, nil)
}

// TestWheelTieOrder pins the engine's determinism contract: units waking
// at the same cycle drain in ascending ID order regardless of the order
// they were scheduled in.
func TestWheelTieOrder(t *testing.T) {
	w := NewWheel(16, 10)
	for _, id := range []int32{7, 2, 9, 0, 4} {
		w.Schedule(id, 5)
	}
	if got, want := due(w, 5), []int32{0, 2, 4, 7, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Due(5) = %v; want ascending IDs %v", got, want)
	}
	if w.Live() != 0 {
		t.Fatalf("Live() = %d after draining; want 0", w.Live())
	}
}

// TestWheelReschedule verifies that rescheduling supersedes the old entry:
// the unit wakes once, at the newest cycle, and the stale bucket entry is
// dropped when its bucket drains.
func TestWheelReschedule(t *testing.T) {
	w := NewWheel(16, 4)
	w.Schedule(1, 3)
	w.Schedule(1, 6) // supersedes cycle 3
	w.Schedule(2, 3)
	if got, want := due(w, 3), []int32{2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Due(3) = %v; want %v", got, want)
	}
	if got, want := due(w, 6), []int32{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Due(6) = %v; want %v", got, want)
	}
	// Rescheduling to the earlier cycle again must also supersede.
	w.Schedule(3, 9)
	w.Schedule(3, 7)
	if got := due(w, 7); !reflect.DeepEqual(got, []int32{3}) {
		t.Fatalf("Due(7) = %v; want [3]", got)
	}
	if got := due(w, 9); len(got) != 0 {
		t.Fatalf("Due(9) = %v; want empty (stale entry must not fire)", got)
	}
}

// TestWheelMin verifies the earliest-event query and its advance across
// drains.
func TestWheelMin(t *testing.T) {
	w := NewWheel(16, 4)
	if w.Min() != Never {
		t.Fatalf("Min() of empty wheel = %d; want Never", w.Min())
	}
	w.Schedule(0, 10)
	w.Schedule(1, 2)
	if got := w.Min(); got != 2 {
		t.Fatalf("Min() = %d; want 2", got)
	}
	due(w, 2)
	if got := w.Min(); got != 10 {
		t.Fatalf("Min() after drain = %d; want 10", got)
	}
	due(w, 10)
	if got := w.Min(); got != Never {
		t.Fatalf("Min() after all drained = %d; want Never", got)
	}
}

// TestWheelHorizonClamp verifies that a wake beyond the wheel's horizon is
// clamped to its edge — an early wake, which the Wakeable contract makes
// harmless — instead of aliasing into a past bucket.
func TestWheelHorizonClamp(t *testing.T) {
	w := NewWheel(8, 2)
	due(w, 4) // advance the wheel clock
	w.Schedule(0, 4+1000)
	got := w.ScheduledAt(0)
	if got <= 4 || got > 4+7 {
		t.Fatalf("far wake scheduled at %d; want within (4, 11]", got)
	}
	if w.Min() != got {
		t.Fatalf("Min() = %d; want the clamped wake %d", w.Min(), got)
	}
}

// TestWheelUnschedule verifies Schedule(id, Never) removes a pending wake.
func TestWheelUnschedule(t *testing.T) {
	w := NewWheel(8, 2)
	w.Schedule(0, 3)
	w.Schedule(0, Never)
	if w.Live() != 0 {
		t.Fatalf("Live() = %d after unschedule; want 0", w.Live())
	}
	if got := due(w, 3); len(got) != 0 {
		t.Fatalf("Due(3) = %v; want empty", got)
	}
}
