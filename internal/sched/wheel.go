// Package sched provides the scheduling primitives of the calendar-queue
// event engine: the Wakeable contract every simulated unit implements, and
// a calendar wheel ordering unit wake-ups by cycle with a deterministic
// tie-break, so the engine advances straight to the earliest pending event
// instead of ticking every unit every cycle.
package sched

import "math"

// Never is the wake cycle of a unit that can never act again on its own
// (a drained core, an empty network): it sleeps until an external input
// reschedules it, or forever.
const Never = int64(math.MaxInt64)

// Wakeable is the uniform next-wake contract of the event engine, the
// generalization of the idle fast-forward's core-only protocol to every
// unit of the hierarchy.
type Wakeable interface {
	// NextWake reports whether the unit's state provably cannot change
	// before some future cycle, and that cycle (in the unit's own clock
	// domain). ok=false means the unit may make progress — or must record
	// statistics that depend on downstream state — on the very next tick,
	// so the engine keeps ticking it cycle by cycle. A unit that can never
	// act again on its own returns (Never, true).
	//
	// The contract is one-sided: answering earlier than the true wake is
	// always safe (a unit woken early observes no event and reschedules),
	// answering later never is.
	NextWake() (cycle int64, ok bool)
}

// Wheel is a calendar queue over small integer unit IDs. Each bucket
// collects the IDs scheduled for one cycle residue; Due drains the current
// cycle's bucket in ascending ID order, which is the engine's deterministic
// tie-break (it matches the ID-order unit loop of the tick engine exactly).
//
// Rescheduling is lazy: Schedule overwrites the authoritative per-ID wake
// cycle and appends a fresh bucket entry; stale entries are dropped when
// their bucket drains. Wakes beyond the wheel's horizon are clamped to it —
// safe under the Wakeable contract, since a unit woken early reschedules.
type Wheel struct {
	buckets [][]int32
	mask    int64
	wake    []int64 // authoritative wake cycle per ID; Never = unscheduled
	now     int64   // last cycle drained by Due
	minHint int64   // lower bound on the earliest scheduled cycle
	live    int
}

// NewWheel builds a wheel with at least the given horizon (rounded up to a
// power of two) covering ids units, none scheduled.
func NewWheel(horizon, ids int) *Wheel {
	size := 1
	for size < horizon {
		size <<= 1
	}
	w := &Wheel{
		buckets: make([][]int32, size),
		mask:    int64(size - 1),
		wake:    make([]int64, ids),
		minHint: Never,
	}
	for i := range w.wake {
		w.wake[i] = Never
	}
	return w
}

// Live returns the number of currently scheduled units.
func (w *Wheel) Live() int { return w.live }

// ScheduledAt returns the cycle id is scheduled to wake at, or Never.
func (w *Wheel) ScheduledAt(id int32) int64 { return w.wake[id] }

// Schedule (re)schedules id to wake at cycle. Cycles beyond the wheel's
// horizon are clamped to its edge (an early wake, which the Wakeable
// contract makes harmless). Scheduling at an id's current wake cycle is a
// no-op; Never unschedules the id.
func (w *Wheel) Schedule(id int32, cycle int64) {
	if cycle == Never {
		if w.wake[id] != Never {
			w.wake[id] = Never
			w.live--
		}
		return
	}
	if max := w.now + w.mask; cycle > max {
		cycle = max
	}
	if w.wake[id] == cycle {
		return
	}
	if w.wake[id] == Never {
		w.live++
	}
	w.wake[id] = cycle
	b := cycle & w.mask
	w.buckets[b] = append(w.buckets[b], id)
	if cycle < w.minHint {
		w.minHint = cycle
	}
}

// Due appends to dst the IDs scheduled at exactly cycle, in ascending ID
// order, unscheduling them. Entries for other cycles sharing the bucket
// stay; stale entries (superseded by a reschedule) are dropped.
func (w *Wheel) Due(cycle int64, dst []int32) []int32 {
	w.now = cycle
	b := cycle & w.mask
	bucket := w.buckets[b]
	if len(bucket) == 0 {
		return dst
	}
	keep := bucket[:0]
	for _, id := range bucket {
		switch w.wake[id] {
		case cycle:
			w.wake[id] = Never
			w.live--
			dst = append(dst, id)
		case Never:
			// Stale duplicate of an ID already collected (or unscheduled).
		default:
			if w.wake[id]&w.mask == b {
				keep = append(keep, id) // future cycle, same residue
			}
		}
	}
	w.buckets[b] = keep
	// Ascending-ID tie order; buckets are tiny, insertion sort suffices.
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j] < dst[j-1]; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}

// Min returns the earliest scheduled cycle, or Never when nothing is
// scheduled. It advances the wheel's lower-bound hint as it scans, so
// repeated calls stay cheap.
func (w *Wheel) Min() int64 {
	if w.live == 0 {
		w.minHint = Never
		return Never
	}
	if w.minHint <= w.now {
		w.minHint = w.now + 1
	}
	for c := w.minHint; ; c++ {
		for _, id := range w.buckets[c&w.mask] {
			if w.wake[id] == c {
				w.minHint = c
				return c
			}
		}
	}
}
