package config

import (
	"encoding/json"
	"testing"
)

// FuzzKnobSet drives the reflect-based -set knob path parser with
// arbitrary assignments. Any input must either error or apply cleanly to
// a baseline config — never panic inside the reflection walk.
func FuzzKnobSet(f *testing.F) {
	seeds := []string{
		"L2.HitLatency=42",
		"l2.hitlatency=42",
		"DRAM.BandwidthGBs=900.5",
		"L1.MSHREntries=128",
		"NumCores=0",
		"=1",
		"L2.=3",
		"L2..HitLatency=3",
		"L2.HitLatency",
		"L2.HitLatency=notanumber",
		"Nope.Deep.Path=1",
		"L2.HitLatency=999999999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, assignment string) {
		delta, err := DeltaFromSets([]string{assignment})
		if err != nil {
			return
		}
		cfg := Baseline()
		if err := ApplyDelta(&cfg, delta); err != nil {
			// DeltaFromSets accepted the path, so the delta is shaped like
			// the config; value-range rejections are fine, panics are not.
			return
		}
		// A config reached through the knob path must stay canonicalizable.
		cfg.Canonical()

		// The same assignment applied directly must agree with the delta
		// route — the two spellings share one semantics.
		direct := Baseline()
		if err := direct.Set(assignment); err == nil {
			if a, b := direct.Identity(), cfg.Identity(); a != b {
				t.Errorf("Set and DeltaFromSets disagree for %q", assignment)
			}
		}
	})
}

// FuzzConfigDoc feeds arbitrary bytes through ParseConfigDoc — the
// decoder behind -config-file and every inline config/patch a client can
// send. Outputs must either error or survive the full resolve pipeline.
func FuzzConfigDoc(f *testing.F) {
	seeds := []string{
		`{"base":"baseline","L2":{"HitLatency":42}}`,
		`{"base":"baseline"}`,
		`{"base":"nope","L1":{"MSHREntries":1}}`,
		`{"NumCores":16,"DRAM":{"BandwidthGBs":336}}`,
		`{"base":"baseline","NumCores":"sixteen"}`,
		`{}`,
		`null`,
		`[]`,
		`{"base":42}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, patch, err := ParseConfigDoc("fuzz", data)
		if err != nil {
			return
		}
		if cfg != nil {
			if cfg.Validate() == nil {
				cfg.Canonical()
			}
			return
		}
		if patch == nil {
			t.Fatalf("ParseConfigDoc returned neither config, patch nor error for %q", data)
		}
		// Patch values must round-trip through their wire form...
		wire, err := json.Marshal(*patch)
		if err != nil {
			t.Fatalf("accepted patch does not marshal: %v", err)
		}
		var back Patch
		if err := json.Unmarshal(wire, &back); err != nil {
			t.Fatalf("marshaled patch does not decode: %v\n%s", err, wire)
		}
		// ...and Apply must resolve or reject, never panic.
		if applied, err := patch.Apply(); err == nil {
			applied.Canonical()
		}
	})
}
