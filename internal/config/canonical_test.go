package config

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestConfigIDGolden pins the content-address schema for every preset
// (plus the two parameterized builders): these hashes may only change
// together with a core.SimVersion bump, because disk caches and job IDs
// are keyed on them.
func TestConfigIDGolden(t *testing.T) {
	golden := []struct {
		name string
		want string
	}{
		{"All-4x", "52f6ac910015fe5b"},
		{"DRAM-4x", "13fda137c6aef050"},
		{"HBM", "13fda137c6aef050"}, // = DRAM-4x renamed: same silicon, same ID
		{"L1+L2-4x", "758c4a7dadbd939e"},
		{"L1-4x", "07946919daf7c360"},
		{"L2+DRAM-4x", "7dfb231ddd570fda"},
		{"L2-4x", "b22010dfd670bf11"},
		{"P-dram", "7391d3db15013bfe"},
		{"P-inf", "fed63a17e0a89ed2"},
		{"asymmetric-16+48-only", "e15df1e5a4fcf1ed"},
		{"baseline", "34a43fc5d8c9d06c"},
		{"cost-effective-16+48", "8a271fe936d0cf0a"},
		{"cost-effective-16+68", "15d8bc05c1bc30de"},
		{"cost-effective-32+52", "366374f45e594b83"},
	}
	if presets := Names(); len(presets) != len(golden) {
		t.Fatalf("%d presets but %d golden IDs — pin the new preset here", len(presets), len(golden))
	}
	for _, tc := range golden {
		c, err := ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.ConfigID(); got != tc.want {
			t.Errorf("%s: ConfigID = %q, want %q (cell-identity schema changed — bump core.SimVersion)", tc.name, got, tc.want)
		}
	}
	if got := FixedL1MissLatency(300).ConfigID(); got != "5f479015e93f3a10" {
		t.Errorf("fixed-lat-300: ConfigID = %q (cell-identity schema changed — bump core.SimVersion)", got)
	}
	if got := WithCoreClock(Baseline(), 1600).ConfigID(); got != "e71a748fde6f3168" {
		t.Errorf("baseline-core-1600MHz: ConfigID = %q (cell-identity schema changed — bump core.SimVersion)", got)
	}
}

func TestConfigIDExcludesName(t *testing.T) {
	a := Baseline()
	b := a
	b.Name = "renamed"
	if a.ConfigID() != b.ConfigID() {
		t.Fatal("renaming a config changed its identity")
	}
}

// modeDeadPairs enumerates different spellings of the same silicon:
// leftover values in fields the configuration's mode never consults.
func modeDeadPairs() []struct {
	name string
	a, b Config
} {
	var pairs []struct {
		name string
		a, b Config
	}
	add := func(name string, a, b Config) {
		pairs = append(pairs, struct {
			name string
			a, b Config
		}{name, a, b})
	}

	a, b := Baseline(), Baseline()
	a.FixedL1MissLatency = 777 // only ModeFixedL1MissLat reads it
	add("normal ignores FixedL1MissLatency", a, b)

	a, b = Baseline(), Baseline()
	a.IdealL2HitLatency, a.IdealMemLatency = 1, 2 // only ModeInfiniteBW reads them
	add("normal ignores ideal latencies", a, b)

	a, b = Baseline(), Baseline()
	a.DRAM.InfiniteLatency = 1234 // dead unless DRAM.Infinite
	add("finite DRAM ignores InfiniteLatency", a, b)

	a, b = InfiniteDRAM(), InfiniteDRAM()
	a.DRAM.Timing.RCD = 99 // P_DRAM bypasses the FR-FCFS machinery
	a.DRAM.SchedQueueEntries = 1
	a.DRAM.BanksPerChip = 3
	add("infinite DRAM ignores FR-FCFS knobs", a, b)

	a, b = InfiniteBW(), InfiniteBW()
	a.Icnt.ReqFlitBytes = 1 // P∞ never builds the crossbars
	a.L1.MSHREntries = 7    // ...or the L1 miss path
	a.DRAM.SchedQueueEntries = 3
	a.L2.NumBanks = 24 // only the functional tag-array geometry is live
	add("P-inf ignores the bandwidth hierarchy", a, b)

	a, b = FixedL1MissLatency(300), FixedL1MissLatency(300)
	a.L2.MSHREntries = 5 // everything beyond the L1 is dead
	a.Icnt.ReplyFlitBytes = 96
	a.DRAM.BusWidthBits = 768
	a.IdealMemLatency = 9
	add("fixed-lat ignores the hierarchy", a, b)

	return pairs
}

func TestConfigIDModeDeadInvariance(t *testing.T) {
	for _, tc := range modeDeadPairs() {
		if tc.a.ConfigID() != tc.b.ConfigID() {
			t.Errorf("%s: IDs differ (%s vs %s)", tc.name, tc.a.ConfigID(), tc.b.ConfigID())
		}
	}
}

// TestCanonicalOfValidConfigValidates: canonicalization must never turn
// a valid configuration invalid, or twin detection would reject configs
// the simulator accepts.
func TestCanonicalOfValidConfigValidates(t *testing.T) {
	for name, c := range Presets() {
		canon := c.Canonical()
		if err := canon.Validate(); err != nil {
			t.Errorf("%s: canonical form invalid: %v", name, err)
		}
		if canon.ConfigID() != c.ConfigID() {
			t.Errorf("%s: canonicalization is not idempotent for identity", name)
		}
	}
	for _, c := range []Config{FixedL1MissLatency(120), WithCoreClock(Baseline(), 1600)} {
		canon := c.Canonical()
		if err := canon.Validate(); err != nil {
			t.Errorf("%s: canonical form invalid: %v", c.Name, err)
		}
	}
}

// liveFieldExemptions lists Config fields that are dead under the
// baseline's ModeNormal and are covered by the mode-specific checks
// below instead.
var liveFieldExemptions = map[string]bool{
	"Name":                 true, // label, excluded by design
	"FixedL1MissLatency":   true,
	"IdealL2HitLatency":    true,
	"IdealMemLatency":      true,
	"DRAM.InfiniteLatency": true,
}

// TestConfigIDDistinguishesEveryLiveField perturbs each leaf field of
// the baseline configuration and checks the identity moves — no knob
// that can change the simulated hardware may be silently excluded from
// the content address. Mode-dead fields are exercised under the mode
// that reads them.
func TestConfigIDDistinguishesEveryLiveField(t *testing.T) {
	base := Baseline()
	baseID := base.ConfigID()
	var walk func(v reflect.Value, path string)
	walk = func(v reflect.Value, path string) {
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			name := f.Name
			if path != "" {
				name = path + "." + f.Name
			}
			fv := v.Field(i)
			if fv.Kind() == reflect.Struct {
				walk(fv, name)
				continue
			}
			if liveFieldExemptions[name] {
				continue
			}
			mut := base
			mv := reflect.ValueOf(&mut).Elem()
			for _, seg := range splitPath(name) {
				mv = mv.FieldByName(seg)
			}
			switch mv.Kind() {
			case reflect.Int, reflect.Int64:
				mv.SetInt(mv.Int() + 1)
			case reflect.Uint8:
				mv.SetUint(mv.Uint() + 1)
			case reflect.Float64:
				mv.SetFloat(mv.Float() + 0.5)
			case reflect.Bool:
				mv.SetBool(!mv.Bool())
			case reflect.String:
				mv.SetString(mv.String() + "x")
			default:
				t.Fatalf("unhandled field kind %v for %s — extend this test", mv.Kind(), name)
			}
			if mut.ConfigID() == baseID {
				t.Errorf("perturbing %s did not change the ConfigID", name)
			}
		}
	}
	walk(reflect.ValueOf(base), "")

	// The exempted fields must move the ID under the mode that reads them.
	fl := FixedL1MissLatency(300)
	fl2 := FixedL1MissLatency(301)
	if fl.ConfigID() == fl2.ConfigID() {
		t.Error("FixedL1MissLatency excluded from fixed-lat identity")
	}
	pinf, pinf2 := InfiniteBW(), InfiniteBW()
	pinf2.IdealL2HitLatency++
	if pinf.ConfigID() == pinf2.ConfigID() {
		t.Error("IdealL2HitLatency excluded from P-inf identity")
	}
	pinf2 = InfiniteBW()
	pinf2.IdealMemLatency++
	if pinf.ConfigID() == pinf2.ConfigID() {
		t.Error("IdealMemLatency excluded from P-inf identity")
	}
	pdram, pdram2 := InfiniteDRAM(), InfiniteDRAM()
	pdram2.DRAM.InfiniteLatency++
	if pdram.ConfigID() == pdram2.ConfigID() {
		t.Error("InfiniteLatency excluded from P-dram identity")
	}
}

func splitPath(path string) []string {
	var segs []string
	start := 0
	for i := 0; i <= len(path); i++ {
		if i == len(path) || path[i] == '.' {
			segs = append(segs, path[start:i])
			start = i + 1
		}
	}
	return segs
}

// TestConfigIDJSONKeyOrderInvariance covers the wire path: the same
// inline config serialized with different key orders must land on one
// identity.
func TestConfigIDJSONKeyOrderInvariance(t *testing.T) {
	full, err := json.Marshal(Baseline())
	if err != nil {
		t.Fatal(err)
	}
	var a Config
	if err := json.Unmarshal(full, &a); err != nil {
		t.Fatal(err)
	}
	// Re-serialize through a generic map (which re-orders keys) and parse
	// again: the identity must survive the round trip.
	var m map[string]any
	if err := json.Unmarshal(full, &m); err != nil {
		t.Fatal(err)
	}
	reordered, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var b Config
	if err := json.Unmarshal(reordered, &b); err != nil {
		t.Fatal(err)
	}
	if a.ConfigID() != b.ConfigID() {
		t.Fatal("JSON key order changed the ConfigID")
	}
	if a.ConfigID() != Baseline().ConfigID() {
		t.Fatal("JSON round trip changed the ConfigID")
	}
}

func TestModeJSONRoundTrip(t *testing.T) {
	for m := ModeNormal; m <= ModeFixedL1MissLat; m++ {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var got Mode
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip %v -> %s -> %v", m, data, got)
		}
	}
	var byNumber Mode
	if err := json.Unmarshal([]byte("1"), &byNumber); err != nil || byNumber != ModeInfiniteBW {
		t.Fatalf("numeric mode = %v, %v", byNumber, err)
	}
	var bad Mode
	if err := json.Unmarshal([]byte(`"turbo"`), &bad); err == nil {
		t.Fatal("unknown mode name accepted")
	}
}
