// Package config defines the architectural parameter space of the simulated
// GPU memory hierarchy.
//
// The parameters mirror Table I (baseline GTX 480 / Fermi) and Table III
// (design space) of Dublish, Nagarajan and Topham, "Evaluating and Mitigating
// Bandwidth Bottlenecks Across the Memory Hierarchy in GPUs", ISPASS 2017.
// Presets construct the exact configurations the paper evaluates: the 4×
// scaled design points of Fig. 10, the cost-effective asymmetric-crossbar
// configurations of Fig. 12, the ideal memory systems of Table II (P∞ and
// P_DRAM), and the fixed-L1-miss-latency mode of Fig. 3.
package config

import (
	"errors"
	"fmt"
)

// Mode selects between the detailed memory hierarchy and the idealized
// memory systems used by the paper's motivation studies.
type Mode uint8

const (
	// ModeNormal simulates the full, bandwidth-limited memory hierarchy.
	ModeNormal Mode = iota
	// ModeInfiniteBW is the paper's P∞: L1 misses bypass all queues and
	// return after the minimum access latency (120 core cycles for an L2
	// hit, 220 for an L2 miss), with no structural limits anywhere.
	ModeInfiniteBW
	// ModeFixedL1MissLat returns every L1 miss after exactly
	// FixedL1MissLatency core cycles (the Fig. 3 latency sweep).
	ModeFixedL1MissLat
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeInfiniteBW:
		return "infinite-bw"
	case ModeFixedL1MissLat:
		return "fixed-l1-miss-latency"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// CoreConfig holds per-SM (SIMT core) parameters.
type CoreConfig struct {
	NumCores     int     // SMs in the GPU (15 on GTX 480)
	WarpsPerCore int     // resident warps per SM (1536 threads / 32 = 48)
	ClockMHz     float64 // core clock (1400 MHz baseline)
	IssueWidth   int     // instructions issued per cycle per SM

	// MemPipelineWidth is the number of in-flight memory transactions the
	// load-store unit can buffer ("Memory pipeline width" in Table III;
	// 10 baseline, 40 scaled).
	MemPipelineWidth int

	// ALULatency is the execution latency of arithmetic instructions in
	// core cycles. ALUs are fully pipelined.
	ALULatency int
}

// L1Config holds private L1 data-cache parameters (one per SM) and the
// instruction-cache parameters that share the L1 miss path.
type L1Config struct {
	SizeBytes        int // 16 KB baseline
	LineBytes        int // 128 B
	Ways             int // 4-way
	MSHREntries      int // 32 baseline, 128 scaled, 48 cost-effective
	MSHRMaxMerge     int // secondary misses merged per MSHR entry
	MissQueueEntries int // 8 baseline, 32 scaled/cost-effective
	HitLatency       int // core cycles for an L1 hit to write back
	ResponseFIFO     int // reply-network ejection buffer, in packets

	// Instruction cache (shares the core's miss path to L2).
	ICacheSizeBytes int
	ICacheWays      int
}

// IcntConfig holds the crossbar interconnect parameters. The request network
// carries core→L2 traffic; the reply network carries L2→core traffic. The
// baseline is symmetric 32+32 B flits; the paper's cost-effective
// configurations make it asymmetric (16+48, 16+68, 32+52).
type IcntConfig struct {
	ReqFlitBytes     int // request-network flit size (32 B baseline)
	ReplyFlitBytes   int // reply-network flit size (32 B baseline)
	InputBufFlits    int // per-source injection buffer, in flits
	OutputBufPackets int // per-destination ejection buffer, in packets
	LatencyCycles    int // fixed traversal pipeline depth, in icnt cycles
	ClockMHz         float64
}

// L2Config holds shared L2 cache parameters. The L2 is banked; every queue
// and MSHR figure below is per bank, matching GPGPU-Sim's per-sub-partition
// organization.
type L2Config struct {
	SizeBytes            int // 768 KB total baseline
	LineBytes            int // 128 B
	Ways                 int // 8-way
	NumBanks             int // 12 baseline, 48 scaled
	MSHREntries          int // 32 baseline, 128 scaled
	MSHRMaxMerge         int
	MissQueueEntries     int // 8 baseline, 32 scaled/cost-effective
	AccessQueueEntries   int // 8 baseline, 32 scaled/cost-effective
	ResponseQueueEntries int // 8 baseline, 32 scaled/cost-effective
	DataPortBytes        int // 32 B baseline, 128 B scaled
	TagLatency           int // pipeline depth of an L2 access, in L2 cycles
	ClockMHz             float64
}

// DRAMTiming holds GDDR5 timing constraints in DRAM command-clock cycles
// (Table I, "DRAM Timing Constraints").
type DRAMTiming struct {
	CCD  int // column-to-column delay
	RRD  int // row-to-row activate delay (different banks)
	RCD  int // row-to-column (activate-to-read/write) delay
	RAS  int // row active time (activate-to-precharge)
	RP   int // row precharge time
	RC   int // row cycle time (activate-to-activate, same bank)
	CL   int // CAS (read) latency
	WL   int // write latency
	CDLR int // last-write-data to read command delay
	WR   int // write recovery time (last write data to precharge)
}

// DRAMConfig holds off-chip memory parameters. One channel per memory
// partition; the two 32-bit chips of a partition operate in lockstep, so the
// per-partition bus is BusWidthBits/NumPartitions wide.
type DRAMConfig struct {
	NumPartitions      int     // 6 on GTX 480
	BusWidthBits       int     // 384 baseline, 1536 scaled/HBM (total)
	DataRate           int     // transfers per command clock (4 for GDDR5)
	BanksPerChip       int     // 16 baseline, 64 scaled
	RowBytes           int     // per-partition row-buffer size
	SchedQueueEntries  int     // FR-FCFS scheduler queue (16 baseline, 64 scaled)
	ReturnQueueEntries int     // DRAM→L2 response queue
	CtrlLatency        int     // fixed controller pipeline, in DRAM cycles
	ClockMHz           float64 // command clock (924 MHz)
	Timing             DRAMTiming

	// Infinite replaces the DRAM with a fixed-latency, infinite-bandwidth
	// pipe (the paper's P_DRAM). InfiniteLatency is in core cycles.
	Infinite        bool
	InfiniteLatency int
}

// Config is the complete architectural description of one simulated GPU.
type Config struct {
	Name string // human-readable configuration name

	Core CoreConfig
	L1   L1Config
	Icnt IcntConfig
	L2   L2Config
	DRAM DRAMConfig

	Mode Mode
	// FixedL1MissLatency is the constant L1 miss latency, in core cycles,
	// used when Mode == ModeFixedL1MissLat.
	FixedL1MissLatency int

	// IdealL2HitLatency and IdealMemLatency are the minimum access
	// latencies used by ModeInfiniteBW (120 and 220 core cycles in the
	// paper).
	IdealL2HitLatency int
	IdealMemLatency   int

	// MaxCycles aborts the simulation after this many core cycles
	// (safety net against livelock; 0 means no limit).
	MaxCycles int64
}

// LinesPerL2Bank returns the number of cache lines per L2 bank.
func (c *Config) LinesPerL2Bank() int {
	return c.L2.SizeBytes / c.L2.LineBytes / c.L2.NumBanks
}

// SetsPerL2Bank returns the number of sets per L2 bank.
func (c *Config) SetsPerL2Bank() int {
	return c.LinesPerL2Bank() / c.L2.Ways
}

// L1Sets returns the number of sets in one L1 data cache.
func (c *Config) L1Sets() int {
	return c.L1.SizeBytes / c.L1.LineBytes / c.L1.Ways
}

// BanksPerPartition returns the number of L2 banks attached to one memory
// partition (one crossbar node).
func (c *Config) BanksPerPartition() int {
	return c.L2.NumBanks / c.DRAM.NumPartitions
}

// PartitionBusBytes returns the per-partition DRAM data-bus width in bytes.
func (c *Config) PartitionBusBytes() int {
	return c.DRAM.BusWidthBits / c.DRAM.NumPartitions / 8
}

// DRAMBurstCycles returns the number of DRAM command-clock cycles the data
// bus is occupied transferring one cache line.
func (c *Config) DRAMBurstCycles() int {
	bytesPerCycle := c.PartitionBusBytes() * c.DRAM.DataRate
	n := (c.L2.LineBytes + bytesPerCycle - 1) / bytesPerCycle
	if n < 1 {
		n = 1
	}
	return n
}

// Validate reports an error if the configuration is internally inconsistent.
func (c *Config) Validate() error {
	var errs []error
	check := func(ok bool, format string, args ...any) {
		if !ok {
			errs = append(errs, fmt.Errorf(format, args...))
		}
	}
	check(c.Core.NumCores > 0, "NumCores must be positive, got %d", c.Core.NumCores)
	check(c.Core.WarpsPerCore > 0, "WarpsPerCore must be positive, got %d", c.Core.WarpsPerCore)
	check(c.Core.ClockMHz > 0, "core clock must be positive, got %g", c.Core.ClockMHz)
	check(c.Core.IssueWidth > 0, "IssueWidth must be positive, got %d", c.Core.IssueWidth)
	check(c.Core.MemPipelineWidth > 0, "MemPipelineWidth must be positive, got %d", c.Core.MemPipelineWidth)
	check(c.L1.LineBytes > 0 && isPow2(c.L1.LineBytes), "L1 line size must be a power of two, got %d", c.L1.LineBytes)
	check(c.L1.LineBytes == c.L2.LineBytes, "L1 and L2 line sizes must match (%d vs %d)", c.L1.LineBytes, c.L2.LineBytes)
	check(c.Mode == ModeInfiniteBW || c.L1.MSHREntries > 0, "L1 MSHR entries must be positive, got %d", c.L1.MSHREntries)
	if c.L1.SizeBytes > 0 && c.L1.Ways > 0 && c.L1.LineBytes > 0 {
		check(c.L1.SizeBytes%(c.L1.LineBytes*c.L1.Ways) == 0,
			"L1 size %d not divisible by line*ways %d", c.L1.SizeBytes, c.L1.LineBytes*c.L1.Ways)
	}
	check(c.L2.NumBanks > 0, "L2 banks must be positive, got %d", c.L2.NumBanks)
	check(c.DRAM.NumPartitions > 0, "DRAM partitions must be positive, got %d", c.DRAM.NumPartitions)
	if c.L2.NumBanks > 0 && c.DRAM.NumPartitions > 0 {
		check(c.L2.NumBanks%c.DRAM.NumPartitions == 0,
			"L2 banks (%d) must be a multiple of DRAM partitions (%d)", c.L2.NumBanks, c.DRAM.NumPartitions)
	}
	if c.L2.SizeBytes > 0 && c.L2.NumBanks > 0 && c.L2.Ways > 0 && c.L2.LineBytes > 0 {
		check(c.L2.SizeBytes%(c.L2.NumBanks*c.L2.Ways*c.L2.LineBytes) == 0,
			"L2 size %d not divisible across %d banks × %d ways", c.L2.SizeBytes, c.L2.NumBanks, c.L2.Ways)
	}
	check(c.Icnt.ReqFlitBytes > 0, "request flit size must be positive, got %d", c.Icnt.ReqFlitBytes)
	check(c.Icnt.ReplyFlitBytes > 0, "reply flit size must be positive, got %d", c.Icnt.ReplyFlitBytes)
	check(c.DRAM.BusWidthBits%(c.DRAM.NumPartitions*8) == 0,
		"DRAM bus width %d bits must divide evenly across %d partitions", c.DRAM.BusWidthBits, c.DRAM.NumPartitions)
	if c.Mode == ModeFixedL1MissLat {
		check(c.FixedL1MissLatency >= 0, "FixedL1MissLatency must be non-negative, got %d", c.FixedL1MissLatency)
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("config %q: %w", c.Name, errors.Join(errs...))
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
