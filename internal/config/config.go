// Package config defines the architectural parameter space of the simulated
// GPU memory hierarchy.
//
// The parameters mirror Table I (baseline GTX 480 / Fermi) and Table III
// (design space) of Dublish, Nagarajan and Topham, "Evaluating and Mitigating
// Bandwidth Bottlenecks Across the Memory Hierarchy in GPUs", ISPASS 2017.
// Presets construct the exact configurations the paper evaluates: the 4×
// scaled design points of Fig. 10, the cost-effective asymmetric-crossbar
// configurations of Fig. 12, the ideal memory systems of Table II (P∞ and
// P_DRAM), and the fixed-L1-miss-latency mode of Fig. 3.
package config

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Mode selects between the detailed memory hierarchy and the idealized
// memory systems used by the paper's motivation studies.
type Mode uint8

const (
	// ModeNormal simulates the full, bandwidth-limited memory hierarchy.
	ModeNormal Mode = iota
	// ModeInfiniteBW is the paper's P∞: L1 misses bypass all queues and
	// return after the minimum access latency (120 core cycles for an L2
	// hit, 220 for an L2 miss), with no structural limits anywhere.
	ModeInfiniteBW
	// ModeFixedL1MissLat returns every L1 miss after exactly
	// FixedL1MissLatency core cycles (the Fig. 3 latency sweep).
	ModeFixedL1MissLat
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeInfiniteBW:
		return "infinite-bw"
	case ModeFixedL1MissLat:
		return "fixed-l1-miss-latency"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// ParseMode is the inverse of Mode.String.
func ParseMode(s string) (Mode, error) {
	for m := ModeNormal; m <= ModeFixedL1MissLat; m++ {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("config: unknown mode %q (known: normal, infinite-bw, fixed-l1-miss-latency)", s)
}

// MarshalJSON encodes known modes by name ("normal", "infinite-bw", ...)
// so config files and GET /v1/configs stay readable; out-of-range values
// fall back to their numeric form rather than failing, keeping Config
// always marshalable.
func (m Mode) MarshalJSON() ([]byte, error) {
	if m > ModeFixedL1MissLat {
		return json.Marshal(uint8(m))
	}
	return json.Marshal(m.String())
}

// UnmarshalJSON accepts either a mode name or its numeric value.
func (m *Mode) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err == nil {
		v, err := ParseMode(name)
		if err != nil {
			return err
		}
		*m = v
		return nil
	}
	var n uint8
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("config: mode must be a name or a number, got %s", data)
	}
	*m = Mode(n)
	return nil
}

// CoreConfig holds per-SM (SIMT core) parameters.
type CoreConfig struct {
	NumCores     int     // SMs in the GPU (15 on GTX 480)
	WarpsPerCore int     // resident warps per SM (1536 threads / 32 = 48)
	ClockMHz     float64 // core clock (1400 MHz baseline)
	IssueWidth   int     // instructions issued per cycle per SM

	// MemPipelineWidth is the number of in-flight memory transactions the
	// load-store unit can buffer ("Memory pipeline width" in Table III;
	// 10 baseline, 40 scaled).
	MemPipelineWidth int

	// ALULatency is the execution latency of arithmetic instructions in
	// core cycles. ALUs are fully pipelined.
	ALULatency int
}

// L1Config holds private L1 data-cache parameters (one per SM) and the
// instruction-cache parameters that share the L1 miss path.
type L1Config struct {
	SizeBytes        int // 16 KB baseline
	LineBytes        int // 128 B
	Ways             int // 4-way
	MSHREntries      int // 32 baseline, 128 scaled, 48 cost-effective
	MSHRMaxMerge     int // secondary misses merged per MSHR entry
	MissQueueEntries int // 8 baseline, 32 scaled/cost-effective
	HitLatency       int // core cycles for an L1 hit to write back
	ResponseFIFO     int // reply-network ejection buffer, in packets

	// Instruction cache (shares the core's miss path to L2).
	ICacheSizeBytes int
	ICacheWays      int
}

// IcntConfig holds the crossbar interconnect parameters. The request network
// carries core→L2 traffic; the reply network carries L2→core traffic. The
// baseline is symmetric 32+32 B flits; the paper's cost-effective
// configurations make it asymmetric (16+48, 16+68, 32+52).
type IcntConfig struct {
	ReqFlitBytes     int // request-network flit size (32 B baseline)
	ReplyFlitBytes   int // reply-network flit size (32 B baseline)
	InputBufFlits    int // per-source injection buffer, in flits
	OutputBufPackets int // per-destination ejection buffer, in packets
	LatencyCycles    int // fixed traversal pipeline depth, in icnt cycles
	ClockMHz         float64
}

// L2Config holds shared L2 cache parameters. The L2 is banked; every queue
// and MSHR figure below is per bank, matching GPGPU-Sim's per-sub-partition
// organization.
type L2Config struct {
	SizeBytes            int // 768 KB total baseline
	LineBytes            int // 128 B
	Ways                 int // 8-way
	NumBanks             int // 12 baseline, 48 scaled
	MSHREntries          int // 32 baseline, 128 scaled
	MSHRMaxMerge         int
	MissQueueEntries     int // 8 baseline, 32 scaled/cost-effective
	AccessQueueEntries   int // 8 baseline, 32 scaled/cost-effective
	ResponseQueueEntries int // 8 baseline, 32 scaled/cost-effective
	DataPortBytes        int // 32 B baseline, 128 B scaled
	TagLatency           int // pipeline depth of an L2 access, in L2 cycles
	ClockMHz             float64
}

// DRAMTiming holds GDDR5 timing constraints in DRAM command-clock cycles
// (Table I, "DRAM Timing Constraints").
type DRAMTiming struct {
	CCD  int // column-to-column delay
	RRD  int // row-to-row activate delay (different banks)
	RCD  int // row-to-column (activate-to-read/write) delay
	RAS  int // row active time (activate-to-precharge)
	RP   int // row precharge time
	RC   int // row cycle time (activate-to-activate, same bank)
	CL   int // CAS (read) latency
	WL   int // write latency
	CDLR int // last-write-data to read command delay
	WR   int // write recovery time (last write data to precharge)
}

// DRAMConfig holds off-chip memory parameters. One channel per memory
// partition; the two 32-bit chips of a partition operate in lockstep, so the
// per-partition bus is BusWidthBits/NumPartitions wide.
type DRAMConfig struct {
	NumPartitions      int     // 6 on GTX 480
	BusWidthBits       int     // 384 baseline, 1536 scaled/HBM (total)
	DataRate           int     // transfers per command clock (4 for GDDR5)
	BanksPerChip       int     // 16 baseline, 64 scaled
	RowBytes           int     // per-partition row-buffer size
	SchedQueueEntries  int     // FR-FCFS scheduler queue (16 baseline, 64 scaled)
	ReturnQueueEntries int     // DRAM→L2 response queue
	CtrlLatency        int     // fixed controller pipeline, in DRAM cycles
	ClockMHz           float64 // command clock (924 MHz)
	Timing             DRAMTiming

	// Infinite replaces the DRAM with a fixed-latency, infinite-bandwidth
	// pipe (the paper's P_DRAM). InfiniteLatency is in core cycles.
	Infinite        bool
	InfiniteLatency int
}

// Config is the complete architectural description of one simulated GPU.
type Config struct {
	Name string // human-readable configuration name

	Core CoreConfig
	L1   L1Config
	Icnt IcntConfig
	L2   L2Config
	DRAM DRAMConfig

	Mode Mode
	// FixedL1MissLatency is the constant L1 miss latency, in core cycles,
	// used when Mode == ModeFixedL1MissLat.
	FixedL1MissLatency int

	// IdealL2HitLatency and IdealMemLatency are the minimum access
	// latencies used by ModeInfiniteBW (120 and 220 core cycles in the
	// paper).
	IdealL2HitLatency int
	IdealMemLatency   int

	// MaxCycles aborts the simulation after this many core cycles
	// (safety net against livelock; 0 means no limit).
	MaxCycles int64
}

// LinesPerL2Bank returns the number of cache lines per L2 bank.
func (c *Config) LinesPerL2Bank() int {
	return c.L2.SizeBytes / c.L2.LineBytes / c.L2.NumBanks
}

// SetsPerL2Bank returns the number of sets per L2 bank.
func (c *Config) SetsPerL2Bank() int {
	return c.LinesPerL2Bank() / c.L2.Ways
}

// L1Sets returns the number of sets in one L1 data cache.
func (c *Config) L1Sets() int {
	return c.L1.SizeBytes / c.L1.LineBytes / c.L1.Ways
}

// BanksPerPartition returns the number of L2 banks attached to one memory
// partition (one crossbar node).
func (c *Config) BanksPerPartition() int {
	return c.L2.NumBanks / c.DRAM.NumPartitions
}

// PartitionBusBytes returns the per-partition DRAM data-bus width in bytes.
func (c *Config) PartitionBusBytes() int {
	return c.DRAM.BusWidthBits / c.DRAM.NumPartitions / 8
}

// DRAMBurstCycles returns the number of DRAM command-clock cycles the data
// bus is occupied transferring one cache line.
func (c *Config) DRAMBurstCycles() int {
	bytesPerCycle := c.PartitionBusBytes() * c.DRAM.DataRate
	n := (c.L2.LineBytes + bytesPerCycle - 1) / bytesPerCycle
	if n < 1 {
		n = 1
	}
	return n
}

// Hostile-config caps. Configurations are accepted from untrusted input
// (gpusimd's inline configs, CLI config files), so every knob that sizes
// an allocation or a per-cycle loop is bounded: without the caps a single
// JSON document could OOM the daemon (terabyte caches, million-entry
// queues) or livelock it (clock ratios that tick a domain millions of
// times per core cycle). The bounds leave two to three orders of
// magnitude of headroom over the paper's largest design points.
const (
	maxCores        = 1 << 10 // SMs (15 baseline)
	maxWarps        = 1 << 14 // warps per SM (48 baseline)
	maxTotalWarps   = 1 << 20 // cores × warps (720 baseline)
	maxCacheBytes   = 1 << 28 // any single cache (768 KB L2 baseline)
	maxLineBytes    = 1 << 12
	maxWays         = 1 << 8
	maxQueueEntries = 1 << 20 // queues, MSHRs, pipeline widths
	maxBanks        = 1 << 12 // L2 banks, DRAM banks/chip (12/16 baseline)
	maxPartitions   = 1 << 10 // crossbar ports scale with cores × banks
	maxPortBanks    = 1 << 22 // cores × L2 banks (180 baseline)
	maxFlitBytes    = 1 << 16
	maxRowBytes     = 1 << 24
	maxBusBits      = 1 << 20
	maxDataRate     = 1 << 6
	maxLatency      = 1 << 20 // fixed pipeline depths and timings
	maxIdealLatency = 1 << 30 // fixed-latency / ideal-mode latencies
	maxClockMHz     = 1e6
	maxClockRatio   = 1 << 12 // memory-domain ticks per core cycle
)

// Validate reports an error if the configuration is internally
// inconsistent or exceeds the hostile-config caps above. Checks are
// mode-aware: only fields the simulator consults under c.Mode are
// constrained, so the canonical form of a valid configuration (mode-dead
// fields zeroed, see Canonical) is itself valid.
func (c *Config) Validate() error {
	var errs []error
	check := func(ok bool, format string, args ...any) {
		if !ok {
			errs = append(errs, fmt.Errorf(format, args...))
		}
	}
	clock := func(mhz float64, what string) {
		// !(x > 0) also rejects NaN.
		check(mhz > 0 && mhz <= maxClockMHz, "%s clock must be in (0, %g] MHz, got %g", what, maxClockMHz, mhz)
	}
	lat := func(v int, bound int, what string) {
		check(v >= 0 && v <= bound, "%s must be in [0, %d], got %d", what, bound, v)
	}

	// Fields consulted in every mode: the cores, the L1/L1I tag arrays and
	// the memory pipeline run even under the ideal memory systems.
	check(c.Mode <= ModeFixedL1MissLat, "unknown mode %d (known: normal, infinite-bw, fixed-l1-miss-latency)", uint8(c.Mode))
	check(c.Core.NumCores > 0 && c.Core.NumCores <= maxCores, "NumCores must be in [1, %d], got %d", maxCores, c.Core.NumCores)
	check(c.Core.WarpsPerCore > 0 && c.Core.WarpsPerCore <= maxWarps, "WarpsPerCore must be in [1, %d], got %d", maxWarps, c.Core.WarpsPerCore)
	if c.Core.NumCores > 0 && c.Core.WarpsPerCore > 0 {
		check(c.Core.NumCores*c.Core.WarpsPerCore <= maxTotalWarps,
			"NumCores × WarpsPerCore must not exceed %d, got %d", maxTotalWarps, c.Core.NumCores*c.Core.WarpsPerCore)
	}
	clock(c.Core.ClockMHz, "core")
	check(c.Core.IssueWidth > 0 && c.Core.IssueWidth <= maxWays, "IssueWidth must be in [1, %d], got %d", maxWays, c.Core.IssueWidth)
	check(c.Core.MemPipelineWidth > 0 && c.Core.MemPipelineWidth <= maxQueueEntries,
		"MemPipelineWidth must be in [1, %d], got %d", maxQueueEntries, c.Core.MemPipelineWidth)
	lat(c.Core.ALULatency, maxLatency, "ALULatency")
	check(c.L1.LineBytes > 0 && c.L1.LineBytes <= maxLineBytes && isPow2(c.L1.LineBytes),
		"L1 line size must be a power of two in [1, %d], got %d", maxLineBytes, c.L1.LineBytes)
	check(c.L1.LineBytes == c.L2.LineBytes, "L1 and L2 line sizes must match (%d vs %d)", c.L1.LineBytes, c.L2.LineBytes)
	cacheGeometry := func(size, ways int, what string) {
		check(size > 0 && size <= maxCacheBytes, "%s size must be in [1, %d], got %d", what, maxCacheBytes, size)
		check(ways > 0 && ways <= maxWays, "%s ways must be in [1, %d], got %d", what, maxWays, ways)
		if size > 0 && ways > 0 && c.L1.LineBytes > 0 {
			check(size%(c.L1.LineBytes*ways) == 0,
				"%s size %d not divisible by line*ways %d", what, size, c.L1.LineBytes*ways)
		}
	}
	cacheGeometry(c.L1.SizeBytes, c.L1.Ways, "L1")
	cacheGeometry(c.L1.ICacheSizeBytes, c.L1.ICacheWays, "L1I")
	lat(c.L1.HitLatency, maxLatency, "L1 hit latency")
	lat(c.L1.MSHRMaxMerge, maxQueueEntries, "L1 MSHR max merge")
	lat(c.L1.MissQueueEntries, maxQueueEntries, "L1 miss queue entries")
	lat(c.L1.ResponseFIFO, maxQueueEntries, "L1 response FIFO entries")
	check(c.Mode != ModeNormal || (c.L1.MSHREntries > 0 && c.L1.MSHREntries <= maxQueueEntries),
		"L1 MSHR entries must be in [1, %d], got %d", maxQueueEntries, c.L1.MSHREntries)
	check(c.Mode == ModeNormal || c.L1.MSHREntries >= 0, "L1 MSHR entries must be non-negative, got %d", c.L1.MSHREntries)
	check(c.MaxCycles >= 0, "MaxCycles must be non-negative, got %d", c.MaxCycles)

	switch c.Mode {
	case ModeNormal:
		c.validateHierarchy(check, clock, lat)
	case ModeInfiniteBW:
		// Only the functional L2 of the P∞ latency oracle is consulted.
		cacheGeometry(c.L2.SizeBytes, c.L2.Ways, "L2")
		lat(c.IdealL2HitLatency, maxIdealLatency, "IdealL2HitLatency")
		lat(c.IdealMemLatency, maxIdealLatency, "IdealMemLatency")
	case ModeFixedL1MissLat:
		lat(c.FixedL1MissLatency, maxIdealLatency, "FixedL1MissLatency")
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("config %q: %w", c.Name, errors.Join(errs...))
}

// validateHierarchy checks the interconnect, L2 and DRAM knobs — the
// fields only ModeNormal consults.
func (c *Config) validateHierarchy(check func(bool, string, ...any), clock func(float64, string), lat func(int, int, string)) {
	check(c.L2.SizeBytes > 0 && c.L2.SizeBytes <= maxCacheBytes, "L2 size must be in [1, %d], got %d", maxCacheBytes, c.L2.SizeBytes)
	check(c.L2.Ways > 0 && c.L2.Ways <= maxWays, "L2 ways must be in [1, %d], got %d", maxWays, c.L2.Ways)
	check(c.L2.NumBanks > 0 && c.L2.NumBanks <= maxBanks, "L2 banks must be in [1, %d], got %d", maxBanks, c.L2.NumBanks)
	check(c.DRAM.NumPartitions > 0 && c.DRAM.NumPartitions <= maxPartitions,
		"DRAM partitions must be in [1, %d], got %d", maxPartitions, c.DRAM.NumPartitions)
	if c.L2.NumBanks > 0 && c.DRAM.NumPartitions > 0 {
		check(c.L2.NumBanks%c.DRAM.NumPartitions == 0,
			"L2 banks (%d) must be a multiple of DRAM partitions (%d)", c.L2.NumBanks, c.DRAM.NumPartitions)
	}
	if c.Core.NumCores > 0 && c.L2.NumBanks > 0 {
		check(c.Core.NumCores*c.L2.NumBanks <= maxPortBanks,
			"NumCores × L2 banks must not exceed %d crossbar ports, got %d", maxPortBanks, c.Core.NumCores*c.L2.NumBanks)
	}
	if c.L2.SizeBytes > 0 && c.L2.NumBanks > 0 && c.L2.Ways > 0 && c.L2.LineBytes > 0 {
		check(c.L2.SizeBytes%(c.L2.NumBanks*c.L2.Ways*c.L2.LineBytes) == 0,
			"L2 size %d not divisible across %d banks × %d ways", c.L2.SizeBytes, c.L2.NumBanks, c.L2.Ways)
	}
	check(c.L2.MSHREntries > 0 && c.L2.MSHREntries <= maxQueueEntries,
		"L2 MSHR entries must be in [1, %d], got %d", maxQueueEntries, c.L2.MSHREntries)
	lat(c.L2.MSHRMaxMerge, maxQueueEntries, "L2 MSHR max merge")
	lat(c.L2.MissQueueEntries, maxQueueEntries, "L2 miss queue entries")
	lat(c.L2.AccessQueueEntries, maxQueueEntries, "L2 access queue entries")
	lat(c.L2.ResponseQueueEntries, maxQueueEntries, "L2 response queue entries")
	check(c.L2.DataPortBytes > 0 && c.L2.DataPortBytes <= maxQueueEntries,
		"L2 data port must be in [1, %d] bytes, got %d", maxQueueEntries, c.L2.DataPortBytes)
	lat(c.L2.TagLatency, maxLatency, "L2 tag latency")
	clock(c.L2.ClockMHz, "L2")

	check(c.Icnt.ReqFlitBytes > 0 && c.Icnt.ReqFlitBytes <= maxFlitBytes,
		"request flit size must be in [1, %d], got %d", maxFlitBytes, c.Icnt.ReqFlitBytes)
	check(c.Icnt.ReplyFlitBytes > 0 && c.Icnt.ReplyFlitBytes <= maxFlitBytes,
		"reply flit size must be in [1, %d], got %d", maxFlitBytes, c.Icnt.ReplyFlitBytes)
	lat(c.Icnt.InputBufFlits, maxQueueEntries, "icnt input buffer flits")
	lat(c.Icnt.OutputBufPackets, maxQueueEntries, "icnt output buffer packets")
	lat(c.Icnt.LatencyCycles, maxLatency, "icnt latency")
	clock(c.Icnt.ClockMHz, "icnt")
	clock(c.DRAM.ClockMHz, "DRAM")
	if c.Core.ClockMHz > 0 {
		check(!(c.Icnt.ClockMHz/c.Core.ClockMHz > maxClockRatio),
			"icnt:core clock ratio must not exceed %d", maxClockRatio)
		check(!(c.DRAM.ClockMHz/c.Core.ClockMHz > maxClockRatio),
			"DRAM:core clock ratio must not exceed %d", maxClockRatio)
	}
	check(c.DRAM.BusWidthBits > 0 && c.DRAM.BusWidthBits <= maxBusBits,
		"DRAM bus width must be in [1, %d] bits, got %d", maxBusBits, c.DRAM.BusWidthBits)
	check(c.DRAM.DataRate > 0 && c.DRAM.DataRate <= maxDataRate,
		"DRAM data rate must be in [1, %d], got %d", maxDataRate, c.DRAM.DataRate)
	if c.DRAM.NumPartitions > 0 {
		check(c.DRAM.BusWidthBits%(c.DRAM.NumPartitions*8) == 0,
			"DRAM bus width %d bits must divide evenly across %d partitions", c.DRAM.BusWidthBits, c.DRAM.NumPartitions)
	}
	if c.DRAM.Infinite {
		lat(c.DRAM.InfiniteLatency, maxIdealLatency, "DRAM infinite latency")
		return
	}
	check(c.DRAM.BanksPerChip > 0 && c.DRAM.BanksPerChip <= maxBanks,
		"DRAM banks/chip must be in [1, %d], got %d", maxBanks, c.DRAM.BanksPerChip)
	check(c.DRAM.RowBytes > 0 && c.DRAM.RowBytes <= maxRowBytes,
		"DRAM row size must be in [1, %d] bytes, got %d", maxRowBytes, c.DRAM.RowBytes)
	lat(c.DRAM.SchedQueueEntries, maxQueueEntries, "DRAM scheduler queue entries")
	lat(c.DRAM.ReturnQueueEntries, maxQueueEntries, "DRAM return queue entries")
	lat(c.DRAM.CtrlLatency, maxLatency, "DRAM controller latency")
	for _, t := range []struct {
		name string
		v    int
	}{
		{"tCCD", c.DRAM.Timing.CCD}, {"tRRD", c.DRAM.Timing.RRD},
		{"tRCD", c.DRAM.Timing.RCD}, {"tRAS", c.DRAM.Timing.RAS},
		{"tRP", c.DRAM.Timing.RP}, {"tRC", c.DRAM.Timing.RC},
		{"CL", c.DRAM.Timing.CL}, {"WL", c.DRAM.Timing.WL},
		{"tCDLR", c.DRAM.Timing.CDLR}, {"tWR", c.DRAM.Timing.WR},
	} {
		lat(t.v, maxLatency, t.name)
	}
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
