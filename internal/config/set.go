package config

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// Set applies knob=value assignments to the configuration — the engine
// behind every CLI's -set flag. Paths are dotted Config field names,
// matched case-insensitively with underscores and dashes ignored, so
// "l1.mshr_entries=128", "L1.MSHREntries=128" and "l1.mshrentries=128"
// all name the same knob. Values parse according to the field's type:
// integers, floats, booleans, strings, and mode names for Mode
// ("infinite-bw"). Unknown knobs list the valid names at that level.
//
//	cfg := Baseline()
//	err := cfg.Set("l1.mshr_entries=128", "dram.timing.rcd=14")
func (c *Config) Set(assignments ...string) error {
	delta, err := DeltaFromSets(assignments)
	if err != nil {
		return err
	}
	return ApplyDelta(c, delta)
}

// DeltaFromSets converts knob=value assignments into the sparse Delta
// document of a Patch, using Config's canonical field names — the bridge
// between a CLI's -set flags and the wire's configPatch form, so
// `gpusimctl submit -config baseline -set l1.mshr_entries=128` ships the
// exact patch a hand-written {"base":"baseline","L1":{"MSHREntries":128}}
// would.
func DeltaFromSets(assignments []string) (json.RawMessage, error) {
	root := map[string]any{}
	for _, a := range assignments {
		path, val, ok := strings.Cut(a, "=")
		if !ok {
			return nil, fmt.Errorf("config: -set %q: want knob=value", a)
		}
		if err := insertKnob(root, reflect.TypeOf(Config{}), strings.Split(path, "."), path, val); err != nil {
			return nil, err
		}
	}
	return json.Marshal(root)
}

// insertKnob resolves one dotted path against the Config type tree and
// inserts the parsed value into the nested delta map.
func insertKnob(m map[string]any, t reflect.Type, segs []string, path, val string) error {
	field, ok := fieldByFuzzyName(t, segs[0])
	if !ok {
		return fmt.Errorf("config: unknown knob %q in path %q (known here: %s)", segs[0], path, fieldNames(t))
	}
	if len(segs) > 1 {
		if field.Type.Kind() != reflect.Struct {
			return fmt.Errorf("config: knob %q in path %q is not a group", field.Name, path)
		}
		sub, _ := m[field.Name].(map[string]any)
		if sub == nil {
			sub = map[string]any{}
			m[field.Name] = sub
		}
		return insertKnob(sub, field.Type, segs[1:], path, val)
	}
	v, err := parseKnobValue(field.Type, val)
	if err != nil {
		return fmt.Errorf("config: knob %q: %w", path, err)
	}
	m[field.Name] = v
	return nil
}

// parseKnobValue converts a textual value to the JSON-marshalable form
// matching the field's type.
func parseKnobValue(t reflect.Type, val string) (any, error) {
	if t == reflect.TypeOf(Mode(0)) {
		m, err := ParseMode(val)
		if err != nil {
			return nil, err
		}
		return m.String(), nil // Mode's UnmarshalJSON accepts names
	}
	switch t.Kind() {
	case reflect.Int, reflect.Int64:
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("want an integer, got %q", val)
		}
		return n, nil
	case reflect.Float64:
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("want a number, got %q", val)
		}
		return f, nil
	case reflect.Bool:
		b, err := strconv.ParseBool(val)
		if err != nil {
			return nil, fmt.Errorf("want true or false, got %q", val)
		}
		return b, nil
	case reflect.String:
		return val, nil
	case reflect.Struct:
		return nil, fmt.Errorf("names a group, not a knob (members: %s)", fieldNames(t))
	default:
		return nil, fmt.Errorf("unsupported field kind %v", t.Kind())
	}
}

// fieldByFuzzyName matches seg against t's exported fields, ignoring
// case, underscores and dashes.
func fieldByFuzzyName(t reflect.Type, seg string) (reflect.StructField, bool) {
	want := normalizeKnob(seg)
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.IsExported() && normalizeKnob(f.Name) == want {
			return f, true
		}
	}
	return reflect.StructField{}, false
}

func normalizeKnob(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, "_", "")
	return strings.ReplaceAll(s, "-", "")
}

// fieldNames lists t's exported field names for error messages.
func fieldNames(t reflect.Type) string {
	var names []string
	for i := 0; i < t.NumField(); i++ {
		if f := t.Field(i); f.IsExported() {
			names = append(names, f.Name)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// MergeDeltas overlays delta b onto delta a (a deep JSON-object merge:
// nested objects merge field-wise, scalars from b win). CLIs use it to
// layer -set assignments onto a -config-file patch without resolving the
// base locally.
func MergeDeltas(a, b json.RawMessage) (json.RawMessage, error) {
	ma, err := decodeDelta(a)
	if err != nil {
		return nil, err
	}
	mb, err := decodeDelta(b)
	if err != nil {
		return nil, err
	}
	return json.Marshal(mergeMaps(ma, mb))
}

func decodeDelta(d json.RawMessage) (map[string]any, error) {
	if len(d) == 0 {
		return map[string]any{}, nil
	}
	dec := json.NewDecoder(strings.NewReader(string(d)))
	dec.UseNumber() // keep int64-exactness through the merge
	var m map[string]any
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("config: delta must be a JSON object: %w", err)
	}
	return m, nil
}

func mergeMaps(a, b map[string]any) map[string]any {
	for k, bv := range b {
		if bm, ok := bv.(map[string]any); ok {
			if am, ok := a[k].(map[string]any); ok {
				a[k] = mergeMaps(am, bm)
				continue
			}
		}
		a[k] = bv
	}
	return a
}
