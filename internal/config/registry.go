package config

import (
	"fmt"
	"maps"
	"sort"
	"strings"
	"sync"
)

// presets caches the built preset map: ByName sits on hot submit paths
// (once per daemon job), and rebuilding all 14 structs per lookup is
// pure waste. The cached map is never handed out directly — Presets
// clones it — so no caller can mutate another's view.
var presets = sync.OnceValue(buildPresets)

// presetNames caches the sorted name list alongside.
var presetNames = sync.OnceValue(func() []string {
	m := presets()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
})

func buildPresets() map[string]Config {
	list := []Config{
		Baseline(), ScaledL1(), ScaledL2(), ScaledDRAM(),
		ScaledL1L2(), ScaledL2DRAM(), ScaledAll(), HBM(),
		CostEffective16x48(), CostEffective16x68(), CostEffective32x52(),
		AsymmetricOnly(), InfiniteBW(), InfiniteDRAM(),
	}
	out := make(map[string]Config, len(list))
	for _, c := range list {
		out[c.Name] = c
	}
	return out
}

// Presets returns every named configuration preset the paper evaluates,
// keyed by name: the Table I baseline, the 4×-scaled points of Fig. 10,
// HBM, the cost-effective asymmetric crossbars of Fig. 12, and the ideal
// memory systems of Table II. The parameterized builders
// (FixedL1MissLatency, WithCoreClock) are not presets and are excluded.
// The returned map is the caller's to mutate.
func Presets() map[string]Config {
	return maps.Clone(presets())
}

// Names returns the preset names accepted by ByName, sorted.
func Names() []string {
	return append([]string(nil), presetNames()...)
}

// ByName returns the named preset. Unknown names are an error that lists
// the valid ones.
func ByName(name string) (Config, error) {
	if c, ok := presets()[name]; ok {
		return c, nil
	}
	return Config{}, fmt.Errorf("config: unknown config %q (known: %s)", name, strings.Join(Names(), ", "))
}
