package config

import (
	"fmt"
	"sort"
	"strings"
)

// Presets returns every named configuration preset the paper evaluates,
// keyed by name: the Table I baseline, the 4×-scaled points of Fig. 10,
// HBM, the cost-effective asymmetric crossbars of Fig. 12, and the ideal
// memory systems of Table II. The parameterized builders
// (FixedL1MissLatency, WithCoreClock) are not presets and are excluded.
func Presets() map[string]Config {
	list := []Config{
		Baseline(), ScaledL1(), ScaledL2(), ScaledDRAM(),
		ScaledL1L2(), ScaledL2DRAM(), ScaledAll(), HBM(),
		CostEffective16x48(), CostEffective16x68(), CostEffective32x52(),
		AsymmetricOnly(), InfiniteBW(), InfiniteDRAM(),
	}
	out := make(map[string]Config, len(list))
	for _, c := range list {
		out[c.Name] = c
	}
	return out
}

// Names returns the preset names accepted by ByName, sorted.
func Names() []string {
	presets := Presets()
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName returns the named preset. Unknown names are an error that lists
// the valid ones.
func ByName(name string) (Config, error) {
	if c, ok := Presets()[name]; ok {
		return c, nil
	}
	return Config{}, fmt.Errorf("config: unknown config %q (known: %s)", name, strings.Join(Names(), ", "))
}
