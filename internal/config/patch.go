package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Patch is a sparse overlay on a named configuration preset: the paper's
// mitigation sweeps (Table III — more MSHRs, deeper miss queues, more L2
// banks, scaled DRAM) expressed as small diffs instead of 60-field
// blobs. Its JSON form is flat — a "base" key naming the preset, plus
// any subset of Config's own fields:
//
//	{"base": "baseline", "L1": {"MSHREntries": 128}}
//
// An empty base defaults to "baseline". A patch whose delta changes
// nothing the simulator consults is the preset's twin: it resolves to
// the same ConfigID and therefore shares the preset's simulation cell
// everywhere.
type Patch struct {
	// Base is the preset the delta overlays (see Names); "" means
	// "baseline".
	Base string
	// Delta is the sparse Config JSON object to apply. Field names are
	// Config's own (matched case-insensitively by encoding/json);
	// unknown fields are an Apply error, so a typo'd knob can never
	// silently no-op.
	Delta json.RawMessage
}

// UnmarshalJSON splits the flat wire form into Base and Delta.
func (p *Patch) UnmarshalJSON(data []byte) error {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("config: patch must be a JSON object: %w", err)
	}
	p.Base = ""
	if raw, ok := m["base"]; ok {
		if err := json.Unmarshal(raw, &p.Base); err != nil {
			return fmt.Errorf("config: patch base must be a preset name: %w", err)
		}
		delete(m, "base")
	}
	delta, err := json.Marshal(m)
	if err != nil {
		return err
	}
	p.Delta = delta
	return nil
}

// MarshalJSON reassembles the flat wire form.
func (p Patch) MarshalJSON() ([]byte, error) {
	m := map[string]json.RawMessage{}
	if len(p.Delta) > 0 {
		if err := json.Unmarshal(p.Delta, &m); err != nil {
			return nil, fmt.Errorf("config: patch delta must be a JSON object: %w", err)
		}
	}
	if p.Base != "" {
		b, err := json.Marshal(p.Base)
		if err != nil {
			return nil, err
		}
		m["base"] = b
	}
	return json.Marshal(m)
}

// Apply resolves the base preset and overlays the delta, returning the
// concrete configuration. The result keeps the base's name suffixed with
// "-patched" unless the delta sets Name itself, so a patched config never
// masquerades as its pristine base in progress lines and job listings.
// Apply does not validate the result; callers pass it through
// Config.Validate like any other inline configuration.
func (p Patch) Apply() (Config, error) {
	base := p.Base
	if base == "" {
		base = "baseline"
	}
	cfg, err := ByName(base)
	if err != nil {
		return Config{}, fmt.Errorf("config: patch base: %w", err)
	}
	baseName := cfg.Name
	if err := ApplyDelta(&cfg, p.Delta); err != nil {
		return Config{}, err
	}
	if cfg.Name == baseName {
		cfg.Name = baseName + "-patched"
	}
	return cfg, nil
}

// ApplyDelta overlays a sparse Config JSON object onto cfg. Absent
// fields keep their current values (encoding/json merges object fields
// recursively); unknown fields are an error.
func ApplyDelta(cfg *Config, delta json.RawMessage) error {
	if len(delta) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(delta))
	dec.DisallowUnknownFields()
	if err := dec.Decode(cfg); err != nil {
		return fmt.Errorf("config: apply delta: %w", err)
	}
	return nil
}

// ReadConfigFile loads one hardware-config document from a JSON file, or
// from stdin when path is "-" — the shared loader behind every CLI's
// -config-file flag, so the tools can never drift in what config files
// they accept. A document carrying a "base" key is a Patch; anything
// else is a full Config. Exactly one of the returns is non-nil. The
// document is parsed, not validated; validation happens where the config
// is used.
func ReadConfigFile(path string) (*Config, *Patch, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, nil, err
	}
	return ParseConfigDoc(path, data)
}

// ParseConfigDoc parses a config document (full Config or Patch); name
// labels parse errors.
func ParseConfigDoc(name string, data []byte) (*Config, *Patch, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, nil, fmt.Errorf("parse %s: %w", name, err)
	}
	if _, ok := probe["base"]; ok {
		var p Patch
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, nil, fmt.Errorf("parse %s: %w", name, err)
		}
		return nil, &p, nil
	}
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, nil, fmt.Errorf("parse %s: %w", name, err)
	}
	return &cfg, nil, nil
}
