package config

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Canonical returns the configuration in canonical form: fields the
// simulator never consults under this configuration's mode are zeroed.
// Two configurations with equal canonical forms assemble behaviorally
// identical GPUs, so different spellings of the same silicon — a
// fixed-latency design point dragging along the baseline's L2 and DRAM
// tables, a P∞ config with leftover crossbar buffers — collapse to one
// value. ConfigID (and therefore every memo cell, job ID and disk-cache
// entry keyed on it) hashes exactly this form.
//
// The zeroing map mirrors core.New and smcore.NewCore field by field:
//
//   - ModeNormal runs the full hierarchy; only the ideal-mode latencies
//     (FixedL1MissLatency, IdealL2HitLatency, IdealMemLatency) are dead,
//     plus either the FR-FCFS machinery (when DRAM.Infinite replaces the
//     channel with a fixed-latency pipe) or InfiniteLatency (when it
//     does not).
//   - ModeInfiniteBW removes every structural limit: the L1 miss path
//     (MSHRs, miss queue, response FIFO), the crossbars and the DRAM are
//     never built; of the L2 only the functional tag-array geometry
//     backing the latency oracle remains.
//   - ModeFixedL1MissLat services every L1 miss at a constant latency:
//     everything beyond the L1 is dead. L2.LineBytes survives only
//     because Validate ties it to the live L1 line size.
func (c Config) Canonical() Config {
	out := c
	switch c.Mode {
	case ModeNormal:
		out.FixedL1MissLatency = 0
		out.IdealL2HitLatency, out.IdealMemLatency = 0, 0
		if c.DRAM.Infinite {
			out.DRAM.Timing = DRAMTiming{}
			out.DRAM.SchedQueueEntries = 0
			out.DRAM.ReturnQueueEntries = 0
			out.DRAM.BanksPerChip = 0
			out.DRAM.RowBytes = 0
			out.DRAM.CtrlLatency = 0
		} else {
			out.DRAM.InfiniteLatency = 0
		}
	case ModeInfiniteBW:
		out.FixedL1MissLatency = 0
		out.L1.MSHREntries, out.L1.MSHRMaxMerge = 0, 0
		out.L1.MissQueueEntries, out.L1.ResponseFIFO = 0, 0
		out.Icnt = IcntConfig{}
		out.L2 = L2Config{SizeBytes: c.L2.SizeBytes, LineBytes: c.L2.LineBytes, Ways: c.L2.Ways}
		out.DRAM = DRAMConfig{}
	case ModeFixedL1MissLat:
		out.IdealL2HitLatency, out.IdealMemLatency = 0, 0
		out.L1.MSHREntries, out.L1.MSHRMaxMerge = 0, 0
		out.L1.MissQueueEntries, out.L1.ResponseFIFO = 0, 0
		out.Icnt = IcntConfig{}
		out.L2 = L2Config{LineBytes: c.L2.LineBytes}
		out.DRAM = DRAMConfig{}
	}
	return out
}

// Identity returns the canonical configuration with its provenance label
// (Name) cleared — the exact value ConfigID hashes. The name is excluded
// from hardware identity for the same reason trace.Spec's labels are
// excluded from workload identity: a renamed copy of the same silicon
// must share its simulation results. Experiment engines use Identity as
// a comparable memo key so job identity and ConfigID can never diverge.
func (c Config) Identity() Config {
	id := c.Canonical()
	id.Name = ""
	return id
}

// ConfigID returns a stable, content-addressed identifier of the
// hardware configuration: a hash over the canonical JSON of Identity.
// Semantically identical configurations — names, mode-dead leftovers
// and JSON key order aside — share an ID; any change that alters what
// the assembled GPU simulates changes it.
func (c Config) ConfigID() string {
	id := c.Identity()
	b, err := json.Marshal(id)
	if err != nil {
		// Only non-finite clock values (which Validate rejects) can defeat
		// Marshal; hash a deterministic textual form instead so ConfigID
		// is total and never panics on garbage input.
		b = []byte(fmt.Sprintf("%#v", id))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}
