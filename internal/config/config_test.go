package config

import "testing"

func TestBaselineMatchesTableI(t *testing.T) {
	c := Baseline()
	if err := c.Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"cores", c.Core.NumCores, 15},
		{"warps/core", c.Core.WarpsPerCore, 48},
		{"core clock", c.Core.ClockMHz, 1400.0},
		{"L2 clock", c.L2.ClockMHz, 700.0},
		{"dram clock", c.DRAM.ClockMHz, 924.0},
		{"mem pipeline width", c.Core.MemPipelineWidth, 10},
		{"L1 size", c.L1.SizeBytes, 16 * 1024},
		{"L1 ways", c.L1.Ways, 4},
		{"L1 mshr", c.L1.MSHREntries, 32},
		{"L1 miss queue", c.L1.MissQueueEntries, 8},
		{"req flit", c.Icnt.ReqFlitBytes, 32},
		{"reply flit", c.Icnt.ReplyFlitBytes, 32},
		{"L2 size", c.L2.SizeBytes, 768 * 1024},
		{"L2 ways", c.L2.Ways, 8},
		{"L2 banks", c.L2.NumBanks, 12},
		{"L2 mshr", c.L2.MSHREntries, 32},
		{"L2 data port", c.L2.DataPortBytes, 32},
		{"dram partitions", c.DRAM.NumPartitions, 6},
		{"dram bus width", c.DRAM.BusWidthBits, 384},
		{"dram banks/chip", c.DRAM.BanksPerChip, 16},
		{"dram sched queue", c.DRAM.SchedQueueEntries, 16},
		{"tCCD", c.DRAM.Timing.CCD, 2},
		{"tRRD", c.DRAM.Timing.RRD, 6},
		{"tRCD", c.DRAM.Timing.RCD, 12},
		{"tRAS", c.DRAM.Timing.RAS, 28},
		{"tRP", c.DRAM.Timing.RP, 12},
		{"tRC", c.DRAM.Timing.RC, 40},
		{"CL", c.DRAM.Timing.CL, 12},
		{"WL", c.DRAM.Timing.WL, 4},
		{"tCDLR", c.DRAM.Timing.CDLR, 5},
		{"tWR", c.DRAM.Timing.WR, 12},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %v, want %v", ck.name, ck.got, ck.want)
		}
	}
}

func TestDerivedGeometry(t *testing.T) {
	c := Baseline()
	if got := c.L1Sets(); got != 32 {
		t.Errorf("L1 sets = %d, want 32 (16KB / 128B / 4-way)", got)
	}
	if got := c.LinesPerL2Bank(); got != 512 {
		t.Errorf("lines per L2 bank = %d, want 512", got)
	}
	if got := c.SetsPerL2Bank(); got != 64 {
		t.Errorf("sets per L2 bank = %d, want 64", got)
	}
	if got := c.BanksPerPartition(); got != 2 {
		t.Errorf("banks per partition = %d, want 2", got)
	}
	if got := c.PartitionBusBytes(); got != 8 {
		t.Errorf("partition bus bytes = %d, want 8 (64 bits)", got)
	}
	// 8 B bus × 4 transfers/clock = 32 B/cycle ⇒ 128 B line = 4 cycles.
	if got := c.DRAMBurstCycles(); got != 4 {
		t.Errorf("burst cycles = %d, want 4", got)
	}
}

func TestScaledPresetsMatchTableIII(t *testing.T) {
	l1 := ScaledL1()
	if l1.L1.MSHREntries != 128 || l1.L1.MissQueueEntries != 32 || l1.Core.MemPipelineWidth != 40 {
		t.Errorf("ScaledL1 = mshr %d, missq %d, pipe %d; want 128, 32, 40",
			l1.L1.MSHREntries, l1.L1.MissQueueEntries, l1.Core.MemPipelineWidth)
	}
	if l1.L2.MSHREntries != 32 {
		t.Errorf("ScaledL1 must not touch L2 (mshr %d)", l1.L2.MSHREntries)
	}

	l2 := ScaledL2()
	if l2.L2.MissQueueEntries != 32 || l2.L2.ResponseQueueEntries != 32 ||
		l2.L2.MSHREntries != 128 || l2.L2.AccessQueueEntries != 32 ||
		l2.L2.DataPortBytes != 128 || l2.L2.NumBanks != 48 {
		t.Errorf("ScaledL2 L2 knobs wrong: %+v", l2.L2)
	}
	if l2.Icnt.ReqFlitBytes != 128 || l2.Icnt.ReplyFlitBytes != 128 {
		t.Errorf("ScaledL2 flits = %d+%d, want 128+128", l2.Icnt.ReqFlitBytes, l2.Icnt.ReplyFlitBytes)
	}

	dr := ScaledDRAM()
	if dr.DRAM.SchedQueueEntries != 64 || dr.DRAM.BanksPerChip != 64 || dr.DRAM.BusWidthBits != 1536 {
		t.Errorf("ScaledDRAM DRAM knobs wrong: %+v", dr.DRAM)
	}

	for _, c := range []Config{ScaledL1(), ScaledL2(), ScaledDRAM(), ScaledL1L2(), ScaledL2DRAM(), ScaledAll(), HBM()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
	}
}

func TestCostEffectivePresets(t *testing.T) {
	ce := CostEffective16x48()
	if ce.Icnt.ReqFlitBytes != 16 || ce.Icnt.ReplyFlitBytes != 48 {
		t.Errorf("16+48 flits = %d+%d", ce.Icnt.ReqFlitBytes, ce.Icnt.ReplyFlitBytes)
	}
	// Table III cost-effective column.
	if ce.L2.MissQueueEntries != 32 || ce.L2.ResponseQueueEntries != 32 ||
		ce.L2.AccessQueueEntries != 32 || ce.L2.MSHREntries != 32 ||
		ce.L2.DataPortBytes != 32 || ce.L2.NumBanks != 12 {
		t.Errorf("cost-effective L2 knobs wrong: %+v", ce.L2)
	}
	if ce.L1.MissQueueEntries != 32 || ce.L1.MSHREntries != 48 || ce.Core.MemPipelineWidth != 40 {
		t.Errorf("cost-effective L1 knobs wrong: mshr %d missq %d pipe %d",
			ce.L1.MSHREntries, ce.L1.MissQueueEntries, ce.Core.MemPipelineWidth)
	}
	if ce.DRAM.SchedQueueEntries != 16 || ce.DRAM.BanksPerChip != 16 || ce.DRAM.BusWidthBits != 384 {
		t.Errorf("cost-effective must keep baseline DRAM: %+v", ce.DRAM)
	}

	if c := CostEffective16x68(); c.Icnt.ReqFlitBytes != 16 || c.Icnt.ReplyFlitBytes != 68 {
		t.Errorf("16+68 flits = %d+%d", c.Icnt.ReqFlitBytes, c.Icnt.ReplyFlitBytes)
	}
	if c := CostEffective32x52(); c.Icnt.ReqFlitBytes != 32 || c.Icnt.ReplyFlitBytes != 52 {
		t.Errorf("32+52 flits = %d+%d", c.Icnt.ReqFlitBytes, c.Icnt.ReplyFlitBytes)
	}
	// The asymmetric-only config keeps baseline queues.
	ao := AsymmetricOnly()
	if ao.L1.MSHREntries != 32 || ao.L2.MissQueueEntries != 8 {
		t.Errorf("asymmetric-only must keep baseline queues")
	}
	for _, c := range []Config{CostEffective16x48(), CostEffective16x68(), CostEffective32x52(), AsymmetricOnly()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
	}
}

func TestIdealModes(t *testing.T) {
	p := InfiniteBW()
	if p.Mode != ModeInfiniteBW {
		t.Errorf("InfiniteBW mode = %v", p.Mode)
	}
	if p.IdealL2HitLatency != 120 || p.IdealMemLatency != 220 {
		t.Errorf("ideal latencies = %d/%d, want 120/220", p.IdealL2HitLatency, p.IdealMemLatency)
	}
	d := InfiniteDRAM()
	if !d.DRAM.Infinite || d.DRAM.InfiniteLatency != 90 {
		t.Errorf("InfiniteDRAM = %+v", d.DRAM)
	}
	if d.Mode != ModeNormal {
		t.Errorf("InfiniteDRAM must keep the real cache hierarchy")
	}
	f := FixedL1MissLatency(300)
	if f.Mode != ModeFixedL1MissLat || f.FixedL1MissLatency != 300 {
		t.Errorf("FixedL1MissLatency = %+v", f)
	}
	for _, c := range []Config{p, d, f, FixedL1MissLatency(0)} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
	}
}

func TestWithCoreClock(t *testing.T) {
	c := WithCoreClock(Baseline(), 1200)
	if c.Core.ClockMHz != 1200 {
		t.Errorf("core clock = %g", c.Core.ClockMHz)
	}
	if c.L2.ClockMHz != 700 || c.DRAM.ClockMHz != 924 {
		t.Errorf("memory clocks must stay fixed: L2 %g dram %g", c.L2.ClockMHz, c.DRAM.ClockMHz)
	}
	if c.Name != "baseline-core-1200MHz" {
		t.Errorf("name = %q, want the design point appended to the base name", c.Name)
	}
	if d := WithCoreClock(ScaledL2(), 800); d.Name != "L2-4x-core-800MHz" {
		t.Errorf("derived name = %q, provenance of the base config lost", d.Name)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	bad := Baseline()
	bad.L2.NumBanks = 7 // not divisible by 6 partitions
	if err := bad.Validate(); err == nil {
		t.Error("expected error for banks not divisible by partitions")
	}
	bad2 := Baseline()
	bad2.L1.LineBytes = 96
	if err := bad2.Validate(); err == nil {
		t.Error("expected error for non-power-of-two line size")
	}
	bad3 := Baseline()
	bad3.Core.NumCores = 0
	if err := bad3.Validate(); err == nil {
		t.Error("expected error for zero cores")
	}
}

func TestModeString(t *testing.T) {
	if ModeNormal.String() != "normal" || ModeInfiniteBW.String() != "infinite-bw" {
		t.Error("mode strings wrong")
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode must still format")
	}
}
