package config

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"unicode"
)

// Knob describes one patchable configuration field: the canonical dotted
// path accepted by Set (and the -set flags), the value type, the
// hostile-config bounds Validate enforces, and the baseline preset's
// value. The enumeration is the machine-readable answer to "what can I
// put in a -set flag or a configPatch" — GET /v1/knobs serves it, and
// the design-space explorer derives its search lattice from it.
type Knob struct {
	// Path is the canonical dotted knob path, e.g. "l1.mshr_entries".
	// Set matches paths case-insensitively ignoring underscores and
	// dashes, so any respelling of Path names the same knob.
	Path string `json:"path"`
	// Type is the value class: "int", "float", "bool", "string" or
	// "mode" (the Mode enum, set by name).
	Type string `json:"type"`
	// Min and Max bound numeric knobs, mirroring Validate's
	// hostile-config caps. Max is omitted (0) for the few unbounded
	// knobs; clock knobs exclude zero. Cross-field constraints (bank
	// divisibility, matching line sizes, ...) still apply on top.
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
	// Baseline is the baseline preset's value, in Set's textual form.
	Baseline string `json:"baseline"`
}

// knobBound mirrors one Validate cap for the knob table. max 0 means
// unbounded (only MaxCycles).
type knobBound struct{ min, max float64 }

// knobBounds maps canonical knob paths to the bounds Validate enforces.
// Every numeric knob must have an entry — TestKnobBoundsComplete pins
// that, so adding a Config field without deciding its bounds fails fast.
var knobBounds = map[string]knobBound{
	"core.num_cores":            {1, maxCores},
	"core.warps_per_core":       {1, maxWarps},
	"core.clock_mhz":            {0, maxClockMHz},
	"core.issue_width":          {1, maxWays},
	"core.mem_pipeline_width":   {1, maxQueueEntries},
	"core.alu_latency":          {0, maxLatency},
	"l1.size_bytes":             {1, maxCacheBytes},
	"l1.line_bytes":             {1, maxLineBytes},
	"l1.ways":                   {1, maxWays},
	"l1.mshr_entries":           {1, maxQueueEntries},
	"l1.mshr_max_merge":         {0, maxQueueEntries},
	"l1.miss_queue_entries":     {0, maxQueueEntries},
	"l1.hit_latency":            {0, maxLatency},
	"l1.response_fifo":          {0, maxQueueEntries},
	"l1.icache_size_bytes":      {1, maxCacheBytes},
	"l1.icache_ways":            {1, maxWays},
	"icnt.req_flit_bytes":       {1, maxFlitBytes},
	"icnt.reply_flit_bytes":     {1, maxFlitBytes},
	"icnt.input_buf_flits":      {0, maxQueueEntries},
	"icnt.output_buf_packets":   {0, maxQueueEntries},
	"icnt.latency_cycles":       {0, maxLatency},
	"icnt.clock_mhz":            {0, maxClockMHz},
	"l2.size_bytes":             {1, maxCacheBytes},
	"l2.line_bytes":             {1, maxLineBytes},
	"l2.ways":                   {1, maxWays},
	"l2.num_banks":              {1, maxBanks},
	"l2.mshr_entries":           {1, maxQueueEntries},
	"l2.mshr_max_merge":         {0, maxQueueEntries},
	"l2.miss_queue_entries":     {0, maxQueueEntries},
	"l2.access_queue_entries":   {0, maxQueueEntries},
	"l2.response_queue_entries": {0, maxQueueEntries},
	"l2.data_port_bytes":        {1, maxQueueEntries},
	"l2.tag_latency":            {0, maxLatency},
	"l2.clock_mhz":              {0, maxClockMHz},
	"dram.num_partitions":       {1, maxPartitions},
	"dram.bus_width_bits":       {1, maxBusBits},
	"dram.data_rate":            {1, maxDataRate},
	"dram.banks_per_chip":       {1, maxBanks},
	"dram.row_bytes":            {1, maxRowBytes},
	"dram.sched_queue_entries":  {0, maxQueueEntries},
	"dram.return_queue_entries": {0, maxQueueEntries},
	"dram.ctrl_latency":         {0, maxLatency},
	"dram.clock_mhz":            {0, maxClockMHz},
	"dram.timing.ccd":           {0, maxLatency},
	"dram.timing.rrd":           {0, maxLatency},
	"dram.timing.rcd":           {0, maxLatency},
	"dram.timing.ras":           {0, maxLatency},
	"dram.timing.rp":            {0, maxLatency},
	"dram.timing.rc":            {0, maxLatency},
	"dram.timing.cl":            {0, maxLatency},
	"dram.timing.wl":            {0, maxLatency},
	"dram.timing.cdlr":          {0, maxLatency},
	"dram.timing.wr":            {0, maxLatency},
	"dram.infinite_latency":     {0, maxIdealLatency},
	"fixed_l1_miss_latency":     {0, maxIdealLatency},
	"ideal_l2_hit_latency":      {0, maxIdealLatency},
	"ideal_mem_latency":         {0, maxIdealLatency},
	"max_cycles":                {0, 0},
}

// Knobs enumerates every patchable knob in Config's type tree, in field
// declaration order, with canonical dotted paths, types, Validate bounds
// and baseline values. The walk is the same reflect traversal Set's
// insertKnob performs, so the two can never disagree about what exists.
func Knobs() []Knob {
	base := Baseline()
	var out []Knob
	walkKnobs(reflect.TypeOf(Config{}), reflect.ValueOf(base), "", &out)
	return out
}

func walkKnobs(t reflect.Type, v reflect.Value, prefix string, out *[]Knob) {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		path := prefix + knobPathSegment(f.Name)
		fv := v.Field(i)
		if f.Type == reflect.TypeOf(Mode(0)) {
			*out = append(*out, Knob{Path: path, Type: "mode", Baseline: fv.Interface().(Mode).String()})
			continue
		}
		if f.Type.Kind() == reflect.Struct {
			walkKnobs(f.Type, fv, path+".", out)
			continue
		}
		k := Knob{Path: path}
		switch f.Type.Kind() {
		case reflect.Int, reflect.Int64:
			k.Type = "int"
			k.Baseline = strconv.FormatInt(fv.Int(), 10)
		case reflect.Float64:
			k.Type = "float"
			k.Baseline = strconv.FormatFloat(fv.Float(), 'g', -1, 64)
		case reflect.Bool:
			k.Type = "bool"
			k.Baseline = strconv.FormatBool(fv.Bool())
		case reflect.String:
			k.Type = "string"
			k.Baseline = fv.String()
		default:
			// Set rejects such a field too; skip rather than lie.
			continue
		}
		if b, ok := knobBounds[path]; ok {
			k.Min, k.Max = b.min, b.max
		}
		*out = append(*out, k)
	}
}

// KnobByPath returns the knob named by path, matching with Set's fuzzy
// rules (case, underscores and dashes ignored per segment).
func KnobByPath(path string) (Knob, error) {
	want := normalizeKnob(path)
	for _, k := range Knobs() {
		if normalizeKnob(k.Path) == want {
			return k, nil
		}
	}
	return Knob{}, fmt.Errorf("config: unknown knob %q", path)
}

// KnobValue reads cfg's current value for the knob named by path (any
// Set spelling), in Set's textual form — the inverse of Set for a single
// knob.
func KnobValue(cfg *Config, path string) (string, error) {
	segs := strings.Split(path, ".")
	t := reflect.TypeOf(*cfg)
	v := reflect.ValueOf(*cfg)
	for i, seg := range segs {
		field, ok := fieldByFuzzyName(t, seg)
		if !ok {
			return "", fmt.Errorf("config: unknown knob %q in path %q (known here: %s)", seg, path, fieldNames(t))
		}
		v = v.FieldByIndex(field.Index)
		t = field.Type
		last := i == len(segs)-1
		if t == reflect.TypeOf(Mode(0)) {
			if !last {
				return "", fmt.Errorf("config: knob %q in path %q is not a group", field.Name, path)
			}
			return v.Interface().(Mode).String(), nil
		}
		if t.Kind() == reflect.Struct {
			if last {
				return "", fmt.Errorf("config: path %q names a group, not a knob (members: %s)", path, fieldNames(t))
			}
			continue
		}
		if !last {
			return "", fmt.Errorf("config: knob %q in path %q is not a group", field.Name, path)
		}
	}
	switch t.Kind() {
	case reflect.Int, reflect.Int64:
		return strconv.FormatInt(v.Int(), 10), nil
	case reflect.Float64:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64), nil
	case reflect.Bool:
		return strconv.FormatBool(v.Bool()), nil
	case reflect.String:
		return v.String(), nil
	default:
		return "", fmt.Errorf("config: knob %q has unsupported kind %v", path, t.Kind())
	}
}

// knobPathSegment converts one Go field name to its canonical lower
// snake-case path segment: word boundaries fall before an upper-case
// rune that follows a lower-case rune or digit, and after an acronym of
// at least two runes ("MSHREntries" → "mshr_entries", "ICacheSizeBytes"
// → "icache_size_bytes", "ClockMHz" → "clock_mhz"). Any respelling
// round-trips through Set's normalizeKnob, which ignores the
// underscores again.
func knobPathSegment(name string) string {
	runes := []rune(name)
	var words []string
	start := 0
	for i := 1; i < len(runes); i++ {
		if !unicode.IsUpper(runes[i]) {
			continue
		}
		prev := runes[i-1]
		acronymEnd := unicode.IsUpper(prev) && i+1 < len(runes) && unicode.IsLower(runes[i+1]) && i-start >= 2
		if unicode.IsLower(prev) || unicode.IsDigit(prev) || acronymEnd {
			words = append(words, string(runes[start:i]))
			start = i
		}
	}
	words = append(words, string(runes[start:]))
	seg := ""
	for i, w := range words {
		if i > 0 {
			seg += "_"
		}
		for _, r := range w {
			seg += string(unicode.ToLower(r))
		}
	}
	return seg
}
