package config

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestPatchAppliesDelta(t *testing.T) {
	var p Patch
	doc := `{"base": "baseline", "L1": {"MSHREntries": 128}, "Core": {"MemPipelineWidth": 40}}`
	if err := json.Unmarshal([]byte(doc), &p); err != nil {
		t.Fatal(err)
	}
	if p.Base != "baseline" {
		t.Fatalf("base = %q", p.Base)
	}
	cfg, err := p.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.L1.MSHREntries != 128 || cfg.Core.MemPipelineWidth != 40 {
		t.Fatalf("patched knobs = %d/%d, want 128/40", cfg.L1.MSHREntries, cfg.Core.MemPipelineWidth)
	}
	// Untouched fields keep the base's values.
	if cfg.L1.MissQueueEntries != 8 || cfg.L2.NumBanks != 12 {
		t.Fatal("patch disturbed untouched fields")
	}
	if cfg.Name != "baseline-patched" {
		t.Fatalf("patched name = %q, want the base name suffixed", cfg.Name)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPatchEqualsHandwrittenConfig is the acceptance-criterion parity:
// a Patch on baseline and the equivalent handwritten inline config must
// share a ConfigID.
func TestPatchEqualsHandwrittenConfig(t *testing.T) {
	var p Patch
	if err := json.Unmarshal([]byte(`{"base":"baseline","L1":{"MSHREntries":128}}`), &p); err != nil {
		t.Fatal(err)
	}
	patched, err := p.Apply()
	if err != nil {
		t.Fatal(err)
	}
	hand := Baseline()
	hand.Name = "my-mitigation"
	hand.L1.MSHREntries = 128
	if patched.ConfigID() != hand.ConfigID() {
		t.Fatalf("patch ID %s != handwritten ID %s", patched.ConfigID(), hand.ConfigID())
	}
	// And an empty delta is the preset's twin.
	var twin Patch
	if err := json.Unmarshal([]byte(`{"base":"baseline"}`), &twin); err != nil {
		t.Fatal(err)
	}
	cfg, err := twin.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ConfigID() != Baseline().ConfigID() {
		t.Fatal("empty patch does not share the preset's identity")
	}
}

func TestPatchDefaultsToBaseline(t *testing.T) {
	var p Patch
	if err := json.Unmarshal([]byte(`{"L2":{"NumBanks":24}}`), &p); err != nil {
		t.Fatal(err)
	}
	cfg, err := p.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.L2.NumBanks != 24 || cfg.Core.NumCores != 15 {
		t.Fatalf("patched config = %+v", cfg.L2)
	}
}

func TestPatchRejectsGarbage(t *testing.T) {
	var p Patch
	if err := json.Unmarshal([]byte(`{"base":"nope"}`), &p); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply(); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown base: err = %v", err)
	}
	if err := json.Unmarshal([]byte(`{"base":"baseline","L1":{"MshrEntriez":1}}`), &p); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply(); err == nil {
		t.Fatal("typo'd field silently ignored")
	}
	if err := json.Unmarshal([]byte(`[1,2]`), &p); err == nil {
		t.Fatal("non-object patch accepted")
	}
}

func TestPatchJSONRoundTrip(t *testing.T) {
	var p Patch
	doc := `{"base":"L2-4x","L1":{"MSHREntries":64}}`
	if err := json.Unmarshal([]byte(doc), &p); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Patch
	if err := json.Unmarshal(out, &q); err != nil {
		t.Fatal(err)
	}
	a, err := p.Apply()
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if a.ConfigID() != b.ConfigID() {
		t.Fatal("patch JSON round trip changed the applied identity")
	}
}

func TestSetKnobs(t *testing.T) {
	cfg := Baseline()
	err := cfg.Set("l1.mshr_entries=128", "L2.MissQueueEntries=32", "dram.timing.rcd=14",
		"core.clockmhz=1600.5", "dram.infinite=true", "name=tuned", "mode=normal")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.L1.MSHREntries != 128 || cfg.L2.MissQueueEntries != 32 || cfg.DRAM.Timing.RCD != 14 {
		t.Fatalf("set knobs = %d/%d/%d", cfg.L1.MSHREntries, cfg.L2.MissQueueEntries, cfg.DRAM.Timing.RCD)
	}
	if cfg.Core.ClockMHz != 1600.5 || !cfg.DRAM.Infinite || cfg.Name != "tuned" || cfg.Mode != ModeNormal {
		t.Fatalf("set knobs = %+v", cfg)
	}
}

func TestSetRejectsBadKnobs(t *testing.T) {
	cfg := Baseline()
	for _, bad := range []string{
		"l1.mshr_entries",        // no value
		"l1.nope=1",              // unknown knob
		"nope.mshr_entries=1",    // unknown group
		"l1=1",                   // group, not a knob
		"l1.mshr_entries.deep=1", // scalar has no members
		"l1.mshr_entries=abc",    // not an integer
		"dram.infinite=perhaps",  // not a boolean
		"mode=turbo",             // unknown mode name
		"core.clockmhz=fast",     // not a number
	} {
		if err := cfg.Set(bad); err == nil {
			t.Errorf("%q: accepted", bad)
		}
	}
	// Errors must name the valid knobs at the failing level.
	err := cfg.Set("l1.nope=1")
	if err == nil || !strings.Contains(err.Error(), "MSHREntries") {
		t.Fatalf("err = %v, want the valid knob names", err)
	}
}

// TestSetEqualsPatchDelta: the -set path and a handwritten patch must
// resolve to the same identity — the parity gpusim and gpusimctl rely on.
func TestSetEqualsPatchDelta(t *testing.T) {
	delta, err := DeltaFromSets([]string{"l1.mshr_entries=128", "l1.miss_queue_entries=32"})
	if err != nil {
		t.Fatal(err)
	}
	fromSet, err := Patch{Base: "baseline", Delta: delta}.Apply()
	if err != nil {
		t.Fatal(err)
	}
	var hand Patch
	if err := json.Unmarshal([]byte(`{"base":"baseline","L1":{"MSHREntries":128,"MissQueueEntries":32}}`), &hand); err != nil {
		t.Fatal(err)
	}
	fromDoc, err := hand.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if fromSet.ConfigID() != fromDoc.ConfigID() {
		t.Fatal("-set delta and handwritten patch diverge")
	}
}

func TestMergeDeltas(t *testing.T) {
	a := json.RawMessage(`{"L1":{"MSHREntries":64,"Ways":4},"MaxCycles":5000000}`)
	b := json.RawMessage(`{"L1":{"MSHREntries":128},"Name":"merged"}`)
	merged, err := MergeDeltas(a, b)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Baseline()
	if err := ApplyDelta(&cfg, merged); err != nil {
		t.Fatal(err)
	}
	if cfg.L1.MSHREntries != 128 || cfg.L1.Ways != 4 || cfg.Name != "merged" || cfg.MaxCycles != 5_000_000 {
		t.Fatalf("merged = mshr %d ways %d name %q max %d", cfg.L1.MSHREntries, cfg.L1.Ways, cfg.Name, cfg.MaxCycles)
	}
}

func TestParseConfigDocDetectsForm(t *testing.T) {
	cfg, patch, err := ParseConfigDoc("t", []byte(`{"base":"baseline","L1":{"MSHREntries":64}}`))
	if err != nil || cfg != nil || patch == nil {
		t.Fatalf("patch doc: cfg=%v patch=%v err=%v", cfg, patch, err)
	}
	full, err := json.Marshal(Baseline())
	if err != nil {
		t.Fatal(err)
	}
	cfg, patch, err = ParseConfigDoc("t", full)
	if err != nil || cfg == nil || patch != nil {
		t.Fatalf("full doc: cfg=%v patch=%v err=%v", cfg, patch, err)
	}
	if cfg.ConfigID() != Baseline().ConfigID() {
		t.Fatal("full doc round trip changed identity")
	}
	if _, _, err := ParseConfigDoc("t", []byte(`{"NotAField":1}`)); err == nil {
		t.Fatal("unknown field in full config accepted")
	}
}

// TestValidateRejectsHostileConfigs: untrusted inline configs must not
// be able to OOM (huge allocations), panic (divisions by zero in
// geometry derivation, unknown modes reaching a nil latency oracle) or
// livelock (runaway clock ratios) the simulator.
func TestValidateRejectsHostileConfigs(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"zero line size", func(c *Config) { c.L1.LineBytes, c.L2.LineBytes = 0, 0 }},
		{"non-pow2 line size", func(c *Config) { c.L1.LineBytes, c.L2.LineBytes = 96, 96 }},
		{"mismatched line sizes", func(c *Config) { c.L2.LineBytes = 256 }},
		{"non-divisible L1 geometry", func(c *Config) { c.L1.SizeBytes = 16*1024 + 128 }},
		{"non-divisible L2 banking", func(c *Config) { c.L2.NumBanks = 7 }},
		{"zero icache ways", func(c *Config) { c.L1.ICacheWays = 0 }},
		{"negative L1 miss queue", func(c *Config) { c.L1.MissQueueEntries = -8 }},
		{"negative L2 access queue", func(c *Config) { c.L2.AccessQueueEntries = -1 }},
		{"negative DRAM sched queue", func(c *Config) { c.DRAM.SchedQueueEntries = -16 }},
		{"huge queue", func(c *Config) { c.L2.MissQueueEntries = 1 << 30 }},
		{"huge cache", func(c *Config) { c.L1.SizeBytes = 1 << 40 }},
		{"huge warp count", func(c *Config) { c.Core.WarpsPerCore = 1 << 20 }},
		{"huge core*warp product", func(c *Config) { c.Core.NumCores, c.Core.WarpsPerCore = 1024, 16384 }},
		{"NaN core clock", func(c *Config) { c.Core.ClockMHz = math.NaN() }},
		{"NaN icnt clock", func(c *Config) { c.Icnt.ClockMHz = math.NaN() }},
		{"negative DRAM clock", func(c *Config) { c.DRAM.ClockMHz = -924 }},
		{"runaway clock ratio", func(c *Config) { c.Core.ClockMHz = 1e-3; c.DRAM.ClockMHz = 1e5 }},
		{"zero bus width", func(c *Config) { c.DRAM.BusWidthBits = 0 }},
		{"zero data rate", func(c *Config) { c.DRAM.DataRate = 0 }},
		{"zero DRAM banks", func(c *Config) { c.DRAM.BanksPerChip = 0 }},
		{"negative timing", func(c *Config) { c.DRAM.Timing.RAS = -1 }},
		{"unknown mode", func(c *Config) { c.Mode = 99 }},
		{"negative MaxCycles", func(c *Config) { c.MaxCycles = -1 }},
		{"negative fixed latency", func(c *Config) { c.Mode = ModeFixedL1MissLat; c.FixedL1MissLatency = -1 }},
		{"huge ideal latency", func(c *Config) { c.Mode = ModeInfiniteBW; c.IdealMemLatency = 1 << 40 }},
	} {
		c := Baseline()
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
