package config

import (
	"strings"
	"testing"
)

// Every enumerated knob must round-trip through Set: the canonical path
// with the baseline value applied to the baseline config is a no-op
// assignment that Set accepts. This pins Knobs() and Set to the same
// field tree.
func TestKnobsRoundTripThroughSet(t *testing.T) {
	for _, k := range Knobs() {
		cfg := Baseline()
		if err := cfg.Set(k.Path + "=" + k.Baseline); err != nil {
			t.Errorf("Set(%s=%s): %v", k.Path, k.Baseline, err)
		}
	}
}

// Every numeric knob must carry explicit bounds, so adding a Config
// field without deciding its hostile-config cap fails here rather than
// shipping an unbounded knob.
func TestKnobBoundsComplete(t *testing.T) {
	for _, k := range Knobs() {
		if k.Type != "int" && k.Type != "float" {
			continue
		}
		if _, ok := knobBounds[k.Path]; !ok {
			t.Errorf("numeric knob %s has no bounds entry", k.Path)
		}
	}
	// And no stale entries for knobs that no longer exist.
	paths := map[string]bool{}
	for _, k := range Knobs() {
		paths[k.Path] = true
	}
	for p := range knobBounds {
		if !paths[p] {
			t.Errorf("knobBounds entry %s names no enumerated knob", p)
		}
	}
}

func TestKnobsSpotChecks(t *testing.T) {
	byPath := map[string]Knob{}
	for _, k := range Knobs() {
		byPath[k.Path] = k
	}
	mshr, ok := byPath["l1.mshr_entries"]
	if !ok {
		t.Fatalf("l1.mshr_entries missing from %d knobs", len(byPath))
	}
	if mshr.Type != "int" || mshr.Baseline != "32" || mshr.Min != 1 || mshr.Max != 1<<20 {
		t.Errorf("l1.mshr_entries = %+v", mshr)
	}
	if k := byPath["mode"]; k.Type != "mode" || k.Baseline != "normal" {
		t.Errorf("mode knob = %+v", k)
	}
	if k := byPath["dram.timing.rcd"]; k.Type != "int" || k.Max != 1<<20 {
		t.Errorf("dram.timing.rcd = %+v", k)
	}
	if k := byPath["core.clock_mhz"]; k.Type != "float" || k.Baseline != "1400" {
		t.Errorf("core.clock_mhz = %+v", k)
	}
	for p := range byPath {
		if strings.Contains(p, "m_hz") || strings.Contains(p, "mshre") {
			t.Errorf("ugly path segment: %s", p)
		}
	}
}

// KnobByPath matches with Set's fuzzy spelling rules.
func TestKnobByPathFuzzy(t *testing.T) {
	for _, spelling := range []string{"l1.mshr_entries", "L1.MSHREntries", "l1.mshrentries"} {
		k, err := KnobByPath(spelling)
		if err != nil {
			t.Fatalf("KnobByPath(%q): %v", spelling, err)
		}
		if k.Path != "l1.mshr_entries" {
			t.Errorf("KnobByPath(%q) = %s", spelling, k.Path)
		}
	}
	if _, err := KnobByPath("l1.nope"); err == nil {
		t.Error("KnobByPath accepted unknown knob")
	}
}
