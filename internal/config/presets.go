package config

import "fmt"

// Baseline returns the GTX 480 (Fermi) baseline of Table I.
func Baseline() Config {
	return Config{
		Name: "baseline",
		Core: CoreConfig{
			NumCores:         15,
			WarpsPerCore:     48, // 1536 threads / 32-wide warps
			ClockMHz:         1400,
			IssueWidth:       1,
			MemPipelineWidth: 10,
			ALULatency:       4,
		},
		L1: L1Config{
			SizeBytes:        16 * 1024,
			LineBytes:        128,
			Ways:             4,
			MSHREntries:      32,
			MSHRMaxMerge:     8,
			MissQueueEntries: 8,
			HitLatency:       1,
			ResponseFIFO:     8,
			ICacheSizeBytes:  4 * 1024,
			ICacheWays:       4,
		},
		Icnt: IcntConfig{
			ReqFlitBytes:     32,
			ReplyFlitBytes:   32,
			InputBufFlits:    8,
			OutputBufPackets: 8,
			LatencyCycles:    8,
			ClockMHz:         700,
		},
		L2: L2Config{
			SizeBytes:            768 * 1024,
			LineBytes:            128,
			Ways:                 8,
			NumBanks:             12,
			MSHREntries:          32,
			MSHRMaxMerge:         8,
			MissQueueEntries:     8,
			AccessQueueEntries:   8,
			ResponseQueueEntries: 8,
			DataPortBytes:        32,
			TagLatency:           34,
			ClockMHz:             700,
		},
		DRAM: DRAMConfig{
			NumPartitions:      6,
			BusWidthBits:       384,
			DataRate:           4,
			BanksPerChip:       16,
			RowBytes:           4 * 1024,
			SchedQueueEntries:  16,
			ReturnQueueEntries: 8,
			CtrlLatency:        43,
			ClockMHz:           924,
			Timing: DRAMTiming{
				CCD: 2, RRD: 6, RCD: 12, RAS: 28, RP: 12,
				RC: 40, CL: 12, WL: 4, CDLR: 5, WR: 12,
			},
			InfiniteLatency: 90,
		},
		Mode:              ModeNormal,
		IdealL2HitLatency: 120,
		IdealMemLatency:   220,
		MaxCycles:         5_000_000,
	}
}

// ScaleFactor is the design-point scaling the paper applies in Fig. 10
// ("As a typical HBM provides up to 4× bandwidth compared to GDDR5 DRAM,
// we evaluate similar factor of scaling in other levels of the memory").
const ScaleFactor = 4

// ScaledL1 returns the baseline with the L1 knobs of Table III scaled 4×:
// miss queue 8→32, MSHR 32→128, memory pipeline width 10→40.
func ScaledL1() Config {
	c := Baseline()
	c.Name = "L1-4x"
	scaleL1(&c)
	return c
}

// ScaledL2 returns the baseline with the L2 knobs of Table III scaled 4×:
// miss/response/access queues 8→32, MSHR 32→128, data port 32→128 B,
// crossbar flits 32+32→128+128 B, banks 12→48.
func ScaledL2() Config {
	c := Baseline()
	c.Name = "L2-4x"
	scaleL2(&c)
	return c
}

// ScaledDRAM returns the baseline with the DRAM knobs of Table III scaled
// 4×: scheduler queue 16→64, banks/chip 16→64, bus width 384→1536 bits.
// This is also the paper's model of an HBM-class memory system.
func ScaledDRAM() Config {
	c := Baseline()
	c.Name = "DRAM-4x"
	scaleDRAM(&c)
	return c
}

// ScaledL1L2 scales L1 and L2 synergistically (the "L1+L2" bars of Fig. 10).
func ScaledL1L2() Config {
	c := Baseline()
	c.Name = "L1+L2-4x"
	scaleL1(&c)
	scaleL2(&c)
	return c
}

// ScaledL2DRAM scales L2 and DRAM synergistically ("L2+DRAM" in Fig. 10).
func ScaledL2DRAM() Config {
	c := Baseline()
	c.Name = "L2+DRAM-4x"
	scaleL2(&c)
	scaleDRAM(&c)
	return c
}

// ScaledAll scales every level ("All" in Fig. 10).
func ScaledAll() Config {
	c := Baseline()
	c.Name = "All-4x"
	scaleL1(&c)
	scaleL2(&c)
	scaleDRAM(&c)
	return c
}

// HBM returns a memory system with the baseline cache hierarchy and an
// HBM-class DRAM (4× bandwidth), the comparison point of Figs. 10 and 12.
func HBM() Config {
	c := ScaledDRAM()
	c.Name = "HBM"
	return c
}

func scaleL1(c *Config) { ScaleL1(c, ScaleFactor) }

func scaleL2(c *Config) { ScaleL2(c, ScaleFactor) }

func scaleDRAM(c *Config) { ScaleDRAM(c, ScaleFactor) }

// ScaleL1, ScaleL2 and ScaleDRAM scale one memory level's Table III
// knobs by factor — the single definition of what "scaling a level"
// means, shared by the Fig. 10 presets above and the design-space CLIs,
// so a CLI-scaled level with the preset's factor is the content-
// addressed twin of the preset.

// ScaleL1 scales the L1 knobs: miss queue, MSHRs, memory pipeline width.
func ScaleL1(c *Config, factor int) {
	c.L1.MissQueueEntries *= factor
	c.L1.MSHREntries *= factor
	c.Core.MemPipelineWidth *= factor
}

// ScaleL2 scales the L2 knobs: every queue, MSHRs, data port, crossbar
// flits, and the bank count (each bank owns a crossbar port).
func ScaleL2(c *Config, factor int) {
	c.L2.MissQueueEntries *= factor
	c.L2.ResponseQueueEntries *= factor
	c.L2.MSHREntries *= factor
	c.L2.AccessQueueEntries *= factor
	c.L2.DataPortBytes *= factor
	c.Icnt.ReqFlitBytes *= factor
	c.Icnt.ReplyFlitBytes *= factor
	c.L2.NumBanks *= factor
}

// ScaleDRAM scales the DRAM bandwidth knobs: scheduler queue, banks per
// chip, bus width.
func ScaleDRAM(c *Config, factor int) {
	c.DRAM.SchedQueueEntries *= factor
	c.DRAM.BanksPerChip *= factor
	c.DRAM.BusWidthBits *= factor
}

// costEffectiveBase applies the Type '=' knobs of Table III's cost-effective
// column: L1/L2 miss, response and access queues to 32 entries, L1 MSHR to
// 48, memory pipeline width to 40. Type '+' parameters (port width, banks,
// DRAM) stay at baseline; only the crossbar flit split changes per variant.
func costEffectiveBase() Config {
	c := Baseline()
	c.L2.MissQueueEntries = 32
	c.L2.ResponseQueueEntries = 32
	c.L2.AccessQueueEntries = 32
	c.L1.MissQueueEntries = 32
	c.L1.MSHREntries = 48
	c.Core.MemPipelineWidth = 40
	return c
}

// CostEffective16x48 is the paper's 16+48 asymmetric crossbar: the request
// network shrinks to 16 B flits and the reply network grows to 48 B, keeping
// the total point-to-point wire count equal to the 32+32 baseline.
func CostEffective16x48() Config {
	c := costEffectiveBase()
	c.Name = "cost-effective-16+48"
	c.Icnt.ReqFlitBytes = 16
	c.Icnt.ReplyFlitBytes = 48
	return c
}

// CostEffective16x68 is the paper's best configuration (+29% average IPC):
// 16 B request flits, 68 B reply flits (20 B more wire than baseline).
func CostEffective16x68() Config {
	c := costEffectiveBase()
	c.Name = "cost-effective-16+68"
	c.Icnt.ReqFlitBytes = 16
	c.Icnt.ReplyFlitBytes = 68
	return c
}

// CostEffective32x52 keeps the baseline request network and grows the reply
// network to 52 B flits (same 20 B wire overhead as 16+68).
func CostEffective32x52() Config {
	c := costEffectiveBase()
	c.Name = "cost-effective-32+52"
	c.Icnt.ReqFlitBytes = 32
	c.Icnt.ReplyFlitBytes = 52
	return c
}

// AsymmetricOnly is the 16+48 crossbar without the cost-effective queue and
// MSHR scaling; the paper reports it reaches only +15.5%, demonstrating that
// synergistic scaling matters (§VII-C).
func AsymmetricOnly() Config {
	c := Baseline()
	c.Name = "asymmetric-16+48-only"
	c.Icnt.ReqFlitBytes = 16
	c.Icnt.ReplyFlitBytes = 48
	return c
}

// InfiniteBW returns the P∞ memory system of Table II: no bandwidth limits
// anywhere, minimum access latencies only.
func InfiniteBW() Config {
	c := Baseline()
	c.Name = "P-inf"
	c.Mode = ModeInfiniteBW
	return c
}

// InfiniteDRAM returns the P_DRAM memory system of Table II: the baseline
// cache hierarchy backed by an infinite-bandwidth, fixed 100-cycle DRAM.
func InfiniteDRAM() Config {
	c := Baseline()
	c.Name = "P-dram"
	c.DRAM.Infinite = true
	return c
}

// FixedL1MissLatency returns the Fig. 3 configuration in which every L1
// miss completes after exactly lat core cycles. The name carries the
// design point ("fixed-lat-300"), so every consumer — the experiment
// engine's memo keys, progress lines and JSON output — labels the same
// derived configuration the same way.
func FixedL1MissLatency(lat int) Config {
	c := Baseline()
	c.Name = fmt.Sprintf("fixed-lat-%d", lat)
	c.Mode = ModeFixedL1MissLat
	c.FixedL1MissLatency = lat
	return c
}

// WithCoreClock returns a copy of c with the core clock set to mhz,
// leaving the interconnect, L2 and DRAM clocks untouched — the Fig. 11
// frequency-scaling experiment. Like FixedL1MissLatency, the name carries
// the design point, appended to the base name
// ("baseline-core-1600MHz") so a derived non-baseline config keeps its
// provenance in progress lines and job listings.
func WithCoreClock(c Config, mhz float64) Config {
	c.Core.ClockMHz = mhz
	c.Name = fmt.Sprintf("%s-core-%gMHz", c.Name, mhz)
	return c
}
