// Package area estimates the silicon cost of memory-hierarchy
// configurations, calibrated to the GPUWattch-derived numbers the paper
// reports in §VII-C: buffer entries of 128 B, miss-queue and MSHR entries
// of 8 B, 7.48 mm² for 94 KB of added storage at 40 nm, a 27 mm² baseline
// crossbar of which 11.6 mm² is wires for 64 B of total flit width, and a
// 700 mm² die.
package area

import "gpumembw/internal/config"

const (
	// BufferEntryBytes is the width of one access/response-queue or
	// memory-pipeline entry (a full cache line plus control).
	BufferEntryBytes = 128
	// SmallEntryBytes is the width of one miss-queue or MSHR entry
	// (address plus bookkeeping).
	SmallEntryBytes = 8

	// MM2PerKB converts added storage to area at 40 nm: the paper maps
	// 94 KB to 7.48 mm².
	MM2PerKB = 7.48 / 94.0

	// CrossbarWireMM2PerByte converts point-to-point flit bytes to wire
	// area: 11.6 mm² of wires for the 64 B (32+32) baseline.
	CrossbarWireMM2PerByte = 11.6 / 64.0

	// BaselineCrossbarMM2 is the total baseline interconnect area.
	BaselineCrossbarMM2 = 27.0

	// DieMM2 is the GTX 480 die area the paper normalizes against.
	DieMM2 = 700.0
)

// Estimate is the area cost of a configuration relative to a baseline.
type Estimate struct {
	StorageKB    float64 // added buffer/MSHR storage
	StorageMM2   float64
	CrossbarMM2  float64 // added crossbar wire area
	TotalMM2     float64
	OverheadFrac float64 // TotalMM2 / DieMM2
}

// Compare estimates the area delta of cfg over base.
//
// Storage deltas follow the paper's accounting: access and response queues
// (and the LSU memory pipeline) count 128 B per entry; miss queues and
// MSHRs count 8 B per entry. Crossbar cost is wire-dominated and scales
// with the total per-connection flit bytes. Negative deltas (shrinking a
// structure) reduce the estimate.
func Compare(base, cfg *config.Config) Estimate {
	var bytes float64

	// L2 structures, per bank.
	l2banks := float64(cfg.L2.NumBanks)
	bytes += l2banks * float64(cfg.L2.AccessQueueEntries-base.L2.AccessQueueEntries) * BufferEntryBytes
	bytes += l2banks * float64(cfg.L2.ResponseQueueEntries-base.L2.ResponseQueueEntries) * BufferEntryBytes
	bytes += l2banks * float64(cfg.L2.MissQueueEntries-base.L2.MissQueueEntries) * SmallEntryBytes
	bytes += l2banks * float64(cfg.L2.MSHREntries-base.L2.MSHREntries) * SmallEntryBytes

	// L1 structures, per core.
	cores := float64(cfg.Core.NumCores)
	bytes += cores * float64(cfg.L1.MissQueueEntries-base.L1.MissQueueEntries) * SmallEntryBytes
	bytes += cores * float64(cfg.L1.MSHREntries-base.L1.MSHREntries) * SmallEntryBytes
	bytes += cores * float64(cfg.Core.MemPipelineWidth-base.Core.MemPipelineWidth) * BufferEntryBytes

	// DRAM scheduler queue, per partition.
	parts := float64(cfg.DRAM.NumPartitions)
	bytes += parts * float64(cfg.DRAM.SchedQueueEntries-base.DRAM.SchedQueueEntries) * SmallEntryBytes

	kb := bytes / 1024

	flitDelta := float64(cfg.Icnt.ReqFlitBytes + cfg.Icnt.ReplyFlitBytes -
		base.Icnt.ReqFlitBytes - base.Icnt.ReplyFlitBytes)
	xbar := flitDelta * CrossbarWireMM2PerByte

	e := Estimate{
		StorageKB:   kb,
		StorageMM2:  kb * MM2PerKB,
		CrossbarMM2: xbar,
	}
	e.TotalMM2 = e.StorageMM2 + e.CrossbarMM2
	e.OverheadFrac = e.TotalMM2 / DieMM2
	return e
}
