package area

import (
	"math"
	"testing"

	"gpumembw/internal/config"
)

func TestBaselineHasZeroOverhead(t *testing.T) {
	base := config.Baseline()
	e := Compare(&base, &base)
	if e.TotalMM2 != 0 || e.StorageKB != 0 {
		t.Fatalf("baseline vs baseline = %+v", e)
	}
}

func TestAsymmetric16x48HasNoWireOverhead(t *testing.T) {
	base := config.Baseline()
	ce := config.CostEffective16x48()
	e := Compare(&base, &ce)
	if e.CrossbarMM2 != 0 {
		t.Fatalf("16+48 keeps total flit bytes at 64; wire delta = %g mm²", e.CrossbarMM2)
	}
	if e.StorageKB <= 0 {
		t.Fatal("cost-effective queues must add storage")
	}
	// Paper: ≈1.1% overhead for the storage-only configuration.
	if e.OverheadFrac < 0.005 || e.OverheadFrac > 0.02 {
		t.Fatalf("16+48 overhead = %.2f%%, want ≈1.1%%", 100*e.OverheadFrac)
	}
}

func TestWiderCrossbarsCost20BytesOfWire(t *testing.T) {
	base := config.Baseline()
	for _, cfg := range []config.Config{config.CostEffective16x68(), config.CostEffective32x52()} {
		e := Compare(&base, &cfg)
		// Paper: +20 B of point-to-point wires = 3.62 mm².
		if math.Abs(e.CrossbarMM2-3.625) > 0.01 {
			t.Errorf("%s crossbar delta = %g mm², want ≈3.62", cfg.Name, e.CrossbarMM2)
		}
		// Paper: ≈1.6% net overhead including buffers and MSHRs.
		if e.OverheadFrac < 0.01 || e.OverheadFrac > 0.025 {
			t.Errorf("%s overhead = %.2f%%, want ≈1.6%%", cfg.Name, 100*e.OverheadFrac)
		}
	}
}

func TestStorageAccountingMatchesPaperDensity(t *testing.T) {
	// 94 KB must map to 7.48 mm² by construction.
	if got := 94 * MM2PerKB; math.Abs(got-7.48) > 1e-9 {
		t.Fatalf("density calibration broken: %g", got)
	}
	// 64 B of flit width must map to 11.6 mm² of wires.
	if got := 64 * CrossbarWireMM2PerByte; math.Abs(got-11.6) > 1e-9 {
		t.Fatalf("wire calibration broken: %g", got)
	}
}

func TestScaledL2CostsMoreThanCostEffective(t *testing.T) {
	base := config.Baseline()
	ce := config.CostEffective16x68()
	scaled := config.ScaledL2()
	eCE := Compare(&base, &ce)
	eScaled := Compare(&base, &scaled)
	if eScaled.TotalMM2 <= eCE.TotalMM2 {
		t.Fatalf("4× L2 scaling (%.1f mm²) must cost more than cost-effective (%.1f mm²)",
			eScaled.TotalMM2, eCE.TotalMM2)
	}
}

func TestShrinkingReducesEstimate(t *testing.T) {
	base := config.Baseline()
	small := config.Baseline()
	small.L2.AccessQueueEntries = 4
	e := Compare(&base, &small)
	if e.StorageKB >= 0 {
		t.Fatalf("shrinking queues must yield negative storage, got %g KB", e.StorageKB)
	}
}

// TestTableIIIMitigationLadderGolden pins the full mitigation-ladder
// estimates: each Table III rung — MSHRs, miss queues, L2 banking and
// DRAM scaling at the paper's 2× and 4× points, plus the all-4×
// combination — against exact golden StorageKB/TotalMM2/OverheadFrac
// values. Any change to the area model's accounting (entry widths,
// density calibration, which structures are counted) shows up here as
// a diff against the numbers EXPERIMENTS.md reports.
func TestTableIIIMitigationLadderGolden(t *testing.T) {
	base := config.Baseline()
	ladder := []struct {
		name                              string
		apply                             func(*config.Config)
		storageKB, totalMM2, overheadFrac float64
	}{
		{"mshr-2x", func(c *config.Config) { c.L1.MSHREntries *= 2; c.L2.MSHREntries *= 2 },
			6.75, 0.537128, 0.000767325},
		{"mshr-4x", func(c *config.Config) { c.L1.MSHREntries *= 4; c.L2.MSHREntries *= 4 },
			20.25, 1.61138, 0.00230198},
		{"missq-2x", func(c *config.Config) { c.L1.MissQueueEntries *= 2; c.L2.MissQueueEntries *= 2 },
			1.6875, 0.134282, 0.000191831},
		{"missq-4x", func(c *config.Config) { c.L1.MissQueueEntries *= 4; c.L2.MissQueueEntries *= 4 },
			5.0625, 0.402846, 0.000575494},
		// Re-banking the same L2 capacity is area-neutral in the model:
		// per-bank structure sizes are unchanged, and the SRAM arrays are
		// repartitioned, not grown.
		{"l2banks-2x", func(c *config.Config) { c.L2.NumBanks *= 2 }, 0, 0, 0},
		{"l2banks-4x", func(c *config.Config) { c.L2.NumBanks *= 4 }, 0, 0, 0},
		{"dram-2x", func(c *config.Config) { config.ScaleDRAM(c, 2) },
			0.75, 0.0596809, 8.52584e-05},
		{"dram-4x", func(c *config.Config) { config.ScaleDRAM(c, 4) },
			2.25, 0.179043, 0.000255775},
		// The all-4× rung multiplies the per-bank miss-queue and MSHR
		// deltas across 48 banks, which is why it dwarfs the sum of the
		// individual rungs.
		{"all-4x", func(c *config.Config) {
			c.L1.MSHREntries *= 4
			c.L2.MSHREntries *= 4
			c.L1.MissQueueEntries *= 4
			c.L2.MissQueueEntries *= 4
			c.L2.NumBanks *= 4
			config.ScaleDRAM(c, 4)
		}, 61.3125, 4.87891, 0.00696987},
	}
	for _, rung := range ladder {
		cfg := config.Baseline()
		rung.apply(&cfg)
		cfg.Name = rung.name
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", rung.name, err)
		}
		e := Compare(&base, &cfg)
		if math.Abs(e.StorageKB-rung.storageKB) > 1e-4 {
			t.Errorf("%s: StorageKB = %.6g, golden %.6g", rung.name, e.StorageKB, rung.storageKB)
		}
		if math.Abs(e.TotalMM2-rung.totalMM2) > 1e-4 {
			t.Errorf("%s: TotalMM2 = %.6g, golden %.6g", rung.name, e.TotalMM2, rung.totalMM2)
		}
		if math.Abs(e.OverheadFrac-rung.overheadFrac) > 1e-7 {
			t.Errorf("%s: OverheadFrac = %.6g, golden %.6g", rung.name, e.OverheadFrac, rung.overheadFrac)
		}
	}
}
