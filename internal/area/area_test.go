package area

import (
	"math"
	"testing"

	"gpumembw/internal/config"
)

func TestBaselineHasZeroOverhead(t *testing.T) {
	base := config.Baseline()
	e := Compare(&base, &base)
	if e.TotalMM2 != 0 || e.StorageKB != 0 {
		t.Fatalf("baseline vs baseline = %+v", e)
	}
}

func TestAsymmetric16x48HasNoWireOverhead(t *testing.T) {
	base := config.Baseline()
	ce := config.CostEffective16x48()
	e := Compare(&base, &ce)
	if e.CrossbarMM2 != 0 {
		t.Fatalf("16+48 keeps total flit bytes at 64; wire delta = %g mm²", e.CrossbarMM2)
	}
	if e.StorageKB <= 0 {
		t.Fatal("cost-effective queues must add storage")
	}
	// Paper: ≈1.1% overhead for the storage-only configuration.
	if e.OverheadFrac < 0.005 || e.OverheadFrac > 0.02 {
		t.Fatalf("16+48 overhead = %.2f%%, want ≈1.1%%", 100*e.OverheadFrac)
	}
}

func TestWiderCrossbarsCost20BytesOfWire(t *testing.T) {
	base := config.Baseline()
	for _, cfg := range []config.Config{config.CostEffective16x68(), config.CostEffective32x52()} {
		e := Compare(&base, &cfg)
		// Paper: +20 B of point-to-point wires = 3.62 mm².
		if math.Abs(e.CrossbarMM2-3.625) > 0.01 {
			t.Errorf("%s crossbar delta = %g mm², want ≈3.62", cfg.Name, e.CrossbarMM2)
		}
		// Paper: ≈1.6% net overhead including buffers and MSHRs.
		if e.OverheadFrac < 0.01 || e.OverheadFrac > 0.025 {
			t.Errorf("%s overhead = %.2f%%, want ≈1.6%%", cfg.Name, 100*e.OverheadFrac)
		}
	}
}

func TestStorageAccountingMatchesPaperDensity(t *testing.T) {
	// 94 KB must map to 7.48 mm² by construction.
	if got := 94 * MM2PerKB; math.Abs(got-7.48) > 1e-9 {
		t.Fatalf("density calibration broken: %g", got)
	}
	// 64 B of flit width must map to 11.6 mm² of wires.
	if got := 64 * CrossbarWireMM2PerByte; math.Abs(got-11.6) > 1e-9 {
		t.Fatalf("wire calibration broken: %g", got)
	}
}

func TestScaledL2CostsMoreThanCostEffective(t *testing.T) {
	base := config.Baseline()
	ce := config.CostEffective16x68()
	scaled := config.ScaledL2()
	eCE := Compare(&base, &ce)
	eScaled := Compare(&base, &scaled)
	if eScaled.TotalMM2 <= eCE.TotalMM2 {
		t.Fatalf("4× L2 scaling (%.1f mm²) must cost more than cost-effective (%.1f mm²)",
			eScaled.TotalMM2, eCE.TotalMM2)
	}
}

func TestShrinkingReducesEstimate(t *testing.T) {
	base := config.Baseline()
	small := config.Baseline()
	small.L2.AccessQueueEntries = 4
	e := Compare(&base, &small)
	if e.StorageKB >= 0 {
		t.Fatalf("shrinking queues must yield negative storage, got %g KB", e.StorageKB)
	}
}
