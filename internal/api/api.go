// Package api defines the versioned wire types of the gpusimd HTTP API,
// shared by the server (internal/server) and the Go client (client).
//
// All routes live under the "/v1" prefix (plus the unversioned GET
// /healthz). A job is one (configuration, workload) simulation cell. Both
// halves are first-class values: the configuration is a preset name, a
// full inline config.Config, or a mitigation-knob config.Patch on a
// named preset, and the workload is a Table II benchmark name or a full
// inline trace.Spec. The job ID is content-addressed — a hash of the
// configuration's canonical identity (config.Config.Identity: name
// excluded, mode-dead fields zeroed, preset names and patches resolved)
// and the workload spec's canonical identity (labels excluded, benchmark
// names resolved to their registered specs) — so resubmitting a cell,
// submitting it under a different label with identical parameters, or
// spelling a preset config or benchmark as an equivalent inline value
// all land on the same job. Cancellation (DELETE /v1/jobs/{id})
// therefore affects every client that submitted that cell.
//
// Every non-2xx response carries one uniform Error envelope —
// {code, detail, retryAfter} — whatever the route: 400/invalid_argument
// for malformed specs (the detail carries config.Validate /
// trace.Spec.Validate / patch-application text and, for unknown names,
// the list of valid ones), 404/not_found for unknown job or sweep IDs,
// 409/conflict for canceling a job that already finished,
// 429/resource_exhausted with a Retry-After header (mirrored in the
// body's retryAfter field) when the per-client rate limit or inflight
// quota rejects the request, and 503/unavailable when the bounded queue
// is full, the daemon is draining, or a cluster has no healthy workers.
// A coordinator proxies worker errors through unchanged, so clients see
// the same envelope whether they talk to one daemon or a fleet.
//
// Operational visibility rides on GET /v1/stats (this package's Stats)
// and GET /metrics (the same counters in Prometheus text form); the two
// reconcile exactly whenever the daemon is quiescent.
package api

import (
	"time"

	"gpumembw/internal/config"
	"gpumembw/internal/core"
	"gpumembw/internal/exp"
	"gpumembw/internal/obsv"
	"gpumembw/internal/trace"
)

// Version is the API version segment all job routes are mounted under.
const Version = "v1"

// JobState is the lifecycle state of a submitted job.
type JobState string

const (
	// JobQueued means the job is waiting in the bounded queue.
	JobQueued JobState = "queued"
	// JobRunning means a worker picked the job up (or is waiting on the
	// same cell already in flight for another job).
	JobRunning JobState = "running"
	// JobDone means the simulation finished and Metrics is populated.
	JobDone JobState = "done"
	// JobFailed means the simulation returned an error (see Job.Error).
	// The simulator is deterministic and the scheduler memoizes failures,
	// so resubmitting the spec returns the same failed job.
	JobFailed JobState = "failed"
	// JobCanceled means the job was canceled while queued or running
	// (DELETE /v1/jobs/{id}). A running job's simulation cannot be
	// preempted mid-cell: the worker finishes it and its result still
	// lands in the daemon's caches, but the job record stays canceled —
	// consistently in GET /v1/jobs/{id} and /v1/stats alike.
	// Resubmitting the same spec re-enqueues it (cheaply, if the cell
	// already simulated).
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final — polling can stop.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobSpec names one simulation cell. Exactly one of Config (a preset
// name, see GET /v1/configs), InlineConfig (a full config.Config value,
// validated server-side with config.Validate) or ConfigPatch (a sparse
// mitigation-knob overlay on a named preset, e.g.
// {"base":"baseline","L1":{"MSHREntries":128}}) must be set, and
// likewise exactly one of Bench (a Table II benchmark name, see GET
// /v1/benchmarks) or InlineSpec (a full trace.Spec value, validated
// server-side with trace.Spec.Validate; an empty Name defaults to
// "custom"). An inline config or patch that resolves to a preset's
// canonical identity, or an inline spec equal to a registered benchmark
// (labels aside), lands on the preset's cell.
type JobSpec struct {
	Config       string         `json:"config,omitempty"`
	InlineConfig *config.Config `json:"inlineConfig,omitempty"`
	ConfigPatch  *config.Patch  `json:"configPatch,omitempty"`
	Bench        string         `json:"bench,omitempty"`
	InlineSpec   *trace.Spec    `json:"inlineSpec,omitempty"`

	// Profile requests the in-simulation bottleneck profiler for this
	// job: when true, GET /v1/jobs/{id}/profile serves the windowed
	// per-level time series and verdict once the job is done. Profiling
	// never changes cell identity or metrics — a profiled and an
	// unprofiled submission of the same cell are the same job.
	Profile bool `json:"profile,omitempty"`
}

// Job is the server's view of one submitted cell, returned by POST
// /v1/jobs, GET /v1/jobs/{id} and DELETE /v1/jobs/{id}.
type Job struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Spec  JobSpec  `json:"spec"`

	// Metrics is set once State == JobDone. It is byte-identical (as
	// canonical JSON) to what `gpusim -json` prints for the same cell.
	Metrics *core.Metrics `json:"metrics,omitempty"`
	// Error is set once State == JobFailed.
	Error string `json:"error,omitempty"`

	// Tier attributes a done job to the cache tier that satisfied it:
	// "simulated", "memo" or "disk" (exp.TierSimulated & co). Consumers
	// like the design-space explorer use it to report how much of a run
	// was actually simulated versus replayed.
	Tier string `json:"tier,omitempty"`

	SubmittedAt time.Time  `json:"submittedAt"`
	StartedAt   *time.Time `json:"startedAt,omitempty"`
	FinishedAt  *time.Time `json:"finishedAt,omitempty"`

	// TraceID is the request-scoped trace identifier assigned at the
	// job's first entry point (the client's X-Trace-Id header, or one
	// generated server-side) and propagated through coordinator
	// forwarding and scheduler execution. GET /v1/jobs/{id}/trace
	// returns the span timeline recorded under it.
	TraceID string `json:"traceId,omitempty"`
}

// TraceHeader is the wire header carrying the request-scoped trace ID.
// The first entry point (daemon or coordinator) generates one when the
// client did not send it, echoes it on every response, and propagates it
// through coordinator→worker forwarding and sweep fan-out shards.
const TraceHeader = "X-Trace-Id"

// Span is one step of a job's lifecycle timeline: queued, placed@worker,
// running, and the terminal state, each with wall-clock bounds and
// attributes (cache-tier attribution, worker address, error strings).
// End is nil while the span is still open.
type Span struct {
	Name  string            `json:"name"`
	Start time.Time         `json:"start"`
	End   *time.Time        `json:"end,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Trace is one job's span timeline, returned by GET /v1/jobs/{id}/trace.
// Spans are in start order; a coordinator prepends its placement span to
// the owning worker's timeline when relaying.
type Trace struct {
	JobID   string `json:"jobId"`
	TraceID string `json:"traceId,omitempty"`
	Spans   []Span `json:"spans"`
}

// JobProfile is the payload of GET /v1/jobs/{id}/profile: the in-sim
// bottleneck profiler's windowed time series and per-level verdict for
// one completed Profile=true job. Profiles are cache-tier artifacts — a
// job served from the disk cache returns the cached profile.
type JobProfile struct {
	JobID   string        `json:"jobId"`
	Config  string        `json:"config,omitempty"`
	Bench   string        `json:"bench,omitempty"`
	Profile *obsv.Profile `json:"profile"`
}

// JobList is the response of GET /v1/jobs. Jobs are sorted by
// (SubmittedAt, ID) — a stable total order, since both are fixed at
// submission — optionally filtered by ?state= and bounded by ?limit=.
// When a limit cuts the listing short, NextPageToken is the opaque
// cursor for the next page (?page_token=); walking pages until the
// token is empty yields every matching job exactly once, even while
// new jobs are being submitted (new jobs sort after the cursor).
type JobList struct {
	Jobs          []Job  `json:"jobs"`
	NextPageToken string `json:"nextPageToken,omitempty"`
}

// SweepRequest (POST /v1/sweeps) expands the cross product of its
// configurations (Configs ∪ InlineConfigs ∪ ConfigPatches) and workloads
// (Benches ∪ InlineSpecs) into jobs, so one request can sweep hardware
// axes — the paper's Table III mitigation ladder as a list of patches
// against any workload — exactly like workload axes. When the axis
// forms are used, at least one configuration and one workload are
// required. Cells lists explicit cells directly — the form a cluster
// coordinator uses to ship each worker exactly its shard — and is
// mutually exclusive with the axes. Cells that collapse to the same
// content-addressed ID — within the sweep or against jobs already known
// to the daemon — are submitted once, and admission is all-or-nothing:
// the whole sweep enqueues or the whole sweep is rejected.
type SweepRequest struct {
	Configs       []string        `json:"configs,omitempty"`
	InlineConfigs []config.Config `json:"inlineConfigs,omitempty"`
	ConfigPatches []config.Patch  `json:"configPatches,omitempty"`
	Benches       []string        `json:"benches,omitempty"`
	InlineSpecs   []trace.Spec    `json:"inlineSpecs,omitempty"`
	Cells         []JobSpec       `json:"cells,omitempty"`
}

// SweepResponse reports the expansion: ID is the sweep's
// content-addressed resource ID (poll it at GET /v1/sweeps/{id}),
// Requested cells were asked for, Jobs holds the unique cells (existing
// jobs are returned as-is, completed ones with their cached result), and
// Deduped = Requested - len(Jobs).
type SweepResponse struct {
	ID        string `json:"id"`
	Requested int    `json:"requested"`
	Deduped   int    `json:"deduped"`
	Jobs      []Job  `json:"jobs"`
}

// SweepState is the aggregate lifecycle state of a sweep resource.
type SweepState string

const (
	// SweepRunning means at least one of the sweep's cells is not yet
	// terminal.
	SweepRunning SweepState = "running"
	// SweepDone means every cell finished successfully.
	SweepDone SweepState = "done"
	// SweepFailed means every cell is terminal and at least one failed
	// or was canceled (Counts breaks the outcome down by state).
	SweepFailed SweepState = "failed"
)

// Terminal reports whether the sweep state is final — waiting can stop.
func (s SweepState) Terminal() bool { return s == SweepDone || s == SweepFailed }

// SweepSpeedups is the merged speedup grid of a completed sweep whose
// cells were submitted through the axis forms: Cells[w][c] is the
// wall-clock speedup of Workloads[w] on Configs[c] relative to the
// sweep's first configuration column — the same orientation and baseline
// convention as exp.SweepResult.Speedups(0).
type SweepSpeedups struct {
	Configs   []string    `json:"configs"`
	Workloads []string    `json:"workloads"`
	Cells     [][]float64 `json:"cells"`

	// AreaMM2 and OverheadFrac are the per-configuration-column area
	// estimates from internal/area.Compare, measured against the paper's
	// baseline — the denominator that turns a speedup column into a
	// cost-effectiveness statement. Parallel to Configs.
	AreaMM2      []float64 `json:"areaMM2,omitempty"`
	OverheadFrac []float64 `json:"overheadFrac,omitempty"`
}

// Sweep is the sweep resource returned by GET /v1/sweeps/{id}: the
// aggregate state of every cell the sweep named, the per-cell job
// snapshots (in request order), and — once every cell is done and the
// sweep was submitted through the axis forms — the merged speedup grid.
// Like ?wait= on jobs, GET /v1/sweeps/{id}?wait=30s long-polls until the
// sweep is terminal or the deadline passes.
type Sweep struct {
	ID        string     `json:"id"`
	State     SweepState `json:"state"`
	Requested int        `json:"requested"`
	Deduped   int        `json:"deduped"`

	// Counts breaks the sweep's unique cells down by job state.
	Counts map[JobState]int `json:"counts"`

	Jobs     []Job          `json:"jobs"`
	Speedups *SweepSpeedups `json:"speedups,omitempty"`

	SubmittedAt time.Time `json:"submittedAt"`
}

// Stats is the response of GET /v1/stats: the scheduler's cumulative
// simulate/hit counters plus the daemon's queue and job-table gauges.
type Stats struct {
	Scheduler exp.Stats `json:"scheduler"`

	Workers    int `json:"workers"`
	QueueDepth int `json:"queueDepth"`
	QueueCap   int `json:"queueCap"`

	// Jobs counts the job table by state.
	Jobs map[JobState]int `json:"jobs"`

	// RateLimited and QuotaDenied count requests rejected with 429 by the
	// per-client rate limit and inflight quota respectively.
	RateLimited int64 `json:"rateLimited"`
	QuotaDenied int64 `json:"quotaDenied"`

	// CacheDir and the DiskCache* fields describe the persistent result
	// cache, when one is configured (-cache-dir). DiskCacheMaxBytes is 0
	// for an unbounded cache; DiskCacheEvictions counts entries the size
	// bound has evicted (eviction never changes results, only the cost of
	// re-simulating an evicted cell).
	CacheDir           string `json:"cacheDir,omitempty"`
	DiskCacheEntries   int    `json:"diskCacheEntries,omitempty"`
	DiskCacheBytes     int64  `json:"diskCacheBytes,omitempty"`
	DiskCacheMaxBytes  int64  `json:"diskCacheMaxBytes,omitempty"`
	DiskCacheEvictions int64  `json:"diskCacheEvictions,omitempty"`

	// Cluster is set only by a coordinator, whose Stats merge every
	// healthy worker's counters; it describes the fleet itself.
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// WorkerStatus is one worker's membership record in a coordinator.
type WorkerStatus struct {
	Addr string `json:"addr"`
	// Healthy reflects the periodic /healthz probe: false after the
	// configured number of consecutive probe failures, true again after
	// the next success.
	Healthy bool `json:"healthy"`
	// Draining workers receive no new cell assignments; their existing
	// jobs are moved to healthy peers when the drain is requested.
	Draining bool `json:"draining"`
	// ConsecutiveFailures counts probe failures since the last success.
	ConsecutiveFailures int `json:"consecutiveFailures,omitempty"`
	// Jobs counts the cells currently assigned to this worker.
	Jobs int `json:"jobs"`
	// LastProbe is the time of the most recent health probe, zero before
	// the first probe fires.
	LastProbe time.Time `json:"lastProbe,omitzero"`
}

// ClusterStats describes a coordinator's fleet: per-worker membership
// and health, plus the coordinator's own bookkeeping.
type ClusterStats struct {
	Workers []WorkerStatus `json:"workers"`
	// Healthy counts workers that are healthy and not draining — the
	// set cells are currently assigned to.
	Healthy int `json:"healthy"`
	// TrackedJobs counts the cells the coordinator has routed and still
	// remembers the placement of.
	TrackedJobs int `json:"trackedJobs"`
	// Sweeps counts the sweep resources the coordinator owns.
	Sweeps int `json:"sweeps"`
	// ReassignedJobs counts cells re-routed to a new worker after their
	// original worker became unhealthy or was drained.
	ReassignedJobs int64 `json:"reassignedJobs"`
}

// ClusterStatus is the response of GET /v1/cluster (coordinator only).
type ClusterStatus struct {
	Workers []WorkerStatus `json:"workers"`
}

// DrainRequest is the body of POST /v1/cluster/drain (coordinator
// only): it marks the named worker draining (or not). Draining a worker
// moves its assigned cells to healthy peers and excludes it from new
// assignments until undrained.
type DrainRequest struct {
	Addr  string `json:"addr"`
	Drain bool   `json:"drain"`
}

// BenchmarkList is the response of GET /v1/benchmarks (Table II order).
type BenchmarkList struct {
	Benchmarks []string `json:"benchmarks"`
}

// ConfigList is the response of GET /v1/configs: every preset as its
// full canonical config.Config value (config.Config.Canonical — defaults
// explicit, mode-dead fields zeroed), sorted by name, so clients can
// author inline configs and patches without guessing field names.
type ConfigList struct {
	Configs []config.Config `json:"configs"`
}

// Health is the response of GET /healthz.
type Health struct {
	Status string `json:"status"`
}

// KnobList is the response of GET /v1/knobs: every patchable knob path
// with its type, Validate bounds and baseline value — the
// machine-readable form of "what can a -set flag or configPatch say",
// and the axes the design-space explorer searches.
type KnobList struct {
	Knobs []config.Knob `json:"knobs"`
}

// ExploreObjective is the objective/constraint of an exploration, in one
// of two forms: "reach TargetSpeedup, minimize area" (Minimize defaults
// to "area", the only choice) or "stay within AreaBudgetMM2, maximize
// speedup" (Maximize defaults to "speedup"). Exactly one of
// TargetSpeedup and AreaBudgetMM2 must be set.
type ExploreObjective struct {
	TargetSpeedup float64 `json:"targetSpeedup,omitempty"`
	Minimize      string  `json:"minimize,omitempty"`
	AreaBudgetMM2 float64 `json:"areaBudgetMM2,omitempty"`
	Maximize      string  `json:"maximize,omitempty"`
}

// ExploreKnob customizes one search axis: a knob path (any Set spelling)
// and the explicit value ladder to search. When a request names no
// knobs, the explorer uses the built-in Table III mitigation lattice.
type ExploreKnob struct {
	Path   string   `json:"path"`
	Values []string `json:"values"`
}

// ExploreRequest is the body of POST /v1/explore. The exploration ID is
// the content address of the canonicalized request, so resubmitting the
// same search — from any client, against any daemon sharing the cache —
// lands on the same resource and replays instead of re-simulating.
type ExploreRequest struct {
	// Benchmarks and InlineSpecs are the workloads scored by every
	// probe (speedups are geometric means across them); at least one is
	// required.
	Benchmarks  []string     `json:"benchmarks,omitempty"`
	InlineSpecs []trace.Spec `json:"inlineSpecs,omitempty"`
	// Base anchors the lattice on a preset ("" = baseline).
	Base string `json:"base,omitempty"`
	// Strategy selects the search algorithm: "halving" (successive
	// halving over a coarse-to-fine lattice; the default) or "climb"
	// (greedy hill climbing from the base).
	Strategy  string           `json:"strategy,omitempty"`
	Objective ExploreObjective `json:"objective"`
	Knobs     []ExploreKnob    `json:"knobs,omitempty"`
	// MaxRounds bounds the refinement rounds after the first (0 = 8).
	MaxRounds int `json:"maxRounds,omitempty"`
}

// ExplorationState is the lifecycle of an exploration resource.
type ExplorationState string

const (
	ExplorationRunning ExplorationState = "running"
	ExplorationDone    ExplorationState = "done"
	ExplorationFailed  ExplorationState = "failed"
)

// Terminal reports whether the state is final — waiting can stop.
func (s ExplorationState) Terminal() bool {
	return s == ExplorationDone || s == ExplorationFailed
}

// ExplorePoint is one scored lattice point: its non-base knob
// assignments (Set syntax, path order; empty = the base configuration),
// its measured speedup, and its area cost versus the base.
type ExplorePoint struct {
	Sets         []string `json:"sets"`
	Speedup      float64  `json:"speedup"`
	AreaMM2      float64  `json:"areaMM2"`
	OverheadFrac float64  `json:"overheadFrac"`
}

// ExploreRound is one completed search round: how many fresh probes it
// scored and the objective-best point seen so far.
type ExploreRound struct {
	Label       string  `json:"label"`
	Probes      int     `json:"probes"`
	BestSpeedup float64 `json:"bestSpeedup"`
	BestAreaMM2 float64 `json:"bestAreaMM2"`
	// Feasible reports whether any point probed so far satisfies the
	// objective's constraint.
	Feasible bool `json:"feasible"`
}

// ExploreTiers attributes an exploration run's simulation cells to the
// cache tier that satisfied them. A rerun of a finished exploration
// reports Simulated == 0: every cell replays from memo or disk.
type ExploreTiers struct {
	Simulated int64 `json:"simulated"`
	Memo      int64 `json:"memo"`
	Disk      int64 `json:"disk"`
}

// Exploration is the exploration resource returned by POST /v1/explore
// and GET /v1/explorations/{id}. Everything except Tiers (run
// attribution) and Error is a deterministic function of the request:
// rerunning the same exploration reproduces the rounds, probe set,
// frontier and recommendation byte-for-byte. GET supports ?wait= exactly
// like sweeps: long-poll until the exploration is terminal or the
// deadline passes.
type Exploration struct {
	ID       string           `json:"id"`
	State    ExplorationState `json:"state"`
	Strategy string           `json:"strategy"`
	Base     string           `json:"base"`
	// Workloads labels the scored workloads (benchmark names and inline
	// spec names), in request order.
	Workloads []string         `json:"workloads"`
	Objective ExploreObjective `json:"objective"`
	// GridSize is the exhaustive lattice size the search avoided
	// enumerating; Probes is how many distinct points it actually
	// scored.
	GridSize int64          `json:"gridSize"`
	Probes   int            `json:"probes"`
	Rounds   []ExploreRound `json:"rounds"`
	// ProbesDigest is a content hash over the sorted probe set — two
	// runs explored identically iff their digests match.
	ProbesDigest string       `json:"probesDigest,omitempty"`
	Tiers        ExploreTiers `json:"tiers"`
	// Feasible reports whether Recommended satisfies the constraint;
	// false means the lattice cannot reach it and Recommended is the
	// closest point instead.
	Feasible    bool           `json:"feasible"`
	Frontier    []ExplorePoint `json:"frontier,omitempty"`
	Recommended *ExplorePoint  `json:"recommended,omitempty"`
	Error       string         `json:"error,omitempty"`
}

// Error codes: the machine-readable class of every non-2xx response,
// mapped one-to-one onto the HTTP status the daemon uses for it.
const (
	// CodeInvalidArgument (400): the request body or query failed
	// validation; Detail says exactly which field and why.
	CodeInvalidArgument = "invalid_argument"
	// CodeNotFound (404): no job or sweep with the requested ID.
	CodeNotFound = "not_found"
	// CodeConflict (409): the request is valid but the resource's state
	// forbids it (e.g. canceling a finished job).
	CodeConflict = "conflict"
	// CodeResourceExhausted (429): the per-client rate limit or inflight
	// quota rejected the request; RetryAfter says when to try again.
	CodeResourceExhausted = "resource_exhausted"
	// CodeUnavailable (503): the queue is full, the daemon is draining,
	// or a cluster has no healthy workers.
	CodeUnavailable = "unavailable"
	// CodeInternal (500): an unclassified server-side failure.
	CodeInternal = "internal"
)

// CodeForStatus maps an HTTP status to its error code — the inverse of
// the daemon's status selection, used to classify responses that carry
// no envelope (e.g. a proxy's bare 502).
func CodeForStatus(status int) string {
	switch status {
	case 400:
		return CodeInvalidArgument
	case 404:
		return CodeNotFound
	case 409:
		return CodeConflict
	case 429:
		return CodeResourceExhausted
	case 502, 503, 504:
		return CodeUnavailable
	default:
		return CodeInternal
	}
}

// Error is the uniform body of every non-2xx response: a stable
// machine-readable Code, a human-readable Detail, and — for retryable
// rejections — RetryAfter, the same whole-seconds hint the Retry-After
// header carries. Coordinators proxy worker errors through unchanged.
type Error struct {
	Code       string `json:"code"`
	Detail     string `json:"detail"`
	RetryAfter int64  `json:"retryAfter,omitempty"`
}

// Error implements the error interface.
func (e Error) Error() string { return e.Detail }
