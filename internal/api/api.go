// Package api defines the versioned wire types of the gpusimd HTTP API,
// shared by the server (internal/server) and the Go client (client).
//
// All routes live under the "/v1" prefix (plus the unversioned GET
// /healthz). A job is one (configuration, workload) simulation cell. Both
// halves are first-class values: the configuration is a preset name, a
// full inline config.Config, or a mitigation-knob config.Patch on a
// named preset, and the workload is a Table II benchmark name or a full
// inline trace.Spec. The job ID is content-addressed — a hash of the
// configuration's canonical identity (config.Config.Identity: name
// excluded, mode-dead fields zeroed, preset names and patches resolved)
// and the workload spec's canonical identity (labels excluded, benchmark
// names resolved to their registered specs) — so resubmitting a cell,
// submitting it under a different label with identical parameters, or
// spelling a preset config or benchmark as an equivalent inline value
// all land on the same job. Cancellation (DELETE /v1/jobs/{id})
// therefore affects every client that submitted that cell.
//
// Errors are returned as an Error payload with a non-2xx status: 400 for
// malformed specs (the body carries config.Validate / trace.Spec.Validate
// / patch-application detail and, for unknown names, the list of valid
// ones), 404 for unknown job IDs, 409 for canceling a job that already
// finished, 429 with a Retry-After header when the per-client rate limit
// or inflight quota rejects the request, and 503 when the bounded queue
// is full or the daemon is draining.
//
// Operational visibility rides on GET /v1/stats (this package's Stats)
// and GET /metrics (the same counters in Prometheus text form); the two
// reconcile exactly whenever the daemon is quiescent.
package api

import (
	"time"

	"gpumembw/internal/config"
	"gpumembw/internal/core"
	"gpumembw/internal/exp"
	"gpumembw/internal/trace"
)

// Version is the API version segment all job routes are mounted under.
const Version = "v1"

// JobState is the lifecycle state of a submitted job.
type JobState string

const (
	// JobQueued means the job is waiting in the bounded queue.
	JobQueued JobState = "queued"
	// JobRunning means a worker picked the job up (or is waiting on the
	// same cell already in flight for another job).
	JobRunning JobState = "running"
	// JobDone means the simulation finished and Metrics is populated.
	JobDone JobState = "done"
	// JobFailed means the simulation returned an error (see Job.Error).
	// The simulator is deterministic and the scheduler memoizes failures,
	// so resubmitting the spec returns the same failed job.
	JobFailed JobState = "failed"
	// JobCanceled means the job was canceled while queued or running
	// (DELETE /v1/jobs/{id}). A running job's simulation cannot be
	// preempted mid-cell: the worker finishes it and its result still
	// lands in the daemon's caches, but the job record stays canceled —
	// consistently in GET /v1/jobs/{id} and /v1/stats alike.
	// Resubmitting the same spec re-enqueues it (cheaply, if the cell
	// already simulated).
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final — polling can stop.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobSpec names one simulation cell. Exactly one of Config (a preset
// name, see GET /v1/configs), InlineConfig (a full config.Config value,
// validated server-side with config.Validate) or ConfigPatch (a sparse
// mitigation-knob overlay on a named preset, e.g.
// {"base":"baseline","L1":{"MSHREntries":128}}) must be set, and
// likewise exactly one of Bench (a Table II benchmark name, see GET
// /v1/benchmarks) or InlineSpec (a full trace.Spec value, validated
// server-side with trace.Spec.Validate; an empty Name defaults to
// "custom"). An inline config or patch that resolves to a preset's
// canonical identity, or an inline spec equal to a registered benchmark
// (labels aside), lands on the preset's cell.
type JobSpec struct {
	Config       string         `json:"config,omitempty"`
	InlineConfig *config.Config `json:"inlineConfig,omitempty"`
	ConfigPatch  *config.Patch  `json:"configPatch,omitempty"`
	Bench        string         `json:"bench,omitempty"`
	InlineSpec   *trace.Spec    `json:"inlineSpec,omitempty"`
}

// Job is the server's view of one submitted cell, returned by POST
// /v1/jobs, GET /v1/jobs/{id} and DELETE /v1/jobs/{id}.
type Job struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Spec  JobSpec  `json:"spec"`

	// Metrics is set once State == JobDone. It is byte-identical (as
	// canonical JSON) to what `gpusim -json` prints for the same cell.
	Metrics *core.Metrics `json:"metrics,omitempty"`
	// Error is set once State == JobFailed.
	Error string `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submittedAt"`
	StartedAt   *time.Time `json:"startedAt,omitempty"`
	FinishedAt  *time.Time `json:"finishedAt,omitempty"`
}

// JobList is the response of GET /v1/jobs, in submission order.
type JobList struct {
	Jobs []Job `json:"jobs"`
}

// SweepRequest (POST /v1/sweeps) expands the cross product of its
// configurations (Configs ∪ InlineConfigs ∪ ConfigPatches) and workloads
// (Benches ∪ InlineSpecs) into jobs, so one request can sweep hardware
// axes — the paper's Table III mitigation ladder as a list of patches
// against any workload — exactly like workload axes. At least one
// configuration and one workload are required. Cells that collapse to
// the same content-addressed ID — within the sweep or against jobs
// already known to the daemon — are submitted once.
type SweepRequest struct {
	Configs       []string        `json:"configs,omitempty"`
	InlineConfigs []config.Config `json:"inlineConfigs,omitempty"`
	ConfigPatches []config.Patch  `json:"configPatches,omitempty"`
	Benches       []string        `json:"benches,omitempty"`
	InlineSpecs   []trace.Spec    `json:"inlineSpecs,omitempty"`
}

// SweepResponse reports the expansion: Requested cells were asked for,
// Jobs holds the unique cells (existing jobs are returned as-is, completed
// ones with their cached result), and Deduped = Requested - len(Jobs).
type SweepResponse struct {
	Requested int   `json:"requested"`
	Deduped   int   `json:"deduped"`
	Jobs      []Job `json:"jobs"`
}

// Stats is the response of GET /v1/stats: the scheduler's cumulative
// simulate/hit counters plus the daemon's queue and job-table gauges.
type Stats struct {
	Scheduler exp.Stats `json:"scheduler"`

	Workers    int `json:"workers"`
	QueueDepth int `json:"queueDepth"`
	QueueCap   int `json:"queueCap"`

	// Jobs counts the job table by state.
	Jobs map[JobState]int `json:"jobs"`

	// RateLimited and QuotaDenied count requests rejected with 429 by the
	// per-client rate limit and inflight quota respectively.
	RateLimited int64 `json:"rateLimited"`
	QuotaDenied int64 `json:"quotaDenied"`

	// CacheDir and the DiskCache* fields describe the persistent result
	// cache, when one is configured (-cache-dir). DiskCacheMaxBytes is 0
	// for an unbounded cache; DiskCacheEvictions counts entries the size
	// bound has evicted (eviction never changes results, only the cost of
	// re-simulating an evicted cell).
	CacheDir           string `json:"cacheDir,omitempty"`
	DiskCacheEntries   int    `json:"diskCacheEntries,omitempty"`
	DiskCacheBytes     int64  `json:"diskCacheBytes,omitempty"`
	DiskCacheMaxBytes  int64  `json:"diskCacheMaxBytes,omitempty"`
	DiskCacheEvictions int64  `json:"diskCacheEvictions,omitempty"`
}

// BenchmarkList is the response of GET /v1/benchmarks (Table II order).
type BenchmarkList struct {
	Benchmarks []string `json:"benchmarks"`
}

// ConfigList is the response of GET /v1/configs: every preset as its
// full canonical config.Config value (config.Config.Canonical — defaults
// explicit, mode-dead fields zeroed), sorted by name, so clients can
// author inline configs and patches without guessing field names.
type ConfigList struct {
	Configs []config.Config `json:"configs"`
}

// Health is the response of GET /healthz.
type Health struct {
	Status string `json:"status"`
}

// Error is the body of every non-2xx response.
type Error struct {
	Error string `json:"error"`
}
