package core

import (
	"gpumembw/internal/config"
	"gpumembw/internal/obsv"
	"gpumembw/internal/smcore"
	"gpumembw/internal/stats"
)

// SimVersion identifies the simulated behavior of the cycle engine AND
// the cell-identity schema it is addressed by. Bump it in any PR that
// changes what a simulation produces (cycle counts, metrics definitions,
// workload generation) or how cells are identified (exp.Job.CellID,
// trace.Spec canonicalization) — persisted result caches (gpusimd
// -cache-dir) discard entries stamped with a different version, so stale
// caches can never violate the byte-parity promise between the daemon
// and a freshly built `gpusim -json`, and can never serve an entry whose
// content hash was computed under an older identity scheme. Pure-
// performance changes that keep output and identity byte-identical (the
// PR 2 kind) must not bump it.
//
// sim-4: cells are keyed on {config, canonical workload-spec identity}
// (inline WorkloadSpec support) instead of {config, benchmark name}.
//
// sim-5: the config half is keyed on the canonical config identity
// (config.Config.Identity — mode-dead fields zeroed, Name excluded,
// Mode serialized by name) instead of the raw config value, so inline
// configs and patches that are twins of a preset share its cell.
const SimVersion = "ispass17-sim-5"

// Metrics aggregates every quantity the paper reports for one simulation.
type Metrics struct {
	Benchmark string
	Config    string

	Cycles       int64   // core-clock cycles until the last core drained
	Instructions int64   // warp instructions issued, summed over cores
	IPC          float64 // Instructions / Cycles (whole GPU)
	WallSeconds  float64 // Cycles at the configured core clock
	PerfIPS      float64 // Instructions per second — comparable across clocks

	// Fig. 1: fraction of active core cycles with no instruction issued,
	// and the two latency series (in core cycles).
	IssueStallFrac float64
	AML            float64 // average memory (L1-miss round-trip) latency
	L2AHL          float64 // average latency of misses served by the L2

	// Fig. 7: issue-stall distribution.
	IssueStalls *stats.Breakdown
	// Fig. 9: L1 stall distribution.
	L1Stalls *stats.Breakdown
	// Fig. 8: L2 stall distribution.
	L2Stalls *stats.Breakdown

	// Figs. 4 and 5: occupancy histograms over usage lifetime.
	L2AccessOcc  stats.OccupancyHist
	DRAMSchedOcc stats.OccupancyHist

	L1MissRate float64
	L2MissRate float64

	// §IV-B1 and §VI-A3.
	DRAMBandwidthEff float64
	DRAMRowHitRate   float64

	ReqNetUtil   float64
	ReplyNetUtil float64

	Truncated bool // MaxCycles elapsed before the workload drained
}

// Speedup returns m's performance relative to base, using wall-clock
// throughput so configurations with different core clocks (Fig. 11)
// compare correctly.
func (m Metrics) Speedup(base Metrics) float64 {
	if base.PerfIPS == 0 {
		return 0
	}
	return m.PerfIPS / base.PerfIPS
}

func (g *GPU) collect() Metrics {
	m := Metrics{
		Benchmark:   g.wl.Name,
		Config:      g.cfg.Name,
		Cycles:      g.cycle,
		IssueStalls: stats.NewBreakdown(smcore.IssueStallLabels...),
		L1Stalls:    stats.NewBreakdown(smcore.L1StallLabels...),
		L2Stalls:    stats.NewBreakdown("bp-ICNT", "port", "cache", "mshr", "bp-DRAM"),
		Truncated:   g.truncated,
	}

	var activeCycles, stallCycles int64
	var aml, ahl stats.LatencySampler
	var l1Acc, l1Miss int64
	for _, c := range g.cores {
		s := &c.Stats
		m.Instructions += s.Issued
		activeCycles += s.Cycles
		stallCycles += s.IssueStallCycles()
		for i, v := range s.IssueStalls {
			m.IssueStalls.Add(i, v)
		}
		for i, v := range s.L1Stalls {
			m.L1Stalls.Add(i, v)
		}
		aml.Merge(&s.AML)
		ahl.Merge(&s.L2AHL)
		l1Acc += s.L1Accesses
		l1Miss += s.L1Misses + s.L1Merged
	}
	if m.Cycles > 0 {
		m.IPC = float64(m.Instructions) / float64(m.Cycles)
	}
	m.WallSeconds = float64(m.Cycles) / (g.cfg.Core.ClockMHz * 1e6)
	if m.WallSeconds > 0 {
		m.PerfIPS = float64(m.Instructions) / m.WallSeconds
	}
	m.IssueStallFrac = stats.Ratio(stallCycles, activeCycles)
	m.AML = aml.Mean()
	m.L2AHL = ahl.Mean()
	m.L1MissRate = stats.Ratio(l1Miss, l1Acc)

	// Memory-side statistics exist only for the detailed hierarchy.
	var l2Acc, l2Miss int64
	var busBusy, pending int64
	var reads, writes, acts int64
	for _, p := range g.parts {
		for _, b := range p.Banks {
			bs := &b.Stats
			l2Acc += bs.Accesses
			l2Miss += bs.Misses + bs.Merged
			// StallCycles[0] is StallNone; causes start at 1.
			for cause := 1; cause < len(bs.StallCycles); cause++ {
				m.L2Stalls.Add(cause-1, bs.StallCycles[cause])
			}
			m.L2AccessOcc.Merge(&bs.AccessOccupancy)
		}
		ds := &p.DRAM.Stats
		m.DRAMSchedOcc.Merge(&ds.SchedOccupancy)
		busBusy += ds.BusBusyCycles
		pending += ds.PendingCycles
		reads += ds.Reads
		writes += ds.Writes
		acts += ds.Activates
	}
	m.L2MissRate = stats.Ratio(l2Miss, l2Acc)
	m.DRAMBandwidthEff = stats.Ratio(busBusy, pending)
	if total := reads + writes; total > 0 {
		hits := total - acts
		if hits < 0 {
			hits = 0
		}
		m.DRAMRowHitRate = stats.Ratio(hits, total)
	}
	if g.req != nil {
		m.ReqNetUtil = g.req.Stats.Utilization(g.cfg.L2.NumBanks)
		m.ReplyNetUtil = g.reply.Stats.Utilization(g.cfg.Core.NumCores)
	}
	return m
}

// RunWorkload is the package's one-call entry point: build a GPU for cfg
// and wl, run it, and return the metrics.
func RunWorkload(cfg config.Config, wl *smcore.Workload) (Metrics, error) {
	g, err := New(cfg, wl)
	if err != nil {
		return Metrics{}, err
	}
	return g.Run()
}

// RunWorkloadProfiled runs the cell with the bottleneck profiler
// attached and returns the windowed profile alongside the metrics. The
// metrics are byte-identical to an unprofiled run of the same cell: the
// profiler only observes.
func RunWorkloadProfiled(cfg config.Config, wl *smcore.Workload) (Metrics, *obsv.Profile, error) {
	g, err := New(cfg, wl)
	if err != nil {
		return Metrics{}, nil, err
	}
	p := g.AttachProfiler()
	m, err := g.Run()
	if err != nil {
		return m, nil, err
	}
	return m, p.Snapshot(), nil
}
