package core

import (
	"testing"

	"gpumembw/internal/config"
	"gpumembw/internal/smcore"
	"gpumembw/internal/trace"
)

// tinyWorkload is a scaled-down mixed workload that finishes fast but
// exercises L1, crossbar, L2 and DRAM.
func tinyWorkload(t *testing.T) *smcore.Workload {
	t.Helper()
	wl, err := trace.Spec{
		Name: "tiny", Iters: 8,
		LoadsPerIter: 4, StoresPerIter: 1, ALUPerIter: 4,
		DepDist: 2, Pattern: trace.PatRandomWS, WorkingSetKB: 256,
		WarpsPerCore: 8, Seed: 7,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// smallCfg shrinks the GPU to 4 cores for test speed; the memory system
// keeps its full Table I shape.
func smallCfg(base config.Config) config.Config {
	base.Core.NumCores = 4
	base.MaxCycles = 2_000_000
	return base
}

func mustRun(t *testing.T, cfg config.Config, wl *smcore.Workload) Metrics {
	t.Helper()
	m, err := RunWorkload(cfg, wl)
	if err != nil {
		t.Fatalf("%s on %s: %v", wl.Name, cfg.Name, err)
	}
	if m.Truncated {
		t.Fatalf("%s on %s truncated after %d cycles", wl.Name, cfg.Name, m.Cycles)
	}
	return m
}

func TestBaselineRunCompletes(t *testing.T) {
	cfg := smallCfg(config.Baseline())
	wl := tinyWorkload(t)
	m := mustRun(t, cfg, wl)

	wantInsts := int64(cfg.Core.NumCores) * int64(wl.WarpsPerCore) * wl.Program.TotalInsts()
	if m.Instructions != wantInsts {
		t.Fatalf("instructions = %d, want %d", m.Instructions, wantInsts)
	}
	if m.IPC <= 0 || m.IPC > float64(cfg.Core.NumCores) {
		t.Fatalf("IPC = %g out of range", m.IPC)
	}
	if m.AML < 100 {
		t.Fatalf("AML = %g, implausibly below the uncongested L2 latency", m.AML)
	}
	if m.L1MissRate <= 0 || m.L1MissRate > 1 {
		t.Fatalf("L1 miss rate = %g", m.L1MissRate)
	}
	if m.L2AccessOcc.Lifetime == 0 {
		t.Fatal("L2 access-queue histogram never sampled")
	}
}

func TestDeterministicMetrics(t *testing.T) {
	cfg := smallCfg(config.Baseline())
	m1 := mustRun(t, cfg, tinyWorkload(t))
	m2 := mustRun(t, cfg, tinyWorkload(t))
	if m1.Cycles != m2.Cycles || m1.Instructions != m2.Instructions ||
		m1.AML != m2.AML || m1.IssueStalls.Total() != m2.IssueStalls.Total() {
		t.Fatalf("non-deterministic: %+v vs %+v", m1.Cycles, m2.Cycles)
	}
}

func TestIdealHierarchyOrdering(t *testing.T) {
	// P∞ ≥ P_DRAM ≥ baseline (in performance) must hold for a
	// memory-intensive workload.
	wl := tinyWorkload(t)
	base := mustRun(t, smallCfg(config.Baseline()), wl)
	pdram := mustRun(t, smallCfg(config.InfiniteDRAM()), wl)
	pinf := mustRun(t, smallCfg(config.InfiniteBW()), wl)

	if pinf.PerfIPS < pdram.PerfIPS {
		t.Errorf("P∞ (%.0f) slower than P_DRAM (%.0f)", pinf.PerfIPS, pdram.PerfIPS)
	}
	if pdram.PerfIPS < base.PerfIPS*0.96 {
		t.Errorf("P_DRAM (%.0f) slower than baseline (%.0f)", pdram.PerfIPS, base.PerfIPS)
	}
	if pinf.Speedup(base) < 1.05 {
		t.Errorf("P∞ speedup = %.2f, want > 1.05 for a memory-bound kernel", pinf.Speedup(base))
	}
}

func TestFixedLatencyMonotonicity(t *testing.T) {
	wl := tinyWorkload(t)
	var last float64
	for i, lat := range []int{0, 200, 700} {
		cfg := smallCfg(config.FixedL1MissLatency(lat))
		m := mustRun(t, cfg, wl)
		if i > 0 && m.PerfIPS > last*1.02 {
			t.Fatalf("latency %d faster (%.0f) than smaller latency (%.0f)", lat, m.PerfIPS, last)
		}
		last = m.PerfIPS
	}
}

func TestScaledAllBeatsBaseline(t *testing.T) {
	wl := tinyWorkload(t)
	base := mustRun(t, smallCfg(config.Baseline()), wl)
	all := mustRun(t, smallCfg(config.ScaledAll()), wl)
	if all.Speedup(base) < 1.0 {
		t.Fatalf("scaling every level slowed things down: %.3f", all.Speedup(base))
	}
}

func TestStallBreakdownsPopulated(t *testing.T) {
	// A heavily congested run must show stalls at every level.
	wl, err := trace.Spec{
		Name: "flood", Iters: 10,
		LoadsPerIter: 10, ALUPerIter: 2,
		DepDist: 0, Pattern: trace.PatRandomWS, WorkingSetKB: 2048,
		WarpsPerCore: 16, Seed: 9,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(config.Baseline())
	m := mustRun(t, cfg, wl)
	if m.IssueStalls.Total() == 0 {
		t.Error("no issue stalls recorded")
	}
	if m.L1Stalls.Total() == 0 {
		t.Error("no L1 stalls recorded")
	}
	if m.L2Stalls.Total() == 0 {
		t.Error("no L2 stalls recorded")
	}
	if m.DRAMSchedOcc.Lifetime == 0 {
		t.Error("DRAM scheduler occupancy never sampled")
	}
	if m.DRAMBandwidthEff <= 0 || m.DRAMBandwidthEff > 1 {
		t.Errorf("bandwidth efficiency = %g", m.DRAMBandwidthEff)
	}
	if m.IssueStallFrac <= 0 || m.IssueStallFrac >= 1 {
		t.Errorf("issue stall fraction = %g", m.IssueStallFrac)
	}
}

func TestMaxCyclesTruncates(t *testing.T) {
	cfg := smallCfg(config.Baseline())
	cfg.MaxCycles = 500
	m, err := RunWorkload(cfg, tinyWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Truncated {
		t.Fatal("500-cycle budget must truncate")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.Baseline()
	cfg.L2.NumBanks = 7
	if _, err := New(cfg, tinyWorkload(t)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := New(config.Baseline(), nil); err == nil {
		t.Fatal("nil workload accepted")
	}
}

func TestCoreClockScalingChangesWallPerf(t *testing.T) {
	// Raising the core clock with fixed memory clocks must change wall-
	// clock performance by less than the clock ratio for a memory-bound
	// kernel (the Fig. 11 effect).
	wl := tinyWorkload(t)
	base := mustRun(t, smallCfg(config.Baseline()), wl)
	fast := mustRun(t, smallCfg(config.WithCoreClock(config.Baseline(), 1680)), wl)
	ratio := fast.PerfIPS / base.PerfIPS
	if ratio > 1.2 {
		t.Fatalf("perf scaled by %.2f with a 1.2× clock on a memory-bound kernel", ratio)
	}
}

func TestAsymmetricCrossbarRuns(t *testing.T) {
	wl := tinyWorkload(t)
	for _, cfg := range []config.Config{
		config.CostEffective16x48(),
		config.CostEffective16x68(),
		config.CostEffective32x52(),
		config.AsymmetricOnly(),
		config.HBM(),
	} {
		m := mustRun(t, smallCfg(cfg), wl)
		if m.Instructions == 0 {
			t.Fatalf("%s issued nothing", cfg.Name)
		}
	}
}
