package core

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"gpumembw/internal/config"
	"gpumembw/internal/smcore"
	"gpumembw/internal/trace"
)

// runEngine runs one cell on the given engine, returning the metrics, the
// run error, and the number of cycles the engine jumped over in bulk.
func runEngine(t *testing.T, cfg config.Config, wl *smcore.Workload, e Engine) (Metrics, error, int64) {
	t.Helper()
	g, err := New(cfg, wl, WithEngine(e))
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Run()
	return m, err, g.skipped
}

// requireIdentical fails unless the two engines agree on every metric.
func requireIdentical(t *testing.T, name string, ev, tick Metrics, evErr, tickErr error) {
	t.Helper()
	if (evErr == nil) != (tickErr == nil) {
		t.Fatalf("%s: event engine error %v, tick engine error %v", name, evErr, tickErr)
	}
	if !reflect.DeepEqual(ev, tick) {
		t.Errorf("%s: engines disagree\nevent: %+v\ntick:  %+v", name, ev, tick)
	}
}

// TestEngineParityInvisible verifies the tentpole guarantee on a pinned
// config×workload matrix: the event engine must leave every collected
// metric byte-identical to the tick-everything reference loop, in each
// simulation mode.
func TestEngineParityInvisible(t *testing.T) {
	wls := trace.Workloads()
	small := func(cfg config.Config) config.Config {
		cfg.Core.NumCores = 2
		return cfg
	}
	cases := []struct {
		name string
		cfg  config.Config
	}{
		{"normal", small(config.Baseline())},
		{"p-inf", small(config.InfiniteBW())},
		{"p-dram", small(config.InfiniteDRAM())},
		{"fixed-lat-200", small(config.FixedL1MissLatency(200))},
		{"fixed-lat-800", small(config.FixedL1MissLatency(800))},
	}
	var skippedAnywhere int64
	for _, bench := range []string{"mm", "ii", "bfs'"} {
		wl := wls[bench]
		if wl == nil {
			t.Fatalf("unknown benchmark %q", bench)
		}
		for _, tc := range cases {
			ev, evErr, skipped := runEngine(t, tc.cfg, wl, EngineEvent)
			tick, tickErr, _ := runEngine(t, tc.cfg, wl, EngineTick)
			requireIdentical(t, bench+"/"+tc.name, ev, tick, evErr, tickErr)
			skippedAnywhere += skipped
		}
	}
	if skippedAnywhere == 0 {
		t.Error("the event engine never jumped a cycle; the comparison is vacuous")
	}
}

// TestEngineParityFullSize runs one full-size baseline cell (all 15 cores,
// 12 banks, 6 channels) through both engines: the small matrix above keeps
// the suite fast, this one exercises the production geometry.
func TestEngineParityFullSize(t *testing.T) {
	wls := trace.Workloads()
	ev, evErr, _ := runEngine(t, config.Baseline(), wls["mm"], EngineEvent)
	tick, tickErr, _ := runEngine(t, config.Baseline(), wls["mm"], EngineTick)
	requireIdentical(t, "mm/baseline-full", ev, tick, evErr, tickErr)
}

// TestEngineParityProfiled verifies the profiler's bulk-record path: a
// profiled run must produce byte-identical windowed gauges on both
// engines (the event engine feeds RecordN across jumped spans).
func TestEngineParityProfiled(t *testing.T) {
	wls := trace.Workloads()
	cfg := config.Baseline()
	cfg.Core.NumCores = 2
	run := func(e Engine) ([]byte, Metrics) {
		g, err := New(cfg, wls["mm"], WithEngine(e))
		if err != nil {
			t.Fatal(err)
		}
		p := g.AttachProfiler()
		m, err := g.Run()
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(p.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return js, m
	}
	evProf, evM := run(EngineEvent)
	tickProf, tickM := run(EngineTick)
	requireIdentical(t, "profiled", evM, tickM, nil, nil)
	if string(evProf) != string(tickProf) {
		t.Errorf("profiles diverged between engines:\nevent: %s\ntick:  %s", evProf, tickProf)
	}
}

// TestEngineMaxCyclesMidJump truncates the simulation at a wall of cycles
// chosen to land inside a bulk-replayed span: the jump must stop exactly
// at MaxCycles with the truncation flag set, as if every cycle had been
// ticked.
func TestEngineMaxCyclesMidJump(t *testing.T) {
	wls := trace.Workloads()
	cfg := config.FixedL1MissLatency(800)
	cfg.Core.NumCores = 1

	// Probe a range of walls; with an 800-cycle miss latency several of
	// them land inside a jumped span.
	var skippedAnywhere int64
	for _, wall := range []int64{500, 1000, 2000, 5000} {
		c := cfg
		c.MaxCycles = wall
		ev, evErr, skipped := runEngine(t, c, wls["mm"], EngineEvent)
		tick, tickErr, _ := runEngine(t, c, wls["mm"], EngineTick)
		requireIdentical(t, "maxcycles-mid-jump", ev, tick, evErr, tickErr)
		if ev.Cycles > wall {
			t.Errorf("wall %d: truncated run reports %d cycles", wall, ev.Cycles)
		}
		if !ev.Truncated {
			t.Errorf("wall %d: run was not truncated", wall)
		}
		skippedAnywhere += skipped
	}
	if skippedAnywhere == 0 {
		t.Error("the event engine never jumped before a wall; the test is vacuous")
	}
}

// TestEngineLivelockWindow verifies that the 200k-cycle livelock detector
// fires at the same cycle, with the same error, on both engines.
func TestEngineLivelockWindow(t *testing.T) {
	// A load generating more transactions than the memory pipeline can
	// ever hold stalls str-MEM forever: no ring events, no progress.
	cfg := config.Baseline()
	cfg.Core.NumCores = 1
	cfg.Core.MemPipelineWidth = 2
	wl := &smcore.Workload{
		Name:         "livelock",
		Program:      smcore.Program{Body: []smcore.Inst{{Kind: smcore.OpLoad, Dest: 1, Src1: -1, Src2: -1}}, Iters: 2, CodeBase: 1 << 40},
		WarpsPerCore: 1,
		Addr: func(buf []uint64, coreID, warpID, iter, instIdx int) []uint64 {
			for k := 0; k < 4; k++ { // 4 lines > width 2
				buf = append(buf, uint64(k)<<7)
			}
			return buf
		},
	}
	ev, evErr, _ := runEngine(t, cfg, wl, EngineEvent)
	tick, tickErr, _ := runEngine(t, cfg, wl, EngineTick)
	if !errors.Is(evErr, ErrLivelock) || !errors.Is(tickErr, ErrLivelock) {
		t.Fatalf("expected livelock from both engines, got %v / %v", evErr, tickErr)
	}
	if evErr.Error() != tickErr.Error() {
		t.Errorf("livelock errors differ:\nevent: %v\ntick:  %v", evErr, tickErr)
	}
	requireIdentical(t, "livelock", ev, tick, nil, nil)
}

// TestEngineClockAccumulators verifies the clock-domain accumulators stay
// bit-exact across jumps and deferred domain skips: the 700 MHz and
// 924 MHz domains must have ticked the same number of times, leaving
// identical fractional state and unit clocks.
func TestEngineClockAccumulators(t *testing.T) {
	wls := trace.Workloads()
	cfg := config.Baseline()
	cfg.Core.NumCores = 2

	g1, err := New(cfg, wls["ii"], WithEngine(EngineEvent))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g1.Run(); err != nil {
		t.Fatal(err)
	}
	g2, err := New(cfg, wls["ii"], WithEngine(EngineTick))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Run(); err != nil {
		t.Fatal(err)
	}
	if g1.icntAcc != g2.icntAcc || g1.dramAcc != g2.dramAcc {
		t.Errorf("accumulators diverged: icnt %v vs %v, dram %v vs %v",
			g1.icntAcc, g2.icntAcc, g1.dramAcc, g2.dramAcc)
	}
	if g1.cycle != g2.cycle {
		t.Errorf("cycle counts diverged: %d vs %d", g1.cycle, g2.cycle)
	}
	if a, b := g1.req.Stats.Cycles, g2.req.Stats.Cycles; a != b {
		t.Errorf("request-network cycle counts diverged: %d vs %d", a, b)
	}
	if a, b := g1.parts[0].DRAM.Stats, g2.parts[0].DRAM.Stats; !reflect.DeepEqual(a, b) {
		t.Errorf("DRAM stats diverged: %+v vs %+v", a, b)
	}
}

// TestParseEngine pins the flag spellings of the escape hatch.
func TestParseEngine(t *testing.T) {
	for s, want := range map[string]Engine{"event": EngineEvent, "tick": EngineTick} {
		got, err := ParseEngine(s)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", s, got, err, want)
		}
		if got.String() != s {
			t.Errorf("Engine(%v).String() = %q; want %q", got, got.String(), s)
		}
	}
	if _, err := ParseEngine("warp-speed"); err == nil {
		t.Error("ParseEngine accepted an unknown engine name")
	}
}
