package core

import (
	"fmt"
	"math/bits"

	"gpumembw/internal/config"
	"gpumembw/internal/dram"
	"gpumembw/internal/icnt"
	"gpumembw/internal/l2"
	"gpumembw/internal/sched"
	"gpumembw/internal/smcore"
)

// Engine selects the simulation loop that advances a GPU. The choice is
// pure mechanics: both engines produce byte-identical metrics and
// profiles for every cell (the parity tests and the CI determinism job
// enforce it), so the engine is deliberately NOT part of the cell
// identity and never bumps SimVersion.
type Engine uint8

const (
	// EngineEvent is the calendar-queue event engine: every unit
	// registers its next-wake cycle under the sched.Wakeable contract and
	// the loop advances straight to the earliest pending event, skipping
	// the ticks in between. The default.
	EngineEvent Engine = iota
	// EngineTick is the reference tick-everything loop — slow, simple,
	// and skip-free. It exists as a one-flag bisect target should an
	// engine-parity diff ever appear in the field.
	EngineTick
)

// String returns the engine's flag spelling ("event" or "tick").
func (e Engine) String() string {
	if e == EngineTick {
		return "tick"
	}
	return "event"
}

// ParseEngine converts a -engine flag value into an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "event":
		return EngineEvent, nil
	case "tick":
		return EngineTick, nil
	}
	return EngineEvent, fmt.Errorf("core: unknown engine %q (want \"event\" or \"tick\")", s)
}

// defaultEngine is the engine New uses when no WithEngine option is
// given; SetDefaultEngine lets front ends (gpusim -engine) steer every
// run of a process without threading an option through each layer.
var defaultEngine = EngineEvent

// DefaultEngine returns the process-wide default engine.
func DefaultEngine() Engine { return defaultEngine }

// SetDefaultEngine changes the process-wide default engine. Call it
// before building schedulers or GPUs; it is not synchronized.
func SetDefaultEngine(e Engine) { defaultEngine = e }

// Option configures a GPU at construction (New).
type Option func(*GPU)

// WithEngine selects the simulation engine for one GPU, overriding the
// process default.
func WithEngine(e Engine) Option { return func(g *GPU) { g.engine = e } }

// wheelHorizon is the calendar wheel's span in core cycles. It exceeds
// every wake distance a core can report (the completion ring holds 2048
// cycles, the heavy-ALU reservation 8), so in practice no wake is ever
// clamped to the horizon.
const wheelHorizon = 4096

// Compile-time checks that every scheduled unit honors the contract.
var (
	_ sched.Wakeable = (*smcore.Core)(nil)
	_ sched.Wakeable = (*l2.Partition)(nil)
	_ sched.Wakeable = (*dram.Channel)(nil)
	_ sched.Wakeable = (*icnt.Network)(nil)
	_ sched.Wakeable = (*GPU)(nil) // the GPU aggregates its units' wakes
)

// NextWake implements sched.Wakeable for the assembled GPU: the earliest
// wake over every unit, ok only when every unit is parked. It is the
// whole-GPU idle test the event engine's bulk jump uses, and what a
// multi-GPU simulation would register with an outer scheduler.
func (g *GPU) NextWake() (int64, bool) {
	if g.icntWork {
		return 0, false
	}
	for _, p := range g.parts {
		if _, ok := p.NextWake(); !ok {
			return 0, false
		}
		if _, ok := p.DRAM.NextWake(); !ok {
			return 0, false
		}
	}
	wake := sched.Never
	for _, c := range g.cores {
		w, ok := c.NextWake()
		if !ok {
			return 0, false
		}
		if w < wake {
			wake = w
		}
	}
	return wake, true
}

// runEvent is the calendar-queue event engine. Each core registers its
// next-wake cycle on a calendar wheel (ties break in ascending core ID —
// exactly the tick loop's iteration order); the 700 MHz and DRAM domains
// keep deferred skip counters while idle and tick only while they hold
// work; and spans where every unit is parked are replayed in bulk: the
// clock-domain accumulators step through the exact float sequence the
// tick loop would produce, the profiler's RecordN bulk path records the
// (frozen) gauge vector once per skipped cycle, and each core's SkipTo
// replays its per-cycle stall attribution and fetch round-robin rotation.
// Every statistic is byte-identical to the tick engine's.
func (g *GPU) runEvent() (Metrics, error) {
	icntRatio := g.cfg.Icnt.ClockMHz / g.cfg.Core.ClockMHz
	dramRatio := g.cfg.DRAM.ClockMHz / g.cfg.Core.ClockMHz
	normal := g.cfg.Mode == config.ModeNormal

	var lastProgress int64 // last cycle the instruction count moved
	var lastIssued int64
	var issued int64 // running Stats.Issued total over all cores

	// Deferred domain ticks: while a domain is idle its per-cycle ticks
	// are counted here and bulk-replayed (SkipTicks) right before its
	// next real tick, keeping every unit clock and cycle counter exact.
	var icntSkip, dramSkip int64
	dramBusy := false

	alive := len(g.cores)
	wheel := sched.NewWheel(wheelHorizon, len(g.cores))
	for i := range g.cores {
		wheel.Schedule(int32(i), 1)
	}
	due := make([]int32, 0, len(g.cores))
	// Cores that wake on the very next cycle — the steady state while a
	// core issues — bypass the wheel entirely: they ride the carry list
	// (kept in ascending ID order) and merge with the wheel's due set.
	carry := make([]int32, 0, len(g.cores))
	carryNext := make([]int32, 0, len(g.cores))
	merged := make([]int32, 0, len(g.cores))
	carriedAt := make([]int64, len(g.cores)) // cycle each carried core ticks
	// coreNow mirrors each core's clock in one compact array, sparing the
	// catch-up check a pointer chase into every core struct per cycle.
	coreNow := make([]int64, len(g.cores))
	for i, c := range g.cores {
		coreNow[i] = c.Now()
	}
	var replyOcc []uint64 // reply-network ejection occupancy (nil outside ModeNormal)
	if normal {
		replyOcc = g.reply.OccupiedDsts()
	}

	finish := func() {
		// Catch lazily parked units up to the final cycle before any
		// metric is read.
		g.flushSkips(&icntSkip, &dramSkip)
		for _, c := range g.cores {
			c.SkipTo(g.cycle)
		}
	}
	livelock := func() error {
		return fmt.Errorf("%w after cycle %d: %s",
			ErrLivelock, lastProgress, g.cores[0].OutstandingWork())
	}

	for {
		// Bulk-replay a fully idle span: both domains drained and every
		// core parked past the next cycle. The jump lands one cycle short
		// of the earliest wake so the event fires inside a normal tick,
		// and is clamped so the truncation and livelock checks trip on
		// exactly the cycle the unskipped run would have stopped at.
		if !g.icntWork && !dramBusy && len(carry) == 0 {
			if wake := wheel.Min(); wake > g.cycle+1 {
				target := clampTarget(g.cfg.MaxCycles, lastProgress, wake-1)
				if target > g.cycle {
					if g.prof != nil {
						// No unit state mutates across the span, so the
						// gauge vector at its start stands for every
						// skipped cycle.
						g.prof.RecordN(g.sampleGauges(), target-g.cycle)
					}
					if normal {
						// Step the clock-domain accumulators cycle by
						// cycle — the exact float sequence the tick loop
						// would produce — deferring the (idle) domain
						// ticks each accumulates.
						for i := g.cycle; i < target; i++ {
							g.icntAcc += icntRatio
							for g.icntAcc >= 1 {
								g.icntAcc--
								icntSkip++
							}
							g.dramAcc += dramRatio
							for g.dramAcc >= 1 {
								g.dramAcc--
								dramSkip++
							}
						}
					}
					g.skipped += target - g.cycle
					g.cycle = target
					if g.cfg.MaxCycles > 0 && g.cycle >= g.cfg.MaxCycles {
						g.truncated = true
						break
					}
					if g.cycle-lastProgress > 200_000 {
						finish()
						return g.collect(), livelock()
					}
					continue
				}
			}
		}

		g.cycle++

		if normal {
			g.icntAcc += icntRatio
			for g.icntAcc >= 1 {
				g.icntAcc--
				if !g.icntWork {
					icntSkip++
					continue
				}
				g.flushSkips(&icntSkip, &dramSkip)
				g.tickIcntDomain()
				// Busy→idle is re-evaluated only after a busy tick, and
				// only once the cheap in-flight gate clears.
				if g.req.InFlight() == 0 && g.reply.InFlight() == 0 {
					g.icntWork = g.anyPartitionIcntWork()
				}
				if !dramBusy {
					// TickL2 may have pushed a miss into a DRAM channel.
					for _, p := range g.parts {
						if _, ok := p.DRAM.NextWake(); !ok {
							dramBusy = true
							break
						}
					}
				}
			}
			g.dramAcc += dramRatio
			for g.dramAcc >= 1 {
				g.dramAcc--
				if !dramBusy {
					dramSkip++
					continue
				}
				if dramSkip > 0 {
					for _, p := range g.parts {
						p.DRAM.SkipTicks(dramSkip)
					}
					dramSkip = 0
				}
				idle := true
				for _, p := range g.parts {
					p.DRAM.Tick()
					if _, ok := p.DRAM.NextWake(); !ok {
						idle = false
					}
				}
				dramBusy = !idle
				if !g.icntWork {
					// A completed burst parked in a return queue is the
					// 700 MHz domain's work to deliver.
					for _, p := range g.parts {
						if _, ok := p.DRAM.PeekResponse(); ok {
							g.icntWork = true
							break
						}
					}
				}
			}

			// A consumable reply wakes its destination core this cycle —
			// parked cores always have response-FIFO room, so arrival and
			// consumption cycles match the tick engine's exactly. Only
			// destinations with an occupied ejection FIFO need peeking.
			if g.reply.InFlight() > 0 {
				for wi, word := range replyOcc {
					for word != 0 {
						d := wi<<6 + bits.TrailingZeros64(word)
						word &= word - 1
						id := int32(d)
						if carriedAt[d] == g.cycle || wheel.ScheduledAt(id) == g.cycle || g.cores[d].Done() {
							continue
						}
						if _, ok := g.reply.Peek(d); ok {
							wheel.Schedule(id, g.cycle)
						}
					}
				}
			}
		}

		due = wheel.Due(g.cycle, due[:0])
		// Merge the wheel's due set with the carry list. Both are ascending
		// and disjoint (a carried core's wheel wake is Never, and the reply
		// scan skips carried cores), so the merge preserves the tick loop's
		// ascending-ID order.
		run := due
		if len(carry) > 0 {
			if len(due) == 0 {
				run = carry
			} else {
				merged = merged[:0]
				i, j := 0, 0
				for i < len(due) && j < len(carry) {
					if due[i] < carry[j] {
						merged = append(merged, due[i])
						i++
					} else {
						merged = append(merged, carry[j])
						j++
					}
				}
				merged = append(merged, due[i:]...)
				merged = append(merged, carry[j:]...)
				run = merged
			}
		}
		carryNext = carryNext[:0]
		replies := normal && g.reply.InFlight() > 0
		for _, id := range run {
			c := g.cores[id]
			// Lazy catch-up: replay the cycles the core sat parked, then
			// tick it exactly where the tick loop would have.
			if coreNow[id] < g.cycle-1 {
				c.SkipTo(g.cycle - 1)
			}
			if replies && replyOcc[id>>6]&(1<<uint(id&63)) != 0 && c.CanAcceptResponse() {
				if pkt, ok := g.reply.Pop(c.ID); ok {
					c.AcceptResponse(pkt.Fetch)
					g.reply.Release(pkt)
				}
			}
			before := c.Stats.Issued
			c.Tick()
			coreNow[id] = g.cycle
			issued += c.Stats.Issued - before
			if c.Done() {
				alive--
				continue
			}
			if w, ok := c.NextWake(); ok && w != g.cycle+1 {
				// Never parks the core off the wheel entirely (it waits on
				// a reply in flight); the reply-arrival scan above
				// re-schedules it the cycle its packet becomes consumable.
				if w != sched.Never {
					wheel.Schedule(id, w)
				}
			} else {
				carryNext = append(carryNext, id)
				carriedAt[id] = g.cycle + 1
			}
		}
		carry, carryNext = carryNext, carry

		if g.prof != nil {
			// Gauges like dram/bus-busy compare a reservation against the
			// unit's clock, so deferred idle ticks must land before the
			// sample reads it.
			g.flushSkips(&icntSkip, &dramSkip)
			g.prof.Record(g.sampleGauges())
		}

		if issued != lastIssued {
			lastIssued = issued
			lastProgress = g.cycle
		}
		if alive == 0 {
			break
		}
		if g.cfg.MaxCycles > 0 && g.cycle >= g.cfg.MaxCycles {
			g.truncated = true
			break
		}
		if g.cycle-lastProgress > 200_000 {
			finish()
			return g.collect(), livelock()
		}
	}
	finish()
	return g.collect(), nil
}

// clampTarget bounds a jump target so the engine never skips past the
// MaxCycles truncation point or the livelock window's trip cycle.
func clampTarget(maxCycles, lastProgress, target int64) int64 {
	if maxCycles > 0 && target > maxCycles {
		target = maxCycles
	}
	if limit := lastProgress + 200_001; target > limit {
		target = limit
	}
	return target
}

// anyPartitionIcntWork reports whether any memory partition holds work
// for the 700 MHz domain. Callers have already checked the crossbars.
func (g *GPU) anyPartitionIcntWork() bool {
	for _, p := range g.parts {
		if _, ok := p.NextWake(); !ok {
			return true
		}
	}
	return false
}

// flushSkips replays the deferred idle domain ticks: unit clocks and
// cycle counters advance exactly as the equivalent run of no-op Ticks
// would have. It must run before any real 700 MHz tick (an L2 miss can
// reach a DRAM channel inside TickL2, and the channel's clock must be
// current when it arrives) and before metrics are collected.
func (g *GPU) flushSkips(icntSkip, dramSkip *int64) {
	if *icntSkip > 0 {
		g.req.SkipTicks(*icntSkip)
		g.reply.SkipTicks(*icntSkip)
		for _, p := range g.parts {
			p.SkipTicks(*icntSkip)
		}
		*icntSkip = 0
	}
	if *dramSkip > 0 {
		for _, p := range g.parts {
			p.DRAM.SkipTicks(*dramSkip)
		}
		*dramSkip = 0
	}
}
