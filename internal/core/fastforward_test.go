package core

import (
	"errors"
	"reflect"
	"testing"

	"gpumembw/internal/config"
	"gpumembw/internal/smcore"
	"gpumembw/internal/trace"
)

// runPair runs the same cell with the idle fast-forward enabled and
// disabled and returns both results.
func runPair(t *testing.T, cfg config.Config, wl *smcore.Workload) (ff, slow Metrics, ffErr, slowErr error) {
	t.Helper()
	ff, ffErr, _ = runOnce(t, cfg, wl, false)
	slow, slowErr, _ = runOnce(t, cfg, wl, true)
	return ff, slow, ffErr, slowErr
}

func runOnce(t *testing.T, cfg config.Config, wl *smcore.Workload, noFF bool) (Metrics, error, int64) {
	t.Helper()
	g, err := New(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	g.noFastForward = noFF
	m, err := g.Run()
	return m, err, g.ffSkipped
}

// requireIdentical fails unless the two runs agree on every metric.
func requireIdentical(t *testing.T, name string, ff, slow Metrics, ffErr, slowErr error) {
	t.Helper()
	if (ffErr == nil) != (slowErr == nil) {
		t.Fatalf("%s: fast-forward error %v, reference error %v", name, ffErr, slowErr)
	}
	if !reflect.DeepEqual(ff, slow) {
		t.Errorf("%s: fast-forward changed the metrics\nwith skip: %+v\nreference: %+v", name, ff, slow)
	}
}

// TestFastForwardInvisible verifies the tentpole guarantee: skipping idle
// cycles must leave every collected metric byte-identical, in each
// simulation mode.
func TestFastForwardInvisible(t *testing.T) {
	wls := trace.Workloads()
	small := func(cfg config.Config) config.Config {
		cfg.Core.NumCores = 2
		return cfg
	}
	cases := []struct {
		name string
		cfg  config.Config
	}{
		{"normal", small(config.Baseline())},
		{"p-inf", small(config.InfiniteBW())},
		{"p-dram", small(config.InfiniteDRAM())},
		{"fixed-lat-200", small(config.FixedL1MissLatency(200))},
		{"fixed-lat-800", small(config.FixedL1MissLatency(800))},
	}
	var skippedAnywhere int64
	for _, bench := range []string{"mm", "ii", "bfs'"} {
		wl := wls[bench]
		if wl == nil {
			t.Fatalf("unknown benchmark %q", bench)
		}
		for _, tc := range cases {
			ff, ffErr, skipped := runOnce(t, tc.cfg, wl, false)
			slow, slowErr, _ := runOnce(t, tc.cfg, wl, true)
			requireIdentical(t, bench+"/"+tc.name, ff, slow, ffErr, slowErr)
			skippedAnywhere += skipped
		}
	}
	if skippedAnywhere == 0 {
		t.Error("fast-forward never skipped a cycle; the comparison is vacuous")
	}
}

// TestFastForwardMaxCyclesMidSkip truncates the simulation at a wall of
// cycles chosen to land inside a fast-forwarded span: the skip must stop
// exactly at MaxCycles with the truncation flag set, as if every cycle had
// been ticked.
func TestFastForwardMaxCyclesMidSkip(t *testing.T) {
	wls := trace.Workloads()
	cfg := config.FixedL1MissLatency(800)
	cfg.Core.NumCores = 1

	// Probe a range of walls; with an 800-cycle miss latency several of
	// them land inside a fast-forwarded span.
	var skippedAnywhere int64
	for _, wall := range []int64{500, 1000, 2000, 5000} {
		c := cfg
		c.MaxCycles = wall
		ff, ffErr, skipped := runOnce(t, c, wls["mm"], false)
		slow, slowErr, _ := runOnce(t, c, wls["mm"], true)
		requireIdentical(t, "maxcycles-mid-skip", ff, slow, ffErr, slowErr)
		if ff.Cycles > wall {
			t.Errorf("wall %d: truncated run reports %d cycles", wall, ff.Cycles)
		}
		if !ff.Truncated {
			t.Errorf("wall %d: run was not truncated", wall)
		}
		skippedAnywhere += skipped
	}
	if skippedAnywhere == 0 {
		t.Error("fast-forward never skipped before a wall; the test is vacuous")
	}
}

// TestFastForwardLivelockWindow verifies that the 200k-cycle livelock
// detector fires at the same cycle, with the same error, whether or not
// idle spans are skipped.
func TestFastForwardLivelockWindow(t *testing.T) {
	// A load generating more transactions than the memory pipeline can
	// ever hold stalls str-MEM forever: no ring events, no progress.
	cfg := config.Baseline()
	cfg.Core.NumCores = 1
	cfg.Core.MemPipelineWidth = 2
	wl := &smcore.Workload{
		Name:         "livelock",
		Program:      smcore.Program{Body: []smcore.Inst{{Kind: smcore.OpLoad, Dest: 1, Src1: -1, Src2: -1}}, Iters: 2, CodeBase: 1 << 40},
		WarpsPerCore: 1,
		Addr: func(buf []uint64, coreID, warpID, iter, instIdx int) []uint64 {
			for k := 0; k < 4; k++ { // 4 lines > width 2
				buf = append(buf, uint64(k)<<7)
			}
			return buf
		},
	}
	ff, slow, ffErr, slowErr := runPair(t, cfg, wl)
	if !errors.Is(ffErr, ErrLivelock) || !errors.Is(slowErr, ErrLivelock) {
		t.Fatalf("expected livelock from both runs, got %v / %v", ffErr, slowErr)
	}
	if ffErr.Error() != slowErr.Error() {
		t.Errorf("livelock errors differ:\nwith skip: %v\nreference: %v", ffErr, slowErr)
	}
	requireIdentical(t, "livelock", ff, slow, nil, nil)
}

// TestFastForwardClockAccumulators verifies the clock-domain accumulators
// stay bit-exact across skips: the 700 MHz and 924 MHz domains must have
// ticked the same number of times, leaving identical fractional state.
func TestFastForwardClockAccumulators(t *testing.T) {
	wls := trace.Workloads()
	cfg := config.Baseline()
	cfg.Core.NumCores = 2

	g1, err := New(cfg, wls["ii"])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g1.Run(); err != nil {
		t.Fatal(err)
	}
	g2, err := New(cfg, wls["ii"])
	if err != nil {
		t.Fatal(err)
	}
	g2.noFastForward = true
	if _, err := g2.Run(); err != nil {
		t.Fatal(err)
	}
	if g1.icntAcc != g2.icntAcc || g1.dramAcc != g2.dramAcc {
		t.Errorf("accumulators diverged: icnt %v vs %v, dram %v vs %v",
			g1.icntAcc, g2.icntAcc, g1.dramAcc, g2.dramAcc)
	}
	if g1.cycle != g2.cycle {
		t.Errorf("cycle counts diverged: %d vs %d", g1.cycle, g2.cycle)
	}
	if a, b := g1.req.Stats.Cycles, g2.req.Stats.Cycles; a != b {
		t.Errorf("request-network cycle counts diverged: %d vs %d", a, b)
	}
	if a, b := g1.parts[0].DRAM.Stats, g2.parts[0].DRAM.Stats; !reflect.DeepEqual(a, b) {
		t.Errorf("DRAM stats diverged: %+v vs %+v", a, b)
	}
}
