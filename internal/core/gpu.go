// Package core assembles the complete simulated GPU of Fig. 2 and implements
// the paper's measurement methodology: SIMT cores behind private L1s, two
// crossbar networks, a banked shared L2 organized into memory partitions,
// and GDDR5 channels — each in its own clock domain (core 1.4 GHz,
// crossbar/L2 700 MHz, DRAM command clock 924 MHz).
//
// This package is the reproduction's primary contribution: it runs a
// workload against an arbitrary config.Config and emits Metrics containing
// every quantity the paper plots — issue-stall taxonomy (Fig. 7), L1/L2
// stall attribution (Figs. 8–9), queue-occupancy histograms (Figs. 4–5),
// average memory and L2-hit latencies (Fig. 1), DRAM bandwidth efficiency
// (§IV-B1) and IPC for the design-space studies (Figs. 10–12).
package core

import (
	"errors"
	"fmt"
	"math/bits"

	"gpumembw/internal/cache"
	"gpumembw/internal/config"
	"gpumembw/internal/dram"
	"gpumembw/internal/icnt"
	"gpumembw/internal/l2"
	"gpumembw/internal/mem"
	"gpumembw/internal/obsv"
	"gpumembw/internal/smcore"
)

// ErrLivelock reports that the simulator stopped making forward progress,
// which always indicates a modelling bug rather than a valid stall.
var ErrLivelock = errors.New("core: no forward progress")

// GPU is one fully assembled simulated GPU.
type GPU struct {
	cfg config.Config
	wl  *smcore.Workload

	cores []*smcore.Core
	req   *icnt.Network
	reply *icnt.Network
	parts []*l2.Partition
	banks []*l2.Bank // flat view indexed by global bank ID (request-network dst)
	amap  dram.AddrMap
	pool  *mem.FetchPool

	idealL2 *cache.TagArray // functional L2 for ModeInfiniteBW

	cycle     int64
	icntAcc   float64
	dramAcc   float64
	fetchID   uint64
	truncated bool

	// engine selects the simulation loop (WithEngine); skipped counts the
	// core cycles the event engine jumped over in bulk (diagnostics and
	// the non-vacuity assertions in the parity tests).
	engine  Engine
	skipped int64

	// icntWork flags that the 700 MHz domain (crossbars, L2 banks, DRAM
	// return hand-off) holds work. The event engine skips the domain's
	// ticks while it is clear; it is set on the idle→busy transitions —
	// a core injecting a request, or a DRAM burst completing — and
	// re-evaluated after busy domain ticks.
	icntWork bool

	// prof, when attached, receives one hierarchy gauge vector per core
	// cycle. nil (the default) keeps the hot path at a single pointer
	// compare per cycle — profiling is strictly opt-in per job.
	prof     *obsv.Profiler
	gaugeBuf []float64
}

// New assembles a GPU for the given configuration and workload. Options
// (WithEngine) tune how the GPU simulates, never what it produces.
func New(cfg config.Config, wl *smcore.Workload, opts ...Option) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if wl == nil || len(wl.Program.Body) == 0 || wl.Program.Iters <= 0 {
		return nil, fmt.Errorf("core: empty workload")
	}
	if wl.Addr == nil {
		return nil, fmt.Errorf("core: workload %q has no address generator", wl.Name)
	}
	g := &GPU{cfg: cfg, wl: wl, amap: dram.NewAddrMap(&cfg), pool: &mem.FetchPool{}, engine: DefaultEngine()}
	for _, opt := range opts {
		opt(g)
	}

	newFetch := func(addr uint64, typ mem.AccessType, size, coreID, warpID int, issueCycle int64) *mem.Fetch {
		g.fetchID++
		f := g.pool.Get()
		*f = mem.Fetch{
			ID: g.fetchID, Addr: addr, Type: typ, SizeBytes: size,
			CoreID: coreID, WarpID: warpID, IssueCycle: issueCycle,
		}
		f.BankID = g.bankOf(addr)
		f.PartitionID = f.BankID % cfg.DRAM.NumPartitions
		return f
	}

	for i := 0; i < cfg.Core.NumCores; i++ {
		c := smcore.NewCore(i, &g.cfg, wl, newFetch)
		c.SetFetchPool(g.pool)
		g.cores = append(g.cores, c)
	}

	switch cfg.Mode {
	case config.ModeNormal:
		// Every L2 bank owns its own crossbar port (§VII-A: "each L2 bank
		// has an independent port to the crossbar"), so scaling the bank
		// count also scales interconnect ports.
		g.req = icnt.NewNetwork("request", cfg.Core.NumCores, cfg.L2.NumBanks,
			cfg.Icnt.ReqFlitBytes, cfg.Icnt.InputBufFlits, cfg.Icnt.OutputBufPackets, cfg.Icnt.LatencyCycles)
		g.reply = icnt.NewNetwork("reply", cfg.L2.NumBanks, cfg.Core.NumCores,
			cfg.Icnt.ReplyFlitBytes, cfg.Icnt.InputBufFlits, cfg.Icnt.OutputBufPackets, cfg.Icnt.LatencyCycles)
		for p := 0; p < cfg.DRAM.NumPartitions; p++ {
			part := l2.NewPartition(p, &g.cfg)
			part.SetFetchPool(g.pool)
			g.parts = append(g.parts, part)
		}
		g.banks = make([]*l2.Bank, cfg.L2.NumBanks)
		for _, part := range g.parts {
			for _, b := range part.Banks {
				g.banks[b.ID] = b
			}
		}
		for _, c := range g.cores {
			c.SetInject(func(f *mem.Fetch) bool {
				if g.req.Inject(f, f.CoreID, f.BankID, f.RequestBytes()) {
					g.icntWork = true
					return true
				}
				return false
			})
			src := c.ID
			c.SetInjectStamp(func() uint64 { return g.req.DrainStamp(src) })
		}
	case config.ModeInfiniteBW:
		g.idealL2 = cache.NewTagArray(
			cfg.L2.SizeBytes/cfg.L2.LineBytes/cfg.L2.Ways, cfg.L2.Ways, cfg.L2.LineBytes, 1)
		for _, c := range g.cores {
			c.SetIdealLatency(g.idealLatency)
		}
	case config.ModeFixedL1MissLat:
		// Latency is a constant; the cores handle it internally.
	}
	return g, nil
}

// bankOf maps a line address to its global L2 bank: lines interleave across
// banks, and bank→partition assignment keeps consecutive lines on distinct
// partitions (matching dram.AddrMap).
func (g *GPU) bankOf(addr uint64) int {
	lineIdx := addr / uint64(g.cfg.L2.LineBytes)
	return int(lineIdx % uint64(g.cfg.L2.NumBanks))
}

// idealLatency is the P∞ oracle: a functional L2 decides between the
// minimum L2 (120-cycle) and DRAM (220-cycle) latencies.
func (g *GPU) idealLatency(addr uint64) int64 {
	if g.idealL2.Access(addr) {
		return int64(g.cfg.IdealL2HitLatency)
	}
	g.idealL2.Fill(addr)
	return int64(g.cfg.IdealMemLatency)
}

// Cycle returns the current core-clock cycle.
func (g *GPU) Cycle() int64 { return g.cycle }

// Run simulates until every core drains, MaxCycles elapses, or progress
// stops. It returns the collected metrics. The engine option selects how
// the simulation advances — the calendar-queue event engine (default) or
// the reference tick loop — never what it produces: both engines emit
// byte-identical metrics and profiles for every cell.
func (g *GPU) Run() (Metrics, error) {
	if g.engine == EngineTick {
		return g.runTick()
	}
	return g.runEvent()
}

// runTick is the reference tick-everything loop: every unit of the
// hierarchy advances every cycle, with no skip heuristics of any kind.
// It exists as the one-flag bisect target (`gpusim -engine=tick`) and as
// the oracle the event-engine parity tests compare against.
func (g *GPU) runTick() (Metrics, error) {
	icntRatio := g.cfg.Icnt.ClockMHz / g.cfg.Core.ClockMHz
	dramRatio := g.cfg.DRAM.ClockMHz / g.cfg.Core.ClockMHz
	normal := g.cfg.Mode == config.ModeNormal

	var lastProgress int64 // last cycle the instruction count moved
	var lastIssued int64

	for {
		g.cycle++

		if normal {
			g.icntAcc += icntRatio
			for g.icntAcc >= 1 {
				g.icntAcc--
				g.tickIcntDomain()
			}
			g.dramAcc += dramRatio
			for g.dramAcc >= 1 {
				g.dramAcc--
				for _, p := range g.parts {
					p.DRAM.Tick()
				}
			}
		}

		done := true
		var issued int64
		for _, c := range g.cores {
			if normal && c.CanAcceptResponse() {
				if pkt, ok := g.reply.Pop(c.ID); ok {
					c.AcceptResponse(pkt.Fetch)
					g.reply.Release(pkt)
				}
			}
			c.Tick()
			if !c.Done() {
				done = false
			}
			issued += c.Stats.Issued
		}

		if g.prof != nil {
			g.prof.Record(g.sampleGauges())
		}

		if issued != lastIssued {
			lastIssued = issued
			lastProgress = g.cycle
		}
		if done {
			break
		}
		if g.cfg.MaxCycles > 0 && g.cycle >= g.cfg.MaxCycles {
			g.truncated = true
			break
		}
		if g.cycle-lastProgress > 200_000 {
			return g.collect(), fmt.Errorf("%w after cycle %d: %s",
				ErrLivelock, lastProgress, g.cores[0].OutstandingWork())
		}
	}
	return g.collect(), nil
}

// tickIcntDomain advances the 700 MHz domain one cycle: both crossbars and
// every memory partition, including the partition↔network hand-offs.
func (g *GPU) tickIcntDomain() {
	g.req.Tick()
	g.reply.Tick()
	// Request ejection → L2 bank access queues, for occupied outputs only.
	// Ejections touch nothing a partition tick reads outside its own bank,
	// so hoisting them all ahead of the partition loop (in ascending bank
	// order, which preserves each partition's internal bank order) leaves
	// every observable byte unchanged.
	for wi, word := range g.req.OccupiedDsts() {
		for word != 0 {
			d := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			bank := g.banks[d]
			if pkt, ok := g.req.Peek(d); ok && bank.CanAccept() {
				g.req.Pop(d)
				bank.Accept(pkt.Fetch)
				g.req.Release(pkt)
			}
		}
	}
	for _, p := range g.parts {
		p.TickL2()
		for _, bank := range p.Banks {
			// L2 response queue → reply-network injection.
			if f, ok := bank.PeekResponse(); ok {
				if g.reply.CanInject(bank.ID, f.ReplyBytes()) {
					g.reply.Inject(f, bank.ID, f.CoreID, f.ReplyBytes())
					bank.PopResponse()
				}
			}
		}
	}
}

// AttachProfiler wires a bottleneck profiler into the run: from the next
// cycle on, the GPU records one normalized gauge vector per core cycle
// (bulk-accounted across event-engine jumps). Attach before Run; call
// Snapshot on the returned profiler after Run completes. Ideal-memory
// modes carry only the L1 gauges — the rest of the hierarchy does not
// exist there.
func (g *GPU) AttachProfiler() *obsv.Profiler {
	defs := []obsv.GaugeDef{
		{Level: "l1", Gauge: "miss-queue"},
		{Level: "l1", Gauge: "mshr"},
	}
	if g.cfg.Mode == config.ModeNormal {
		defs = append(defs,
			obsv.GaugeDef{Level: "xbar-req", Gauge: "ports-busy"},
			obsv.GaugeDef{Level: "xbar-req", Gauge: "ports-contended"},
			obsv.GaugeDef{Level: "l2", Gauge: "bank-busy"},
			obsv.GaugeDef{Level: "l2", Gauge: "mshr"},
			obsv.GaugeDef{Level: "l2", Gauge: "miss-queue"},
			obsv.GaugeDef{Level: "xbar-reply", Gauge: "ports-busy"},
			obsv.GaugeDef{Level: "xbar-reply", Gauge: "ports-contended"},
			obsv.GaugeDef{Level: "dram", Gauge: "sched-queue"},
			obsv.GaugeDef{Level: "dram", Gauge: "bus-busy"},
			obsv.GaugeDef{Level: "dram", Gauge: "row-buffer"},
		)
	}
	g.prof = obsv.NewProfiler(defs)
	g.gaugeBuf = make([]float64, len(defs))
	return g.prof
}

// frac divides defensively: unbounded or zero-capacity structures report
// zero occupancy rather than dividing by zero.
func frac(n, d int) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// sampleGauges fills gaugeBuf with the current cycle's normalized
// per-level occupancies, in AttachProfiler's definition order.
func (g *GPU) sampleGauges() []float64 {
	b := g.gaugeBuf
	var l1mq, l1mshr float64
	for _, c := range g.cores {
		l, cp := c.MissQueueOcc()
		l1mq += frac(l, cp)
		l1mshr += frac(c.MSHROcc(), g.cfg.L1.MSHREntries)
	}
	nc := float64(len(g.cores))
	b[0], b[1] = l1mq/nc, l1mshr/nc
	if len(b) == 2 {
		return b
	}
	busy, cont, tot := g.req.PortOcc()
	b[2], b[3] = frac(busy, tot), frac(cont, tot)
	var bankBusy, l2mshr, l2mq, banks float64
	var dq, bus, rows float64
	for _, p := range g.parts {
		for _, bk := range p.Banks {
			banks++
			if bk.Busy() {
				bankBusy++
			}
			l2mshr += frac(bk.MSHROcc(), g.cfg.L2.MSHREntries)
			l, cp := bk.MissQueueOcc()
			l2mq += frac(l, cp)
		}
		l, cp := p.DRAM.SchedOcc()
		dq += frac(l, cp)
		if p.DRAM.BusBusy() {
			bus++
		}
		rows += frac(p.DRAM.OpenRows(), g.cfg.DRAM.BanksPerChip)
	}
	b[4], b[5], b[6] = bankBusy/banks, l2mshr/banks, l2mq/banks
	busy, cont, tot = g.reply.PortOcc()
	b[7], b[8] = frac(busy, tot), frac(cont, tot)
	np := float64(len(g.parts))
	b[9], b[10], b[11] = dq/np, bus/np, rows/np
	return b
}

// Cores exposes the simulated cores (read-only use by experiments).
func (g *GPU) Cores() []*smcore.Core { return g.cores }

// Partitions exposes the memory partitions (read-only use by experiments).
func (g *GPU) Partitions() []*l2.Partition { return g.parts }
