package core

import (
	"testing"

	"gpumembw/internal/config"
	"gpumembw/internal/trace"
)

// TestUncongestedLatencyCalibration checks the minimum access latencies the
// paper quotes: ~120 core cycles to the L2 and ~100 more to DRAM (§II-A).
func TestUncongestedLatencyCalibration(t *testing.T) {
	// One warp on one core issuing one dependent load at a time: no
	// congestion anywhere.
	// A 24 KB working set exceeds the 16 KB L1 (so loads keep reaching
	// the L2) but revisits lines often enough to produce L2 hits.
	wl, err := trace.Spec{
		Name: "ping", Iters: 400,
		LoadsPerIter: 1, ALUPerIter: 1, DepDist: 0,
		Pattern: trace.PatRandomWS, WorkingSetKB: 24,
		WarpsPerCore: 1, Seed: 3,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Baseline()
	cfg.Core.NumCores = 1
	m, err := RunWorkload(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("uncongested: AML=%.0f L2AHL=%.0f", m.AML, m.L2AHL)
	if m.L2AHL < 100 || m.L2AHL > 145 {
		t.Errorf("uncongested L2 hit latency = %.0f core cycles, want ≈120", m.L2AHL)
	}
	// AML mixes L2 hits and misses; with ~50%% hits it should sit between
	// 120 and 220.
	if m.AML < m.L2AHL || m.AML > 235 {
		t.Errorf("uncongested AML = %.0f, want in (L2AHL, 235]", m.AML)
	}
}
