package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpumembw/internal/config"
	"gpumembw/internal/trace"
)

// TestNoDeadlockWithTinyQueues shrinks every queue in the hierarchy to its
// minimum and checks the system still drains — the classic failure mode of
// backpressure protocols is a reservation cycle that deadlocks.
func TestNoDeadlockWithTinyQueues(t *testing.T) {
	cfg := config.Baseline()
	cfg.Core.NumCores = 3
	cfg.Core.MemPipelineWidth = 2
	cfg.L1.MissQueueEntries = 1
	cfg.L1.MSHREntries = 2
	cfg.L1.MSHRMaxMerge = 2
	cfg.L1.ResponseFIFO = 1
	cfg.Icnt.InputBufFlits = 5 // one reply packet
	cfg.Icnt.OutputBufPackets = 1
	cfg.L2.AccessQueueEntries = 1
	cfg.L2.MissQueueEntries = 2 // a miss may need a write-back slot too
	cfg.L2.MSHREntries = 2
	cfg.L2.ResponseQueueEntries = 1
	cfg.DRAM.SchedQueueEntries = 1
	cfg.DRAM.ReturnQueueEntries = 1
	cfg.MaxCycles = 3_000_000
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	wl, err := trace.Spec{
		Name: "tiny-queues", Iters: 4,
		LoadsPerIter: 3, StoresPerIter: 1, ALUPerIter: 2,
		DepDist: 1, Pattern: trace.PatRandomWS, WorkingSetKB: 512,
		WarpsPerCore: 6, Seed: 42,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunWorkload(cfg, wl)
	if err != nil {
		t.Fatalf("deadlock or livelock with minimal queues: %v", err)
	}
	if m.Truncated {
		t.Fatal("run truncated — throughput collapse with minimal queues")
	}
}

// TestRandomConfigurationsDrain fuzzes queue sizes and workload shapes,
// checking every combination completes with conserved instruction counts.
func TestRandomConfigurationsDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing skipped in -short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lines := 1 + rng.Intn(4)
		cfg := config.Baseline()
		cfg.Core.NumCores = 1 + rng.Intn(3)
		cfg.Core.WarpsPerCore = 1 + rng.Intn(8)
		// The LSU must hold at least one whole coalesced instruction,
		// or that instruction can never issue.
		cfg.Core.MemPipelineWidth = lines + rng.Intn(12)
		cfg.L1.MissQueueEntries = 1 + rng.Intn(8)
		cfg.L1.MSHREntries = 2 + rng.Intn(30)
		cfg.L2.AccessQueueEntries = 1 + rng.Intn(8)
		cfg.L2.MissQueueEntries = 2 + rng.Intn(8)
		cfg.L2.ResponseQueueEntries = 1 + rng.Intn(8)
		cfg.L2.MSHREntries = 2 + rng.Intn(30)
		cfg.DRAM.SchedQueueEntries = 1 + rng.Intn(16)
		cfg.DRAM.ReturnQueueEntries = 1 + rng.Intn(8)
		cfg.MaxCycles = 3_000_000
		if err := cfg.Validate(); err != nil {
			return false
		}
		patterns := []trace.Pattern{trace.PatStream, trace.PatStrided, trace.PatRandomWS, trace.PatHotShared, trace.PatTiled}
		spec := trace.Spec{
			Name:           "fuzz",
			Iters:          1 + rng.Intn(4),
			LoadsPerIter:   1 + rng.Intn(4),
			StoresPerIter:  rng.Intn(3),
			ALUPerIter:     1 + rng.Intn(6),
			DepDist:        rng.Intn(4),
			Pattern:        patterns[rng.Intn(len(patterns))],
			LinesPerAccess: lines,
			WorkingSetKB:   64 + rng.Intn(512),
			SharedKB:       8 + rng.Intn(64),
			SharedFrac:     float64(rng.Intn(80)) / 100,
			WarpsPerCore:   1 + rng.Intn(6),
			Seed:           uint64(seed),
		}
		wl, err := spec.Build()
		if err != nil {
			return false
		}
		m, err := RunWorkload(cfg, wl)
		if err != nil || m.Truncated {
			t.Logf("seed %d: err=%v truncated=%v", seed, err, m.Truncated)
			return false
		}
		warps := cfg.Core.WarpsPerCore
		if spec.WarpsPerCore < warps {
			warps = spec.WarpsPerCore
		}
		want := int64(cfg.Core.NumCores) * int64(warps) * wl.Program.TotalInsts()
		if m.Instructions != want {
			t.Logf("seed %d: instructions %d want %d", seed, m.Instructions, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(99))}); err != nil {
		t.Fatal(err)
	}
}

// TestBackpressureMonotonicity: growing the L2 access queue must not
// degrade performance for a congested workload (sanity of queue modelling).
func TestBackpressureMonotonicity(t *testing.T) {
	wl, err := trace.Spec{
		Name: "mono", Iters: 8,
		LoadsPerIter: 6, ALUPerIter: 4, DepDist: 2,
		Pattern: trace.PatRandomWS, WorkingSetKB: 512,
		WarpsPerCore: 12, Seed: 5,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	run := func(entries int) float64 {
		cfg := config.Baseline()
		cfg.Core.NumCores = 4
		cfg.L2.AccessQueueEntries = entries
		m, err := RunWorkload(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		return m.PerfIPS
	}
	small, big := run(2), run(64)
	if big < small*0.95 {
		t.Fatalf("bigger access queues slowed the system: %.0f vs %.0f", big, small)
	}
}
