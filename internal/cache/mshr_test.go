package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMSHRAllocateAndMerge(t *testing.T) {
	m := NewMSHR[int](2, 3)
	if got := m.Allocate(0x100, 1); got != AllocNew {
		t.Fatalf("first allocate = %v", got)
	}
	if got := m.Allocate(0x100, 2); got != AllocMerged {
		t.Fatalf("second allocate = %v", got)
	}
	if got := m.Allocate(0x100, 3); got != AllocMerged {
		t.Fatalf("third allocate = %v", got)
	}
	if got := m.Allocate(0x100, 4); got != AllocFullMerge {
		t.Fatalf("merge past capacity = %v", got)
	}
	if got := m.Allocate(0x200, 5); got != AllocNew {
		t.Fatalf("second entry = %v", got)
	}
	if got := m.Allocate(0x300, 6); got != AllocFullEntries {
		t.Fatalf("entry past capacity = %v", got)
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
	waiters := m.Release(0x100)
	if len(waiters) != 3 || waiters[0] != 1 || waiters[1] != 2 || waiters[2] != 3 {
		t.Fatalf("release = %v", waiters)
	}
	if m.Pending(0x100) {
		t.Fatal("released entry still pending")
	}
	if got := m.Allocate(0x300, 6); got != AllocNew {
		t.Fatalf("allocate after release = %v", got)
	}
}

func TestMSHRCanAcceptMirrorsAllocate(t *testing.T) {
	m := NewMSHR[int](1, 2)
	if !m.CanAccept(0x100) {
		t.Fatal("empty MSHR must accept")
	}
	m.Allocate(0x100, 1)
	if !m.CanAccept(0x100) {
		t.Fatal("mergeable entry must accept")
	}
	if m.CanAccept(0x200) {
		t.Fatal("full entries must reject a new address")
	}
	m.Allocate(0x100, 2)
	if m.CanAccept(0x100) {
		t.Fatal("full merge list must reject")
	}
}

func TestMSHRUnbounded(t *testing.T) {
	m := NewMSHR[int](0, 0)
	for i := 0; i < 100; i++ {
		r := m.Allocate(uint64(i), i)
		if r != AllocNew {
			t.Fatalf("allocate %d = %v", i, r)
		}
		for j := 0; j < 50; j++ {
			if m.Allocate(uint64(i), j) != AllocMerged {
				t.Fatalf("merge %d/%d failed", i, j)
			}
		}
	}
	if m.Full() {
		t.Fatal("unbounded MSHR reports full")
	}
}

func TestMSHRReleaseUnknown(t *testing.T) {
	m := NewMSHR[int](4, 4)
	if w := m.Release(0xdead); w != nil {
		t.Fatalf("release of unknown address = %v", w)
	}
}

// TestMSHRBookkeeping checks, under random traffic, that CanAccept always
// predicts Allocate, entry count never exceeds capacity, and every
// allocated waiter is returned exactly once by Release.
func TestMSHRBookkeeping(t *testing.T) {
	f := func(ops []uint16) bool {
		const entries, merge = 4, 3
		m := NewMSHR[int](entries, merge)
		allocated := map[int]bool{}
		released := map[int]bool{}
		nextID := 0
		for _, o := range ops {
			addr := uint64(o % 8)
			if o%5 == 4 {
				for _, w := range m.Release(addr) {
					if released[w] {
						return false // double release
					}
					released[w] = true
				}
				continue
			}
			can := m.CanAccept(addr)
			r := m.Allocate(addr, nextID)
			ok := r == AllocNew || r == AllocMerged
			if can != ok {
				return false
			}
			if ok {
				allocated[nextID] = true
				nextID++
			}
			if m.Len() > entries {
				return false
			}
		}
		// Drain everything.
		for addr := uint64(0); addr < 8; addr++ {
			for _, w := range m.Release(addr) {
				if released[w] {
					return false
				}
				released[w] = true
			}
		}
		return len(released) == len(allocated)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocResultString(t *testing.T) {
	for _, r := range []AllocResult{AllocNew, AllocMerged, AllocFullEntries, AllocFullMerge} {
		if r.String() == "unknown" {
			t.Errorf("missing string for %d", r)
		}
	}
}
