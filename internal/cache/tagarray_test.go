package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicHitMiss(t *testing.T) {
	ta := NewTagArray(4, 2, 128, 1)
	if ta.Access(0x1000) {
		t.Fatal("access to empty cache hit")
	}
	if _, ok := ta.ReserveVictim(0x1000); !ok {
		t.Fatal("reserve failed on empty set")
	}
	if ta.Access(0x1000) {
		t.Fatal("reserved line must not hit")
	}
	if ta.Probe(0x1000) != Reserved {
		t.Fatalf("probe = %v, want reserved", ta.Probe(0x1000))
	}
	ta.Fill(0x1000)
	if !ta.Access(0x1000) {
		t.Fatal("filled line must hit")
	}
	if !ta.Access(0x1040) {
		t.Fatal("same-line offset must hit")
	}
	if ta.Access(0x2000) {
		t.Fatal("different set-aliasing line must miss")
	}
}

func TestLRUEviction(t *testing.T) {
	// 1 set, 2 ways, 128 B lines: addresses 0, 128, 256 alias.
	ta := NewTagArray(1, 2, 128, 1)
	mustFill := func(addr uint64) {
		if _, ok := ta.ReserveVictim(addr); !ok {
			t.Fatalf("reserve 0x%x failed", addr)
		}
		ta.Fill(addr)
	}
	mustFill(0)
	mustFill(128)
	ta.Access(0) // 0 is now MRU; 128 is LRU
	v, ok := ta.ReserveVictim(256)
	if !ok {
		t.Fatal("reserve failed")
	}
	if !v.Valid || v.Addr != 128 {
		t.Fatalf("victim = %+v, want addr 128", v)
	}
	if ta.Probe(0) != Valid {
		t.Fatal("MRU line was evicted")
	}
}

func TestAllWaysReservedBlocks(t *testing.T) {
	ta := NewTagArray(1, 2, 128, 1)
	ta.ReserveVictim(0)
	ta.ReserveVictim(128)
	if ta.HasReplaceable(256) {
		t.Fatal("set with all ways reserved must not be replaceable")
	}
	if _, ok := ta.ReserveVictim(256); ok {
		t.Fatal("reserve must fail when all ways reserved")
	}
	ta.Fill(0)
	if !ta.HasReplaceable(256) {
		t.Fatal("filled line must be replaceable again")
	}
	if _, ok := ta.ReserveVictim(256); !ok {
		t.Fatal("reserve must succeed after a fill")
	}
	// The valid-but-unreplaced line must survive.
	if ta.Probe(128) != Reserved {
		t.Fatal("pending reservation clobbered")
	}
}

func TestDirtyVictimReported(t *testing.T) {
	ta := NewTagArray(1, 1, 128, 1)
	ta.ReserveVictim(0)
	ta.Fill(0)
	if !ta.MarkDirty(0) {
		t.Fatal("mark dirty failed")
	}
	v, ok := ta.ReserveVictim(128)
	if !ok || !v.Valid || !v.Dirty || v.Addr != 0 {
		t.Fatalf("dirty victim = %+v", v)
	}
}

func TestMarkDirtyMissesReturnFalse(t *testing.T) {
	ta := NewTagArray(2, 2, 128, 1)
	if ta.MarkDirty(0x40) {
		t.Fatal("dirty on absent line")
	}
	ta.ReserveVictim(0x40)
	if ta.MarkDirty(0x40) {
		t.Fatal("dirty on reserved line")
	}
}

func TestInvalidate(t *testing.T) {
	ta := NewTagArray(2, 2, 128, 1)
	ta.ReserveVictim(0)
	ta.Fill(0)
	if !ta.Invalidate(0) {
		t.Fatal("invalidate failed")
	}
	if ta.Probe(0) != Invalid {
		t.Fatal("line still present")
	}
	if ta.Invalidate(0x9000) {
		t.Fatal("invalidate of absent line reported true")
	}
}

func TestIndexStrideSpreadsBankedLines(t *testing.T) {
	// A 12-bank L2: bank 0 sees lines 0, 12, 24, ... With stride 12 they
	// must land in consecutive sets, not all in set 0.
	ta := NewTagArray(4, 1, 128, 12)
	line := uint64(128)
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		addr := uint64(i) * 12 * line
		seen[ta.setIndex(addr)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("stride-12 lines used %d sets, want 4", len(seen))
	}
}

func TestFillWithoutReservationInstallsLine(t *testing.T) {
	ta := NewTagArray(1, 1, 128, 1)
	ta.ReserveVictim(0)
	ta.Fill(0)
	ta.MarkDirty(0)
	v := ta.Fill(128) // direct install (write-allocate full-line store)
	if !v.Valid || v.Addr != 0 || !v.Dirty {
		t.Fatalf("victim = %+v, want dirty line 0", v)
	}
	if ta.Probe(128) != Valid {
		t.Fatal("direct fill did not install")
	}
}

// TestTagArrayInvariants drives random operations and checks structural
// invariants: no duplicate tags in a set, reserved lines never evicted,
// occupancy never exceeds ways.
func TestTagArrayInvariants(t *testing.T) {
	type op struct {
		Kind uint8
		Addr uint16
	}
	f := func(ops []op) bool {
		ta := NewTagArray(4, 2, 128, 1)
		reserved := map[uint64]bool{}
		for _, o := range ops {
			addr := uint64(o.Addr) * 64 // half-line granularity
			switch o.Kind % 4 {
			case 0:
				ta.Access(addr)
			case 1:
				if _, ok := ta.ReserveVictim(addr); ok {
					reserved[ta.LineAddr(addr)] = true
				}
			case 2:
				la := ta.LineAddr(addr)
				if reserved[la] {
					ta.Fill(la)
					delete(reserved, la)
				}
			case 3:
				la := ta.LineAddr(addr)
				if !reserved[la] {
					ta.Invalidate(la)
				}
			}
			// Reserved lines must still be present as Reserved.
			for la := range reserved {
				if ta.Probe(la) != Reserved {
					return false
				}
			}
			// No set may hold duplicate tags.
			for s := 0; s < ta.Sets(); s++ {
				set := ta.lines[s*ta.ways : (s+1)*ta.ways]
				tags := map[uint64]int{}
				for _, l := range set {
					if l.state != Invalid {
						tags[l.addr]++
					}
				}
				for _, n := range tags {
					if n > 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestNewTagArrayPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTagArray(0, 2, 128, 1)
}
