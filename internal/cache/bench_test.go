package cache

import "testing"

// BenchmarkTagArrayAccess measures the hot L1 lookup path.
func BenchmarkTagArrayAccess(b *testing.B) {
	ta := NewTagArray(32, 4, 128, 1)
	for i := uint64(0); i < 128; i++ {
		ta.ReserveVictim(i * 128)
		ta.Fill(i * 128)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ta.Access(uint64(i%128) * 128)
	}
}

// BenchmarkTagArrayMissPath measures reserve+fill round trips.
func BenchmarkTagArrayMissPath(b *testing.B) {
	ta := NewTagArray(64, 8, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i) * 128
		if _, ok := ta.ReserveVictim(addr); ok {
			ta.Fill(addr)
		}
	}
}

// BenchmarkMSHRAllocateRelease measures MSHR bookkeeping.
func BenchmarkMSHRAllocateRelease(b *testing.B) {
	m := NewMSHR[int](32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i % 24)
		if m.Allocate(addr, i) == AllocFullEntries {
			m.Release(addr)
		}
		if i%3 == 0 {
			m.Release(addr)
		}
	}
}
