// Package cache provides the building blocks shared by the L1 and L2 models:
// a set-associative tag array with LRU replacement, allocate-on-miss line
// reservation and write policies, and an MSHR table with request merging.
//
// Line reservation is central to the paper's structural-hazard analysis
// (§IV-A2): Fermi reserves the victim line when the miss is *sent*, so a set
// whose lines are all reserved by outstanding misses blocks the cache
// pipeline ("cache" stalls in Figs. 8 and 9).
package cache

import (
	"fmt"
	"math/bits"
)

// LineState is the state of one cache line.
type LineState uint8

const (
	// Invalid lines hold no data.
	Invalid LineState = iota
	// Valid lines hold data and may be replaced.
	Valid
	// Reserved lines are allocated to an outstanding miss (allocate-on-
	// miss) and cannot be replaced until the fill returns.
	Reserved
)

// String implements fmt.Stringer.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "invalid"
	case Valid:
		return "valid"
	case Reserved:
		return "reserved"
	default:
		return fmt.Sprintf("LineState(%d)", uint8(s))
	}
}

type line struct {
	addr    uint64 // line-aligned address (tag)
	state   LineState
	dirty   bool
	lastUse int64
}

// Victim describes the line evicted by ReserveVictim.
type Victim struct {
	Addr  uint64
	Dirty bool // dirty victims must be written back (L2 write-back policy)
	Valid bool // false when an invalid way was claimed, so nothing was evicted
}

// TagArray is a set-associative array of cache-line tags with true-LRU
// replacement. It holds no data — the simulator is timing-only.
//
// IndexStride spreads addresses across banked caches: the set index of a
// line is (addr/lineBytes/indexStride) mod sets, so a bank receiving every
// numBanks-th line still uses all its sets.
//
// Lines live in one flat slab (ways consecutive per set) and the index
// arithmetic strength-reduces its divisions to shifts and masks where the
// geometry allows — the tag lookup sits on the per-access hot path of both
// cache levels.
type TagArray struct {
	lines     []line // numSets * ways, set-major
	numSets   int
	ways      int
	lineBytes uint64

	// idxDiv is lineBytes*indexStride: floor(floor(a/b)/c) == floor(a/(b*c))
	// for positive integers, so one division replaces the original two.
	// idxShift/setMask are the shift-and-mask fast path, valid when
	// idxShift >= 0 (idxDiv a power of two) / setMask != 0 (numSets a
	// power of two).
	idxDiv   uint64
	idxShift int
	setMask  uint64
	lineMask uint64 // lineBytes-1 when a power of two, else 0

	clock int64 // monotonic access counter driving LRU
}

// NewTagArray builds a tag array with the given geometry. indexStride must
// be ≥ 1 (use 1 for an unbanked cache).
func NewTagArray(sets, ways, lineBytes, indexStride int) *TagArray {
	if sets <= 0 || ways <= 0 || lineBytes <= 0 || indexStride <= 0 {
		panic(fmt.Sprintf("cache: invalid geometry sets=%d ways=%d line=%d stride=%d",
			sets, ways, lineBytes, indexStride))
	}
	t := &TagArray{
		lines:     make([]line, sets*ways),
		numSets:   sets,
		ways:      ways,
		lineBytes: uint64(lineBytes),
		idxDiv:    uint64(lineBytes) * uint64(indexStride),
		idxShift:  -1,
	}
	if isPow2(t.idxDiv) {
		t.idxShift = bits.TrailingZeros64(t.idxDiv)
	}
	if isPow2(uint64(sets)) {
		t.setMask = uint64(sets) - 1
	}
	if isPow2(t.lineBytes) {
		t.lineMask = t.lineBytes - 1
	}
	return t
}

func isPow2(v uint64) bool { return v&(v-1) == 0 }

// Sets returns the number of sets.
func (t *TagArray) Sets() int { return t.numSets }

// Ways returns the associativity.
func (t *TagArray) Ways() int { return t.ways }

// LineAddr returns addr rounded down to its cache-line base.
func (t *TagArray) LineAddr(addr uint64) uint64 {
	if t.lineMask != 0 {
		return addr &^ t.lineMask
	}
	return addr - addr%t.lineBytes
}

func (t *TagArray) setIndex(addr uint64) int {
	var idx uint64
	if t.idxShift >= 0 {
		idx = addr >> uint(t.idxShift)
	} else {
		idx = addr / t.idxDiv
	}
	if t.setMask != 0 {
		return int(idx & t.setMask)
	}
	return int(idx % uint64(t.numSets))
}

// set returns the ways of the set holding addr (addr need not be aligned).
func (t *TagArray) set(addr uint64) []line {
	i := t.setIndex(addr) * t.ways
	return t.lines[i : i+t.ways]
}

func (t *TagArray) find(addr uint64) *line {
	addr = t.LineAddr(addr)
	set := t.set(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].addr == addr {
			return &set[i]
		}
	}
	return nil
}

// Probe returns the state of the line holding addr without touching LRU
// state. Invalid means the line is absent.
func (t *TagArray) Probe(addr uint64) LineState {
	if l := t.find(addr); l != nil {
		return l.state
	}
	return Invalid
}

// Access looks up addr and, on a valid hit, updates its LRU position and
// returns true. Reserved lines return false: the data has not arrived, so
// the access must merge with the outstanding miss instead.
func (t *TagArray) Access(addr uint64) bool {
	l := t.find(addr)
	if l == nil || l.state != Valid {
		return false
	}
	t.clock++
	l.lastUse = t.clock
	return true
}

// MarkDirty sets the dirty bit of a valid line (write-back write hit).
// It reports whether the line was present and valid.
func (t *TagArray) MarkDirty(addr uint64) bool {
	l := t.find(addr)
	if l == nil || l.state != Valid {
		return false
	}
	t.clock++
	l.lastUse = t.clock
	l.dirty = true
	return true
}

// Invalidate drops the line holding addr regardless of state (the L1
// write-evict policy invalidates on store hits). It reports whether a line
// was dropped.
func (t *TagArray) Invalidate(addr uint64) bool {
	l := t.find(addr)
	if l == nil {
		return false
	}
	l.state = Invalid
	l.dirty = false
	return true
}

// HasReplaceable reports whether the set for addr has an invalid or valid
// (non-reserved) way — i.e. whether ReserveVictim can succeed. A false
// return is the paper's "lack of replaceable cache lines" structural hazard.
func (t *TagArray) HasReplaceable(addr uint64) bool {
	set := t.set(t.LineAddr(addr))
	for i := range set {
		if set[i].state != Reserved {
			return true
		}
	}
	return false
}

// ReserveVictim allocates a line for an outstanding miss on addr
// (allocate-on-miss): it claims an invalid way if one exists, otherwise
// evicts the LRU valid way. The reserved line cannot be replaced until
// Fill. It fails (ok=false) when every way in the set is reserved.
func (t *TagArray) ReserveVictim(addr uint64) (victim Victim, ok bool) {
	addr = t.LineAddr(addr)
	set := t.set(addr)
	chosen := -1
	for i := range set {
		switch set[i].state {
		case Invalid:
			if chosen == -1 || set[chosen].state == Valid {
				chosen = i
			}
		case Valid:
			if chosen == -1 || (set[chosen].state == Valid && set[i].lastUse < set[chosen].lastUse) {
				chosen = i
			}
		}
	}
	if chosen == -1 {
		return Victim{}, false
	}
	if set[chosen].state == Valid {
		victim = Victim{Addr: set[chosen].addr, Dirty: set[chosen].dirty, Valid: true}
	}
	t.clock++
	set[chosen] = line{addr: addr, state: Reserved, lastUse: t.clock}
	return victim, true
}

// Fill completes the outstanding miss on addr, turning its reserved line
// valid. Filling an unreserved address installs the line directly (evicting
// per ReserveVictim) — used by fills that bypassed reservation, such as
// full-line stores with write-allocate.
func (t *TagArray) Fill(addr uint64) Victim {
	addr = t.LineAddr(addr)
	if l := t.find(addr); l != nil {
		l.state = Valid
		t.clock++
		l.lastUse = t.clock
		return Victim{}
	}
	v, ok := t.ReserveVictim(addr)
	if !ok {
		// No way available; the caller should have reserved first.
		// Install nothing rather than corrupt a reserved line.
		return Victim{}
	}
	t.Fill(addr)
	return v
}

// ReservedCount returns the number of reserved lines in the set for addr
// (used by tests and congestion diagnostics).
func (t *TagArray) ReservedCount(addr uint64) int {
	set := t.set(t.LineAddr(addr))
	n := 0
	for i := range set {
		if set[i].state == Reserved {
			n++
		}
	}
	return n
}
