package cache

// AllocResult reports the outcome of an MSHR allocation attempt.
type AllocResult uint8

const (
	// AllocNew created a fresh entry: the caller must send a miss request
	// to the next level.
	AllocNew AllocResult = iota
	// AllocMerged attached the requester to an existing entry (a
	// secondary miss): no new request goes to the next level.
	AllocMerged
	// AllocFullEntries failed: the MSHR has no free entries. This is the
	// paper's "mshr" structural hazard.
	AllocFullEntries
	// AllocFullMerge failed: the target entry exists but its merge list
	// is full.
	AllocFullMerge
)

// String implements fmt.Stringer.
func (r AllocResult) String() string {
	switch r {
	case AllocNew:
		return "new"
	case AllocMerged:
		return "merged"
	case AllocFullEntries:
		return "full-entries"
	case AllocFullMerge:
		return "full-merge"
	default:
		return "unknown"
	}
}

// MSHR is a miss-status holding register file: a fully associative table
// from outstanding miss line address to the requesters waiting on its fill.
// maxEntries ≤ 0 makes it unbounded (ideal modes); maxMerge ≤ 0 allows
// unlimited merging.
//
// Released waiter lists keep their backing arrays on an internal spare
// list, so steady-state allocate/release cycles are allocation-free.
type MSHR[T any] struct {
	entries    map[uint64][]T
	spare      [][]T // backing arrays of released entries, ready for reuse
	maxEntries int
	maxMerge   int
}

// NewMSHR builds an MSHR with the given entry count and per-entry merge
// capacity (the primary miss counts toward the merge capacity).
func NewMSHR[T any](maxEntries, maxMerge int) *MSHR[T] {
	return &MSHR[T]{
		entries:    make(map[uint64][]T),
		maxEntries: maxEntries,
		maxMerge:   maxMerge,
	}
}

// Len returns the number of live entries.
func (m *MSHR[T]) Len() int { return len(m.entries) }

// Full reports whether a new (non-merging) allocation would fail.
func (m *MSHR[T]) Full() bool {
	return m.maxEntries > 0 && len(m.entries) >= m.maxEntries
}

// Pending reports whether addr has an outstanding miss.
func (m *MSHR[T]) Pending(addr uint64) bool {
	_, ok := m.entries[addr]
	return ok
}

// CanAccept reports whether Allocate(addr, …) would succeed, without
// performing it. Stall-attribution code uses it to classify a blocked
// request before committing resources.
func (m *MSHR[T]) CanAccept(addr uint64) bool {
	if waiters, ok := m.entries[addr]; ok {
		return m.maxMerge <= 0 || len(waiters) < m.maxMerge
	}
	return !m.Full()
}

// Allocate records that item waits on the fill of addr. On AllocNew the
// caller must forward the miss to the next level; on AllocMerged it must
// not. The two failure results leave the MSHR unchanged.
func (m *MSHR[T]) Allocate(addr uint64, item T) AllocResult {
	if waiters, ok := m.entries[addr]; ok {
		if m.maxMerge > 0 && len(waiters) >= m.maxMerge {
			return AllocFullMerge
		}
		m.entries[addr] = append(waiters, item)
		return AllocMerged
	}
	if m.Full() {
		return AllocFullEntries
	}
	if n := len(m.spare); n > 0 {
		ws := m.spare[n-1][:0]
		m.spare = m.spare[:n-1]
		m.entries[addr] = append(ws, item)
	} else {
		m.entries[addr] = []T{item}
	}
	return AllocNew
}

// Waiters returns the requesters currently merged on addr without
// releasing them (primary first, in allocation order).
func (m *MSHR[T]) Waiters(addr uint64) []T {
	return m.entries[addr]
}

// Release completes the miss on addr, removing the entry and returning
// every waiter (primary first, in allocation order).
//
// The returned slice aliases a backing array the MSHR will reuse: it is
// valid only until the next Allocate. Callers consume it immediately (the
// fill path iterates the waiters and moves on), so no copy is made.
func (m *MSHR[T]) Release(addr uint64) []T {
	waiters, ok := m.entries[addr]
	if !ok {
		return nil
	}
	delete(m.entries, addr)
	m.spare = append(m.spare, waiters)
	return waiters
}
